// Ablation: the paper credits LACC's performance to (1) sparse vectors
// (Lemmas 1-2), (2) hotspot-mitigated collectives, and (3) the hypercube
// all-to-all.  This bench toggles each optimization off individually and
// reports the modeled-time regression on a many-component graph and on the
// sparse M3-like graph.
#include "bench_common.hpp"

using namespace lacc;

namespace {

struct Variant {
  const char* name;
  core::LaccOptions options;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full LACC (all optimizations)", {}});
  {
    core::LaccOptions o;
    o.track_converged = false;
    out.push_back({"no converged tracking (Lemma 1 off)", o});
  }
  {
    core::LaccOptions o;
    o.sparse_uncond_hooking = false;
    out.push_back({"dense unconditional hooking (Lemma 2 off)", o});
  }
  {
    core::LaccOptions o;
    o.use_sparse_vectors = false;
    out.push_back({"dense vectors everywhere", o});
  }
  {
    core::LaccOptions o;
    o.hotspot_broadcast = false;
    out.push_back({"no hotspot broadcast", o});
  }
  {
    core::LaccOptions o;
    o.hypercube_alltoall = false;
    out.push_back({"pairwise all-to-all (no hypercube)", o});
  }
  {
    core::LaccOptions o;
    o.sampling_prepass = true;
    out.push_back({"sampling prepass (Afforest pre-pass)", o});
  }
  {
    core::LaccOptions o;
    o.sampling_prepass = true;
    o.frequent_skip = false;
    out.push_back({"sampling prepass, no frequent skip", o});
  }
  return out;
}

}  // namespace

int main() {
  bench::print_banner("Ablation — LACC's optimizations, one at a time",
                      "Azad & Buluc, IPDPS 2019, Sections IV-B and V-B");
  bench::Metrics metrics("ablation_optimizations");

  const auto& machine = sim::MachineModel::edison();
  const int ranks = bench::rank_sweep().back();
  const auto problems = graph::make_test_problems(bench::problem_scale());

  for (const auto& name : {std::string("eukarya"), std::string("M3")}) {
    const auto& p = graph::find_problem(problems, name);
    std::cout << name << " stand-in at " << ranks << " ranks ("
              << fmt_double(machine.nodes_for_ranks(ranks), 0) << " nodes):\n";
    TextTable t({"variant", "modeled time", "vs full", "iterations"});
    double full_seconds = 0;
    for (const auto& variant : variants()) {
      const auto result =
          core::lacc_dist(p.graph, ranks, machine, variant.options);
      bench::check_against_truth(p.graph, result.cc.parent);
      metrics.add_run_prepass(
          name + " / " + variant.name, ranks, result.spmd,
          result.modeled_seconds, result.cc.prepass,
          {{"iterations", static_cast<double>(result.cc.iterations)}});
      if (full_seconds == 0) full_seconds = result.modeled_seconds;
      t.add_row({variant.name, fmt_seconds(result.modeled_seconds),
                 fmt_ratio(result.modeled_seconds / full_seconds),
                 std::to_string(result.cc.iterations)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: sparsity ablations hurt most on eukarya\n"
               "(many components to exploit) and least on M3 (few vertices\n"
               "converge early — Figure 7), mirroring Section VI-E.  The two\n"
               "prepass rows toggle ON the off-by-default Afforest pre-pass:\n"
               "ratios below 1x mean the pre-pass pays for itself.\n";
  return 0;
}
