// Shared plumbing for the paper-reproduction benchmark binaries.
//
// Every bench prints the rows/series of one table or figure from the paper
// (see DESIGN.md's experiment index).  Workload sizes scale with LACC_SCALE
// and the rank sweep with LACC_MAX_RANKS, so the same binaries run in
// seconds on a laptop or much larger when given hardware.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "baselines/parconnect.hpp"
#include "baselines/union_find.hpp"
#include "core/lacc_dist.hpp"
#include "core/lacc_serial.hpp"
#include "graph/csr.hpp"
#include "graph/testproblems.hpp"
#include "obs/metrics.hpp"
#include "sim/machine.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace lacc::bench {

/// Default problem scale for bench runs (LACC_SCALE, default 0.25: every
/// figure regenerates in seconds on two cores).
inline double problem_scale() { return env_double("LACC_SCALE", 0.25); }

/// Virtual-rank sweep: square counts up to LACC_MAX_RANKS (default 64).
/// The paper's Edison runs use 4 ranks per node, so ranks {4,16,64,256,1024}
/// correspond to nodes {1,4,16,64,256} — Figure 4's x-axis.
inline std::vector<int> rank_sweep() {
  const auto max_ranks = static_cast<int>(env_int("LACC_MAX_RANKS", 64));
  std::vector<int> sweep;
  for (int r = 4; r <= max_ranks; r *= 4) sweep.push_back(r);
  if (sweep.empty()) sweep.push_back(1);
  return sweep;
}

/// Banner with reproduction context, printed at the top of every bench.
inline void print_banner(const std::string& what, const std::string& paper) {
  std::cout << "=== " << what << " ===\n"
            << "Reproduces: " << paper << "\n"
            << "(LACC_SCALE=" << problem_scale()
            << ", LACC_MAX_RANKS=" << env_int("LACC_MAX_RANKS", 64)
            << "; modeled times use the alpha-beta-work cost model of the\n"
            << " named machine — see DESIGN.md for the substitution rationale)\n\n";
}

/// Verify a distributed result against union-find ground truth; aborts the
/// bench on mismatch so no figure is ever printed from a wrong run.
inline void check_against_truth(const graph::EdgeList& el,
                                const std::vector<VertexId>& parent) {
  const auto truth = baselines::union_find_cc(el);
  if (!core::same_partition(parent, truth.parent))
    throw Error("bench result does not match union-find ground truth");
}

/// Machine-readable metrics collector, one per bench main.  Runs recorded
/// while the instance is alive are written to
/// $LACC_METRICS_OUT/BENCH_<tool>.json on destruction (lacc-metrics-v1,
/// docs/OBSERVABILITY.md); with LACC_METRICS_OUT unset this is a no-op, so
/// tables printed to stdout never change.
class Metrics {
 public:
  explicit Metrics(std::string tool) : tool_(std::move(tool)) {
    config_ = {{"scale", problem_scale()},
               {"max_ranks",
                static_cast<double>(env_int("LACC_MAX_RANKS", 64))}};
    global_ = this;
  }
  ~Metrics() {
    global_ = nullptr;
    const std::string path = obs::write_metrics_file(tool_, config_, runs_);
    if (!path.empty()) std::cerr << "metrics written to " << path << "\n";
  }
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// The live collector of this bench process, or nullptr (for helpers
  /// like strong_scaling that record into whatever bench is running).
  static Metrics* global() { return global_; }

  /// Record one SPMD run with its per-rank stats.
  void add_run(const std::string& name, int ranks,
               const sim::SpmdResult& spmd, double modeled_seconds,
               obs::Scalars scalars = {}) {
    runs_.push_back(obs::make_run_record(name, ranks, spmd.stats,
                                         modeled_seconds, spmd.wall_seconds,
                                         std::move(scalars)));
  }

  /// Record one SPMD run carrying the v4 prepass attribution block (omitted
  /// from the JSON when the pre-pass did not run).
  void add_run_prepass(const std::string& name, int ranks,
                       const sim::SpmdResult& spmd, double modeled_seconds,
                       const core::PrepassStats& prepass,
                       obs::Scalars scalars = {}) {
    auto rec = obs::make_run_record(name, ranks, spmd.stats, modeled_seconds,
                                    spmd.wall_seconds, std::move(scalars));
    rec.prepass = core::prepass_scalars(prepass);
    runs_.push_back(std::move(rec));
  }

  /// Record a serial / scalar-only measurement (no per-rank stats).
  void add_simple(const std::string& name, obs::Scalars scalars) {
    runs_.push_back(
        obs::make_run_record(name, 0, {}, 0.0, 0.0, std::move(scalars)));
  }

  /// Record a pre-built run (serving benches attach the v3 serve block).
  void add_record(obs::RunRecord rec) { runs_.push_back(std::move(rec)); }

 private:
  static inline Metrics* global_ = nullptr;
  std::string tool_;
  obs::Scalars config_;
  std::vector<obs::RunRecord> runs_;
};

}  // namespace lacc::bench
