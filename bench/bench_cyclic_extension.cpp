// Extension bench — the paper's closing conjecture, implemented:
// "As future work, we plan to improve our vector operations so that they
//  can avoid communication hot spots and work better on very sparse graphs
//  similar to the M3 graph ... Using cyclic distributions of vectors,
//  instead of the current block distribution used in CombBLAS, is one
//  possible approach."
// This bench runs LACC with block-aligned vs cyclic vectors and reports the
// extract-request imbalance and the modeled time on each Figure-4 graph.
#include "bench_common.hpp"

using namespace lacc;

namespace {

struct SkewStats {
  std::uint64_t max_rank = 0;
  std::uint64_t total = 0;
};

SkewStats request_skew(const sim::SpmdResult& spmd) {
  SkewStats out;
  for (const auto& stats : spmd.stats) {
    std::uint64_t rank_total = 0;
    for (const auto& [name, value] : stats.counters)
      if (name.rfind("extract_req_it", 0) == 0) rank_total += value;
    out.max_rank = std::max(out.max_rank, rank_total);
    out.total += rank_total;
  }
  return out;
}

}  // namespace

int main() {
  bench::print_banner(
      "Extension — cyclic vector distribution (the paper's future work)",
      "conclusion of Azad & Buluc, IPDPS 2019");
  bench::Metrics metrics("cyclic_extension");

  const auto& machine = sim::MachineModel::edison();
  const int ranks = bench::rank_sweep().back();
  const auto problems = graph::make_test_problems(bench::problem_scale());

  TextTable t({"graph", "block time", "cyclic time", "cyclic vs block",
               "block skew", "cyclic skew"});
  for (const auto& name : graph::figure4_names()) {
    const auto& p = graph::find_problem(problems, name);
    core::LaccOptions block_opt, cyclic_opt;
    cyclic_opt.cyclic_vectors = true;
    const auto block = core::lacc_dist(p.graph, ranks, machine, block_opt);
    bench::check_against_truth(p.graph, block.cc.parent);
    const auto cyclic = core::lacc_dist(p.graph, ranks, machine, cyclic_opt);
    bench::check_against_truth(p.graph, cyclic.cc.parent);
    metrics.add_run(name + " / block", ranks, block.spmd,
                    block.modeled_seconds);
    metrics.add_run(name + " / cyclic", ranks, cyclic.spmd,
                    cyclic.modeled_seconds);

    // Skew = busiest rank's share of extract requests relative to even.
    const auto bs = request_skew(block.spmd);
    const auto cs = request_skew(cyclic.spmd);
    auto skew = [&](const SkewStats& s) {
      return s.total == 0 ? 0.0
                          : static_cast<double>(s.max_rank) * ranks /
                                static_cast<double>(s.total);
    };
    t.add_row({name, fmt_seconds(block.modeled_seconds),
               fmt_seconds(cyclic.modeled_seconds),
               fmt_ratio(block.modeled_seconds / cyclic.modeled_seconds),
               fmt_ratio(skew(bs)), fmt_ratio(skew(cs))});
  }
  t.print(std::cout);
  std::cout
      << "\n(skew = busiest rank's extract-request load relative to a\n"
         " perfectly even spread; 1.0x = balanced.  \"cyclic vs block\"\n"
         " > 1.0x means the cyclic layout is faster.)\n\n"
         "Expected shape: cyclic flattens the hotspot everywhere, pays a\n"
         "realignment all-to-all around each mxv, and comes out ahead on\n"
         "the very sparse M3-like graph — precisely the trade the paper's\n"
         "conclusion anticipates.\n";
  return 0;
}
