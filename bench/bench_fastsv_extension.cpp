// Extension bench (beyond the paper): FastSV, the successor algorithm from
// the same group, against LACC and the distributed Multistep and
// ParConnect-like baselines on the Figure-4 graphs.  FastSV drops star bookkeeping entirely (one mxv, one
// grandparent extract, one min-accumulating assign per iteration) but
// cannot shrink its working set; LACC's converged-component tracking is the
// counter-trade.
#include "core/fastsv.hpp"

#include "baselines/multistep_dist.hpp"
#include "bench_scaling_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Extension — FastSV vs LACC vs Multistep vs ParConnect",
                      "future-work direction of Azad & Buluc, IPDPS 2019");
  bench::Metrics metrics("fastsv_extension");

  const auto& machine = sim::MachineModel::edison();
  const int ranks = bench::rank_sweep().back();
  const auto problems = graph::make_test_problems(bench::problem_scale());

  core::LaccOptions with_prepass;
  with_prepass.sampling_prepass = true;

  TextTable t({"graph", "LACC", "LACC+prepass", "FastSV", "Multistep",
               "ParConnect", "LACC iters", "prepass iters", "FastSV iters"});
  for (const auto& name : graph::figure4_names()) {
    const auto& p = graph::find_problem(problems, name);
    const auto lacc = core::lacc_dist(p.graph, ranks, machine);
    bench::check_against_truth(p.graph, lacc.cc.parent);
    const auto pp = core::lacc_dist(p.graph, ranks, machine, with_prepass);
    bench::check_against_truth(p.graph, pp.cc.parent);
    const auto fsv = core::fastsv_dist(p.graph, ranks, machine);
    bench::check_against_truth(p.graph, fsv.cc.parent);
    const auto ms = baselines::multistep_dist(p.graph, ranks, machine);
    bench::check_against_truth(p.graph, ms.cc.parent);
    const auto pc = baselines::parconnect_dist(p.graph, ranks, machine);
    bench::check_against_truth(p.graph, pc.cc.parent);
    metrics.add_run(
        name + " / lacc", ranks, lacc.spmd, lacc.modeled_seconds,
        {{"iterations", static_cast<double>(lacc.cc.iterations)}});
    metrics.add_run_prepass(
        name + " / lacc+prepass", ranks, pp.spmd, pp.modeled_seconds,
        pp.cc.prepass,
        {{"iterations", static_cast<double>(pp.cc.iterations)},
         {"baseline_modeled_seconds", lacc.modeled_seconds}});
    metrics.add_run(
        name + " / fastsv", ranks, fsv.spmd, fsv.modeled_seconds,
        {{"iterations", static_cast<double>(fsv.cc.iterations)},
         {"multistep_modeled_seconds", ms.modeled_seconds},
         {"parconnect_modeled_seconds", pc.modeled_seconds}});
    t.add_row({name, fmt_seconds(lacc.modeled_seconds),
               fmt_seconds(pp.modeled_seconds),
               fmt_seconds(fsv.modeled_seconds),
               fmt_seconds(ms.modeled_seconds),
               fmt_seconds(pc.modeled_seconds),
               std::to_string(lacc.cc.iterations),
               std::to_string(pp.cc.iterations),
               std::to_string(fsv.cc.iterations)});
  }
  t.print(std::cout);
  std::cout << "\n(Modeled seconds at " << ranks << " ranks = "
            << fmt_double(machine.nodes_for_ranks(ranks), 0)
            << " Edison nodes.)\nExpected shape: FastSV's lean loop (one "
               "mxv + one extract + one\nmin-assign, no star bookkeeping) "
               "beats LACC per iteration, matching\nthe published FastSV "
               "results; LACC narrows the gap on many-component\ngraphs "
               "where its converged-component tracking bites, and the\n"
               "Afforest-style pre-pass cuts rounds further by resolving\n"
               "most components locally before the first hook.\n";
  return 0;
}
