// Figure 3: the number of grandparent-extraction requests received by every
// process in two different iterations of LACC.  Conditional hooking pulls
// parents toward small vertex ids, so low-ranked processes receive far more
// requests — the skew that motivates the broadcast mitigation of
// Section V-B.
#include "bench_common.hpp"

using namespace lacc;

namespace {

void run_and_print(const graph::EdgeList& el, int ranks, bool mitigate) {
  core::LaccOptions options;
  options.hotspot_broadcast = mitigate;
  const auto result =
      core::lacc_dist(el, ranks, sim::MachineModel::edison(), options);
  bench::check_against_truth(el, result.cc.parent);
  if (auto* m = bench::Metrics::global())
    m->add_run(mitigate ? "eukarya.mitigated" : "eukarya.unmitigated", ranks,
               result.spmd, result.modeled_seconds);

  // Pick two iterations with interesting skew: the middle and the last
  // (the paper shows iterations 4 and 7 of a long run).
  const int iters = result.cc.iterations;
  const int mid = std::max(1, iters / 2);
  const int last = iters;
  std::cout << (mitigate ? "With" : "Without")
            << " hotspot mitigation (iterations " << mid << " and " << last
            << " of " << iters << "):\n";
  TextTable t({"process", "requests (iter " + std::to_string(mid) + ")",
               "requests (iter " + std::to_string(last) + ")"});
  for (std::size_t r = 0; r < result.spmd.stats.size(); ++r) {
    const auto& counters = result.spmd.stats[r].counters;
    auto lookup = [&](int it) -> std::uint64_t {
      const auto found = counters.find("extract_req_it" + std::to_string(it));
      return found == counters.end() ? 0 : found->second;
    };
    t.add_row({"P" + std::to_string(r), fmt_count(lookup(mid)),
               fmt_count(lookup(last))});
  }
  t.print(std::cout);

  const auto agg = sim::max_over_ranks(result.spmd.stats);
  std::cout << "max starcheck+shortcut modeled time: "
            << fmt_seconds(agg.regions.at("starcheck").modeled_seconds() +
                           agg.regions.at("shortcut").modeled_seconds())
            << "\n\n";
}

}  // namespace

int main() {
  bench::print_banner("Figure 3 — per-process GrB_extract request skew",
                      "Azad & Buluc, IPDPS 2019, Figure 3");
  bench::Metrics metrics("fig3_imbalance");

  // eukarya: Zipf-sized components laid out by ascending id, so hooked
  // parents concentrate on the low-id ranks with a decreasing gradient —
  // the paper's Figure 3 shape.
  const auto problems = graph::make_test_problems(bench::problem_scale());
  const auto& p = graph::find_problem(problems, "eukarya");
  std::cout << "Graph: " << p.name << " stand-in, " << fmt_count(p.graph.n)
            << " vertices, 16 virtual ranks\n\n";

  run_and_print(p.graph, 16, false);
  run_and_print(p.graph, 16, true);

  std::cout << "Expected shape: requests pile onto low-ranked processes\n"
               "(conditional hooking gives parents small ids).  The counter\n"
               "reports pre-mitigation load, so both tables show the same\n"
               "skew; the mitigated run converts the hot processes'\n"
               "all-to-all traffic into broadcasts, reducing modeled time.\n";
  return 0;
}
