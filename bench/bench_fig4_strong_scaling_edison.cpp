// Figure 4: strong scaling of LACC and ParConnect on Edison for the eight
// smaller test problems.  The paper reports LACC faster on all graphs and
// concurrencies, by 5.1x on average (min 1.2x, max 12.6x) at 256 nodes,
// with the largest wins on many-component graphs (archaea, eukarya) and
// near-parity on M3.
#include "bench_scaling_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Figure 4 — strong scaling on Edison (8 small graphs)",
                      "Azad & Buluc, IPDPS 2019, Figure 4");
  bench::Metrics metrics("fig4_strong_scaling_edison");

  const auto& machine = sim::MachineModel::edison();
  const auto sweep = bench::node_sweep(machine);
  const auto problems = graph::make_test_problems(bench::problem_scale());

  core::LaccOptions with_prepass;
  with_prepass.sampling_prepass = true;

  double min_speedup = 1e30, max_speedup = 0, sum_speedup = 0;
  double sum_prepass_gain = 0;
  int count = 0;
  for (const auto& name : graph::figure4_names()) {
    const auto& p = graph::find_problem(problems, name);
    const auto points = bench::strong_scaling(name, p.graph, machine, sweep);
    bench::print_scaling(name, machine, points, std::cout);
    const auto pp = bench::strong_scaling(name + " / prepass", p.graph,
                                          machine, sweep, with_prepass);
    const auto& last = points.back();
    const double speedup = last.parconnect_seconds / last.lacc_seconds;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    sum_speedup += speedup;
    sum_prepass_gain += last.lacc_seconds / pp.back().lacc_seconds;
    ++count;
    std::cout << "  with sampling pre-pass at " << last.nodes << " nodes: "
              << fmt_seconds(pp.back().lacc_seconds) << " ("
              << fmt_ratio(last.lacc_seconds / pp.back().lacc_seconds)
              << " vs plain LACC)\n\n";
  }

  std::cout << "At the largest node count, LACC vs ParConnect speedup: avg "
            << fmt_ratio(sum_speedup / count) << " (min "
            << fmt_ratio(min_speedup) << ", max " << fmt_ratio(max_speedup)
            << ")\nPaper (256 nodes): avg 5.1x (min 1.2x, max 12.6x); the\n"
               "largest wins land on the many-component protein graphs and\n"
               "the smallest on single-component / very sparse graphs.\n"
               "Afforest-style pre-pass vs plain LACC at the largest node "
               "count: avg "
            << fmt_ratio(sum_prepass_gain / count)
            << " (beyond the paper; biggest on many-component graphs).\n";
  return 0;
}
