// Figure 5: strong scaling on Cori KNL for the graphs with the most
// connected components.  Also checks the paper's observation that both
// algorithms run faster on Edison than on Cori at equal node counts.
#include "bench_scaling_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner(
      "Figure 5 — strong scaling on Cori KNL (many-component graphs)",
      "Azad & Buluc, IPDPS 2019, Figure 5");
  bench::Metrics metrics("fig5_strong_scaling_cori");

  const auto& cori = sim::MachineModel::cori_knl();
  const auto& edison = sim::MachineModel::edison();
  const auto sweep = bench::node_sweep(cori);
  const auto problems = graph::make_test_problems(bench::problem_scale());

  core::LaccOptions with_prepass;
  with_prepass.sampling_prepass = true;

  for (const auto& name : graph::figure5_names()) {
    const auto& p = graph::find_problem(problems, name);
    const auto points = bench::strong_scaling(name, p.graph, cori, sweep);
    bench::print_scaling(name, cori, points, std::cout);
    const auto pp = bench::strong_scaling(name + " / prepass", p.graph, cori,
                                          sweep, with_prepass);
    std::cout << "  with sampling pre-pass at " << pp.back().nodes
              << " nodes: " << fmt_seconds(pp.back().lacc_seconds) << " ("
              << fmt_ratio(points.back().lacc_seconds / pp.back().lacc_seconds)
              << " vs plain LACC)\n\n";
  }

  // Edison-vs-Cori per node, largest sweep point, one representative graph.
  const auto& p = graph::find_problem(problems, "eukarya");
  const int ranks =
      bench::square_ranks(sweep.back() * cori.procs_per_node);
  const auto on_edison = core::lacc_dist(p.graph, ranks, edison);
  const auto on_cori = core::lacc_dist(p.graph, ranks, cori);
  std::cout << "Same node count, eukarya: Edison "
            << fmt_seconds(on_edison.modeled_seconds) << " vs Cori "
            << fmt_seconds(on_cori.modeled_seconds) << " — Edison is "
            << fmt_ratio(on_cori.modeled_seconds / on_edison.modeled_seconds)
            << " faster per node.\nPaper: \"both LACC and ParConnect run "
               "faster on Edison than Cori given the same number of nodes\" "
               "(fewer, faster cores win on sparse graph manipulation).\n";
  return 0;
}
