// Figure 6: the two >1TB graphs (Metaclust50, iso_m100).  The paper shows
// LACC scaling to 4096 nodes (262,144 cores) and finishing in ~10 seconds
// while ParConnect stops scaling beyond 16,384 cores — its flat-MPI
// pairwise all-to-alls pay alpha*(p-1) latency where LACC's hypercube pays
// alpha*log(p).
#include "bench_scaling_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Figure 6 — large graphs at extreme scale",
                      "Azad & Buluc, IPDPS 2019, Figure 6");
  bench::Metrics metrics("fig6_large_graphs");

  const auto& machine = sim::MachineModel::cori_knl();
  // The large-graph sweep extends past the small-graph one (the paper's
  // x-axis reaches 4K nodes); bounded by LACC_MAX_RANKS_LARGE.
  auto sweep = bench::node_sweep(machine);
  const auto extended_nodes = static_cast<int>(
      env_int("LACC_MAX_RANKS_LARGE", env_int("LACC_MAX_RANKS", 64) * 4) /
      machine.procs_per_node);
  for (int nodes = sweep.back() * 4; nodes <= extended_nodes; nodes *= 4)
    sweep.push_back(nodes);

  // Generate the stand-ins a notch larger than the small-graph benches.
  const auto problems =
      graph::make_test_problems(bench::problem_scale() * 2.0);

  for (const auto& name : graph::figure6_names()) {
    const auto& p = graph::find_problem(problems, name);
    const auto points = bench::strong_scaling(name, p.graph, machine, sweep);
    bench::print_scaling(name, machine, points, std::cout);

    // Scaling-shape summary: does each algorithm still improve from the
    // second-largest to the largest configuration?
    if (points.size() >= 2) {
      const auto& a = points[points.size() - 2];
      const auto& b = points.back();
      std::cout << "  " << name << " from " << a.nodes << " to " << b.nodes
                << " nodes: LACC "
                << fmt_ratio(a.lacc_seconds / b.lacc_seconds)
                << ", ParConnect "
                << fmt_ratio(a.parconnect_seconds / b.parconnect_seconds)
                << " (>1.0x = still scaling)\n\n";
    }
  }
  std::cout << "Expected shape: LACC keeps improving (or degrades gently)\n"
               "while ParConnect flattens or regresses as alpha*(p-1)\n"
               "latency terms take over — the paper's 2-hours-vs-10-seconds\n"
               "gap at 262K cores is the extreme end of this curve.\n";
  return 0;
}
