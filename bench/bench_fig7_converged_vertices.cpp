// Figure 7: percentage of vertices in converged connected components per
// iteration, for the five graphs with the most components.  A direct
// algorithmic measurement (no cost model): it shows why LACC's sparse
// vectors pay off on protein-similarity graphs and why M3 resists
// (most of its iterations keep <5% of vertices converged in the paper).
#include "bench_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Figure 7 — % vertices in converged components",
                      "Azad & Buluc, IPDPS 2019, Figure 7");
  bench::Metrics metrics("fig7_converged_vertices");

  const auto problems = graph::make_test_problems(bench::problem_scale());
  const auto names = graph::figure7_names();

  std::vector<core::CcResult> results;
  int max_iters = 0;
  for (const auto& name : names) {
    const auto& p = graph::find_problem(problems, name);
    const graph::Csr g(p.graph);
    results.push_back(core::lacc_grb(g));
    bench::check_against_truth(p.graph, results.back().parent);
    max_iters = std::max(max_iters, results.back().iterations);
    const auto& trace = results.back().trace;
    metrics.add_simple(
        name,
        {{"iterations", static_cast<double>(results.back().iterations)},
         {"final_converged_pct",
          trace.empty() ? 0.0
                        : 100.0 *
                              static_cast<double>(
                                  trace.back().converged_vertices) /
                              static_cast<double>(p.graph.n)}});
  }

  std::vector<std::string> header{"iteration"};
  for (const auto& name : names) header.push_back(name);
  TextTable t(header);
  for (int it = 1; it <= max_iters; ++it) {
    std::vector<std::string> row{std::to_string(it)};
    for (std::size_t k = 0; k < names.size(); ++k) {
      const auto& trace = results[k].trace;
      if (it <= static_cast<int>(trace.size())) {
        const auto& p = graph::find_problem(problems, names[k]);
        const double pct = 100.0 *
                           static_cast<double>(trace[it - 1].converged_vertices) /
                           static_cast<double>(p.graph.n);
        row.push_back(fmt_double(pct, 1) + "%");
      } else {
        row.push_back("done");
      }
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: the protein graphs (archaea, eukarya) and\n"
               "web graphs converge a large fraction of vertices within a\n"
               "few iterations; M3's tiny path-shaped components converge\n"
               "late, which is why LACC gains least there (Section VI-E).\n";
  return 0;
}
