// Figure 8: performance breakdown of LACC's four phases (conditional
// hooking, unconditional hooking, shortcut, starcheck) across the strong
// scaling sweep, for three representative graphs.  The paper observes that
// all four phases scale, and that conditional hooking costs more than
// unconditional hooking because the latter exploits the extra sparsity of
// Lemma 2.
#include "bench_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Figure 8 — per-phase scaling breakdown",
                      "Azad & Buluc, IPDPS 2019, Figure 8");
  bench::Metrics metrics("fig8_phase_breakdown");

  const auto& machine = sim::MachineModel::edison();
  const auto sweep = bench::rank_sweep();
  const auto problems = graph::make_test_problems(bench::problem_scale());
  const char* phases[] = {"cond-hook", "uncond-hook", "shortcut", "starcheck"};

  for (const auto& name : graph::figure8_names()) {
    const auto& p = graph::find_problem(problems, name);
    std::cout << name << " (modeled seconds per phase, max over ranks):\n";
    TextTable t({"nodes", "cond-hook", "uncond-hook", "shortcut", "starcheck",
                 "total"});
    double last_cond = 0, last_uncond = 0;
    for (const int ranks : sweep) {
      const auto result = core::lacc_dist(p.graph, ranks, machine);
      bench::check_against_truth(p.graph, result.cc.parent);
      metrics.add_run(name, ranks, result.spmd, result.modeled_seconds,
                      {{"nodes", machine.nodes_for_ranks(ranks)}});
      const auto agg = sim::max_over_ranks(result.spmd.stats);
      std::vector<std::string> row{
          fmt_double(machine.nodes_for_ranks(ranks), 0)};
      for (const char* phase : phases) {
        const auto found = agg.regions.find(phase);
        const double seconds =
            found == agg.regions.end() ? 0 : found->second.modeled_seconds();
        row.push_back(fmt_seconds(seconds));
      }
      row.push_back(fmt_seconds(result.modeled_seconds));
      t.add_row(row);
      last_cond = agg.regions.count("cond-hook")
                      ? agg.regions.at("cond-hook").modeled_seconds()
                      : 0;
      last_uncond = agg.regions.count("uncond-hook")
                        ? agg.regions.at("uncond-hook").modeled_seconds()
                        : 0;
    }
    t.print(std::cout);
    std::cout << "  cond-hook >= uncond-hook at the largest sweep point: "
              << (last_cond >= last_uncond ? "yes" : "no")
              << " (paper: conditional hooking is usually more expensive;\n"
                 "   unconditional hooking exploits Lemma-2 sparsity)\n\n";
  }
  return 0;
}
