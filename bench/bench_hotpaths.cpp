// Hot-path microbenchmarks: wall-clock time of the distributed mxv and
// scatter kernels in the regime that dominates late LACC iterations — a
// small active set (< 5 % of vertices) on a p = 16 virtual-rank grid.
//
// Modeled time is what the figure benches report; this bench guards the
// *implementation* cost of the kernels themselves (allocation churn, full
// O(n/p) scans over mostly-converged vertices), which the modeled clock by
// design does not see.  Run it before and after touching ops.cpp or the
// lacc_dist iteration loop.
//
// Environment:
//   LACC_SCALE          problem-size multiplier (default 0.25, as elsewhere)
//   LACC_HOTPATH_ITERS  repetitions per kernel (default 40)
//   LACC_HOTPATH_SMOKE  set to 1 for a one-tiny-graph CI smoke run
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/lacc_dist.hpp"
#include "dist/dist_mat.hpp"
#include "dist/ops.hpp"
#include "graph/generators.hpp"
#include "sim/runtime.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"

using namespace lacc;

namespace {

constexpr int kRanks = 16;

struct Workload {
  graph::EdgeList el;
  int iters;
  double active_fraction;
};

/// LACC_SCALE clamped so degenerate values (0, negative) still yield a
/// valid, if tiny, workload instead of tripping generator preconditions.
double hotpath_scale() {
  return std::max(env_double("LACC_SCALE", 0.25), 0.01);
}

Workload make_workload() {
  Workload w;
  if (env_int("LACC_HOTPATH_SMOKE", 0) != 0) {
    w.el = graph::erdos_renyi(2000, 6000, 7);
    w.iters = 2;
  } else {
    const double scale = hotpath_scale();
    const auto n = static_cast<VertexId>(240000 * scale);
    w.el = graph::erdos_renyi(n, 4 * static_cast<EdgeId>(n), 7);
    w.iters = static_cast<int>(env_int("LACC_HOTPATH_ITERS", 40));
  }
  w.active_fraction = 0.04;  // the late-iteration survivor share
  return w;
}

/// Time `body` (already inside the SPMD region) over `iters` repetitions,
/// bracketed by barriers so every rank is measured over the same span.
template <typename Body>
double timed(sim::Comm& world, int iters, Body&& body) {
  world.barrier();
  Timer timer;
  for (int it = 0; it < iters; ++it) body(it);
  world.barrier();
  return timer.seconds();
}

void report(const std::string& name, double seconds, int iters) {
  std::cout << "  " << name << ": " << seconds * 1e3 / iters
            << " ms/call (" << seconds << " s total, " << iters
            << " calls)\n";
}

}  // namespace

int main() {
  bench::Metrics metrics("hotpaths");
  const Workload w = make_workload();
  const VertexId n = w.el.n;
  const auto active =
      static_cast<VertexId>(static_cast<double>(n) * w.active_fraction);
  std::cout << "=== Hot-path kernels, sparse regime ===\n"
            << "n=" << n << " m=" << w.el.edges.size() << " ranks=" << kRanks
            << " active=" << active << " (" << w.active_fraction * 100
            << "%) iters=" << w.iters << "\n";

  sim::run_spmd(kRanks, sim::MachineModel::local(), [&](sim::Comm& world) {
    dist::ProcGrid grid(world);
    dist::DistCsc A(grid, w.el);
    const dist::CommTuning tuning;

    // Sparse input vector: `active` surviving vertices, spread across the
    // id space the way late iterations leave them (strided, not clustered).
    dist::DistVec<VertexId> x(grid, n);
    for (const VertexId g : x.owned())
      if (g % (n / std::max<VertexId>(active, 1) + 1) == 0) x.set(g, g);

    const double mxv_s = timed(world, w.iters, [&](int) {
      auto y = dist::mxv_select2nd_min(grid, A, x, dist::MaskSpec{}, tuning);
    });
    const double mxvmm_s = timed(world, w.iters, [&](int) {
      auto y = dist::mxv_select2nd_minmax(grid, A, x, dist::MaskSpec{}, tuning);
    });

    // Scatter kernels: one (root, proposal) pair per active vertex, target
    // ids skewed low the way conditional hooking skews them.
    dist::DistVec<VertexId> f(grid, n);
    for (const VertexId g : f.owned()) f.set(g, g);
    std::vector<dist::Tuple<VertexId>> pair_template;
    for (const VertexId g : x.owned())
      if (x.has(g)) pair_template.push_back({g % (n / 4 + 1), g});

    const double assign_s = timed(world, w.iters, [&](int) {
      auto pairs = pair_template;
      dist::scatter_assign_min(grid, f, std::move(pairs), tuning);
    });
    const double accum_s = timed(world, w.iters, [&](int) {
      auto pairs = pair_template;
      dist::scatter_accumulate_min(grid, f, std::move(pairs), tuning);
    });

    dist::DistVec<std::uint8_t> star(grid, n);
    star.fill(1);
    std::vector<VertexId> target_template;
    for (const auto& t : pair_template) target_template.push_back(t.index);
    const double set_s = timed(world, w.iters, [&](int) {
      auto targets = target_template;
      dist::scatter_set(grid, star, std::move(targets), 0, tuning);
    });

    if (world.rank() == 0) {
      std::cout << "\nper-kernel wall time (rank 0 view, all ranks on the "
                   "same span):\n";
      report("mxv_select2nd (sparse)", mxv_s, w.iters);
      report("mxv_select2nd_minmax (sparse)", mxvmm_s, w.iters);
      report("scatter_assign_min", assign_s, w.iters);
      report("scatter_accumulate_min", accum_s, w.iters);
      report("scatter_set", set_s, w.iters);
      // Only rank 0 records, so this is race-free inside the SPMD region.
      metrics.add_simple(
          "kernels", {{"iters", static_cast<double>(w.iters)},
                      {"mxv_select2nd_seconds", mxv_s},
                      {"mxv_select2nd_minmax_seconds", mxvmm_s},
                      {"scatter_assign_min_seconds", assign_s},
                      {"scatter_accumulate_min_seconds", accum_s},
                      {"scatter_set_seconds", set_s}});
    }
  });

  // End-to-end: a many-component graph whose tail iterations are sparse —
  // the Fig. 7 regime where active-set iteration should pay off.
  {
    const auto el = env_int("LACC_HOTPATH_SMOKE", 0) != 0
                        ? graph::clustered_components(2000, 80, 5.0, 11)
                        : graph::clustered_components(
                              static_cast<VertexId>(120000 * hotpath_scale()),
                              static_cast<VertexId>(4000 * hotpath_scale()),
                              6.0, 11);
    Timer timer;
    const auto result = core::lacc_dist(el, kRanks, sim::MachineModel::local());
    std::cout << "  lacc_dist end-to-end: " << timer.seconds() << " s wall, "
              << result.cc.iterations << " iterations, modeled "
              << result.modeled_seconds << " s\n";
    metrics.add_run("lacc_dist_end_to_end", kRanks, result.spmd,
                    result.modeled_seconds,
                    {{"iterations", static_cast<double>(result.cc.iterations)}});
  }
  return 0;
}
