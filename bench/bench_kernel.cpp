// bench_kernel — the analytics substrate served from epoch snapshots.
//
// Sweeps the three semiring kernels (BFS, PageRank, triangle counting) over
// two structural regimes (RMAT power-law, mesh3d stencil) and the rank
// counts the kernel tests pin (1, 4, 9).  Every cell is verified against
// the serial reference oracles before it is printed, and the bench asserts
// the determinism contract: BFS distances and triangle counts bit-identical
// across rank counts, PageRank pinned by tolerance (summation order moves
// with the grid).  Modeled seconds come from the same alpha-beta-work cost
// model as the LACC benches.
//
// With LACC_METRICS_OUT set, writes BENCH_kernel.json (lacc-metrics-v7)
// carrying one run per graph x ranks with the per-kernel "kernels" block.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "kernel/kernels.hpp"
#include "kernel/reference.hpp"
#include "kernel/view.hpp"

namespace lacc::bench {
namespace {

constexpr VertexId kSource = 0;

struct Workload {
  std::string name;
  graph::EdgeList graph;
};

std::vector<Workload> make_workloads() {
  const double scale = problem_scale();
  std::vector<Workload> loads;
  {
    const int rmat_scale =
        std::max(8, static_cast<int>(std::lround(11 + std::log2(scale))));
    const auto edges =
        static_cast<EdgeId>((VertexId{1} << rmat_scale) * 8);
    loads.push_back({"rmat", graph::rmat(rmat_scale, edges, /*seed=*/5)});
  }
  {
    const auto side = std::max<VertexId>(
        6, static_cast<VertexId>(std::lround(16 * std::cbrt(scale))));
    loads.push_back({"mesh3d", graph::mesh3d(side, side, side)});
  }
  return loads;
}

struct Cell {
  kernel::BfsResult bfs;
  kernel::PageRankResult pr;
  kernel::TriangleCountResult tc;
};

/// Run all three kernels on one view and verify each against its oracle.
Cell run_cell(const Workload& load, const kernel::GraphView& view,
              const kernel::KernelOptions& options) {
  Cell cell;
  cell.bfs = kernel::bfs(view, kSource, options);
  if (cell.bfs.dist != kernel::reference_bfs_distances(load.graph, kSource))
    throw Error("BFS distances disagree with the reference oracle");

  cell.pr = kernel::pagerank(view, options);
  // Elementwise against the oracle: symmetric meshes carry analytically
  // tied ranks, so a top-k id comparison would flip on last-bit rounding.
  const auto truth = kernel::reference_pagerank(
      load.graph, options.damping, options.tolerance, options.max_iterations);
  if (cell.pr.rank.size() != truth.size())
    throw Error("PageRank vector size disagrees with the reference oracle");
  for (std::size_t v = 0; v < truth.size(); ++v) {
    if (std::abs(cell.pr.rank[v] - truth[v]) > 1e-8)
      throw Error("PageRank disagrees with the reference oracle");
  }

  cell.tc = kernel::triangle_count(view, options);
  if (cell.tc.triangles != kernel::reference_triangle_count(load.graph))
    throw Error("triangle count disagrees with the reference oracle");
  return cell;
}

}  // namespace
}  // namespace lacc::bench

int main() {
  using namespace lacc;
  using namespace lacc::bench;

  print_banner("bench_kernel — analytics kernels over epoch snapshots",
               "multi-kernel extension of the GraphBLAS machinery (the "
               "mxv/SpGEMM shapes of Sections IV-V with swapped semirings)");
  Metrics metrics("kernel");

  const auto machine = sim::MachineModel::edison();
  const kernel::KernelOptions options;
  const int ranks_sweep[] = {1, 4, 9};

  try {
    for (const Workload& load : make_workloads()) {
      std::cout << "Workload: " << load.name << ", "
                << fmt_count(load.graph.n) << " vertices, "
                << fmt_count(load.graph.edges.size()) << " edges\n";
      TextTable table(
          {"ranks", "kernel", "rounds", "result", "modeled", "words"});
      const Cell* base = nullptr;
      Cell first;
      for (const int ranks : ranks_sweep) {
        const auto view =
            kernel::GraphView::from_edges(load.graph, ranks, machine);
        const Cell cell = run_cell(load, view, options);
        if (base == nullptr) {
          first = cell;
          base = &first;
        } else {
          // The determinism contract across rank counts: exact for BFS and
          // TC, tolerance-pinned for PageRank.
          if (cell.bfs.dist != base->bfs.dist)
            throw Error("BFS distances differ across rank counts");
          if (cell.tc.triangles != base->tc.triangles)
            throw Error("triangle counts differ across rank counts");
        }
        table.add_row({fmt_count(ranks), "bfs",
                       fmt_count(cell.bfs.stats.rounds),
                       fmt_count(cell.bfs.reached) + " reached",
                       fmt_seconds(cell.bfs.stats.modeled_seconds),
                       fmt_count(cell.bfs.stats.words_moved)});
        table.add_row({fmt_count(ranks), "pagerank",
                       fmt_count(cell.pr.stats.rounds),
                       (cell.pr.converged ? "converged" : "iter-capped"),
                       fmt_seconds(cell.pr.stats.modeled_seconds),
                       fmt_count(cell.pr.stats.words_moved)});
        table.add_row({fmt_count(ranks), "tc",
                       fmt_count(cell.tc.stats.rounds),
                       fmt_count(cell.tc.triangles) + " tri",
                       fmt_seconds(cell.tc.stats.modeled_seconds),
                       fmt_count(cell.tc.stats.words_moved)});

        auto rec = obs::make_run_record(
            load.name + "_r" + std::to_string(ranks), ranks,
            cell.tc.stats.spmd.stats,
            cell.bfs.stats.modeled_seconds +
                cell.pr.stats.modeled_seconds +
                cell.tc.stats.modeled_seconds,
            cell.bfs.stats.wall_seconds + cell.pr.stats.wall_seconds +
                cell.tc.stats.wall_seconds,
            {{"vertices", static_cast<double>(load.graph.n)},
             {"edges", static_cast<double>(load.graph.edges.size())},
             {"stored_entries", static_cast<double>(view.global_nnz())}});
        rec.kernels.push_back(
            {{"kernel_id", 0.0},
             {"invocations", 1.0},
             {"rounds", static_cast<double>(cell.bfs.stats.rounds)},
             {"modeled_seconds", cell.bfs.stats.modeled_seconds},
             {"words_moved",
              static_cast<double>(cell.bfs.stats.words_moved)},
             {"reached", static_cast<double>(cell.bfs.reached)}});
        rec.kernels.push_back(
            {{"kernel_id", 1.0},
             {"invocations", 1.0},
             {"rounds", static_cast<double>(cell.pr.stats.rounds)},
             {"modeled_seconds", cell.pr.stats.modeled_seconds},
             {"words_moved",
              static_cast<double>(cell.pr.stats.words_moved)},
             {"l1_residual", cell.pr.l1_residual},
             {"converged", cell.pr.converged ? 1.0 : 0.0}});
        rec.kernels.push_back(
            {{"kernel_id", 2.0},
             {"invocations", 1.0},
             {"rounds", static_cast<double>(cell.tc.stats.rounds)},
             {"modeled_seconds", cell.tc.stats.modeled_seconds},
             {"words_moved",
              static_cast<double>(cell.tc.stats.words_moved)},
             {"triangles", static_cast<double>(cell.tc.triangles)}});
        metrics.add_record(std::move(rec));
      }
      table.print(std::cout);
      std::cout << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "All cells verified against the serial reference oracles; "
               "BFS and TC bit-identical across ranks 1/4/9.\n";
  return 0;
}
