// Kernel microbenchmarks (google-benchmark): the serial GraphBLAS
// primitives, the sorting machinery under the distributed kernels, and the
// serial CC algorithms, so kernel-level regressions are visible without
// running the figure harnesses.
#include <benchmark/benchmark.h>

#include "baselines/serial_cc.hpp"
#include "core/lacc_dist.hpp"
#include "baselines/union_find.hpp"
#include "core/lacc_omp.hpp"
#include "core/lacc_serial.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "dist/dist_mat.hpp"
#include "dist/ops.hpp"
#include "grb/ops.hpp"
#include "sim/runtime.hpp"
#include "support/rng.hpp"
#include "support/sort.hpp"

namespace {

using namespace lacc;

const graph::Csr& medium_graph() {
  static const graph::Csr g(graph::erdos_renyi(20000, 80000, 42));
  return g;
}

const graph::Csr& clustered_graph() {
  static const graph::Csr g(graph::clustered_components(20000, 600, 8.0, 7));
  return g;
}

void BM_GrbMxvDense(benchmark::State& state) {
  const auto& g = medium_graph();
  auto f = grb::Vector<VertexId>::full(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) f.set(v, v);
  for (auto _ : state) {
    auto w = grb::mxv_select2nd(g, f, grb::MinOp{}, grb::no_mask());
    benchmark::DoNotOptimize(w);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_GrbMxvDense);

void BM_GrbMxvSparse(benchmark::State& state) {
  const auto& g = medium_graph();
  grb::Vector<VertexId> f(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); v += 50) f.set(v, v);
  for (auto _ : state) {
    auto w = grb::mxv_select2nd(g, f, grb::MinOp{}, grb::no_mask());
    benchmark::DoNotOptimize(w);
  }
}
BENCHMARK(BM_GrbMxvSparse);

void BM_RadixSortPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> base_keys(n);
  std::vector<std::uint64_t> base_vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    base_keys[i] = rng();
    base_vals[i] = i;
  }
  for (auto _ : state) {
    auto keys = base_keys;
    auto vals = base_vals;
    radix_sort_pairs(keys, vals);
    benchmark::DoNotOptimize(keys);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_UnionFind(benchmark::State& state) {
  const auto& g = medium_graph();
  for (auto _ : state) {
    auto result = baselines::union_find_cc(g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_UnionFind);

void BM_SerialLaccGrb(benchmark::State& state) {
  const auto& g = clustered_graph();
  for (auto _ : state) {
    auto result = core::lacc_grb(g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SerialLaccGrb);

void BM_SerialAwerbuchShiloach(benchmark::State& state) {
  const auto& g = clustered_graph();
  for (auto _ : state) {
    auto result = core::awerbuch_shiloach(g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SerialAwerbuchShiloach);

void BM_AwerbuchShiloachOmp(benchmark::State& state) {
  const auto& g = clustered_graph();
  for (auto _ : state) {
    auto result = core::awerbuch_shiloach_omp(g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AwerbuchShiloachOmp);

void BM_BfsCc(benchmark::State& state) {
  const auto& g = clustered_graph();
  for (auto _ : state) {
    auto result = baselines::bfs_cc(g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BfsCc);

void BM_LabelPropagation(benchmark::State& state) {
  const auto& g = clustered_graph();
  for (auto _ : state) {
    auto result = baselines::label_propagation(g);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LabelPropagation);

// Distributed kernels: wall time of one collective kernel on 4 virtual
// ranks (includes thread scheduling; modeled time is what the figures use,
// this guards against real-time regressions in the runtime itself).
void BM_DistMxvDense(benchmark::State& state) {
  const auto el = graph::erdos_renyi(20000, 80000, 42);
  for (auto _ : state) {
    sim::run_spmd(4, sim::MachineModel::local(), [&](sim::Comm& world) {
      dist::ProcGrid grid(world);
      dist::DistCsc A(grid, el);
      dist::DistVec<VertexId> x(grid, el.n);
      for (const VertexId g : x.owned()) x.set(g, g);
      auto y = dist::mxv_select2nd_min(grid, A, x, dist::MaskSpec{},
                                       dist::CommTuning{});
      benchmark::DoNotOptimize(y);
    });
  }
}
BENCHMARK(BM_DistMxvDense)->Unit(benchmark::kMillisecond);

void BM_DistGatherAt(benchmark::State& state) {
  const VertexId n = 50000;
  for (auto _ : state) {
    sim::run_spmd(4, sim::MachineModel::local(), [&](sim::Comm& world) {
      dist::ProcGrid grid(world);
      dist::DistVec<VertexId> u(grid, n), targets(grid, n);
      for (const VertexId g : u.owned()) {
        u.set(g, g);
        targets.set(g, (g * 7919) % n);
      }
      auto out = dist::gather_at(grid, u, targets, dist::CommTuning{});
      benchmark::DoNotOptimize(out);
    });
  }
}
BENCHMARK(BM_DistGatherAt)->Unit(benchmark::kMillisecond);

void BM_DistLaccEndToEnd(benchmark::State& state) {
  const auto el = graph::clustered_components(20000, 600, 8.0, 7);
  for (auto _ : state) {
    auto result = core::lacc_dist(el, 4, sim::MachineModel::local());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DistLaccEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
