// Section VI-F: LACC inside Markov clustering.  HipMCL extracts clusters by
// running connected components on the converged (symmetrized) matrix; the
// paper reports LACC being up to 3288x faster at that step than the
// shared-memory algorithm used by the original MCL software on 1024 Edison
// nodes.  This bench compares distributed LACC against a single-threaded
// label-propagation pass (the original MCL's approach) on a protein-like
// converged matrix.
#include "baselines/serial_cc.hpp"
#include "bench_common.hpp"
#include "support/timer.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Section VI-F — LACC as HipMCL's cluster-extraction step",
                      "Azad & Buluc, IPDPS 2019, Section VI-F");

  // The converged MCL matrix of a protein-similarity network is exactly
  // the many-small-dense-clusters regime the iso_m100 stand-in models.
  // This bench uses a 4x larger stand-in than the figure benches: the
  // paper's 3288x gap is a large-graph phenomenon, and at tiny sizes a
  // single thread finishes before parallelism can pay for itself.
  const auto problems = graph::make_test_problems(bench::problem_scale() * 4);
  const auto& p = graph::find_problem(problems, "iso_m100");
  const graph::Csr g(p.graph);
  std::cout << "Converged-matrix stand-in: " << fmt_count(g.num_vertices())
            << " proteins, " << fmt_count(g.num_edges()) << " similarities, "
            << fmt_count(core::count_components(
                   baselines::union_find_cc(g).parent))
            << " clusters\n\n";

  bench::Metrics metrics("mcl_pipeline");

  // Original MCL: single-threaded label propagation (measured wall time,
  // converted to modeled time at one Edison rank's work rate).
  Timer timer;
  const auto lp = baselines::label_propagation(g);
  const double lp_wall = timer.seconds();
  bench::check_against_truth(p.graph, lp.parent);
  metrics.add_simple("mcl_label_propagation", {{"wall_seconds", lp_wall}});

  TextTable t({"algorithm", "nodes", "time", "kind"});
  t.add_row({"MCL's CC (label propagation, 1 thread)", "1",
             fmt_seconds(lp_wall), "wall"});
  const auto& machine = sim::MachineModel::edison();
  double best = 1e30;
  for (const int ranks : bench::rank_sweep()) {
    const auto result = core::lacc_dist(p.graph, ranks, machine);
    bench::check_against_truth(p.graph, result.cc.parent);
    t.add_row({"LACC", fmt_double(machine.nodes_for_ranks(ranks), 0),
               fmt_seconds(result.modeled_seconds), "modeled"});
    metrics.add_run("lacc_extraction", ranks, result.spmd,
                    result.modeled_seconds,
                    {{"lp_wall_seconds", lp_wall}});
    best = std::min(best, result.modeled_seconds);
  }
  t.print(std::cout);
  std::cout << "\nBest LACC configuration is " << fmt_ratio(lp_wall / best)
            << " faster than the single-threaded extraction (paper: 3288x on\n"
               "1024 Edison nodes at full scale — the gap grows with both\n"
               "graph size and node count).\nSee examples/protein_clustering_"
               "mcl for the full mini-MCL pipeline.\n";
  return 0;
}
