// Strong-scaling harness shared by the Figure 4 / 5 / 6 benches.
//
// The comparison is at equal *node* counts, as in the paper: LACC runs 4
// multithreaded ranks per node, ParConnect runs flat MPI with one rank per
// core (24 on Edison, 68 on Cori) — the configuration difference the paper
// identifies as one root of ParConnect's scaling wall.
#pragma once

#include "bench_common.hpp"

namespace lacc::bench {

/// One (nodes) measurement for both algorithms.
struct ScalingPoint {
  int nodes = 0;
  int lacc_ranks = 0;
  int parconnect_ranks = 0;
  double lacc_seconds = 0;
  double parconnect_seconds = 0;
};

/// Largest perfect square <= cap(v): our grids are square, so flat-MPI rank
/// counts round down to a square (the paper's runs are squares by design).
inline int square_ranks(int wanted, int cap = 1024) {
  const int v = std::min(wanted, cap);
  int q = 1;
  while ((q + 1) * (q + 1) <= v) ++q;
  return q * q;
}

/// Node sweep corresponding to rank_sweep() under LACC's 4 ranks/node.
inline std::vector<int> node_sweep(const sim::MachineModel& machine) {
  std::vector<int> nodes;
  for (const int ranks : rank_sweep())
    nodes.push_back(std::max(1, static_cast<int>(
                                    machine.nodes_for_ranks(ranks))));
  return nodes;
}

/// Run LACC and the ParConnect-like baseline across a node sweep on one
/// graph, verifying both against ground truth.  When the bench has a live
/// Metrics collector, each LACC point is recorded under `name` with the
/// ParConnect comparison attached as scalars (and, when `lacc_options`
/// enables the sampling pre-pass, the v4 prepass attribution block).
inline std::vector<ScalingPoint> strong_scaling(
    const std::string& name, const graph::EdgeList& el,
    const sim::MachineModel& machine, const std::vector<int>& nodes_sweep,
    const core::LaccOptions& lacc_options = {}) {
  const sim::MachineModel flat = machine.flat_mpi_variant();
  std::vector<ScalingPoint> points;
  for (const int nodes : nodes_sweep) {
    ScalingPoint point;
    point.nodes = nodes;
    point.lacc_ranks = square_ranks(nodes * machine.procs_per_node);
    point.parconnect_ranks = square_ranks(nodes * flat.procs_per_node);
    const auto lacc =
        core::lacc_dist(el, point.lacc_ranks, machine, lacc_options);
    check_against_truth(el, lacc.cc.parent);
    point.lacc_seconds = lacc.modeled_seconds;
    const auto pc =
        baselines::parconnect_dist(el, point.parconnect_ranks, flat);
    check_against_truth(el, pc.cc.parent);
    point.parconnect_seconds = pc.modeled_seconds;
    if (Metrics* m = Metrics::global())
      m->add_run_prepass(
          name, point.lacc_ranks, lacc.spmd, point.lacc_seconds,
          lacc.cc.prepass,
          {{"nodes", static_cast<double>(point.nodes)},
           {"parconnect_ranks", static_cast<double>(point.parconnect_ranks)},
           {"parconnect_modeled_seconds", point.parconnect_seconds}});
    points.push_back(point);
  }
  return points;
}

/// Print one graph's scaling series in the paper's layout (modeled seconds
/// per node count, one series per algorithm).
inline void print_scaling(const std::string& name,
                          const sim::MachineModel& machine,
                          const std::vector<ScalingPoint>& points,
                          std::ostream& os) {
  os << name << ":\n";
  TextTable t({"nodes", "cores", "LACC (modeled)", "ParConnect (modeled)",
               "LACC speedup"});
  for (const auto& point : points) {
    t.add_row({std::to_string(point.nodes),
               fmt_double(static_cast<double>(point.nodes) *
                              machine.cores_per_node,
                          0),
               fmt_seconds(point.lacc_seconds),
               fmt_seconds(point.parconnect_seconds),
               fmt_ratio(point.parconnect_seconds / point.lacc_seconds)});
  }
  t.print(os);
  os << "\n";
}

}  // namespace lacc::bench
