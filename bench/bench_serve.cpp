// bench_serve — serving-layer SLO sweep: micro-batch window vs read/commit
// latency and throughput.
//
// Not a paper figure: the paper computes CC once, offline.  This bench
// characterizes the serving extension (docs/SERVING.md) the same way the
// streaming bench characterizes incrementality — one table, one trade-off.
// Small batch windows publish epochs eagerly (fresh reads, low commit
// latency, more SPMD epochs); large windows amortize epoch cost but writes
// sit in the queue longer.  Read p99 stays flat throughout: reads never
// block on the engine, which is the whole point of the snapshot design.
//
// Columns: window(ms) | epochs | req/s | read p50/p99 | commit p50/p99 |
// shed.  With LACC_METRICS_OUT set, emits BENCH_serve.json carrying the
// lacc-metrics serve block per sweep point.
//
// Session (read-your-writes) reads pace the writers to the engine's drain
// rate, so a sweep point's wall time is roughly epochs × epoch cost —
// LACC_HOTPATH_SMOKE=1 switches to a truncated edge stream and a
// two-point sweep for CI.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "support/timer.hpp"

using namespace lacc;

namespace {

struct SweepPoint {
  double window_ms;
  std::size_t batch_max;
};

}  // namespace

int main() {
  bench::print_banner(
      "bench_serve: micro-batch window vs serving SLOs",
      "serving extension (no paper figure; see docs/SERVING.md)");
  bench::Metrics metrics("serve");

  const bool smoke = env_int("LACC_HOTPATH_SMOKE", 0) != 0;
  const double scale = bench::problem_scale();
  const auto problems = graph::make_test_problems(scale);
  graph::EdgeList el =
      graph::find_problem(problems, smoke ? "archaea" : "eukarya").graph;
  if (smoke && el.edges.size() > 2000) el.edges.resize(2000);
  const int ranks = 4;
  const auto& machine = sim::MachineModel::edison();

  std::cout << "Workload: " << fmt_count(el.n) << " vertices, "
            << fmt_count(el.edges.size()) << " edge inserts, 4 readers / 2 "
               "writers, "
            << ranks << " virtual ranks\n\n";

  const std::vector<SweepPoint> sweep =
      smoke ? std::vector<SweepPoint>{{1.0, 256}, {16.0, 4096}}
            : std::vector<SweepPoint>{
                  {0.25, 64}, {1.0, 256}, {4.0, 1024}, {16.0, 4096}};

  TextTable table({"window ms", "epochs", "req/s", "read p50 ms",
                   "read p99 ms", "commit p50 ms", "commit p99 ms", "shed"});
  for (const SweepPoint& point : sweep) {
    serve::ServeOptions options;
    options.batch_window_ms = point.window_ms;
    options.batch_max_edges = point.batch_max;
    options.queue_capacity = 1 << 15;
    options.admission = serve::Admission::kBlock;

    serve::Server server(el.n, ranks, machine, options);
    serve::WorkloadOptions workload;
    workload.readers = 4;
    workload.writers = 2;
    workload.seed = 42;
    const serve::WorkloadReport report =
        run_mixed_workload(server, el, workload);
    const serve::ServeStats stats = server.stats();
    server.stop();

    if (report.session_violations != 0)
      throw Error("bench_serve: read-your-writes violation");

    const double rps =
        report.wall_seconds > 0
            ? static_cast<double>(report.reads + report.writes_attempted) /
                  report.wall_seconds
            : 0;
    table.add_row({fmt_double(point.window_ms, 2),
                   fmt_count(stats.current_epoch), fmt_double(rps, 0),
                   fmt_double(stats.read_p50 * 1e3, 4),
                   fmt_double(stats.read_p99 * 1e3, 4),
                   fmt_double(stats.commit_p50 * 1e3, 3),
                   fmt_double(stats.commit_p99 * 1e3, 3),
                   fmt_count(report.writes_shed)});

    obs::RunRecord rec = obs::make_run_record(
        "window=" + fmt_double(point.window_ms, 2) + "ms", ranks, {},
        server.engine_modeled_seconds(), report.wall_seconds);
    rec.serve = {{"throughput_rps", rps},
                 {"reads", static_cast<double>(report.reads)},
                 {"writes_accepted",
                  static_cast<double>(report.writes_accepted)},
                 {"shed", static_cast<double>(report.writes_shed)},
                 {"epochs", static_cast<double>(stats.current_epoch)},
                 {"epochs_per_sec", stats.epochs_per_sec},
                 {"batch_window_ms", point.window_ms},
                 {"batch_max_edges", static_cast<double>(point.batch_max)},
                 {"read_p50_ms", stats.read_p50 * 1e3},
                 {"read_p95_ms", stats.read_p95 * 1e3},
                 {"read_p99_ms", stats.read_p99 * 1e3},
                 {"commit_p50_ms", stats.commit_p50 * 1e3},
                 {"commit_p95_ms", stats.commit_p95 * 1e3},
                 {"commit_p99_ms", stats.commit_p99 * 1e3}};
    metrics.add_record(std::move(rec));
  }
  table.print(std::cout);
  std::cout << "\nReads answer from immutable snapshots, so read p99 is "
               "independent of the\nbatch window; commit latency scales with "
               "it — pick the window from the\nwrite-visibility SLO.\n";
  return 0;
}
