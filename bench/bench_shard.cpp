// bench_shard — scale-out serving sweep: shard/replica count vs read
// throughput and tail latency.
//
// Not a paper figure: the paper computes CC once, offline.  This bench
// characterizes the sharded serving extension (docs/SERVING.md): N
// serve::Server shards behind one router absorb writes in parallel, and M
// read replicas absorb point queries in parallel, at the cost of a small
// boundary LACC per reconcile round.  Two phases per sweep point:
//
//   ingest   the mixed workload replays the edge stream (writers = shards,
//            so write fan-out scales with the deployment; a wall-clock cap
//            bounds the phase), then flush() — every accepted write is
//            globally visible.
//   read     each replica is hammered by one dedicated reader for a fixed
//            duration, one replica at a time.  Per-replica QPS is the
//            single-reader service rate; the aggregate column sums them —
//            the read capacity of a deployment with one node per replica,
//            in the same modeled-deployment sense as the virtual ranks
//            used everywhere else in this repo.  Replicas hold independent
//            by-copy GlobalSnapshots (no shared refcount, label array, or
//            pair cache), so the thing this phase actually verifies is
//            that per-replica QPS stays flat as shards x replicas grow;
//            aggregate capacity then scales linearly by construction.
//            (Concurrent readers on one host would only time-slice the
//            cores and measure the scheduler, not the data structure.)
//
// Columns: shards x replicas | ingest s | per-replica QPS | aggregate QPS |
// speedup vs 1 shard | read p99 ms | global epochs | boundary words.  With
// LACC_METRICS_OUT set, emits BENCH_shard.json carrying the v6 shard block
// per sweep point.
//
// LACC_HOTPATH_SMOKE=1 truncates the stream and shortens both phases for CI.
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/latency.hpp"
#include "shard/router.hpp"
#include "shard/workload.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

using namespace lacc;

namespace {

struct SweepPoint {
  int shards;
  int replicas;
};

/// Single-reader fixed-duration hammer against one replica: alternating
/// point/pair queries, each latency recorded into `hist`.  Returns the
/// wall-clock spent; `*reads_out` gets the number of queries served.
double hammer_replica(const shard::Router& router, int replica, double seconds,
                      std::uint64_t seed, obs::LatencyHistogram& hist,
                      std::uint64_t* reads_out) {
  SplitMix64 rng(seed);
  const VertexId n = router.num_vertices();
  const Timer phase;
  std::uint64_t reads = 0;
  double wall = 0;
  while ((wall = phase.seconds()) < seconds) {
    const VertexId u = rng.next() % n;
    const VertexId v = rng.next() % n;
    const Timer one;
    if ((reads & 1) == 0)
      (void)router.component_of(u, {}, replica);
    else
      (void)router.same_component(u, v, {}, replica);
    hist.record_seconds(one.seconds());
    ++reads;
  }
  *reads_out = reads;
  return wall;
}

}  // namespace

int main() {
  bench::print_banner(
      "bench_shard: shard/replica count vs read capacity",
      "sharded serving extension (no paper figure; see docs/SERVING.md)");
  bench::Metrics metrics("shard");

  const bool smoke = env_int("LACC_HOTPATH_SMOKE", 0) != 0;
  const double scale = bench::problem_scale();
  const auto problems = graph::make_test_problems(scale);
  graph::EdgeList el =
      graph::find_problem(problems, smoke ? "archaea" : "eukarya").graph;
  if (smoke && el.edges.size() > 2000) el.edges.resize(2000);
  const int ranks = 4;
  const double read_seconds = smoke ? 0.2 : 0.5;
  const double ingest_cap_s = smoke ? 5.0 : 15.0;
  const auto& machine = sim::MachineModel::edison();

  std::cout << "Workload: " << fmt_count(el.n) << " vertices, "
            << fmt_count(el.edges.size()) << " edge inserts (ingest capped at "
            << fmt_double(ingest_cap_s, 0) << " s), one reader per replica for "
            << fmt_double(read_seconds, 1)
            << " s each, per-shard engines at " << ranks << " virtual ranks\n\n";

  const std::vector<SweepPoint> sweep = {{1, 1}, {2, 2}, {4, 4}};

  TextTable table({"shards", "replicas", "ingest s", "replica QPS", "agg QPS",
                   "vs 1 shard", "read p99 ms", "epochs", "reconcile s",
                   "boundary words"});
  double base_qps = 0;
  for (const SweepPoint& point : sweep) {
    shard::RouterOptions options;
    options.shards = point.shards;
    options.replicas = point.replicas;
    options.serve.batch_max_edges = 1024;
    options.serve.batch_window_ms = 4.0;
    options.reconcile_interval_ms = 4.0;
    options.serve.queue_capacity = 1 << 15;

    shard::Router router(el.n, ranks, machine, options);
    shard::ShardWorkloadOptions workload;
    workload.readers = 4;
    workload.writers = point.shards;
    workload.seed = 42;
    workload.session_every = 256;
    workload.duration_s = ingest_cap_s;
    const shard::ShardWorkloadReport ingest =
        run_shard_workload(router, el, workload);
    if (ingest.session_violations != 0 || ingest.held_pin_losses != 0)
      throw Error("bench_shard: consistency violation during ingest");

    obs::LatencyHistogram read_hist;
    std::vector<double> replica_qps;
    std::uint64_t total_reads = 0;
    double read_wall = 0;
    for (int rep = 0; rep < router.replicas(); ++rep) {
      std::uint64_t reads = 0;
      const double wall = hammer_replica(
          router, rep, read_seconds,
          0x9e3779b9u + static_cast<std::uint64_t>(rep), read_hist, &reads);
      replica_qps.push_back(wall > 0 ? static_cast<double>(reads) / wall : 0);
      total_reads += reads;
      read_wall += wall;
    }
    router.stop();
    const shard::RouterStats stats = router.stats();

    double qps_aggregate = 0, qps_replica_mean = 0;
    for (double q : replica_qps) qps_aggregate += q;
    qps_replica_mean = qps_aggregate / static_cast<double>(replica_qps.size());
    if (point.shards == 1) base_qps = qps_aggregate;
    const double p99 = read_hist.quantile(0.99);
    const double speedup = base_qps > 0 ? qps_aggregate / base_qps : 0;

    table.add_row({fmt_count(static_cast<std::uint64_t>(point.shards)),
                   fmt_count(static_cast<std::uint64_t>(point.replicas)),
                   fmt_double(ingest.wall_seconds, 2),
                   fmt_double(qps_replica_mean, 0),
                   fmt_double(qps_aggregate, 0),
                   fmt_double(speedup, 2) + "x",
                   fmt_double(p99 * 1e3, 4), fmt_count(stats.global_epoch),
                   fmt_double(stats.reconcile_modeled_seconds, 4),
                   fmt_count(stats.boundary_words_moved)});

    double modeled = stats.reconcile_modeled_seconds;
    for (int s = 0; s < router.shards(); ++s)
      modeled += router.shard(s).engine_modeled_seconds();
    obs::RunRecord rec = obs::make_run_record(
        "shards=" + std::to_string(point.shards) +
            ",replicas=" + std::to_string(point.replicas),
        ranks, {}, modeled, ingest.wall_seconds + read_wall);
    rec.scalars = {{"read_qps_aggregate", qps_aggregate},
                   {"read_qps_per_replica_mean", qps_replica_mean},
                   {"read_phase_reads", static_cast<double>(total_reads)},
                   {"read_p99_ms", p99 * 1e3},
                   {"ingest_wall_seconds", ingest.wall_seconds},
                   {"speedup_vs_1shard", speedup}};
    rec.shard = {
        {"shards", static_cast<double>(point.shards)},
        {"replicas", static_cast<double>(point.replicas)},
        {"global_epochs", static_cast<double>(stats.global_epoch)},
        {"reconcile_rounds", static_cast<double>(stats.reconcile_rounds)},
        {"reconcile_modeled_seconds", stats.reconcile_modeled_seconds},
        {"boundary_raw_total", static_cast<double>(stats.boundary_raw_total)},
        {"boundary_words_moved",
         static_cast<double>(stats.boundary_words_moved)},
        {"ticket_waits", static_cast<double>(stats.ticket_waits)}};
    for (int s = 0; s < router.shards(); ++s) {
      const serve::ServeStats& ss =
          stats.shard_stats[static_cast<std::size_t>(s)];
      rec.shard_per_shard.push_back(
          {{"shard", static_cast<double>(s)},
           {"writes_accepted", static_cast<double>(ss.writes_accepted)},
           {"epochs", static_cast<double>(ss.current_epoch)},
           {"boundary_raw",
            static_cast<double>(
                stats.boundary_per_shard[static_cast<std::size_t>(s)])}});
    }
    for (const shard::ReplicaStats& rs : stats.replica_stats) {
      const std::size_t idx = static_cast<std::size_t>(rs.replica);
      rec.shard_per_replica.push_back(
          {{"replica", static_cast<double>(rs.replica)},
           {"reads", static_cast<double>(rs.reads)},
           {"read_qps", idx < replica_qps.size() ? replica_qps[idx] : 0},
           {"read_p50_ms", rs.read_p50 * 1e3},
           {"read_p95_ms", rs.read_p95 * 1e3},
           {"read_p99_ms", rs.read_p99 * 1e3}});
    }
    metrics.add_record(std::move(rec));
  }
  table.print(std::cout);
  std::cout << "\nPer-replica QPS staying flat across the sweep is the "
               "measured result: replicas\nhold independent by-copy snapshots "
               "(no shared refcount, label array, or pair\ncache), so "
               "aggregate read capacity — one node per replica, as with the\n"
               "virtual-rank convention — scales with the replica count while "
               "the boundary\nLACC over the compacted label-pair quotient is "
               "the only global work.\n";
  return 0;
}
