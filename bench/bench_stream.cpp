// bench_stream — incremental vs from-scratch cost per streaming epoch.
//
// The streaming extension's core claim: when a batch touches little of the
// graph, warm-starting from the previous epoch's labels and iterating only
// the induced active set beats recomputing connected components from
// scratch.  This bench quantifies that and finds the crossover.
//
// Setup: warm-load half of a path-forest graph (so nearly every streamed
// edge still merges components — the worst case for the filter, the
// honest case for the incremental kernels), then stream the rest in
// batches of increasing size through two engines:
//
//   incremental   rebuild_threshold = 1 (never falls back)
//   from-scratch  rebuild_threshold = 0 (full lacc_dist on every epoch
//                 with at least one cross-component edge)
//
// and compare the mean modeled seconds per epoch.  The crossover batch
// size — where a batch dirties enough of the graph that recomputing is
// cheaper — is the tuning target for StreamOptions::rebuild_threshold.
#include "bench_common.hpp"

#include <filesystem>

#include "graph/generators.hpp"
#include "stream/engine.hpp"
#include "support/timer.hpp"

namespace lacc::bench {
namespace {

constexpr int kRanks = 4;
constexpr int kEpochsPerSize = 5;

struct ArmResult {
  double mean_epoch_modeled = 0;  ///< mean modeled seconds per epoch
  std::uint64_t rebuilds = 0;
};

/// Stream `kEpochsPerSize` batches of `batch_edges` edges (starting at
/// `warm` edges already loaded) through one engine and average the
/// per-epoch modeled cost.
ArmResult run_arm(const graph::EdgeList& full, std::size_t warm,
                  std::size_t batch_edges, double rebuild_threshold) {
  stream::StreamOptions options;
  options.rebuild_threshold = rebuild_threshold;
  stream::StreamEngine engine(full.n, kRanks, sim::MachineModel::edison(),
                              options);

  graph::EdgeList accumulated(full.n);
  auto feed = [&](std::size_t lo, std::size_t hi) {
    graph::EdgeList slice(full.n);
    slice.edges.assign(full.edges.begin() + static_cast<std::ptrdiff_t>(lo),
                       full.edges.begin() + static_cast<std::ptrdiff_t>(hi));
    accumulated.edges.insert(accumulated.edges.end(), slice.edges.begin(),
                             slice.edges.end());
    engine.ingest(slice);
    return engine.advance_epoch();
  };

  feed(0, warm);  // warm epoch: both arms pay the same initial build

  ArmResult result;
  double total = 0;
  int epochs = 0;
  std::size_t at = warm;
  for (int e = 0; e < kEpochsPerSize && at < full.edges.size(); ++e) {
    const std::size_t hi = std::min(at + batch_edges, full.edges.size());
    const auto st = feed(at, hi);
    total += st.modeled_seconds();
    result.rebuilds += st.full_rebuild ? 1 : 0;
    ++epochs;
    at = hi;
  }
  result.mean_epoch_modeled = epochs ? total / epochs : 0;

  check_against_truth(accumulated, engine.labels());
  return result;
}

// --- durability cost -------------------------------------------------------

struct DurableArm {
  double wall_seconds = 0;   ///< real (not modeled) time for the whole stream
  std::uint64_t fsyncs = 0;
  std::uint64_t wal_bytes = 0;
};

/// Stream the full edge list in fixed-size batches through one engine and
/// measure *wall-clock* ingest+advance time.  Modeled seconds are
/// bit-identical across these arms by construction (durability charges no
/// modeled time); the wall-clock delta IS the durability tax.
DurableArm run_durable_arm(const graph::EdgeList& full, std::size_t batch,
                           const std::string& dir,
                           stream::durable::FsyncPolicy policy) {
  stream::StreamOptions options;
  if (!dir.empty()) {
    options.durable.dir = dir;
    options.durable.fsync = policy;
  }
  stream::StreamEngine engine(full.n, kRanks, sim::MachineModel::edison(),
                              options);

  Timer timer;
  for (std::size_t at = 0; at < full.edges.size(); at += batch) {
    const std::size_t hi = std::min(at + batch, full.edges.size());
    graph::EdgeList slice(full.n);
    slice.edges.assign(full.edges.begin() + static_cast<std::ptrdiff_t>(at),
                       full.edges.begin() + static_cast<std::ptrdiff_t>(hi));
    engine.ingest(slice);
    engine.advance_epoch();
  }

  DurableArm arm;
  arm.wall_seconds = timer.seconds();
  const auto stats = engine.durability_stats();
  arm.fsyncs = stats.io.fsyncs;
  arm.wal_bytes = stats.io.wal_bytes;
  check_against_truth(full, engine.labels());
  return arm;
}

}  // namespace
}  // namespace lacc::bench

int main() {
  using namespace lacc;
  using namespace lacc::bench;

  print_banner("bench_stream — incremental vs from-scratch epochs",
               "streaming extension (Section IV-B sparsity argument taken "
               "to incremental updates)");
  Metrics metrics("bench_stream");

  const double scale = problem_scale();
  const auto n = static_cast<VertexId>(8000 * scale);
  const auto full =
      graph::path_forest(std::max<VertexId>(n, 500), 40, /*seed=*/11);
  const std::size_t warm = full.edges.size() / 2;
  std::cout << "Workload: path forest, " << fmt_count(full.n)
            << " vertices, " << fmt_count(full.edges.size())
            << " edges (warm-loading " << fmt_count(warm) << ", streaming "
            << fmt_count(full.edges.size() - warm) << ") on " << kRanks
            << " ranks\n\n";

  TextTable table({"batch", "inc/epoch", "scratch/epoch", "speedup",
                   "winner"});
  std::size_t crossover = 0;
  std::size_t prev = 0;
  for (std::size_t batch : {std::size_t{8}, std::size_t{32},
                            std::size_t{128}, std::size_t{512},
                            std::size_t{2048}, std::size_t{8192}}) {
    // Clamp the last step to "everything remaining in one epoch" — the
    // regime where recomputing from scratch must win.
    batch = std::min(batch, full.edges.size() - warm);
    if (batch == prev) break;
    prev = batch;
    const auto inc = run_arm(full, warm, batch, /*rebuild_threshold=*/1.0);
    const auto scratch =
        run_arm(full, warm, batch, /*rebuild_threshold=*/0.0);
    const double speedup =
        inc.mean_epoch_modeled > 0
            ? scratch.mean_epoch_modeled / inc.mean_epoch_modeled
            : 0;
    const bool inc_wins = inc.mean_epoch_modeled < scratch.mean_epoch_modeled;
    if (!inc_wins && crossover == 0) crossover = batch;
    table.add_row({fmt_count(batch), fmt_seconds(inc.mean_epoch_modeled),
                   fmt_seconds(scratch.mean_epoch_modeled),
                   fmt_ratio(speedup),
                   inc_wins ? "incremental" : "from-scratch"});
    metrics.add_simple(
        "batch_" + std::to_string(batch),
        {{"batch_edges", static_cast<double>(batch)},
         {"inc_epoch_modeled", inc.mean_epoch_modeled},
         {"scratch_epoch_modeled", scratch.mean_epoch_modeled},
         {"scratch_rebuilds", static_cast<double>(scratch.rebuilds)},
         {"speedup", speedup}});
  }
  table.print(std::cout);

  if (crossover == 0)
    std::cout << "\nCrossover: none up to the largest tested batch — "
                 "incremental wins throughout\n";
  else
    std::cout << "\nCrossover batch size: " << fmt_count(crossover)
              << " edges (from-scratch becomes cheaper)\n";
  metrics.add_simple("crossover",
                     {{"batch_edges", static_cast<double>(crossover)}});

  // Durability tax: same stream, same batches, three persistence modes.
  // Modeled seconds are identical by design; wall-clock ingest throughput
  // is what the WAL fsync policy actually costs.
  std::cout << "\nDurability cost (wall-clock, same modeled results):\n";
  const std::size_t durable_batch = 256;
  const auto tmp = std::filesystem::temp_directory_path() / "lacc-bench-stream";
  struct ModeSpec {
    const char* name;
    bool durable;
    stream::durable::FsyncPolicy policy;
  };
  const ModeSpec modes[] = {
      {"memory", false, stream::durable::FsyncPolicy::kPerEpoch},
      {"fsync-epoch", true, stream::durable::FsyncPolicy::kPerEpoch},
      {"fsync-batch", true, stream::durable::FsyncPolicy::kPerBatch},
  };
  TextTable dtable({"mode", "wall", "edges/s", "fsyncs", "vs memory"});
  double memory_wall = 0;
  for (const ModeSpec& mode : modes) {
    const auto dir = tmp / mode.name;
    std::filesystem::remove_all(dir);
    const DurableArm arm = run_durable_arm(
        full, durable_batch, mode.durable ? dir.string() : std::string(),
        mode.policy);
    std::filesystem::remove_all(dir);
    if (!mode.durable) memory_wall = arm.wall_seconds;
    const double slowdown =
        memory_wall > 0 ? arm.wall_seconds / memory_wall : 1.0;
    const double rate = arm.wall_seconds > 0
                            ? static_cast<double>(full.edges.size()) /
                                  arm.wall_seconds
                            : 0;
    dtable.add_row({mode.name, fmt_seconds(arm.wall_seconds),
                    fmt_count(static_cast<std::uint64_t>(rate)),
                    fmt_count(arm.fsyncs),
                    mode.durable ? fmt_ratio(slowdown) : "1.00x"});
    metrics.add_simple(std::string("durability_") + mode.name,
                       {{"wall_seconds", arm.wall_seconds},
                        {"edges_per_sec", rate},
                        {"fsyncs", static_cast<double>(arm.fsyncs)},
                        {"wal_bytes", static_cast<double>(arm.wal_bytes)},
                        {"slowdown_vs_memory", slowdown}});
  }
  dtable.print(std::cout);
  return 0;
}
