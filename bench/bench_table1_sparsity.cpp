// Table I: the scope of sparse vectors at each step of LACC.  Runs the
// serial GraphBLAS LACC on a many-component graph and prints, per
// iteration, how the active subset each step operates on shrinks as
// components converge — the quantitative effect behind Table I's scoping.
#include "bench_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Table I — sparse-vector scope per LACC step",
                      "Azad & Buluc, IPDPS 2019, Table I + Section IV-B");
  bench::Metrics metrics("table1_sparsity");

  std::cout << "Operation            Operates on the subset of vertices in\n"
               "---------            --------------------------------------\n"
               "Conditional hooking  active stars (converged components removed)\n"
               "Uncond. hooking      stars adjacent to nonstars (Lemma 2)\n"
               "Shortcut             active nonstars\n"
               "Starcheck            active vertices\n\n";

  const auto problems = graph::make_test_problems(bench::problem_scale());
  const auto& p = graph::find_problem(problems, "eukarya");
  const graph::Csr g(p.graph);
  const auto result = core::lacc_grb(g);
  bench::check_against_truth(p.graph, result.parent);
  metrics.add_simple(
      p.name, {{"iterations", static_cast<double>(result.iterations)},
               {"vertices", static_cast<double>(g.num_vertices())}});

  std::cout << "Measured on the " << p.name << " stand-in ("
            << fmt_count(g.num_vertices()) << " vertices):\n\n";
  TextTable t({"iter", "active vertices", "% of n", "converged", "cond hooks",
               "uncond hooks", "stars after iter"});
  const auto n = static_cast<double>(g.num_vertices());
  for (const auto& rec : result.trace) {
    t.add_row({std::to_string(rec.iteration), fmt_count(rec.active_vertices),
               fmt_double(100.0 * static_cast<double>(rec.active_vertices) / n, 1),
               fmt_count(rec.converged_vertices), fmt_count(rec.cond_hooks),
               fmt_count(rec.uncond_hooks), fmt_count(rec.star_vertices)});
  }
  t.print(std::cout);
  std::cout << "\nEvery step processes only the active column — the paper's\n"
               "\"efficient use of sparsity\" (Lemmas 1-2, as repaired in\n"
               "DESIGN.md), which is why vectors sparsify run over run.\n";
  return 0;
}
