// Table II: overview of evaluation platforms, plus the derived cost-model
// parameters this reproduction uses in place of the physical machines.
#include "bench_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Table II — evaluation platforms",
                      "Azad & Buluc, IPDPS 2019, Table II");
  bench::Metrics metrics("table2_platforms");

  const auto& edison = sim::MachineModel::edison();
  const auto& cori = sim::MachineModel::cori_knl();

  TextTable spec({"", "Cori KNL (Intel KNL)", "Edison (Intel Ivy Bridge)"});
  spec.add_row({"Cores per node", std::to_string(cori.cores_per_node),
                std::to_string(edison.cores_per_node)});
  spec.add_row({"MPI ranks per node (LACC)", std::to_string(cori.procs_per_node),
                std::to_string(edison.procs_per_node)});
  spec.add_row({"Threads per rank (LACC)", std::to_string(cori.threads_per_proc),
                std::to_string(edison.threads_per_proc)});
  spec.print(std::cout);

  std::cout << "\nDerived cost-model parameters (this reproduction):\n";
  TextTable model({"machine", "alpha (us/msg)", "beta (ns/byte)",
                   "work rate (Melem/s/rank)"});
  for (const auto* m : {&cori, &edison}) {
    model.add_row({m->name, fmt_double(m->alpha_s * 1e6, 2),
                   fmt_double(m->beta_s_per_byte * 1e9, 3),
                   fmt_double(m->work_rate / 1e6, 0)});
    metrics.add_simple(
        m->name,
        {{"alpha_s", m->alpha_s},
         {"beta_s_per_byte", m->beta_s_per_byte},
         {"work_rate", m->work_rate},
         {"cores_per_node", static_cast<double>(m->cores_per_node)},
         {"procs_per_node", static_cast<double>(m->procs_per_node)}});
  }
  model.print(std::cout);

  std::cout << "\nPaper property check: Edison outruns Cori per node on "
               "irregular sparse workloads\n  alpha(Edison) < alpha(Cori): "
            << (edison.alpha_s < cori.alpha_s ? "yes" : "NO")
            << "\n  work_rate(Edison) > work_rate(Cori): "
            << (edison.work_rate > cori.work_rate ? "yes" : "NO") << "\n";
  return 0;
}
