// Table III: the ten test problems.  Generates each scaled stand-in,
// measures its actual size and component count with exact union-find, and
// prints them next to the paper's figures for the original datasets.
#include "bench_common.hpp"

using namespace lacc;

int main() {
  bench::print_banner("Table III — test problems (scaled stand-ins)",
                      "Azad & Buluc, IPDPS 2019, Table III");

  bench::Metrics metrics("table3_testproblems");
  const auto problems = graph::make_test_problems(bench::problem_scale());
  TextTable t({"Graph", "Vertices", "Directed edges", "Avg deg", "Components",
               "Paper vertices", "Paper edges", "Paper comps"});
  for (const auto& p : problems) {
    const graph::Csr g(p.graph);
    const auto comps =
        core::count_components(baselines::union_find_cc(g).parent);
    t.add_row({p.name, fmt_count(g.num_vertices()), fmt_count(g.num_edges()),
               fmt_double(g.average_degree(), 1), fmt_count(comps),
               fmt_count(p.paper_vertices), fmt_count(p.paper_edges),
               fmt_count(p.paper_components)});
    metrics.add_simple(
        p.name, {{"vertices", static_cast<double>(g.num_vertices())},
                 {"edges", static_cast<double>(g.num_edges())},
                 {"components", static_cast<double>(comps)}});
  }
  t.print(std::cout);
  std::cout << "\nStand-ins match the papers' structural regimes (component\n"
               "count and average degree), scaled down by LACC_SCALE — the\n"
               "two structural knobs Section VI's analysis depends on.\n";
  return 0;
}
