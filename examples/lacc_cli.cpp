// lacc_cli — command-line connected components.
//
//   lacc_cli <graph.mtx|graph.bin|gen:NAME> [options]
//
//   --algo lacc|fastsv|as|unionfind|bfs   algorithm (default lacc)
//   --ranks N                             virtual ranks for lacc/fastsv
//                                         (default 16; must form a square)
//   --machine edison|cori|local           cost model (default edison)
//   --scale S                             stand-in scale for gen: inputs
//   --out labels.txt                      write "vertex component" lines
//   --trace                               print the per-iteration trace
//
// Inputs: Matrix Market coordinate files (pattern/real/integer, general or
// symmetric), the LACC binary format (*.bin), or "gen:NAME" for any of the
// paper's Table III stand-ins (gen:archaea, gen:M3, ...).  Prints the
// component census and optionally writes labels.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>

#include "baselines/serial_cc.hpp"
#include "baselines/union_find.hpp"
#include "core/fastsv.hpp"
#include "core/lacc_dist.hpp"
#include "core/lacc_serial.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/testproblems.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace lacc;

namespace {

int usage() {
  std::cerr << "usage: lacc_cli <graph.mtx|graph.bin|gen:NAME> "
               "[--algo lacc|fastsv|as|unionfind|bfs] [--ranks N] "
               "[--machine edison|cori|local] [--scale S] [--out FILE] "
               "[--trace]\n";
  return 2;
}

const sim::MachineModel& machine_by_name(const std::string& name) {
  if (name == "edison") return sim::MachineModel::edison();
  if (name == "cori") return sim::MachineModel::cori_knl();
  if (name == "local") return sim::MachineModel::local();
  throw Error("unknown machine: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path = argv[1];
  std::string algo = "lacc", machine = "edison", out_path;
  int ranks = 16;
  double scale = 0.25;
  bool trace = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--algo")
      algo = next();
    else if (arg == "--ranks")
      ranks = std::stoi(next());
    else if (arg == "--machine")
      machine = next();
    else if (arg == "--scale")
      scale = std::stod(next());
    else if (arg == "--out")
      out_path = next();
    else if (arg == "--trace")
      trace = true;
    else
      return usage();
  }

  try {
    graph::EdgeList el;
    if (path.rfind("gen:", 0) == 0) {
      const auto problems = graph::make_test_problems(scale);
      el = graph::find_problem(problems, path.substr(4)).graph;
    } else if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
      el = graph::read_binary_file(path);
    } else {
      el = graph::read_matrix_market_file(path);
    }
    std::cout << "Graph: " << fmt_count(el.n) << " vertices, "
              << fmt_count(el.edges.size()) << " entries\n";

    Timer timer;
    core::CcResult result;
    double modeled = -1;
    if (algo == "lacc" || algo == "fastsv") {
      const auto& m = machine_by_name(machine);
      const auto run = algo == "lacc" ? core::lacc_dist(el, ranks, m)
                                      : core::fastsv_dist(el, ranks, m);
      result = run.cc;
      modeled = run.modeled_seconds;
      std::cout << "Algorithm: " << algo << " on " << ranks
                << " virtual ranks (" << m.name << " model)\n";
    } else {
      const graph::Csr g(el);
      if (algo == "as")
        result = core::awerbuch_shiloach(g);
      else if (algo == "unionfind")
        result = baselines::union_find_cc(g);
      else if (algo == "bfs")
        result = baselines::bfs_cc(g);
      else
        return usage();
      std::cout << "Algorithm: " << algo << " (serial)\n";
    }
    const double wall = timer.seconds();

    const auto labels = core::normalize_labels(result.parent);
    std::unordered_map<VertexId, std::uint64_t> size_of;
    for (const VertexId label : labels) ++size_of[label];
    std::uint64_t largest = 0;
    for (const auto& [label, size] : size_of) largest = std::max(largest, size);

    std::cout << "Components: " << fmt_count(size_of.size())
              << " (largest: " << fmt_count(largest) << " vertices)\n";
    std::cout << "Wall time: " << fmt_seconds(wall);
    if (modeled >= 0) std::cout << ", modeled time: " << fmt_seconds(modeled);
    std::cout << ", iterations: " << result.iterations << "\n";

    if (trace && !result.trace.empty()) {
      TextTable t({"iteration", "active", "converged", "hooks"});
      for (const auto& rec : result.trace)
        t.add_row({std::to_string(rec.iteration),
                   fmt_count(rec.active_vertices),
                   fmt_count(rec.converged_vertices),
                   fmt_count(rec.cond_hooks + rec.uncond_hooks)});
      t.print(std::cout);
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << out_path);
      for (VertexId v = 0; v < el.n; ++v)
        out << v << " " << labels[v] << "\n";
      std::cout << "Labels written to " << out_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
