// lacc_cli — command-line connected components.
//
//   lacc_cli <graph.mtx|graph.bin|gen:NAME> [options]
//
//   --algo lacc|fastsv|as|unionfind|bfs   algorithm (default lacc)
//   --ranks N                             virtual ranks for lacc/fastsv
//                                         (default 16; must form a square)
//   --machine edison|cori|local           cost model (default edison)
//   --scale S                             stand-in scale for gen: inputs
//   --out labels.txt                      write "vertex component" lines
//   --trace                               print the per-iteration trace
//   --trace-out FILE                      write a Chrome trace-event JSON
//                                         timeline (lacc/fastsv only)
//   --json FILE                           write lacc-metrics-v1 JSON
//   --prepass                             Afforest-style sampling pre-pass
//                                         before the rounds (lacc only)
//   --sample-rounds N                     pre-pass neighbor rounds (default 2)
//   --no-frequent-skip                    pre-pass: link every local edge
//                                         instead of skipping the frequent
//                                         component
//
// Inputs: Matrix Market coordinate files (pattern/real/integer, general or
// symmetric), the LACC binary format (*.bin), or "gen:NAME" for any of the
// paper's Table III stand-ins (gen:archaea, gen:M3, ...).  Prints the
// component census and optionally writes labels.  The observability outputs
// (--trace-out, --json) go to files only, so stdout is identical with and
// without them (docs/OBSERVABILITY.md).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_map>

#include "baselines/serial_cc.hpp"
#include "baselines/union_find.hpp"
#include "core/fastsv.hpp"
#include "core/lacc_dist.hpp"
#include "core/lacc_serial.hpp"
#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/testproblems.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace lacc;

namespace {

int usage() {
  std::cerr << "usage: lacc_cli <graph.mtx|graph.bin|gen:NAME> "
               "[--algo lacc|fastsv|as|unionfind|bfs] [--ranks N] "
               "[--machine edison|cori|local] [--scale S] [--out FILE] "
               "[--trace] [--trace-out FILE] [--json FILE] [--prepass] "
               "[--sample-rounds N] [--no-frequent-skip]\n";
  return 2;
}

const sim::MachineModel& machine_by_name(const std::string& name) {
  if (name == "edison") return sim::MachineModel::edison();
  if (name == "cori") return sim::MachineModel::cori_knl();
  if (name == "local") return sim::MachineModel::local();
  throw Error("unknown machine: " + name);
}

/// Parse a flag's value as an int; on garbage, report and exit with usage
/// instead of dying on an uncaught std::invalid_argument.
int parse_int(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects an integer, got \"" << text
            << "\"\n";
  std::exit(usage());
}

double parse_double(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects a number, got \"" << text
            << "\"\n";
  std::exit(usage());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path = argv[1];
  std::string algo = "lacc", machine = "edison", out_path, trace_out_path,
              json_path;
  int ranks = 16;
  double scale = 0.25;
  bool trace = false;
  core::LaccOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--algo")
      algo = next();
    else if (arg == "--ranks")
      ranks = parse_int("--ranks", next());
    else if (arg == "--machine")
      machine = next();
    else if (arg == "--scale")
      scale = parse_double("--scale", next());
    else if (arg == "--out")
      out_path = next();
    else if (arg == "--trace")
      trace = true;
    else if (arg == "--trace-out")
      trace_out_path = next();
    else if (arg == "--json")
      json_path = next();
    else if (arg == "--prepass")
      options.sampling_prepass = true;
    else if (arg == "--sample-rounds")
      options.sample_rounds = parse_int("--sample-rounds", next());
    else if (arg == "--no-frequent-skip")
      options.frequent_skip = false;
    else
      return usage();
  }

  // Validate the grid shape up front: the help text promises a square.
  if (algo == "lacc" || algo == "fastsv") {
    int q = 0;
    while (q * q < ranks) ++q;
    if (ranks < 1 || q * q != ranks) {
      std::cerr << "error: --ranks must be a positive perfect square for "
                   "--algo "
                << algo << " (got " << ranks << ")\n";
      return usage();
    }
  } else if (!trace_out_path.empty()) {
    std::cerr << "error: --trace-out requires --algo lacc|fastsv\n";
    return usage();
  }
  if (options.sampling_prepass && algo != "lacc") {
    std::cerr << "error: --prepass requires --algo lacc\n";
    return usage();
  }
  if (options.sample_rounds < 0) {
    std::cerr << "error: --sample-rounds must be non-negative (got "
              << options.sample_rounds << ")\n";
    return usage();
  }
  if (scale <= 0) {
    std::cerr << "error: --scale must be positive (got " << scale << ")\n";
    return usage();
  }

  // Record collective/kernel spans when a trace file was requested.  This
  // never changes modeled results or stdout — only what lands in the file.
  if (!trace_out_path.empty()) obs::set_trace_enabled(true);

  try {
    graph::EdgeList el;
    if (path.rfind("gen:", 0) == 0) {
      const auto problems = graph::make_test_problems(scale);
      el = graph::find_problem(problems, path.substr(4)).graph;
    } else if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
      el = graph::read_binary_file(path);
    } else {
      el = graph::read_matrix_market_file(path);
    }
    std::cout << "Graph: " << fmt_count(el.n) << " vertices, "
              << fmt_count(el.edges.size()) << " entries\n";

    Timer timer;
    core::CcResult result;
    sim::SpmdResult spmd;
    bool have_spmd = false;
    double modeled = -1;
    if (algo == "lacc" || algo == "fastsv") {
      const auto& m = machine_by_name(machine);
      auto run = algo == "lacc" ? core::lacc_dist(el, ranks, m, options)
                                : core::fastsv_dist(el, ranks, m);
      result = std::move(run.cc);
      modeled = run.modeled_seconds;
      spmd = std::move(run.spmd);
      have_spmd = true;
      std::cout << "Algorithm: " << algo << " on " << ranks
                << " virtual ranks (" << m.name << " model)\n";
      if (result.prepass.ran)
        std::cout << "Prepass: " << fmt_count(result.prepass.resolved_vertices)
                  << " vertices resolved ("
                  << fmt_count(result.prepass.sampled_edges) << " sampled + "
                  << fmt_count(result.prepass.skip_edges)
                  << " skip-phase edges, "
                  << fmt_seconds(result.prepass.modeled_seconds)
                  << " modeled)\n";
    } else {
      const graph::Csr g(el);
      if (algo == "as")
        result = core::awerbuch_shiloach(g);
      else if (algo == "unionfind")
        result = baselines::union_find_cc(g);
      else if (algo == "bfs")
        result = baselines::bfs_cc(g);
      else
        return usage();
      std::cout << "Algorithm: " << algo << " (serial)\n";
    }
    const double wall = timer.seconds();

    const auto labels = core::normalize_labels(result.parent);
    std::unordered_map<VertexId, std::uint64_t> size_of;
    for (const VertexId label : labels) ++size_of[label];
    std::uint64_t largest = 0;
    for (const auto& [label, size] : size_of) largest = std::max(largest, size);

    std::cout << "Components: " << fmt_count(size_of.size())
              << " (largest: " << fmt_count(largest) << " vertices)\n";
    std::cout << "Wall time: " << fmt_seconds(wall);
    if (modeled >= 0) std::cout << ", modeled time: " << fmt_seconds(modeled);
    std::cout << ", iterations: " << result.iterations << "\n";

    if (trace && !result.trace.empty()) {
      TextTable t({"iteration", "active", "converged", "hooks"});
      for (const auto& rec : result.trace)
        t.add_row({std::to_string(rec.iteration),
                   fmt_count(rec.active_vertices),
                   fmt_count(rec.converged_vertices),
                   fmt_count(rec.cond_hooks + rec.uncond_hooks)});
      t.print(std::cout);
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << out_path);
      for (VertexId v = 0; v < el.n; ++v)
        out << v << " " << labels[v] << "\n";
      std::cout << "Labels written to " << out_path << "\n";
    }

    if (!trace_out_path.empty()) {
      std::ofstream out(trace_out_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << trace_out_path);
      obs::TraceMeta meta;
      meta.process_name = "lacc_cli " + algo + " " + path;
      obs::write_chrome_trace(out, spmd.stats, meta);
    }

    if (!json_path.empty()) {
      obs::Scalars scalars{
          {"vertices", static_cast<double>(el.n)},
          {"edges", static_cast<double>(el.edges.size())},
          {"components", static_cast<double>(size_of.size())},
          {"largest_component", static_cast<double>(largest)},
          {"iterations", static_cast<double>(result.iterations)}};
      auto rec = have_spmd
                     ? obs::make_run_record(path, ranks, spmd.stats, modeled,
                                            wall, std::move(scalars))
                     : obs::make_run_record(path, 0, {}, 0.0, wall,
                                            std::move(scalars));
      rec.prepass = core::prepass_scalars(result.prepass);
      std::ofstream out(json_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << json_path);
      obs::write_metrics_json(out, "lacc_cli",
                              {{"scale", scale},
                               {"ranks", static_cast<double>(ranks)}},
                              {std::move(rec)});
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
