// lacc_kernel_cli — run the analytics kernels (BFS, PageRank, triangle
// counting) against a graph view produced by any of the three producers.
//
//   lacc_kernel_cli <graph.mtx|graph.bin|gen:NAME> [options]
//
//   --kernel bfs|pagerank|tc|all  which kernel(s) to run (default all)
//   --mode static|stream|serve    how the view is produced (default static):
//                                 static = GraphView::from_edges,
//                                 stream = StreamEngine epochs + freeze_view,
//                                 serve  = serve::Server kernel endpoints
//                                 against its published snapshot
//   --ranks N                 virtual ranks (default 4; perfect square)
//   --machine edison|cori|local   cost model (default edison)
//   --scale S                 stand-in scale for gen: inputs
//   --source V                BFS source vertex (default 0)
//   --topk K                  PageRank top-k size (default 8)
//   --damping D               PageRank damping factor (default 0.85)
//   --tol T                   PageRank L1 convergence threshold
//   --max-iters N             PageRank iteration cap (default 200)
//   --batches K               stream/serve: split the edges into K batches
//                             (default 4)
//   --verify                  check every kernel against its independent
//                             serial reference (BFS distances, dense power
//                             iteration, brute-force triangles)
//   --trace-out FILE          Chrome trace of the LAST kernel's SPMD session
//   --json FILE               write lacc-metrics-v7 JSON (kernels array)
//
// Inputs are the same as lacc_cli.  One table row per kernel — rounds,
// result summary, modeled seconds.  Observability outputs go to files only,
// so stdout is identical with and without them (docs/OBSERVABILITY.md).
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "graph/testproblems.hpp"
#include "kernel/kernels.hpp"
#include "kernel/reference.hpp"
#include "kernel/view.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "stream/engine.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace lacc;

namespace {

int usage() {
  std::cerr << "usage: lacc_kernel_cli <graph.mtx|graph.bin|gen:NAME> "
               "[--kernel bfs|pagerank|tc|all] [--mode static|stream|serve] "
               "[--ranks N] [--machine edison|cori|local] [--scale S] "
               "[--source V] [--topk K] [--damping D] [--tol T] "
               "[--max-iters N] [--batches K] [--verify] [--trace-out FILE] "
               "[--json FILE]\n";
  return 2;
}

const sim::MachineModel& machine_by_name(const std::string& name) {
  if (name == "edison") return sim::MachineModel::edison();
  if (name == "cori") return sim::MachineModel::cori_knl();
  if (name == "local") return sim::MachineModel::local();
  throw Error("unknown machine: " + name);
}

int parse_int(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects an integer, got \"" << text
            << "\"\n";
  std::exit(usage());
}

double parse_double(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects a number, got \"" << text
            << "\"\n";
  std::exit(usage());
}

/// One executed kernel, reduced to what the table, the trace, and the v7
/// metrics "kernels" array need.
struct KernelRun {
  std::string name;
  double kernel_id = 0;  ///< 0 = bfs, 1 = pagerank, 2 = tc
  std::string result_text;
  kernel::KernelStats stats;
  obs::Scalars scalars;  ///< extra per-kernel metrics keys
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path = argv[1];
  std::string machine = "edison", trace_out_path, json_path;
  std::string kernel_sel = "all", mode = "static";
  int ranks = 4, batches = 4, max_iters = 200, topk = 8;
  int source = 0;
  double scale = 0.25, damping = 0.85, tol = 1e-12;
  bool verify = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kernel")
      kernel_sel = next();
    else if (arg == "--mode")
      mode = next();
    else if (arg == "--ranks")
      ranks = parse_int("--ranks", next());
    else if (arg == "--machine")
      machine = next();
    else if (arg == "--scale")
      scale = parse_double("--scale", next());
    else if (arg == "--source")
      source = parse_int("--source", next());
    else if (arg == "--topk")
      topk = parse_int("--topk", next());
    else if (arg == "--damping")
      damping = parse_double("--damping", next());
    else if (arg == "--tol")
      tol = parse_double("--tol", next());
    else if (arg == "--max-iters")
      max_iters = parse_int("--max-iters", next());
    else if (arg == "--batches")
      batches = parse_int("--batches", next());
    else if (arg == "--verify")
      verify = true;
    else if (arg == "--trace-out")
      trace_out_path = next();
    else if (arg == "--json")
      json_path = next();
    else
      return usage();
  }

  if (kernel_sel != "bfs" && kernel_sel != "pagerank" && kernel_sel != "tc" &&
      kernel_sel != "all") {
    std::cerr << "error: --kernel must be bfs, pagerank, tc, or all (got "
              << kernel_sel << ")\n";
    return usage();
  }
  if (mode != "static" && mode != "stream" && mode != "serve") {
    std::cerr << "error: --mode must be static, stream, or serve (got "
              << mode << ")\n";
    return usage();
  }
  {
    int q = 0;
    while (q * q < ranks) ++q;
    if (ranks < 1 || q * q != ranks) {
      std::cerr << "error: --ranks must be a positive perfect square (got "
                << ranks << ")\n";
      return usage();
    }
  }
  if (scale <= 0) {
    std::cerr << "error: --scale must be positive (got " << scale << ")\n";
    return usage();
  }
  if (source < 0) {
    std::cerr << "error: --source must be non-negative (got " << source
              << ")\n";
    return usage();
  }
  if (topk < 1) {
    std::cerr << "error: --topk must be at least 1 (got " << topk << ")\n";
    return usage();
  }
  if (damping <= 0 || damping >= 1) {
    std::cerr << "error: --damping must be in (0, 1) (got " << damping
              << ")\n";
    return usage();
  }
  if (tol <= 0) {
    std::cerr << "error: --tol must be positive (got " << tol << ")\n";
    return usage();
  }
  if (max_iters < 1) {
    std::cerr << "error: --max-iters must be at least 1 (got " << max_iters
              << ")\n";
    return usage();
  }
  if (batches < 1) {
    std::cerr << "error: --batches must be at least 1 (got " << batches
              << ")\n";
    return usage();
  }

  if (!trace_out_path.empty()) obs::set_trace_enabled(true);

  const bool run_bfs = kernel_sel == "bfs" || kernel_sel == "all";
  const bool run_pr = kernel_sel == "pagerank" || kernel_sel == "all";
  const bool run_tc = kernel_sel == "tc" || kernel_sel == "all";

  try {
    graph::EdgeList el;
    if (path.rfind("gen:", 0) == 0) {
      const auto problems = graph::make_test_problems(scale);
      el = graph::find_problem(problems, path.substr(4)).graph;
    } else if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
      el = graph::read_binary_file(path);
    } else {
      el = graph::read_matrix_market_file(path);
    }
    std::cout << "Graph: " << fmt_count(el.n) << " vertices, "
              << fmt_count(el.edges.size()) << " entries\n";
    if (static_cast<VertexId>(source) >= el.n) {
      std::cerr << "error: --source must be in [0, " << el.n << ") (got "
                << source << ")\n";
      return usage();
    }

    const auto& m = machine_by_name(machine);
    kernel::KernelOptions kopts;
    kopts.damping = damping;
    kopts.tolerance = tol;
    kopts.max_iterations = max_iters;

    Timer timer;
    // All three producers yield the same immutable view type; serve mode
    // additionally routes the kernels through the server's query endpoints
    // so the retained-snapshot path is what gets exercised.
    std::shared_ptr<const kernel::GraphView> view;
    std::unique_ptr<serve::Server> server;
    const std::size_t per_batch =
        (el.edges.size() + static_cast<std::size_t>(batches) - 1) /
        static_cast<std::size_t>(batches);
    if (mode == "static") {
      view = std::make_shared<const kernel::GraphView>(
          kernel::GraphView::from_edges(el, ranks, m));
    } else if (mode == "stream") {
      stream::StreamEngine engine(el.n, ranks, m, {});
      for (std::size_t at = 0; at < el.edges.size() || at == 0;
           at += std::max<std::size_t>(per_batch, 1)) {
        graph::EdgeList slice(el.n);
        const std::size_t hi = std::min(at + per_batch, el.edges.size());
        slice.edges.assign(el.edges.begin() + static_cast<std::ptrdiff_t>(at),
                           el.edges.begin() + static_cast<std::ptrdiff_t>(hi));
        engine.ingest(slice);
        engine.advance_epoch();
        if (hi >= el.edges.size()) break;
      }
      // The frozen blocks are shared_ptrs; the view outlives the engine.
      view = std::make_shared<const kernel::GraphView>(engine.freeze_view());
    } else {
      serve::ServeOptions so;
      so.enable_kernel_queries = true;
      so.kernel_options = kopts;
      so.batch_max_edges = std::max<std::size_t>(per_batch, 1);
      server = std::make_unique<serve::Server>(el.n, ranks, m, so);
      for (const auto& e : el.edges) server->insert_edge(e.u, e.v);
      server->flush();
      view = server->snapshot()->view();
    }
    std::cout << "View: mode " << mode << ", " << ranks << " virtual ranks ("
              << m.name << " model), epoch " << view->epoch() << ", "
              << fmt_count(view->global_nnz()) << " stored entries\n";

    std::vector<KernelRun> runs;
    kernel::BfsResult bfs_res;
    kernel::PageRankResult pr_res;
    std::vector<kernel::RankEntry> pr_top;
    kernel::TriangleCountResult tc_res;

    if (run_bfs) {
      if (server) {
        auto q = server->bfs_dist(static_cast<VertexId>(source));
        bfs_res = std::move(q.result);
      } else {
        bfs_res = kernel::bfs(*view, static_cast<VertexId>(source), kopts);
      }
      std::ostringstream os;
      os << "reached " << fmt_count(bfs_res.reached) << " from " << source;
      runs.push_back(
          {"bfs", 0.0, os.str(), bfs_res.stats,
           {{"reached", static_cast<double>(bfs_res.reached)},
            {"words_moved", static_cast<double>(bfs_res.stats.words_moved)}}});
    }
    if (run_pr) {
      if (server) {
        auto q = server->pagerank_topk(static_cast<std::size_t>(topk));
        pr_top = std::move(q.top);
        pr_res.l1_residual = q.l1_residual;
        pr_res.converged = q.converged;
        pr_res.stats = q.stats;
      } else {
        pr_res = kernel::pagerank(*view, kopts);
        pr_top = kernel::top_k_ranks(pr_res.rank,
                                     static_cast<std::size_t>(topk));
      }
      std::ostringstream os;
      os << (pr_res.converged ? "converged" : "iteration cap") << ", top v="
         << (pr_top.empty() ? VertexId{0} : pr_top.front().v);
      runs.push_back(
          {"pagerank", 1.0, os.str(), pr_res.stats,
           {{"l1_residual", pr_res.l1_residual},
            {"converged", pr_res.converged ? 1.0 : 0.0}}});
    }
    if (run_tc) {
      if (server) {
        auto q = server->triangle_count();
        tc_res.triangles = q.triangles;
        tc_res.stats = q.stats;
      } else {
        tc_res = kernel::triangle_count(*view, kopts);
      }
      runs.push_back(
          {"tc", 2.0, fmt_count(tc_res.triangles) + " triangles",
           tc_res.stats,
           {{"triangles", static_cast<double>(tc_res.triangles)}}});
    }
    const double wall = timer.seconds();

    TextTable table({"kernel", "rounds", "result", "modeled"});
    double kernels_modeled = 0;
    for (const auto& r : runs) {
      table.add_row({r.name, std::to_string(r.stats.rounds), r.result_text,
                     fmt_seconds(r.stats.modeled_seconds)});
      kernels_modeled += r.stats.modeled_seconds;
    }
    table.print(std::cout);
    std::cout << "Wall time: " << fmt_seconds(wall)
              << ", modeled time: " << fmt_seconds(kernels_modeled)
              << " (+ view build "
              << fmt_seconds(view->build_modeled_seconds()) << ")\n";

    if (verify) {
      if (run_bfs) {
        const auto truth =
            kernel::reference_bfs_distances(el,
                                            static_cast<VertexId>(source));
        if (bfs_res.dist != truth) {
          std::cerr << "error: VERIFY FAILED — bfs distances disagree with "
                       "serial BFS\n";
          return 1;
        }
        std::cout << "Verify: bfs distances match serial BFS\n";
      }
      if (run_pr) {
        const auto truth =
            kernel::reference_pagerank(el, damping, tol, max_iters);
        const auto truth_top =
            kernel::top_k_ranks(truth, static_cast<std::size_t>(topk));
        bool ok = truth_top.size() == pr_top.size();
        for (std::size_t i = 0; ok && i < pr_top.size(); ++i)
          ok = pr_top[i].v == truth_top[i].v &&
               std::abs(pr_top[i].rank - truth_top[i].rank) <= 1e-8;
        if (!ok) {
          std::cerr << "error: VERIFY FAILED — pagerank top-k disagrees "
                       "with dense power iteration\n";
          return 1;
        }
        std::cout << "Verify: pagerank top-" << topk
                  << " matches dense power iteration\n";
      }
      if (run_tc) {
        const auto truth = kernel::reference_triangle_count(el);
        if (tc_res.triangles != truth) {
          std::cerr << "error: VERIFY FAILED — triangle count disagrees "
                       "with brute force (" << tc_res.triangles << " vs "
                    << truth << ")\n";
          return 1;
        }
        std::cout << "Verify: triangle count matches brute force\n";
      }
      std::cout << "Verify: all kernels match reference\n";
    }

    if (!trace_out_path.empty() && !runs.empty()) {
      std::ofstream out(trace_out_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << trace_out_path);
      obs::TraceMeta meta;
      meta.process_name =
          "lacc_kernel_cli " + path + " (" + runs.back().name + ")";
      obs::write_chrome_trace(out, runs.back().stats.spmd.stats, meta);
    }

    if (!json_path.empty()) {
      obs::RunRecord rec = obs::make_run_record(
          path, ranks,
          runs.empty() ? std::vector<sim::RankStats>{}
                       : runs.back().stats.spmd.stats,
          kernels_modeled + view->build_modeled_seconds(), wall, {});
      rec.scalars = {
          {"vertices", static_cast<double>(el.n)},
          {"edges", static_cast<double>(el.edges.size())},
          {"stored_entries", static_cast<double>(view->global_nnz())},
          {"view_epoch", static_cast<double>(view->epoch())},
          {"view_build_modeled_seconds", view->build_modeled_seconds()}};
      for (const auto& r : runs) {
        obs::Scalars entry = {
            {"kernel_id", r.kernel_id},
            {"invocations", 1.0},
            {"rounds", static_cast<double>(r.stats.rounds)},
            {"modeled_seconds", r.stats.modeled_seconds}};
        entry.insert(entry.end(), r.scalars.begin(), r.scalars.end());
        rec.kernels.push_back(std::move(entry));
      }
      std::ofstream out(json_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << json_path);
      obs::write_metrics_json(
          out, "lacc_kernel_cli",
          {{"scale", scale},
           {"ranks", static_cast<double>(ranks)},
           {"mode", mode == "static" ? 0.0 : mode == "stream" ? 1.0 : 2.0},
           {"batches", static_cast<double>(batches)},
           {"source", static_cast<double>(source)},
           {"topk", static_cast<double>(topk)},
           {"damping", damping}},
          {std::move(rec)});
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
