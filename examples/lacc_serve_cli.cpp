// lacc_serve_cli — drive a lacc::serve::Server with a concurrent mixed
// read/write workload and report serving SLOs.
//
//   lacc_serve_cli <graph.mtx|graph.bin|gen:NAME> [options]
//
//   --ranks N             virtual ranks of the engine (default 4; square)
//   --machine edison|cori|local   cost model (default edison)
//   --scale S             stand-in scale for gen: inputs
//   --readers N           concurrent reader threads (default 4)
//   --writers M           concurrent writer threads (default 2)
//   --duration SEC        wall-clock cap; 0 replays the whole stream
//   --batch-max-edges K   micro-batch size trigger (default 1024)
//   --batch-window-ms X   micro-batch deadline trigger (default 2.0)
//   --queue-capacity K    ingest queue bound (default 65536)
//   --admission block|shed   full-queue policy (default block)
//   --retain K            pinnable epochs kept (default 8)
//   --cache-bits B        log2 slots of the per-epoch pair cache (default 12)
//   --seed S              workload RNG seed (default 1)
//   --data-dir DIR        persist engine state to DIR; a non-empty DIR
//                         recovers the last published epoch before serving
//   --fsync batch|epoch   WAL fsync policy (default batch; needs --data-dir)
//   --verify              recompute every retained epoch from scratch and
//                         compare labels bit-for-bit (keeps all batches;
//                         incompatible with recovering from a non-empty
//                         --data-dir, whose early batches are gone)
//   --shards N            accepted for parity with lacc_shard_cli; this
//                         binary serves exactly one shard (only 1 is valid)
//   --replicas M          same; only 1 is valid here
//   --json FILE           write lacc-metrics-v7 JSON with the serve block
//   --trace-out FILE      Chrome trace of per-request spans (wall clock)
//
// The workload partitions the input edge list round-robin across writers
// while readers issue random point/pair/pinned-epoch queries; every k-th
// write performs a ticketed read-your-writes check online.  Inputs are the
// same as lacc_cli (Matrix Market, LACC binary, gen:NAME).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/lacc_dist.hpp"
#include "core/options.hpp"
#include "graph/io.hpp"
#include "graph/testproblems.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace lacc;

namespace {

int usage() {
  std::cerr
      << "usage: lacc_serve_cli <graph.mtx|graph.bin|gen:NAME> "
         "[--ranks N] [--machine edison|cori|local] [--scale S] "
         "[--readers N] [--writers M] [--duration SEC] "
         "[--batch-max-edges K] [--batch-window-ms X] [--queue-capacity K] "
         "[--admission block|shed] [--retain K] [--cache-bits B] [--seed S] "
         "[--shards 1] [--replicas 1] [--data-dir DIR] "
         "[--fsync batch|epoch] [--verify] [--json FILE] "
         "[--trace-out FILE]\n";
  return 2;
}

const sim::MachineModel& machine_by_name(const std::string& name) {
  if (name == "edison") return sim::MachineModel::edison();
  if (name == "cori") return sim::MachineModel::cori_knl();
  if (name == "local") return sim::MachineModel::local();
  throw Error("unknown machine: " + name);
}

int parse_int(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects an integer, got \"" << text
            << "\"\n";
  std::exit(usage());
}

double parse_double(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects a number, got \"" << text
            << "\"\n";
  std::exit(usage());
}

std::vector<VertexId> reference_labels(const graph::EdgeList& el, int nranks,
                                       const sim::MachineModel& machine) {
  return core::normalize_labels(
      core::lacc_dist(el, nranks, machine).cc.parent);
}

double to_ms(double seconds) { return seconds * 1e3; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path = argv[1];
  std::string machine = "edison", admission = "block", json_path,
              trace_out_path, fsync_policy;
  int ranks = 4, shards = 1, replicas = 1;
  double scale = 0.25, duration = 0;
  bool verify = false;
  serve::ServeOptions options;
  serve::WorkloadOptions workload;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ranks")
      ranks = parse_int("--ranks", next());
    else if (arg == "--machine")
      machine = next();
    else if (arg == "--scale")
      scale = parse_double("--scale", next());
    else if (arg == "--readers")
      workload.readers = parse_int("--readers", next());
    else if (arg == "--writers")
      workload.writers = parse_int("--writers", next());
    else if (arg == "--duration")
      duration = parse_double("--duration", next());
    else if (arg == "--batch-max-edges")
      options.batch_max_edges = static_cast<std::size_t>(
          parse_int("--batch-max-edges", next()));
    else if (arg == "--batch-window-ms")
      options.batch_window_ms = parse_double("--batch-window-ms", next());
    else if (arg == "--queue-capacity")
      options.queue_capacity =
          static_cast<std::size_t>(parse_int("--queue-capacity", next()));
    else if (arg == "--admission")
      admission = next();
    else if (arg == "--retain")
      options.retain_epochs = static_cast<std::size_t>(
          parse_int("--retain", next()));
    else if (arg == "--cache-bits")
      options.pair_cache_bits = static_cast<std::uint32_t>(
          parse_int("--cache-bits", next()));
    else if (arg == "--seed")
      workload.seed = static_cast<std::uint64_t>(parse_int("--seed", next()));
    else if (arg == "--shards")
      shards = parse_int("--shards", next());
    else if (arg == "--replicas")
      replicas = parse_int("--replicas", next());
    else if (arg == "--data-dir")
      options.stream.durable.dir = next();
    else if (arg == "--fsync")
      fsync_policy = next();
    else if (arg == "--verify")
      verify = true;
    else if (arg == "--json")
      json_path = next();
    else if (arg == "--trace-out")
      trace_out_path = next();
    else
      return usage();
  }

  {
    int q = 0;
    while (q * q < ranks) ++q;
    if (ranks < 1 || q * q != ranks) {
      std::cerr << "error: --ranks must be a positive perfect square (got "
                << ranks << ")\n";
      return usage();
    }
  }
  if (shards < 1) {
    std::cerr << "error: --shards must be at least 1 (got " << shards
              << ")\n";
    return usage();
  }
  if (shards > 1) {
    std::cerr << "error: --shards " << shards
              << " needs lacc_shard_cli; this binary serves one shard\n";
    return usage();
  }
  if (replicas < 1) {
    std::cerr << "error: --replicas must be at least 1 (got " << replicas
              << ")\n";
    return usage();
  }
  if (replicas > 1) {
    std::cerr << "error: --replicas " << replicas
              << " needs lacc_shard_cli; this binary has no replica tier\n";
    return usage();
  }
  if (workload.readers < 0 || workload.writers < 0) {
    std::cerr << "error: --readers/--writers must be non-negative\n";
    return usage();
  }
  if (options.batch_max_edges < 1) {
    std::cerr << "error: --batch-max-edges must be at least 1\n";
    return usage();
  }
  if (options.batch_window_ms < 0) {
    std::cerr << "error: --batch-window-ms must be non-negative\n";
    return usage();
  }
  if (options.queue_capacity < 1) {
    std::cerr << "error: --queue-capacity must be at least 1\n";
    return usage();
  }
  if (options.retain_epochs < 1) {
    std::cerr << "error: --retain must be at least 1\n";
    return usage();
  }
  if (!fsync_policy.empty()) {
    if (options.stream.durable.dir.empty()) {
      std::cerr << "error: --fsync requires --data-dir\n";
      return usage();
    }
    if (fsync_policy == "batch")
      options.stream.durable.fsync = stream::durable::FsyncPolicy::kPerBatch;
    else if (fsync_policy == "epoch")
      options.stream.durable.fsync = stream::durable::FsyncPolicy::kPerEpoch;
    else {
      std::cerr << "error: --fsync must be batch or epoch (got "
                << fsync_policy << ")\n";
      return usage();
    }
  }
  if (admission == "block")
    options.admission = serve::Admission::kBlock;
  else if (admission == "shed")
    options.admission = serve::Admission::kShed;
  else {
    std::cerr << "error: --admission must be block or shed (got " << admission
              << ")\n";
    return usage();
  }
  workload.duration_s = duration;
  options.record_applied = verify;
  options.record_requests = !trace_out_path.empty();

  try {
    graph::EdgeList el;
    if (path.rfind("gen:", 0) == 0) {
      const auto problems = graph::make_test_problems(scale);
      el = graph::find_problem(problems, path.substr(4)).graph;
    } else if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
      el = graph::read_binary_file(path);
    } else {
      el = graph::read_matrix_market_file(path);
    }

    const auto& m = machine_by_name(machine);
    std::cout << "Graph: " << fmt_count(el.n) << " vertices, "
              << fmt_count(el.edges.size()) << " entries\n"
              << "Server: " << ranks << " virtual ranks (" << m.name
              << " model), batch " << options.batch_max_edges << " edges / "
              << options.batch_window_ms << " ms, queue "
              << options.queue_capacity << " (" << admission << "), retain "
              << options.retain_epochs << ", cache 2^"
              << options.pair_cache_bits << "\n"
              << "Workload: " << workload.readers << " reader(s), "
              << workload.writers << " writer(s)"
              << (duration > 0 ? ", duration " + std::to_string(duration) + " s"
                               : ", full replay")
              << ", seed " << workload.seed << "\n";

    serve::Server server(el.n, ranks, m, options);
    if (server.durable()) {
      std::cout << "Durable: " << options.stream.durable.dir
                << " (fsync per "
                << (options.stream.durable.fsync ==
                            stream::durable::FsyncPolicy::kPerBatch
                        ? "batch"
                        : "epoch")
                << ")";
      if (server.recovered())
        std::cout << ", recovered epoch " << server.recovered_epoch();
      std::cout << "\n";
    }
    if (verify && server.recovered()) {
      std::cerr << "error: --verify needs the full batch history, but this "
                   "server recovered at epoch "
                << server.recovered_epoch()
                << "; run --verify against a fresh --data-dir\n";
      return 1;
    }
    const serve::WorkloadReport report =
        run_mixed_workload(server, el, workload);
    const serve::ServeStats stats = server.stats();
    server.stop();

    TextTable table({"metric", "value"});
    table.add_row({"reads", fmt_count(report.reads)});
    table.add_row({"writes accepted", fmt_count(report.writes_accepted)});
    table.add_row({"writes shed", fmt_count(report.writes_shed)});
    table.add_row({"epochs", fmt_count(stats.current_epoch)});
    table.add_row({"components", fmt_count(stats.components)});
    table.add_row({"max queue depth", fmt_count(stats.max_queue_depth)});
    table.add_row({"cache hits", fmt_count(stats.cache_hits)});
    table.add_row({"read p50/p95/p99 ms",
                   fmt_double(to_ms(stats.read_p50), 4) + " / " +
                       fmt_double(to_ms(stats.read_p95), 4) + " / " +
                       fmt_double(to_ms(stats.read_p99), 4)});
    table.add_row({"commit p50/p99 ms",
                   fmt_double(to_ms(stats.commit_p50), 4) + " / " +
                       fmt_double(to_ms(stats.commit_p99), 4)});
    table.add_row({"epochs/sec", fmt_double(stats.epochs_per_sec, 1)});
    table.print(std::cout);
    const double rps =
        report.wall_seconds > 0
            ? static_cast<double>(report.reads + report.writes_attempted) /
                  report.wall_seconds
            : 0;
    std::cout << "Throughput: " << fmt_double(rps, 0) << " req/s over "
              << fmt_seconds(report.wall_seconds) << " wall ("
              << fmt_count(report.session_reads) << " session read(s), "
              << fmt_count(report.pinned_reads) << " pinned)\n";
    if (server.durable()) {
      const auto ds = server.durability_stats();
      std::cout << "Durability: " << fmt_count(ds.io.wal_records)
                << " WAL record(s), " << fmt_count(ds.io.fsyncs)
                << " fsync(s), " << fmt_count(ds.io.run_files_written)
                << " run file(s) written (" << fmt_count(ds.run_files_live)
                << " live)\n";
    }

    if (report.session_violations != 0 || report.read_errors != 0) {
      std::cerr << "error: VERIFY FAILED — " << report.session_violations
                << " read-your-writes violation(s), " << report.read_errors
                << " unexpected read error(s)\n";
      return 1;
    }

    if (verify) {
      // Rebuild every retained epoch's graph prefix from the recorded
      // batches and compare labels bit-for-bit against the from-scratch
      // algorithm at the same rank count.
      const auto& batches = server.applied_batches();
      graph::EdgeList prefix(el.n);
      std::size_t checked = 0;
      for (std::size_t i = 0; i < batches.size(); ++i) {
        for (const graph::Edge& e : batches[i].edges) prefix.add(e.u, e.v);
        std::shared_ptr<const serve::Snapshot> snap;
        if (server.snapshot_at(i + 1, snap) !=
            serve::SnapshotStore::Lookup::kOk)
          continue;  // retired
        if (snap->labels() != reference_labels(prefix, ranks, m)) {
          std::cerr << "error: VERIFY FAILED — epoch " << i + 1
                    << " labels disagree with from-scratch lacc_dist\n";
          return 1;
        }
        ++checked;
      }
      std::cout << "Verify: " << checked
                << " epoch snapshot(s) match from-scratch recompute\n";
    }

    if (!trace_out_path.empty()) {
      std::ofstream out(trace_out_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << trace_out_path);
      serve::write_request_trace(out, server.request_log().spans(),
                                 "lacc_serve_cli " + path);
      std::cout << "Request trace written to " << trace_out_path << "\n";
    }

    if (!json_path.empty()) {
      obs::RunRecord rec =
          obs::make_run_record(path, ranks, {}, server.engine_modeled_seconds(),
                               report.wall_seconds);
      rec.scalars = {
          {"vertices", static_cast<double>(el.n)},
          {"edges", static_cast<double>(el.edges.size())},
          {"components", static_cast<double>(stats.components)}};
      if (server.durable())
        rec.durability =
            stream::durable::durability_scalars(server.durability_stats());
      rec.serve = {
          {"throughput_rps", rps},
          {"reads", static_cast<double>(report.reads)},
          {"writes_accepted", static_cast<double>(report.writes_accepted)},
          {"shed", static_cast<double>(report.writes_shed)},
          {"epochs", static_cast<double>(stats.current_epoch)},
          {"epochs_per_sec", stats.epochs_per_sec},
          {"max_queue_depth", static_cast<double>(stats.max_queue_depth)},
          {"cache_hits", static_cast<double>(stats.cache_hits)},
          {"cache_misses", static_cast<double>(stats.cache_misses)},
          {"read_p50_ms", to_ms(stats.read_p50)},
          {"read_p95_ms", to_ms(stats.read_p95)},
          {"read_p99_ms", to_ms(stats.read_p99)},
          {"commit_p50_ms", to_ms(stats.commit_p50)},
          {"commit_p95_ms", to_ms(stats.commit_p95)},
          {"commit_p99_ms", to_ms(stats.commit_p99)}};
      std::ofstream out(json_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << json_path);
      obs::write_metrics_json(
          out, "lacc_serve_cli",
          {{"scale", scale},
           {"ranks", static_cast<double>(ranks)},
           {"readers", static_cast<double>(workload.readers)},
           {"writers", static_cast<double>(workload.writers)},
           {"batch_max_edges", static_cast<double>(options.batch_max_edges)},
           {"batch_window_ms", options.batch_window_ms},
           {"queue_capacity", static_cast<double>(options.queue_capacity)},
           {"admission",
            options.admission == serve::Admission::kShed ? 1.0 : 0.0}},
          {std::move(rec)});
      std::cout << "Metrics written to " << json_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
