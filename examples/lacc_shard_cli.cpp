// lacc_shard_cli — drive a lacc::shard::Router (hash-sharded serve::Server
// fleet + boundary reconcile + read replicas) with a concurrent mixed
// workload and report scale-out serving SLOs.
//
//   lacc_shard_cli <graph.mtx|graph.bin|gen:NAME> [options]
//
//   --shards N            serve::Server shards behind the router (default 2)
//   --replicas M          read-only replica stores (default 2)
//   --ranks N             per-shard engine SPMD width (default 4; square)
//   --reconcile-ranks N   max SPMD width of the boundary LACC (default 4)
//   --machine edison|cori|local   cost model (default edison)
//   --scale S             stand-in scale for gen: inputs
//   --readers N           concurrent reader threads (default 4)
//   --writers M           concurrent writer threads (default 2)
//   --duration SEC        wall-clock cap; 0 replays the whole stream
//   --batch-max-edges K   per-shard micro-batch size trigger (default 1024)
//   --batch-window-ms X   per-shard micro-batch deadline (default 2.0)
//   --queue-capacity K    per-shard ingest queue bound (default 65536)
//   --admission block|shed   full-queue policy (default block)
//   --retain K            pinnable global epochs per replica (default 8)
//   --reconcile-ms X      reconcile thread cadence (default 2.0)
//   --cache-bits B        global snapshots' pair cache log2 slots (default 12)
//   --seed S              workload RNG seed (default 1)
//   --verify              record everything and replay every published
//                         global epoch through from-scratch lacc_dist
//   --json FILE           write lacc-metrics-v7 JSON with the shard block
//   --trace-out FILE      Chrome trace of per-request spans (all shards;
//                         each span carries its shard id)
//
// Writers fan out across shards by vertex hash; session writes re-read
// their own edge through a replica with the merged ShardTicket, verifying
// read-your-writes across the router hop online.  Inputs are the same as
// lacc_cli (Matrix Market, LACC binary, gen:NAME).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "graph/testproblems.hpp"
#include "obs/metrics.hpp"
#include "serve/trace.hpp"
#include "shard/router.hpp"
#include "shard/workload.hpp"
#include "support/table.hpp"

using namespace lacc;

namespace {

int usage() {
  std::cerr
      << "usage: lacc_shard_cli <graph.mtx|graph.bin|gen:NAME> "
         "[--shards N] [--replicas M] [--ranks N] [--reconcile-ranks N] "
         "[--machine edison|cori|local] [--scale S] [--readers N] "
         "[--writers M] [--duration SEC] [--batch-max-edges K] "
         "[--batch-window-ms X] [--queue-capacity K] "
         "[--admission block|shed] [--retain K] [--reconcile-ms X] "
         "[--cache-bits B] [--seed S] [--verify] [--json FILE] "
         "[--trace-out FILE]\n";
  return 2;
}

const sim::MachineModel& machine_by_name(const std::string& name) {
  if (name == "edison") return sim::MachineModel::edison();
  if (name == "cori") return sim::MachineModel::cori_knl();
  if (name == "local") return sim::MachineModel::local();
  throw Error("unknown machine: " + name);
}

int parse_int(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects an integer, got \"" << text
            << "\"\n";
  std::exit(usage());
}

double parse_double(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects a number, got \"" << text
            << "\"\n";
  std::exit(usage());
}

double to_ms(double seconds) { return seconds * 1e3; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path = argv[1];
  std::string machine = "edison", admission = "block", json_path,
              trace_out_path;
  int ranks = 4;
  double scale = 0.25, duration = 0;
  bool verify = false;
  shard::RouterOptions options;
  options.shards = 2;
  options.replicas = 2;
  shard::ShardWorkloadOptions workload;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--shards")
      options.shards = parse_int("--shards", next());
    else if (arg == "--replicas")
      options.replicas = parse_int("--replicas", next());
    else if (arg == "--ranks")
      ranks = parse_int("--ranks", next());
    else if (arg == "--reconcile-ranks")
      options.reconcile_ranks = parse_int("--reconcile-ranks", next());
    else if (arg == "--machine")
      machine = next();
    else if (arg == "--scale")
      scale = parse_double("--scale", next());
    else if (arg == "--readers")
      workload.readers = parse_int("--readers", next());
    else if (arg == "--writers")
      workload.writers = parse_int("--writers", next());
    else if (arg == "--duration")
      duration = parse_double("--duration", next());
    else if (arg == "--batch-max-edges")
      options.serve.batch_max_edges =
          static_cast<std::size_t>(parse_int("--batch-max-edges", next()));
    else if (arg == "--batch-window-ms")
      options.serve.batch_window_ms =
          parse_double("--batch-window-ms", next());
    else if (arg == "--queue-capacity")
      options.serve.queue_capacity =
          static_cast<std::size_t>(parse_int("--queue-capacity", next()));
    else if (arg == "--admission")
      admission = next();
    else if (arg == "--retain")
      options.retain_epochs =
          static_cast<std::size_t>(parse_int("--retain", next()));
    else if (arg == "--reconcile-ms")
      options.reconcile_interval_ms = parse_double("--reconcile-ms", next());
    else if (arg == "--cache-bits")
      options.pair_cache_bits =
          static_cast<std::uint32_t>(parse_int("--cache-bits", next()));
    else if (arg == "--seed")
      workload.seed = static_cast<std::uint64_t>(parse_int("--seed", next()));
    else if (arg == "--verify")
      verify = true;
    else if (arg == "--json")
      json_path = next();
    else if (arg == "--trace-out")
      trace_out_path = next();
    else
      return usage();
  }

  if (options.shards < 1) {
    std::cerr << "error: --shards must be at least 1 (got " << options.shards
              << ")\n";
    return usage();
  }
  if (options.replicas < 1) {
    std::cerr << "error: --replicas must be at least 1 (got "
              << options.replicas << ")\n";
    return usage();
  }
  {
    int q = 0;
    while (q * q < ranks) ++q;
    if (ranks < 1 || q * q != ranks) {
      std::cerr << "error: --ranks must be a positive perfect square (got "
                << ranks << ")\n";
      return usage();
    }
  }
  if (options.reconcile_ranks < 1) {
    std::cerr << "error: --reconcile-ranks must be at least 1\n";
    return usage();
  }
  if (workload.readers < 0 || workload.writers < 0) {
    std::cerr << "error: --readers/--writers must be non-negative\n";
    return usage();
  }
  if (options.serve.batch_max_edges < 1) {
    std::cerr << "error: --batch-max-edges must be at least 1\n";
    return usage();
  }
  if (options.serve.batch_window_ms < 0) {
    std::cerr << "error: --batch-window-ms must be non-negative\n";
    return usage();
  }
  if (options.serve.queue_capacity < 1) {
    std::cerr << "error: --queue-capacity must be at least 1\n";
    return usage();
  }
  if (options.retain_epochs < 1) {
    std::cerr << "error: --retain must be at least 1\n";
    return usage();
  }
  if (options.reconcile_interval_ms < 0) {
    std::cerr << "error: --reconcile-ms must be non-negative\n";
    return usage();
  }
  if (admission == "block")
    options.serve.admission = serve::Admission::kBlock;
  else if (admission == "shed")
    options.serve.admission = serve::Admission::kShed;
  else {
    std::cerr << "error: --admission must be block or shed (got " << admission
              << ")\n";
    return usage();
  }
  workload.duration_s = duration;
  options.record_applied = verify;
  options.serve.record_requests = !trace_out_path.empty();

  try {
    graph::EdgeList el;
    if (path.rfind("gen:", 0) == 0) {
      const auto problems = graph::make_test_problems(scale);
      el = graph::find_problem(problems, path.substr(4)).graph;
    } else if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
      el = graph::read_binary_file(path);
    } else {
      el = graph::read_matrix_market_file(path);
    }

    // A shard that owns no vertex can never make progress on its slice;
    // more shards than vertices is a configuration error, not a degenerate
    // deployment.
    if (static_cast<VertexId>(options.shards) > el.n) {
      std::cerr << "error: --shards must not exceed the vertex count (got "
                << options.shards << " shards for " << el.n << " vertices)\n";
      return usage();
    }
    if (static_cast<VertexId>(options.replicas) > el.n) {
      std::cerr << "error: --replicas must not exceed the vertex count (got "
                << options.replicas << " replicas for " << el.n
                << " vertices)\n";
      return usage();
    }

    const auto& m = machine_by_name(machine);
    std::cout << "Graph: " << fmt_count(el.n) << " vertices, "
              << fmt_count(el.edges.size()) << " entries\n"
              << "Router: " << options.shards << " shard(s) x " << ranks
              << " virtual ranks (" << m.name << " model), "
              << options.replicas << " replica(s), reconcile every "
              << options.reconcile_interval_ms << " ms (<= "
              << options.reconcile_ranks << " ranks), retain "
              << options.retain_epochs << "\n"
              << "Workload: " << workload.readers << " reader(s), "
              << workload.writers << " writer(s)"
              << (duration > 0
                      ? ", duration " + std::to_string(duration) + " s"
                      : ", full replay")
              << ", seed " << workload.seed << "\n";

    shard::Router router(el.n, ranks, m, options);
    const shard::ShardWorkloadReport report =
        run_shard_workload(router, el, workload);
    router.stop();
    const shard::RouterStats stats = router.stats();

    TextTable table({"metric", "value"});
    table.add_row({"replica reads", fmt_count(stats.replica_reads)});
    table.add_row({"writes accepted", fmt_count(stats.writes_accepted)});
    table.add_row({"writes shed", fmt_count(stats.writes_shed)});
    table.add_row({"global epochs", fmt_count(stats.global_epoch)});
    table.add_row({"reconcile rounds",
                   fmt_count(stats.reconcile_rounds) + " (+" +
                       fmt_count(stats.reconcile_skipped) + " idle)"});
    table.add_row({"boundary edges", fmt_count(stats.boundary_raw_total)});
    table.add_row(
        {"boundary words moved", fmt_count(stats.boundary_words_moved)});
    table.add_row({"ticket waits", fmt_count(stats.ticket_waits)});
    const auto& head = *router.snapshot(0);
    table.add_row({"components", fmt_count(head.view().num_components())});
    for (const shard::ReplicaStats& rs : stats.replica_stats)
      table.add_row({"replica " + std::to_string(rs.replica) +
                         " read p50/p99 ms",
                     fmt_double(to_ms(rs.read_p50), 4) + " / " +
                         fmt_double(to_ms(rs.read_p99), 4)});
    table.print(std::cout);
    const double rps =
        report.wall_seconds > 0
            ? static_cast<double>(report.reads + report.writes_attempted) /
                  report.wall_seconds
            : 0;
    std::cout << "Throughput: " << fmt_double(rps, 0) << " req/s over "
              << fmt_seconds(report.wall_seconds) << " wall ("
              << fmt_count(report.session_reads) << " session read(s), "
              << fmt_count(report.held_pins) << " held pin(s))\n";

    if (report.session_violations != 0 || report.read_errors != 0 ||
        report.held_pin_losses != 0) {
      std::cerr << "error: VERIFY FAILED — " << report.session_violations
                << " read-your-writes violation(s), " << report.read_errors
                << " unexpected read error(s), " << report.held_pin_losses
                << " held-pin loss(es)\n";
      return 1;
    }

    if (verify) {
      const std::uint64_t checked = router.verify_epochs(ranks);
      std::cout << "Verify: " << checked
                << " global epoch(s) match from-scratch recompute\n";
    }

    if (!trace_out_path.empty()) {
      std::vector<serve::RequestSpan> spans;
      for (int s = 0; s < router.shards(); ++s) {
        const auto shard_spans = router.shard(s).request_log().spans();
        spans.insert(spans.end(), shard_spans.begin(), shard_spans.end());
      }
      std::ofstream out(trace_out_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << trace_out_path);
      serve::write_request_trace(out, spans, "lacc_shard_cli " + path);
      std::cout << "Request trace written to " << trace_out_path << "\n";
    }

    if (!json_path.empty()) {
      double modeled = stats.reconcile_modeled_seconds;
      for (int s = 0; s < router.shards(); ++s)
        modeled += router.shard(s).engine_modeled_seconds();
      obs::RunRecord rec =
          obs::make_run_record(path, ranks, {}, modeled, report.wall_seconds);
      rec.scalars = {
          {"vertices", static_cast<double>(el.n)},
          {"edges", static_cast<double>(el.edges.size())},
          {"components", static_cast<double>(head.view().num_components())},
          {"throughput_rps", rps}};
      rec.shard = {
          {"shards", static_cast<double>(options.shards)},
          {"replicas", static_cast<double>(options.replicas)},
          {"global_epochs", static_cast<double>(stats.global_epoch)},
          {"reconcile_rounds", static_cast<double>(stats.reconcile_rounds)},
          {"reconcile_skipped",
           static_cast<double>(stats.reconcile_skipped)},
          {"reconcile_modeled_seconds", stats.reconcile_modeled_seconds},
          {"boundary_raw_total",
           static_cast<double>(stats.boundary_raw_total)},
          {"boundary_words_moved",
           static_cast<double>(stats.boundary_words_moved)},
          {"ticket_waits", static_cast<double>(stats.ticket_waits)},
          {"invalid_tickets", static_cast<double>(stats.invalid_tickets)}};
      for (int s = 0; s < router.shards(); ++s) {
        const serve::ServeStats& ss =
            stats.shard_stats[static_cast<std::size_t>(s)];
        rec.shard_per_shard.push_back(
            {{"shard", static_cast<double>(s)},
             {"writes_accepted", static_cast<double>(ss.writes_accepted)},
             {"writes_shed", static_cast<double>(ss.writes_shed)},
             {"epochs", static_cast<double>(ss.current_epoch)},
             {"max_queue_depth", static_cast<double>(ss.max_queue_depth)},
             {"boundary_raw",
              static_cast<double>(
                  stats.boundary_per_shard[static_cast<std::size_t>(s)])}});
      }
      for (const shard::ReplicaStats& rs : stats.replica_stats) {
        rec.shard_per_replica.push_back(
            {{"replica", static_cast<double>(rs.replica)},
             {"reads", static_cast<double>(rs.reads)},
             {"read_errors", static_cast<double>(rs.read_errors)},
             {"epoch", static_cast<double>(rs.current_epoch)},
             {"read_p50_ms", to_ms(rs.read_p50)},
             {"read_p95_ms", to_ms(rs.read_p95)},
             {"read_p99_ms", to_ms(rs.read_p99)}});
      }
      std::ofstream out(json_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << json_path);
      obs::write_metrics_json(
          out, "lacc_shard_cli",
          {{"scale", scale},
           {"ranks", static_cast<double>(ranks)},
           {"shards", static_cast<double>(options.shards)},
           {"replicas", static_cast<double>(options.replicas)},
           {"readers", static_cast<double>(workload.readers)},
           {"writers", static_cast<double>(workload.writers)},
           {"admission",
            options.serve.admission == serve::Admission::kShed ? 1.0 : 0.0}},
          {std::move(rec)});
      std::cout << "Metrics written to " << json_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
