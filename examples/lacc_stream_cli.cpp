// lacc_stream_cli — replay a graph as a stream of edge batches through
// stream::StreamEngine and report what each epoch did.
//
//   lacc_stream_cli <graph.mtx|graph.bin|gen:NAME> [options]
//
//   --batches K               split the edge list into K batches (default 8)
//   --ranks N                 virtual ranks (default 4; perfect square)
//   --machine edison|cori|local   cost model (default edison)
//   --scale S                 stand-in scale for gen: inputs
//   --shuffle SEED            shuffle edges deterministically before batching
//   --rebuild-threshold X     dirty-fraction fallback threshold (default 0.15)
//   --compaction-factor X     delta/base compaction ratio (default 0.25)
//   --prepass                 Afforest-style sampling pre-pass in the
//                             full-rebuild path
//   --sample-rounds N         pre-pass neighbor rounds (default 2)
//   --no-frequent-skip        pre-pass: link every local edge
//   --data-dir DIR            persist to DIR (WAL + run files + manifest);
//                             a non-empty DIR recovers the last published
//                             epoch before replaying the stream
//   --fsync batch|epoch       WAL fsync policy (default batch; needs
//                             --data-dir)
//   --verify                  check final labels against serial union-find
//   --out labels.txt          write "vertex component" lines (final epoch)
//   --trace-out FILE          Chrome trace of the LAST epoch's SPMD session
//   --json FILE               write lacc-metrics-v7 JSON (per-epoch array)
//
// Inputs are the same as lacc_cli (Matrix Market, LACC binary, gen:NAME).
// Prints one table row per epoch — batch size, cross-component edges, dirty
// mass, merges, surviving components, incremental vs rebuild — plus the
// accumulated modeled time.  Observability outputs go to files only, and
// the durability report lines appear only under --data-dir, so memory-only
// stdout is identical with and without them (docs/OBSERVABILITY.md).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/union_find.hpp"
#include "core/options.hpp"
#include "graph/io.hpp"
#include "graph/testproblems.hpp"
#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stream/engine.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

using namespace lacc;

namespace {

int usage() {
  std::cerr << "usage: lacc_stream_cli <graph.mtx|graph.bin|gen:NAME> "
               "[--batches K] [--ranks N] [--machine edison|cori|local] "
               "[--scale S] [--shuffle SEED] [--rebuild-threshold X] "
               "[--compaction-factor X] [--prepass] [--sample-rounds N] "
               "[--no-frequent-skip] [--data-dir DIR] [--fsync batch|epoch] "
               "[--verify] [--out FILE] [--trace-out FILE] [--json FILE]\n";
  return 2;
}

const sim::MachineModel& machine_by_name(const std::string& name) {
  if (name == "edison") return sim::MachineModel::edison();
  if (name == "cori") return sim::MachineModel::cori_knl();
  if (name == "local") return sim::MachineModel::local();
  throw Error("unknown machine: " + name);
}

/// Parse a flag's value as an int; on garbage, report and exit with usage
/// instead of dying on an uncaught std::invalid_argument.
int parse_int(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects an integer, got \"" << text
            << "\"\n";
  std::exit(usage());
}

double parse_double(const char* flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos == text.size()) return v;
  } catch (const std::exception&) {
  }
  std::cerr << "error: " << flag << " expects a number, got \"" << text
            << "\"\n";
  std::exit(usage());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string path = argv[1];
  std::string machine = "edison", out_path, trace_out_path, json_path;
  std::string fsync_policy;
  int batches = 8, ranks = 4;
  double scale = 0.25;
  std::uint64_t shuffle_seed = 0;
  bool shuffle = false, verify = false;
  stream::StreamOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--batches")
      batches = parse_int("--batches", next());
    else if (arg == "--ranks")
      ranks = parse_int("--ranks", next());
    else if (arg == "--machine")
      machine = next();
    else if (arg == "--scale")
      scale = parse_double("--scale", next());
    else if (arg == "--shuffle") {
      shuffle = true;
      shuffle_seed =
          static_cast<std::uint64_t>(parse_int("--shuffle", next()));
    } else if (arg == "--rebuild-threshold")
      options.rebuild_threshold = parse_double("--rebuild-threshold", next());
    else if (arg == "--compaction-factor")
      options.compaction_factor = parse_double("--compaction-factor", next());
    else if (arg == "--prepass")
      options.lacc.sampling_prepass = true;
    else if (arg == "--sample-rounds")
      options.lacc.sample_rounds = parse_int("--sample-rounds", next());
    else if (arg == "--no-frequent-skip")
      options.lacc.frequent_skip = false;
    else if (arg == "--data-dir")
      options.durable.dir = next();
    else if (arg == "--fsync")
      fsync_policy = next();
    else if (arg == "--verify")
      verify = true;
    else if (arg == "--out")
      out_path = next();
    else if (arg == "--trace-out")
      trace_out_path = next();
    else if (arg == "--json")
      json_path = next();
    else
      return usage();
  }

  {
    int q = 0;
    while (q * q < ranks) ++q;
    if (ranks < 1 || q * q != ranks) {
      std::cerr << "error: --ranks must be a positive perfect square (got "
                << ranks << ")\n";
      return usage();
    }
  }
  if (batches < 1) {
    std::cerr << "error: --batches must be at least 1 (got " << batches
              << ")\n";
    return usage();
  }
  if (scale <= 0) {
    std::cerr << "error: --scale must be positive (got " << scale << ")\n";
    return usage();
  }
  if (options.rebuild_threshold < 0 || options.rebuild_threshold > 1) {
    std::cerr << "error: --rebuild-threshold must be in [0, 1] (got "
              << options.rebuild_threshold << ")\n";
    return usage();
  }
  if (options.compaction_factor < 0) {
    std::cerr << "error: --compaction-factor must be non-negative (got "
              << options.compaction_factor << ")\n";
    return usage();
  }
  if (options.lacc.sample_rounds < 0) {
    std::cerr << "error: --sample-rounds must be non-negative (got "
              << options.lacc.sample_rounds << ")\n";
    return usage();
  }
  if (!fsync_policy.empty()) {
    if (options.durable.dir.empty()) {
      std::cerr << "error: --fsync requires --data-dir\n";
      return usage();
    }
    if (fsync_policy == "batch")
      options.durable.fsync = stream::durable::FsyncPolicy::kPerBatch;
    else if (fsync_policy == "epoch")
      options.durable.fsync = stream::durable::FsyncPolicy::kPerEpoch;
    else {
      std::cerr << "error: --fsync must be batch or epoch (got "
                << fsync_policy << ")\n";
      return usage();
    }
  }

  // Record spans when a trace file was requested; only the last epoch's
  // SPMD session survives for export, which is what the engine exposes.
  if (!trace_out_path.empty()) obs::set_trace_enabled(true);

  try {
    graph::EdgeList el;
    if (path.rfind("gen:", 0) == 0) {
      const auto problems = graph::make_test_problems(scale);
      el = graph::find_problem(problems, path.substr(4)).graph;
    } else if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
      el = graph::read_binary_file(path);
    } else {
      el = graph::read_matrix_market_file(path);
    }
    std::cout << "Graph: " << fmt_count(el.n) << " vertices, "
              << fmt_count(el.edges.size()) << " entries, replayed as "
              << batches << " batch(es)\n";

    if (shuffle) {
      Xoshiro256 rng(shuffle_seed);
      for (std::size_t i = el.edges.size(); i > 1; --i)
        std::swap(el.edges[i - 1], el.edges[rng.below(i)]);
    }

    const auto& m = machine_by_name(machine);
    std::cout << "Engine: " << ranks << " virtual ranks (" << m.name
              << " model), rebuild threshold " << options.rebuild_threshold
              << ", compaction factor " << options.compaction_factor << "\n";

    Timer timer;
    stream::StreamEngine engine(el.n, ranks, m, options);
    if (engine.durable()) {
      std::cout << "Durable: " << options.durable.dir << " (fsync per "
                << (options.durable.fsync ==
                            stream::durable::FsyncPolicy::kPerBatch
                        ? "batch"
                        : "epoch")
                << ")";
      if (engine.recovered()) {
        const auto ds = engine.durability_stats();
        std::cout << ", recovered epoch " << engine.recovered_epoch() << " ("
                  << fmt_count(ds.replayed_wal_records)
                  << " pending WAL record(s) replayed in "
                  << fmt_seconds(ds.recovery_seconds) << ")";
      }
      std::cout << "\n";
    }
    if (verify && engine.recovered()) {
      std::cerr << "error: --verify needs the full batch history, but this "
                   "engine recovered at epoch "
                << engine.recovered_epoch()
                << "; run --verify against a fresh --data-dir\n";
      return 1;
    }
    const std::size_t per_batch =
        (el.edges.size() + static_cast<std::size_t>(batches) - 1) /
        static_cast<std::size_t>(std::max(batches, 1));
    TextTable table({"epoch", "edges", "cross", "dirty", "merges",
                     "components", "mode", "modeled"});
    for (std::size_t at = 0; at < el.edges.size() || at == 0;
         at += std::max<std::size_t>(per_batch, 1)) {
      graph::EdgeList slice(el.n);
      const std::size_t hi = std::min(at + per_batch, el.edges.size());
      slice.edges.assign(el.edges.begin() + static_cast<std::ptrdiff_t>(at),
                         el.edges.begin() + static_cast<std::ptrdiff_t>(hi));
      engine.ingest(slice);
      const auto st = engine.advance_epoch();
      table.add_row({std::to_string(st.epoch), fmt_count(st.batch_edges),
                     fmt_count(st.cross_edges), fmt_count(st.dirty_vertices),
                     fmt_count(st.merges), fmt_count(st.components),
                     st.full_rebuild ? "rebuild" : "inc",
                     fmt_seconds(st.modeled_seconds())});
      if (hi >= el.edges.size()) break;
    }
    const double wall = timer.seconds();
    table.print(std::cout);

    std::cout << "Components: " << fmt_count(engine.num_components())
              << " after " << engine.epoch() << " epoch(s)\n";
    std::cout << "Wall time: " << fmt_seconds(wall) << ", modeled time: "
              << fmt_seconds(engine.total_modeled_seconds()) << "\n";
    if (engine.durable()) {
      const auto ds = engine.durability_stats();
      std::cout << "Durability: " << fmt_count(ds.io.wal_records)
                << " WAL record(s), " << fmt_count(ds.io.fsyncs)
                << " fsync(s), " << fmt_count(ds.io.run_files_written)
                << " run file(s) written (" << fmt_count(ds.run_files_live)
                << " live), " << fmt_count(ds.io.level_compactions)
                << " level compaction(s)\n";
    }

    if (verify) {
      const auto truth = baselines::union_find_cc(el);
      if (engine.labels() != core::normalize_labels(truth.parent)) {
        std::cerr << "error: VERIFY FAILED — incremental labels disagree "
                     "with serial union-find\n";
        return 1;
      }
      std::cout << "Verify: labels match serial union-find\n";
    }

    if (!out_path.empty()) {
      std::ofstream out(out_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << out_path);
      for (VertexId v = 0; v < el.n; ++v)
        out << v << " " << engine.labels()[v] << "\n";
      std::cout << "Labels written to " << out_path << "\n";
    }

    if (!trace_out_path.empty()) {
      std::ofstream out(trace_out_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << trace_out_path);
      obs::TraceMeta meta;
      meta.process_name = "lacc_stream_cli " + path + " (last epoch)";
      obs::write_chrome_trace(out, engine.last_epoch_spmd().stats, meta);
    }

    if (!json_path.empty()) {
      std::uint64_t rebuilds = 0;
      obs::RunRecord rec = obs::make_run_record(
          path, ranks, engine.last_epoch_spmd().stats,
          engine.total_modeled_seconds(), wall, {});
      for (const auto& st : engine.history()) {
        rebuilds += st.full_rebuild ? 1 : 0;
        rec.epochs.push_back(
            {{"epoch", static_cast<double>(st.epoch)},
             {"batch_edges", static_cast<double>(st.batch_edges)},
             {"delta_nnz", static_cast<double>(st.delta_nnz)},
             {"cross_edges", static_cast<double>(st.cross_edges)},
             {"dirty_vertices", static_cast<double>(st.dirty_vertices)},
             {"merges", static_cast<double>(st.merges)},
             {"components", static_cast<double>(st.components)},
             {"relabeled_vertices",
              static_cast<double>(st.relabeled_vertices)},
             {"full_rebuild", st.full_rebuild ? 1.0 : 0.0},
             {"compacted", st.compacted ? 1.0 : 0.0},
             {"iterations", static_cast<double>(st.iterations)},
             {"modeled_seconds", st.modeled_seconds()}});
      }
      rec.scalars = {
          {"vertices", static_cast<double>(el.n)},
          {"edges", static_cast<double>(el.edges.size())},
          {"epochs", static_cast<double>(engine.epoch())},
          {"components", static_cast<double>(engine.num_components())},
          {"full_rebuilds", static_cast<double>(rebuilds)}};
      if (engine.durable())
        rec.durability =
            stream::durable::durability_scalars(engine.durability_stats());
      std::ofstream out(json_path);
      LACC_CHECK_MSG(out.good(), "cannot write " << json_path);
      obs::write_metrics_json(
          out, "lacc_stream_cli",
          {{"scale", scale},
           {"ranks", static_cast<double>(ranks)},
           {"batches", static_cast<double>(batches)},
           {"rebuild_threshold", options.rebuild_threshold},
           {"compaction_factor", options.compaction_factor},
           {"prepass", options.lacc.sampling_prepass ? 1.0 : 0.0}},
          {std::move(rec)});
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
