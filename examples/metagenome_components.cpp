// Metagenome assembly scenario (paper Section I): assemblers represent
// partially-assembled reads as a huge, extremely sparse contig graph whose
// connected components can then be processed independently.  This example
// builds an M3-like contig graph, extracts its components with distributed
// LACC, and reports the component-size histogram an assembler would use to
// schedule downstream work.
#include <algorithm>
#include <iostream>
#include <map>
#include <unordered_map>

#include "core/lacc_dist.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

using namespace lacc;

int main() {
  const auto n = static_cast<VertexId>(env_int("CONTIGS", 200000));
  std::cout << "Metagenome contig graph: " << fmt_count(n)
            << " contigs, overlap chains of ~60 contigs (avg degree ~2,\n"
               "the M3 regime: communication-bound, slow convergence)\n\n";
  const auto el = graph::path_forest(n, 60, 2024);

  const auto result = core::lacc_dist(el, 16, sim::MachineModel::edison());
  const auto sizes = core::component_sizes(result.cc.parent);
  std::cout << "LACC found " << fmt_count(sizes.size())
            << " assembly bins in " << result.cc.iterations
            << " iterations (modeled "
            << fmt_seconds(result.modeled_seconds) << " on 4 Edison nodes)\n\n";

  const std::uint64_t largest = sizes.empty() ? 0 : sizes.front();
  TextTable t({"component size", "count"});
  for (const auto& [bucket, count] :
       core::component_size_histogram(result.cc.parent))
    t.add_row({fmt_count(bucket) + "-" + fmt_count(bucket * 2 - 1),
               fmt_count(count)});
  t.print(std::cout);
  std::cout << "\nLargest bin: " << fmt_count(largest)
            << " contigs.  Each bin is now an independent assembly\n"
               "subproblem — the decomposition step LACC provides for\n"
               "distributed metagenome pipelines.\n";
  return 0;
}
