// HipMCL scenario (paper Sections I and VI-F): Markov clustering iterates
// expansion (matrix squaring), inflation (elementwise powering with column
// renormalization), and pruning until the matrix converges; the clusters
// are then the connected components of the symmetrized converged matrix —
// the step LACC provides at scale.
//
// This example drives the apps::mcl pipeline on a protein-similarity-like
// network and checks the extracted clusters against the generator's
// planted communities.
#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "apps/mcl.hpp"
#include "baselines/union_find.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

using namespace lacc;

int main() {
  const auto n = static_cast<VertexId>(env_int("PROTEINS", 2000));
  const VertexId planted = n / 33;
  const auto el = graph::clustered_components(n, planted, 10.0, 99);
  const graph::Csr g(el);
  std::cout << "Protein network: " << fmt_count(n) << " proteins, "
            << fmt_count(g.num_edges()) << " similarities, "
            << fmt_count(planted) << " planted clusters\n\n";

  apps::MclOptions options;
  options.inflation = env_double("INFLATION", 2.0);
  const auto result = apps::markov_cluster(g, options, /*ranks=*/16);

  std::cout << "MCL converged after " << result.sweeps
            << " expansion/inflation sweeps\n";
  std::cout << "LACC extracted " << fmt_count(result.num_clusters)
            << " clusters in " << result.extraction.iterations
            << " iterations\n\n";

  // Compare against the planted clustering: MCL may split weakly-connected
  // planted clusters, so expect at least as many, and every MCL cluster
  // confined to one planted cluster.
  const auto planted_labels =
      core::normalize_labels(baselines::union_find_cc(el).parent);
  std::unordered_set<VertexId> mixed;
  std::unordered_map<VertexId, VertexId> cluster_home;
  for (VertexId v = 0; v < n; ++v) {
    const auto [it, fresh] =
        cluster_home.try_emplace(result.cluster[v], planted_labels[v]);
    if (!fresh && it->second != planted_labels[v]) mixed.insert(result.cluster[v]);
  }
  std::cout << "Clusters vs planted communities: "
            << fmt_count(result.num_clusters) << " found / "
            << fmt_count(planted) << " planted; " << fmt_count(mixed.size())
            << " clusters span more than one planted community\n"
            << (mixed.empty() && result.num_clusters >= planted
                    ? "Result: every MCL cluster sits inside one planted "
                      "community — the pipeline works.\n"
                    : "Result: unexpected cluster mixing — inspect the MCL "
                      "parameters.\n");
  return mixed.empty() ? 0 : 1;
}
