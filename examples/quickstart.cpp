// Quickstart: build a graph, find its connected components three ways
// (serial GraphBLAS LACC, distributed LACC on virtual ranks, union-find),
// and confirm they agree.
//
//   ./quickstart                 # demo graph
//   ./quickstart graph.mtx       # your own Matrix Market file
#include <iostream>

#include "baselines/union_find.hpp"
#include "core/lacc_dist.hpp"
#include "core/lacc_serial.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/table.hpp"

using namespace lacc;

int main(int argc, char** argv) {
  // 1. Get a graph: from a Matrix Market file, or a demo with known
  //    structure (three components: a community, a ring, and dust).
  graph::EdgeList el;
  if (argc > 1) {
    el = graph::read_matrix_market_file(argv[1]);
    std::cout << "Loaded " << argv[1] << ": " << fmt_count(el.n)
              << " vertices, " << fmt_count(el.edges.size()) << " entries\n";
  } else {
    el = graph::disjoint_union(graph::erdos_renyi(3000, 9000, 1),
                               graph::cycle(500));
    el = graph::disjoint_union(el, graph::empty_graph(20));
    std::cout << "Demo graph: " << fmt_count(el.n) << " vertices, "
              << fmt_count(el.edges.size()) << " edges\n";
  }

  // 2. Serial LACC over the GraphBLAS primitives (Algorithms 3-6).
  const graph::Csr g(el);
  const auto serial = core::lacc_grb(g);
  std::cout << "\nSerial LACC:      " << fmt_count(core::count_components(
                                             serial.parent))
            << " components in " << serial.iterations << " iterations\n";

  // 3. Distributed LACC on 16 virtual ranks with the Edison cost model.
  const auto distributed =
      core::lacc_dist(el, 16, sim::MachineModel::edison());
  std::cout << "Distributed LACC: "
            << fmt_count(core::count_components(distributed.cc.parent))
            << " components in " << distributed.cc.iterations
            << " iterations; modeled time on 4 Edison nodes: "
            << fmt_seconds(distributed.modeled_seconds) << "\n";

  // 4. Validate against the optimal serial algorithm.
  const auto truth = baselines::union_find_cc(g);
  const bool ok =
      core::same_partition(serial.parent, truth.parent) &&
      core::same_partition(distributed.cc.parent, truth.parent);
  std::cout << "Agreement with union-find ground truth: "
            << (ok ? "yes" : "NO") << "\n";

  // 5. The per-iteration trace shows the sparsity LACC exploits.
  std::cout << "\nPer-iteration convergence (serial run):\n";
  TextTable t({"iteration", "active", "converged", "hooks"});
  for (const auto& rec : serial.trace)
    t.add_row({std::to_string(rec.iteration), fmt_count(rec.active_vertices),
               fmt_count(rec.converged_vertices),
               fmt_count(rec.cond_hooks + rec.uncond_hooks)});
  t.print(std::cout);
  return ok ? 0 : 1;
}
