// Web-graph component census (the uk-2002 / sk-2005 scenario): crawlers
// produce power-law graphs whose component structure — one giant weakly
// connected component plus a long tail of small ones — is the first thing
// an analyst asks for.  This example builds a crawl-like graph, runs LACC
// at several virtual-cluster sizes, and reports the census plus the strong
// scaling of the modeled runtime.
#include <algorithm>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "baselines/serial_cc.hpp"
#include "core/lacc_dist.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

using namespace lacc;

int main() {
  const auto n = static_cast<VertexId>(env_int("PAGES", 100000));
  std::cout << "Synthetic web crawl: " << fmt_count(n)
            << " pages (preferential attachment, 6% never linked)\n\n";
  const auto el = graph::permute_vertices(
      graph::preferential_attachment(n, 6, 7, 0.06), 2026);
  const graph::Csr g(el);

  const auto result = core::lacc_dist(el, 16, sim::MachineModel::edison());
  const auto labels = core::normalize_labels(result.cc.parent);

  // Census: giant component share and the size tail.
  std::unordered_map<VertexId, std::uint64_t> size_of;
  for (const VertexId label : labels) ++size_of[label];
  std::vector<std::uint64_t> sizes;
  sizes.reserve(size_of.size());
  for (const auto& [label, size] : size_of) sizes.push_back(size);
  std::sort(sizes.rbegin(), sizes.rend());

  std::cout << "Components: " << fmt_count(sizes.size()) << "\n";
  std::cout << "Giant component: " << fmt_count(sizes.front()) << " pages ("
            << fmt_double(100.0 * static_cast<double>(sizes.front()) /
                              static_cast<double>(n),
                          1)
            << "% of the crawl)\n";
  std::cout << "Top component sizes:";
  for (std::size_t k = 0; k < std::min<std::size_t>(5, sizes.size()); ++k)
    std::cout << " " << fmt_count(sizes[k]);
  std::cout << "\n\n";

  // Cross-check with a shared-memory baseline.
  const auto multistep = baselines::multistep(g);
  std::cout << "Multistep baseline agrees: "
            << (core::same_partition(multistep.parent, result.cc.parent)
                    ? "yes"
                    : "NO")
            << "\n\n";

  // Strong scaling of the modeled runtime across virtual cluster sizes.
  TextTable t({"Edison nodes", "modeled time", "iterations"});
  for (const int ranks : {4, 16, 64}) {
    const auto run = core::lacc_dist(el, ranks, sim::MachineModel::edison());
    t.add_row({fmt_double(sim::MachineModel::edison().nodes_for_ranks(ranks), 0),
               fmt_seconds(run.modeled_seconds),
               std::to_string(run.cc.iterations)});
  }
  t.print(std::cout);
  return 0;
}
