#include "apps/mcl.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/lacc_dist.hpp"
#include "support/error.hpp"

namespace lacc::apps {

StochasticMatrix::StochasticMatrix(const graph::Csr& g) : n_(g.num_vertices()) {
  columns_.resize(n_);
  for (VertexId j = 0; j < n_; ++j) {
    const auto nbrs = g.neighbors(j);
    const double w = 1.0 / (static_cast<double>(nbrs.size()) + 1.0);
    columns_[j].reserve(nbrs.size() + 1);
    columns_[j].push_back({j, w});  // MCL adds self loops
    for (const VertexId i : nbrs) columns_[j].push_back({i, w});
    std::sort(columns_[j].begin(), columns_[j].end());
  }
}

std::uint64_t StochasticMatrix::nnz() const {
  std::uint64_t total = 0;
  for (const auto& column : columns_) total += column.size();
  return total;
}

StochasticMatrix StochasticMatrix::expand() const {
  StochasticMatrix out;
  out.n_ = n_;
  out.columns_.resize(n_);
  std::vector<double> acc(n_, 0.0);
  std::vector<VertexId> touched;
  for (VertexId j = 0; j < n_; ++j) {
    for (const auto& [k, wkj] : columns_[j])
      for (const auto& [i, wik] : columns_[k]) {
        if (acc[i] == 0.0) touched.push_back(i);
        acc[i] += wik * wkj;
      }
    std::sort(touched.begin(), touched.end());
    out.columns_[j].reserve(touched.size());
    for (const VertexId i : touched) {
      out.columns_[j].push_back({i, acc[i]});
      acc[i] = 0.0;
    }
    touched.clear();
  }
  return out;
}

void StochasticMatrix::inflate(double power, double prune) {
  LACC_CHECK(power > 0);
  for (auto& column : columns_) {
    if (column.empty()) continue;
    double total = 0;
    for (auto& [i, w] : column) {
      w = std::pow(w, power);
      total += w;
    }
    std::vector<std::pair<VertexId, double>> kept;
    kept.reserve(column.size());
    double kept_total = 0;
    for (auto& [i, w] : column) {
      w /= total;
      if (w >= prune) {
        kept.push_back({i, w});
        kept_total += w;
      }
    }
    if (kept.empty()) {
      // Keep the heaviest entry so the column stays stochastic.
      const auto heaviest =
          std::max_element(column.begin(), column.end(),
                           [](const auto& a, const auto& b) {
                             return a.second < b.second;
                           });
      kept.push_back({heaviest->first, 1.0});
      kept_total = 1.0;
    }
    for (auto& [i, w] : kept) w /= kept_total;
    column = std::move(kept);
  }
}

double StochasticMatrix::max_column_change(const StochasticMatrix& other) const {
  LACC_CHECK(n_ == other.n_);
  double change = 0;
  for (VertexId j = 0; j < n_; ++j) {
    std::map<VertexId, double> merged;
    for (const auto& [i, w] : columns_[j]) merged[i] += w;
    for (const auto& [i, w] : other.columns_[j]) merged[i] -= w;
    for (const auto& [i, w] : merged) change = std::max(change, std::abs(w));
  }
  return change;
}

graph::EdgeList StochasticMatrix::pattern() const {
  graph::EdgeList el(n_);
  for (VertexId j = 0; j < n_; ++j)
    for (const auto& [i, w] : columns_[j])
      if (i != j) el.add(i, j);
  return el;
}

bool StochasticMatrix::is_column_stochastic(double tolerance) const {
  for (const auto& column : columns_) {
    if (column.empty()) continue;
    double total = 0;
    for (const auto& [i, w] : column) total += w;
    if (std::abs(total - 1.0) > tolerance) return false;
  }
  return true;
}

MclResult markov_cluster(const graph::Csr& g, const MclOptions& options,
                         int ranks) {
  MclResult result;
  StochasticMatrix m(g);
  double change = 1.0;
  while (change > options.convergence_delta &&
         result.sweeps < options.max_sweeps) {
    StochasticMatrix next = m.expand();
    next.inflate(options.inflation, options.prune_threshold);
    change = next.max_column_change(m);
    m = std::move(next);
    ++result.sweeps;
  }

  // Cluster extraction: connected components of the symmetrized converged
  // matrix, computed with distributed LACC (HipMCL's approach).
  const auto run =
      core::lacc_dist(m.pattern(), ranks, sim::MachineModel::edison());
  result.extraction = run.cc;
  result.cluster = core::normalize_labels(run.cc.parent);
  result.num_clusters = core::count_components(result.cluster);
  return result;
}

}  // namespace lacc::apps
