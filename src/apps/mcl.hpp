// HipMCL-lite: a compact Markov clustering pipeline with LACC-based
// cluster extraction (paper Sections I and VI-F).
//
// MCL iterates on a column-stochastic matrix M derived from the similarity
// graph: expansion (M <- M*M) spreads flow, inflation (elementwise power
// with column renormalization) sharpens it, and pruning drops negligible
// entries.  At convergence the surviving structure decomposes into
// "attractor systems"; the clusters are the connected components of the
// symmetrized converged matrix — the step HipMCL delegates to LACC at
// scale, and the reason the paper needs a connected-components algorithm
// that scales to thousands of nodes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "support/types.hpp"

namespace lacc::apps {

/// MCL parameters; the defaults match the classic r=2 regime.
struct MclOptions {
  double inflation = 2.0;      ///< elementwise power (r); higher = finer
  double prune_threshold = 1e-4;  ///< entries below this are dropped
  double convergence_delta = 1e-4;  ///< max column change to declare done
  int max_sweeps = 50;
};

/// Column-stochastic sparse matrix (column-major), the MCL state.
class StochasticMatrix {
 public:
  /// Build the initial transition matrix from a similarity graph: uniform
  /// weights over each vertex's neighbors plus a self-loop (MCL's standard
  /// initialization for unweighted input).
  explicit StochasticMatrix(const graph::Csr& g);

  VertexId n() const { return n_; }
  std::uint64_t nnz() const;

  /// Expansion: returns this * this.
  StochasticMatrix expand() const;

  /// Inflation with pruning: elementwise power, renormalize columns, drop
  /// entries below `prune`, renormalize the survivors.
  void inflate(double power, double prune);

  /// Max absolute per-entry column difference against another matrix.
  double max_column_change(const StochasticMatrix& other) const;

  /// The pattern of off-diagonal entries as an undirected edge list (the
  /// symmetrized converged matrix LACC runs on).
  graph::EdgeList pattern() const;

  /// Column-stochastic invariant check: every nonempty column sums to ~1.
  bool is_column_stochastic(double tolerance = 1e-9) const;

  const std::vector<std::pair<VertexId, double>>& column(VertexId j) const {
    return columns_[j];
  }

 private:
  StochasticMatrix() = default;
  VertexId n_ = 0;
  std::vector<std::vector<std::pair<VertexId, double>>> columns_;
};

/// Result of the full pipeline.
struct MclResult {
  std::vector<VertexId> cluster;  ///< cluster label per vertex (min id)
  std::uint64_t num_clusters = 0;
  int sweeps = 0;                 ///< expansion/inflation rounds
  core::CcResult extraction;      ///< the LACC run on the converged matrix
};

/// Run Markov clustering on a similarity graph, extracting the final
/// clusters with distributed LACC on `ranks` virtual ranks.
MclResult markov_cluster(const graph::Csr& g, const MclOptions& options = {},
                         int ranks = 16);

}  // namespace lacc::apps
