#include "baselines/multistep_dist.hpp"

#include <algorithm>
#include <mutex>

#include "dist/dist_vec.hpp"
#include "dist/ops.hpp"
#include "support/error.hpp"

namespace lacc::baselines {

using dist::CommTuning;
using dist::DistCsc;
using dist::DistVec;
using dist::MaskSpec;
using dist::ProcGrid;

double multistep_dist_body(ProcGrid& grid, const DistCsc& A,
                           core::CcResult& out, int max_iterations) {
  auto& world = grid.world();
  const VertexId n = A.n();
  const CommTuning tuning{};
  const double sim_start = world.state().sim_time;
  out.trace.clear();
  out.iterations = 0;
  if (n == 0) {
    out.parent.clear();
    return 0;
  }

  DistVec<VertexId> f(grid, n);
  for (const VertexId g : f.owned()) f.set(g, g);
  DistVec<std::uint8_t> visited(grid, n);

  // ---- Step 1: BFS peel of the seed component (sparse frontiers).
  {
    sim::Region region(world, "bfs-peel");
    DistVec<VertexId> frontier(grid, n);
    if (frontier.owns(0)) {
      frontier.set(0, 0);
      visited.set(0, 1);
    }
    while (dist::global_nvals(grid, frontier) > 0) {
      const DistVec<VertexId> next = dist::mxv_select2nd_min(
          grid, A, frontier, MaskSpec{&visited, true}, tuning);
      frontier = DistVec<VertexId>(grid, n);
      for (const VertexId g : next.owned()) {
        if (!next.has(g)) continue;
        visited.set(g, 1);
        f.set(g, 0);
        frontier.set(g, 0);
      }
      world.charge_compute(static_cast<double>(next.local_size()));
    }
  }

  // ---- Step 2: label propagation on the unpeeled remainder.  Labels are
  // vertex ids; each remaining component converges to its minimum id.
  for (int iter = 1; iter <= max_iterations; ++iter) {
    core::IterationRecord rec;
    rec.iteration = iter;
    bool local_changed = false;
    {
      sim::Region region(world, "label-prop");
      DistVec<VertexId> f_rest(grid, n);
      std::uint64_t rest = 0;
      for (const VertexId g : f.owned())
        if (!visited.has(g)) {
          f_rest.set(g, f.at(g));
          ++rest;
        }
      rec.active_vertices = world.allreduce(
          rest, [](std::uint64_t a, std::uint64_t b) { return a + b; });
      const DistVec<VertexId> fn = dist::mxv_select2nd_min(
          grid, A, f_rest, MaskSpec{&visited, true}, tuning);
      for (const VertexId g : fn.owned()) {
        if (!fn.has(g) || visited.has(g)) continue;
        if (fn.at(g) < f.at(g)) {
          f.set(g, fn.at(g));
          local_changed = true;
        }
      }
      world.charge_compute(static_cast<double>(f.local_size()));
    }
    out.trace.push_back(rec);
    out.iterations = iter;
    if (!dist::global_any(grid, local_changed)) break;
    LACC_CHECK_MSG(iter < max_iterations,
                   "distributed Multistep did not converge in "
                       << max_iterations << " label-propagation rounds");
  }

  const double modeled = world.state().sim_time - sim_start;
  out.parent = dist::to_global(grid, f, kNoVertex);
  for (const VertexId p : out.parent) LACC_CHECK(p != kNoVertex);
  return modeled;
}

core::DistRunResult multistep_dist(const graph::EdgeList& el, int nranks,
                                   const sim::MachineModel& machine,
                                   int max_iterations) {
  core::DistRunResult result;
  std::vector<double> modeled(static_cast<std::size_t>(nranks), 0);
  std::mutex out_mutex;
  result.spmd = sim::run_spmd(nranks, machine, [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc A(grid, el);
    core::CcResult cc;
    const double seconds = multistep_dist_body(grid, A, cc, max_iterations);
    modeled[static_cast<std::size_t>(world.rank())] = seconds;
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(out_mutex);
      result.cc = std::move(cc);
    }
  });
  result.modeled_seconds = *std::max_element(modeled.begin(), modeled.end());
  return result;
}

}  // namespace lacc::baselines
