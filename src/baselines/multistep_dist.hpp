// Distributed Multistep method (Slota et al.), the paper's other cited
// distributed-memory competitor: a parallel BFS peels the component of a
// seed vertex (usually the giant one), then label propagation finishes the
// remainder.  Runs on the same 2D substrate as LACC; like ParConnect it has
// no converged-component tracking, and its label-propagation phase needs
// diameter-many rounds on the remainder.
#pragma once

#include "core/lacc_dist.hpp"
#include "core/options.hpp"
#include "graph/edge_list.hpp"

namespace lacc::baselines {

/// Run distributed Multistep on `nranks` virtual ranks.
core::DistRunResult multistep_dist(const graph::EdgeList& el, int nranks,
                                   const sim::MachineModel& machine,
                                   int max_iterations = 100000);

/// Collective in-SPMD body.  Returns modeled seconds.
double multistep_dist_body(dist::ProcGrid& grid, const dist::DistCsc& A,
                           core::CcResult& out, int max_iterations = 100000);

}  // namespace lacc::baselines
