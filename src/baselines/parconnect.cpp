#include "baselines/parconnect.hpp"

#include <algorithm>
#include <mutex>

#include "dist/dist_vec.hpp"
#include "dist/ops.hpp"
#include "support/error.hpp"

namespace lacc::baselines {

using dist::CommTuning;
using dist::DistCsc;
using dist::DistVec;
using dist::MaskSpec;
using dist::ProcGrid;
using dist::Tuple;

namespace {

/// ParConnect's communication profile: dense vectors, pairwise exchange,
/// no hotspot mitigation.
CommTuning parconnect_tuning() {
  CommTuning tuning;
  tuning.alltoall = sim::AllToAllAlgo::kPairwise;
  tuning.hotspot_broadcast = false;
  tuning.force_dense = true;
  tuning.request_dedup = false;  // tuples ship every endpoint request
  return tuning;
}

}  // namespace

double parconnect_dist_body(ProcGrid& grid, const DistCsc& A,
                            core::CcResult& out, int max_iterations) {
  auto& world = grid.world();
  const VertexId n = A.n();
  const CommTuning tuning = parconnect_tuning();
  const double sim_start = world.state().sim_time;
  out.trace.clear();
  out.iterations = 0;
  if (n == 0) {
    out.parent.clear();
    return 0;
  }

  DistVec<VertexId> f(grid, n);
  for (VertexId g = f.begin(); g < f.end(); ++g) f.set(g, g);

  // ---- Phase 1: BFS peel of the seed component (vertex 0; ParConnect
  // samples a vertex hoping to hit the giant component).  The frontier is
  // the one place ParConnect does exploit sparsity.
  {
    sim::Region region(world, "bfs-peel");
    CommTuning bfs_tuning = tuning;
    bfs_tuning.force_dense = false;
    DistVec<std::uint8_t> visited(grid, n);
    DistVec<VertexId> frontier(grid, n);
    if (frontier.owns(0)) {
      frontier.set(0, 0);
      visited.set(0, 1);
    }
    while (dist::global_nvals(grid, frontier) > 0) {
      // Reach unvisited neighbors; label them with the seed.
      const DistVec<VertexId> next = dist::mxv_select2nd_min(
          grid, A, frontier, MaskSpec{&visited, true}, bfs_tuning);
      frontier = DistVec<VertexId>(grid, n);
      for (VertexId g = next.begin(); g < next.end(); ++g) {
        if (!next.has(g)) continue;
        visited.set(g, 1);
        f.set(g, 0);
        frontier.set(g, 0);
      }
      world.charge_compute(static_cast<double>(next.local_size()));
    }
  }

  // ---- Phase 2: tuple-based Shiloach–Vishkin, as in the real ParConnect:
  // every iteration relabels the endpoints of every edge tuple (an O(m)
  // exchange with no deduplication), hooks, and pointer-jumps.  This is the
  // structural difference Section VI leans on — the working set never
  // shrinks, so communication volume stays proportional to m throughout.
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(A.local_nnz());
  for (std::size_t ci = 0; ci < A.col_ids().size(); ++ci)
    for (const VertexId r : A.col_rows(ci))
      edges.emplace_back(A.col_ids()[ci], r);

  for (int iter = 1; iter <= max_iterations; ++iter) {
    core::IterationRecord rec;
    rec.iteration = iter;
    rec.active_vertices = n;  // ParConnect never shrinks the working set
    bool changed = false;
    {
      sim::Region region(world, "sv-iteration");
      // Relabel both endpoints of every local edge tuple.
      std::vector<VertexId> requests;
      requests.reserve(2 * edges.size());
      for (const auto& [u, v] : edges) {
        requests.push_back(u);
        requests.push_back(v);
      }
      const auto labels = dist::gather_values(grid, f, requests, tuning);
      // Hook: propose the smaller endpoint label to the larger one's
      // parent; the owner applies it only at roots (SV's hook guard).
      std::vector<Tuple<VertexId>> pairs;
      for (std::size_t k = 0; k < edges.size(); ++k) {
        const VertexId fu = labels[2 * k].first;
        const VertexId fv = labels[2 * k + 1].first;
        if (fv < fu) pairs.push_back({fu, fv});
      }
      world.charge_compute(static_cast<double>(edges.size()));
      const std::uint64_t hooks = dist::scatter_assign_min(
          grid, f, std::move(pairs), tuning, /*only_if_root=*/true);
      rec.cond_hooks = hooks;
      // Pointer jumping.
      const DistVec<VertexId> gf = dist::gather_at(grid, f, f, tuning);
      bool local_changed = hooks > 0;
      for (VertexId g = f.begin(); g < f.end(); ++g) {
        if (!gf.has(g)) continue;
        if (gf.at(g) != f.at(g)) {
          f.set(g, gf.at(g));
          local_changed = true;
        }
      }
      world.charge_compute(static_cast<double>(f.local_size()));
      changed = dist::global_any(grid, local_changed);
    }
    out.trace.push_back(rec);
    out.iterations = iter;
    if (!changed) break;
    LACC_CHECK_MSG(iter < max_iterations,
                   "ParConnect-like SV did not converge in " << max_iterations
                                                             << " iterations");
  }

  const double modeled = world.state().sim_time - sim_start;
  out.parent = dist::to_global(grid, f, kNoVertex);
  for (const VertexId p : out.parent) LACC_CHECK(p != kNoVertex);
  return modeled;
}

core::DistRunResult parconnect_dist(const graph::EdgeList& el, int nranks,
                                    const sim::MachineModel& machine,
                                    int max_iterations) {
  core::DistRunResult result;
  std::vector<double> modeled(static_cast<std::size_t>(nranks), 0);
  std::mutex out_mutex;
  result.spmd = sim::run_spmd(nranks, machine, [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc A(grid, el);
    core::CcResult cc;
    const double seconds =
        parconnect_dist_body(grid, A, cc, max_iterations);
    modeled[static_cast<std::size_t>(world.rank())] = seconds;
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(out_mutex);
      result.cc = std::move(cc);
    }
  });
  result.modeled_seconds = *std::max_element(modeled.begin(), modeled.end());
  return result;
}

}  // namespace lacc::baselines
