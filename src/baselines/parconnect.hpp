// ParConnect-like distributed baseline (Jain et al.), the state of the art
// the paper compares against.
//
// ParConnect combines a parallel BFS that peels the (usually giant)
// component of a seed vertex with iterative Shiloach–Vishkin on the rest.
// Crucially for the comparison, it has none of LACC's refinements: vectors
// stay dense in every SV iteration, all-to-alls use the pairwise-exchange
// algorithm (alpha*(p-1) latency), and there is no hotspot mitigation —
// exactly the properties Section VI identifies to explain the gap.
#pragma once

#include "core/lacc_dist.hpp"
#include "core/options.hpp"
#include "graph/edge_list.hpp"
#include "sim/runtime.hpp"

namespace lacc::baselines {

/// Run the ParConnect-like algorithm on `nranks` virtual ranks.
core::DistRunResult parconnect_dist(const graph::EdgeList& el, int nranks,
                                    const sim::MachineModel& machine,
                                    int max_iterations = 10000);

/// Collective in-SPMD body (see lacc_dist_body).  Returns modeled seconds.
double parconnect_dist_body(dist::ProcGrid& grid, const dist::DistCsc& A,
                            core::CcResult& out, int max_iterations = 10000);

}  // namespace lacc::baselines
