#include "baselines/serial_cc.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/error.hpp"

namespace lacc::baselines {

core::CcResult bfs_cc(const graph::Csr& g) {
  const VertexId n = g.num_vertices();
  core::CcResult result;
  result.iterations = 1;
  result.parent.assign(n, kNoVertex);
  std::vector<VertexId> frontier;
  for (VertexId s = 0; s < n; ++s) {
    if (result.parent[s] != kNoVertex) continue;
    result.parent[s] = s;
    frontier.assign(1, s);
    while (!frontier.empty()) {
      std::vector<VertexId> next;
      for (const VertexId u : frontier)
        for (const VertexId v : g.neighbors(u))
          if (result.parent[v] == kNoVertex) {
            result.parent[v] = s;
            next.push_back(v);
          }
      frontier.swap(next);
    }
  }
  return result;
}

core::CcResult shiloach_vishkin(const graph::Csr& g, int max_iterations) {
  const VertexId n = g.num_vertices();
  core::CcResult result;
  result.parent.resize(n);
  auto& f = result.parent;
  std::iota(f.begin(), f.end(), VertexId{0});

  for (int iter = 1; iter <= max_iterations; ++iter) {
    core::IterationRecord rec;
    rec.iteration = iter;
    rec.active_vertices = n;
    bool changed = false;

    // Hook: for every edge, hook the larger root onto the smaller parent
    // (min-reduced proposals emulate the CRCW arbitrary write).
    std::vector<VertexId> proposal(n, kNoVertex);
    for (VertexId u = 0; u < n; ++u)
      for (const VertexId v : g.neighbors(u))
        if (f[v] < f[u] && f[f[u]] == f[u] && f[v] < proposal[f[u]])
          proposal[f[u]] = f[v];
    for (VertexId r = 0; r < n; ++r)
      if (proposal[r] != kNoVertex && proposal[r] < f[r]) {
        f[r] = proposal[r];
        changed = true;
        ++rec.cond_hooks;
      }

    // Aggressive hook for stagnant roots (SV's second hooking phase).
    std::fill(proposal.begin(), proposal.end(), kNoVertex);
    for (VertexId u = 0; u < n; ++u)
      for (const VertexId v : g.neighbors(u))
        if (f[v] != f[u] && f[f[u]] == f[u] && f[v] < proposal[f[u]])
          proposal[f[u]] = f[v];
    for (VertexId r = 0; r < n; ++r)
      if (proposal[r] != kNoVertex && f[r] == r && proposal[r] != r) {
        f[r] = proposal[r];
        changed = true;
        ++rec.uncond_hooks;
      }

    // Shortcut (pointer jumping).
    for (VertexId v = 0; v < n; ++v) {
      const VertexId gf = f[f[v]];
      if (gf != f[v]) {
        f[v] = gf;
        changed = true;
      }
    }

    result.trace.push_back(rec);
    result.iterations = iter;
    if (!changed) break;
    LACC_CHECK_MSG(iter < max_iterations, "SV did not converge");
  }
  return result;
}

core::CcResult label_propagation(const graph::Csr& g, int max_iterations) {
  const VertexId n = g.num_vertices();
  core::CcResult result;
  result.parent.resize(n);
  auto& label = result.parent;
  std::iota(label.begin(), label.end(), VertexId{0});

  bool changed = true;
  int iter = 0;
  while (changed) {
    LACC_CHECK_MSG(iter < max_iterations, "label propagation did not converge");
    ++iter;
    changed = false;
    // Jacobi-style sweep: read the previous labels, write fresh ones, so
    // the result is deterministic under OpenMP.
    std::vector<VertexId> next(label);
#pragma omp parallel for schedule(dynamic, 1024)
    for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
      const auto v = static_cast<VertexId>(vi);
      VertexId best = label[v];
      for (const VertexId u : g.neighbors(v)) best = std::min(best, label[u]);
      if (best < next[v]) next[v] = best;
    }
    for (VertexId v = 0; v < n; ++v)
      if (next[v] != label[v]) {
        changed = true;
        break;
      }
    label.swap(next);
  }
  result.iterations = iter;
  return result;
}

core::CcResult multistep(const graph::Csr& g) {
  const VertexId n = g.num_vertices();
  core::CcResult result;
  result.parent.assign(n, kNoVertex);
  if (n == 0) return result;

  // Step 1: BFS from the maximum-degree vertex peels the giant component.
  VertexId seed = 0;
  for (VertexId v = 0; v < n; ++v)
    if (g.degree(v) > g.degree(seed)) seed = v;
  std::vector<VertexId> frontier{seed};
  result.parent[seed] = seed;
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (const VertexId u : frontier)
      for (const VertexId v : g.neighbors(u))
        if (result.parent[v] == kNoVertex) {
          result.parent[v] = seed;
          next.push_back(v);
        }
    frontier.swap(next);
  }

  // Step 2: label propagation on the remainder.
  std::vector<VertexId> label(n);
  std::iota(label.begin(), label.end(), VertexId{0});
  bool changed = true;
  int iter = 1;
  while (changed) {
    changed = false;
    ++iter;
    for (VertexId v = 0; v < n; ++v) {
      if (result.parent[v] != kNoVertex) continue;
      VertexId best = label[v];
      for (const VertexId u : g.neighbors(v))
        if (result.parent[u] == kNoVertex) best = std::min(best, label[u]);
      if (best < label[v]) {
        label[v] = best;
        changed = true;
      }
    }
  }
  for (VertexId v = 0; v < n; ++v)
    if (result.parent[v] == kNoVertex) result.parent[v] = label[v];
  result.iterations = iter;
  return result;
}

}  // namespace lacc::baselines
