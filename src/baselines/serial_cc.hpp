// Additional serial / shared-memory connected-components baselines.
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"

namespace lacc::baselines {

/// Breadth-first search sweep: textbook O(n + m) labeling.
core::CcResult bfs_cc(const graph::Csr& g);

/// Shiloach–Vishkin (1982): the algorithm AS simplifies.  Keeps the
/// previous iteration's forest to detect quiescence instead of star checks.
core::CcResult shiloach_vishkin(const graph::Csr& g,
                                int max_iterations = 10000);

/// Label propagation with OpenMP: iterate "take the min label among
/// neighbors" until a fixed point.  The shared-memory technique used by the
/// original MCL software and one ingredient of Slota et al.'s Multistep.
core::CcResult label_propagation(const graph::Csr& g,
                                 int max_iterations = 100000);

/// Multistep method (Slota et al.): BFS from a heuristically-chosen seed
/// peels the (usually giant) first component, then label propagation
/// finishes the rest.
core::CcResult multistep(const graph::Csr& g);

}  // namespace lacc::baselines
