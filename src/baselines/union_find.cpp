#include "baselines/union_find.hpp"

#include <numeric>

#include "support/error.hpp"

namespace lacc::baselines {

UnionFind::UnionFind(VertexId n) : parent_(n), rank_(n, 0), sets_(n) {
  std::iota(parent_.begin(), parent_.end(), VertexId{0});
}

VertexId UnionFind::find(VertexId v) {
  LACC_DCHECK(v < parent_.size());
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path splitting
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(VertexId a, VertexId b) {
  VertexId ra = find(a), rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --sets_;
  return true;
}

namespace {

core::CcResult finalize(UnionFind& uf, VertexId n) {
  core::CcResult result;
  result.iterations = 1;
  result.parent.resize(n);
  for (VertexId v = 0; v < n; ++v) result.parent[v] = uf.find(v);
  return result;
}

}  // namespace

core::CcResult union_find_cc(const graph::EdgeList& el) {
  UnionFind uf(el.n);
  for (const auto& e : el.edges) uf.unite(e.u, e.v);
  return finalize(uf, el.n);
}

core::CcResult union_find_cc(const graph::Csr& g) {
  UnionFind uf(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (const VertexId v : g.neighbors(u))
      if (u < v) uf.unite(u, v);
  return finalize(uf, g.num_vertices());
}

}  // namespace lacc::baselines
