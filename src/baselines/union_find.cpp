#include "baselines/union_find.hpp"

namespace lacc::baselines {
namespace {

core::CcResult finalize(UnionFind& uf, VertexId n) {
  core::CcResult result;
  result.iterations = 1;
  result.parent.resize(n);
  for (VertexId v = 0; v < n; ++v) result.parent[v] = uf.find(v);
  return result;
}

}  // namespace

core::CcResult union_find_cc(const graph::EdgeList& el) {
  UnionFind uf(el.n);
  for (const auto& e : el.edges) uf.unite(e.u, e.v);
  return finalize(uf, el.n);
}

core::CcResult union_find_cc(const graph::Csr& g) {
  UnionFind uf(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (const VertexId v : g.neighbors(u))
      if (u < v) uf.unite(u, v);
  return finalize(uf, g.num_vertices());
}

}  // namespace lacc::baselines
