// Disjoint-set union — the optimal serial connected-components algorithm
// ("optimal serial algorithms ... have been known for half a century").
// Used as the ground truth every other implementation is validated against.
#pragma once

#include <vector>

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "support/types.hpp"

namespace lacc::baselines {

/// Union-find structure with union by rank and path splitting
/// (inverse-Ackermann amortized operations).
class UnionFind {
 public:
  explicit UnionFind(VertexId n);

  VertexId find(VertexId v);
  /// Returns true if the union merged two distinct sets.
  bool unite(VertexId a, VertexId b);
  VertexId num_sets() const { return sets_; }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint8_t> rank_;
  VertexId sets_;
};

/// Connected components by union-find over the edge list.
core::CcResult union_find_cc(const graph::EdgeList& el);

/// Connected components by union-find over a CSR graph.
core::CcResult union_find_cc(const graph::Csr& g);

}  // namespace lacc::baselines
