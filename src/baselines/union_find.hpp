// Disjoint-set union — the optimal serial connected-components algorithm
// ("optimal serial algorithms ... have been known for half a century").
// Used as the ground truth every other implementation is validated against.
// The data structure itself lives in support/disjoint_set.hpp so the
// Afforest-style pre-pass and the stream tests share one implementation.
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "support/disjoint_set.hpp"
#include "support/types.hpp"

namespace lacc::baselines {

/// Union-find with union by rank and path halving (inverse-Ackermann
/// amortized operations) — alias of the shared header-only implementation.
using UnionFind = support::DisjointSet;

/// Connected components by union-find over the edge list.
core::CcResult union_find_cc(const graph::EdgeList& el);

/// Connected components by union-find over a CSR graph.
core::CcResult union_find_cc(const graph::Csr& g);

}  // namespace lacc::baselines
