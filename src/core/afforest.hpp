// Afforest/GAP-style lock-free union-find primitives (Sutton et al.),
// extracted from core/lacc_omp.cpp so one source of truth serves both the
// OpenMP solver and the deterministic model checker.
//
// The functions are templates over the atomic type, so they accept both
// std::atomic<VertexId> label arrays (production, via lacc_omp.cpp's
// OpenMP loops) and sched::atomic<VertexId> arrays (the model checker,
// which explores every schedule of concurrent link() calls and checks the
// PR-6 claim directly: tree shapes race, but after compress + relabel_min
// the final labels equal a sequential union-find's canonical labels on
// every explored schedule — the races are benign and unobservable.  See
// tests/sched/sched_unionfind_test.cpp and docs/ARCHITECTURE.md).
//
// Every atomic op is deliberately relaxed: the algorithm's correctness
// argument is value-based (labels only decrease; a union only merges
// endpoints of a real edge), not publication-based, so no acquire/release
// edges are required — exactly the property the checker verifies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace lacc::core::afforest {

/// Atomically lower `slot` to min(slot, value).
template <typename AtomicT>
void atomic_min(AtomicT& slot, VertexId value) {
  VertexId current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

/// Afforest/GAP lock-free Link: hook the larger of the two current component
/// ids onto the smaller with a CAS, chasing updated ids until they agree.
/// Safe under concurrent calls; tree shapes race, component membership does
/// not (a union only ever merges endpoints of a real edge).
template <typename AtomicVec>
void link(AtomicVec& comp, VertexId u, VertexId v) {
  VertexId p1 = comp[u].load(std::memory_order_relaxed);
  VertexId p2 = comp[v].load(std::memory_order_relaxed);
  while (p1 != p2) {
    const VertexId high = std::max(p1, p2);
    const VertexId low = std::min(p1, p2);
    VertexId p_high = high;
    if (comp[high].compare_exchange_strong(p_high, low,
                                           std::memory_order_relaxed) ||
        p_high == low)
      break;
    p1 = comp[comp[high].load(std::memory_order_relaxed)].load(
        std::memory_order_relaxed);
    p2 = comp[low].load(std::memory_order_relaxed);
  }
}

/// CAS-free pointer jumping for one vertex: comp[v] <- comp[comp[v]] until
/// flat.  Values only decrease and roots never move (no links run
/// concurrently), so the chain terminates.
template <typename AtomicVec>
void compress_one(AtomicVec& comp, VertexId v) {
  while (comp[v].load(std::memory_order_relaxed) !=
         comp[comp[v].load(std::memory_order_relaxed)].load(
             std::memory_order_relaxed)) {
    comp[v].store(comp[comp[v].load(std::memory_order_relaxed)].load(
                      std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }
}

/// Sequential drivers over the per-vertex bodies, used by the model-check
/// and unit suites; core/lacc_omp.cpp runs the same bodies under its own
/// OpenMP parallel-for loops.
template <typename AtomicVec>
void compress_seq(AtomicVec& comp, std::int64_t ni) {
  for (std::int64_t vi = 0; vi < ni; ++vi)
    compress_one(comp, static_cast<VertexId>(vi));
}

/// Rewrite every flat label to its component's minimum vertex id.  The CAS
/// races make tree shapes (and therefore root identities) schedule-dependent;
/// component membership is not, so after this the labels are deterministic.
template <typename AtomicVec>
void relabel_min_seq(AtomicVec& comp, AtomicVec& low, std::int64_t ni) {
  for (std::int64_t vi = 0; vi < ni; ++vi)
    low[static_cast<VertexId>(vi)].store(kNoVertex, std::memory_order_relaxed);
  for (std::int64_t vi = 0; vi < ni; ++vi) {
    const auto v = static_cast<VertexId>(vi);
    atomic_min(low[comp[v].load(std::memory_order_relaxed)], v);
  }
  for (std::int64_t vi = 0; vi < ni; ++vi) {
    const auto v = static_cast<VertexId>(vi);
    comp[v].store(low[comp[v].load(std::memory_order_relaxed)].load(
                      std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }
}

}  // namespace lacc::core::afforest
