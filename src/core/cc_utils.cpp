#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/options.hpp"
#include "support/error.hpp"

namespace lacc::core {

namespace {

/// Flatten an arbitrary rooted forest: every entry becomes its root.
std::vector<VertexId> flatten(const std::vector<VertexId>& parent) {
  const auto n = static_cast<VertexId>(parent.size());
  std::vector<VertexId> flat = parent;
  for (VertexId v = 0; v < n; ++v) {
    LACC_CHECK_MSG(parent[v] < n, "parent " << parent[v] << " out of range");
    VertexId r = flat[v];
    std::uint64_t hops = 0;
    while (flat[r] != r) {
      r = flat[r];
      LACC_CHECK_MSG(++hops <= n, "cycle in parent vector");
    }
    // Path compression keeps the pass linear overall.
    VertexId u = v;
    while (flat[u] != r) {
      const VertexId next = flat[u];
      flat[u] = r;
      u = next;
    }
  }
  return flat;
}

}  // namespace

std::vector<std::pair<std::string, double>> prepass_scalars(
    const PrepassStats& stats) {
  if (!stats.ran) return {};
  return {{"enabled", 1.0},
          {"rounds", static_cast<double>(stats.sample_rounds)},
          {"sampled_edges", static_cast<double>(stats.sampled_edges)},
          {"skip_edges", static_cast<double>(stats.skip_edges)},
          {"resolved_vertices", static_cast<double>(stats.resolved_vertices)},
          {"frequent_found", stats.frequent_found ? 1.0 : 0.0},
          {"modeled_seconds", stats.modeled_seconds}};
}

std::uint64_t count_components(const std::vector<VertexId>& parent) {
  const std::vector<VertexId> flat = flatten(parent);
  std::unordered_set<VertexId> roots;
  roots.reserve(flat.size() / 4 + 1);
  for (const VertexId p : flat) roots.insert(p);
  return roots.size();
}

std::vector<std::uint64_t> component_sizes(const std::vector<VertexId>& parent) {
  const std::vector<VertexId> flat = flatten(parent);
  std::unordered_map<VertexId, std::uint64_t> size_of;
  size_of.reserve(flat.size() / 4 + 1);
  for (const VertexId r : flat) ++size_of[r];
  std::vector<std::uint64_t> sizes;
  sizes.reserve(size_of.size());
  for (const auto& [root, size] : size_of) sizes.push_back(size);
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

std::vector<std::pair<VertexId, std::uint64_t>> component_sizes_by_label(
    const std::vector<VertexId>& parent) {
  return top_k_components(parent, parent.size());
}

std::vector<std::pair<VertexId, std::uint64_t>> top_k_components(
    const std::vector<VertexId>& parent, std::size_t k) {
  const std::vector<VertexId> canon = normalize_labels(parent);
  std::unordered_map<VertexId, std::uint64_t> size_of;
  size_of.reserve(canon.size() / 4 + 1);
  for (const VertexId label : canon) ++size_of[label];
  std::vector<std::pair<VertexId, std::uint64_t>> out(size_of.begin(),
                                                      size_of.end());
  const auto bigger_first = [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  };
  k = std::min(k, out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(k),
                    out.end(), bigger_first);
  out.resize(k);
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> component_size_histogram(
    const std::vector<VertexId>& parent) {
  std::map<std::uint64_t, std::uint64_t> buckets;
  for (const std::uint64_t size : component_sizes(parent)) {
    std::uint64_t bucket = 1;
    while (bucket * 2 <= size) bucket *= 2;
    ++buckets[bucket];
  }
  return {buckets.begin(), buckets.end()};
}

std::vector<VertexId> normalize_labels(const std::vector<VertexId>& parent) {
  // Each root's canonical label is the minimum vertex id mapping to it.
  const std::vector<VertexId> flat = flatten(parent);
  const auto n = static_cast<VertexId>(flat.size());
  std::vector<VertexId> canonical(n, kNoVertex);
  for (VertexId v = 0; v < n; ++v)
    canonical[flat[v]] = std::min(canonical[flat[v]], v);
  std::vector<VertexId> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = canonical[flat[v]];
  return out;
}

bool same_partition(const std::vector<VertexId>& a,
                    const std::vector<VertexId>& b) {
  if (a.size() != b.size()) return false;
  return normalize_labels(a) == normalize_labels(b);
}

}  // namespace lacc::core
