#include "core/fastsv.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "dist/dist_vec.hpp"
#include "dist/ops.hpp"
#include "support/error.hpp"

namespace lacc::core {

using dist::CommTuning;
using dist::DistCsc;
using dist::DistVec;
using dist::MaskSpec;
using dist::ProcGrid;
using dist::Tuple;

CcResult fastsv(const graph::Csr& g, int max_iterations) {
  const VertexId n = g.num_vertices();
  CcResult result;
  result.parent.resize(n);
  auto& f = result.parent;
  std::iota(f.begin(), f.end(), VertexId{0});

  std::vector<VertexId> gf(n), fn(n);
  for (int iter = 1; iter <= max_iterations; ++iter) {
    IterationRecord rec;
    rec.iteration = iter;
    rec.active_vertices = n;  // FastSV has no converged tracking
    bool changed = false;

    for (VertexId v = 0; v < n; ++v) gf[v] = f[f[v]];
    // fn[u] = min grandparent over N(u); min is commutative and monotone,
    // so the three hooking updates below may be applied in any order.
    for (VertexId u = 0; u < n; ++u) {
      VertexId best = kNoVertex;
      for (const VertexId v : g.neighbors(u)) best = std::min(best, gf[v]);
      fn[u] = best;
    }
    auto lower = [&](VertexId target, VertexId value) {
      if (value < f[target]) {
        f[target] = value;
        changed = true;
      }
    };
    for (VertexId u = 0; u < n; ++u) {
      if (fn[u] != kNoVertex) {
        lower(f[u], fn[u]);  // stochastic hooking: f[f[u]] <- min gf(N(u))
        lower(u, fn[u]);     // aggressive hooking: f[u]    <- min gf(N(u))
        ++rec.cond_hooks;
      }
      lower(u, gf[u]);  // shortcutting
    }

    result.trace.push_back(rec);
    result.iterations = iter;
    if (!changed) break;
    LACC_CHECK_MSG(iter < max_iterations, "FastSV did not converge");
  }
  return result;
}

double fastsv_dist_body(ProcGrid& grid, const DistCsc& A, CcResult& out,
                        int max_iterations) {
  auto& world = grid.world();
  const VertexId n = A.n();
  const CommTuning tuning{};  // LACC's communication machinery, defaults on
  const double sim_start = world.state().sim_time;
  out.trace.clear();
  out.iterations = 0;
  if (n == 0) {
    out.parent.clear();
    return 0;
  }

  DistVec<VertexId> f(grid, n);
  for (VertexId g = f.begin(); g < f.end(); ++g) f.set(g, g);

  for (int iter = 1; iter <= max_iterations; ++iter) {
    IterationRecord rec;
    rec.iteration = iter;
    rec.active_vertices = n;
    bool local_changed = false;
    std::uint64_t remote_changed = 0;
    {
      sim::Region region(world, "fastsv-iteration");
      // Grandparents of every vertex.
      const DistVec<VertexId> gf = dist::gather_at(grid, f, f, tuning);
      // fn[u] = min grandparent over N(u) (dense SpMV every iteration —
      // FastSV trades converged-tracking for a leaner loop).
      const DistVec<VertexId> fn =
          dist::mxv_select2nd_min(grid, A, gf, MaskSpec{}, tuning);
      // Stochastic hooking: f[f[u]] <- min(f[f[u]], fn[u]), remote.
      std::vector<Tuple<VertexId>> pairs;
      for (VertexId g = fn.begin(); g < fn.end(); ++g)
        if (fn.has(g)) pairs.push_back({f.at(g), fn.at(g)});
      rec.cond_hooks = pairs.size();
      remote_changed =
          dist::scatter_accumulate_min(grid, f, std::move(pairs), tuning);
      // Aggressive hooking + shortcutting, both local.
      for (VertexId g = f.begin(); g < f.end(); ++g) {
        VertexId best = f.at(g);
        if (fn.has(g)) best = std::min(best, fn.at(g));
        if (gf.has(g)) best = std::min(best, gf.at(g));
        if (best < f.at(g)) {
          f.set(g, best);
          local_changed = true;
        }
      }
      world.charge_compute(static_cast<double>(f.local_size()) * 2);
    }
    out.trace.push_back(rec);
    out.iterations = iter;
    const bool changed =
        remote_changed > 0 || dist::global_any(grid, local_changed);
    if (!changed) break;
    LACC_CHECK_MSG(iter < max_iterations,
                   "distributed FastSV did not converge in " << max_iterations
                                                             << " iterations");
  }

  const double modeled = world.state().sim_time - sim_start;
  out.parent = dist::to_global(grid, f, kNoVertex);
  for (const VertexId p : out.parent) LACC_CHECK(p != kNoVertex);
  return modeled;
}

DistRunResult fastsv_dist(const graph::EdgeList& el, int nranks,
                          const sim::MachineModel& machine,
                          int max_iterations) {
  DistRunResult result;
  std::vector<double> modeled(static_cast<std::size_t>(nranks), 0);
  std::mutex out_mutex;
  result.spmd = sim::run_spmd(nranks, machine, [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc A(grid, el);
    CcResult cc;
    const double seconds = fastsv_dist_body(grid, A, cc, max_iterations);
    modeled[static_cast<std::size_t>(world.rank())] = seconds;
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(out_mutex);
      result.cc = std::move(cc);
    }
  });
  result.modeled_seconds = *std::max_element(modeled.begin(), modeled.end());
  return result;
}

}  // namespace lacc::core
