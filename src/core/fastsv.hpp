// FastSV — the successor algorithm (Zhang, Azad & Buluç, 2020), implemented
// here as the paper's "future work" extension.
//
// FastSV simplifies the AS/LACC loop: no star detection at all.  Each
// iteration performs three monotone min-updates against the grandparent
// vector gf = f[f]:
//   (1) stochastic hooking:  f[f[u]] <- min(f[f[u]], min gf over N(u))
//   (2) aggressive hooking:  f[u]    <- min(f[u],    min gf over N(u))
//   (3) shortcutting:        f[u]    <- min(f[u],    gf[u])
// and terminates when gf reaches a fixed point.  All updates are monotone
// decreasing, so no hooking guard is needed; the label of a component
// converges to its minimum vertex id.
//
// Trade-off vs LACC: fewer primitives per iteration (one mxv, one
// grandparent extract, one remote assign) but no converged-component
// tracking, so every iteration touches every vertex.
#pragma once

#include "core/lacc_dist.hpp"
#include "core/options.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace lacc::core {

/// Serial FastSV over dense arrays.
CcResult fastsv(const graph::Csr& g, int max_iterations = 10000);

/// Distributed FastSV on `nranks` virtual ranks.
DistRunResult fastsv_dist(const graph::EdgeList& el, int nranks,
                          const sim::MachineModel& machine,
                          int max_iterations = 10000);

/// Collective in-SPMD body (see lacc_dist_body).  Returns modeled seconds.
double fastsv_dist_body(dist::ProcGrid& grid, const dist::DistCsc& A,
                        CcResult& out, int max_iterations = 10000);

}  // namespace lacc::core
