#include "core/lacc_dist.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dist/dist_vec.hpp"
#include "dist/ops.hpp"
#include "support/checking.hpp"
#include "support/disjoint_set.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lacc::core {

using dist::CommTuning;
using dist::DistCsc;
using dist::DistVec;
using dist::MaskSpec;
using dist::ProcGrid;
using dist::Tuple;

namespace {

CommTuning tuning_from(const LaccOptions& options) {
  CommTuning tuning;
  tuning.alltoall = options.hypercube_alltoall
                        ? sim::AllToAllAlgo::kSparseHypercube
                        : sim::AllToAllAlgo::kPairwise;
  tuning.hotspot_broadcast = options.hotspot_broadcast;
  tuning.hotspot_threshold = options.hotspot_threshold;
  tuning.force_dense = !options.use_sparse_vectors;
  return tuning;
}

// Afforest-style sampling pre-pass (Sutton et al.).  Each rank contracts a
// sampled prefix of its local edges with a sequential union-find, guesses
// its local giant tree from ~1024 sampled vertices, finishes local linking
// only for columns outside that tree, then seeds f with the per-tree
// minimum labels (a commutative min-reduce, so the result is independent of
// union order) and flattens f by pointer jumping.  Everything before the
// seed is rank-local — zero collectives — which is what makes the pre-pass
// cheaper than the main-loop iterations it removes.  Two invariants keep
// the main loop sound afterwards: proposals are per-tree minima, so f stays
// an acyclic same-component forest; and the forest is fully FLAT on exit —
// the iteration-1 convergence detection treats f[v] as a root id, and a
// chain f[x] = m, f[m] = r would let the m-labeled group retire with a
// non-root label.  Every collective here is called uniformly by all ranks
// (see tools/lint_spmd.py).
void run_sampling_prepass(ProcGrid& grid, const DistCsc& A,
                          const LaccOptions& options, const CommTuning& tuning,
                          DistVec<VertexId>& f, PrepassStats& stats) {
  auto& world = grid.world();
  sim::Region region(world, "prepass");
  const double start = world.state().sim_time;
  const VertexId n = A.n();
  const int rounds = std::max(0, options.sample_rounds);
  stats.ran = true;
  stats.sample_rounds = rounds;

  support::DisjointSet ds(n);
  std::vector<std::uint8_t> touched_flag(n, 0);
  std::vector<VertexId> touched;
  auto touch = [&](VertexId v) {
    if (!touched_flag[v]) {
      touched_flag[v] = 1;
      touched.push_back(v);
    }
  };

  // Sampling rounds: round r links every local column to its r-th row —
  // the DCSC equivalent of Afforest's "first neighbor_rounds neighbors".
  const auto& cols = A.col_ids();
  std::uint64_t sampled_local = 0;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      const auto rows = A.col_rows(ci);
      if (rows.size() <= static_cast<std::size_t>(r)) continue;
      ds.unite(cols[ci], rows[static_cast<std::size_t>(r)]);
      touch(cols[ci]);
      touch(rows[static_cast<std::size_t>(r)]);
      ++sampled_local;
    }
  }
  world.charge_compute(static_cast<double>(sampled_local) * 3);

  // SampleFrequentElement against the rank-local forest: every rank draws
  // the same ids from the same seeded generator, but the argmax tree is its
  // own — the local shadow of the global giant component.  A rank-local
  // guess costs nothing (the global-label variant needs a seeded f and two
  // gathers before the skip phase, which at alpha*log2(p) per collective
  // ate most of the pre-pass win) and only affects *quality*: a vertex
  // mis-attributed to the frequent tree was in it by definition of find().
  VertexId frequent_root = kNoVertex;
  if (options.frequent_skip && n > 0) {
    const std::uint64_t samples = std::min<std::uint64_t>(1024, n);
    Xoshiro256 rng(0xAFF05EED1ACCull);
    std::unordered_map<VertexId, std::uint64_t> counts;
    for (std::uint64_t s = 0; s < samples; ++s)
      ++counts[ds.find(rng.below(n))];
    std::uint64_t best = 0;
    for (const auto& [root, count] : counts)
      if (count > best || (count == best && root < frequent_root)) {
        best = count;
        frequent_root = root;
      }
    world.charge_compute(static_cast<double>(samples));
  }

  // Skip phase: finish linking every column not already in the frequent
  // local tree (all columns when there is none — full local contraction).
  // find(frequent_root) tracks the tree as skip-phase unions move its root.
  std::uint64_t skip_local = 0;
  for (std::size_t ci = 0; ci < cols.size(); ++ci) {
    if (frequent_root != kNoVertex &&
        ds.find(cols[ci]) == ds.find(frequent_root))
      continue;
    const auto rows = A.col_rows(ci);
    for (std::size_t k = std::min<std::size_t>(rounds, rows.size());
         k < rows.size(); ++k) {
      ds.unite(cols[ci], rows[k]);
      touch(rows[k]);
      ++skip_local;
    }
    touch(cols[ci]);
  }
  world.charge_compute(static_cast<double>(cols.size()) +
                       static_cast<double>(skip_local) * 3);

  // Seed f[v] with the minimum vertex of v's local tree (scatter_assign_min
  // reduces duplicate targets with min, so proposals from several ranks
  // land on the smallest), then flatten to a *global fixpoint* by pointer
  // jumping.  The loop shape is identical on every rank — one unconditional
  // round, then continue while the global OR says any f moved.  Exit
  // flatness is load-bearing (see the function comment).
  {
    std::vector<VertexId> min_of_root(n, kNoVertex);
    for (const VertexId v : touched) {
      VertexId& m = min_of_root[ds.find(v)];
      m = std::min(m, v);
    }
    std::vector<Tuple<VertexId>> pairs;
    for (const VertexId v : touched) {
      const VertexId m = min_of_root[ds.find(v)];
      if (m < v) pairs.push_back({v, m});
    }
    world.charge_compute(static_cast<double>(touched.size()) * 2);
    dist::scatter_assign_min(grid, f, std::move(pairs), tuning);
  }
  auto jump_once = [&]() {
    std::vector<VertexId> jumpers;
    std::vector<VertexId> requests;
    for (const VertexId g : f.owned()) {
      const VertexId p = f.at(g);
      if (p != g) {
        jumpers.push_back(g);
        requests.push_back(p);
      }
    }
    const auto gp = dist::gather_values(grid, f, requests, tuning);
    bool local_changed = false;
    for (std::size_t k = 0; k < jumpers.size(); ++k) {
      if (!gp[k].second) continue;
      if (gp[k].first != f.at(jumpers[k])) {
        f.set(jumpers[k], gp[k].first);
        local_changed = true;
      }
    }
    world.charge_compute(static_cast<double>(requests.size()));
    return local_changed;
  };
  bool changed = true;
  while (changed) changed = dist::global_any(grid, jump_once());

  // One batched reduction for all the attribution counters: lanes 0-3 sum,
  // lane 4 takes the smallest frequent root any rank found.
  std::uint64_t resolved_local = 0;
  for (const VertexId g : f.owned())
    if (f.at(g) != g) ++resolved_local;
  using Stats = std::array<std::uint64_t, 5>;
  const Stats local{sampled_local, skip_local, resolved_local,
                    frequent_root == kNoVertex ? 0ull : 1ull,
                    frequent_root == kNoVertex
                        ? ~0ull
                        : static_cast<std::uint64_t>(frequent_root)};
  const Stats total = world.allreduce(local, [](Stats a, const Stats& b) {
    for (int k = 0; k < 4; ++k) a[k] += b[k];
    a[4] = std::min(a[4], b[4]);
    return a;
  });
  stats.sampled_edges = total[0];
  stats.skip_edges = total[1];
  stats.resolved_vertices = total[2];
  stats.frequent_found = total[3] != 0;
  stats.frequent_label =
      total[4] == ~0ull ? kNoVertex : static_cast<VertexId>(total[4]);
  stats.modeled_seconds = world.state().sim_time - start;
}

}  // namespace

double lacc_dist_body(ProcGrid& grid, const DistCsc& A,
                      const LaccOptions& options, CcResult& out) {
  auto& world = grid.world();
  const VertexId n = A.n();
  const CommTuning tuning = tuning_from(options);
  const double sim_start = world.state().sim_time;
  // The paper's future-work cyclic layout spreads hooked-parent hotspots
  // across ranks; mxv inputs/outputs are realigned around it (see below).
  const dist::Layout layout = options.cyclic_vectors
                                  ? dist::Layout::kCyclic
                                  : dist::Layout::kBlockAligned;

  // f: every vertex its own parent (dense).  star: all true.
  DistVec<VertexId> f(grid, n, layout);
  DistVec<std::uint8_t> star(grid, n, layout);
  star.fill(1);

  // Compacted active-vertex list: the not-yet-converged vertices of my
  // share, swap-removed on convergence so every per-iteration loop costs
  // O(active), not O(n/p) — Fig. 7 shows most vertices converge within 2-3
  // iterations, so the late iterations walk a short list of survivors.
  // The list is order-UNSTABLE (swap-remove); everything fed from it goes
  // through commutative reductions or owner-side sorts, so results and
  // modeled costs are unchanged (see docs/ARCHITECTURE.md, "Hot-path
  // design", and the golden-determinism test).
  std::vector<VertexId> active_list;
  std::vector<VertexId> active_pos(f.local_size());  // slot -> list position
  active_list.reserve(f.local_size());
  for (const VertexId g : f.owned()) {
    f.set(g, g);
    active_pos[f.local_slot(g)] = static_cast<VertexId>(active_list.size());
    active_list.push_back(g);
  }
  auto deactivate = [&](VertexId g) {
    const VertexId slot = f.local_slot(g);
    const VertexId pos = active_pos[slot];
    LACC_DCHECK(pos != kNoVertex);
    const VertexId last = active_list.back();
    active_list[pos] = last;
    active_pos[f.local_slot(last)] = pos;
    active_list.pop_back();
    active_pos[slot] = kNoVertex;
  };

  // Afforest-style pre-pass: seed f with locally contracted labels so fully
  // resolved components retire in iteration 1's convergence detection before
  // any hook pairs are formed — they generate zero hook/shortcut traffic.
  // All vertices stay in the active list; the detection is what retires them.
  out.prepass = PrepassStats{};
  if (options.sampling_prepass)
    run_sampling_prepass(grid, A, options, tuning, f, out.prepass);

  // mxv requires block-aligned vectors; in cyclic mode the input is
  // realigned, the semiring runs unmasked, and the output comes back to the
  // cyclic layout where the star filter is applied locally (CombBLAS-style
  // late masking) — the realignment cost the paper's conclusion predicts.
  auto run_mxv = [&](const DistVec<VertexId>& x,
                     bool fused) -> std::pair<DistVec<VertexId>,
                                              DistVec<VertexId>> {
    auto filter_by_star = [&](DistVec<VertexId>& y) {
      y.for_each_stored([&](VertexId g, VertexId) {
        if (!(star.has(g) && star.at(g) != 0)) y.remove(g);
      });
    };
    if (!options.cyclic_vectors) {
      if (fused)
        return dist::mxv_select2nd_minmax(grid, A, x, MaskSpec{&star, false},
                                          tuning);
      return {dist::mxv_select2nd(grid, A, x, MaskSpec{&star, false}, tuning,
                                  dist::SemiringAdd::kMin),
              DistVec<VertexId>(grid, n, layout)};
    }
    const auto xb = dist::to_layout(grid, x, dist::Layout::kBlockAligned,
                                    tuning);
    if (fused) {
      auto both = dist::mxv_select2nd_minmax(grid, A, xb, MaskSpec{}, tuning);
      auto mn = dist::to_layout(grid, both.first, layout, tuning);
      auto mx = dist::to_layout(grid, both.second, layout, tuning);
      filter_by_star(mn);
      filter_by_star(mx);
      return {std::move(mn), std::move(mx)};
    }
    auto yb = dist::mxv_select2nd(grid, A, xb, MaskSpec{}, tuning,
                                  dist::SemiringAdd::kMin);
    auto y = dist::to_layout(grid, yb, layout, tuning);
    filter_by_star(y);
    return {std::move(y), DistVec<VertexId>(grid, n, layout)};
  };

  // Starcheck (Algorithm 6) on the active subset.  The grandparent fetch is
  // tagged with a per-iteration counter when requested — Figure 3's
  // measurement of request skew in GrB_extract.
  auto starcheck = [&](int iter) {
    sim::Region region(world, "starcheck");
    // star <- true on active vertices; grandparents of active vertices.
    DistVec<VertexId> targets(grid, n, layout);
    for (const VertexId g : active_list) {
      star.set(g, 1);
      targets.set(g, f.at(g));
    }
    const DistVec<VertexId> gf = dist::gather_at(
        grid, f, targets, tuning, "extract_req_it" + std::to_string(iter));
    // Vertices whose parent and grandparent differ are nonstars, and so are
    // their grandparents (which may live on other ranks).
    std::vector<VertexId> remote_nonstars;
    for (const VertexId g : active_list) {
      if (!gf.has(g)) continue;
      if (f.at(g) != gf.at(g)) {
        star.set(g, 0);
        remote_nonstars.push_back(gf.at(g));
      }
    }
    world.charge_compute(static_cast<double>(f.local_size()));
    dist::scatter_set(grid, star, std::move(remote_nonstars), 0, tuning);
    // star[v] &= star[f[v]] (conjunction — see lacc_serial.cpp).
    const DistVec<std::uint8_t> starf =
        dist::gather_at(grid, star, targets, tuning);
    for (const VertexId g : active_list)
      if (starf.has(g))
        star.set(g, static_cast<std::uint8_t>(star.at(g) & starf.at(g)));
    world.charge_compute(static_cast<double>(f.local_size()));
  };

  std::uint64_t converged_total = 0;
  out.trace.clear();

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Spans the whole iteration; the four phase regions nest inside it, so
    // trace timelines group by iteration (tag = iteration number).
    sim::Region iter_region(world, "iter", iter);
    IterationRecord rec;
    rec.iteration = iter;
    const double iter_start = world.state().sim_time;

    // Input restricted to active vertices: this is the vector sparsity of
    // Section IV-B (with sparse vectors disabled, pass full f instead).
    DistVec<VertexId> f_act(grid, n, layout);
    for (const VertexId g : active_list) f_act.set(g, f.at(g));
    const DistVec<VertexId>& mxv_input = options.use_sparse_vectors ? f_act : f;

    // Min neighbor parent of every star vertex drives conditional hooking;
    // with convergence tracking on, the max rides along in the same fused
    // kernel to make the detection exact (see below).
    DistVec<VertexId> fn(grid, n, layout);
    DistVec<VertexId> fx(grid, n, layout);
    {
      sim::Region region(world, "cond-hook");
      auto both = run_mxv(mxv_input, options.track_converged);
      fn = std::move(both.first);
      fx = std::move(both.second);
    }

    // --- Convergence detection (start of iteration) ---
    // A star S is a converged component iff no member sees a neighbor
    // parent different from S's root: trees are vertex-disjoint, so an
    // outside neighbor can never have a parent inside S, and an inside
    // neighbor always has parent == root.  Min and max neighbor parents
    // together detect any difference exactly.  (This replaces the paper's
    // Lemma-1 bookkeeping, which mis-marks a star whose adjacent star
    // hooked to a third, smaller root in the same iteration — DESIGN.md
    // documents the counterexample.)
    if (options.track_converged) {
      sim::Region region(world, "starcheck");
      DistVec<std::uint8_t> tree_viol(grid, n, layout);
      std::vector<VertexId> viol_roots;
      DistVec<VertexId> targets(grid, n, layout);
      for (const VertexId g : active_list) {
        if (!star.has(g) || star.at(g) == 0) continue;
        targets.set(g, f.at(g));
        const bool viol = (fn.has(g) && fn.at(g) != f.at(g)) ||
                          (fx.has(g) && fx.at(g) != f.at(g));
        if (viol) viol_roots.push_back(f.at(g));
      }
      world.charge_compute(static_cast<double>(f.local_size()));
      dist::scatter_set(grid, tree_viol, std::move(viol_roots), 1, tuning);
      const DistVec<std::uint8_t> root_viol = dist::gather_at(
          grid, tree_viol, targets, tuning,
          "extract_req_it" + std::to_string(iter));
      std::uint64_t newly_converged = 0;
      // Swap-remove compaction while walking the list: on removal the
      // back element fills the hole, so the index is revisited.
      for (std::size_t i = 0; i < active_list.size();) {
        const VertexId g = active_list[i];
        if (!targets.has(g) ||
            (root_viol.has(g) && root_viol.at(g) != 0)) {
          ++i;
          continue;
        }
        deactivate(g);
        star.remove(g);
        fn.remove(g);  // converged trees must not hook
        ++newly_converged;
      }
      converged_total += world.allreduce(
          newly_converged,
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
    }
    rec.active_vertices = n - converged_total;
    rec.converged_vertices = converged_total;
    if (options.track_converged && converged_total == n) {
      rec.modeled_seconds = world.state().sim_time - iter_start;
      out.trace.push_back(rec);
      out.iterations = iter;
      break;
    }

    // --- Conditional hooking (Algorithm 3) ---
    std::uint64_t cond_hooks = 0;
    {
      sim::Region region(world, "cond-hook");
      // fn = min(fn, f); hooks are (root = f[g], proposal = fn[g]).  fn's
      // stored entries are a subset of the active list (the mxv output is
      // star-masked and converged entries were just removed).
      std::vector<Tuple<VertexId>> pairs;
      for (const VertexId g : active_list) {
        if (!fn.has(g)) continue;
        const VertexId proposal = std::min(fn.at(g), f.at(g));
        pairs.push_back({f.at(g), proposal});
      }
      world.charge_compute(static_cast<double>(pairs.size()) * 2);
      cond_hooks = dist::scatter_assign_min(grid, f, std::move(pairs), tuning);
    }
    rec.cond_hooks = cond_hooks;

    // Star flags only go stale when f changes; skipping the recomputation
    // on hook-free rounds removes most of the starcheck cost in the late,
    // sparse iterations ("identifying hot spots and optimizing them away").
    if (cond_hooks > 0) starcheck(iter);

    // --- Unconditional hooking (Algorithm 4) ---
    std::uint64_t uncond_hooks = 0;
    {
      sim::Region region(world, "uncond-hook");
      // fns = parents of nonstar vertices (Lemma 2 restricts hooks to
      // star -> nonstar); with the optimization off, use the full parent
      // vector and filter to cross-tree hooks afterwards.
      DistVec<VertexId> fns(grid, n, layout);
      for (const VertexId g : active_list) {
        if (options.sparse_uncond_hooking) {
          if (star.has(g) && star.at(g) == 0) fns.set(g, f.at(g));
        } else {
          fns.set(g, f.at(g));
        }
      }
      const DistVec<VertexId> fnu = run_mxv(fns, false).first;
      std::vector<Tuple<VertexId>> pairs;
      for (const VertexId g : active_list) {
        if (!fnu.has(g)) continue;
        if (fnu.at(g) == f.at(g)) continue;  // same tree: not a hook
        pairs.push_back({f.at(g), fnu.at(g)});
      }
      world.charge_compute(static_cast<double>(pairs.size()));
      uncond_hooks = dist::scatter_assign_min(grid, f, std::move(pairs), tuning);
    }
    rec.uncond_hooks = uncond_hooks;

    // --- Shortcut (Algorithm 5) ---
    bool shortcut_changed = false;
    {
      sim::Region region(world, "shortcut");
      DistVec<VertexId> targets(grid, n, layout);
      for (const VertexId g : active_list) targets.set(g, f.at(g));
      const DistVec<VertexId> gf =
          dist::gather_at(grid, f, targets, tuning,
                          "extract_req_it" + std::to_string(iter));
      for (const VertexId g : active_list) {
        if (!gf.has(g)) continue;
        if (gf.at(g) != f.at(g)) {
          f.set(g, gf.at(g));
          shortcut_changed = true;
        }
      }
      world.charge_compute(static_cast<double>(f.local_size()));
      shortcut_changed = dist::global_any(grid, shortcut_changed);
    }

    if (uncond_hooks > 0 || shortcut_changed) starcheck(iter);

    // Conformance (LACC_CHECK=2): purely local invariant sweep over this
    // rank's share — every active vertex still carries a parent in [0, n)
    // and star flags are boolean.  No collectives and no modeled charges,
    // so the sweep can neither perturb the cost model nor desynchronize
    // ranks; a violation surfaces as a ConformanceError on the owning rank.
    if (check::full()) {
      for (const VertexId g : active_list) {
        const VertexId parent = f.at(g);
        if (parent >= n)
          throw check::ConformanceError(
              "LACC invariant violation: vertex " + std::to_string(g) +
              " carries out-of-range parent " + std::to_string(parent) +
              " after iteration " + std::to_string(iter));
        if (star.has(g) && star.at(g) > 1)
          throw check::ConformanceError(
              "LACC invariant violation: vertex " + std::to_string(g) +
              " carries non-boolean star flag after iteration " +
              std::to_string(iter));
      }
    }

    {
      // Stored star entries outside the active list can only carry value 0
      // (scatter_set writes 0 at remote nonstar roots), so counting over
      // the active list matches the old full scan.
      std::uint64_t local_stars = 0;
      for (const VertexId g : active_list)
        if (star.has(g) && star.at(g) != 0) ++local_stars;
      rec.star_vertices =
          world.allreduce(local_stars, [](std::uint64_t a, std::uint64_t b) {
            return a + b;
          }) +
          converged_total;
    }

    // The clock is group-synchronized at collectives, so every rank records
    // the same per-iteration modeled time.
    rec.modeled_seconds = world.state().sim_time - iter_start;
    out.trace.push_back(rec);
    out.iterations = iter;

    const bool no_hooks = cond_hooks == 0 && uncond_hooks == 0;
    if (options.track_converged && converged_total == n) break;
    if (no_hooks && !shortcut_changed) break;
    LACC_CHECK_MSG(iter < options.max_iterations,
                   "distributed LACC did not converge in "
                       << options.max_iterations << " iterations");
  }

  const double modeled = world.state().sim_time - sim_start;
  out.parent = dist::to_global(grid, f, kNoVertex);
  for (const VertexId p : out.parent) LACC_CHECK(p != kNoVertex);
  return modeled;
}

DistRunResult lacc_dist(const graph::EdgeList& el, int nranks,
                        const sim::MachineModel& machine,
                        const LaccOptions& options) {
  DistRunResult result;
  std::vector<double> modeled(static_cast<std::size_t>(nranks), 0);
  std::mutex out_mutex;
  result.spmd = sim::run_spmd(nranks, machine, [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc A(grid, el);
    CcResult cc;
    const double seconds = lacc_dist_body(grid, A, options, cc);
    modeled[static_cast<std::size_t>(world.rank())] = seconds;
    if (world.rank() == 0) {
      std::lock_guard<std::mutex> lock(out_mutex);
      result.cc = std::move(cc);
    }
  });
  result.modeled_seconds = *std::max_element(modeled.begin(), modeled.end());
  return result;
}

}  // namespace lacc::core
