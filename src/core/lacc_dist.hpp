// Distributed-memory LACC: the paper's primary contribution.
//
// CombBLAS-style implementation of the Awerbuch–Shiloach algorithm over the
// dist layer: conditional hooking, unconditional hooking, shortcutting, and
// star checking, each expressed with the distributed mxv / extract / assign
// kernels and instrumented as a named region (Figure 8's phases).  The
// sparsity optimizations of Section IV-B and the communication
// optimizations of Section V-B are controlled by LaccOptions so the
// ablation benches can toggle them.
#pragma once

#include "core/options.hpp"
#include "dist/dist_mat.hpp"
#include "dist/grid.hpp"
#include "graph/edge_list.hpp"
#include "sim/runtime.hpp"

namespace lacc::core {

/// Result of a distributed run: the component labeling plus the cost and
/// instrumentation data of the SPMD execution.
struct DistRunResult {
  CcResult cc;
  sim::SpmdResult spmd;
  /// Modeled seconds spent in the CC computation itself (critical path,
  /// excluding graph ingestion).
  double modeled_seconds = 0;
};

/// Run distributed LACC on `nranks` virtual ranks (must form a square grid)
/// against `machine`'s cost model.  Collective entry point: spawns the SPMD
/// region, builds the distributed matrix, runs the algorithm.
DistRunResult lacc_dist(const graph::EdgeList& el, int nranks,
                        const sim::MachineModel& machine,
                        const LaccOptions& options = {});

/// Collective: run LACC on an already-built distributed matrix from inside
/// an SPMD region (lets benches amortize one graph build across several
/// option variants).  `out` is filled on every rank with the gathered
/// parent vector and trace.  Returns this rank's modeled seconds.
double lacc_dist_body(dist::ProcGrid& grid, const dist::DistCsc& A,
                      const LaccOptions& options, CcResult& out);

}  // namespace lacc::core
