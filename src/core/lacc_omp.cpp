#include "core/lacc_omp.hpp"

#include <atomic>
#include <vector>

#include "support/error.hpp"

namespace lacc::core {

namespace {

/// Atomically lower `slot` to min(slot, value).
void atomic_min(std::atomic<VertexId>& slot, VertexId value) {
  VertexId current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

CcResult awerbuch_shiloach_omp(const graph::Csr& g,
                               const LaccOptions& options) {
  const VertexId n = g.num_vertices();
  const auto ni = static_cast<std::int64_t>(n);
  CcResult result;
  result.parent.resize(n);
  auto& f = result.parent;
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < ni; ++v)
    f[static_cast<VertexId>(v)] = static_cast<VertexId>(v);

  std::vector<std::uint8_t> star(n, 1);
  std::vector<std::atomic<VertexId>> proposal(n);

  // Algorithm 2 with the same conjunction fix as starcheck_dense.
  auto starcheck = [&]() {
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < ni; ++v) star[static_cast<VertexId>(v)] = 1;
#pragma omp parallel for schedule(static)
    for (std::int64_t vi = 0; vi < ni; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      const VertexId gf = f[f[v]];
      if (f[v] != gf) {
        star[v] = 0;
        star[gf] = 0;  // benign write race: all writers store 0
      }
    }
#pragma omp parallel for schedule(static)
    for (std::int64_t vi = 0; vi < ni; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      star[v] = static_cast<std::uint8_t>(star[v] & star[f[v]]);
    }
  };

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    IterationRecord rec;
    rec.iteration = iter;
    rec.active_vertices = n;

    // Conditional hooking: edge-parallel atomic-min proposals to roots.
    starcheck();
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < ni; ++v)
      proposal[static_cast<VertexId>(v)].store(kNoVertex,
                                               std::memory_order_relaxed);
#pragma omp parallel for schedule(dynamic, 512)
    for (std::int64_t ui = 0; ui < ni; ++ui) {
      const auto u = static_cast<VertexId>(ui);
      if (!star[u]) continue;
      for (const VertexId v : g.neighbors(u))
        if (f[v] < f[u]) atomic_min(proposal[f[u]], f[v]);
    }
    std::uint64_t cond_hooks = 0;
#pragma omp parallel for schedule(static) reduction(+ : cond_hooks)
    for (std::int64_t ri = 0; ri < ni; ++ri) {
      const auto r = static_cast<VertexId>(ri);
      const VertexId p = proposal[r].load(std::memory_order_relaxed);
      if (p != kNoVertex && p < f[r]) {
        f[r] = p;
        ++cond_hooks;
      }
    }
    rec.cond_hooks = cond_hooks;

    // Unconditional hooking (any-tree sources, like the serial dense AS —
    // provably sound with fresh star flags; see DESIGN.md).
    starcheck();
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < ni; ++v)
      proposal[static_cast<VertexId>(v)].store(kNoVertex,
                                               std::memory_order_relaxed);
#pragma omp parallel for schedule(dynamic, 512)
    for (std::int64_t ui = 0; ui < ni; ++ui) {
      const auto u = static_cast<VertexId>(ui);
      if (!star[u]) continue;
      for (const VertexId v : g.neighbors(u))
        if (f[v] != f[u]) atomic_min(proposal[f[u]], f[v]);
    }
    std::uint64_t uncond_hooks = 0;
#pragma omp parallel for schedule(static) reduction(+ : uncond_hooks)
    for (std::int64_t ri = 0; ri < ni; ++ri) {
      const auto r = static_cast<VertexId>(ri);
      const VertexId p = proposal[r].load(std::memory_order_relaxed);
      if (p != kNoVertex && f[r] == r && p != r) {
        f[r] = p;
        ++uncond_hooks;
      }
    }
    rec.uncond_hooks = uncond_hooks;

    // Shortcut (Jacobi-style: read the old parents, write fresh ones).
    std::uint64_t shortcut_changes = 0;
    {
      std::vector<VertexId> next(f);
#pragma omp parallel for schedule(static) reduction(+ : shortcut_changes)
      for (std::int64_t vi = 0; vi < ni; ++vi) {
        const auto v = static_cast<VertexId>(vi);
        const VertexId gf = f[f[v]];
        if (gf != f[v]) {
          next[v] = gf;
          ++shortcut_changes;
        }
      }
      f.swap(next);
    }

    result.trace.push_back(rec);
    result.iterations = iter;
    if (cond_hooks == 0 && uncond_hooks == 0 && shortcut_changes == 0) break;
    LACC_CHECK_MSG(iter < options.max_iterations,
                   "OpenMP AS did not converge in " << options.max_iterations
                                                    << " iterations");
  }
  return result;
}

}  // namespace lacc::core
