#include "core/lacc_omp.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <vector>

#include "core/afforest.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace lacc::core {

namespace {

// The lock-free union-find primitives (atomic_min, link, compress_one,
// relabel bodies) live in core/afforest.hpp — shared with the model-check
// suites — and are driven here under OpenMP parallel-for.
using afforest::atomic_min;
using afforest::link;

/// CAS-free pointer jumping: comp[v] <- comp[comp[v]] until flat.  Values
/// only decrease and roots never move (no links run concurrently), so every
/// chain terminates and the array is flat at the implicit barrier.
void compress(std::vector<std::atomic<VertexId>>& comp, std::int64_t ni) {
#pragma omp parallel for schedule(dynamic, 4096)
  for (std::int64_t vi = 0; vi < ni; ++vi)
    afforest::compress_one(comp, static_cast<VertexId>(vi));
}

/// Rewrite every flat label to its component's minimum vertex id.  The CAS
/// races make tree shapes (and therefore root identities) schedule-dependent;
/// component membership is not, so after this the labels are deterministic.
void relabel_min(std::vector<std::atomic<VertexId>>& comp,
                 std::vector<std::atomic<VertexId>>& low, std::int64_t ni) {
#pragma omp parallel for schedule(static)
  for (std::int64_t vi = 0; vi < ni; ++vi)
    low[static_cast<VertexId>(vi)].store(kNoVertex, std::memory_order_relaxed);
#pragma omp parallel for schedule(static)
  for (std::int64_t vi = 0; vi < ni; ++vi) {
    const auto v = static_cast<VertexId>(vi);
    atomic_min(low[comp[v].load(std::memory_order_relaxed)], v);
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t vi = 0; vi < ni; ++vi) {
    const auto v = static_cast<VertexId>(vi);
    comp[v].store(low[comp[v].load(std::memory_order_relaxed)].load(
                      std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }
}

}  // namespace

CcResult awerbuch_shiloach_omp(const graph::Csr& g,
                               const LaccOptions& options) {
  const VertexId n = g.num_vertices();
  const auto ni = static_cast<std::int64_t>(n);
  CcResult result;
  result.parent.resize(n);
  auto& f = result.parent;
#pragma omp parallel for schedule(static)
  for (std::int64_t v = 0; v < ni; ++v)
    f[static_cast<VertexId>(v)] = static_cast<VertexId>(v);

  // Afforest-style sampled pre-pass (Sutton et al.): lock-free Link over the
  // first sample_rounds neighbors of every vertex, a frequent-component
  // sample, then full linking outside it.  Any edge skipped on both sides
  // provably has both endpoints already merged into the frequent set, so the
  // resulting partition — and, after relabel_min, the seeded f — is
  // deterministic despite the CAS races (which is exactly what the TSan job
  // exercises).  The AS rounds below then finish the cross-tree stitching.
  if (options.sampling_prepass) {
    const auto rounds =
        static_cast<std::size_t>(std::max(0, options.sample_rounds));
    std::vector<std::atomic<VertexId>> comp(n);
    std::vector<std::atomic<VertexId>> low(n);
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < ni; ++v)
      comp[static_cast<VertexId>(v)].store(static_cast<VertexId>(v),
                                           std::memory_order_relaxed);
    std::uint64_t sampled = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
#pragma omp parallel for schedule(dynamic, 512) reduction(+ : sampled)
      for (std::int64_t ui = 0; ui < ni; ++ui) {
        const auto u = static_cast<VertexId>(ui);
        const auto nbrs = g.neighbors(u);
        if (nbrs.size() <= r) continue;
        link(comp, u, nbrs[r]);
        ++sampled;
      }
    }
    compress(comp, ni);
    relabel_min(comp, low, ni);

    VertexId frequent = kNoVertex;
    if (options.frequent_skip && n > 0) {
      Xoshiro256 rng(0xAFF05EED1ACCull);
      const std::uint64_t samples = std::min<std::uint64_t>(1024, n);
      std::unordered_map<VertexId, std::uint64_t> counts;
      for (std::uint64_t s = 0; s < samples; ++s)
        ++counts[comp[rng.below(n)].load(std::memory_order_relaxed)];
      std::uint64_t best = 0;
      for (const auto& [label, count] : counts)
        if (count > best || (count == best && label < frequent)) {
          best = count;
          frequent = label;
        }
    }

    std::uint64_t skipped = 0;
#pragma omp parallel for schedule(dynamic, 512) reduction(+ : skipped)
    for (std::int64_t ui = 0; ui < ni; ++ui) {
      const auto u = static_cast<VertexId>(ui);
      if (comp[u].load(std::memory_order_relaxed) == frequent) continue;
      const auto nbrs = g.neighbors(u);
      for (std::size_t k = rounds; k < nbrs.size(); ++k) {
        link(comp, u, nbrs[k]);
        ++skipped;
      }
    }
    compress(comp, ni);
    relabel_min(comp, low, ni);

    std::uint64_t resolved = 0;
#pragma omp parallel for schedule(static) reduction(+ : resolved)
    for (std::int64_t vi = 0; vi < ni; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      f[v] = comp[v].load(std::memory_order_relaxed);
      if (f[v] != v) ++resolved;
    }
    result.prepass.ran = true;
    result.prepass.sample_rounds = static_cast<int>(rounds);
    result.prepass.sampled_edges = sampled;
    result.prepass.skip_edges = skipped;
    result.prepass.resolved_vertices = resolved;
    result.prepass.frequent_found = frequent != kNoVertex;
    result.prepass.frequent_label = frequent;
  }

  std::vector<std::uint8_t> star(n, 1);
  std::vector<std::atomic<VertexId>> proposal(n);

  // Algorithm 2 with the same conjunction fix as starcheck_dense.
  auto starcheck = [&]() {
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < ni; ++v) star[static_cast<VertexId>(v)] = 1;
#pragma omp parallel for schedule(static)
    for (std::int64_t vi = 0; vi < ni; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      const VertexId gf = f[f[v]];
      if (f[v] != gf) {
        star[v] = 0;
        star[gf] = 0;  // benign write race: all writers store 0
      }
    }
#pragma omp parallel for schedule(static)
    for (std::int64_t vi = 0; vi < ni; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      star[v] = static_cast<std::uint8_t>(star[v] & star[f[v]]);
    }
  };

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    IterationRecord rec;
    rec.iteration = iter;
    rec.active_vertices = n;

    // Conditional hooking: edge-parallel atomic-min proposals to roots.
    starcheck();
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < ni; ++v)
      proposal[static_cast<VertexId>(v)].store(kNoVertex,
                                               std::memory_order_relaxed);
#pragma omp parallel for schedule(dynamic, 512)
    for (std::int64_t ui = 0; ui < ni; ++ui) {
      const auto u = static_cast<VertexId>(ui);
      if (!star[u]) continue;
      for (const VertexId v : g.neighbors(u))
        if (f[v] < f[u]) atomic_min(proposal[f[u]], f[v]);
    }
    std::uint64_t cond_hooks = 0;
#pragma omp parallel for schedule(static) reduction(+ : cond_hooks)
    for (std::int64_t ri = 0; ri < ni; ++ri) {
      const auto r = static_cast<VertexId>(ri);
      const VertexId p = proposal[r].load(std::memory_order_relaxed);
      if (p != kNoVertex && p < f[r]) {
        f[r] = p;
        ++cond_hooks;
      }
    }
    rec.cond_hooks = cond_hooks;

    // Unconditional hooking (any-tree sources, like the serial dense AS —
    // provably sound with fresh star flags; see DESIGN.md).
    starcheck();
#pragma omp parallel for schedule(static)
    for (std::int64_t v = 0; v < ni; ++v)
      proposal[static_cast<VertexId>(v)].store(kNoVertex,
                                               std::memory_order_relaxed);
#pragma omp parallel for schedule(dynamic, 512)
    for (std::int64_t ui = 0; ui < ni; ++ui) {
      const auto u = static_cast<VertexId>(ui);
      if (!star[u]) continue;
      for (const VertexId v : g.neighbors(u))
        if (f[v] != f[u]) atomic_min(proposal[f[u]], f[v]);
    }
    std::uint64_t uncond_hooks = 0;
#pragma omp parallel for schedule(static) reduction(+ : uncond_hooks)
    for (std::int64_t ri = 0; ri < ni; ++ri) {
      const auto r = static_cast<VertexId>(ri);
      const VertexId p = proposal[r].load(std::memory_order_relaxed);
      if (p != kNoVertex && f[r] == r && p != r) {
        f[r] = p;
        ++uncond_hooks;
      }
    }
    rec.uncond_hooks = uncond_hooks;

    // Shortcut (Jacobi-style: read the old parents, write fresh ones).
    std::uint64_t shortcut_changes = 0;
    {
      std::vector<VertexId> next(f);
#pragma omp parallel for schedule(static) reduction(+ : shortcut_changes)
      for (std::int64_t vi = 0; vi < ni; ++vi) {
        const auto v = static_cast<VertexId>(vi);
        const VertexId gf = f[f[v]];
        if (gf != f[v]) {
          next[v] = gf;
          ++shortcut_changes;
        }
      }
      f.swap(next);
    }

    result.trace.push_back(rec);
    result.iterations = iter;
    if (cond_hooks == 0 && uncond_hooks == 0 && shortcut_changes == 0) break;
    LACC_CHECK_MSG(iter < options.max_iterations,
                   "OpenMP AS did not converge in " << options.max_iterations
                                                    << " iterations");
  }
  return result;
}

}  // namespace lacc::core
