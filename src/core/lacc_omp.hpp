// Shared-memory parallel Awerbuch–Shiloach with OpenMP.
//
// The paper notes that graphs under ~150 GB "can be stored on a
// shared-memory server and connected components computed with an efficient
// shared-memory algorithm"; this is that comparison point, built from the
// same AS skeleton as the distributed code: edge-parallel hooking with
// atomic min proposals, vertex-parallel shortcutting and star checking.
// Deterministic: proposals reduce with min, exactly like the serial and
// distributed implementations.
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"

namespace lacc::core {

/// OpenMP-parallel AS.  Semantics match awerbuch_shiloach(); the number of
/// threads follows the OpenMP runtime (OMP_NUM_THREADS).
CcResult awerbuch_shiloach_omp(const graph::Csr& g,
                               const LaccOptions& options = {});

}  // namespace lacc::core
