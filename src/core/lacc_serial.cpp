#include "core/lacc_serial.hpp"

#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "grb/ops.hpp"
#include "grb/vector.hpp"
#include "support/bitvector.hpp"
#include "support/error.hpp"

namespace lacc::core {

namespace {

/// Algorithm 2 (Starcheck) over dense arrays, restricted to `active`.
/// A vertex outside the active set keeps its previous flag.
void starcheck_dense(const std::vector<VertexId>& f, const BitVector& active,
                     BitVector& star) {
  const auto n = static_cast<VertexId>(f.size());
  for (VertexId v = 0; v < n; ++v)
    if (active.get(v)) star.set(v, true);
  // Exclude every vertex with level > 2 and its grandparent.
  for (VertexId v = 0; v < n; ++v) {
    if (!active.get(v)) continue;
    const VertexId gf = f[f[v]];
    if (f[v] != gf) {
      star.set(v, false);
      star.set(gf, false);
    }
  }
  // In nonstar trees, exclude vertices at level 2.  The paper's listing
  // reads "star[v] <- star[f[v]]", but a literal overwrite would wrongly
  // resurrect vertices at exactly level 3 (their level-2 parent is still
  // unmarked at this point); the conjunction is what CombBLAS implements.
  for (VertexId v = 0; v < n; ++v)
    if (active.get(v)) star.set(v, star.get(v) && star.get(f[v]));
}

}  // namespace

CcResult awerbuch_shiloach(const graph::Csr& g, const LaccOptions& options) {
  const VertexId n = g.num_vertices();
  CcResult result;
  result.parent.resize(n);
  for (VertexId v = 0; v < n; ++v) result.parent[v] = v;
  auto& f = result.parent;

  BitVector active(n, true);
  BitVector star(n, true);
  std::uint64_t num_converged = 0;

  std::vector<VertexId> proposal(n, kNoVertex);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    IterationRecord rec;
    rec.iteration = iter;
    rec.active_vertices = n - num_converged;

    // Step 1: conditional star hooking.  PRAM concurrent writes to f[f[u]]
    // are emulated by gathering proposals and reducing with min.
    starcheck_dense(f, active, star);
    std::fill(proposal.begin(), proposal.end(), kNoVertex);
    for (VertexId u = 0; u < n; ++u) {
      if (!active.get(u) || !star.get(u)) continue;
      for (const VertexId v : g.neighbors(u))
        if (f[v] < f[u] && f[v] < proposal[f[u]]) proposal[f[u]] = f[v];
    }
    for (VertexId r = 0; r < n; ++r)
      if (proposal[r] != kNoVertex && proposal[r] < f[r]) {
        f[r] = proposal[r];
        ++rec.cond_hooks;
      }

    // Step 2: unconditional star hooking.  After a fresh starcheck, any
    // neighbor in a different tree is in a nonstar (Lemma 2), so the hook
    // can ignore parent order.
    starcheck_dense(f, active, star);
    std::fill(proposal.begin(), proposal.end(), kNoVertex);
    for (VertexId u = 0; u < n; ++u) {
      if (!active.get(u) || !star.get(u)) continue;
      for (const VertexId v : g.neighbors(u))
        if (f[v] != f[u] && f[v] < proposal[f[u]]) proposal[f[u]] = f[v];
    }
    std::unordered_set<VertexId> hooked_roots;
    for (VertexId r = 0; r < n; ++r)
      if (proposal[r] != kNoVertex && f[r] == r) {
        f[r] = proposal[r];
        hooked_roots.insert(r);
        ++rec.uncond_hooks;
      }

    // Lemma 1: stars that survived both hookings are converged components
    // (not applicable in the first iteration).
    if (options.track_converged && iter > 1) {
      for (VertexId v = 0; v < n; ++v) {
        if (!active.get(v) || !star.get(v)) continue;
        // A hooked tree's members still point at the old root, but the old
        // root itself now points outside — check both.
        if (hooked_roots.count(f[v]) != 0 || hooked_roots.count(v) != 0)
          continue;
        active.set(v, false);
        ++num_converged;
      }
    }
    rec.converged_vertices = num_converged;

    // Step 3: shortcutting (a no-op on stars, so no star filter needed).
    bool shortcut_changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (!active.get(v)) continue;
      const VertexId gf = f[f[v]];
      if (f[v] != gf) {
        f[v] = gf;
        shortcut_changed = true;
      }
    }

    starcheck_dense(f, active, star);
    for (VertexId v = 0; v < n; ++v)
      if (star.get(v)) ++rec.star_vertices;

    result.trace.push_back(rec);
    result.iterations = iter;

    const bool no_hooks = rec.cond_hooks == 0 && rec.uncond_hooks == 0;
    if (options.track_converged && num_converged == n) break;
    if (!options.track_converged && no_hooks && !shortcut_changed) break;
    LACC_CHECK_MSG(iter < options.max_iterations,
                   "AS did not converge in " << options.max_iterations
                                             << " iterations");
  }
  return result;
}

CcResult lacc_grb(const graph::Csr& g, const LaccOptions& options) {
  using grb::Vector;
  const VertexId n = g.num_vertices();

  // f starts dense (every vertex its own parent, n single-vertex stars).
  Vector<VertexId> f(n);
  for (VertexId v = 0; v < n; ++v) f.set(v, v);

  // star holds stored entries only for *active* vertices, so masking by it
  // automatically excludes converged components (Section IV-B).
  Vector<bool> star = Vector<bool>::full(n, true);
  BitVector active(n, true);
  std::uint64_t num_converged = 0;

  // Starcheck (Algorithm 6) on the active subset.
  auto starcheck = [&]() {
    std::vector<grb::Index> idx;
    std::vector<VertexId> fv;
    f.extract_tuples(idx, fv);
    // Restrict to active vertices (converged entries of f remain stored so
    // the final parent vector is complete).
    std::vector<grb::Index> aidx;
    std::vector<VertexId> afv;
    aidx.reserve(idx.size());
    afv.reserve(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k)
      if (active.get(idx[k])) {
        aidx.push_back(idx[k]);
        afv.push_back(fv[k]);
      }
    // star <- true on active vertices.
    grb::assign_scalar(star, aidx, true);
    // gf[k] = f[f[v]] for active v.
    Vector<VertexId> gf = grb::extract(f, afv);
    // Vertices whose parent differs from their grandparent are nonstars, and
    // so are their grandparents.
    std::vector<grb::Index> nonstars;
    std::vector<grb::Index> grandparents;
    for (std::size_t k = 0; k < aidx.size(); ++k) {
      const VertexId gfk = gf.at(static_cast<grb::Index>(k));
      if (afv[k] != gfk) {
        nonstars.push_back(aidx[k]);
        grandparents.push_back(gfk);
      }
    }
    grb::assign_scalar(star, nonstars, false);
    grb::assign_scalar(star, grandparents, false);
    // star[v] &= star[f[v]] — conjunction, not overwrite, so the rule-2
    // marking of level-3 vertices survives (see starcheck_dense above).
    Vector<bool> starf = grb::extract(star, afv);
    for (std::size_t k = 0; k < aidx.size(); ++k)
      if (starf.has(static_cast<grb::Index>(k)))
        star.set(aidx[k], star.get_or(aidx[k], true) &&
                              starf.at(static_cast<grb::Index>(k)));
  };

  CcResult result;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    IterationRecord rec;
    rec.iteration = iter;

    // fn[i] = min parent among neighbors of star vertex i — used by both
    // convergence detection and conditional hooking.
    Vector<VertexId> fn =
        grb::mxv_select2nd(g, f, grb::MinOp{}, grb::mask_of(star));

    // --- Convergence detection (start of iteration) ---
    // A star is converged iff no member sees a neighbor parent different
    // from its root; min and max over neighbor parents together detect any
    // such difference exactly (trees are vertex-disjoint, so an outside
    // neighbor's parent can never equal this root).  This replaces the
    // paper's Lemma-1 bookkeeping, which can mis-mark a star whose
    // adjacent star hooked to a third, smaller root in the same iteration
    // (see DESIGN.md).
    if (options.track_converged) {
      const Vector<VertexId> fx =
          grb::mxv_select2nd(g, f, grb::MaxOp{}, grb::mask_of(star));
      std::unordered_set<VertexId> viol_roots;
      std::vector<grb::Index> sidx;
      std::vector<bool> sval;
      star.extract_tuples(sidx, sval);
      for (std::size_t k = 0; k < sidx.size(); ++k) {
        if (!sval[k]) continue;
        const grb::Index v = sidx[k];
        const VertexId root = f.at(v);
        if ((fn.has(v) && fn.at(v) != root) || (fx.has(v) && fx.at(v) != root))
          viol_roots.insert(root);
      }
      for (std::size_t k = 0; k < sidx.size(); ++k) {
        if (!sval[k]) continue;
        const grb::Index v = sidx[k];
        if (!active.get(v)) continue;
        if (viol_roots.count(f.at(v)) != 0) continue;
        active.set(v, false);
        star.remove(v);
        fn.remove(v);  // converged trees must not hook
        ++num_converged;
      }
    }
    rec.active_vertices = n - num_converged;
    rec.converged_vertices = num_converged;
    if (options.track_converged && num_converged == n) {
      result.trace.push_back(rec);
      result.iterations = iter;
      break;
    }

    // --- Conditional hooking (Algorithm 3) ---
    // fn = min(fn, f): a proposal never exceeds the tree's own root.
    fn = grb::eWiseMult(fn, f, grb::MinOp{}, grb::no_mask());
    // fh = parents (i.e. roots) of hooks.
    Vector<VertexId> fh =
        grb::eWiseMult(fn, f, grb::SecondOp{}, grb::no_mask());
    {
      std::vector<grb::Index> hook_idx;
      std::vector<VertexId> hook_val, hook_root;
      fn.extract_tuples(hook_idx, hook_val);
      std::vector<grb::Index> tmp;
      fh.extract_tuples(tmp, hook_root);
      Vector<VertexId> values(static_cast<grb::Index>(hook_val.size()));
      for (std::size_t k = 0; k < hook_val.size(); ++k)
        values.set(static_cast<grb::Index>(k), hook_val[k]);
      // Count roots that actually move before overwriting them.
      std::unordered_set<VertexId> moved;
      for (std::size_t k = 0; k < hook_val.size(); ++k)
        if (hook_val[k] < f.at(hook_root[k])) moved.insert(hook_root[k]);
      rec.cond_hooks = moved.size();
      grb::assign(f, hook_root, values);
    }

    starcheck();

    // --- Unconditional hooking (Algorithm 4) ---
    // fns = parents of nonstar vertices (sparse); GrB_extract with the
    // structural complement of star, composed from stored tuples.
    Vector<VertexId> fns(n);
    std::uint64_t nonstar_count = 0;
    {
      std::vector<grb::Index> indices;
      std::vector<bool> values;
      star.extract_tuples(indices, values);
      for (std::size_t k = 0; k < indices.size(); ++k)
        if (!values[k]) {
          fns.set(indices[k], f.at(indices[k]));
          ++nonstar_count;
        }
    }
    std::unordered_set<VertexId> uncond_hooked;
    if (!options.sparse_uncond_hooking) {
      // Ablation: dense unconditional hooking — scan from the full parent
      // vector instead of the nonstar-restricted sparse one.
      fns = f;
    }
    if (nonstar_count > 0 || !options.sparse_uncond_hooking) {
      Vector<VertexId> fn2 =
          grb::mxv_select2nd(g, fns, grb::MinOp{}, grb::mask_of(star));
      if (!options.sparse_uncond_hooking) {
        // Keep only hooks that leave the tree (f[u] != f[v]).
        Vector<VertexId> filtered(n);
        std::vector<grb::Index> indices;
        std::vector<VertexId> values;
        fn2.extract_tuples(indices, values);
        for (std::size_t k = 0; k < indices.size(); ++k)
          if (values[k] != f.at(indices[k]))
            filtered.set(indices[k], values[k]);
        fn2 = filtered;
      }
      Vector<VertexId> fh2 =
          grb::eWiseMult(fn2, f, grb::SecondOp{}, grb::no_mask());
      std::vector<grb::Index> hook_idx;
      std::vector<VertexId> hook_val, hook_root;
      fn2.extract_tuples(hook_idx, hook_val);
      std::vector<grb::Index> tmp;
      fh2.extract_tuples(tmp, hook_root);
      Vector<VertexId> values(static_cast<grb::Index>(hook_val.size()));
      for (std::size_t k = 0; k < hook_val.size(); ++k)
        values.set(static_cast<grb::Index>(k), hook_val[k]);
      for (std::size_t k = 0; k < hook_root.size(); ++k)
        if (hook_val[k] != f.at(hook_root[k])) uncond_hooked.insert(hook_root[k]);
      rec.uncond_hooks = uncond_hooked.size();
      grb::assign(f, hook_root, values);
    }

    // --- Shortcut (Algorithm 5) on the active subset ---
    bool shortcut_changed = false;
    {
      std::vector<grb::Index> idx;
      std::vector<VertexId> fv;
      f.extract_tuples(idx, fv);
      std::vector<grb::Index> aidx;
      std::vector<VertexId> afv;
      for (std::size_t k = 0; k < idx.size(); ++k)
        if (active.get(idx[k])) {
          aidx.push_back(idx[k]);
          afv.push_back(fv[k]);
        }
      Vector<VertexId> gf = grb::extract(f, afv);
      for (std::size_t k = 0; k < aidx.size(); ++k) {
        const VertexId gfk = gf.at(static_cast<grb::Index>(k));
        if (gfk != afv[k]) shortcut_changed = true;
        f.set(aidx[k], gfk);
      }
    }

    starcheck();
    {
      std::vector<grb::Index> indices;
      std::vector<bool> values;
      star.extract_tuples(indices, values);
      for (const bool s : values)
        if (s) ++rec.star_vertices;
      rec.star_vertices += num_converged;  // converged stars remain stars
    }

    result.trace.push_back(rec);
    result.iterations = iter;

    // Set LACC_TRACE=1 to dump the per-iteration state to stderr.
    static const bool trace_enabled = std::getenv("LACC_TRACE") != nullptr;
    if (trace_enabled)
      std::fprintf(stderr,
                   "lacc_grb it=%d active=%llu conv=%llu ch=%llu uh=%llu "
                   "stars=%llu sc=%d\n",
                   iter, static_cast<unsigned long long>(rec.active_vertices),
                   static_cast<unsigned long long>(rec.converged_vertices),
                   static_cast<unsigned long long>(rec.cond_hooks),
                   static_cast<unsigned long long>(rec.uncond_hooks),
                   static_cast<unsigned long long>(rec.star_vertices),
                   shortcut_changed ? 1 : 0);

    const bool no_hooks = rec.cond_hooks == 0 && rec.uncond_hooks == 0;
    if (options.track_converged && num_converged == n) break;
    if (no_hooks && !shortcut_changed) break;
    LACC_CHECK_MSG(iter < options.max_iterations,
                   "LACC did not converge in " << options.max_iterations
                                               << " iterations");
  }

  result.parent.resize(n);
  for (VertexId v = 0; v < n; ++v) result.parent[v] = f.at(v);
  return result;
}

}  // namespace lacc::core
