// Serial connected-components algorithms from the paper.
//
// Two implementations with identical semantics but different machinery:
//
//  * awerbuch_shiloach: a direct transcription of the PRAM algorithm
//    (paper Algorithms 1-2) over dense arrays.  Every iteration touches
//    every edge and vertex — the "no sparsity" starting point the paper
//    improves on.
//
//  * lacc_grb: the GraphBLAS formulation (paper Algorithms 3-6) over the
//    grb layer, with the sparsity optimizations of Section IV-B (Lemma 1
//    converged-component tracking, Lemma 2 star->nonstar unconditional
//    hooking).  This mirrors the serial LAGraph implementation the authors
//    published for educational purposes, plus the sparsity the paper adds.
#pragma once

#include "core/options.hpp"
#include "graph/csr.hpp"

namespace lacc::core {

/// Direct PRAM Awerbuch–Shiloach (dense; CRCW arbitrary-write emulated with
/// a min-reduction for determinism).
CcResult awerbuch_shiloach(const graph::Csr& g,
                           const LaccOptions& options = {});

/// LACC over serial GraphBLAS primitives.
CcResult lacc_grb(const graph::Csr& g, const LaccOptions& options = {});

}  // namespace lacc::core
