// Options, per-iteration trace records, and results shared by every
// connected-components implementation in the repository.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace lacc::core {

/// Toggles for the paper's optimizations; all on by default.  Turning one
/// off reproduces the corresponding ablation in bench_ablation_optimizations.
struct LaccOptions {
  /// Lemma 1: track converged components and drop them from the active set.
  bool track_converged = true;

  /// Lemma 2: restrict unconditional hooking to star->nonstar hooks using a
  /// sparse vector of nonstar parents (off = dense scan like plain AS).
  bool sparse_uncond_hooking = true;

  /// Use sparse vectors (SpMSpV / sparse assign-extract) once the active
  /// set shrinks; off forces dense operations every iteration.
  bool use_sparse_vectors = true;

  /// Distributed only — mitigate skewed all-to-alls by broadcasting from
  /// overloaded ranks (Section V-B).
  bool hotspot_broadcast = true;

  /// Distributed only — requests-to-elements ratio above which a rank
  /// switches from all-to-all participation to broadcast (the paper's
  /// system-dependent tunable h).
  double hotspot_threshold = 4.0;

  /// Distributed only — use the hypercube all-to-all of Sundar et al.
  /// instead of pairwise exchange.
  bool hypercube_alltoall = true;

  /// Distributed only — store vectors cyclically (element g on rank g mod
  /// p) instead of block-aligned.  The paper's future-work proposal: it
  /// spreads the low-vertex-id hotspots of extract/assign evenly across
  /// ranks, at the cost of a realignment all-to-all around every mxv.
  bool cyclic_vectors = false;

  /// Afforest-style sampled local contraction pre-pass (Sutton et al.): each
  /// rank runs a union-find over a sampled prefix of its local edges,
  /// guesses its local shadow of the giant component from ~1024 sampled
  /// vertices, finishes local linking only outside that tree, and seeds the
  /// parent vector with the contracted labels before the first LACC round.
  /// Off by default so existing runs stay bit-identical.
  bool sampling_prepass = false;

  /// Pre-pass only — how many neighbor rounds to sample per vertex before
  /// the frequent-component skip (Afforest's neighbor_rounds).
  int sample_rounds = 2;

  /// Pre-pass only — skip full linking for vertices already labeled with
  /// the sampled frequent component.  Off links every local edge, which
  /// resolves more but costs a full local edge scan; a win only when no
  /// component dominates (see docs/ARCHITECTURE.md).
  bool frequent_skip = true;

  /// Safety valve for adversarial inputs; the algorithm provably needs
  /// O(log n) iterations.
  int max_iterations = 10000;
};

/// What the sampling pre-pass did (all zeros when it did not run).  Counts
/// are global (summed over ranks); modeled_seconds is the pre-pass region's
/// share of the cost model, also attributed to the "prepass" obs span.
struct PrepassStats {
  bool ran = false;
  int sample_rounds = 0;                ///< neighbor rounds actually sampled
  std::uint64_t sampled_edges = 0;      ///< edges linked in the sampling rounds
  std::uint64_t skip_edges = 0;         ///< edges linked in the skip phase
  std::uint64_t resolved_vertices = 0;  ///< vertices leaving with f[v] != v
  bool frequent_found = false;  ///< SampleFrequentElement had a candidate
  VertexId frequent_label = kNoVertex;  ///< its label (kNoVertex if none)
  double modeled_seconds = 0;           ///< distributed runs: pre-pass time
};

/// What happened in one LACC iteration (drives Figure 7 and Table I).
struct IterationRecord {
  int iteration = 0;
  std::uint64_t active_vertices = 0;     ///< vertices processed this iteration
  std::uint64_t converged_vertices = 0;  ///< total vertices in converged comps
  std::uint64_t cond_hooks = 0;          ///< trees hooked conditionally
  std::uint64_t uncond_hooks = 0;        ///< trees hooked unconditionally
  std::uint64_t star_vertices = 0;       ///< star vertices after the iteration
  double modeled_seconds = 0;            ///< distributed runs: this
                                         ///< iteration's modeled time
};

/// Result of a connected-components run.
struct CcResult {
  std::vector<VertexId> parent;  ///< parent[v] = component root of v
  int iterations = 0;
  std::vector<IterationRecord> trace;
  PrepassStats prepass;  ///< sampling pre-pass attribution (if enabled)
};

/// Flatten pre-pass stats into (name, value) pairs for the metrics JSON
/// "prepass" block.  Empty when the pre-pass did not run, so callers can
/// assign it to obs::RunRecord::prepass unconditionally.
std::vector<std::pair<std::string, double>> prepass_scalars(
    const PrepassStats& stats);

/// Number of distinct roots in a parent vector.
std::uint64_t count_components(const std::vector<VertexId>& parent);

/// Sizes of all components, largest first.
std::vector<std::uint64_t> component_sizes(const std::vector<VertexId>& parent);

/// (canonical label, size) of every component, largest first; ties broken
/// by smaller label.  The label is the component's minimum vertex id
/// (normalize_labels form), so results are comparable across algorithms.
std::vector<std::pair<VertexId, std::uint64_t>> component_sizes_by_label(
    const std::vector<VertexId>& parent);

/// The k largest components as (canonical label, size) pairs, largest
/// first with ties broken by smaller label — the first k entries of
/// component_sizes_by_label without materializing the full sort.
std::vector<std::pair<VertexId, std::uint64_t>> top_k_components(
    const std::vector<VertexId>& parent, std::size_t k);

/// Histogram of component sizes by power-of-two bucket: pairs of
/// (bucket lower bound, number of components in [bound, 2*bound)).
std::vector<std::pair<std::uint64_t, std::uint64_t>> component_size_histogram(
    const std::vector<VertexId>& parent);

/// Relabel each vertex's component id as the minimum vertex id in its
/// component, making partitions from different algorithms comparable.
std::vector<VertexId> normalize_labels(const std::vector<VertexId>& parent);

/// True iff two parent vectors encode the same partition of vertices.
bool same_partition(const std::vector<VertexId>& a,
                    const std::vector<VertexId>& b);

}  // namespace lacc::core
