#include "dist/dist_mat.hpp"

#include <algorithm>
#include <tuple>

#include "support/error.hpp"

namespace lacc::dist {

// Routed nonzeros travel as CscCoord (declared in the header so the
// streaming delta store shares the representation and ordering).
using Entry = CscCoord;

DistCsc::DistCsc(ProcGrid& grid, const graph::EdgeList& el)
    : n_(el.n),
      q_(grid.q()),
      owner_rank_(grid.rank()),
      part_(el.n, static_cast<std::uint64_t>(grid.size())) {
  const auto q64 = static_cast<std::uint64_t>(q_);
  row_begin_ = part_.begin(static_cast<std::uint64_t>(grid.my_row()) * q64);
  row_end_ = part_.end(static_cast<std::uint64_t>(grid.my_row() + 1) * q64 - 1);
  col_begin_ = part_.begin(static_cast<std::uint64_t>(grid.my_col()) * q64);
  col_end_ = part_.end(static_cast<std::uint64_t>(grid.my_col() + 1) * q64 - 1);

  auto& world = grid.world();

  // Each rank symmetrizes its slice of the edge list and buckets the
  // resulting directed entries by owning block.
  const BlockPartition edge_slice(el.edges.size(),
                                  static_cast<std::uint64_t>(world.size()));
  const auto lo = edge_slice.begin(static_cast<std::uint64_t>(world.rank()));
  const auto hi = edge_slice.end(static_cast<std::uint64_t>(world.rank()));

  std::vector<std::vector<Entry>> bucket(static_cast<std::size_t>(world.size()));
  auto route = [&](VertexId r, VertexId c) {
    LACC_CHECK_MSG(r < n_ && c < n_, "edge endpoint out of range");
    const int dest = grid.rank_of(grid_row_of(r), grid_col_of(c));
    bucket[static_cast<std::size_t>(dest)].push_back({r, c});
  };
  for (auto e = lo; e < hi; ++e) {
    const auto& edge = el.edges[e];
    if (edge.u == edge.v) continue;
    route(edge.u, edge.v);
    route(edge.v, edge.u);
  }
  world.charge_compute(static_cast<double>(2 * (hi - lo)));

  std::vector<Entry> send;
  std::vector<std::size_t> counts(static_cast<std::size_t>(world.size()));
  for (std::size_t d = 0; d < bucket.size(); ++d) {
    counts[d] = bucket[d].size();
    send.insert(send.end(), bucket[d].begin(), bucket[d].end());
  }
  std::vector<Entry> mine =
      world.alltoallv(send, counts, sim::AllToAllAlgo::kPairwise);

  std::sort(mine.begin(), mine.end());
  mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
  world.charge_compute(static_cast<double>(mine.size()) * 4);  // sort passes

  // DCSC build: one jc entry per nonempty column.
  for (std::size_t k = 0; k < mine.size(); ++k) {
    LACC_DCHECK(mine[k].row >= row_begin_ && mine[k].row < row_end_);
    LACC_DCHECK(mine[k].col >= col_begin_ && mine[k].col < col_end_);
    if (k == 0 || mine[k].col != mine[k - 1].col) {
      jc_.push_back(mine[k].col);
      cp_.push_back(ir_.size());
    }
    ir_.push_back(mine[k].row);
  }
  cp_.push_back(ir_.size());
  if (jc_.empty()) cp_.assign(1, 0);

  global_nnz_ = world.allreduce(static_cast<EdgeId>(ir_.size()),
                                [](EdgeId a, EdgeId b) { return a + b; });
}

void DistCsc::merge_delta(ProcGrid& grid, const std::vector<CscCoord>& delta) {
  check::fence_block_access(owner_rank_, "DistCsc");
  auto& world = grid.world();
#ifndef NDEBUG
  for (std::size_t k = 0; k < delta.size(); ++k) {
    LACC_DCHECK(delta[k].row >= row_begin_ && delta[k].row < row_end_);
    LACC_DCHECK(delta[k].col >= col_begin_ && delta[k].col < col_end_);
    LACC_DCHECK(k == 0 || delta[k - 1] < delta[k]);
  }
#endif

  std::vector<VertexId> jc;
  std::vector<std::size_t> cp;
  std::vector<VertexId> ir;
  jc.reserve(jc_.size());
  cp.reserve(cp_.size());
  ir.reserve(ir_.size() + delta.size());
  const auto push = [&](const CscCoord& e) {
    if (jc.empty() || jc.back() != e.col) {
      jc.push_back(e.col);
      cp.push_back(ir.size());
    }
    ir.push_back(e.row);
  };

  // Linear merge of the existing entries (walked in place through jc_/cp_/
  // ir_) with the sorted delta; duplicates keep the existing entry.
  std::size_t a_col = 0;  // index into jc_ of the column holding ir_[a_pos]
  std::size_t a_pos = 0;  // index into ir_
  const auto a_cur = [&]() -> CscCoord {
    while (a_pos >= cp_[a_col + 1]) ++a_col;
    return {ir_[a_pos], jc_[a_col]};
  };
  std::size_t d = 0;
  while (a_pos < ir_.size() || d < delta.size()) {
    if (a_pos >= ir_.size()) {
      push(delta[d++]);
    } else if (d >= delta.size()) {
      push(a_cur());
      ++a_pos;
    } else {
      const CscCoord a = a_cur();
      const auto cmp = a <=> delta[d];
      if (cmp == 0) ++d;  // already present
      if (cmp <= 0) {
        push(a);
        ++a_pos;
      } else {
        push(delta[d++]);
      }
    }
  }
  cp.push_back(ir.size());
  if (jc.empty()) cp.assign(1, 0);
  world.charge_compute(static_cast<double>(ir_.size() + delta.size()));

  jc_ = std::move(jc);
  cp_ = std::move(cp);
  ir_ = std::move(ir);
  global_nnz_ = world.allreduce(static_cast<EdgeId>(ir_.size()),
                                [](EdgeId a, EdgeId b) { return a + b; });
}

}  // namespace lacc::dist
