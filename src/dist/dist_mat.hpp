// 2D block-distributed pattern matrix in DCSC form.
//
// Block (i, j) of the q x q grid holds rows R_i x columns C_j, where R_i
// and C_j are unions of q consecutive vector chunks — the alignment that
// lets SpMV gather its input inside column communicators and reduce-scatter
// its output inside row communicators (Section V-A).  LACC's semiring is
// (Select2nd, min), so the matrix carries structure only: local blocks are
// doubly-compressed sparse columns with no numerical values, exactly like
// CombBLAS's DCSC for boolean adjacency matrices.
#pragma once

#include <span>
#include <tuple>
#include <vector>

#include "dist/grid.hpp"
#include "graph/edge_list.hpp"
#include "support/checking.hpp"
#include "support/partition.hpp"
#include "support/types.hpp"

namespace lacc::dist {

/// One directed nonzero of the pattern matrix, in the column-major order
/// DCSC construction wants (columns contiguous).  Ingestion routes these to
/// block owners; the streaming delta store (src/stream) accumulates them as
/// sorted runs between compactions.
struct CscCoord {
  VertexId row = 0;
  VertexId col = 0;
  friend bool operator==(const CscCoord&, const CscCoord&) = default;
  friend auto operator<=>(const CscCoord& a, const CscCoord& b) {
    return std::tie(a.col, a.row) <=> std::tie(b.col, b.row);
  }
};

/// One rank's block of the distributed adjacency matrix.
class DistCsc {
 public:
  /// Collective over the grid's world communicator.  Every rank reads its
  /// slice of `el` (the generator output is shared memory here; on a real
  /// cluster each rank would generate or read its slice), symmetrizes it,
  /// and routes entries to block owners with an all-to-all — the same
  /// ingestion pattern as distributed Graph500 construction.
  DistCsc(ProcGrid& grid, const graph::EdgeList& el);

  VertexId n() const { return n_; }
  EdgeId local_nnz() const { return ir_.size(); }
  EdgeId global_nnz() const { return global_nnz_; }

  /// Vector-chunk partition the matrix blocks are aligned to.
  const BlockPartition& chunk_partition() const { return part_; }

  VertexId row_begin() const { return row_begin_; }
  VertexId row_end() const { return row_end_; }
  VertexId col_begin() const { return col_begin_; }
  VertexId col_end() const { return col_end_; }

  /// Global ids of this block's nonempty columns, ascending.
  const std::vector<VertexId>& col_ids() const {
    check::fence_block_access(owner_rank_, "DistCsc");
    return jc_;
  }

  /// Global row ids (ascending) of nonempty column index `ci` (an index
  /// into col_ids(), not a global column id).
  std::span<const VertexId> col_rows(std::size_t ci) const {
    check::fence_block_access(owner_rank_, "DistCsc");
    return {ir_.data() + cp_[ci], ir_.data() + cp_[ci + 1]};
  }

  /// Grid row that owns matrix row g / grid column that owns column g.
  int grid_row_of(VertexId g) const {
    return static_cast<int>(part_.owner(g) / static_cast<std::uint64_t>(q_));
  }
  int grid_col_of(VertexId g) const { return grid_row_of(g); }

  /// Collective: merge a batch of new nonzeros into the DCSC arrays without
  /// rebuilding the matrix (the streaming append path).  `delta` is this
  /// rank's share — coordinates inside this block, column-major sorted and
  /// unique, as produced by stream::DeltaStore::drain_merged().  Entries
  /// already present are dropped (the matrix is a pattern, so re-insertion
  /// is a no-op); global_nnz() is re-reduced across ranks.  Cost is one
  /// linear merge over old + new entries.
  void merge_delta(ProcGrid& grid, const std::vector<CscCoord>& delta);

 private:
  VertexId n_ = 0;
  int q_ = 1;
  int owner_rank_ = -1;  ///< world rank owning this block (fencing)
  BlockPartition part_;
  VertexId row_begin_ = 0, row_end_ = 0;
  VertexId col_begin_ = 0, col_end_ = 0;
  EdgeId global_nnz_ = 0;

  std::vector<VertexId> jc_;     // nonempty column ids (global)
  std::vector<std::size_t> cp_;  // column pointers into ir_
  std::vector<VertexId> ir_;     // row ids (global)
};

}  // namespace lacc::dist
