// Distributed GraphBLAS-style vector.
//
// Two layouts are supported:
//
//  * kBlockAligned (default, CombBLAS's layout): the global index space
//    [0, n) is split into p near-equal chunks (BlockPartition); chunk
//    c = j*q + i lives on grid rank (i, j) — the "column-major aligned"
//    layout that makes the chunks needed by processor column j exactly the
//    ones owned by the ranks of column j, so SpMV's first phase is a plain
//    allgather within column communicators (Section V of the paper).
//
//  * kCyclic (the paper's future-work proposal): element g lives on world
//    rank g mod p.  Hooking concentrates parents on small vertex ids, so a
//    block layout funnels extract/assign traffic onto low-ranked processes
//    (Figure 3); the cyclic layout spreads those ids evenly.  The price is
//    that SpMV's alignment breaks: cyclic vectors must be realigned to the
//    block layout (an all-to-all) before and after every mxv — exactly the
//    trade-off the paper's conclusion sketches.
//
// Local storage is dense-with-presence-bitmap for simplicity; every
// communication path extracts stored tuples first, so modeled costs follow
// the *stored element counts*, exactly like CombBLAS's sparse vectors.
#pragma once

#include <utility>
#include <vector>

#include "dist/grid.hpp"
#include "support/bitvector.hpp"
#include "support/checking.hpp"
#include "support/error.hpp"
#include "support/partition.hpp"
#include "support/types.hpp"

namespace lacc::dist {

/// (global index, value) tuple of a stored element.
template <typename T>
struct Tuple {
  VertexId index;
  T value;
  friend bool operator==(const Tuple&, const Tuple&) = default;
};

/// Vector data layout (see file comment).
enum class Layout { kBlockAligned, kCyclic };

/// One rank's share of a distributed vector of global size n.
template <typename T>
class DistVec {
 public:
  DistVec(const ProcGrid& grid, VertexId n, Layout layout = Layout::kBlockAligned)
      : n_(n),
        layout_(layout),
        p_(static_cast<std::uint64_t>(grid.size())),
        rank_(static_cast<std::uint64_t>(grid.rank())),
        part_(n, static_cast<std::uint64_t>(grid.size())),
        chunk_(static_cast<std::uint64_t>(grid.my_col()) *
                   static_cast<std::uint64_t>(grid.q()) +
               static_cast<std::uint64_t>(grid.my_row())),
        begin_(part_.begin(chunk_)),
        end_(part_.end(chunk_)) {
    const VertexId count =
        layout_ == Layout::kBlockAligned
            ? end_ - begin_
            : (n_ > rank_ ? (n_ - rank_ - 1) / p_ + 1 : 0);
    values_.resize(count);
    present_ = BitVector(count, false);
  }

  VertexId global_size() const { return n_; }
  Layout layout() const { return layout_; }
  /// First owned global index (block layout only).
  VertexId begin() const {
    LACC_DCHECK(layout_ == Layout::kBlockAligned);
    return begin_;
  }
  /// One past the last owned global index (block layout only).
  VertexId end() const {
    LACC_DCHECK(layout_ == Layout::kBlockAligned);
    return end_;
  }
  VertexId local_size() const { return static_cast<VertexId>(values_.size()); }
  VertexId local_nvals() const { return nvals_; }
  const BlockPartition& partition() const { return part_; }
  std::uint64_t chunk() const { return chunk_; }

  /// Global index of local slot k.
  VertexId global_at(VertexId k) const {
    return layout_ == Layout::kBlockAligned ? begin_ + k : rank_ + k * p_;
  }

  /// Local slot of an owned global index (inverse of global_at).
  VertexId local_slot(VertexId g) const {
    LACC_DCHECK(owns(g));
    return slot(g);
  }

  bool owns(VertexId g) const {
    return layout_ == Layout::kBlockAligned ? (g >= begin_ && g < end_)
                                            : (g < n_ && g % p_ == rank_);
  }

  /// Grid-agnostic owner chunk of a global index (block layout).
  std::uint64_t owner_chunk(VertexId g) const { return part_.owner(g); }

  bool has(VertexId g) const {
    fence();
    LACC_DCHECK(owns(g));
    return present_.get(slot(g));
  }
  T at(VertexId g) const {
    LACC_CHECK_MSG(has(g), "reading unstored element " << g);
    return values_[slot(g)];
  }
  T get_or(VertexId g, T fallback) const {
    return has(g) ? values_[slot(g)] : fallback;
  }
  void set(VertexId g, T v) {
    fence();
    LACC_DCHECK(owns(g));
    const auto k = slot(g);
    if (!present_.get(k)) {
      present_.set(k, true);
      ++nvals_;
    }
    values_[k] = v;
  }
  void remove(VertexId g) {
    fence();
    LACC_DCHECK(owns(g));
    const auto k = slot(g);
    if (present_.get(k)) {
      present_.set(k, false);
      --nvals_;
    }
  }
  void clear() {
    fence();
    present_.fill(false);
    nvals_ = 0;
  }
  void fill(T v) {
    fence();
    for (auto& x : values_) x = v;
    present_.fill(true);
    nvals_ = local_size();
  }

  /// Stored tuples of the local share, in global-index order.
  std::vector<Tuple<T>> tuples() const {
    std::vector<Tuple<T>> out;
    tuples_into(out);
    return out;
  }

  /// tuples() appending into a caller-owned (recycled) buffer, which is
  /// cleared first; capacity is reused across calls.
  void tuples_into(std::vector<Tuple<T>>& out) const {
    out.clear();
    out.reserve(nvals_);
    for_each_stored([&](VertexId g, const T& v) { out.push_back({g, v}); });
  }

  /// Visit stored elements in ascending index order without materializing
  /// tuples: fn(global index, value).  Cost is O(local words + stored), so
  /// a nearly-empty vector is walked in ~local_size/64 word tests rather
  /// than local_size presence probes.  fn may remove the element it is
  /// visiting (each word's bits are snapshot before its elements are
  /// dispatched), but must not add elements.
  template <typename Fn>
  void for_each_stored(Fn&& fn) const {
    fence();
    for (std::size_t wi = 0; wi < present_.word_count(); ++wi) {
      std::uint64_t word = present_.word(wi);
      while (word != 0) {
        const auto bit = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        const auto k = static_cast<VertexId>((wi << 6) + bit);
        fn(global_at(k), values_[k]);
      }
    }
  }

  /// Iterate owned global indices: `for (VertexId g : v.owned())`.
  class OwnedRange {
   public:
    class Iterator {
     public:
      Iterator(const DistVec* v, VertexId k) : v_(v), k_(k) {}
      VertexId operator*() const { return v_->global_at(k_); }
      Iterator& operator++() {
        ++k_;
        return *this;
      }
      bool operator!=(const Iterator& other) const { return k_ != other.k_; }

     private:
      const DistVec* v_;
      VertexId k_;
    };
    explicit OwnedRange(const DistVec* v) : v_(v) {}
    Iterator begin() const { return {v_, 0}; }
    Iterator end() const { return {v_, v_->local_size()}; }

   private:
    const DistVec* v_;
  };
  OwnedRange owned() const { return OwnedRange(this); }

 private:
  VertexId slot(VertexId g) const {
    return layout_ == Layout::kBlockAligned ? g - begin_ : g / p_;
  }

  /// Block fence (LACC_CHECK=2): only the owning virtual rank may touch this
  /// local share outside a collective.  No-op outside run_spmd.
  void fence() const {
    check::fence_block_access(static_cast<int>(rank_), "DistVec");
  }

  VertexId n_;
  Layout layout_;
  std::uint64_t p_;
  std::uint64_t rank_;
  BlockPartition part_;
  std::uint64_t chunk_;
  VertexId begin_;
  VertexId end_;
  std::vector<T> values_;
  BitVector present_;
  VertexId nvals_ = 0;
};

/// World rank owning chunk c under the column-major-aligned layout.
inline int chunk_owner_rank(const ProcGrid& grid, std::uint64_t c) {
  const auto q = static_cast<std::uint64_t>(grid.q());
  const int i = static_cast<int>(c % q);
  const int j = static_cast<int>(c / q);
  return grid.rank_of(i, j);
}

/// World rank owning global vector index g under the vector's layout.
template <typename T>
int owner_rank(const ProcGrid& grid, const DistVec<T>& v, VertexId g) {
  if (v.layout() == Layout::kCyclic)
    return static_cast<int>(g % static_cast<std::uint64_t>(grid.size()));
  return chunk_owner_rank(grid, v.partition().owner(g));
}

}  // namespace lacc::dist
