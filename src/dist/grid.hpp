// Square 2D processor grid, mirroring CombBLAS's matrix distribution.
//
// World rank r sits at grid position (row = r / q, col = r % q) on a q x q
// grid.  Row and column sub-communicators carry the two communication
// phases of distributed SpMV (Section V-A): an allgather within processor
// columns followed by a reduce-scatter within processor rows.
#pragma once

#include "sim/comm.hpp"
#include "support/arena.hpp"
#include "support/error.hpp"

namespace lacc::dist {

/// A rank's view of the process grid.
class ProcGrid {
 public:
  /// Collective: every rank of `world` must call this.  The world size must
  /// be a perfect square (the paper: "we only used square process grids
  /// because rectangular grids are not supported in CombBLAS").
  explicit ProcGrid(sim::Comm world)
      : world_(world),
        q_(isqrt(world.size())),
        my_row_(world.rank() / q_),
        my_col_(world.rank() % q_),
        row_comm_(world.split(my_row_, my_col_)),
        col_comm_(world.split(my_col_, my_row_)) {
    LACC_CHECK_MSG(q_ * q_ == world.size(),
                   "process count " << world.size() << " is not a square");
  }

  sim::Comm& world() { return world_; }
  sim::Comm& row_comm() { return row_comm_; }  ///< ranks sharing my grid row
  sim::Comm& col_comm() { return col_comm_; }  ///< ranks sharing my grid column

  int q() const { return q_; }          ///< grid side length
  int size() const { return q_ * q_; }
  int my_row() const { return my_row_; }
  int my_col() const { return my_col_; }
  int rank() const { return world_.rank(); }

  /// World rank of grid position (i, j).
  int rank_of(int i, int j) const { return i * q_ + j; }

  /// World rank of my transpose partner (j, i) — the realignment exchange
  /// after the row-wise reduce-scatter of SpMV.
  int transpose_rank() const { return rank_of(my_col_, my_row_); }

  /// This rank's workspace arena: recycled scratch for the communication
  /// kernels.  Lives as long as the grid, so buffers amortize across every
  /// mxv/scatter of an algorithm run (see support/arena.hpp for the
  /// ownership rules).
  support::WorkspaceArena& arena() { return arena_; }

 private:
  static int isqrt(int p) {
    int q = 0;
    while ((q + 1) * (q + 1) <= p) ++q;
    return q;
  }

  sim::Comm world_;
  int q_;
  int my_row_;
  int my_col_;
  sim::Comm row_comm_;
  sim::Comm col_comm_;
  support::WorkspaceArena arena_;
};

}  // namespace lacc::dist
