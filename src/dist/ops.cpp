#include "dist/ops.hpp"

#include <algorithm>

namespace lacc::dist {

namespace {

constexpr VertexId kAbsent = kNoVertex;  // "no contribution" marker

}  // namespace

DistVec<VertexId> mxv_select2nd(ProcGrid& grid, const DistCsc& A,
                                const DistVec<VertexId>& x,
                                const MaskSpec& mask, const CommTuning& tuning,
                                SemiringAdd add) {
  // Real values are < n, so kAbsent doubles as "slot untouched"; combining
  // treats it as the identity of either semiring addition.
  const auto combine = [add](VertexId a, VertexId b) {
    if (a == kAbsent) return b;
    if (b == kAbsent) return a;
    return add == SemiringAdd::kMin ? std::min(a, b) : std::max(a, b);
  };
  LACC_CHECK(x.global_size() == A.n());
  LACC_CHECK_MSG(x.layout() == Layout::kBlockAligned,
                 "mxv requires block-aligned input; realign with to_layout");
  auto& world = grid.world();
  const auto q = static_cast<std::uint64_t>(grid.q());
  const BlockPartition& part = A.chunk_partition();

  const std::uint64_t stored = global_nvals(grid, x);
  const bool dense_path =
      tuning.force_dense ||
      static_cast<double>(stored) >
          tuning.dense_threshold * static_cast<double>(A.n());

  // ---- Phase 1: gather the input fragment within the processor column.
  // Column-comm rank k holds chunk j*q + k, so the concatenation is the
  // contiguous column range C_j in ascending global order.
  const std::vector<Tuple<VertexId>> gathered =
      grid.col_comm().allgatherv(x.tuples());

  // ---- Local multiply into a row-range accumulator.
  const VertexId rb = A.row_begin(), re = A.row_end();
  const VertexId cb = A.col_begin();
  std::vector<VertexId> acc(re - rb, kAbsent);
  std::vector<VertexId> touched;  // sparse path keeps the support explicit
  double flops = 0;

  auto accumulate = [&](VertexId row, VertexId value) {
    auto& slot = acc[row - rb];
    if (slot == kAbsent) touched.push_back(row);
    slot = combine(slot, value);
  };

  if (dense_path) {
    std::vector<VertexId> xd(A.col_end() - cb, kAbsent);
    for (const auto& t : gathered) xd[t.index - cb] = t.value;
    const auto& cols = A.col_ids();
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      const VertexId xv = xd[cols[ci] - cb];
      if (xv == kAbsent) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, xv);
      flops += static_cast<double>(A.col_rows(ci).size());
    }
    flops += static_cast<double>(gathered.size());
  } else {
    // SpMSpV: merge-join stored input entries with the nonempty columns.
    const auto& cols = A.col_ids();
    std::size_t ci = 0;
    for (const auto& t : gathered) {
      while (ci < cols.size() && cols[ci] < t.index) ++ci;
      if (ci == cols.size()) break;
      if (cols[ci] != t.index) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, t.value);
      flops += static_cast<double>(A.col_rows(ci).size()) + 1;
    }
  }
  world.charge_compute(flops);

  // ---- Phase 2: combine partial results within the processor row.  The
  // paper: SpMV uses a dense reduce-scatter; SpMSpV an irregular all-to-all
  // with a local merge, falling back to dense when the unreduced output
  // stops being sparse.
  // The reduce strategy is a collective choice: every rank of the row must
  // take the same branch, so the per-rank density votes are OR-reduced.
  const std::uint8_t dense_vote =
      (dense_path || touched.size() * 4 > acc.size()) ? 1 : 0;
  const bool dense_reduce =
      grid.row_comm().allreduce(dense_vote, [](std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a | b);
      }) != 0;
  std::vector<Tuple<VertexId>> piece;  // my chunk of the reduced output
  const auto my_piece_chunk =
      static_cast<std::uint64_t>(grid.my_row()) * q +
      static_cast<std::uint64_t>(grid.my_col());

  if (dense_reduce) {
    const BlockPartition row_split(acc.size(), q);
    const std::vector<VertexId> reduced =
        grid.row_comm().reduce_scatter_block(acc, combine, row_split);
    const VertexId piece_begin = part.begin(my_piece_chunk);
    for (std::size_t k = 0; k < reduced.size(); ++k)
      if (reduced[k] != kAbsent)
        piece.push_back({piece_begin + k, reduced[k]});
  } else {
    const auto my_row_first_chunk = static_cast<std::uint64_t>(grid.my_row()) * q;
    std::vector<std::vector<Tuple<VertexId>>> bucket(q);
    std::sort(touched.begin(), touched.end());
    for (const VertexId r : touched) {
      const auto k = part.owner(r) - my_row_first_chunk;
      bucket[k].push_back({r, acc[r - rb]});
    }
    std::vector<Tuple<VertexId>> send;
    std::vector<std::size_t> counts(q, 0);
    for (std::uint64_t k = 0; k < q; ++k) {
      counts[k] = bucket[k].size();
      send.insert(send.end(), bucket[k].begin(), bucket[k].end());
    }
    const auto received =
        grid.row_comm().alltoallv(send, counts, tuning.alltoall);
    // Merge duplicates (same row from several column blocks) with min.
    std::vector<Tuple<VertexId>> merged(received);
    std::sort(merged.begin(), merged.end(),
              [](const Tuple<VertexId>& a, const Tuple<VertexId>& b) {
                return a.index < b.index;
              });
    for (const auto& t : merged) {
      if (!piece.empty() && piece.back().index == t.index)
        piece.back().value = combine(piece.back().value, t.value);
      else
        piece.push_back(t);
    }
    world.charge_compute(static_cast<double>(received.size()) * 3);
  }

  // ---- Phase 3: transpose realignment.  Rank (i, j) holds chunk i*q + j,
  // whose canonical home is rank (j, i).
  const std::vector<Tuple<VertexId>> realigned =
      world.sendrecv(piece, grid.transpose_rank(), grid.transpose_rank());

  DistVec<VertexId> out(grid, A.n());
  for (const auto& t : realigned) {
    LACC_DCHECK(out.owns(t.index));
    if (mask.allows(t.index)) out.set(t.index, t.value);
  }
  world.charge_compute(static_cast<double>(realigned.size()));
  return out;
}

std::uint64_t scatter_assign_min(ProcGrid& grid, DistVec<VertexId>& w,
                                 std::vector<Tuple<VertexId>> pairs,
                                 const CommTuning& tuning, bool only_if_root) {
  auto& world = grid.world();
  const auto p = static_cast<std::size_t>(world.size());

  // Sender-side combining: duplicate targets reduce to their min before
  // anything is shipped (the receiver still reduces across senders).
  std::sort(pairs.begin(), pairs.end(),
            [](const Tuple<VertexId>& a, const Tuple<VertexId>& b) {
              return a.index < b.index || (a.index == b.index && a.value < b.value);
            });
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const Tuple<VertexId>& a, const Tuple<VertexId>& b) {
                            return a.index == b.index;
                          }),
              pairs.end());

  std::vector<std::vector<Tuple<VertexId>>> bucket(p);
  for (const auto& t : pairs)
    bucket[static_cast<std::size_t>(owner_rank(grid, w, t.index))].push_back(t);
  std::vector<Tuple<VertexId>> send;
  std::vector<std::size_t> counts(p, 0);
  for (std::size_t d = 0; d < p; ++d) {
    counts[d] = bucket[d].size();
    send.insert(send.end(), bucket[d].begin(), bucket[d].end());
  }
  std::vector<Tuple<VertexId>> mine =
      world.alltoallv(send, counts, tuning.alltoall);

  // Deduplicate targets with min, then overwrite (GraphBLAS assign).
  std::sort(mine.begin(), mine.end(),
            [](const Tuple<VertexId>& a, const Tuple<VertexId>& b) {
              return a.index < b.index || (a.index == b.index && a.value < b.value);
            });
  std::uint64_t changed = 0;
  for (std::size_t k = 0; k < mine.size(); ++k) {
    if (k > 0 && mine[k].index == mine[k - 1].index) continue;
    const VertexId t = mine[k].index;
    LACC_CHECK_MSG(w.owns(t), "assign target " << t << " misrouted");
    if (only_if_root && (!w.has(t) || w.at(t) != t)) continue;
    if (!w.has(t) || w.at(t) != mine[k].value) ++changed;
    w.set(t, mine[k].value);
  }
  world.charge_compute(static_cast<double>(mine.size()) * 3);
  return world.allreduce(changed,
                         [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

void scatter_set(ProcGrid& grid, DistVec<std::uint8_t>& w,
                 std::vector<VertexId> targets, std::uint8_t value,
                 const CommTuning& tuning) {
  auto& world = grid.world();
  const auto p = static_cast<std::size_t>(world.size());

  // Duplicate targets (e.g. many children marking one root) ship once.
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  std::vector<std::vector<VertexId>> bucket(p);
  for (const VertexId t : targets)
    bucket[static_cast<std::size_t>(owner_rank(grid, w, t))].push_back(t);
  std::vector<VertexId> send;
  std::vector<std::size_t> counts(p, 0);
  for (std::size_t d = 0; d < p; ++d) {
    counts[d] = bucket[d].size();
    send.insert(send.end(), bucket[d].begin(), bucket[d].end());
  }
  const std::vector<VertexId> mine =
      world.alltoallv(send, counts, tuning.alltoall);
  for (const VertexId t : mine) {
    LACC_CHECK_MSG(w.owns(t), "scatter_set target " << t << " misrouted");
    w.set(t, value);
  }
  world.charge_compute(static_cast<double>(mine.size()));
}



namespace {

/// Fused accumulator for the min+max kernel; mn == kAbsent marks "empty".
struct MinMax {
  VertexId mn;
  VertexId mx;
};

struct MmTuple {
  VertexId index;
  MinMax v;
};

MinMax mm_combine(MinMax a, MinMax b) {
  if (a.mn == kAbsent) return b;
  if (b.mn == kAbsent) return a;
  return {std::min(a.mn, b.mn), std::max(a.mx, b.mx)};
}

}  // namespace

std::pair<DistVec<VertexId>, DistVec<VertexId>> mxv_select2nd_minmax(
    ProcGrid& grid, const DistCsc& A, const DistVec<VertexId>& x,
    const MaskSpec& mask, const CommTuning& tuning) {
  LACC_CHECK(x.global_size() == A.n());
  LACC_CHECK_MSG(x.layout() == Layout::kBlockAligned,
                 "mxv requires block-aligned input; realign with to_layout");
  auto& world = grid.world();
  const auto q = static_cast<std::uint64_t>(grid.q());
  const BlockPartition& part = A.chunk_partition();

  const std::uint64_t stored = global_nvals(grid, x);
  const bool dense_path =
      tuning.force_dense ||
      static_cast<double>(stored) >
          tuning.dense_threshold * static_cast<double>(A.n());

  // Phase 1: one shared input gather within the processor column.
  const std::vector<Tuple<VertexId>> gathered =
      grid.col_comm().allgatherv(x.tuples());

  const VertexId rb = A.row_begin(), re = A.row_end();
  const VertexId cb = A.col_begin();
  std::vector<MinMax> acc(re - rb, MinMax{kAbsent, kAbsent});
  std::vector<VertexId> touched;
  double flops = 0;

  auto accumulate = [&](VertexId row, VertexId value) {
    auto& slot = acc[row - rb];
    if (slot.mn == kAbsent) touched.push_back(row);
    slot = mm_combine(slot, MinMax{value, value});
  };

  if (dense_path) {
    std::vector<VertexId> xd(A.col_end() - cb, kAbsent);
    for (const auto& t : gathered) xd[t.index - cb] = t.value;
    const auto& cols = A.col_ids();
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      const VertexId xv = xd[cols[ci] - cb];
      if (xv == kAbsent) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, xv);
      flops += static_cast<double>(A.col_rows(ci).size());
    }
    flops += static_cast<double>(gathered.size());
  } else {
    const auto& cols = A.col_ids();
    std::size_t ci = 0;
    for (const auto& t : gathered) {
      while (ci < cols.size() && cols[ci] < t.index) ++ci;
      if (ci == cols.size()) break;
      if (cols[ci] != t.index) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, t.value);
      flops += static_cast<double>(A.col_rows(ci).size()) + 1;
    }
  }
  world.charge_compute(flops);

  const std::uint8_t dense_vote =
      (dense_path || touched.size() * 4 > acc.size()) ? 1 : 0;
  const bool dense_reduce =
      grid.row_comm().allreduce(dense_vote, [](std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a | b);
      }) != 0;
  std::vector<MmTuple> piece;
  const auto my_piece_chunk =
      static_cast<std::uint64_t>(grid.my_row()) * q +
      static_cast<std::uint64_t>(grid.my_col());

  if (dense_reduce) {
    const BlockPartition row_split(acc.size(), q);
    const std::vector<MinMax> reduced =
        grid.row_comm().reduce_scatter_block(acc, mm_combine, row_split);
    const VertexId piece_begin = part.begin(my_piece_chunk);
    for (std::size_t k = 0; k < reduced.size(); ++k)
      if (reduced[k].mn != kAbsent)
        piece.push_back({piece_begin + k, reduced[k]});
  } else {
    const auto my_row_first_chunk =
        static_cast<std::uint64_t>(grid.my_row()) * q;
    std::vector<std::vector<MmTuple>> bucket(q);
    std::sort(touched.begin(), touched.end());
    for (const VertexId r : touched) {
      const auto k = part.owner(r) - my_row_first_chunk;
      bucket[k].push_back({r, acc[r - rb]});
    }
    std::vector<MmTuple> send;
    std::vector<std::size_t> counts(q, 0);
    for (std::uint64_t k = 0; k < q; ++k) {
      counts[k] = bucket[k].size();
      send.insert(send.end(), bucket[k].begin(), bucket[k].end());
    }
    const auto received =
        grid.row_comm().alltoallv(send, counts, tuning.alltoall);
    std::vector<MmTuple> merged(received);
    std::sort(merged.begin(), merged.end(),
              [](const MmTuple& a, const MmTuple& b) { return a.index < b.index; });
    for (const auto& t : merged) {
      if (!piece.empty() && piece.back().index == t.index)
        piece.back().v = mm_combine(piece.back().v, t.v);
      else
        piece.push_back(t);
    }
    world.charge_compute(static_cast<double>(received.size()) * 3);
  }

  const std::vector<MmTuple> realigned =
      world.sendrecv(piece, grid.transpose_rank(), grid.transpose_rank());

  std::pair<DistVec<VertexId>, DistVec<VertexId>> out{
      DistVec<VertexId>(grid, A.n()), DistVec<VertexId>(grid, A.n())};
  for (const auto& t : realigned) {
    LACC_DCHECK(out.first.owns(t.index));
    if (mask.allows(t.index)) {
      out.first.set(t.index, t.v.mn);
      out.second.set(t.index, t.v.mx);
    }
  }
  world.charge_compute(static_cast<double>(realigned.size()));
  return out;
}


std::uint64_t scatter_accumulate_min(ProcGrid& grid, DistVec<VertexId>& w,
                                     std::vector<Tuple<VertexId>> pairs,
                                     const CommTuning& tuning) {
  auto& world = grid.world();
  const auto p = static_cast<std::size_t>(world.size());

  // Sender-side combining, identical to scatter_assign_min.
  std::sort(pairs.begin(), pairs.end(),
            [](const Tuple<VertexId>& a, const Tuple<VertexId>& b) {
              return a.index < b.index ||
                     (a.index == b.index && a.value < b.value);
            });
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const Tuple<VertexId>& a, const Tuple<VertexId>& b) {
                            return a.index == b.index;
                          }),
              pairs.end());

  std::vector<std::vector<Tuple<VertexId>>> bucket(p);
  for (const auto& t : pairs)
    bucket[static_cast<std::size_t>(owner_rank(grid, w, t.index))].push_back(t);
  std::vector<Tuple<VertexId>> send;
  std::vector<std::size_t> counts(p, 0);
  for (std::size_t d = 0; d < p; ++d) {
    counts[d] = bucket[d].size();
    send.insert(send.end(), bucket[d].begin(), bucket[d].end());
  }
  const std::vector<Tuple<VertexId>> mine =
      world.alltoallv(send, counts, tuning.alltoall);

  std::uint64_t changed = 0;
  for (const auto& t : mine) {
    LACC_CHECK_MSG(w.owns(t.index), "accumulate target " << t.index
                                                         << " misrouted");
    if (!w.has(t.index) || t.value < w.at(t.index)) {
      w.set(t.index, t.value);
      ++changed;
    }
  }
  world.charge_compute(static_cast<double>(mine.size()));
  return world.allreduce(changed,
                         [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

}  // namespace lacc::dist
