#include "dist/ops.hpp"

#include <algorithm>

#include "support/sort.hpp"

namespace lacc::dist {

namespace {

constexpr VertexId kAbsent = kNoVertex;  // "no contribution" marker

/// Sort tuples by (index, value) without allocating: two stable radix
/// passes (secondary key first) over an arena scratch buffer, equivalent to
/// one comparator sort on the pair.  Ids are < n, bounding the key bytes.
void sort_by_index_value(std::vector<Tuple<VertexId>>& items,
                         std::vector<Tuple<VertexId>>& scratch, VertexId n) {
  radix_sort_by(items, scratch, [](const Tuple<VertexId>& t) { return t.value; },
                n);
  radix_sort_by(items, scratch, [](const Tuple<VertexId>& t) { return t.index; },
                n);
}

/// Two-pass counting sort of `items` into a single flat send buffer grouped
/// by destination: `counts[d]` many elements for destination d, in input
/// order within each group (exactly the layout the old vector-of-vector
/// buckets produced, without the p per-call allocations).  `counts` and
/// `send` come from the caller's arena; `cursor` is scratch.
template <typename T, typename OwnerFn>
void bucket_by_owner(const std::vector<T>& items, std::size_t p,
                     OwnerFn&& owner, std::vector<std::size_t>& counts,
                     std::vector<std::size_t>& cursor, std::vector<T>& send) {
  counts.assign(p, 0);
  for (const auto& t : items) ++counts[owner(t)];
  cursor.assign(p, 0);
  for (std::size_t d = 1; d < p; ++d) cursor[d] = cursor[d - 1] + counts[d - 1];
  send.resize(items.size());
  for (const auto& t : items) send[cursor[owner(t)]++] = t;
}

/// Advance to the first position of sorted `cols` holding a value >= key,
/// starting from `ci`: exponential probing brackets the target, a binary
/// search pins it.  O(log gap) per query where the plain linear advance of
/// a two-pointer merge is O(gap) — with a sparse input vector nearly every
/// nonempty column is skipped, and walking them one by one dominated the
/// kernel's wall time.  Queries are monotone, so a full pass stays O(cols)
/// even when the input is dense-ish.
std::size_t gallop_to(const std::vector<VertexId>& cols, std::size_t ci,
                      VertexId key) {
  std::size_t step = 1;
  std::size_t hi = ci;
  while (hi < cols.size() && cols[hi] < key) {
    ci = hi + 1;
    hi += step;
    step <<= 1;
  }
  return static_cast<std::size_t>(
      std::lower_bound(cols.begin() + static_cast<std::ptrdiff_t>(ci),
                       cols.begin() +
                           static_cast<std::ptrdiff_t>(std::min(hi, cols.size())),
                       key) -
      cols.begin());
}

}  // namespace

DistVec<VertexId> mxv_select2nd(ProcGrid& grid, const DistCsc& A,
                                const DistVec<VertexId>& x,
                                const MaskSpec& mask, const CommTuning& tuning,
                                SemiringAdd add) {
  // Real values are < n, so kAbsent doubles as "slot untouched"; combining
  // treats it as the identity of either semiring addition.
  const auto combine = [add](VertexId a, VertexId b) {
    if (a == kAbsent) return b;
    if (b == kAbsent) return a;
    return add == SemiringAdd::kMin ? std::min(a, b) : std::max(a, b);
  };
  LACC_CHECK(x.global_size() == A.n());
  LACC_CHECK_MSG(x.layout() == Layout::kBlockAligned,
                 "mxv requires block-aligned input; realign with to_layout");
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:mxv");
  auto& arena = grid.arena();
  const auto q = static_cast<std::uint64_t>(grid.q());
  const BlockPartition& part = A.chunk_partition();

  const std::uint64_t stored = global_nvals(grid, x);
  const bool dense_path =
      tuning.force_dense ||
      static_cast<double>(stored) >
          tuning.dense_threshold * static_cast<double>(A.n());

  // ---- Phase 1: gather the input fragment within the processor column.
  // Column-comm rank k holds chunk j*q + k, so the concatenation is the
  // contiguous column range C_j in ascending global order.
  auto& x_tuples = arena.buffer<Tuple<VertexId>>("mxv.x_tuples");
  x.tuples_into(x_tuples);
  auto& gathered = arena.buffer<Tuple<VertexId>>("mxv.gathered");
  grid.col_comm().allgatherv_into(x_tuples, gathered);

  // ---- Local multiply into a row-range accumulator.  `acc` is arena-
  // persistent with the invariant "all slots kAbsent between calls",
  // restored sparsely through `touched` below, so reacquiring it costs
  // nothing even when the active set is tiny.
  const VertexId rb = A.row_begin(), re = A.row_end();
  const VertexId cb = A.col_begin();
  auto& acc = arena.persistent<VertexId>("mxv.acc");
  if (acc.size() != static_cast<std::size_t>(re - rb))
    acc.assign(re - rb, kAbsent);
  // Presence bitmap over acc, all-zero between calls.  Walking its set bits
  // yields touched rows in ascending order for O(range/64 + stored) — the
  // order the downstream merge needs, without sorting the touched list.
  auto& bits = arena.persistent<std::uint64_t>("mxv.touch_bits");
  const std::size_t words = (acc.size() + 63) / 64;
  if (bits.size() != words) bits.assign(words, 0);
  std::size_t ntouched = 0;
  double flops = 0;

  auto accumulate = [&](VertexId row, VertexId value) {
    auto& slot = acc[row - rb];
    if (slot == kAbsent) {
      bits[(row - rb) >> 6] |= std::uint64_t{1} << ((row - rb) & 63);
      ++ntouched;
    }
    slot = combine(slot, value);
  };

  if (dense_path) {
    // `xd` shares the persistence trick: only the gathered positions are
    // written, and the same positions are wiped after the multiply.
    auto& xd = arena.persistent<VertexId>("mxv.xd");
    if (xd.size() != static_cast<std::size_t>(A.col_end() - cb))
      xd.assign(A.col_end() - cb, kAbsent);
    for (const auto& t : gathered) xd[t.index - cb] = t.value;
    const auto& cols = A.col_ids();
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      const VertexId xv = xd[cols[ci] - cb];
      if (xv == kAbsent) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, xv);
      flops += static_cast<double>(A.col_rows(ci).size());
    }
    flops += static_cast<double>(gathered.size());
    for (const auto& t : gathered) xd[t.index - cb] = kAbsent;
  } else {
    // SpMSpV: merge-join stored input entries with the nonempty columns.
    const auto& cols = A.col_ids();
    std::size_t ci = 0;
    for (const auto& t : gathered) {
      ci = gallop_to(cols, ci, t.index);
      if (ci == cols.size()) break;
      if (cols[ci] != t.index) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, t.value);
      flops += static_cast<double>(A.col_rows(ci).size()) + 1;
    }
  }
  world.charge_compute(flops);

  // ---- Phase 2: combine partial results within the processor row.  The
  // paper: SpMV uses a dense reduce-scatter; SpMSpV an irregular all-to-all
  // with a local merge, falling back to dense when the unreduced output
  // stops being sparse.
  // The reduce strategy is a collective choice: every rank of the row must
  // take the same branch, so the per-rank density votes are OR-reduced.
  const std::uint8_t dense_vote =
      (dense_path || ntouched * 4 > acc.size()) ? 1 : 0;
  const bool dense_reduce =
      grid.row_comm().allreduce(dense_vote, [](std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a | b);
      }) != 0;
  auto& piece = arena.buffer<Tuple<VertexId>>("mxv.piece");
  const auto my_piece_chunk =
      static_cast<std::uint64_t>(grid.my_row()) * q +
      static_cast<std::uint64_t>(grid.my_col());

  // Restore the all-kAbsent / all-zero invariant of acc and bits by walking
  // the set bits; `fn` sees the touched rows in ascending order.
  auto drain_touched = [&](auto&& fn) {
    for (std::size_t wi = 0; wi < words; ++wi) {
      std::uint64_t word = bits[wi];
      if (word == 0) continue;
      bits[wi] = 0;
      while (word != 0) {
        const auto bit = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        const auto r = static_cast<VertexId>(rb + (wi << 6) + bit);
        fn(r);
        acc[r - rb] = kAbsent;
      }
    }
  };

  if (dense_reduce) {
    const BlockPartition row_split(acc.size(), q);
    auto& reduced = arena.buffer<VertexId>("mxv.reduced");
    grid.row_comm().reduce_scatter_block_into(acc, combine, row_split, reduced);
    drain_touched([](VertexId) {});
    const VertexId piece_begin = part.begin(my_piece_chunk);
    for (std::size_t k = 0; k < reduced.size(); ++k)
      if (reduced[k] != kAbsent)
        piece.push_back({piece_begin + k, reduced[k]});
  } else {
    const auto my_row_first_chunk = static_cast<std::uint64_t>(grid.my_row()) * q;
    auto& send = arena.buffer<Tuple<VertexId>>("mxv.send");
    send.reserve(ntouched);
    auto& counts = arena.buffer<std::size_t>("mxv.counts");
    counts.assign(q, 0);
    // Ascending rows mean monotone owners, so appending in bitmap order
    // produces the send buffer already grouped by destination.
    drain_touched([&](VertexId r) {
      ++counts[part.owner(r) - my_row_first_chunk];
      send.push_back({r, acc[r - rb]});
    });
    auto& received = arena.buffer<Tuple<VertexId>>("mxv.recv");
    grid.row_comm().alltoallv_into(send, counts, received, tuning.alltoall);
    // Merge duplicates (same row from several column blocks) with the
    // combine op.  acc and bits are clean again at this point and the
    // received rows land in my piece chunk (a subrange of [rb, re)), so
    // the same accumulator merges and re-sorts in linear time.
    for (const auto& t : received) accumulate(t.index, t.value);
    drain_touched([&](VertexId r) { piece.push_back({r, acc[r - rb]}); });
    world.charge_compute(static_cast<double>(received.size()) * 3);
  }

  // ---- Phase 3: transpose realignment.  Rank (i, j) holds chunk i*q + j,
  // whose canonical home is rank (j, i).
  auto& realigned = arena.buffer<Tuple<VertexId>>("mxv.realigned");
  world.sendrecv_into(piece, grid.transpose_rank(), grid.transpose_rank(),
                      realigned);

  DistVec<VertexId> out(grid, A.n());
  for (const auto& t : realigned) {
    LACC_DCHECK(out.owns(t.index));
    if (mask.allows(t.index)) out.set(t.index, t.value);
  }
  world.charge_compute(static_cast<double>(realigned.size()));
  return out;
}

std::uint64_t scatter_assign_min(ProcGrid& grid, DistVec<VertexId>& w,
                                 std::vector<Tuple<VertexId>> pairs,
                                 const CommTuning& tuning, bool only_if_root) {
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:assign");
  auto& arena = grid.arena();
  const auto p = static_cast<std::size_t>(world.size());

  // Sender-side combining: duplicate targets reduce to their min before
  // anything is shipped (the receiver still reduces across senders).
  auto& sort_scratch = arena.buffer<Tuple<VertexId>>("scatter_assign.sort");
  sort_by_index_value(pairs, sort_scratch, w.global_size());
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const Tuple<VertexId>& a, const Tuple<VertexId>& b) {
                            return a.index == b.index;
                          }),
              pairs.end());

  auto& counts = arena.buffer<std::size_t>("scatter_assign.counts");
  auto& cursor = arena.buffer<std::size_t>("scatter_assign.cursor");
  auto& send = arena.buffer<Tuple<VertexId>>("scatter_assign.send");
  bucket_by_owner(
      pairs, p,
      [&](const Tuple<VertexId>& t) {
        return static_cast<std::size_t>(owner_rank(grid, w, t.index));
      },
      counts, cursor, send);
  auto& mine = arena.buffer<Tuple<VertexId>>("scatter_assign.recv");
  world.alltoallv_into(send, counts, mine, tuning.alltoall);

  // Deduplicate targets with min, then overwrite (GraphBLAS assign).
  sort_by_index_value(mine, sort_scratch, w.global_size());
  std::uint64_t changed = 0;
  for (std::size_t k = 0; k < mine.size(); ++k) {
    if (k > 0 && mine[k].index == mine[k - 1].index) continue;
    const VertexId t = mine[k].index;
    LACC_CHECK_MSG(w.owns(t), "assign target " << t << " misrouted");
    if (only_if_root && (!w.has(t) || w.at(t) != t)) continue;
    if (!w.has(t) || w.at(t) != mine[k].value) ++changed;
    w.set(t, mine[k].value);
  }
  world.charge_compute(static_cast<double>(mine.size()) * 3);
  return world.allreduce(changed,
                         [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

void scatter_set(ProcGrid& grid, DistVec<std::uint8_t>& w,
                 std::vector<VertexId> targets, std::uint8_t value,
                 const CommTuning& tuning) {
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:scatter_set");
  auto& arena = grid.arena();
  const auto p = static_cast<std::size_t>(world.size());

  // Duplicate targets (e.g. many children marking one root) ship once.
  auto& sort_scratch = arena.buffer<VertexId>("scatter_set.sort");
  radix_sort_by(targets, sort_scratch, [](VertexId t) { return t; },
                w.global_size());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  auto& counts = arena.buffer<std::size_t>("scatter_set.counts");
  auto& cursor = arena.buffer<std::size_t>("scatter_set.cursor");
  auto& send = arena.buffer<VertexId>("scatter_set.send");
  bucket_by_owner(
      targets, p,
      [&](VertexId t) { return static_cast<std::size_t>(owner_rank(grid, w, t)); },
      counts, cursor, send);
  auto& mine = arena.buffer<VertexId>("scatter_set.recv");
  world.alltoallv_into(send, counts, mine, tuning.alltoall);
  for (const VertexId t : mine) {
    LACC_CHECK_MSG(w.owns(t), "scatter_set target " << t << " misrouted");
    w.set(t, value);
  }
  world.charge_compute(static_cast<double>(mine.size()));
}



namespace {

/// Fused accumulator for the min+max kernel; mn == kAbsent marks "empty".
struct MinMax {
  VertexId mn;
  VertexId mx;
};

struct MmTuple {
  VertexId index;
  MinMax v;
};

MinMax mm_combine(MinMax a, MinMax b) {
  if (a.mn == kAbsent) return b;
  if (b.mn == kAbsent) return a;
  return {std::min(a.mn, b.mn), std::max(a.mx, b.mx)};
}

}  // namespace

std::pair<DistVec<VertexId>, DistVec<VertexId>> mxv_select2nd_minmax(
    ProcGrid& grid, const DistCsc& A, const DistVec<VertexId>& x,
    const MaskSpec& mask, const CommTuning& tuning) {
  LACC_CHECK(x.global_size() == A.n());
  LACC_CHECK_MSG(x.layout() == Layout::kBlockAligned,
                 "mxv requires block-aligned input; realign with to_layout");
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:mxv_minmax");
  auto& arena = grid.arena();
  const auto q = static_cast<std::uint64_t>(grid.q());
  const BlockPartition& part = A.chunk_partition();

  const std::uint64_t stored = global_nvals(grid, x);
  const bool dense_path =
      tuning.force_dense ||
      static_cast<double>(stored) >
          tuning.dense_threshold * static_cast<double>(A.n());

  // Phase 1: one shared input gather within the processor column.
  auto& x_tuples = arena.buffer<Tuple<VertexId>>("mxvmm.x_tuples");
  x.tuples_into(x_tuples);
  auto& gathered = arena.buffer<Tuple<VertexId>>("mxvmm.gathered");
  grid.col_comm().allgatherv_into(x_tuples, gathered);

  // All-kAbsent-between-calls accumulator, as in mxv_select2nd.
  const VertexId rb = A.row_begin(), re = A.row_end();
  const VertexId cb = A.col_begin();
  auto& acc = arena.persistent<MinMax>("mxvmm.acc");
  if (acc.size() != static_cast<std::size_t>(re - rb))
    acc.assign(re - rb, MinMax{kAbsent, kAbsent});
  // Presence bitmap over acc, as in mxv_select2nd.
  auto& bits = arena.persistent<std::uint64_t>("mxvmm.touch_bits");
  const std::size_t words = (acc.size() + 63) / 64;
  if (bits.size() != words) bits.assign(words, 0);
  std::size_t ntouched = 0;
  double flops = 0;

  auto accumulate = [&](VertexId row, VertexId value) {
    auto& slot = acc[row - rb];
    if (slot.mn == kAbsent) {
      bits[(row - rb) >> 6] |= std::uint64_t{1} << ((row - rb) & 63);
      ++ntouched;
    }
    slot = mm_combine(slot, MinMax{value, value});
  };

  if (dense_path) {
    auto& xd = arena.persistent<VertexId>("mxvmm.xd");
    if (xd.size() != static_cast<std::size_t>(A.col_end() - cb))
      xd.assign(A.col_end() - cb, kAbsent);
    for (const auto& t : gathered) xd[t.index - cb] = t.value;
    const auto& cols = A.col_ids();
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      const VertexId xv = xd[cols[ci] - cb];
      if (xv == kAbsent) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, xv);
      flops += static_cast<double>(A.col_rows(ci).size());
    }
    flops += static_cast<double>(gathered.size());
    for (const auto& t : gathered) xd[t.index - cb] = kAbsent;
  } else {
    const auto& cols = A.col_ids();
    std::size_t ci = 0;
    for (const auto& t : gathered) {
      ci = gallop_to(cols, ci, t.index);
      if (ci == cols.size()) break;
      if (cols[ci] != t.index) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, t.value);
      flops += static_cast<double>(A.col_rows(ci).size()) + 1;
    }
  }
  world.charge_compute(flops);

  const std::uint8_t dense_vote =
      (dense_path || ntouched * 4 > acc.size()) ? 1 : 0;
  const bool dense_reduce =
      grid.row_comm().allreduce(dense_vote, [](std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a | b);
      }) != 0;
  auto& piece = arena.buffer<MmTuple>("mxvmm.piece");
  const auto my_piece_chunk =
      static_cast<std::uint64_t>(grid.my_row()) * q +
      static_cast<std::uint64_t>(grid.my_col());

  auto drain_touched = [&](auto&& fn) {
    for (std::size_t wi = 0; wi < words; ++wi) {
      std::uint64_t word = bits[wi];
      if (word == 0) continue;
      bits[wi] = 0;
      while (word != 0) {
        const auto bit = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        const auto r = static_cast<VertexId>(rb + (wi << 6) + bit);
        fn(r);
        acc[r - rb] = MinMax{kAbsent, kAbsent};
      }
    }
  };

  if (dense_reduce) {
    const BlockPartition row_split(acc.size(), q);
    auto& reduced = arena.buffer<MinMax>("mxvmm.reduced");
    grid.row_comm().reduce_scatter_block_into(acc, mm_combine, row_split,
                                              reduced);
    drain_touched([](VertexId) {});
    const VertexId piece_begin = part.begin(my_piece_chunk);
    for (std::size_t k = 0; k < reduced.size(); ++k)
      if (reduced[k].mn != kAbsent)
        piece.push_back({piece_begin + k, reduced[k]});
  } else {
    const auto my_row_first_chunk =
        static_cast<std::uint64_t>(grid.my_row()) * q;
    auto& send = arena.buffer<MmTuple>("mxvmm.send");
    send.reserve(ntouched);
    auto& counts = arena.buffer<std::size_t>("mxvmm.counts");
    counts.assign(q, 0);
    drain_touched([&](VertexId r) {
      ++counts[part.owner(r) - my_row_first_chunk];
      send.push_back({r, acc[r - rb]});
    });
    auto& received = arena.buffer<MmTuple>("mxvmm.recv");
    grid.row_comm().alltoallv_into(send, counts, received, tuning.alltoall);
    // Cross-block merge through the (clean again) accumulator, as in
    // mxv_select2nd.
    for (const auto& t : received) {
      auto& slot = acc[t.index - rb];
      if (slot.mn == kAbsent)
        bits[(t.index - rb) >> 6] |= std::uint64_t{1} << ((t.index - rb) & 63);
      slot = mm_combine(slot, t.v);
    }
    drain_touched([&](VertexId r) { piece.push_back({r, acc[r - rb]}); });
    world.charge_compute(static_cast<double>(received.size()) * 3);
  }

  auto& realigned = arena.buffer<MmTuple>("mxvmm.realigned");
  world.sendrecv_into(piece, grid.transpose_rank(), grid.transpose_rank(),
                      realigned);

  std::pair<DistVec<VertexId>, DistVec<VertexId>> out{
      DistVec<VertexId>(grid, A.n()), DistVec<VertexId>(grid, A.n())};
  for (const auto& t : realigned) {
    LACC_DCHECK(out.first.owns(t.index));
    if (mask.allows(t.index)) {
      out.first.set(t.index, t.v.mn);
      out.second.set(t.index, t.v.mx);
    }
  }
  world.charge_compute(static_cast<double>(realigned.size()));
  return out;
}


namespace {

/// Accumulator cell for the (plus, times) kernel: cnt == 0 marks "empty",
/// so a stored sum of exactly 0.0 survives the dense reduction.
struct PlusCell {
  double sum;
  std::uint64_t cnt;
};

struct PlusTuple {
  VertexId index;
  double value;
};

PlusCell plus_combine(PlusCell a, PlusCell b) {
  return {a.sum + b.sum, a.cnt + b.cnt};
}

}  // namespace

DistVec<double> mxv_plus(ProcGrid& grid, const DistCsc& A,
                         const DistVec<double>& x, const MaskSpec& mask,
                         const CommTuning& tuning) {
  LACC_CHECK(x.global_size() == A.n());
  LACC_CHECK_MSG(x.layout() == Layout::kBlockAligned,
                 "mxv requires block-aligned input; realign with to_layout");
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:mxv_plus");
  auto& arena = grid.arena();
  const auto q = static_cast<std::uint64_t>(grid.q());
  const BlockPartition& part = A.chunk_partition();

  const std::uint64_t stored = global_nvals(grid, x);
  const bool dense_path =
      tuning.force_dense ||
      static_cast<double>(stored) >
          tuning.dense_threshold * static_cast<double>(A.n());

  // Phase 1: input gather within the processor column, as in mxv_select2nd.
  auto& x_tuples = arena.buffer<Tuple<double>>("mxvp.x_tuples");
  x.tuples_into(x_tuples);
  auto& gathered = arena.buffer<Tuple<double>>("mxvp.gathered");
  grid.col_comm().allgatherv_into(x_tuples, gathered);

  // All-{0.0, 0}-between-calls accumulator with the shared bitmap trick.
  const VertexId rb = A.row_begin(), re = A.row_end();
  const VertexId cb = A.col_begin();
  auto& acc = arena.persistent<PlusCell>("mxvp.acc");
  if (acc.size() != static_cast<std::size_t>(re - rb))
    acc.assign(re - rb, PlusCell{0.0, 0});
  auto& bits = arena.persistent<std::uint64_t>("mxvp.touch_bits");
  const std::size_t words = (acc.size() + 63) / 64;
  if (bits.size() != words) bits.assign(words, 0);
  std::size_t ntouched = 0;
  double flops = 0;

  auto accumulate = [&](VertexId row, double value) {
    auto& slot = acc[row - rb];
    if (slot.cnt == 0) {
      bits[(row - rb) >> 6] |= std::uint64_t{1} << ((row - rb) & 63);
      ++ntouched;
    }
    slot.sum += value;
    ++slot.cnt;
  };

  if (dense_path) {
    // Dense SpMV: a value array plus a presence bitmap (unlike the VertexId
    // kernels there is no in-band absent marker for doubles), both with the
    // write-then-wipe persistence trick.
    auto& xd = arena.persistent<double>("mxvp.xd");
    if (xd.size() != static_cast<std::size_t>(A.col_end() - cb))
      xd.assign(A.col_end() - cb, 0.0);
    auto& xp = arena.persistent<std::uint64_t>("mxvp.x_bits");
    const std::size_t xwords = (xd.size() + 63) / 64;
    if (xp.size() != xwords) xp.assign(xwords, 0);
    for (const auto& t : gathered) {
      xd[t.index - cb] = t.value;
      xp[(t.index - cb) >> 6] |= std::uint64_t{1} << ((t.index - cb) & 63);
    }
    const auto& cols = A.col_ids();
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      const VertexId c = cols[ci] - cb;
      if ((xp[c >> 6] & (std::uint64_t{1} << (c & 63))) == 0) continue;
      const double xv = xd[c];
      for (const VertexId r : A.col_rows(ci)) accumulate(r, xv);
      flops += static_cast<double>(A.col_rows(ci).size());
    }
    flops += static_cast<double>(gathered.size());
    for (const auto& t : gathered) {
      xd[t.index - cb] = 0.0;
      xp[(t.index - cb) >> 6] &=
          ~(std::uint64_t{1} << ((t.index - cb) & 63));
    }
  } else {
    // SpMSpV merge-join, as in mxv_select2nd.
    const auto& cols = A.col_ids();
    std::size_t ci = 0;
    for (const auto& t : gathered) {
      ci = gallop_to(cols, ci, t.index);
      if (ci == cols.size()) break;
      if (cols[ci] != t.index) continue;
      for (const VertexId r : A.col_rows(ci)) accumulate(r, t.value);
      flops += static_cast<double>(A.col_rows(ci).size()) + 1;
    }
  }
  world.charge_compute(flops);

  // Phase 2: row-wise reduce, with the same OR-reduced density vote.
  const std::uint8_t dense_vote =
      (dense_path || ntouched * 4 > acc.size()) ? 1 : 0;
  const bool dense_reduce =
      grid.row_comm().allreduce(dense_vote, [](std::uint8_t a, std::uint8_t b) {
        return static_cast<std::uint8_t>(a | b);
      }) != 0;
  auto& piece = arena.buffer<PlusTuple>("mxvp.piece");
  const auto my_piece_chunk =
      static_cast<std::uint64_t>(grid.my_row()) * q +
      static_cast<std::uint64_t>(grid.my_col());

  auto drain_touched = [&](auto&& fn) {
    for (std::size_t wi = 0; wi < words; ++wi) {
      std::uint64_t word = bits[wi];
      if (word == 0) continue;
      bits[wi] = 0;
      while (word != 0) {
        const auto bit = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        const auto r = static_cast<VertexId>(rb + (wi << 6) + bit);
        fn(r);
        acc[r - rb] = PlusCell{0.0, 0};
      }
    }
  };

  if (dense_reduce) {
    const BlockPartition row_split(acc.size(), q);
    auto& reduced = arena.buffer<PlusCell>("mxvp.reduced");
    grid.row_comm().reduce_scatter_block_into(acc, plus_combine, row_split,
                                              reduced);
    drain_touched([](VertexId) {});
    const VertexId piece_begin = part.begin(my_piece_chunk);
    for (std::size_t k = 0; k < reduced.size(); ++k)
      if (reduced[k].cnt != 0)
        piece.push_back({piece_begin + k, reduced[k].sum});
  } else {
    const auto my_row_first_chunk =
        static_cast<std::uint64_t>(grid.my_row()) * q;
    auto& send = arena.buffer<PlusTuple>("mxvp.send");
    send.reserve(ntouched);
    auto& counts = arena.buffer<std::size_t>("mxvp.counts");
    counts.assign(q, 0);
    drain_touched([&](VertexId r) {
      ++counts[part.owner(r) - my_row_first_chunk];
      send.push_back({r, acc[r - rb].sum});
    });
    auto& received = arena.buffer<PlusTuple>("mxvp.recv");
    grid.row_comm().alltoallv_into(send, counts, received, tuning.alltoall);
    // Cross-block merge through the (clean again) accumulator.  Arrival
    // order is fixed by the all-to-all schedule, and the final drain
    // re-sorts by row, so the summation order is deterministic.
    for (const auto& t : received) accumulate(t.index, t.value);
    drain_touched([&](VertexId r) { piece.push_back({r, acc[r - rb].sum}); });
    world.charge_compute(static_cast<double>(received.size()) * 3);
  }

  // Phase 3: transpose realignment, as in mxv_select2nd.
  auto& realigned = arena.buffer<PlusTuple>("mxvp.realigned");
  world.sendrecv_into(piece, grid.transpose_rank(), grid.transpose_rank(),
                      realigned);

  DistVec<double> out(grid, A.n());
  for (const auto& t : realigned) {
    LACC_DCHECK(out.owns(t.index));
    if (mask.allows(t.index)) out.set(t.index, t.value);
  }
  world.charge_compute(static_cast<double>(realigned.size()));
  return out;
}

std::uint64_t scatter_accumulate_min(ProcGrid& grid, DistVec<VertexId>& w,
                                     std::vector<Tuple<VertexId>> pairs,
                                     const CommTuning& tuning) {
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:accumulate");
  auto& arena = grid.arena();
  const auto p = static_cast<std::size_t>(world.size());

  // Sender-side combining, identical to scatter_assign_min.
  auto& sort_scratch = arena.buffer<Tuple<VertexId>>("scatter_accum.sort");
  sort_by_index_value(pairs, sort_scratch, w.global_size());
  pairs.erase(std::unique(pairs.begin(), pairs.end(),
                          [](const Tuple<VertexId>& a, const Tuple<VertexId>& b) {
                            return a.index == b.index;
                          }),
              pairs.end());

  auto& counts = arena.buffer<std::size_t>("scatter_accum.counts");
  auto& cursor = arena.buffer<std::size_t>("scatter_accum.cursor");
  auto& send = arena.buffer<Tuple<VertexId>>("scatter_accum.send");
  bucket_by_owner(
      pairs, p,
      [&](const Tuple<VertexId>& t) {
        return static_cast<std::size_t>(owner_rank(grid, w, t.index));
      },
      counts, cursor, send);
  auto& mine = arena.buffer<Tuple<VertexId>>("scatter_accum.recv");
  world.alltoallv_into(send, counts, mine, tuning.alltoall);

  std::uint64_t changed = 0;
  for (const auto& t : mine) {
    LACC_CHECK_MSG(w.owns(t.index), "accumulate target " << t.index
                                                         << " misrouted");
    if (!w.has(t.index) || t.value < w.at(t.index)) {
      w.set(t.index, t.value);
      ++changed;
    }
  }
  world.charge_compute(static_cast<double>(mine.size()));
  return world.allreduce(changed,
                         [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

}  // namespace lacc::dist
