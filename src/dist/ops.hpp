// Distributed GraphBLAS-style vector operations.
//
// The four communication kernels of LACC (Section V):
//   * mxv_select2nd_min — SpMV / SpMSpV over the (Select2nd, min) semiring,
//     with the two-phase column-allgather / row-reduce pattern;
//   * gather_at         — GrB_extract by an index vector (u[f[v]]), with the
//     hotspot-broadcast mitigation and hypercube all-to-all of Section V-B;
//   * scatter_assign_min / scatter_set — GrB_assign by an index vector;
//   * global reductions.
// Elementwise operations on identically-distributed vectors are local and
// live on DistVec itself / as small helpers here.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/dist_mat.hpp"
#include "dist/dist_vec.hpp"
#include "dist/grid.hpp"
#include "sim/comm.hpp"
#include "support/error.hpp"

namespace lacc::dist {

/// Output mask, GraphBLAS value semantics: position allowed iff the mask
/// vector has a stored element there whose value is nonzero; `complement`
/// flips the decision.  Mask vectors share the canonical distribution, so
/// masking is purely local.
struct MaskSpec {
  const DistVec<std::uint8_t>* vector = nullptr;
  bool complement = false;

  bool allows(VertexId g) const {
    if (vector == nullptr) return true;
    const bool stored_true = vector->has(g) && vector->at(g) != 0;
    return complement ? !stored_true : stored_true;
  }
};

/// Knobs shared by the communication kernels (LaccOptions maps onto this).
struct CommTuning {
  sim::AllToAllAlgo alltoall = sim::AllToAllAlgo::kHypercube;
  bool hotspot_broadcast = true;
  double hotspot_threshold = 4.0;
  /// Input density above which mxv uses the dense (SpMV) path.
  double dense_threshold = 0.25;
  bool force_dense = false;  ///< ablation: never use sparse vectors
  /// Ask each unique element once per rank and fan out locally (LACC's
  /// redundant-request elimination).  Baselines without the optimization
  /// turn this off and ship every request.
  bool request_dedup = true;
};

/// Semiring addition for mxv (multiply is always Select2nd on a pattern
/// matrix).  LACC hooks with min; the converged-component detection also
/// needs max (DESIGN.md, "soundness of convergence detection").
enum class SemiringAdd { kMin, kMax };

/// Distributed GrB_mxv on the (Select2nd, add) semiring over a pattern
/// matrix: out[i] = add { x[j] : j in N(i), x[j] stored }, masked.
/// Collective over the grid.
DistVec<VertexId> mxv_select2nd(ProcGrid& grid, const DistCsc& A,
                                const DistVec<VertexId>& x,
                                const MaskSpec& mask, const CommTuning& tuning,
                                SemiringAdd add = SemiringAdd::kMin);

/// Backwards-convenient alias for the common (Select2nd, min) case.
inline DistVec<VertexId> mxv_select2nd_min(ProcGrid& grid, const DistCsc& A,
                                           const DistVec<VertexId>& x,
                                           const MaskSpec& mask,
                                           const CommTuning& tuning) {
  return mxv_select2nd(grid, A, x, mask, tuning, SemiringAdd::kMin);
}

/// Fused (Select2nd, min) and (Select2nd, max) mxv sharing one input gather
/// and one reduction round: conditional hooking needs the min while exact
/// convergence detection needs min and max together (DESIGN.md), and the
/// fusion makes the detection cost a fraction of a second mxv rather than a
/// full one.  Returns {min result, max result}.
std::pair<DistVec<VertexId>, DistVec<VertexId>> mxv_select2nd_minmax(
    ProcGrid& grid, const DistCsc& A, const DistVec<VertexId>& x,
    const MaskSpec& mask, const CommTuning& tuning);

/// Distributed GrB_mxv on the (plus, times) semiring over a pattern matrix
/// (stored entries act as 1.0): out[i] = sum { x[j] : j in N(i), x[j]
/// stored }, masked.  This is the PageRank pull step; it shares the
/// column-allgather / row-reduce / transpose-realignment structure of
/// mxv_select2nd, with a (sum, contribution-count) cell through the dense
/// reduction so absent and stored-zero stay distinguishable.  Summation
/// order is fixed per (grid, layout) so results are bit-deterministic for a
/// given rank count; across rank counts they agree only to rounding.
/// Collective over the grid.
DistVec<double> mxv_plus(ProcGrid& grid, const DistCsc& A,
                         const DistVec<double>& x, const MaskSpec& mask,
                         const CommTuning& tuning);

/// Sum of stored elements across all ranks (collective).
template <typename T>
std::uint64_t global_nvals(ProcGrid& grid, const DistVec<T>& v) {
  return grid.world().allreduce(
      static_cast<std::uint64_t>(v.local_nvals()),
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

/// Logical-or reduction over ranks (collective).
inline bool global_any(ProcGrid& grid, bool local) {
  return grid.world().allreduce(static_cast<std::uint8_t>(local),
                                [](std::uint8_t a, std::uint8_t b) {
                                  return static_cast<std::uint8_t>(a | b);
                                }) != 0;
}

/// Distributed GrB_extract by an index vector: for every stored element
/// (v, t) of `targets`, out[v] = u[t] (absent when u[t] is absent).
///
/// Requests are routed to chunk owners with an all-to-all; if a rank would
/// receive more than `hotspot_threshold` times its stored-element count it
/// broadcasts its chunk instead and drops out of the all-to-all — the
/// mitigation of Section V-B, driven here exactly as in the paper by the
/// skew that conditional hooking induces toward low vertex ids.  When
/// `counter` is non-null, every rank records the number of requests it
/// would have received (pre-mitigation) under that name — the measurement
/// behind Figure 3.
template <typename T>
std::vector<std::pair<T, bool>> gather_values(ProcGrid& grid,
                                              const DistVec<T>& u,
                                              const std::vector<VertexId>& requests,
                                              const CommTuning& tuning,
                                              const std::string& counter = {}) {
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:extract");
  const auto p = static_cast<std::size_t>(world.size());

  // Bucket requests by owning rank.  With request_dedup, duplicate targets
  // are asked only once per rank and fanned out locally on reply — the
  // paper observes that many requests hit the same element (children asking
  // about a shared root) and that shipping them all is redundant.
  std::vector<std::vector<VertexId>> ask(p);  // target ids shipped per owner
  std::vector<std::vector<std::size_t>> origin(p);  // request positions
  std::vector<std::vector<std::size_t>> slot(p);    // position -> ask index
  {
    std::vector<std::pair<VertexId, std::size_t>> sorted;
    sorted.reserve(requests.size());
    for (std::size_t k = 0; k < requests.size(); ++k)
      sorted.emplace_back(requests[k], k);
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [target, pos] : sorted) {
      const auto owner = static_cast<std::size_t>(owner_rank(grid, u, target));
      if (!tuning.request_dedup || ask[owner].empty() ||
          ask[owner].back() != target)
        ask[owner].push_back(target);
      origin[owner].push_back(pos);
      slot[owner].push_back(ask[owner].size() - 1);
    }
  }
  world.charge_compute(static_cast<double>(requests.size()) * 3);

  // Pre-mitigation incoming load per rank: reduce-scatter of the *raw*
  // request counts (before deduplication), matching the paper's Figure 3
  // metric and its hotspot criterion.
  std::vector<std::uint64_t> counts(p, 0);
  for (std::size_t o = 0; o < p; ++o) counts[o] = origin[o].size();
  const BlockPartition one_each(p, p);
  const auto my_load_vec = world.reduce_scatter_block(
      counts, [](std::uint64_t a, std::uint64_t b) { return a + b; },
      one_each);
  const std::uint64_t my_load = my_load_vec.empty() ? 0 : my_load_vec[0];
  if (!counter.empty()) world.add_counter(counter, my_load);

  // Hotspot decision: overloaded ranks broadcast their chunk instead.
  const bool i_broadcast =
      tuning.hotspot_broadcast &&
      static_cast<double>(my_load) >
          tuning.hotspot_threshold *
              static_cast<double>(std::max<VertexId>(1, u.local_nvals()));
  std::vector<std::uint8_t> flags =
      world.allgatherv(std::vector<std::uint8_t>{i_broadcast ? std::uint8_t{1}
                                                             : std::uint8_t{0}});

  std::unordered_map<VertexId, T> broadcasted;
  for (int r = 0; r < world.size(); ++r) {
    if (!flags[static_cast<std::size_t>(r)]) continue;
    std::vector<Tuple<T>> chunk;
    if (r == world.rank()) chunk = u.tuples();
    world.bcast(chunk, r);
    broadcasted.reserve(broadcasted.size() + chunk.size());
    for (const auto& t : chunk) broadcasted.emplace(t.index, t.value);
  }

  // Resolve broadcast-covered requests locally; ship the rest.
  struct Reply {
    T value;
    std::uint8_t has;
  };
  std::vector<std::pair<T, bool>> out(requests.size(), {T{}, false});
  std::vector<VertexId> send;
  std::vector<std::size_t> sendcounts(p, 0);
  for (std::size_t o = 0; o < p; ++o) {
    if (flags[o]) {
      for (std::size_t k = 0; k < origin[o].size(); ++k) {
        const auto it = broadcasted.find(ask[o][slot[o][k]]);
        if (it != broadcasted.end()) out[origin[o][k]] = {it->second, true};
      }
      world.charge_compute(static_cast<double>(origin[o].size()));
    } else {
      sendcounts[o] = ask[o].size();
      send.insert(send.end(), ask[o].begin(), ask[o].end());
    }
  }

  std::vector<std::size_t> recvcounts;
  const std::vector<VertexId> incoming =
      world.alltoallv(send, sendcounts, tuning.alltoall, &recvcounts);

  // Owners answer every request in arrival order.
  std::vector<Reply> replies;
  replies.reserve(incoming.size());
  for (const VertexId t : incoming) {
    LACC_CHECK_MSG(u.owns(t), "gather request " << t << " misrouted");
    if (u.has(t))
      replies.push_back({u.at(t), 1});
    else
      replies.push_back({T{}, 0});
  }
  world.charge_compute(static_cast<double>(incoming.size()));

  const std::vector<Reply> answers =
      world.alltoallv(replies, recvcounts, tuning.alltoall);

  // Answers arrive grouped by owner rank in the order we asked; fan each
  // unique answer out to every originating request.
  std::size_t at = 0;
  for (std::size_t o = 0; o < p; ++o) {
    if (flags[o]) continue;
    for (std::size_t k = 0; k < origin[o].size(); ++k) {
      const Reply& reply = answers[at + slot[o][k]];
      if (reply.has) out[origin[o][k]] = {reply.value, true};
    }
    at += ask[o].size();
  }
  LACC_CHECK(at == answers.size());
  return out;
}

/// Distributed GrB_extract by an index vector: for every stored element
/// (v, t) of `targets`, out[v] = u[t] (absent when u[t] is absent).
/// See gather_values for the communication strategy (hotspot broadcast,
/// request dedup, Figure-3 counter).
template <typename T>
DistVec<T> gather_at(ProcGrid& grid, const DistVec<T>& u,
                     const DistVec<VertexId>& targets,
                     const CommTuning& tuning,
                     const std::string& counter = {}) {
  const auto request_tuples = targets.tuples();
  std::vector<VertexId> requests;
  requests.reserve(request_tuples.size());
  for (const auto& t : request_tuples) requests.push_back(t.value);
  const auto values = gather_values(grid, u, requests, tuning, counter);
  DistVec<T> out(grid, targets.global_size(), targets.layout());
  for (std::size_t k = 0; k < request_tuples.size(); ++k)
    if (values[k].second) out.set(request_tuples[k].index, values[k].first);
  return out;
}

/// Distributed GrB_assign: route (target, value) pairs to chunk owners and
/// write w[target] = value, reducing duplicate targets with min (the
/// deterministic arbitrary-CRCW choice; DESIGN.md).  Returns the global
/// number of targets whose stored value actually changed.  Collective; every
/// rank passes its local pairs.  With `only_if_root`, the owner applies a
/// write only where w[target] == target (Shiloach–Vishkin's hook-to-root
/// guard, checked owner-side so callers need no extra grandparent fetch).
std::uint64_t scatter_assign_min(ProcGrid& grid, DistVec<VertexId>& w,
                                 std::vector<Tuple<VertexId>> pairs,
                                 const CommTuning& tuning,
                                 bool only_if_root = false);

/// Distributed min-accumulating assign: w[target] = min(w[target], value)
/// for every routed pair — the GrB_assign-with-GrB_MIN-accumulator shape
/// FastSV's hooking steps use.  Returns the global number of targets whose
/// stored value decreased.  Collective.
std::uint64_t scatter_accumulate_min(ProcGrid& grid, DistVec<VertexId>& w,
                                     std::vector<Tuple<VertexId>> pairs,
                                     const CommTuning& tuning);

/// Distributed scalar GrB_assign: w[target] = value for every routed target.
void scatter_set(ProcGrid& grid, DistVec<std::uint8_t>& w,
                 std::vector<VertexId> targets, std::uint8_t value,
                 const CommTuning& tuning);

/// Re-distribute a vector into the requested layout (collective): every
/// stored tuple is routed to its owner under the new layout.  This is the
/// realignment exchange the cyclic layout pays before/after each mxv.
template <typename T>
DistVec<T> to_layout(ProcGrid& grid, const DistVec<T>& v, Layout layout,
                     const CommTuning& tuning) {
  DistVec<T> out(grid, v.global_size(), layout);
  auto& arena = grid.arena();
  auto& mine = arena.buffer<Tuple<T>>("to_layout.tuples");
  v.tuples_into(mine);
  if (v.layout() == layout) {
    for (const auto& t : mine) out.set(t.index, t.value);
    return out;
  }
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:to_layout");
  const auto p = static_cast<std::size_t>(world.size());
  // Two-pass counting sort into one flat send buffer (input order within
  // each destination group), instead of p per-call bucket vectors.
  auto& counts = arena.buffer<std::size_t>("to_layout.counts");
  counts.assign(p, 0);
  for (const auto& t : mine)
    ++counts[static_cast<std::size_t>(owner_rank(grid, out, t.index))];
  auto& cursor = arena.buffer<std::size_t>("to_layout.cursor");
  cursor.assign(p, 0);
  for (std::size_t d = 1; d < p; ++d) cursor[d] = cursor[d - 1] + counts[d - 1];
  auto& send = arena.buffer<Tuple<T>>("to_layout.send");
  send.resize(mine.size());
  for (const auto& t : mine)
    send[cursor[static_cast<std::size_t>(owner_rank(grid, out, t.index))]++] = t;
  auto& received = arena.buffer<Tuple<T>>("to_layout.recv");
  world.alltoallv_into(send, counts, received, tuning.alltoall);
  for (const auto& t : received) out.set(t.index, t.value);
  world.charge_compute(static_cast<double>(received.size() + send.size()));
  return out;
}

/// Gather the full vector on every rank as a flat std::vector (positions
/// without stored elements get `fallback`).  Test/result extraction helper.
template <typename T>
std::vector<T> to_global(ProcGrid& grid, const DistVec<T>& v, T fallback) {
  const auto mine = v.tuples();
  const auto all = grid.world().allgatherv(mine);
  std::vector<T> out(v.global_size(), fallback);
  for (const auto& t : all) out[t.index] = t.value;
  return out;
}

}  // namespace lacc::dist
