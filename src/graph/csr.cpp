#include "graph/csr.hpp"

#include "support/error.hpp"

namespace lacc::graph {

Csr::Csr(const EdgeList& el) : n_(el.n), offsets_(el.n + 1, 0) {
  const EdgeList sym = symmetrize(el);
  adj_.resize(sym.edges.size());
  for (const auto& e : sym.edges) ++offsets_[e.u + 1];
  for (VertexId v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];
  // sym.edges is sorted by (u, v), so a single pass fills rows in order.
  EdgeId at = 0;
  for (const auto& e : sym.edges) adj_[at++] = e.v;
  LACC_CHECK(at == adj_.size());
}

}  // namespace lacc::graph
