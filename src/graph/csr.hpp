// Compressed sparse row graph for the serial algorithms and baselines.
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "support/types.hpp"

namespace lacc::graph {

/// Undirected graph in CSR form.  Construction symmetrizes, deduplicates,
/// and removes self-loops, so `neighbors(v)` is a sorted, unique list and
/// every edge appears in both directions.
class Csr {
 public:
  Csr() = default;
  explicit Csr(const EdgeList& el);

  VertexId num_vertices() const { return n_; }
  /// Directed-edge (nonzero) count; twice the undirected edge count.
  EdgeId num_edges() const { return adj_.size(); }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  double average_degree() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(num_edges()) / static_cast<double>(n_);
  }

 private:
  VertexId n_ = 0;
  std::vector<EdgeId> offsets_;  // n_+1 entries
  std::vector<VertexId> adj_;
};

}  // namespace lacc::graph
