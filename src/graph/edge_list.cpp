#include "graph/edge_list.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace lacc::graph {

void canonicalize(EdgeList& el) { canonicalize_counted(el); }

CanonicalizeStats canonicalize_counted(EdgeList& el) {
  CanonicalizeStats stats;
  auto& edges = el.edges;
  stats.input_edges = edges.size();
  std::size_t keep = 0;
  for (auto& e : edges) {
    if (e.u == e.v) continue;
    edges[keep++] = {std::min(e.u, e.v), std::max(e.u, e.v)};
  }
  stats.self_loops = stats.input_edges - keep;
  edges.resize(keep);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  stats.kept = edges.size();
  stats.duplicates = keep - edges.size();
  for (const auto& e : edges)
    LACC_CHECK_MSG(e.v < el.n, "edge endpoint " << e.v << " out of range");
  return stats;
}

EdgeList symmetrize(const EdgeList& el) {
  EdgeList canon = el;
  canonicalize(canon);
  EdgeList out(el.n);
  out.edges.reserve(canon.edges.size() * 2);
  for (const auto& e : canon.edges) {
    out.edges.push_back({e.u, e.v});
    out.edges.push_back({e.v, e.u});
  }
  std::sort(out.edges.begin(), out.edges.end());
  return out;
}

EdgeList permute_vertices(const EdgeList& el, std::uint64_t seed) {
  std::vector<VertexId> perm(el.n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  Xoshiro256 rng(seed);
  for (VertexId i = el.n; i > 1; --i) {
    const auto j = rng.below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  EdgeList out(el.n);
  out.edges.reserve(el.edges.size());
  for (const auto& e : el.edges) out.edges.push_back({perm[e.u], perm[e.v]});
  return out;
}

}  // namespace lacc::graph
