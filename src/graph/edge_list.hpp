// Edge-list representation and canonicalization.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace lacc::graph {

/// One undirected edge (stored as an ordered pair).
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A graph as a bag of edges plus a vertex count.  Generators emit these;
/// CSR construction and distributed ingestion consume them.
struct EdgeList {
  VertexId n = 0;
  std::vector<Edge> edges;

  EdgeList() = default;
  explicit EdgeList(VertexId n_) : n(n_) {}

  void add(VertexId u, VertexId v) { edges.push_back({u, v}); }
  EdgeId size() const { return edges.size(); }
};

/// What canonicalize removed; streaming ingestion reports these per batch.
struct CanonicalizeStats {
  EdgeId input_edges = 0;  ///< edges before canonicalization
  EdgeId self_loops = 0;   ///< dropped (u, u) entries
  EdgeId duplicates = 0;   ///< dropped repeats (after (min, max) ordering)
  EdgeId kept = 0;         ///< canonical undirected edges remaining
};

/// Canonicalize in place for undirected use: drop self-loops, order each
/// edge (min, max), sort, and deduplicate.
void canonicalize(EdgeList& el);

/// canonicalize, additionally reporting what was dropped.
CanonicalizeStats canonicalize_counted(EdgeList& el);

/// Symmetrize: emit both (u,v) and (v,u) for every canonical edge; the
/// result is sorted and deduplicated with self-loops removed.  This is the
/// "directed edges" count reported in the paper's Table III.
EdgeList symmetrize(const EdgeList& el);

/// Apply a random relabeling of vertex ids (CombBLAS randomly permutes rows
/// and columns for load balance; Section V-B).  `seed` fixes the permutation.
EdgeList permute_vertices(const EdgeList& el, std::uint64_t seed);

}  // namespace lacc::graph
