#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace lacc::graph {

EdgeList path(VertexId n) {
  EdgeList el(n);
  for (VertexId v = 0; v + 1 < n; ++v) el.add(v, v + 1);
  return el;
}

EdgeList cycle(VertexId n) {
  EdgeList el = path(n);
  if (n >= 3) el.add(n - 1, 0);
  return el;
}

EdgeList star(VertexId n) {
  EdgeList el(n);
  for (VertexId v = 1; v < n; ++v) el.add(0, v);
  return el;
}

EdgeList complete(VertexId n) {
  EdgeList el(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) el.add(u, v);
  return el;
}

EdgeList empty_graph(VertexId n) { return EdgeList(n); }

EdgeList disjoint_union(const EdgeList& a, const EdgeList& b) {
  EdgeList out(a.n + b.n);
  out.edges = a.edges;
  out.edges.reserve(a.edges.size() + b.edges.size());
  for (const auto& e : b.edges) out.add(e.u + a.n, e.v + a.n);
  return out;
}

EdgeList erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed) {
  LACC_CHECK(n >= 2 || m == 0);
  EdgeList el(n);
  el.edges.reserve(m);
  Xoshiro256 rng(seed);
  for (EdgeId i = 0; i < m; ++i) {
    const VertexId u = rng.below(n);
    VertexId v = rng.below(n - 1);
    if (v >= u) ++v;  // uniform over v != u
    el.add(u, v);
  }
  return el;
}

EdgeList rmat(int scale, EdgeId edges, std::uint64_t seed, double a, double b,
              double c) {
  LACC_CHECK(scale >= 1 && scale <= 40);
  LACC_CHECK(a + b + c <= 1.0 + 1e-9);
  const VertexId n = VertexId{1} << scale;
  EdgeList el(n);
  el.edges.reserve(edges);
  Xoshiro256 rng(seed);
  for (EdgeId i = 0; i < edges; ++i) {
    VertexId u = 0, v = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // upper-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) el.add(u, v);
  }
  return el;
}

EdgeList mesh3d(VertexId nx, VertexId ny, VertexId nz) {
  const VertexId n = nx * ny * nz;
  EdgeList el(n);
  auto id = [&](VertexId x, VertexId y, VertexId z) {
    return (z * ny + y) * nx + x;
  };
  for (VertexId z = 0; z < nz; ++z)
    for (VertexId y = 0; y < ny; ++y)
      for (VertexId x = 0; x < nx; ++x)
        for (int dz = -1; dz <= 1; ++dz)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              const auto x2 = static_cast<std::int64_t>(x) + dx;
              const auto y2 = static_cast<std::int64_t>(y) + dy;
              const auto z2 = static_cast<std::int64_t>(z) + dz;
              if (x2 < 0 || y2 < 0 || z2 < 0 ||
                  x2 >= static_cast<std::int64_t>(nx) ||
                  y2 >= static_cast<std::int64_t>(ny) ||
                  z2 >= static_cast<std::int64_t>(nz))
                continue;
              const VertexId u = id(x, y, z);
              const VertexId v = id(static_cast<VertexId>(x2),
                                    static_cast<VertexId>(y2),
                                    static_cast<VertexId>(z2));
              if (u < v) el.add(u, v);  // emit each undirected edge once
            }
  return el;
}

EdgeList clustered_components(VertexId n, VertexId clusters, double avg_degree,
                              std::uint64_t seed, double zipf_exp) {
  LACC_CHECK(clusters >= 1 && clusters <= n);
  // Zipf-like cluster sizes: weight of cluster k is (k+1)^(-zipf_exp),
  // scaled so sizes sum to n and every cluster has at least one vertex.
  std::vector<double> weight(clusters);
  double total = 0;
  for (VertexId k = 0; k < clusters; ++k) {
    weight[k] = std::pow(static_cast<double>(k + 1), -zipf_exp);
    total += weight[k];
  }
  std::vector<VertexId> size(clusters, 1);
  VertexId assigned = clusters;
  for (VertexId k = 0; k < clusters && assigned < n; ++k) {
    const auto extra = static_cast<VertexId>(
        std::min(static_cast<double>(n - assigned),
                 std::floor(weight[k] / total * static_cast<double>(n - clusters))));
    size[k] += extra;
    assigned += extra;
  }
  for (VertexId k = 0; assigned < n; k = (k + 1) % clusters) {
    ++size[k];
    ++assigned;
  }

  EdgeList el(n);
  Xoshiro256 rng(seed);
  VertexId base = 0;
  for (VertexId k = 0; k < clusters; ++k) {
    const VertexId s = size[k];
    if (s >= 2) {
      // Spanning path keeps the cluster one component; extra random edges
      // push average degree toward the target.
      for (VertexId i = 0; i + 1 < s; ++i) el.add(base + i, base + i + 1);
      const double target_edges = avg_degree * static_cast<double>(s) / 2.0;
      const auto extra = static_cast<EdgeId>(
          std::max(0.0, target_edges - static_cast<double>(s - 1)));
      for (EdgeId i = 0; i < extra; ++i) {
        const VertexId u = base + rng.below(s);
        VertexId v = base + rng.below(s);
        if (u != v) el.add(u, v);
      }
    }
    base += s;
  }
  LACC_CHECK(base == n);
  return el;
}

EdgeList path_forest(VertexId n, VertexId avg_component, std::uint64_t seed) {
  LACC_CHECK(avg_component >= 1);
  EdgeList el(n);
  Xoshiro256 rng(seed);
  VertexId v = 0;
  while (v < n) {
    // Component length ~ Uniform[1, 2*avg), so the mean is ~avg_component.
    const VertexId len = static_cast<VertexId>(
        1 + rng.below(std::max<VertexId>(1, 2 * avg_component - 1)));
    const VertexId end = std::min<VertexId>(n, v + len);
    // Mostly paths; occasionally a branch to make small trees.
    for (VertexId i = v + 1; i < end; ++i) {
      const bool branch = (end - v) > 3 && rng.below(8) == 0;
      const VertexId parent = branch ? v + rng.below(i - v) : i - 1;
      el.add(parent, i);
    }
    v = end;
  }
  return el;
}

EdgeList random_tree(VertexId n, std::uint64_t seed) {
  EdgeList el(n);
  Xoshiro256 rng(seed);
  for (VertexId v = 1; v < n; ++v) el.add(rng.below(v), v);
  return el;
}

EdgeList preferential_attachment(VertexId n, int out_degree,
                                 std::uint64_t seed, double isolated_frac) {
  LACC_CHECK(out_degree >= 1);
  LACC_CHECK(isolated_frac >= 0.0 && isolated_frac < 1.0);
  const auto attached =
      std::max<VertexId>(2, static_cast<VertexId>(
                                static_cast<double>(n) * (1.0 - isolated_frac)));
  EdgeList el(n);
  // Classic Barabási–Albert via the repeated-endpoints trick: sampling a
  // uniform position in the endpoint log is degree-proportional sampling.
  std::vector<VertexId> endpoint_log;
  endpoint_log.reserve(attached * static_cast<VertexId>(out_degree) * 2);
  Xoshiro256 rng(seed);
  el.add(0, 1);
  endpoint_log.push_back(0);
  endpoint_log.push_back(1);
  for (VertexId v = 2; v < attached; ++v) {
    const int links = static_cast<int>(
        std::min<VertexId>(v, static_cast<VertexId>(out_degree)));
    for (int i = 0; i < links; ++i) {
      const VertexId target = endpoint_log[rng.below(endpoint_log.size())];
      if (target == v) continue;
      el.add(v, target);
      endpoint_log.push_back(target);
      endpoint_log.push_back(v);
    }
  }
  return el;
}

}  // namespace lacc::graph
