// Deterministic graph generators.
//
// Each generator targets one structural regime from the paper's Table III:
// component count and average degree are the two knobs that Section VI shows
// drive LACC's behaviour (vector sparsity wins with many components;
// communication dominates on very sparse graphs).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace lacc::graph {

/// Simple deterministic shapes (adversarial / unit-test cases).
EdgeList path(VertexId n);
EdgeList cycle(VertexId n);
EdgeList star(VertexId n);          ///< vertex 0 connected to all others
EdgeList complete(VertexId n);
EdgeList empty_graph(VertexId n);   ///< n isolated vertices

/// Disjoint union; vertex ids of `b` are shifted past `a`.
EdgeList disjoint_union(const EdgeList& a, const EdgeList& b);

/// Erdős–Rényi G(n, m): m undirected edges sampled uniformly.
EdgeList erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed);

/// RMAT / Kronecker generator with Graph500 parameters by default
/// (a=0.57, b=0.19, c=0.19).  Power-law degrees, one giant component plus
/// isolated vertices — the twitter7 / sk-2005 regime.
EdgeList rmat(int scale, EdgeId edges, std::uint64_t seed, double a = 0.57,
              double b = 0.19, double c = 0.19);

/// 3D grid with a 27-point (full Moore neighborhood) stencil — the
/// queen_4147 regime: single component, average degree in the tens.
EdgeList mesh3d(VertexId nx, VertexId ny, VertexId nz);

/// Protein-similarity-like graph (archaea/eukarya/isolates regime):
/// `clusters` dense-ish clusters with power-law sizes (Zipf exponent
/// `zipf_exp`), each cluster an independent component.  Average intra-
/// cluster degree ~ `avg_degree`.
EdgeList clustered_components(VertexId n, VertexId clusters, double avg_degree,
                              std::uint64_t seed, double zipf_exp = 1.5);

/// Metagenome-contig-like graph (M3 regime): a soup of short paths and
/// small trees with average component size `avg_component`, overall average
/// degree ~2, and an enormous number of components.
EdgeList path_forest(VertexId n, VertexId avg_component, std::uint64_t seed);

/// Random recursive tree: vertex v > 0 attaches to a uniform random earlier
/// vertex.  O(log n) diameter; unioned with RMAT to connect its isolated
/// vertices without distorting the diameter (twitter7 / sk-2005 stand-ins).
EdgeList random_tree(VertexId n, std::uint64_t seed);

/// Preferential-attachment graph (web-crawl regime): each new vertex
/// attaches `out_degree` edges to earlier vertices biased by degree; a
/// fraction `isolated_frac` of trailing vertices stay isolated so the
/// graph has a controllable component count (uk-2002 / MOLIERE regime).
EdgeList preferential_attachment(VertexId n, int out_degree,
                                 std::uint64_t seed,
                                 double isolated_frac = 0.0);

}  // namespace lacc::graph
