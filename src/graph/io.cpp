#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "support/error.hpp"

namespace lacc::graph {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

EdgeList read_matrix_market(std::istream& in) {
  std::string line;
  LACC_CHECK_MSG(std::getline(in, line), "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  LACC_CHECK_MSG(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  LACC_CHECK_MSG(lower(object) == "matrix" && lower(format) == "coordinate",
                 "only coordinate matrices are supported");
  const std::string f = lower(field);
  LACC_CHECK_MSG(f == "pattern" || f == "real" || f == "integer",
                 "unsupported field type: " << field);
  const bool has_value = f != "pattern";
  const std::string sym = lower(symmetry);
  LACC_CHECK_MSG(sym == "general" || sym == "symmetric",
                 "unsupported symmetry: " << symmetry);

  // Skip comments, read the size line.  The stream may end inside the
  // comment block (comments-only file): that must be an error, not a
  // silently empty graph.
  bool found_size = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      found_size = true;
      break;
    }
  }
  LACC_CHECK_MSG(found_size, "Matrix Market stream ends before the size line");
  std::istringstream size_line(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  LACC_CHECK_MSG(static_cast<bool>(size_line >> rows >> cols >> nnz),
                 "malformed Matrix Market size line: \"" << line << "\"");
  LACC_CHECK_MSG(rows == cols, "adjacency matrix must be square");

  EdgeList el(rows);
  el.edges.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    LACC_CHECK_MSG(std::getline(in, line), "unexpected EOF at entry " << i);
    std::istringstream entry(line);
    std::uint64_t r = 0, c = 0;
    LACC_CHECK_MSG(static_cast<bool>(entry >> r >> c),
                   "malformed entry at line " << i + 1 << ": \"" << line
                                              << "\"");
    LACC_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                   "entry out of range: " << r << " " << c);
    if (has_value) {
      double value = 0;
      LACC_CHECK_MSG(static_cast<bool>(entry >> value),
                     "malformed entry value at line " << i + 1 << ": \""
                                                      << line << "\"");
    }
    el.add(r - 1, c - 1);
  }
  return el;
}

EdgeList read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  LACC_CHECK_MSG(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const EdgeList& el) {
  EdgeList canon = el;
  canonicalize(canon);
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << el.n << " " << el.n << " " << canon.edges.size() << "\n";
  // Symmetric MM stores the lower triangle: row >= column.
  for (const auto& e : canon.edges) out << e.v + 1 << " " << e.u + 1 << "\n";
}

void write_matrix_market_file(const std::string& path, const EdgeList& el) {
  std::ofstream out(path);
  LACC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(out, el);
}

EdgeList read_edge_list(std::istream& in) {
  std::uint64_t n = 0, m = 0;
  LACC_CHECK_MSG(static_cast<bool>(in >> n >> m), "bad edge-list header");
  EdgeList el(n);
  el.edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0, v = 0;
    LACC_CHECK_MSG(static_cast<bool>(in >> u >> v), "bad edge at line " << i);
    LACC_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    el.add(u, v);
  }
  return el;
}

void write_edge_list(std::ostream& out, const EdgeList& el) {
  out << el.n << " " << el.edges.size() << "\n";
  for (const auto& e : el.edges) out << e.u << " " << e.v << "\n";
}

namespace {

constexpr char kBinaryMagic[8] = {'L', 'A', 'C', 'C', 'G', 'R', 'P', 'H'};
constexpr std::uint32_t kBinaryVersion = 1;

}  // namespace

EdgeList read_binary(std::istream& in) {
  char magic[8] = {};
  std::uint32_t version = 0, flags = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
  LACC_CHECK_MSG(in.good() && std::equal(magic, magic + 8, kBinaryMagic),
                 "not a LACC binary graph file");
  LACC_CHECK_MSG(version == kBinaryVersion,
                 "unsupported binary graph version " << version);
  std::uint64_t n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  LACC_CHECK_MSG(in.good(), "truncated binary graph header");
  // `m` comes from an untrusted header: validate it against the remaining
  // stream length (when the stream is seekable) before sizing the edge
  // buffer, so a corrupt count fails cleanly instead of attempting a
  // multi-gigabyte allocation.
  const std::istream::pos_type here = in.tellg();
  if (here != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const std::istream::pos_type end = in.tellg();
    in.seekg(here);
    LACC_CHECK_MSG(in.good(), "cannot measure binary graph stream");
    const auto remaining = static_cast<std::uint64_t>(end - here);
    LACC_CHECK_MSG(m <= remaining / sizeof(Edge),
                   "binary graph header claims " << m << " edges but only "
                       << remaining / sizeof(Edge) << " fit in the stream");
  }
  EdgeList el(n);
  el.edges.resize(m);
  in.read(reinterpret_cast<char*>(el.edges.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  LACC_CHECK_MSG(in.good(), "truncated binary graph payload");
  for (const auto& e : el.edges)
    LACC_CHECK_MSG(e.u < n && e.v < n, "binary edge endpoint out of range");
  return el;
}

EdgeList read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LACC_CHECK_MSG(in.good(), "cannot open " << path);
  return read_binary(in);
}

void write_binary(std::ostream& out, const EdgeList& el) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint32_t version = kBinaryVersion, flags = 0;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
  const std::uint64_t n = el.n, m = el.edges.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(el.edges.data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
}

void write_binary_file(const std::string& path, const EdgeList& el) {
  std::ofstream out(path, std::ios::binary);
  LACC_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_binary(out, el);
}

}  // namespace lacc::graph
