// Graph I/O: Matrix Market exchange format and plain edge-list text.
//
// LACC's published datasets ship as Matrix Market files (SuiteSparse
// collection); supporting the format lets users run this library on the
// paper's actual graphs when they have them.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace lacc::graph {

/// Parse a Matrix Market coordinate-format file as an undirected graph
/// pattern.  Accepts `pattern`, `real`, and `integer` fields (values are
/// ignored — LACC only uses structure) and both `general` and `symmetric`
/// symmetry.  Throws lacc::Error on malformed input.
EdgeList read_matrix_market(std::istream& in);
EdgeList read_matrix_market_file(const std::string& path);

/// Write the graph as a symmetric pattern Matrix Market file, one
/// undirected edge per line (lower-triangle convention).
void write_matrix_market(std::ostream& out, const EdgeList& el);
void write_matrix_market_file(const std::string& path, const EdgeList& el);

/// Plain text: first line "n m", then m lines "u v" (0-based).
EdgeList read_edge_list(std::istream& in);
void write_edge_list(std::ostream& out, const EdgeList& el);

/// Binary format for large graphs: a 16-byte header ("LACCGRPH", version,
/// flags) followed by n, m and the raw little-endian u/v arrays.  Orders of
/// magnitude faster than text parsing for multi-GB edge lists.
EdgeList read_binary(std::istream& in);
EdgeList read_binary_file(const std::string& path);
void write_binary(std::ostream& out, const EdgeList& el);
void write_binary_file(const std::string& path, const EdgeList& el);

}  // namespace lacc::graph
