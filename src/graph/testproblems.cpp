#include "graph/testproblems.hpp"

#include <cmath>

#include "graph/generators.hpp"
#include "support/error.hpp"

namespace lacc::graph {

namespace {

VertexId scaled(double scale, VertexId base) {
  const double v = std::round(static_cast<double>(base) * scale);
  return v < 2 ? 2 : static_cast<VertexId>(v);
}

}  // namespace

// Note on Table III: the paper says "ten test problems" but the text copy we
// reproduce from renders only nine rows; the tenth (Metaclust50, the second
// >1TB graph used in Figure 6 alongside iso_m100) is restored here from the
// published version of the paper.

std::vector<TestProblem> make_test_problems(double scale, std::uint64_t seed) {
  std::vector<TestProblem> out;
  // CombBLAS randomly permutes rows and columns on ingestion for load
  // balance (Section V-B); generators lay components out in contiguous id
  // ranges, so the permutation is applied here to match what the paper's
  // pipeline actually computes on.
  const auto permuted = [&](EdgeList el) {
    return permute_vertices(el, seed + 777);
  };

  // archaea: protein-similarity network, many dense clusters.
  {
    const VertexId n = scaled(scale, 16384);
    out.push_back({"archaea", "archaea protein-similarity network",
                   permuted(clustered_components(n, n / 28, 30.0, seed + 1)),
                   1640000, 204790000, 59794, false});
  }
  // queen_4147: 3D structural problem, single component, degree ~80.
  {
    const auto side = static_cast<VertexId>(
        std::max(4.0, std::round(16.0 * std::cbrt(scale))));
    out.push_back({"queen_4147", "3D structural problem",
                   permuted(mesh3d(side, side, side)), 4150000, 329500000, 1, false});
  }
  // eukarya: like archaea but bigger with more components.
  {
    const VertexId n = scaled(scale, 24576);
    out.push_back({"eukarya", "eukarya protein-similarity network",
                   permuted(clustered_components(n, n / 20, 22.0, seed + 2)),
                   3230000, 359740000, 164156, false});
  }
  // uk-2002: web crawl, heavy-tailed degrees, ~2k components.
  {
    const VertexId n = scaled(scale, 32768);
    out.push_back({"uk-2002", "2002 web crawl of .uk domain",
                   permuted(preferential_attachment(n, 8, seed + 3, 0.05)),
                   18480000, 529440000, 1990, false});
  }
  // M3: soil metagenome, avg degree ~2, millions of tiny components.
  {
    const VertexId n = scaled(scale, 65536);
    out.push_back({"M3", "soil metagenomic data", permuted(path_forest(n, 70, seed + 4)),
                   531000000, 1047000000, 7600000, false});
  }
  // twitter7: follower network, power-law, a single giant component.  RMAT
  // leaves isolated vertices, so a low-diameter random tree is unioned in
  // to match the paper's "1 component" (degree impact: +2).
  {
    const int sc = std::max(10, static_cast<int>(std::round(
                                    14.0 + std::log2(std::max(scale, 1e-6)))));
    const VertexId n = VertexId{1} << sc;
    EdgeList g = rmat(sc, n * 12, seed + 5);
    EdgeList spanning = random_tree(n, seed + 50);
    g.edges.insert(g.edges.end(), spanning.edges.begin(), spanning.edges.end());
    out.push_back({"twitter7", "twitter follower network", permuted(std::move(g)),
                   41650000, 2405000000, 1, false});
  }
  // sk-2005: web crawl, 45 components: an RMAT core connected by a random
  // tree, plus 44 small isolated path components.
  {
    const int sc = std::max(10, static_cast<int>(std::round(
                                    14.0 + std::log2(std::max(scale, 1e-6)))));
    const VertexId core_n = VertexId{1} << sc;
    EdgeList core = rmat(sc, core_n * 14, seed + 6);
    EdgeList spanning = random_tree(core_n, seed + 60);
    core.edges.insert(core.edges.end(), spanning.edges.begin(),
                      spanning.edges.end());
    EdgeList g = core;
    for (int c = 0; c < 44; ++c) g = disjoint_union(g, path(3));
    out.push_back({"sk-2005", "2005 web crawl of .sk domain", permuted(std::move(g)),
                   50640000, 3639000000, 45, false});
  }
  // MOLIERE_2016: dense hypothesis-generation network, few thousand comps.
  {
    const VertexId n = scaled(scale, 16384);
    out.push_back({"MOLIERE_2016",
                   "automatic biomedical hypothesis generation system",
                   permuted(preferential_attachment(n, 16, seed + 7, 0.02)),
                   30220000, 6677000000, 4457, false});
  }
  // Metaclust50: protein clusters (the row dropped from our text copy).
  {
    const VertexId n = scaled(scale, 32768);
    out.push_back({"Metaclust50", "clusters of Metaclust50 proteins",
                   permuted(clustered_components(n, n / 18, 28.0, seed + 8)),
                   282200000, 42790000000ull, 15980000, true});
  }
  // iso_m100: IMG isolate-genome protein similarities, very dense clusters.
  {
    const VertexId n = scaled(scale, 32768);
    out.push_back({"iso_m100", "similarities of proteins in IMG isolate genomes",
                   permuted(clustered_components(n, n / 50, 40.0, seed + 9)),
                   68480000, 67160000000ull, 1350000, true});
  }
  return out;
}

std::vector<std::string> figure4_names() {
  return {"archaea", "queen_4147", "eukarya",  "uk-2002",
          "M3",      "twitter7",   "sk-2005",  "MOLIERE_2016"};
}

std::vector<std::string> figure5_names() {
  return {"archaea", "eukarya", "M3", "MOLIERE_2016"};
}

std::vector<std::string> figure6_names() { return {"Metaclust50", "iso_m100"}; }

std::vector<std::string> figure7_names() {
  return {"archaea", "eukarya", "uk-2002", "M3", "MOLIERE_2016"};
}

std::vector<std::string> figure8_names() {
  return {"eukarya", "queen_4147", "M3"};
}

const TestProblem& find_problem(const std::vector<TestProblem>& problems,
                                const std::string& name) {
  for (const auto& p : problems)
    if (p.name == name) return p;
  throw Error("unknown test problem: " + name);
}

}  // namespace lacc::graph
