// Scaled stand-ins for the paper's Table III test problems.
//
// The originals (IMG protein-similarity networks, the M3 soil metagenome,
// SuiteSparse web crawls) are multi-GB datasets we cannot ship or hold in
// memory here.  Each stand-in is generated with the same *structural*
// parameters the paper's analysis turns on: component-count regime and
// average degree (see DESIGN.md).  `scale` multiplies vertex counts;
// scale = 1.0 targets sub-second generation on a laptop.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace lacc::graph {

/// One Table III row: the generated stand-in plus the paper's figures for
/// the original so harnesses can print paper-vs-ours columns.
struct TestProblem {
  std::string name;              ///< paper's graph name
  std::string description;      ///< paper's description column
  EdgeList graph;               ///< the scaled stand-in
  std::uint64_t paper_vertices; ///< Table III vertices
  std::uint64_t paper_edges;    ///< Table III directed edges
  std::uint64_t paper_components;
  bool large = false;           ///< true for the two >1TB graphs (Fig. 6)
};

/// All ten Table III stand-ins, in paper order.
std::vector<TestProblem> make_test_problems(double scale = 1.0,
                                            std::uint64_t seed = 42);

/// The eight "small" graphs (Figure 4) / the many-component four (Figure 5)
/// are selected from the vector above by these helpers.
std::vector<std::string> figure4_names();
std::vector<std::string> figure5_names();
std::vector<std::string> figure6_names();
std::vector<std::string> figure7_names();
std::vector<std::string> figure8_names();

/// Look up a problem by name (throws if absent).
const TestProblem& find_problem(const std::vector<TestProblem>& problems,
                                const std::string& name);

}  // namespace lacc::graph
