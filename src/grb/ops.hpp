// Serial GraphBLAS operations used by LACC (Algorithms 3-6).
//
// Signatures follow the GraphBLAS C API argument order — output, mask,
// (no accumulator; the paper always assigns), inputs — with C++ callables
// in place of GrB_BinaryOp/GrB_Semiring handles.  The adjacency matrix is a
// pattern matrix, and LACC's semiring multiply is always Select2nd, so mxv
// takes only the semiring's *add* operator.
#pragma once

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "grb/vector.hpp"
#include "support/error.hpp"

namespace lacc::grb {

/// The (Select2nd, min) semiring addition used throughout LACC.
struct MinOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? a : b;
  }
};

/// (Select2nd, max): used by the exact converged-component detection.
struct MaxOp {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? b : a;
  }
};

/// GrB_SECOND: returns its second argument (used to copy through a pattern).
struct SecondOp {
  template <typename T>
  T operator()(const T&, T b) const {
    return b;
  }
};

/// GrB_mxv over the (Select2nd, add) semiring on a pattern matrix:
///   w[i] = add over { u[j] : j in N(i), u[j] stored },  masked by `mask`.
/// Positions with no stored contribution are absent from w.  Internally
/// dispatches on input density exactly as the paper describes: SpMV when u
/// is mostly full, SpMSpV (column-driven) when u is sparse.
template <typename T, typename Add, typename M>
Vector<T> mxv_select2nd(const graph::Csr& A, const Vector<T>& u, Add add,
                        Mask<M> mask) {
  const Index n = A.num_vertices();
  LACC_CHECK(u.size() == n);
  Vector<T> w(n);

  const bool sparse_input = u.nvals() * 4 < n;
  if (!sparse_input) {
    // SpMV: row-driven.
    for (Index i = 0; i < n; ++i) {
      if (!mask.allows(i)) continue;
      bool any = false;
      T acc{};
      for (const Index j : A.neighbors(i)) {
        if (!u.has(j)) continue;
        const T contribution = u.at(j);  // Select2nd
        acc = any ? add(acc, contribution) : contribution;
        any = true;
      }
      if (any) w.set(i, acc);
    }
    return w;
  }

  // SpMSpV: column-driven over stored entries of u; the graph is symmetric
  // so rows of column j are N(j).
  std::vector<Index> uidx;
  std::vector<T> uval;
  u.extract_tuples(uidx, uval);
  for (std::size_t k = 0; k < uidx.size(); ++k) {
    const T contribution = uval[k];
    for (const Index i : A.neighbors(uidx[k])) {
      if (!mask.allows(i)) continue;
      if (w.has(i))
        w.set(i, add(w.at(i), contribution));
      else
        w.set(i, contribution);
    }
  }
  return w;
}

/// GrB_eWiseMult: w[i] = op(u[i], v[i]) on the *intersection* of stored
/// elements, masked.
template <typename T, typename Op, typename M, typename U>
Vector<T> eWiseMult(const Vector<T>& u, const Vector<U>& v, Op op, Mask<M> mask) {
  LACC_CHECK(u.size() == v.size());
  Vector<T> w(u.size());
  for (Index i = 0; i < u.size(); ++i) {
    if (!mask.allows(i)) continue;
    if (u.has(i) && v.has(i)) w.set(i, op(u.at(i), static_cast<T>(v.at(i))));
  }
  return w;
}

/// Vector variant of GrB_extract with an index array:
///   w[k] = u[indices[k]] for each k with u[indices[k]] stored.
/// The output has size indices.size().
template <typename T>
Vector<T> extract(const Vector<T>& u, const std::vector<Index>& indices) {
  Vector<T> w(static_cast<Index>(indices.size()));
  for (std::size_t k = 0; k < indices.size(); ++k) {
    LACC_CHECK(indices[k] < u.size());
    if (u.has(indices[k])) w.set(static_cast<Index>(k), u.at(indices[k]));
  }
  return w;
}

/// GrB_extract with GrB_ALL: masked copy of u into a fresh vector.
template <typename T, typename M>
Vector<T> extract_all(const Vector<T>& u, Mask<M> mask) {
  Vector<T> w(u.size());
  for (Index i = 0; i < u.size(); ++i)
    if (mask.allows(i) && u.has(i)) w.set(i, u.at(i));
  return w;
}

/// Vector variant of GrB_assign with an index array:
///   w[indices[k]] = u[k] for each stored u[k]  (overwrite, no accumulator).
/// GraphBLAS leaves duplicate-index behaviour to the implementation; we
/// reduce duplicate targets with min so runs are deterministic (DESIGN.md) —
/// any winner is a valid PRAM arbitrary-CRCW outcome for the AS algorithm.
template <typename T>
void assign(Vector<T>& w, const std::vector<Index>& indices, const Vector<T>& u) {
  LACC_CHECK(static_cast<Index>(indices.size()) == u.size());
  std::vector<std::pair<Index, T>> writes;
  writes.reserve(indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (!u.has(static_cast<Index>(k))) continue;
    LACC_CHECK(indices[k] < w.size());
    writes.emplace_back(indices[k], u.at(static_cast<Index>(k)));
  }
  // Sorted by (index, value), the first pair of each index run is the min.
  std::sort(writes.begin(), writes.end());
  for (std::size_t k = 0; k < writes.size(); ++k) {
    if (k > 0 && writes[k].first == writes[k - 1].first) continue;
    w.set(writes[k].first, writes[k].second);
  }
}

/// Scalar variant of GrB_assign: w[indices[k]] = value for all k.
template <typename T>
void assign_scalar(Vector<T>& w, const std::vector<Index>& indices, T value) {
  for (const Index i : indices) {
    LACC_CHECK(i < w.size());
    w.set(i, value);
  }
}

/// GrB_assign over GrB_ALL with a mask: w[i] = value wherever allowed.
template <typename T, typename M>
void assign_all(Vector<T>& w, T value, Mask<M> mask) {
  for (Index i = 0; i < w.size(); ++i)
    if (mask.allows(i)) w.set(i, value);
}

}  // namespace lacc::grb
