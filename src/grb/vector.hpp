// Serial GraphBLAS-style vector.
//
// A GraphBLAS vector of size n holds a *set of stored tuples* (i, value);
// unstored positions are structurally absent, which is how the paper's
// algorithms express sparsity (Section IV-B).  This implementation stores a
// dense value array plus a presence bitmap — simple, exactly matching the
// stored/absent semantics, and fast at the serial sizes we run.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bitvector.hpp"
#include "support/error.hpp"
#include "support/types.hpp"

namespace lacc::grb {

using Index = VertexId;

/// GraphBLAS-style vector with stored/absent element semantics.
template <typename T>
class Vector {
 public:
  Vector() = default;
  explicit Vector(Index n)
      : n_(n), values_(n), present_(static_cast<std::size_t>(n), false) {}

  /// Vector with every position stored as `fill`.
  static Vector full(Index n, T fill) {
    Vector v(n);
    for (Index i = 0; i < n; ++i) v.values_[i] = fill;
    v.present_.fill(true);
    v.nvals_ = n;
    return v;
  }

  Index size() const { return n_; }
  Index nvals() const { return nvals_; }

  bool has(Index i) const {
    LACC_DCHECK(i < n_);
    return present_.get(i);
  }

  /// Value at a stored position (checked).
  T at(Index i) const {
    LACC_CHECK_MSG(has(i), "reading unstored element " << i);
    return values_[i];
  }

  /// Value at i, or `fallback` if absent.
  T get_or(Index i, T fallback) const { return has(i) ? values_[i] : fallback; }

  void set(Index i, T v) {
    LACC_DCHECK(i < n_);
    if (!present_.get(i)) {
      present_.set(i, true);
      ++nvals_;
    }
    values_[i] = v;
  }

  void remove(Index i) {
    LACC_DCHECK(i < n_);
    if (present_.get(i)) {
      present_.set(i, false);
      --nvals_;
    }
  }

  void clear() {
    present_.fill(false);
    nvals_ = 0;
  }

  /// GrB_Vector_extractTuples: stored (index, value) pairs in index order.
  void extract_tuples(std::vector<Index>& indices, std::vector<T>& values) const {
    indices.clear();
    values.clear();
    indices.reserve(nvals_);
    values.reserve(nvals_);
    for (Index i = 0; i < n_; ++i)
      if (present_.get(i)) {
        indices.push_back(i);
        values.push_back(values_[i]);
      }
  }

  bool operator==(const Vector& other) const {
    if (n_ != other.n_ || nvals_ != other.nvals_) return false;
    for (Index i = 0; i < n_; ++i) {
      if (present_.get(i) != other.present_.get(i)) return false;
      if (present_.get(i) && values_[i] != other.values_[i]) return false;
    }
    return true;
  }

 private:
  Index n_ = 0;
  std::vector<T> values_;
  BitVector present_;
  Index nvals_ = 0;
};

/// GraphBLAS write mask: an output position may be written iff the mask has
/// a stored element there whose value converts to true; `complement`
/// (GrB_SCMP) flips the decision.
template <typename M>
struct Mask {
  const Vector<M>* vector = nullptr;  ///< nullptr = no mask (all allowed)
  bool complement = false;

  bool allows(Index i) const {
    if (vector == nullptr) return true;
    const bool stored_true = vector->has(i) && static_cast<bool>(vector->at(i));
    return complement ? !stored_true : stored_true;
  }
};

/// Convenience constructors mirroring the API's mask arguments.
template <typename M>
Mask<M> mask_of(const Vector<M>& v) {
  return {&v, false};
}
template <typename M>
Mask<M> scmp_of(const Vector<M>& v) {
  return {&v, true};
}
inline Mask<bool> no_mask() { return {}; }

}  // namespace lacc::grb
