// Direction-aware BFS over the (Select2nd, min) semiring.
//
// One masked mxv per level: the frontier vector carries x[v] = v, so the
// Select2nd multiply delivers each discovered vertex its *minimum-id*
// previous-level neighbor as the BFS-tree parent, and the complement-of-
// visited mask keeps already-settled vertices out of the output.  The
// dense/sparse switch inside mxv_select2nd (tuning.dense_threshold) is the
// push/pull direction switch: small frontiers merge-join matrix columns
// (SpMSpV, "push"), large frontiers scan them against a dense input array
// (SpMV, "pull").

#include <sstream>

#include "dist/grid.hpp"
#include "dist/ops.hpp"
#include "kernel/kernels.hpp"
#include "sim/runtime.hpp"
#include "support/error.hpp"

namespace lacc::kernel {

BfsResult bfs(const GraphView& view, VertexId source,
              const KernelOptions& options) {
  if (source >= view.n()) {
    std::ostringstream os;
    os << "kernel query: vertex " << source << " out of range [0, " << view.n()
       << ")";
    throw Error(os.str());
  }

  const int nranks = view.nranks();
  BfsResult result;
  std::vector<double> modeled(static_cast<std::size_t>(nranks), 0);
  std::uint64_t rounds_out = 0;
  std::uint64_t words_out = 0;

  auto spmd = sim::run_spmd(nranks, view.machine(), [&](sim::Comm& world) {
    dist::ProcGrid grid(world);
    sim::Region region(world, "kernel-bfs");
    const dist::DistCsc& A = view.block(world.rank());

    dist::DistVec<VertexId> distv(grid, view.n());
    dist::DistVec<VertexId> parentv(grid, view.n());
    dist::DistVec<std::uint8_t> visited(grid, view.n());
    dist::DistVec<VertexId> frontier(grid, view.n());
    if (distv.owns(source)) {
      distv.set(source, 0);
      parentv.set(source, source);
      visited.set(source, 1);
      frontier.set(source, source);
    }

    std::uint64_t rounds = 0;
    std::uint64_t words = 0;
    for (;;) {
      const std::uint64_t fsize = dist::global_nvals(grid, frontier);
      if (fsize == 0) break;
      ++rounds;
      words += fsize;
      sim::Region round(world, "bfs-round",
                        static_cast<std::int64_t>(rounds));
      // The mask reflects visitation *before* this round, so the mxv output
      // is exactly the next level: vertices adjacent to the frontier that no
      // earlier level settled.
      const dist::MaskSpec unvisited{&visited, /*complement=*/true};
      const auto next =
          dist::mxv_select2nd_min(grid, A, frontier, unvisited, options.tuning);
      frontier.clear();
      next.for_each_stored([&](VertexId g, const VertexId& parent) {
        visited.set(g, 1);
        distv.set(g, rounds);
        parentv.set(g, parent);
        // Select2nd needs x[j] = j so the *discovered* id, not the parent,
        // seeds the next level.
        frontier.set(g, g);
      });
    }

    // Stamp the modeled clock before result extraction: to_global is a
    // test/serving convenience gather, not part of the kernel proper.
    modeled[static_cast<std::size_t>(world.rank())] = world.state().sim_time;
    const auto dist_all = dist::to_global(grid, distv, kNoVertex);
    const auto parent_all = dist::to_global(grid, parentv, kNoVertex);
    if (world.rank() == 0) {
      result.dist = dist_all;
      result.parent = parent_all;
      rounds_out = rounds;
      words_out = words;
    }
  });

  for (const VertexId d : result.dist)
    if (d != kNoVertex) ++result.reached;
  result.stats.rounds = rounds_out;
  result.stats.words_moved = words_out;
  for (const double m : modeled)
    result.stats.modeled_seconds = std::max(result.stats.modeled_seconds, m);
  result.stats.wall_seconds = spmd.wall_seconds;
  result.stats.epoch = view.epoch();
  result.stats.spmd = std::move(spmd);
  return result;
}

}  // namespace lacc::kernel
