// Semiring kernels over a GraphView: BFS, PageRank, triangle counting.
//
// LACC reduces connected components to GraphBLAS primitives; these kernels
// host three more analytics on the same machinery by swapping the semiring
// (FastSV generalized the CC skeleton the same way):
//
//   kernel       semiring           distributed shape
//   ------       -----------------  ---------------------------------------
//   bfs          (min, Select2nd)   frontier mxv per level; the SpMV/SpMSpV
//                                   density switch inside mxv_select2nd is
//                                   the push/pull direction switch — sparse
//                                   frontiers merge-join columns, dense
//                                   frontiers scan them
//   pagerank     (plus, times)      dense mxv_plus per iteration, rank-local
//                                   dangling mass folded via one allreduce,
//                                   L1 convergence
//   triangles    (plus, land) mask  masked SpGEMM shape: q SUMMA-style
//                                   stages broadcasting one grid column's
//                                   gathered adjacency along processor
//                                   rows, counted by sorted-list merges
//
// Every kernel runs its own SPMD session over view.nranks() virtual ranks,
// emits per-round obs spans (kernel-bfs/bfs-round, kernel-pagerank/
// pagerank-round, kernel-tc/tc-stage), and accounts modeled time through
// the machine cost model.  Results are deterministic for a given view: BFS
// and triangle counts are bit-identical across rank counts; PageRank values
// agree across rank counts only to floating-point rounding (summation
// order differs), which is why serving equality tests pin it by tolerance.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/ops.hpp"
#include "kernel/view.hpp"
#include "sim/runtime.hpp"
#include "support/types.hpp"

namespace lacc::kernel {

/// Knobs shared by the kernels.  `tuning` maps onto the same communication
/// machinery as LACC itself (the dense_threshold doubles as the BFS
/// direction-switch point).
struct KernelOptions {
  dist::CommTuning tuning;
  double damping = 0.85;         ///< PageRank damping factor
  double tolerance = 1e-12;      ///< PageRank L1 convergence threshold
  int max_iterations = 200;      ///< PageRank iteration cap
};

/// Accounting shared by every kernel result.
struct KernelStats {
  std::uint64_t rounds = 0;      ///< BFS levels / PR iterations / TC stages
  double modeled_seconds = 0;    ///< max over ranks, machine cost model
  double wall_seconds = 0;
  /// Vector elements through the collectives: frontier entries (BFS), dense
  /// rank-vector elements (PageRank), broadcast adjacency entries (TC).
  std::uint64_t words_moved = 0;
  std::uint64_t epoch = 0;       ///< view epoch the kernel ran against
  sim::SpmdResult spmd;          ///< per-rank counters for metrics / traces
};

struct BfsResult {
  /// Hop distance from the source per vertex; kNoVertex = unreachable.
  std::vector<VertexId> dist;
  /// BFS-tree parent: the *minimum-id* previous-level neighbor (the min
  /// semiring makes the tree deterministic); parent[source] == source,
  /// kNoVertex = unreachable.
  std::vector<VertexId> parent;
  std::uint64_t reached = 0;  ///< vertices reached, source included
  KernelStats stats;
};

struct PageRankResult {
  std::vector<double> rank;   ///< sums to 1 over all vertices
  double l1_residual = 0;     ///< final iteration's L1 delta
  bool converged = false;     ///< residual hit tolerance before the cap
  KernelStats stats;
};

struct TriangleCountResult {
  std::uint64_t triangles = 0;
  KernelStats stats;
};

/// Direction-aware BFS from `source` over the (Select2nd, min) semiring:
/// one masked mxv per level with the complement-of-visited mask.  Throws
/// lacc::Error on an out-of-range source (a query input error).
BfsResult bfs(const GraphView& view, VertexId source,
              const KernelOptions& options = {});

/// PageRank by power iteration over (plus, times) mxv: every vertex's rank
/// pulls from its neighbors, dangling (degree-0) mass is summed rank-local
/// and redistributed uniformly via one allreduce per iteration, and the
/// iteration stops when the L1 delta drops to options.tolerance.
PageRankResult pagerank(const GraphView& view,
                        const KernelOptions& options = {});

/// Exact triangle count: q SUMMA-style stages; stage k broadcasts grid
/// column k's gathered adjacency along processor rows and every rank counts
/// the wedges it is responsible for with sorted-list intersections (the
/// masked L·Uᵀ shape, edges u<v and witnesses w>v so each triangle counts
/// exactly once).
TriangleCountResult triangle_count(const GraphView& view,
                                   const KernelOptions& options = {});

/// Top-k vertices by rank, descending; ties broken by smaller vertex id so
/// the serving answer is deterministic (the same convention as
/// core::top_k_components).
struct RankEntry {
  VertexId v = 0;
  double rank = 0;
};
std::vector<RankEntry> top_k_ranks(const std::vector<double>& ranks,
                                   std::size_t k);

}  // namespace lacc::kernel
