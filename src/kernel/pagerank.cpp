// PageRank by power iteration over the (plus, times) semiring.
//
// Each iteration is one dense mxv_plus pull: contrib[v] = x[v] / deg(v) for
// non-dangling v, y = A * contrib, and the new rank folds in the teleport
// term plus the dangling mass (rank held by degree-0 vertices), which is
// summed rank-locally and redistributed uniformly with a single allreduce —
// no dense broadcast of dangling corrections.  Convergence is the global L1
// delta between successive rank vectors.
//
// Determinism: for a fixed rank count the summation order inside mxv_plus
// and the allreduce combine order are fixed, so results are bit-identical
// run to run; across rank counts the summation order differs and results
// agree only to floating-point rounding (hence tolerance-pinned tests).

#include <algorithm>
#include <cmath>

#include "dist/grid.hpp"
#include "dist/ops.hpp"
#include "kernel/kernels.hpp"
#include "sim/runtime.hpp"

namespace lacc::kernel {

PageRankResult pagerank(const GraphView& view, const KernelOptions& options) {
  PageRankResult result;
  const VertexId n = view.n();
  if (n == 0) {
    result.converged = true;
    result.stats.epoch = view.epoch();
    return result;
  }

  const int nranks = view.nranks();
  std::vector<double> modeled(static_cast<std::size_t>(nranks), 0);
  std::uint64_t rounds_out = 0;
  std::uint64_t words_out = 0;
  double l1_out = 0;
  bool converged_out = false;

  auto spmd = sim::run_spmd(nranks, view.machine(), [&](sim::Comm& world) {
    dist::ProcGrid grid(world);
    sim::Region region(world, "kernel-pagerank");
    const dist::DistCsc& A = view.block(world.rank());
    const auto plus = [](double a, double b) { return a + b; };

    // deg[v] = neighbor count: one mxv_plus against the all-ones vector
    // (the matrix is symmetric, so row sums equal column sums).
    dist::DistVec<double> ones(grid, n);
    ones.fill(1.0);
    const auto deg = dist::mxv_plus(grid, A, ones, {}, options.tuning);

    dist::DistVec<double> x(grid, n);
    x.fill(1.0 / static_cast<double>(n));
    dist::DistVec<double> contrib(grid, n);

    std::uint64_t rounds = 0;
    std::uint64_t words = 0;
    double l1 = 0;
    bool converged = false;
    while (rounds < static_cast<std::uint64_t>(options.max_iterations)) {
      ++rounds;
      sim::Region round(world, "pagerank-round",
                        static_cast<std::int64_t>(rounds));
      double local_dangling = 0;
      contrib.clear();
      for (const VertexId g : x.owned()) {
        const double d = deg.get_or(g, 0.0);
        const double xv = x.at(g);
        if (d > 0)
          contrib.set(g, xv / d);
        else
          local_dangling += xv;
      }
      const double dangling = world.allreduce(local_dangling, plus);
      const auto y = dist::mxv_plus(grid, A, contrib, {}, options.tuning);
      double local_l1 = 0;
      const double teleport = (1.0 - options.damping) / static_cast<double>(n);
      const double dangling_share = dangling / static_cast<double>(n);
      for (const VertexId g : x.owned()) {
        const double nx = teleport + options.damping *
                                         (y.get_or(g, 0.0) + dangling_share);
        local_l1 += std::abs(nx - x.at(g));
        x.set(g, nx);
      }
      world.charge_compute(static_cast<double>(x.local_size()) * 4);
      l1 = world.allreduce(local_l1, plus);
      words += n;  // dense rank vector through the mxv per iteration
      if (l1 <= options.tolerance) {
        converged = true;
        break;
      }
    }

    modeled[static_cast<std::size_t>(world.rank())] = world.state().sim_time;
    const auto rank_all = dist::to_global(grid, x, 0.0);
    if (world.rank() == 0) {
      result.rank = rank_all;
      rounds_out = rounds;
      words_out = words;
      l1_out = l1;
      converged_out = converged;
    }
  });

  result.l1_residual = l1_out;
  result.converged = converged_out;
  result.stats.rounds = rounds_out;
  result.stats.words_moved = words_out;
  for (const double m : modeled)
    result.stats.modeled_seconds = std::max(result.stats.modeled_seconds, m);
  result.stats.wall_seconds = spmd.wall_seconds;
  result.stats.epoch = view.epoch();
  result.stats.spmd = std::move(spmd);
  return result;
}

std::vector<RankEntry> top_k_ranks(const std::vector<double>& ranks,
                                   std::size_t k) {
  std::vector<RankEntry> entries;
  entries.reserve(ranks.size());
  for (std::size_t v = 0; v < ranks.size(); ++v)
    entries.push_back({static_cast<VertexId>(v), ranks[v]});
  const auto order = [](const RankEntry& a, const RankEntry& b) {
    if (a.rank != b.rank) return a.rank > b.rank;
    return a.v < b.v;
  };
  const std::size_t keep = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + keep, entries.end(),
                    order);
  entries.resize(keep);
  return entries;
}

}  // namespace lacc::kernel
