#include "kernel/reference.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "support/error.hpp"

namespace lacc::kernel {

namespace {

/// Sorted undirected adjacency lists with self-loops and duplicates removed.
std::vector<std::vector<VertexId>> build_adjacency(const graph::EdgeList& el) {
  std::vector<std::vector<VertexId>> adj(el.n);
  for (const auto& e : el.edges) {
    LACC_CHECK_MSG(e.u < el.n && e.v < el.n, "edge endpoint out of range");
    if (e.u == e.v) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  for (auto& nbrs : adj) {
    // The reference oracle is deliberately naive and independent of the
    // radix helpers the kernels use.  lint-spmd: allow(raw-sort)
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

}  // namespace

std::vector<VertexId> reference_bfs_distances(const graph::EdgeList& el,
                                              VertexId source) {
  LACC_CHECK_MSG(source < el.n, "reference BFS source out of range");
  const auto adj = build_adjacency(el);
  std::vector<VertexId> dist(el.n, kNoVertex);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const VertexId w : adj[v]) {
      if (dist[w] != kNoVertex) continue;
      dist[w] = dist[v] + 1;
      queue.push_back(w);
    }
  }
  return dist;
}

std::vector<double> reference_pagerank(const graph::EdgeList& el,
                                       double damping, double tolerance,
                                       int max_iterations) {
  const auto n = static_cast<std::size_t>(el.n);
  if (n == 0) return {};
  const auto adj = build_adjacency(el);
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> x(n, inv_n);
  std::vector<double> y(n, 0.0);
  for (int it = 0; it < max_iterations; ++it) {
    double dangling = 0;
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      if (adj[v].empty()) {
        dangling += x[v];
        continue;
      }
      const double share = x[v] / static_cast<double>(adj[v].size());
      for (const VertexId w : adj[v]) y[w] += share;
    }
    const double teleport = (1.0 - damping) * inv_n;
    const double dangling_share = dangling * inv_n;
    double l1 = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const double nx = teleport + damping * (y[v] + dangling_share);
      l1 += std::abs(nx - x[v]);
      x[v] = nx;
    }
    if (l1 <= tolerance) break;
  }
  return x;
}

std::uint64_t reference_triangle_count(const graph::EdgeList& el) {
  const auto adj = build_adjacency(el);
  std::uint64_t count = 0;
  for (VertexId v = 0; v < el.n; ++v) {
    for (const VertexId u : adj[v]) {
      if (u >= v) break;  // neighbors sorted: only u < v wedges
      // Common neighbors w > v close the triangle u < v < w.
      auto iu = std::upper_bound(adj[u].begin(), adj[u].end(), v);
      auto iv = std::upper_bound(adj[v].begin(), adj[v].end(), v);
      while (iu != adj[u].end() && iv != adj[v].end()) {
        if (*iu < *iv)
          ++iu;
        else if (*iv < *iu)
          ++iv;
        else {
          ++count;
          ++iu;
          ++iv;
        }
      }
    }
  }
  return count;
}

}  // namespace lacc::kernel
