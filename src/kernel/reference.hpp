// Independent serial references the kernel tests and --verify paths check
// against.  Each is implemented with none of the distributed machinery: a
// queue BFS over a CSR built here, a dense power iteration, and a sorted
// adjacency intersection count — deliberately boring so a bug in the
// distributed kernels cannot hide in a shared helper.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "support/types.hpp"

namespace lacc::kernel {

/// Hop distances from `source` by queue BFS; kNoVertex = unreachable.
/// Self-loops and duplicate edges are tolerated (the edge list is used as
/// an undirected multigraph).
std::vector<VertexId> reference_bfs_distances(const graph::EdgeList& el,
                                              VertexId source);

/// PageRank by dense power iteration with uniform dangling redistribution,
/// iterated until the L1 delta drops to `tolerance` (or `max_iterations`).
/// Matches the distributed kernel's formulation exactly; only summation
/// order differs.
std::vector<double> reference_pagerank(const graph::EdgeList& el,
                                       double damping = 0.85,
                                       double tolerance = 1e-12,
                                       int max_iterations = 200);

/// Exact triangle count by sorted-neighbor intersection over canonical
/// undirected edges (self-loops and duplicates dropped first).
std::uint64_t reference_triangle_count(const graph::EdgeList& el);

}  // namespace lacc::kernel
