// Exact triangle counting: masked SpGEMM shape (L · Uᵀ against the mask of
// stored edges), executed as q SUMMA-style stages.
//
// Setup: each processor column j assembles the *full* adjacency of its
// column range C_j with one allgatherv inside the column communicator —
// the same gather alignment SpMV uses, and because grid rows own ascending
// row blocks, a stable counting sort by column leaves every neighbor list
// sorted.  Stage k then broadcasts grid column k's assembled adjacency
// along processor rows (root = row-communicator rank k, whose ranks all
// hold identical assembled data), and every rank counts the wedges it is
// responsible for: rank (i, j) owns the vertices of vector chunk j*q + i,
// and for each owned v and edge u < v with u in C_k it counts the common
// neighbors w > v by a sorted-list merge.  Each triangle a < b < c is
// counted exactly once, at v = b, u = a, w = c.
//
// Counts are integers, so results are bit-identical across rank counts.

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "dist/dist_mat.hpp"
#include "dist/grid.hpp"
#include "dist/ops.hpp"
#include "kernel/kernels.hpp"
#include "sim/runtime.hpp"
#include "support/partition.hpp"

namespace lacc::kernel {

namespace {

/// Column-compressed adjacency of one grid column's range [begin, end):
/// colptr has end - begin + 1 entries, rows holds ascending neighbor ids.
struct GatheredColumns {
  VertexId begin = 0;
  VertexId end = 0;
  std::vector<std::uint64_t> colptr;
  std::vector<VertexId> rows;

  std::span<const VertexId> neighbors(VertexId col) const {
    const auto c = static_cast<std::size_t>(col - begin);
    return {rows.data() + colptr[c], rows.data() + colptr[c + 1]};
  }
};

/// Assemble the full adjacency of this rank's column range by gathering
/// every grid row's block slice inside the column communicator.
GatheredColumns gather_columns(dist::ProcGrid& grid, const dist::DistCsc& A) {
  std::vector<dist::CscCoord> local;
  local.reserve(static_cast<std::size_t>(A.local_nnz()));
  const auto& cols = A.col_ids();
  for (std::size_t ci = 0; ci < cols.size(); ++ci)
    for (const VertexId r : A.col_rows(ci)) local.push_back({r, cols[ci]});
  const std::vector<dist::CscCoord> gathered =
      grid.col_comm().allgatherv(local);

  GatheredColumns out;
  out.begin = A.col_begin();
  out.end = A.col_end();
  const auto width = static_cast<std::size_t>(out.end - out.begin);
  out.colptr.assign(width + 1, 0);
  for (const auto& c : gathered)
    ++out.colptr[static_cast<std::size_t>(c.col - out.begin) + 1];
  for (std::size_t c = 1; c <= width; ++c) out.colptr[c] += out.colptr[c - 1];
  out.rows.resize(gathered.size());
  // Stable counting sort by column: each source segment is (col, row)
  // sorted and segments arrive in ascending grid-row order, so every
  // column's rows land ascending.
  std::vector<std::uint64_t> cursor(out.colptr.begin(), out.colptr.end() - 1);
  for (const auto& c : gathered)
    out.rows[cursor[static_cast<std::size_t>(c.col - out.begin)]++] = c.row;
  grid.world().charge_compute(static_cast<double>(gathered.size()) * 2);
  return out;
}

/// |{w in a ∩ b : w > v}| by a two-pointer merge over the sorted tails.
std::uint64_t count_common_above(std::span<const VertexId> a,
                                 std::span<const VertexId> b, VertexId v,
                                 double& work) {
  auto ia = std::upper_bound(a.begin(), a.end(), v);
  auto ib = std::upper_bound(b.begin(), b.end(), v);
  work += static_cast<double>((a.end() - ia) + (b.end() - ib));
  std::uint64_t count = 0;
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib)
      ++ia;
    else if (*ib < *ia)
      ++ib;
    else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

}  // namespace

TriangleCountResult triangle_count(const GraphView& view,
                                   const KernelOptions& options) {
  (void)options;  // the stage schedule has no tuning knobs yet
  const int nranks = view.nranks();
  TriangleCountResult result;
  std::vector<double> modeled(static_cast<std::size_t>(nranks), 0);
  std::uint64_t rounds_out = 0;
  std::uint64_t words_out = 0;

  auto spmd = sim::run_spmd(nranks, view.machine(), [&](sim::Comm& world) {
    dist::ProcGrid grid(world);
    sim::Region region(world, "kernel-tc");
    const dist::DistCsc& A = view.block(world.rank());
    const auto q = static_cast<std::uint64_t>(grid.q());
    const BlockPartition& part = A.chunk_partition();

    const GatheredColumns mine = gather_columns(grid, A);
    std::uint64_t words = mine.rows.size();

    // The vertices this rank is responsible for: its own vector chunk,
    // which lies inside its column range C_j.
    const std::uint64_t chunk =
        static_cast<std::uint64_t>(grid.my_col()) * q +
        static_cast<std::uint64_t>(grid.my_row());
    const VertexId vbegin = part.begin(chunk);
    const VertexId vend = part.end(chunk);

    std::uint64_t local = 0;
    for (std::uint64_t k = 0; k < q; ++k) {
      sim::Region stage(world, "tc-stage", static_cast<std::int64_t>(k));
      GatheredColumns other;
      other.begin = part.begin(k * q);
      other.end = part.begin((k + 1) * q);
      if (static_cast<std::uint64_t>(grid.my_col()) == k) {
        other.colptr = mine.colptr;
        other.rows = mine.rows;
      }
      grid.row_comm().bcast(other.colptr, static_cast<int>(k));
      grid.row_comm().bcast(other.rows, static_cast<int>(k));
      words += other.rows.size();

      double work = 0;
      for (VertexId v = vbegin; v < vend; ++v) {
        const auto nv = mine.neighbors(v);
        // Wedge edges u < v with u owned by stage column k; neighbor lists
        // are sorted, so the eligible u span is contiguous.
        auto iu = std::lower_bound(nv.begin(), nv.end(), other.begin);
        const VertexId ucap = std::min(v, other.end);
        for (; iu != nv.end() && *iu < ucap; ++iu)
          local += count_common_above(other.neighbors(*iu), nv, v, work);
      }
      world.charge_compute(work);
    }

    const std::uint64_t total = world.allreduce(
        local, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    modeled[static_cast<std::size_t>(world.rank())] = world.state().sim_time;
    if (world.rank() == 0) {
      result.triangles = total;
      rounds_out = q;
      words_out = words;
    }
  });

  result.stats.rounds = rounds_out;
  result.stats.words_moved = words_out;
  for (const double m : modeled)
    result.stats.modeled_seconds = std::max(result.stats.modeled_seconds, m);
  result.stats.wall_seconds = spmd.wall_seconds;
  result.stats.epoch = view.epoch();
  result.stats.spmd = std::move(spmd);
  return result;
}

}  // namespace lacc::kernel
