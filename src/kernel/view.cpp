#include "kernel/view.hpp"

#include "dist/grid.hpp"
#include "sim/runtime.hpp"

namespace lacc::kernel {

GraphView GraphView::from_edges(const graph::EdgeList& el, int nranks,
                                const sim::MachineModel& machine) {
  int q = 0;
  while (q * q < nranks) ++q;
  LACC_CHECK_MSG(nranks >= 1 && q * q == nranks,
                 "graph view rank count " << nranks
                                          << " is not a perfect square");
  std::vector<std::shared_ptr<const dist::DistCsc>> blocks(
      static_cast<std::size_t>(nranks));
  const auto spmd = sim::run_spmd(nranks, machine, [&](sim::Comm& world) {
    dist::ProcGrid grid(world);
    sim::Region region(world, "kernel-view-build");
    blocks[static_cast<std::size_t>(world.rank())] =
        std::make_shared<const dist::DistCsc>(grid, el);
  });
  return GraphView(el.n, nranks, machine, /*epoch=*/0, std::move(blocks),
                   spmd.sim_seconds);
}

}  // namespace lacc::kernel
