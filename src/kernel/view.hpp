// Immutable read view of the 2D-distributed graph, shared by every kernel.
//
// LACC's connected components, BFS, PageRank, and triangle counting all
// consume the same per-rank DCSC blocks; what differs is the semiring.  The
// GraphView pins those blocks behind an immutable interface so the three
// producers — a from-scratch build, a stream engine epoch, and a serve /
// shard snapshot — hand kernels the identical structure without copying:
//
//   * GraphView::from_edges() builds fresh blocks with the standard
//     distributed ingestion (one SPMD session);
//   * StreamEngine::freeze_view() *shares* each rank's base block when no
//     delta run is resident, and pays one merged copy per rank otherwise
//     (processed-but-uncompacted runs are reflected in the labels but not
//     the DCSC arrays, so a faithful view must fold them in);
//   * serve::Snapshot carries the frozen view of its epoch, so analytics
//     run against retained snapshots while ingest continues.
//
// Sharing is safe because a frozen block is never mutated: the stream
// engine's compaction copies-on-write when a view still references its
// base (see StreamEngine::advance_epoch).  Kernels spawn their own
// run_spmd sessions over the view; the conformance layer's block fences
// pass because kernel sessions use the view's rank count, so thread N is
// virtual rank N in both the producing and the consuming session.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "dist/dist_mat.hpp"
#include "graph/edge_list.hpp"
#include "sim/machine.hpp"
#include "support/error.hpp"
#include "support/types.hpp"

namespace lacc::kernel {

class GraphView {
 public:
  /// Build a fresh view from an edge list: one SPMD session constructing
  /// every rank's DCSC block (the lacc_dist ingestion path).  `nranks` must
  /// be a perfect square.  The session's modeled cost is recorded as
  /// build_modeled_seconds().
  static GraphView from_edges(const graph::EdgeList& el, int nranks,
                              const sim::MachineModel& machine);

  GraphView(VertexId n, int nranks, sim::MachineModel machine,
            std::uint64_t epoch,
            std::vector<std::shared_ptr<const dist::DistCsc>> blocks,
            double build_modeled_seconds = 0)
      : n_(n),
        nranks_(nranks),
        machine_(std::move(machine)),
        epoch_(epoch),
        build_modeled_seconds_(build_modeled_seconds),
        blocks_(std::move(blocks)) {
    LACC_CHECK(blocks_.size() == static_cast<std::size_t>(nranks_));
  }

  VertexId n() const { return n_; }
  int nranks() const { return nranks_; }
  const sim::MachineModel& machine() const { return machine_; }

  /// Epoch of the producing snapshot (0 for from-scratch views).
  std::uint64_t epoch() const { return epoch_; }

  /// Modeled seconds paid to materialize the view: the construction session
  /// for from_edges(), the merge session for a freeze with resident delta
  /// runs, and 0 for a freeze that shared every block.
  double build_modeled_seconds() const { return build_modeled_seconds_; }

  /// Directed stored entries across all blocks (each undirected edge twice).
  EdgeId global_nnz() const {
    return blocks_.empty() ? 0 : blocks_[0]->global_nnz();
  }

  /// Rank `rank`'s DCSC block.  Iterating its columns is fenced: only the
  /// matching virtual rank of a kernel's SPMD session may touch it.
  const dist::DistCsc& block(int rank) const {
    return *blocks_[static_cast<std::size_t>(rank)];
  }

  std::shared_ptr<const dist::DistCsc> block_ptr(int rank) const {
    return blocks_[static_cast<std::size_t>(rank)];
  }

 private:
  VertexId n_ = 0;
  int nranks_ = 1;
  sim::MachineModel machine_;
  std::uint64_t epoch_ = 0;
  double build_modeled_seconds_ = 0;
  std::vector<std::shared_ptr<const dist::DistCsc>> blocks_;
};

}  // namespace lacc::kernel
