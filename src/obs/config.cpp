#include "obs/config.hpp"

#include <atomic>

#include "support/env.hpp"

namespace lacc::obs {

namespace {
// -1 = not yet read from the environment, else 0/1.  Racing first reads
// both compute the same value, so relaxed ordering is fine.
std::atomic<int> g_trace{-1};
}  // namespace

bool trace_enabled() {
  int v = g_trace.load(std::memory_order_relaxed);
  if (v < 0) {
    v = env_int("LACC_TRACE", 0) != 0 ? 1 : 0;
    g_trace.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_trace_enabled(bool on) {
  g_trace.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace lacc::obs
