// Process-wide observability switches.
#pragma once

namespace lacc::obs {

/// True when collective/kernel-level trace spans should be recorded.
/// Lazily initialized from the LACC_TRACE environment variable (0/absent =
/// off); flip explicitly with set_trace_enabled (e.g. lacc_cli --trace-out).
/// Phase-level regions are always recorded — this gates only the
/// fine-grained spans, so the cost model and per-phase aggregates are
/// bit-identical either way (docs/OBSERVABILITY.md).
bool trace_enabled();

/// Override the LACC_TRACE setting for the rest of the process.
void set_trace_enabled(bool on);

}  // namespace lacc::obs
