// Minimal streaming JSON writer for the trace and metrics exporters.
//
// Deliberately tiny (no external dependency, no DOM): callers drive the
// structure with begin/end calls and the writer tracks comma placement.
// Doubles are printed with enough digits to round-trip; non-finite values
// are emitted as null so the output is always standard JSON.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace lacc::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object() {
    element_prefix();
    out_ << '{';
    stack_.push_back(true);
  }
  void end_object() {
    pop();
    out_ << '}';
  }
  void begin_array() {
    element_prefix();
    out_ << '[';
    stack_.push_back(true);
  }
  void end_array() {
    pop();
    out_ << ']';
  }

  void key(std::string_view k) {
    element_prefix();
    write_string(k);
    out_ << ':';
    pending_key_ = true;
  }

  void value(std::string_view v) {
    element_prefix();
    write_string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    element_prefix();
    out_ << (v ? "true" : "false");
  }
  void value(double v) {
    element_prefix();
    if (!std::isfinite(v)) {
      out_ << "null";
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
  }
  void value(std::int64_t v) {
    element_prefix();
    out_ << v;
  }
  void value(std::uint64_t v) {
    element_prefix();
    out_ << v;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }

  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  void element_prefix() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back())
      stack_.back() = false;
    else
      out_ << ',';
  }

  void pop() {
    LACC_DCHECK(!stack_.empty() && !pending_key_);
    stack_.pop_back();
  }

  void write_string(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\r': out_ << "\\r"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> stack_;  ///< per open container: "next element is first"
  bool pending_key_ = false;
};

}  // namespace lacc::obs
