#include "obs/latency.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace lacc::obs::detail {

std::size_t bucket_of(std::uint64_t ns) {
  if (ns < 16) return static_cast<std::size_t>(ns);
  const int e = 63 - std::countl_zero(ns);  // floor(log2), >= 4 here
  const auto sub = static_cast<std::size_t>((ns >> (e - 4)) & 15u);
  const auto bucket = 16u * static_cast<std::size_t>(e - 3) + sub;
  return std::min(bucket, kLatencyBuckets - 1);
}

std::uint64_t bucket_mid_ns(std::size_t bucket) {
  if (bucket < 16) return bucket;
  const int e = static_cast<int>(bucket / 16) + 3;
  const std::uint64_t sub = bucket % 16;
  const std::uint64_t width = std::uint64_t{1} << (e - 4);
  const std::uint64_t lower = (std::uint64_t{1} << e) + sub * width;
  return lower + width / 2;
}

std::uint64_t seconds_to_ns(double seconds) {
  if (!(seconds > 0)) return 0;  // negatives and NaN clamp to the zero bucket
  const double ns = seconds * 1e9;
  return ns >= 9.2e18 ? ~std::uint64_t{0} : static_cast<std::uint64_t>(ns);
}

double quantile_of(const std::array<std::uint64_t, kLatencyBuckets>& snap,
                   double q) {
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) total += snap[b];
  if (total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    seen += snap[b];
    if (seen >= rank) return static_cast<double>(bucket_mid_ns(b)) * 1e-9;
  }
  return static_cast<double>(bucket_mid_ns(kLatencyBuckets - 1)) * 1e-9;
}

}  // namespace lacc::obs::detail
