// Concurrent latency histogram for the serving layer's tail-latency SLOs.
//
// Log-bucketed (16 linear sub-buckets per power-of-two octave over
// nanoseconds, HdrHistogram-style), so a record() is one relaxed atomic
// increment and quantile estimates stay within ~6% relative error at any
// magnitude from nanoseconds to hours.  record() is wait-free and safe from
// any number of threads; quantile()/count() read a relaxed snapshot, so a
// reading taken while writers are active is approximate in the usual
// monitoring sense (it reflects some recent prefix of the recordings, never
// garbage).  See docs/SERVING.md for how lacc::serve reports these.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace lacc::obs {

class LatencyHistogram {
 public:
  /// 16 exact buckets under 16 ns, then 16 sub-buckets per octave up to
  /// the 2^63 ns (~292 year) saturation point.
  static constexpr std::size_t kBuckets = 16 * 60 + 16;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Record one latency sample (negative values clamp to zero).
  void record_seconds(double seconds);
  void record_ns(std::uint64_t ns) {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Samples recorded so far.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// The q-quantile (q in [0, 1]) of the recorded samples, in seconds;
  /// 0 when nothing has been recorded.  quantile(0.99) is the p99.
  double quantile(double q) const;

  /// Fold another histogram's samples into this one.
  void merge(const LatencyHistogram& other);

  /// Bucket index of a nanosecond value (exposed for the unit tests).
  static std::size_t bucket_of(std::uint64_t ns);
  /// Representative (midpoint) nanosecond value of a bucket.
  static std::uint64_t bucket_mid_ns(std::size_t bucket);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace lacc::obs
