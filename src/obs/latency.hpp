// Concurrent latency histogram for the serving layer's tail-latency SLOs.
//
// Log-bucketed (16 linear sub-buckets per power-of-two octave over
// nanoseconds, HdrHistogram-style), so a record() is one relaxed atomic
// increment and quantile estimates stay within ~6% relative error at any
// magnitude from nanoseconds to hours.  record() is wait-free and safe from
// any number of threads; quantile() reads a relaxed snapshot, so a reading
// taken while writers are active is approximate in the usual monitoring
// sense (it reflects some recent prefix of the recordings, never garbage).
// The one ordered edge is count_: record_ns publishes it with release and
// count() reads it with acquire, so `hist.count() >= n` observed by a reader
// guarantees the n recordings' bucket increments are visible to a subsequent
// quantile() walk — the invariant the model checker verifies
// (tests/sched/sched_histogram_test.cpp).  See docs/SERVING.md for how
// lacc::serve reports these.
//
// The class is a template over a sync policy (support/sync.hpp):
// LatencyHistogram below is the production alias over std::atomic, and the
// deterministic model checker instantiates the same code with
// sched::SchedSyncPolicy.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "support/sync.hpp"

namespace lacc::obs {

namespace detail {

/// 16 exact buckets under 16 ns, then 16 sub-buckets per octave up to the
/// 2^63 ns (~292 year) saturation point.
inline constexpr std::size_t kLatencyBuckets = 16 * 60 + 16;

/// Bucket index of a nanosecond value (exposed for the unit tests).
std::size_t bucket_of(std::uint64_t ns);
/// Representative (midpoint) nanosecond value of a bucket.
std::uint64_t bucket_mid_ns(std::size_t bucket);
/// Quantile walk over a snapshot of the bucket counts, in seconds.
double quantile_of(const std::array<std::uint64_t, kLatencyBuckets>& snap,
                   double q);
/// Nanosecond clamp of a seconds sample (negatives and NaN -> 0).
std::uint64_t seconds_to_ns(double seconds);

}  // namespace detail

template <typename SyncPolicy>
class BasicLatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = detail::kLatencyBuckets;

  BasicLatencyHistogram() = default;
  BasicLatencyHistogram(const BasicLatencyHistogram&) = delete;
  BasicLatencyHistogram& operator=(const BasicLatencyHistogram&) = delete;

  /// Record one latency sample (negative values clamp to zero).
  void record_seconds(double seconds) { record_ns(detail::seconds_to_ns(seconds)); }
  void record_ns(std::uint64_t ns) {
    buckets_[detail::bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    // Release: pairs with the acquire in count().  A reader that observes
    // this increment also observes the bucket increment above — RMWs keep
    // the release sequence alive through later relaxed fetch_adds.
    count_.fetch_add(1, std::memory_order_release);
  }

  /// Samples recorded so far.  Acquire: see record_ns().
  std::uint64_t count() const {
    return count_.load(std::memory_order_acquire);
  }

  /// The q-quantile (q in [0, 1]) of the recorded samples, in seconds;
  /// 0 when nothing has been recorded.  quantile(0.99) is the p99.
  double quantile(double q) const {
    // Snapshot first so the rank and the walk agree on one set of counts.
    std::array<std::uint64_t, kBuckets> snap;
    for (std::size_t b = 0; b < kBuckets; ++b)
      snap[b] = buckets_[b].load(std::memory_order_relaxed);
    return detail::quantile_of(snap, q);
  }

  /// Fold another histogram's samples into this one.
  void merge(const BasicLatencyHistogram& other) {
    std::uint64_t added = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t c = other.buckets_[b].load(std::memory_order_relaxed);
      if (c != 0) {
        buckets_[b].fetch_add(c, std::memory_order_relaxed);
        added += c;
      }
    }
    count_.fetch_add(added, std::memory_order_release);
  }

  static std::size_t bucket_of(std::uint64_t ns) { return detail::bucket_of(ns); }
  static std::uint64_t bucket_mid_ns(std::size_t b) { return detail::bucket_mid_ns(b); }

  /// Raw count of one bucket (monitoring / test surface).  Relaxed is
  /// enough: an acquire on count() already extends visibility to every
  /// bucket increment it covers.
  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  template <typename T>
  using Atomic = typename SyncPolicy::template atomic<T>;

  std::array<Atomic<std::uint64_t>, kBuckets> buckets_{};
  Atomic<std::uint64_t> count_{0};
};

using LatencyHistogram = BasicLatencyHistogram<support::StdSyncPolicy>;

}  // namespace lacc::obs
