#include "obs/metrics.hpp"

#include <filesystem>
#include <fstream>

#include "obs/json.hpp"
#include "support/env.hpp"
#include "support/error.hpp"
#include "support/types.hpp"

namespace lacc::obs {

namespace {

/// A "word" is one vector element on the modeled machine.
constexpr double kWordBytes = static_cast<double>(sizeof(VertexId));

void write_phase_entry(JsonWriter& w, const OpCounters& mx,
                       const OpCounters& sm) {
  w.begin_object();
  w.kv("modeled_max", mx.modeled_seconds());
  w.kv("modeled_sum", sm.modeled_seconds());
  w.kv("comm_max", mx.comm_seconds);
  w.kv("compute_max", mx.compute_seconds);
  w.kv("wall_max", mx.wall_seconds);
  w.kv("messages_max", mx.messages);
  w.kv("messages_sum", sm.messages);
  w.kv("bytes_max", mx.bytes);
  w.kv("bytes_sum", sm.bytes);
  w.kv("words_max", static_cast<double>(mx.bytes) / kWordBytes);
  w.kv("words_sum", static_cast<double>(sm.bytes) / kWordBytes);
  w.end_object();
}

void write_scalars(JsonWriter& w, const Scalars& scalars) {
  w.begin_object();
  for (const auto& [name, value] : scalars) w.kv(name, value);
  w.end_object();
}

}  // namespace

RunRecord make_run_record(std::string name, int ranks,
                          const std::vector<RankStats>& per_rank,
                          double modeled_seconds, double wall_seconds,
                          Scalars scalars) {
  RunRecord rec;
  rec.name = std::move(name);
  rec.ranks = ranks;
  rec.modeled_seconds = modeled_seconds;
  rec.wall_seconds = wall_seconds;
  rec.scalars = std::move(scalars);
  rec.max = max_over_ranks(per_rank);
  rec.sum = sum_over_ranks(per_rank);
  return rec;
}

void write_metrics_json(std::ostream& out, const std::string& tool,
                        const Scalars& config,
                        const std::vector<RunRecord>& runs) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("schema", "lacc-metrics-v7");
  w.kv("tool", tool);
  w.kv("word_bytes", kWordBytes);
  w.key("config");
  write_scalars(w, config);
  w.key("runs");
  w.begin_array();
  for (const RunRecord& run : runs) {
    w.begin_object();
    w.kv("name", run.name);
    w.kv("ranks", run.ranks);
    w.kv("modeled_seconds", run.modeled_seconds);
    w.kv("wall_seconds", run.wall_seconds);
    w.key("scalars");
    write_scalars(w, run.scalars);
    if (!run.epochs.empty()) {
      w.key("epochs");
      w.begin_array();
      for (const Scalars& epoch : run.epochs) write_scalars(w, epoch);
      w.end_array();
    }
    if (!run.serve.empty()) {
      w.key("serve");
      write_scalars(w, run.serve);
    }
    if (!run.prepass.empty()) {
      w.key("prepass");
      write_scalars(w, run.prepass);
    }
    if (!run.durability.empty()) {
      w.key("durability");
      write_scalars(w, run.durability);
    }
    if (!run.shard.empty()) {
      w.key("shard");
      w.begin_object();
      w.key("totals");
      write_scalars(w, run.shard);
      if (!run.shard_per_shard.empty()) {
        w.key("per_shard");
        w.begin_array();
        for (const Scalars& s : run.shard_per_shard) write_scalars(w, s);
        w.end_array();
      }
      if (!run.shard_per_replica.empty()) {
        w.key("per_replica");
        w.begin_array();
        for (const Scalars& s : run.shard_per_replica) write_scalars(w, s);
        w.end_array();
      }
      w.end_object();
    }
    if (!run.kernels.empty()) {
      w.key("kernels");
      w.begin_array();
      for (const Scalars& k : run.kernels) write_scalars(w, k);
      w.end_array();
    }
    w.key("total");
    write_phase_entry(w, run.max.total, run.sum.total);
    w.key("phases");
    w.begin_object();
    for (const auto& [name, mx] : run.max.regions) {
      w.key(name);
      const auto it = run.sum.regions.find(name);
      write_phase_entry(w, mx,
                        it == run.sum.regions.end() ? OpCounters{} : it->second);
    }
    w.end_object();
    w.key("counters");
    w.begin_object();
    for (const auto& [name, mx] : run.max.counters) {
      w.key(name);
      w.begin_object();
      w.kv("max", mx);
      const auto it = run.sum.counters.find(name);
      w.kv("sum", it == run.sum.counters.end() ? std::uint64_t{0} : it->second);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

std::string metrics_out_dir() { return env_string("LACC_METRICS_OUT", ""); }

std::string write_metrics_file(const std::string& tool, const Scalars& config,
                               const std::vector<RunRecord>& runs) {
  const std::string dir = metrics_out_dir();
  if (dir.empty()) return "";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_" + tool + ".json";
  std::ofstream out(path);
  LACC_CHECK_MSG(static_cast<bool>(out), "cannot open metrics file " << path);
  write_metrics_json(out, tool, config, runs);
  return path;
}

}  // namespace lacc::obs
