// Machine-readable metrics emitter: the `lacc-metrics-v7` JSON schema.
//
// Benches and the CLI reduce an SPMD run to one RunRecord (per-phase
// modeled/wall seconds, words, messages, per-rank max and sum) and write a
// BENCH_<tool>.json file that tools/check_obs_json.py validates and the
// perf trajectory consumes.  v2 added an optional per-run "epochs" array for
// streaming runs (one scalar block per advance_epoch); v3 added an optional
// per-run "serve" scalar block (throughput, p50/p95/p99 latency, queue
// depth, shed count) for the concurrent serving layer; v4 added an optional
// per-run "prepass" scalar block attributing the Afforest-style sampling
// pre-pass (sampled/skip edges, resolved vertices, modeled seconds); v5
// adds an optional per-run "durability" scalar block (WAL records/bytes,
// fsyncs, run files, compactions, cache hit rate, recovery info) for
// engines running with a --data-dir; v6 adds an optional per-run "shard"
// block for sharded serving (lacc::shard::Router): reconcile totals plus a
// "per_shard" array (one scalar block per shard, keyed by a strictly
// increasing "shard" id) and a "per_replica" array (keyed by "replica");
// v7 adds an optional per-run "kernels" array for analytics runs
// (lacc::kernel): one scalar block per kernel, keyed by a strictly
// increasing numeric "kernel_id" (0 = bfs, 1 = pagerank, 2 = tc),
// aggregating that kernel's executions within the run.
// Files without the optional blocks are exactly the v1 shape.  See
// docs/OBSERVABILITY.md.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/stats.hpp"

namespace lacc::obs {

/// Named scalar attached to a run or to the whole file's config block.
using Scalars = std::vector<std::pair<std::string, double>>;

/// One experiment (one SPMD run, or one serial measurement with ranks = 0).
struct RunRecord {
  std::string name;
  int ranks = 0;              ///< 0 = serial / no SPMD stats
  double modeled_seconds = 0;
  double wall_seconds = 0;
  Scalars scalars;            ///< experiment-specific values
  StatsSummary max;           ///< max over ranks (critical path)
  StatsSummary sum;           ///< sum over ranks (aggregate volume)
  /// Streaming runs: one scalar block per epoch (must carry an "epoch" key,
  /// strictly increasing).  Empty for static runs — the key is then omitted
  /// from the JSON entirely.
  std::vector<Scalars> epochs;
  /// Serving runs: the lacc::serve scalar block (throughput_rps,
  /// read_p50_ms/p95/p99, shed, ...).  Empty for everything else — the key
  /// is then omitted from the JSON entirely.
  Scalars serve;
  /// Runs with the sampling pre-pass on: its attribution block (rounds,
  /// sampled_edges, skip_edges, resolved_vertices, modeled_seconds).  Empty
  /// otherwise — the key is then omitted from the JSON entirely.
  Scalars prepass;
  /// Durable runs (engine constructed with a data directory): the
  /// stream::durable scalar block (wal_records, fsyncs, run_files_written,
  /// recovered, ...; see durability_scalars()).  Empty for memory-only runs
  /// — the key is then omitted from the JSON entirely.
  Scalars durability;
  /// Sharded serving runs (lacc::shard::Router): global reconcile totals
  /// (global_epochs, reconcile_rounds, boundary_raw_total, words_moved,
  /// ticket_waits, ...).  Empty for everything else — the whole "shard"
  /// object is then omitted from the JSON entirely.
  Scalars shard;
  /// Per-shard scalar blocks; each must carry a "shard" key, strictly
  /// increasing.  Only emitted (inside the "shard" object) when non-empty.
  std::vector<Scalars> shard_per_shard;
  /// Per-replica scalar blocks; each must carry a "replica" key, strictly
  /// increasing.  Only emitted (inside the "shard" object) when non-empty.
  std::vector<Scalars> shard_per_replica;
  /// Analytics runs (lacc::kernel): one scalar block per kernel, each
  /// carrying a strictly increasing "kernel_id" key (0 = bfs, 1 = pagerank,
  /// 2 = tc) plus that kernel's aggregates (invocations, rounds,
  /// modeled_seconds, ...).  Empty for everything else — the key is then
  /// omitted from the JSON entirely.
  std::vector<Scalars> kernels;
};

/// Reduce per-rank stats into a RunRecord.  Pass an empty `per_rank` for
/// serial measurements.
RunRecord make_run_record(std::string name, int ranks,
                          const std::vector<RankStats>& per_rank,
                          double modeled_seconds, double wall_seconds,
                          Scalars scalars = {});

/// Write the lacc-metrics-v7 document for one tool's runs.
void write_metrics_json(std::ostream& out, const std::string& tool,
                        const Scalars& config,
                        const std::vector<RunRecord>& runs);

/// Directory named by LACC_METRICS_OUT, or "" when metrics are disabled.
std::string metrics_out_dir();

/// If LACC_METRICS_OUT is set, create the directory and write
/// <dir>/BENCH_<tool>.json; returns the path written, or "" when disabled.
std::string write_metrics_file(const std::string& tool, const Scalars& config,
                               const std::vector<RunRecord>& runs);

}  // namespace lacc::obs
