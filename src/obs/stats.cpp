#include "obs/stats.hpp"

#include <algorithm>

namespace lacc::obs {

namespace {

void max_into(OpCounters& into, const OpCounters& from) {
  into.messages = std::max(into.messages, from.messages);
  into.bytes = std::max(into.bytes, from.bytes);
  into.comm_seconds = std::max(into.comm_seconds, from.comm_seconds);
  into.compute_seconds = std::max(into.compute_seconds, from.compute_seconds);
  into.wall_seconds = std::max(into.wall_seconds, from.wall_seconds);
}

}  // namespace

std::map<std::string, OpCounters> RankStats::region_totals() const {
  std::map<std::string, OpCounters> out;
  for (const Span& span : spans.spans()) out[span.name].add(span.total);
  return out;
}

StatsSummary max_over_ranks(const std::vector<RankStats>& per_rank) {
  StatsSummary out;
  for (const auto& rs : per_rank) {
    max_into(out.total, rs.total);
    for (const auto& [name, ops] : rs.region_totals())
      max_into(out.regions[name], ops);
    for (const auto& [name, v] : rs.counters) {
      auto& slot = out.counters[name];
      slot = std::max(slot, v);
    }
  }
  return out;
}

StatsSummary sum_over_ranks(const std::vector<RankStats>& per_rank) {
  StatsSummary out;
  for (const auto& rs : per_rank) {
    out.total.add(rs.total);
    for (const auto& [name, ops] : rs.region_totals())
      out.regions[name].add(ops);
    for (const auto& [name, v] : rs.counters) out.counters[name] += v;
  }
  return out;
}

}  // namespace lacc::obs
