// Per-rank statistics for the SPMD runtime: hierarchical region spans.
//
// Every collective charges modeled communication cost and every kernel
// charges modeled compute cost; charges accumulate into a grand total and
// into the innermost open span of a per-rank span log.  Spans nest
// (iteration -> phase -> collective) and record both the modeled interval
// and the measured wall interval, so one SPMD run can be exported as a
// Chrome trace-event timeline (trace.hpp) or reduced to the per-phase
// aggregates the benchmark harnesses use to regenerate the paper's
// Figure 8 (per-phase scaling) and Figure 3 (per-rank request skew).
// See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace lacc::obs {

/// Accumulated cost attributed to one span (or the total).
struct OpCounters {
  std::uint64_t messages = 0;   ///< modeled messages sent
  std::uint64_t bytes = 0;      ///< modeled bytes moved
  double comm_seconds = 0;      ///< modeled communication time
  double compute_seconds = 0;   ///< modeled local-work time
  double wall_seconds = 0;      ///< measured wall time (spans only)

  void add(const OpCounters& other) {
    messages += other.messages;
    bytes += other.bytes;
    comm_seconds += other.comm_seconds;
    compute_seconds += other.compute_seconds;
    wall_seconds += other.wall_seconds;
  }
  double modeled_seconds() const { return comm_seconds + compute_seconds; }
};

/// One timed interval on one rank.  Spans form a forest: `parent` indexes
/// the enclosing span in the owning SpanLog (-1 = top level).
struct Span {
  std::string name;
  std::int32_t parent = -1;  ///< index of enclosing span, -1 if top level
  std::int32_t depth = 0;    ///< nesting depth (top level = 0)
  std::int64_t tag = -1;     ///< optional instance id (e.g. iteration number)
  double modeled_begin = 0;  ///< rank's modeled clock at open
  double modeled_end = 0;    ///< rank's modeled clock at close
  double wall_begin = 0;     ///< run-epoch wall clock at open
  double wall_end = 0;       ///< run-epoch wall clock at close
  /// Charges issued while this span was innermost (exclusive).
  OpCounters self;
  /// Inclusive rollup, filled at close: self plus all children's totals,
  /// with wall_seconds set to this span's own wall duration (children's
  /// wall intervals are contained in the parent's, so they don't add).
  OpCounters total;
};

/// Append-only log of (possibly nested) spans recorded by one rank.
/// Single-threaded: only the owning rank's thread touches it while a run
/// is live (same contract as the rest of RankState).
class SpanLog {
 public:
  /// Open a span; returns its id.  Charges issued before the matching
  /// close() are attributed to this span (unless a deeper span opens).
  std::uint32_t open(std::string name, double modeled_now, double wall_now,
                     std::int64_t tag = -1) {
    Span span;
    span.name = std::move(name);
    span.parent = open_.empty() ? -1 : static_cast<std::int32_t>(open_.back());
    span.depth = static_cast<std::int32_t>(open_.size());
    span.tag = tag;
    span.modeled_begin = modeled_now;
    span.wall_begin = wall_now;
    const auto id = static_cast<std::uint32_t>(spans_.size());
    spans_.push_back(std::move(span));
    open_.push_back(id);
    return id;
  }

  /// Close the innermost open span (must be `id`): stamps the end times and
  /// rolls the inclusive total up into the parent.
  void close(std::uint32_t id, double modeled_now, double wall_now) {
    LACC_CHECK_MSG(!open_.empty() && open_.back() == id,
                   "span close out of order: closing id " << id);
    open_.pop_back();
    Span& span = spans_[id];
    span.modeled_end = modeled_now;
    span.wall_end = wall_now;
    span.total = span.self;  // children already rolled up on their close
    span.total.add(children_total_[id]);
    span.total.wall_seconds = wall_now - span.wall_begin;
    children_total_.erase(id);
    if (span.parent >= 0) {
      OpCounters contribution = span.total;
      contribution.wall_seconds = 0;  // contained in the parent's interval
      children_total_[static_cast<std::uint32_t>(span.parent)].add(
          contribution);
    }
  }

  /// Charge sink of the innermost open span, or nullptr if none is open.
  OpCounters* current() {
    return open_.empty() ? nullptr : &spans_[open_.back()].self;
  }

  bool any_open() const { return !open_.empty(); }
  const std::vector<Span>& spans() const { return spans_; }

 private:
  std::vector<Span> spans_;
  std::vector<std::uint32_t> open_;  ///< stack of open span ids
  /// Inclusive totals of already-closed children, keyed by open parent id.
  std::map<std::uint32_t, OpCounters> children_total_;
};

/// All statistics recorded by one rank during an SPMD run.
struct RankStats {
  OpCounters total;
  SpanLog spans;
  std::map<std::string, std::uint64_t> counters;  ///< custom instrumentation

  /// Inclusive per-name aggregates over all closed spans: the flat view
  /// the benches consume ("cond-hook" -> summed inclusive cost across
  /// iterations).  Identical whether or not collective-level tracing was
  /// enabled, because child spans merely subdivide their parent's total.
  std::map<std::string, OpCounters> region_totals() const;
};

/// Cross-rank reduction of per-rank stats into the flat per-region view.
struct StatsSummary {
  OpCounters total;
  std::map<std::string, OpCounters> regions;
  std::map<std::string, std::uint64_t> counters;
};

/// Reduce a per-rank stats vector into "max over ranks" per region/total —
/// the bulk-synchronous critical path.
StatsSummary max_over_ranks(const std::vector<RankStats>& per_rank);

/// Reduce a per-rank stats vector by summing (aggregate volume).
StatsSummary sum_over_ranks(const std::vector<RankStats>& per_rank);

}  // namespace lacc::obs
