#include "obs/trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace lacc::obs {

void write_chrome_trace(std::ostream& out,
                        const std::vector<RankStats>& per_rank,
                        const TraceMeta& meta) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("schema", "lacc-trace-v1");
  w.kv("clock", "modeled seconds x 1e6 (microseconds)");
  w.kv("ranks", static_cast<std::int64_t>(per_rank.size()));
  w.end_object();
  w.key("traceEvents");
  w.begin_array();

  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", meta.process_name);
  w.end_object();
  w.end_object();

  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::int64_t>(r));
    w.key("args");
    w.begin_object();
    w.kv("name", "rank " + std::to_string(r));
    w.end_object();
    w.end_object();
  }

  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    for (const Span& span : per_rank[r].spans.spans()) {
      w.begin_object();
      w.kv("name", span.name);
      w.kv("cat", span.depth == 0 ? "region" : "span");
      w.kv("ph", "X");
      w.kv("pid", 0);
      w.kv("tid", static_cast<std::int64_t>(r));
      w.kv("ts", span.modeled_begin * 1e6);
      w.kv("dur", std::max(0.0, span.modeled_end - span.modeled_begin) * 1e6);
      w.key("args");
      w.begin_object();
      if (span.tag >= 0) w.kv("tag", span.tag);
      w.kv("messages", span.total.messages);
      w.kv("bytes", span.total.bytes);
      w.kv("comm_seconds", span.total.comm_seconds);
      w.kv("compute_seconds", span.total.compute_seconds);
      w.kv("wall_seconds", span.total.wall_seconds);
      w.end_object();
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace lacc::obs
