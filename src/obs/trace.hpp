// Chrome trace-event (Perfetto-loadable) export of one SPMD run.
//
// Each rank becomes one timeline row (tid = rank) of "X" complete events;
// timestamps come from the *modeled* clock (seconds scaled to microseconds)
// so the timeline shows the simulated machine, not host scheduling noise.
// Open the file at https://ui.perfetto.dev or chrome://tracing.  See
// docs/OBSERVABILITY.md for the span model and args.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/stats.hpp"

namespace lacc::obs {

struct TraceMeta {
  std::string process_name = "lacc";  ///< label of the single process row
};

/// Write all spans of all ranks as a Chrome trace-event JSON document.
void write_chrome_trace(std::ostream& out,
                        const std::vector<RankStats>& per_rank,
                        const TraceMeta& meta = {});

}  // namespace lacc::obs
