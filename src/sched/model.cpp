#include "sched/model.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "support/env.hpp"

namespace lacc::sched {

namespace detail {
namespace {

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

struct VClock {
  std::array<std::uint32_t, static_cast<std::size_t>(kMaxThreads)> c{};

  void join(const VClock& o) {
    for (std::size_t i = 0; i < c.size(); ++i) c[i] = std::max(c[i], o.c[i]);
  }
  /// *this happens-before (or equals) a moment whose clock is `o`.
  bool leq(const VClock& o) const {
    for (std::size_t i = 0; i < c.size(); ++i)
      if (c[i] > o.c[i]) return false;
    return true;
  }
};

// ---------------------------------------------------------------------------
// Per-execution state
// ---------------------------------------------------------------------------

enum class Wait { kNone, kMutex, kCv, kJoin };

struct ThreadRec {
  std::function<void()> fn;
  std::thread os;
  VClock clock;
  Wait wait = Wait::kNone;
  int wait_obj = -1;
  bool timed = false;          ///< cv wait with a deadline (timeout explorable)
  bool notified = false;       ///< pulled out of the cv waitset by a notify
  bool timeout_fired = false;  ///< last cv wait ended by modeled timeout
  bool done = false;
};

struct StoreMeta {
  VClock hb;   ///< writer's clock at the store: visibility/hiding rule
  VClock rel;  ///< clock transferred to acquire readers (release sequence)
};

struct LocState {
  std::vector<StoreMeta> stores;
  /// Per-thread coherence floor: lowest store index the thread may still
  /// read (raised by its own reads and writes).
  std::array<int, static_cast<std::size_t>(kMaxThreads)> min_read{};
};

struct MutexState {
  int holder = -1;
  VClock clock;
};

/// Thrown by fail_assert inside a managed thread.
struct FailureSignal {};
/// Thrown at schedule points once the run is being torn down.
struct AbortSignal {};

class Explorer {
 public:
  enum class Mode { kExhaustive, kRandom, kReplay };

  Mode mode = Mode::kExhaustive;
  std::vector<std::pair<int, int>> stack;  ///< DFS frontier: (options, chosen)
  std::vector<int> replay_choices;
  std::vector<int> run_choices;  ///< decisions recorded this run
  std::size_t cursor = 0;
  std::uint64_t rng = 0;
  std::uint64_t decision_points = 0;

  void begin_run(std::uint64_t seed) {
    run_choices.clear();
    cursor = 0;
    rng = seed | 1;
  }

  int choose(int n) {
    int pick = 0;
    switch (mode) {
      case Mode::kReplay:
        pick = cursor < replay_choices.size()
                   ? replay_choices[cursor]
                   : 0;
        break;
      case Mode::kRandom:
        pick = static_cast<int>(next_rand() % static_cast<std::uint64_t>(n));
        break;
      case Mode::kExhaustive:
        if (cursor < stack.size()) {
          pick = stack[cursor].second;
        } else {
          stack.emplace_back(n, 0);
          pick = 0;
        }
        break;
    }
    pick = std::clamp(pick, 0, n - 1);
    run_choices.push_back(pick);
    ++cursor;
    ++decision_points;
    return pick;
  }

  /// Exhaustive mode: move to the next unexplored leaf.  False = tree done.
  bool advance() {
    while (!stack.empty() && stack.back().second + 1 >= stack.back().first)
      stack.pop_back();
    if (stack.empty()) return false;
    ++stack.back().second;
    return true;
  }

 private:
  std::uint64_t next_rand() {  // splitmix64
    std::uint64_t z = (rng += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

struct Execution;
Execution* g_exec = nullptr;
thread_local int g_self = -1;

struct Execution {
  Explorer* explorer = nullptr;
  const Options* opts = nullptr;

  // Baton: exactly one managed thread runs at a time.  All scheduler state
  // below is mutated only by the active thread; cross-thread visibility
  // flows through mu at every handoff, so the checker itself is TSan-clean.
  std::mutex mu;
  std::condition_variable cv;
  int active = -1;

  int nthreads = 0;
  std::array<std::unique_ptr<ThreadRec>, static_cast<std::size_t>(kMaxThreads)>
      threads;
  std::vector<LocState> locs;
  std::vector<MutexState> mutexes;
  int ncvs = 0;
  VClock sc_clock;

  std::uint64_t steps = 0;
  int preemptions = 0;
  bool abort = false;
  bool failed = false;
  std::string fail_msg;
  bool verbose = false;
  std::vector<std::string> events;

  // --- tracing -----------------------------------------------------------

  void note(const std::string& text) {
    if (!verbose) return;
    std::ostringstream os;
    os << "#" << steps << " t" << g_self << "  " << text;
    events.push_back(os.str());
  }

  // --- failure -----------------------------------------------------------

  /// Record a failure and wake every blocked thread for the abort drain.
  /// Does not throw; callers decide how to unwind.
  void mark_failed(const std::string& kind, const std::string& msg) {
    if (!failed) {
      failed = true;
      fail_msg = kind + ": " + msg;
      if (verbose) events.push_back("FAIL " + fail_msg);
    }
    abort = true;
    for (int i = 0; i < nthreads; ++i) {
      ThreadRec& t = *threads[i];
      if (!t.done && t.wait != Wait::kNone) {
        t.wait = Wait::kNone;
        t.notified = false;
      }
    }
  }

  std::string blocked_report() const {
    std::ostringstream os;
    for (int i = 0; i < nthreads; ++i) {
      const ThreadRec& t = *threads[i];
      if (t.done) continue;
      os << " t" << i << "=";
      switch (t.wait) {
        case Wait::kNone: os << "runnable"; break;
        case Wait::kMutex: os << "mutex#" << t.wait_obj; break;
        case Wait::kCv: os << "cv#" << t.wait_obj; break;
        case Wait::kJoin: os << "join(t" << t.wait_obj << ")"; break;
      }
    }
    return os.str();
  }

  // --- scheduling core ---------------------------------------------------

  bool runnable(int i, bool for_self) const {
    const ThreadRec& t = *threads[i];
    if (t.done) return false;
    if (t.wait == Wait::kNone) return true;
    if (t.wait == Wait::kCv)
      return t.notified || t.timed || (opts->spurious_wakeups && !for_self);
    return false;
  }

  std::vector<int> options(bool self_blocked) {
    std::vector<int> out;
    for (int i = 0; i < nthreads; ++i) {
      if (self_blocked && i == g_self) {
        // A thread parking on a *timed* cv wait can wake itself: the
        // timeout firing immediately is a legal schedule (and the only one
        // when every sibling is blocked — not a deadlock).
        const ThreadRec& t = *threads[i];
        if (t.wait == Wait::kCv && (t.timed || t.notified)) out.push_back(i);
        continue;
      }
      if (runnable(i, i == g_self)) out.push_back(i);
    }
    return out;
  }

  int choose(int n) { return n <= 1 ? 0 : explorer->choose(n); }

  /// Hand the baton to `next` and (unless finishing) wait for our own turn.
  void hand_over(int next, bool leaving) {
    std::unique_lock<std::mutex> lk(mu);
    active = next;
    cv.notify_all();
    if (leaving) return;
    cv.wait(lk, [&] { return active == g_self; });
  }

  /// Pick and switch to the next thread.  `self_blocked` = the caller just
  /// parked itself and must not be offered.  Throws AbortSignal on resume
  /// into a dead run only when `may_throw`.
  void pick_next(bool self_blocked, bool may_throw) {
    std::vector<int> opts_ = options(self_blocked);
    if (opts_.empty()) {
      // No one can run: if anyone is still live this is a deadlock.
      bool all_done = true;
      for (int i = 0; i < nthreads; ++i)
        if (i != g_self && !threads[i]->done) all_done = false;
      if (self_blocked || !all_done) {
        mark_failed("deadlock", "no runnable thread;" + blocked_report());
        if (self_blocked) {
          // We were just force-woken by mark_failed; unwind.
          threads[g_self]->wait = Wait::kNone;
          if (may_throw) throw AbortSignal{};
        }
      }
      return;  // sole survivor keeps running
    }
    const bool self_offered =
        !self_blocked && std::find(opts_.begin(), opts_.end(), g_self) != opts_.end();
    if (self_offered && opts->preemption_bound >= 0 &&
        preemptions >= opts->preemption_bound)
      opts_ = {g_self};
    const int next = opts_[static_cast<std::size_t>(
        choose(static_cast<int>(opts_.size())))];
    ThreadRec& nx = *threads[next];
    if (nx.wait == Wait::kCv) {
      // Scheduling a cv waiter directly = its timeout (or spurious wake).
      nx.timeout_fired = !nx.notified;
      nx.wait = Wait::kNone;
      nx.notified = false;
      if (verbose)
        events.push_back("        t" + std::to_string(next) +
                         (nx.timeout_fired ? " wakes (timeout)" : " wakes"));
    }
    if (next == g_self) return;  // incl. a parked timed wait self-waking
    if (self_offered) ++preemptions;
    hand_over(next, /*leaving=*/false);
    if (abort && may_throw) throw AbortSignal{};
  }

  /// Pre-operation schedule point for throwing (acquire-side) operations.
  void point() {
    if (abort) throw AbortSignal{};
    if (++steps > opts->max_steps) {
      mark_failed("livelock", "step budget (" +
                                  std::to_string(opts->max_steps) +
                                  ") exceeded");
      throw AbortSignal{};
    }
    threads[g_self]->clock.c[static_cast<std::size_t>(g_self)]++;
    pick_next(/*self_blocked=*/false, /*may_throw=*/true);
  }

  /// Post-operation schedule point for releasing operations
  /// (mutex unlock, cv notify).  Never throws: these run inside
  /// lock_guard destructors, where an exception would terminate.
  void point_noexcept() {
    if (abort) return;
    ++steps;  // over-budget enforcement happens at the next throwing point
    threads[g_self]->clock.c[static_cast<std::size_t>(g_self)]++;
    pick_next(/*self_blocked=*/false, /*may_throw=*/false);
  }

  /// Park the calling thread (wait fields already set) and run others until
  /// somebody unblocks and schedules us.
  void park() {
    pick_next(/*self_blocked=*/true, /*may_throw=*/true);
    if (abort) throw AbortSignal{};
  }

  // --- thread lifecycle --------------------------------------------------

  void finish() {
    ThreadRec& me = *threads[g_self];
    for (int i = 0; i < nthreads; ++i) {
      ThreadRec& t = *threads[i];
      if (!t.done && t.wait == Wait::kJoin && t.wait_obj == g_self)
        t.wait = Wait::kNone;
    }
    int next = -1;
    if (abort) {
      for (int i = 0; i < nthreads && next < 0; ++i)
        if (i != g_self && !threads[i]->done) next = i;
      if (next >= 0) threads[next]->wait = Wait::kNone;
    } else {
      std::vector<int> opts_ = options(/*self_blocked=*/true);
      if (!opts_.empty()) {
        next = opts_[static_cast<std::size_t>(
            choose(static_cast<int>(opts_.size())))];
        ThreadRec& nx = *threads[next];
        if (nx.wait == Wait::kCv) {
          nx.timeout_fired = !nx.notified;
          nx.wait = Wait::kNone;
          nx.notified = false;
        }
      } else {
        bool all_done = true;
        for (int i = 0; i < nthreads; ++i)
          if (i != g_self && !threads[i]->done) all_done = false;
        if (!all_done) {
          mark_failed("deadlock",
                      "thread t" + std::to_string(g_self) +
                          " finished with siblings stuck;" + blocked_report());
          for (int i = 0; i < nthreads && next < 0; ++i)
            if (i != g_self && !threads[i]->done) next = i;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      me.done = true;
      active = next;  // -1 when everyone is done: wakes the driver
    }
    cv.notify_all();
  }
};

void thread_main(Execution* ex, int id) {
  g_self = id;
  {
    std::unique_lock<std::mutex> lk(ex->mu);
    ex->cv.wait(lk, [&] { return ex->active == id; });
  }
  try {
    if (!ex->abort) ex->threads[id]->fn();
  } catch (FailureSignal&) {
  } catch (AbortSignal&) {
  } catch (std::exception& e) {
    ex->mark_failed("exception", e.what());
  } catch (...) {
    ex->mark_failed("exception", "non-std exception escaped a thread body");
  }
  ex->finish();
  g_self = -1;
}

bool in_run() { return g_exec != nullptr && g_self >= 0; }

Execution& exec() { return *g_exec; }

constexpr bool has_acquire(int o) {
  const auto m = static_cast<std::memory_order>(o);
  return m == std::memory_order_acquire || m == std::memory_order_acq_rel ||
         m == std::memory_order_seq_cst || m == std::memory_order_consume;
}
constexpr bool has_release(int o) {
  const auto m = static_cast<std::memory_order>(o);
  return m == std::memory_order_release || m == std::memory_order_acq_rel ||
         m == std::memory_order_seq_cst;
}
constexpr bool is_seq_cst(int o) {
  return static_cast<std::memory_order>(o) == std::memory_order_seq_cst;
}

}  // namespace

// ---------------------------------------------------------------------------
// Shim hooks
// ---------------------------------------------------------------------------

bool active() { return in_run() && !exec().abort; }

bool tracing() { return in_run() && exec().verbose; }

void trace_event(const std::string& text) {
  if (tracing()) exec().note(text);
}

int reg_loc() {
  if (!in_run()) return -1;
  Execution& ex = exec();
  const int id = static_cast<int>(ex.locs.size());
  ex.locs.emplace_back();
  LocState& loc = ex.locs.back();
  StoreMeta init;
  init.hb = ex.threads[g_self]->clock;
  init.rel = init.hb;  // construction happens-before every use
  loc.stores.push_back(init);
  return id;
}

int atomic_load(int loc, int order) {
  if (loc < 0 || !in_run()) return -1;
  Execution& ex = exec();
  ex.point();
  ThreadRec& me = *ex.threads[g_self];
  LocState& L = ex.locs[static_cast<std::size_t>(loc)];
  if (is_seq_cst(order)) me.clock.join(ex.sc_clock);
  const int n = static_cast<int>(L.stores.size());
  int lo = L.min_read[static_cast<std::size_t>(g_self)];
  for (int i = n - 1; i > lo; --i)
    if (L.stores[static_cast<std::size_t>(i)].hb.leq(me.clock)) {
      lo = i;  // this store happens-before the load: older ones are hidden
      break;
    }
  // Choice 0 = the newest store, so the DFS's default path is the
  // sequentially-consistent-looking one and stale reads live deeper.
  const int pick = (n - 1) - ex.choose(n - lo);
  const StoreMeta& s = L.stores[static_cast<std::size_t>(pick)];
  if (has_acquire(order)) me.clock.join(s.rel);
  L.min_read[static_cast<std::size_t>(g_self)] = pick;
  if (is_seq_cst(order)) ex.sc_clock.join(me.clock);
  return pick;
}

int atomic_store(int loc, int order) {
  if (loc < 0 || !in_run()) return -1;
  Execution& ex = exec();
  ex.point();
  ThreadRec& me = *ex.threads[g_self];
  LocState& L = ex.locs[static_cast<std::size_t>(loc)];
  if (is_seq_cst(order)) me.clock.join(ex.sc_clock);
  me.clock.c[static_cast<std::size_t>(g_self)]++;
  StoreMeta m;
  m.hb = me.clock;
  if (has_release(order)) m.rel = me.clock;  // plain store: new release head
  L.stores.push_back(m);
  const int idx = static_cast<int>(L.stores.size()) - 1;
  L.min_read[static_cast<std::size_t>(g_self)] = idx;
  if (is_seq_cst(order)) ex.sc_clock.join(me.clock);
  return idx;
}

int rmw_read(int loc, int order) {
  if (loc < 0 || !in_run()) return -1;
  Execution& ex = exec();
  ex.point();
  ThreadRec& me = *ex.threads[g_self];
  LocState& L = ex.locs[static_cast<std::size_t>(loc)];
  if (is_seq_cst(order)) me.clock.join(ex.sc_clock);
  // An RMW always reads the latest store in modification order.
  const int idx = static_cast<int>(L.stores.size()) - 1;
  if (has_acquire(order)) me.clock.join(L.stores[static_cast<std::size_t>(idx)].rel);
  return idx;
}

int rmw_commit(int loc, int order) {
  // No schedule point: rmw_read kept the baton, so read-modify-write is
  // indivisible by construction.
  Execution& ex = exec();
  ThreadRec& me = *ex.threads[g_self];
  LocState& L = ex.locs[static_cast<std::size_t>(loc)];
  me.clock.c[static_cast<std::size_t>(g_self)]++;
  StoreMeta m;
  m.hb = me.clock;
  // C++20 release sequences: an RMW extends the sequence it read from even
  // when itself relaxed; a release RMW additionally contributes its clock.
  m.rel = L.stores.back().rel;
  if (has_release(order)) m.rel.join(me.clock);
  L.stores.push_back(m);
  const int idx = static_cast<int>(L.stores.size()) - 1;
  L.min_read[static_cast<std::size_t>(g_self)] = idx;
  if (is_seq_cst(order)) ex.sc_clock.join(me.clock);
  return idx;
}

void rmw_abandon(int loc, int order) {
  // CAS failure: pure load of the latest value with the failure ordering.
  Execution& ex = exec();
  ThreadRec& me = *ex.threads[g_self];
  LocState& L = ex.locs[static_cast<std::size_t>(loc)];
  const int idx = static_cast<int>(L.stores.size()) - 1;
  if (has_acquire(order)) me.clock.join(L.stores[static_cast<std::size_t>(idx)].rel);
  L.min_read[static_cast<std::size_t>(g_self)] = idx;
}

int reg_mutex() {
  if (!in_run()) return -1;
  Execution& ex = exec();
  ex.mutexes.emplace_back();
  return static_cast<int>(ex.mutexes.size()) - 1;
}

void mutex_lock(int m) {
  if (m < 0 || !in_run()) return;
  Execution& ex = exec();
  // Throwing schedule point: lock() never runs inside a destructor (unlock
  // does, and stays non-throwing), so unwinding from here is safe and keeps
  // the abort drain from letting a thread run on lock-free of the scheduler.
  ex.point();
  MutexState& mx = ex.mutexes[static_cast<std::size_t>(m)];
  ThreadRec& me = *ex.threads[g_self];
  while (mx.holder != -1) {
    ex.note("blocks on mutex#" + std::to_string(m));
    me.wait = Wait::kMutex;
    me.wait_obj = m;
    ex.park();
  }
  mx.holder = g_self;
  me.clock.join(mx.clock);
  ex.note("mutex#" + std::to_string(m) + " lock");
}

void mutex_unlock(int m) {
  if (m < 0 || !in_run()) return;
  Execution& ex = exec();
  if (ex.abort) return;
  MutexState& mx = ex.mutexes[static_cast<std::size_t>(m)];
  ThreadRec& me = *ex.threads[g_self];
  mx.clock.join(me.clock);
  mx.holder = -1;
  for (int i = 0; i < ex.nthreads; ++i) {
    ThreadRec& t = *ex.threads[i];
    if (!t.done && t.wait == Wait::kMutex && t.wait_obj == m)
      t.wait = Wait::kNone;  // barging allowed: they re-check on schedule
  }
  ex.note("mutex#" + std::to_string(m) + " unlock");
  ex.point_noexcept();
}

int reg_cv() {
  if (!in_run()) return -1;
  return exec().ncvs++;
}

bool cv_wait(int cvid, int m, bool timed) {
  if (cvid < 0 || !in_run()) return timed;
  Execution& ex = exec();
  if (ex.abort) throw AbortSignal{};
  ThreadRec& me = *ex.threads[g_self];
  // Atomically release the mutex and enter the waitset (no schedule point
  // between the two, exactly like the real primitive).
  MutexState& mx = ex.mutexes[static_cast<std::size_t>(m)];
  mx.clock.join(me.clock);
  mx.holder = -1;
  for (int i = 0; i < ex.nthreads; ++i) {
    ThreadRec& t = *ex.threads[i];
    if (!t.done && t.wait == Wait::kMutex && t.wait_obj == m)
      t.wait = Wait::kNone;
  }
  ex.note(std::string("cv#") + std::to_string(cvid) +
          (timed ? " timed-wait" : " wait"));
  me.wait = Wait::kCv;
  me.wait_obj = cvid;
  me.timed = timed;
  me.notified = false;
  me.timeout_fired = false;
  ex.park();
  const bool timeout = me.timeout_fired;
  me.timed = false;
  mutex_lock(m);
  return timeout;
}

void cv_notify(int cvid, bool all) {
  if (cvid < 0 || !in_run()) return;
  Execution& ex = exec();
  if (ex.abort) return;
  std::vector<int> waiters;
  for (int i = 0; i < ex.nthreads; ++i) {
    ThreadRec& t = *ex.threads[i];
    if (!t.done && t.wait == Wait::kCv && t.wait_obj == cvid && !t.notified)
      waiters.push_back(i);
  }
  ex.note(std::string("cv#") + std::to_string(cvid) +
          (all ? " notify_all" : " notify_one"));
  if (!waiters.empty()) {
    if (all) {
      for (int w : waiters) ex.threads[w]->notified = true;
    } else {
      // Which waiter the notify lands on is a scheduling decision.
      const int w = waiters[static_cast<std::size_t>(
          ex.choose(static_cast<int>(waiters.size())))];
      ex.threads[w]->notified = true;
    }
  }
  ex.point_noexcept();
}

int spawn(std::function<void()> fn) {
  if (!in_run())
    throw std::logic_error(
        "sched::thread can only be created inside sched::explore()");
  Execution& ex = exec();
  ex.point();
  if (ex.nthreads >= kMaxThreads) {
    ex.mark_failed("error", "more than kMaxThreads sched::threads spawned");
    throw AbortSignal{};
  }
  const int id = ex.nthreads++;
  ThreadRec& rec = *ex.threads[id];
  rec.fn = std::move(fn);
  rec.clock = ex.threads[g_self]->clock;  // spawn happens-before the body
  rec.clock.c[static_cast<std::size_t>(id)]++;
  ex.note("spawns t" + std::to_string(id));
  rec.os = std::thread(thread_main, &ex, id);
  return id;
}

void join_thread(int id) {
  if (!in_run() || id < 0) return;
  Execution& ex = exec();
  ex.point();
  if (id >= ex.nthreads) return;
  ThreadRec& me = *ex.threads[g_self];
  while (!ex.threads[id]->done) {
    ex.note("joins t" + std::to_string(id));
    me.wait = Wait::kJoin;
    me.wait_obj = id;
    ex.park();
  }
  me.clock.join(ex.threads[id]->clock);  // completion happens-before join
}

void yield_point() {
  if (!in_run()) {
    std::this_thread::yield();
    return;
  }
  exec().point();
}

[[noreturn]] void fail_assert(const char* expr, const char* file, int line) {
  std::ostringstream os;
  const char* slash = nullptr;
  for (const char* p = file; *p; ++p)
    if (*p == '/') slash = p;
  os << expr << " at " << (slash ? slash + 1 : file) << ":" << line;
  if (!in_run()) throw std::runtime_error("LACC_SCHED_ASSERT failed: " + os.str());
  Execution& ex = exec();
  if (!ex.abort) ex.mark_failed("assertion", os.str());
  throw FailureSignal{};
}

namespace {

struct RunOutcome {
  bool failed = false;
  std::string fail_msg;
  std::vector<std::string> events;
};

RunOutcome run_one(const Options& opts, const std::function<void()>& body,
                   Explorer& explorer, bool verbose) {
  Execution ex;
  ex.explorer = &explorer;
  ex.opts = &opts;
  ex.verbose = verbose;
  for (auto& slot : ex.threads) slot = std::make_unique<ThreadRec>();
  ex.nthreads = 1;
  ThreadRec& t0 = *ex.threads[0];
  t0.fn = body;
  t0.clock.c[0] = 1;

  g_exec = &ex;
  t0.os = std::thread(thread_main, &ex, 0);
  {
    std::lock_guard<std::mutex> lk(ex.mu);
    ex.active = 0;
  }
  ex.cv.notify_all();
  {
    std::unique_lock<std::mutex> lk(ex.mu);
    ex.cv.wait(lk, [&] {
      for (int i = 0; i < ex.nthreads; ++i)
        if (!ex.threads[i]->done) return false;
      return true;
    });
  }
  for (int i = 0; i < ex.nthreads; ++i)
    if (ex.threads[i]->os.joinable()) ex.threads[i]->os.join();
  g_exec = nullptr;

  RunOutcome out;
  out.failed = ex.failed;
  out.fail_msg = ex.fail_msg;
  out.events = std::move(ex.events);
  return out;
}

std::string format_trace(const Options& opts, const RunOutcome& out) {
  std::ostringstream os;
  os << "=== sched trace: " << opts.name << " ===\n";
  for (const auto& e : out.events) os << e << "\n";
  if (out.failed) os << "=> " << out.fail_msg << "\n";
  return os.str();
}

void maybe_write_trace_file(const Options& opts, const Result& res) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): only the single-threaded
  // exploration driver reads the environment, never a checked body.
  const char* dir = std::getenv("LACC_SCHED_TRACE_DIR");
  if (!dir || !*dir) return;
  std::string name = opts.name;
  for (char& c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_'))
      c = '_';
  std::ofstream f(std::string(dir) + "/" + name + "-trace.txt");
  if (!f) return;
  f << "failure: " << res.failure << "\n"
    << "executions-before-failure: " << res.executions << "\n"
    << "seed: " << res.failing_seed << "\n"
    << "choices:";
  for (int c : res.failing_choices) f << " " << c;
  f << "\n\n" << res.trace;
}

}  // namespace
}  // namespace detail

std::uint64_t budget_scale() {
  const std::int64_t v = env_int("LACC_SCHED_BUDGET", 1);
  return v < 1 ? 1 : static_cast<std::uint64_t>(v);
}

thread::~thread() {
  if (id_ < 0) return;
  using namespace detail;
  if (in_run() && !exec().abort)
    exec().mark_failed("error",
                       "sched::thread destroyed without join (t" +
                           std::to_string(id_) + ")");
}

Result explore(const Options& opts, const std::function<void()>& body) {
  using namespace detail;
  Result res;
  Explorer explorer;
  const bool random = opts.random_executions > 0;
  explorer.mode = random ? Explorer::Mode::kRandom : Explorer::Mode::kExhaustive;
  const std::uint64_t random_budget = opts.random_executions * budget_scale();

  for (;;) {
    const std::uint64_t seed = opts.seed + 0x9e3779b9ull * res.executions;
    explorer.begin_run(seed);
    RunOutcome out = run_one(opts, body, explorer, /*verbose=*/false);
    ++res.executions;
    res.decision_points = explorer.decision_points;
    if (out.failed) {
      res.ok = false;
      res.failure = out.fail_msg;
      res.failing_choices = explorer.run_choices;
      res.failing_seed = seed;
      // Replay the exact decision sequence with event recording on: the
      // printed interleaving is the failing schedule, not a lookalike.
      Explorer rex;
      rex.mode = Explorer::Mode::kReplay;
      rex.replay_choices = res.failing_choices;
      rex.begin_run(seed);
      RunOutcome vout = run_one(opts, body, rex, /*verbose=*/true);
      res.trace = format_trace(opts, vout);
      maybe_write_trace_file(opts, res);
      return res;
    }
    if (random) {
      if (res.executions >= random_budget) break;
    } else {
      if (!explorer.advance()) {
        res.complete = true;
        break;
      }
      if (opts.max_executions && res.executions >= opts.max_executions) break;
    }
  }
  res.ok = true;
  return res;
}

Result replay(const Options& opts, const std::function<void()>& body,
              const std::vector<int>& choices) {
  using namespace detail;
  Result res;
  Explorer rex;
  rex.mode = Explorer::Mode::kReplay;
  rex.replay_choices = choices;
  rex.begin_run(opts.seed);
  RunOutcome out = run_one(opts, body, rex, /*verbose=*/true);
  res.executions = 1;
  res.ok = !out.failed;
  res.failure = out.fail_msg;
  res.trace = format_trace(opts, out);
  res.failing_choices = rex.run_choices;
  return res;
}

}  // namespace lacc::sched
