// lacc::sched — a deterministic, schedule-exploring model checker for the
// lock-free structures in this tree (loom/relacy style).
//
// A test hands `explore()` a body that spawns up to kMaxThreads
// sched::threads and exercises a structure instantiated with
// sched::SchedSyncPolicy (src/sched/shim.hpp).  Every shared-memory access
// of the shimmed primitives — atomic load/store/RMW, mutex lock/unlock,
// condition-variable wait/notify, spawn/join/yield — is a *schedule point*:
// the access traps into a cooperative scheduler that runs exactly one
// thread at a time and consults an exploration driver about who runs next.
// The driver either enumerates every schedule exhaustively (DFS over the
// decision tree, optionally preemption-bounded) or samples schedules from a
// seeded PRNG; both are fully deterministic given the recorded decision
// sequence, so any failing schedule replays exactly.
//
// Weak memory is modeled, not assumed away: each atomic location keeps its
// full store history with vector clocks, and a load may return *any* store
// that the C++ memory model permits (coherence plus happens-before
// visibility).  Which store it returns is itself a scheduling decision, so
// a missing release/acquire pair shows up as a schedule in which a reader
// observes a stale value — this is what lets the mutation suites in
// tests/sched/ prove the checker catches real ordering bugs.  seq_cst is
// approximated conservatively with a global clock (it only *removes*
// behaviors, never invents them); release sequences follow the C++20 rule
// (RMWs extend them, plain stores break them).  See docs/CHECKING.md.
//
// Failures detected: LACC_SCHED_ASSERT violations, deadlock (no runnable
// thread), exceptions escaping a thread body, and step-budget exhaustion
// (livelock).  On failure the run is replayed with event recording on and
// the exact interleaving is printed; `LACC_SCHED_TRACE_DIR` makes explore()
// also write the trace to a file (CI uploads these as artifacts).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace lacc::sched {

/// Hard cap on concurrently live threads per execution (including the
/// body itself, which runs as thread 0).
inline constexpr int kMaxThreads = 8;

struct Options {
  /// Test name, used in trace headers and trace-artifact file names.
  std::string name = "sched";

  /// 0 = exhaustive DFS over all schedules.  > 0 = that many random
  /// schedules from `seed` (scaled by the LACC_SCHED_BUDGET env knob, so
  /// nightly CI can deepen the search without a rebuild).
  std::uint64_t random_executions = 0;
  std::uint64_t seed = 0x5EED5C4EDull;

  /// Max preemptions (switches away from a runnable thread) per schedule
  /// in exhaustive mode; < 0 = unbounded.  CHESS-style: most concurrency
  /// bugs surface within 2-3 preemptions, and the bound tames the tree.
  int preemption_bound = -1;

  /// Safety cap on explored schedules in exhaustive mode (0 = unlimited).
  /// Hitting it clears Result::complete but is not a failure.
  std::uint64_t max_executions = 0;

  /// Per-schedule step budget; exceeding it fails the run as a livelock.
  std::uint64_t max_steps = 200000;

  /// Model spurious wakeups for plain (untimed) condition-variable waits.
  /// Timed waits always explore the timeout path regardless.
  bool spurious_wakeups = false;
};

struct Result {
  bool ok = false;
  bool complete = false;          ///< exhaustive mode: tree fully explored
  std::uint64_t executions = 0;   ///< schedules run
  std::uint64_t decision_points = 0;  ///< branch points seen (tree width)
  std::string failure;            ///< failure kind + message ("" when ok)
  std::string trace;              ///< formatted failing interleaving
  std::vector<int> failing_choices;  ///< decision sequence for replay
  std::uint64_t failing_seed = 0;    ///< PRNG seed of the failing schedule
};

/// Run `body` under schedule exploration.  The body is (re-)invoked once
/// per schedule and must construct all shared state afresh; it runs as
/// managed thread 0 and may spawn sched::threads.  Never throws — all
/// failures are reported in the Result.
Result explore(const Options& options, const std::function<void()>& body);

/// Re-run `body` pinned to one recorded decision sequence (e.g.
/// Result::failing_choices) and return that single run's result, trace
/// included.  This is the replay path: same choices, same interleaving.
Result replay(const Options& options, const std::function<void()>& body,
              const std::vector<int>& choices);

/// The LACC_SCHED_BUDGET env multiplier (>= 1) applied to
/// Options::random_executions by explore().
std::uint64_t budget_scale();

namespace detail {

// --- hooks the shim templates (shim.hpp) route through -------------------
// All of these are no-ops / passthrough signals outside a live execution
// (they return a negative index), so shimmed structures still work — as
// plain single-threaded code — when used outside explore().

bool active();    ///< calling OS thread is a managed thread of a live run
bool tracing();   ///< verbose replay: shims should emit trace_event()
void trace_event(const std::string& text);

int reg_loc();
int atomic_load(int loc, int order);      ///< -> store index to read
int atomic_store(int loc, int order);     ///< -> new store index
/// RMW protocol: rmw_read returns the (mandatory) latest store index and
/// keeps the baton — no schedule point may intervene before the caller
/// either commits the new value's metadata or abandons (CAS failure).
int rmw_read(int loc, int order);
int rmw_commit(int loc, int order);       ///< -> new store index
void rmw_abandon(int loc, int order);     ///< CAS failure: load-only

int reg_mutex();
void mutex_lock(int m);
void mutex_unlock(int m);

int reg_cv();
/// Returns true when the wait ended by (modeled) timeout; `timed` waits
/// always have the timeout path explored as a scheduling choice.
bool cv_wait(int cv, int m, bool timed);
void cv_notify(int cv, bool all);

int spawn(std::function<void()> fn);
void join_thread(int id);
void yield_point();

[[noreturn]] void fail_assert(const char* expr, const char* file, int line);

}  // namespace detail

/// A managed thread handle.  Only constructible inside an explore() body;
/// must be joined before destruction (an unjoined handle fails the run).
class thread {
 public:
  explicit thread(std::function<void()> fn) : id_(detail::spawn(std::move(fn))) {}
  thread(thread&& o) noexcept : id_(o.id_) { o.id_ = -1; }
  thread& operator=(thread&& o) noexcept {
    id_ = o.id_;
    o.id_ = -1;
    return *this;
  }
  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;
  ~thread();

  void join() {
    detail::join_thread(id_);
    id_ = -1;
  }
  bool joinable() const { return id_ >= 0; }

 private:
  int id_;
};

/// Voluntary schedule point (the shim policy's yield()).
inline void yield() { detail::yield_point(); }

}  // namespace lacc::sched

/// Checked property inside an explore() body: a false condition fails the
/// current schedule and aborts the run with a replayable trace.
#define LACC_SCHED_ASSERT(cond)                                         \
  do {                                                                  \
    if (!(cond)) ::lacc::sched::detail::fail_assert(#cond, __FILE__, __LINE__); \
  } while (0)
