// Instrumented synchronization primitives for the lacc::sched model
// checker — the SchedSyncPolicy counterparts of std::atomic / std::mutex /
// std::condition_variable that the policy-templated structures
// (support/sync.hpp) are instantiated with under test.
//
// Every operation traps into the scheduler (src/sched/model.hpp); atomic
// loads consult the location's store history so weak-memory behaviors are
// explored, not just thread interleavings.  Note the deliberately missing
// default memory_order arguments: an implicit seq_cst that would compile
// silently against std::atomic is a compile error against the shim, so
// instantiating a structure with SchedSyncPolicy is itself a static audit
// that every atomic op names its ordering (tools/lint_spmd.py enforces the
// same rule textually).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "sched/model.hpp"

namespace lacc::sched {

namespace detail {

inline const char* order_name(std::memory_order o) {
  switch (o) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

template <typename T>
std::string value_text(const T& v) {
  if constexpr (std::is_integral_v<T>)
    return std::to_string(static_cast<long long>(v));
  else if constexpr (std::is_enum_v<T>)
    return std::to_string(static_cast<long long>(
        static_cast<std::underlying_type_t<T>>(v)));
  else
    return "<value>";
}

}  // namespace detail

template <typename T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  atomic() noexcept(std::is_nothrow_default_constructible_v<T>) : atomic(T{}) {}
  explicit(false) atomic(T v) : plain_(v), loc_(detail::reg_loc()) {
    if (loc_ >= 0) history_.push_back(v);
  }
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order) const {
    const int idx = detail::atomic_load(loc_, static_cast<int>(order));
    const T v = idx < 0 ? plain_ : history_[static_cast<std::size_t>(idx)];
    note("load", order, v);
    return v;
  }

  void store(T v, std::memory_order order) {
    const int idx = detail::atomic_store(loc_, static_cast<int>(order));
    plain_ = v;
    if (idx >= 0) history_.push_back(v);
    note("store", order, v);
  }

  T exchange(T v, std::memory_order order) {
    const int idx = detail::rmw_read(loc_, static_cast<int>(order));
    const T old = idx < 0 ? plain_ : history_.back();
    plain_ = v;
    if (idx >= 0) {
      detail::rmw_commit(loc_, static_cast<int>(order));
      history_.push_back(v);
    }
    note("exchange", order, v);
    return old;
  }

  T fetch_add(T d, std::memory_order order) { return rmw_apply("fetch_add", d, order, std::plus<T>{}); }
  T fetch_sub(T d, std::memory_order order) { return rmw_apply("fetch_sub", d, order, std::minus<T>{}); }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order order) {
    return cas(expected, desired, order);
  }
  bool compare_exchange_strong(T& expected, T desired, std::memory_order success,
                               std::memory_order failure) {
    return cas(expected, desired, success, failure);
  }
  /// The modeled weak CAS never fails spuriously (documented
  /// under-approximation: spurious failure only adds retry schedules).
  bool compare_exchange_weak(T& expected, T desired, std::memory_order order) {
    return cas(expected, desired, order);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return cas(expected, desired, success, failure);
  }

 private:
  template <typename Op>
  T rmw_apply(const char* what, T d, std::memory_order order, Op op) {
    const int idx = detail::rmw_read(loc_, static_cast<int>(order));
    const T old = idx < 0 ? plain_ : history_.back();
    const T next = op(old, d);
    plain_ = next;
    if (idx >= 0) {
      detail::rmw_commit(loc_, static_cast<int>(order));
      history_.push_back(next);
    }
    note(what, order, next);
    return old;
  }

  bool cas(T& expected, T desired, std::memory_order success,
           std::memory_order failure) {
    const int idx = detail::rmw_read(loc_, static_cast<int>(success));
    const T cur = idx < 0 ? plain_ : history_.back();
    if (cur == expected) {
      plain_ = desired;
      if (idx >= 0) {
        detail::rmw_commit(loc_, static_cast<int>(success));
        history_.push_back(desired);
      }
      note("cas-ok", success, desired);
      return true;
    }
    if (idx >= 0) detail::rmw_abandon(loc_, static_cast<int>(failure));
    expected = cur;
    note("cas-fail", failure, cur);
    return false;
  }
  bool cas(T& expected, T desired, std::memory_order order) {
    // Same failure-order demotion std::atomic applies.
    const auto failure = order == std::memory_order_acq_rel
                             ? std::memory_order_acquire
                             : (order == std::memory_order_release
                                    ? std::memory_order_relaxed
                                    : order);
    return cas(expected, desired, order, failure);
  }

  void note(const char* what, std::memory_order order, const T& v) const {
    if (detail::tracing())
      detail::trace_event("atomic#" + std::to_string(loc_) + " " + what + "(" +
                          detail::order_name(order) + ") = " +
                          detail::value_text(v));
  }

  T plain_;                        ///< latest value (passthrough path)
  int loc_;                        ///< scheduler location id (-1 outside runs)
  mutable std::vector<T> history_; ///< value of store i, parallel to the
                                   ///< scheduler's per-location metadata
};

class mutex {
 public:
  mutex() : id_(detail::reg_mutex()) {}
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() { detail::mutex_lock(id_); }
  void unlock() { detail::mutex_unlock(id_); }
  int id() const { return id_; }

 private:
  int id_;
};

class condition_variable {
 public:
  condition_variable() : id_(detail::reg_cv()) {}
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  template <typename Lock>
  void wait(Lock& lock) {
    detail::cv_wait(id_, lock.mutex()->id(), /*timed=*/false);
  }
  template <typename Lock, typename Pred>
  void wait(Lock& lock, Pred pred) {
    while (!pred()) wait(lock);
  }
  /// Deadline ignored: whether the wait times out is a scheduling choice,
  /// so both the notified and the timed-out continuation are explored.
  template <typename Lock, typename Tp>
  std::cv_status wait_until(Lock& lock, const Tp&) {
    return detail::cv_wait(id_, lock.mutex()->id(), /*timed=*/true)
               ? std::cv_status::timeout
               : std::cv_status::no_timeout;
  }

  void notify_one() { detail::cv_notify(id_, /*all=*/false); }
  void notify_all() { detail::cv_notify(id_, /*all=*/true); }

 private:
  int id_;
};

struct SchedSyncPolicy {
  template <typename T>
  using atomic = sched::atomic<T>;
  using mutex = sched::mutex;
  using condition_variable = sched::condition_variable;

  static void yield() { sched::yield(); }
  static constexpr int spin_bound = 1;
};

}  // namespace lacc::sched
