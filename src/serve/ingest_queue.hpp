// Bounded write-ingest queue for lacc::serve (extracted from Server so the
// model checker can instantiate it standalone).
//
// One consumer (the engine thread) drains micro-batches; any number of
// producers push items and receive strictly increasing sequence tickets.
// Admission control under a full queue either blocks the producer
// (backpressure) or sheds the push.  The applied-sequence watermark backs
// read-your-writes session reads and flush(): a waiter parks until the
// consumer has marked its ticket applied.
//
// Templated over a sync policy (support/sync.hpp): IngestQueue below is the
// production alias over the std primitives; the deterministic model checker
// (src/sched/, docs/CHECKING.md) instantiates BasicIngestQueue with
// sched::SchedSyncPolicy and verifies ticket uniqueness, FIFO batch order,
// exactly-once delivery, shed-only-when-full, and deadlock freedom of the
// stop/flush/blocked-producer protocol across every explored schedule
// (tests/sched/sched_ingest_queue_test.cpp).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "support/sync.hpp"

namespace lacc::serve {

template <typename SyncPolicy, typename Item>
class BasicIngestQueue {
 public:
  enum class Push {
    kAccepted,
    kShed,     ///< rejected: queue full under shed admission
    kStopped,  ///< rejected: stop() already called
  };
  struct PushResult {
    Push outcome = Push::kStopped;
    std::uint64_t seq = 0;  ///< ticket (valid only when kAccepted)
  };

  /// `shed_when_full` selects shed admission; otherwise producers block.
  BasicIngestQueue(std::size_t capacity, bool shed_when_full)
      : capacity_(capacity), shed_when_full_(shed_when_full) {}
  BasicIngestQueue(const BasicIngestQueue&) = delete;
  BasicIngestQueue& operator=(const BasicIngestQueue&) = delete;

  /// Producer: enqueue `make(seq)` under the next ticket.  The factory runs
  /// under the queue lock, after admission has succeeded, so a ticket is
  /// issued if and only if its item is enqueued.
  template <typename MakeItem>
  PushResult push(MakeItem&& make) {
    std::uint64_t seq = 0;
    {
      std::unique_lock<Mutex> lock(mu_);
      if (stopping_) return {Push::kStopped, 0};
      if (queue_.size() >= capacity_) {
        if (shed_when_full_) return {Push::kShed, 0};
        cv_space_.wait(lock, [&] {
          return stopping_ || queue_.size() < capacity_;
        });
        if (stopping_) return {Push::kStopped, 0};
      }
      seq = ++accepted_seq_;
      queue_.push_back(make(seq));
      max_depth_ = std::max(max_depth_, static_cast<std::uint64_t>(queue_.size()));
    }
    cv_work_.notify_one();
    return {Push::kAccepted, seq};
  }

  /// Consumer: block until work (or stop), then close a batch of up to
  /// `max_batch` items into `out` — immediately if the batch is full, a
  /// flush is pending, or stop was requested; otherwise when the deadline
  /// `deadline_of(front-of-queue)` expires (size-or-deadline micro-batch
  /// trigger).  Returns false exactly once: stopped *and* fully drained, so
  /// every accepted ticket is eventually handed to the consumer.
  template <typename DeadlineOf>
  bool pop_batch(std::vector<Item>& out, std::size_t max_batch,
                 DeadlineOf&& deadline_of) {
    out.clear();
    {
      std::unique_lock<Mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return false;  // stopping and drained
      const auto deadline = deadline_of(queue_.front());
      while (!stopping_ && flush_waiters_ == 0 &&
             queue_.size() < max_batch) {
        if (cv_work_.wait_until(lock, deadline) == std::cv_status::timeout)
          break;
      }
      const auto take = static_cast<std::ptrdiff_t>(
          std::min(queue_.size(), max_batch));
      out.assign(queue_.begin(), queue_.begin() + take);
      queue_.erase(queue_.begin(), queue_.begin() + take);
    }
    cv_space_.notify_all();
    return true;
  }

  /// Consumer: tickets through `seq` are now covered (published).  Wakes
  /// session reads and flushes waiting at or below the watermark.
  void mark_applied(std::uint64_t seq) {
    {
      std::lock_guard<Mutex> lock(mu_);
      applied_seq_ = seq;
    }
    cv_watermark_.notify_all();
  }

  /// Wait until ticket `seq` is applied.  False = the ticket was never
  /// issued.  Accepted tickets are always drained (pop_batch keeps handing
  /// out batches after stop() until empty), so this terminates even during
  /// shutdown.
  bool wait_for(std::uint64_t seq) {
    std::unique_lock<Mutex> lock(mu_);
    if (seq > accepted_seq_) return false;
    cv_watermark_.wait(lock, [&] { return applied_seq_ >= seq; });
    return true;
  }

  /// Force the pending batch to close now and wait until every ticket
  /// accepted so far is applied.
  void flush() {
    std::unique_lock<Mutex> lock(mu_);
    const std::uint64_t target = accepted_seq_;
    ++flush_waiters_;
    cv_work_.notify_one();
    cv_watermark_.wait(lock, [&] { return applied_seq_ >= target; });
    --flush_waiters_;
  }

  /// Stop admitting pushes and release blocked producers.  Already-accepted
  /// items keep flowing to the consumer until the queue drains.
  void stop() {
    {
      std::lock_guard<Mutex> lock(mu_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<Mutex> lock(mu_);
    return queue_.size();
  }
  std::uint64_t max_depth() const {
    std::lock_guard<Mutex> lock(mu_);
    return max_depth_;
  }
  std::uint64_t accepted_seq() const {
    std::lock_guard<Mutex> lock(mu_);
    return accepted_seq_;
  }
  std::uint64_t applied_seq() const {
    std::lock_guard<Mutex> lock(mu_);
    return applied_seq_;
  }

 private:
  using Mutex = typename SyncPolicy::mutex;

  const std::size_t capacity_;
  const bool shed_when_full_;

  mutable Mutex mu_;
  typename SyncPolicy::condition_variable cv_work_;       ///< consumer wakeups
  typename SyncPolicy::condition_variable cv_space_;      ///< blocked producers
  typename SyncPolicy::condition_variable cv_watermark_;  ///< session reads / flush
  std::deque<Item> queue_;
  std::uint64_t accepted_seq_ = 0;   ///< last ticket issued
  std::uint64_t applied_seq_ = 0;    ///< last ticket covered by the consumer
  std::uint64_t flush_waiters_ = 0;  ///< force early batch close when > 0
  std::uint64_t max_depth_ = 0;
  bool stopping_ = false;
};

template <typename Item>
using IngestQueue = BasicIngestQueue<support::StdSyncPolicy, Item>;

}  // namespace lacc::serve
