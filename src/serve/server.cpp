#include "serve/server.hpp"

#include <algorithm>
#include <chrono>

#include "support/error.hpp"

namespace lacc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kShed:
      return "shed";
    case ServeStatus::kUnknownVertex:
      return "unknown-vertex";
    case ServeStatus::kRetiredEpoch:
      return "retired-epoch";
    case ServeStatus::kFutureEpoch:
      return "future-epoch";
    case ServeStatus::kInvalidTicket:
      return "invalid-ticket";
    case ServeStatus::kStopped:
      return "stopped";
  }
  return "unknown-status";
}

Server::Server(VertexId n, int nranks, const sim::MachineModel& machine,
               ServeOptions options)
    : n_(n),
      nranks_(nranks),
      options_(options),
      store_(options.retain_epochs),
      log_(options.record_requests),
      ingest_(options.queue_capacity, options.admission == Admission::kShed),
      engine_(n, nranks, machine, options.stream),
      started_(Clock::now()) {
  // Initial snapshot, published before the engine thread exists so reads
  // are valid immediately.  Memory-only (and fresh durable) engines start
  // at epoch 0 — the empty graph, every vertex its own component; a
  // recovered durable engine starts at its last manifest-published epoch,
  // so restarted servers resume serving the labels they had committed.
  store_.publish(std::make_shared<const Snapshot>(
      engine_.epoch(), engine_.labels(), options_.top_k,
      options_.pair_cache_bits, maybe_freeze_view()));
  engine_thread_ = std::thread([this] { engine_main(); });
}

Server::~Server() { stop(); }

std::uint64_t Server::applied_seq() const { return ingest_.applied_seq(); }

std::uint64_t Server::accepted_seq() const { return ingest_.accepted_seq(); }

WriteResult Server::insert_edge(VertexId u, VertexId v) {
  RequestTimer span(log_, "write.insert", options_.shard_tag);
  if (u >= n_ || v >= n_) {
    span.set_ok(false);
    return {ServeStatus::kUnknownVertex, 0};
  }
  const auto push = ingest_.push(
      [&](std::uint64_t seq) { return PendingWrite{u, v, seq, Clock::now()}; });
  switch (push.outcome) {
    case decltype(ingest_)::Push::kStopped:
      span.set_ok(false);
      return {ServeStatus::kStopped, 0};
    case decltype(ingest_)::Push::kShed:
      writes_shed_.fetch_add(1, std::memory_order_relaxed);
      span.set_ok(false);
      return {ServeStatus::kShed, 0};
    case decltype(ingest_)::Push::kAccepted:
      break;
  }
  writes_accepted_.fetch_add(1, std::memory_order_relaxed);
  return {ServeStatus::kOk, push.seq};
}

ReadResult Server::component_of(VertexId v, std::uint64_t ticket) const {
  return read_latest("read.component_of", v, v, /*pair=*/false, ticket);
}

ReadResult Server::same_component(VertexId u, VertexId v,
                                  std::uint64_t ticket) const {
  return read_latest("read.same_component", u, v, /*pair=*/true, ticket);
}

ReadResult Server::component_at(std::uint64_t epoch, VertexId v) const {
  return read_pinned("read.component_at", epoch, v, v, /*pair=*/false);
}

ReadResult Server::same_component_at(std::uint64_t epoch, VertexId u,
                                     VertexId v) const {
  return read_pinned("read.same_component_at", epoch, u, v, /*pair=*/true);
}

std::shared_ptr<const Snapshot> Server::snapshot() const {
  return store_.current();
}

SnapshotStore::Lookup Server::snapshot_at(
    std::uint64_t epoch, std::shared_ptr<const Snapshot>& out) const {
  return store_.at(epoch, out);
}

std::shared_ptr<const kernel::GraphView> Server::maybe_freeze_view() {
  if (!options_.enable_kernel_queries) return nullptr;
  return std::make_shared<const kernel::GraphView>(engine_.freeze_view());
}

ServeStatus Server::kernel_snapshot(
    bool pinned, std::uint64_t epoch,
    std::shared_ptr<const Snapshot>& snap) const {
  if (!options_.enable_kernel_queries)
    throw Error(
        "kernel queries are disabled; construct the server with "
        "ServeOptions::enable_kernel_queries");
  if (!pinned) {
    snap = store_.current();
    return ServeStatus::kOk;
  }
  switch (store_.at(epoch, snap)) {
    case SnapshotStore::Lookup::kRetired:
      return ServeStatus::kRetiredEpoch;
    case SnapshotStore::Lookup::kFuture:
      return ServeStatus::kFutureEpoch;
    case SnapshotStore::Lookup::kOk:
      break;
  }
  return ServeStatus::kOk;
}

void Server::record_kernel(const kernel::KernelStats& stats, bool ok) const {
  kernel_queries_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) kernel_query_errors_.fetch_add(1, std::memory_order_relaxed);
  kernel_modeled_us_.fetch_add(
      static_cast<std::uint64_t>(stats.modeled_seconds * 1e6),
      std::memory_order_relaxed);
}

BfsQueryResult Server::bfs_dist(VertexId source) const {
  return bfs_impl(/*pinned=*/false, 0, source);
}

BfsQueryResult Server::bfs_dist_at(std::uint64_t epoch,
                                   VertexId source) const {
  return bfs_impl(/*pinned=*/true, epoch, source);
}

BfsQueryResult Server::bfs_impl(bool pinned, std::uint64_t epoch,
                                VertexId source) const {
  RequestTimer span(log_, "kernel.bfs", options_.shard_tag);
  BfsQueryResult r;
  std::shared_ptr<const Snapshot> snap;
  r.status = kernel_snapshot(pinned, epoch, snap);
  if (r.status == ServeStatus::kOk && source >= n_)
    r.status = ServeStatus::kUnknownVertex;
  if (r.status == ServeStatus::kOk) {
    r.epoch = snap->epoch();
    r.result = kernel::bfs(*snap->view(), source, options_.kernel_options);
    record_kernel(r.result.stats, true);
  } else {
    record_kernel({}, false);
    span.set_ok(false);
  }
  return r;
}

PageRankQueryResult Server::pagerank_topk(std::size_t k) const {
  return pagerank_impl(/*pinned=*/false, 0, k);
}

PageRankQueryResult Server::pagerank_topk_at(std::uint64_t epoch,
                                             std::size_t k) const {
  return pagerank_impl(/*pinned=*/true, epoch, k);
}

PageRankQueryResult Server::pagerank_impl(bool pinned, std::uint64_t epoch,
                                          std::size_t k) const {
  RequestTimer span(log_, "kernel.pagerank", options_.shard_tag);
  PageRankQueryResult r;
  std::shared_ptr<const Snapshot> snap;
  r.status = kernel_snapshot(pinned, epoch, snap);
  if (r.status == ServeStatus::kOk) {
    r.epoch = snap->epoch();
    const auto pr = kernel::pagerank(*snap->view(), options_.kernel_options);
    r.top = kernel::top_k_ranks(pr.rank, k);
    r.l1_residual = pr.l1_residual;
    r.converged = pr.converged;
    r.stats = pr.stats;
    record_kernel(r.stats, true);
  } else {
    record_kernel({}, false);
    span.set_ok(false);
  }
  return r;
}

TriangleQueryResult Server::triangle_count() const {
  return triangles_impl(/*pinned=*/false, 0);
}

TriangleQueryResult Server::triangle_count_at(std::uint64_t epoch) const {
  return triangles_impl(/*pinned=*/true, epoch);
}

TriangleQueryResult Server::triangles_impl(bool pinned,
                                           std::uint64_t epoch) const {
  RequestTimer span(log_, "kernel.triangles", options_.shard_tag);
  TriangleQueryResult r;
  std::shared_ptr<const Snapshot> snap;
  r.status = kernel_snapshot(pinned, epoch, snap);
  if (r.status == ServeStatus::kOk) {
    r.epoch = snap->epoch();
    const auto tc = kernel::triangle_count(*snap->view(),
                                           options_.kernel_options);
    r.triangles = tc.triangles;
    r.stats = tc.stats;
    record_kernel(r.stats, true);
  } else {
    record_kernel({}, false);
    span.set_ok(false);
  }
  return r;
}

ReadResult Server::read_latest(const char* what, VertexId u, VertexId v,
                               bool pair, std::uint64_t ticket) const {
  RequestTimer span(log_, what, options_.shard_tag);
  const auto t0 = Clock::now();
  reads_.fetch_add(1, std::memory_order_relaxed);

  ReadResult r;
  if (ticket != 0) r.status = wait_for_ticket(ticket);
  if (r.status == ServeStatus::kOk) {
    if (u >= n_ || (pair && v >= n_)) {
      r.status = ServeStatus::kUnknownVertex;
    } else {
      const auto snap = store_.current();
      r.epoch = snap->epoch();
      if (pair)
        r.same = snap->same_component(u, v);
      else
        r.label = snap->label_of(u);
    }
  }
  if (r.status != ServeStatus::kOk) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    span.set_ok(false);
  }
  read_latency_.record_seconds(seconds_between(t0, Clock::now()));
  return r;
}

ReadResult Server::read_pinned(const char* what, std::uint64_t epoch,
                               VertexId u, VertexId v, bool pair) const {
  RequestTimer span(log_, what, options_.shard_tag);
  const auto t0 = Clock::now();
  reads_.fetch_add(1, std::memory_order_relaxed);

  ReadResult r;
  r.epoch = epoch;
  std::shared_ptr<const Snapshot> snap;
  switch (store_.at(epoch, snap)) {
    case SnapshotStore::Lookup::kRetired:
      r.status = ServeStatus::kRetiredEpoch;
      break;
    case SnapshotStore::Lookup::kFuture:
      r.status = ServeStatus::kFutureEpoch;
      break;
    case SnapshotStore::Lookup::kOk:
      if (u >= n_ || (pair && v >= n_)) {
        r.status = ServeStatus::kUnknownVertex;
      } else if (pair) {
        r.same = snap->same_component(u, v);
      } else {
        r.label = snap->label_of(u);
      }
      break;
  }
  if (r.status != ServeStatus::kOk) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    span.set_ok(false);
  }
  read_latency_.record_seconds(seconds_between(t0, Clock::now()));
  return r;
}

ServeStatus Server::wait_for_ticket(std::uint64_t ticket) const {
  // Accepted writes are always drained (stop() finishes the queue before
  // joining), so this wait terminates even during shutdown.
  return ingest_.wait_for(ticket) ? ServeStatus::kOk
                                  : ServeStatus::kInvalidTicket;
}

void Server::engine_main() {
  std::vector<PendingWrite> batch;
  // Size-or-deadline batch close: a batch ships when it fills, when the
  // oldest pending write's window expires, or when stop()/flush() force an
  // immediate close (all inside pop_batch).
  while (ingest_.pop_batch(batch, options_.batch_max_edges,
                           [&](const PendingWrite& front) {
                             return front.enqueued +
                                    std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double, std::milli>(
                                            options_.batch_window_ms));
                           })) {
    apply_batch(std::move(batch));
    batch.clear();
  }
}

void Server::apply_batch(std::vector<PendingWrite> batch) {
  RequestTimer span(log_, "engine.commit", options_.shard_tag);

  graph::EdgeList el(n_);
  el.edges.reserve(batch.size());
  for (const PendingWrite& w : batch) el.add(w.u, w.v);
  if (options_.record_applied) applied_batches_.push_back(el);

  engine_.ingest(std::move(el));
  const stream::EpochStats st = engine_.advance_epoch();

  // Boundary edges the shard filter parked ship to the router *before* this
  // epoch's snapshot publishes and its tickets are marked applied — the
  // ordering the global watermark argument rests on (see ServeOptions).
  if (options_.boundary_sink) {
    std::vector<graph::Edge> boundary = engine_.take_extracted_boundary();
    if (!boundary.empty()) options_.boundary_sink(std::move(boundary), st.epoch);
  }

  store_.publish(std::make_shared<const Snapshot>(
      st.epoch, engine_.labels(), options_.top_k, options_.pair_cache_bits,
      maybe_freeze_view()));

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_edges_.fetch_add(batch.size(), std::memory_order_relaxed);
  const auto now = Clock::now();
  // Commit latency = write-visibility latency: enqueue to publication.
  for (const PendingWrite& w : batch)
    commit_latency_.record_seconds(seconds_between(w.enqueued, now));

  ingest_.mark_applied(batch.back().seq);
}

void Server::flush() { ingest_.flush(); }

void Server::stop() {
  std::call_once(stop_once_, [this] {
    ingest_.stop();
    // The engine thread drains every accepted write before exiting, so
    // session reads waiting on tickets still complete.
    if (engine_thread_.joinable()) engine_thread_.join();
    stopped_.store(true, std::memory_order_release);
  });
}

bool Server::stopped() const {
  return stopped_.load(std::memory_order_acquire);
}

ServeStats Server::stats() const {
  ServeStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.writes_accepted = writes_accepted_.load(std::memory_order_relaxed);
  s.writes_shed = writes_shed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_edges = batched_edges_.load(std::memory_order_relaxed);
  s.max_queue_depth = ingest_.max_depth();
  s.queue_depth = ingest_.size();
  const auto snap = store_.current();
  s.current_epoch = snap->epoch();
  s.components = snap->num_components();
  for (std::uint64_t e = store_.oldest_retained();; ++e) {
    std::shared_ptr<const Snapshot> pin;
    if (store_.at(e, pin) != SnapshotStore::Lookup::kOk) break;
    s.cache_hits += pin->cache().hits();
    s.cache_misses += pin->cache().misses();
  }
  s.run_seconds = seconds_between(started_, Clock::now());
  if (s.run_seconds > 0)
    s.epochs_per_sec = static_cast<double>(s.batches) / s.run_seconds;
  s.read_p50 = read_latency_.quantile(0.50);
  s.read_p95 = read_latency_.quantile(0.95);
  s.read_p99 = read_latency_.quantile(0.99);
  s.commit_p50 = commit_latency_.quantile(0.50);
  s.commit_p95 = commit_latency_.quantile(0.95);
  s.commit_p99 = commit_latency_.quantile(0.99);
  s.kernel_queries = kernel_queries_.load(std::memory_order_relaxed);
  s.kernel_query_errors =
      kernel_query_errors_.load(std::memory_order_relaxed);
  s.kernel_modeled_seconds =
      static_cast<double>(kernel_modeled_us_.load(std::memory_order_relaxed)) *
      1e-6;
  return s;
}

const std::vector<stream::EpochStats>& Server::engine_history() const {
  LACC_CHECK_MSG(stopped(),
                 "engine_history() is only safe after stop() has joined the "
                 "engine thread");
  return engine_.history();
}

const std::vector<graph::EdgeList>& Server::applied_batches() const {
  LACC_CHECK_MSG(stopped(),
                 "applied_batches() is only safe after stop() has joined the "
                 "engine thread");
  return applied_batches_;
}

double Server::engine_modeled_seconds() const {
  LACC_CHECK_MSG(stopped(),
                 "engine_modeled_seconds() is only safe after stop() has "
                 "joined the engine thread");
  return engine_.total_modeled_seconds();
}

stream::durable::DurabilityStats Server::durability_stats() const {
  LACC_CHECK_MSG(stopped(),
                 "durability_stats() is only safe after stop() has joined "
                 "the engine thread");
  return engine_.durability_stats();
}

}  // namespace lacc::serve
