// lacc::serve — a concurrent query-serving front-end over the incremental
// streaming engine.
//
// The design splits the world into one *engine thread* and any number of
// *client threads*:
//
//   clients ──insert_edge──▶ bounded queue ──▶ engine thread
//                                              ingest + advance_epoch
//                                              (lacc::stream, SPMD)
//   clients ◀──component_of / same_component── SnapshotStore (immutable
//                                              epoch snapshots)
//
// Writes are *micro-batched*: the engine thread closes a batch when either
// `batch_max_edges` inserts are pending or the oldest pending insert has
// waited `batch_window_ms` — the classic size-or-deadline trigger that
// trades epoch overhead against write-visibility latency.  The queue is
// bounded; when it is full, admission control either blocks the writer
// (Admission::kBlock) or sheds the request with kShed so the caller can
// back off (Admission::kShed).  Reads never touch the engine: they load an
// immutable snapshot and answer from plain arrays, so a slow epoch can
// delay *freshness* but never a read.
//
// Consistency model (docs/SERVING.md):
//   * Every snapshot is a *serializable prefix*: epoch e's labels are
//     bit-identical to normalize_labels(lacc_dist(all edges applied through
//     epoch e)) — the streaming engine's invariant, surfaced unchanged.
//   * Reads are monotonic per snapshot handle but, by default, only as
//     fresh as the last published epoch ("read committed").
//   * Read-your-writes: insert_edge returns a ticket; passing that ticket
//     to a read blocks the read until the covering epoch is published, so
//     a session always observes its own accepted writes.
//
// The engine thread is joined (never detached) in stop()/the destructor —
// tools/lint_spmd.py enforces the no-detached-threads rule tree-wide.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/edge_list.hpp"
#include "kernel/kernels.hpp"
#include "obs/latency.hpp"
#include "serve/ingest_queue.hpp"
#include "serve/snapshot.hpp"
#include "serve/trace.hpp"
#include "sim/machine.hpp"
#include "stream/engine.hpp"

namespace lacc::serve {

/// What to do with a write when the ingest queue is full.
enum class Admission {
  kBlock,  ///< writer waits for queue space (backpressure)
  kShed,   ///< reject immediately with ServeStatus::kShed (load shedding)
};

/// Outcome of one serving request.
enum class ServeStatus {
  kOk = 0,
  kShed,           ///< write rejected by admission control
  kUnknownVertex,  ///< vertex id outside [0, n)
  kRetiredEpoch,   ///< pinned epoch older than the retention window
  kFutureEpoch,    ///< pinned epoch not published yet
  kInvalidTicket,  ///< session ticket was never issued
  kStopped,        ///< server is shutting down
};

const char* to_string(ServeStatus status);

struct ServeOptions {
  /// Streaming policy of the underlying engine (rebuild threshold,
  /// compaction factor, LaccOptions).
  stream::StreamOptions stream;

  /// Close the pending batch once this many edges are queued...
  std::size_t batch_max_edges = 1024;
  /// ...or once the oldest pending edge has waited this long.
  double batch_window_ms = 2.0;

  /// Ingest queue capacity; beyond it, `admission` decides.
  std::size_t queue_capacity = 1 << 16;
  Admission admission = Admission::kBlock;

  /// Epochs kept pinnable for time-travel reads; older ones retire.
  std::size_t retain_epochs = 8;
  /// log2 slots of each snapshot's pair-query cache (0 disables).
  std::uint32_t pair_cache_bits = 12;
  /// Entries of each snapshot's top-components view.
  std::size_t top_k = 8;

  /// Attach a frozen kernel::GraphView to every published snapshot and
  /// enable the analytics endpoints (bfs_dist / pagerank_topk /
  /// triangle_count).  Off by default: freezing costs a per-epoch view
  /// build (zero-copy when no delta runs are resident) and keeps retained
  /// epochs' graph structure alive.
  bool enable_kernel_queries = false;
  /// Tuning/convergence knobs for the analytics kernels.
  kernel::KernelOptions kernel_options;

  /// Record per-request spans (exportable via write_request_trace).
  bool record_requests = false;
  /// Keep every applied batch for post-hoc verification (lacc_serve_cli
  /// --verify); costs memory proportional to the total edge stream.
  bool record_applied = false;

  /// Sharded deployments (lacc::shard::Router): called from the engine
  /// thread after each epoch commit with the cross-shard edges that epoch
  /// extracted, *before* the epoch's snapshot publishes and its tickets are
  /// marked applied — so a global snapshot whose per-shard watermark covers
  /// a ticket has necessarily seen that ticket's boundary edges.  Must be
  /// thread-safe against the router's reconcile thread.  Null when
  /// unsharded.
  std::function<void(std::vector<graph::Edge>, std::uint64_t)> boundary_sink;
  /// Shard id stamped on this server's request-log spans (-1 = unsharded).
  int shard_tag = -1;
};

/// A write acknowledgement: `ticket` is the session token to pass to reads
/// that must observe this write (valid only when status == kOk).
struct WriteResult {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t ticket = 0;
};

/// A read answer.  `epoch` is the snapshot the answer was served from.
struct ReadResult {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t epoch = 0;
  VertexId label = kNoVertex;  ///< component_of answers
  bool same = false;           ///< same_component answers
};

/// One analytics query answer.  `epoch` is the snapshot the kernel ran
/// against; the kernel payload is valid only when status == kOk.
struct BfsQueryResult {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t epoch = 0;
  kernel::BfsResult result;
};

struct PageRankQueryResult {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t epoch = 0;
  std::vector<kernel::RankEntry> top;  ///< top-k by rank, ties by min id
  double l1_residual = 0;
  bool converged = false;
  kernel::KernelStats stats;
};

struct TriangleQueryResult {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t epoch = 0;
  std::uint64_t triangles = 0;
  kernel::KernelStats stats;
};

/// Point-in-time serving statistics (safe to call from any thread).
struct ServeStats {
  std::uint64_t reads = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t writes_accepted = 0;
  std::uint64_t writes_shed = 0;
  std::uint64_t batches = 0;          ///< epochs advanced by the engine thread
  std::uint64_t batched_edges = 0;    ///< edges folded into those epochs
  std::uint64_t queue_depth = 0;      ///< pending writes right now
  std::uint64_t max_queue_depth = 0;
  std::uint64_t cache_hits = 0;       ///< summed over retained snapshots
  std::uint64_t cache_misses = 0;
  std::uint64_t current_epoch = 0;
  std::uint64_t components = 0;
  double run_seconds = 0;             ///< since server construction
  double epochs_per_sec = 0;
  double read_p50 = 0, read_p95 = 0, read_p99 = 0;        ///< seconds
  double commit_p50 = 0, commit_p95 = 0, commit_p99 = 0;  ///< seconds
  std::uint64_t kernel_queries = 0;  ///< analytics endpoint calls
  std::uint64_t kernel_query_errors = 0;
  double kernel_modeled_seconds = 0;  ///< summed kernel modeled time
};

/// Concurrent connected-components server.  Construction publishes the
/// epoch-0 snapshot (every vertex its own component) and starts the engine
/// thread; reads are safe from any thread immediately.
class Server {
 public:
  Server(VertexId n, int nranks, const sim::MachineModel& machine,
         ServeOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  VertexId num_vertices() const { return n_; }
  int ranks() const { return nranks_; }
  const ServeOptions& options() const { return options_; }

  /// Queue one edge insert.  Returns the session ticket on acceptance;
  /// kUnknownVertex for endpoints outside [0, n); kShed under a full queue
  /// with Admission::kShed; kStopped after stop().  Self-loops and
  /// duplicates are accepted (and ticketed) — canonicalization inside the
  /// engine drops them from the graph.
  WriteResult insert_edge(VertexId u, VertexId v);

  /// Component label of v at the latest epoch.  A non-zero `ticket` makes
  /// this a session read: it first waits until the epoch covering that
  /// write is published (read-your-writes).
  ReadResult component_of(VertexId v, std::uint64_t ticket = 0) const;

  /// Are u and v connected at the latest epoch (session semantics as
  /// component_of)?
  ReadResult same_component(VertexId u, VertexId v,
                            std::uint64_t ticket = 0) const;

  /// Pinned-epoch variants: answer exactly at `epoch`, or report
  /// kRetiredEpoch / kFutureEpoch.
  ReadResult component_at(std::uint64_t epoch, VertexId v) const;
  ReadResult same_component_at(std::uint64_t epoch, VertexId u,
                               VertexId v) const;

  /// The latest snapshot (never null), and a pinned epoch's snapshot.
  std::shared_ptr<const Snapshot> snapshot() const;
  SnapshotStore::Lookup snapshot_at(std::uint64_t epoch,
                                    std::shared_ptr<const Snapshot>& out) const;

  /// Analytics endpoints (require ServeOptions::enable_kernel_queries,
  /// else they throw Error — a configuration mistake, not a request
  /// error).  Each runs its kernel on the *caller's* thread against the
  /// latest (or, for the _at variants, a pinned retention-ring) snapshot's
  /// frozen view, so analytics never block ingest: the engine thread keeps
  /// advancing epochs while a kernel runs, and compaction copies-on-write
  /// around the pinned view.
  BfsQueryResult bfs_dist(VertexId source) const;
  BfsQueryResult bfs_dist_at(std::uint64_t epoch, VertexId source) const;
  PageRankQueryResult pagerank_topk(std::size_t k) const;
  PageRankQueryResult pagerank_topk_at(std::uint64_t epoch,
                                       std::size_t k) const;
  TriangleQueryResult triangle_count() const;
  TriangleQueryResult triangle_count_at(std::uint64_t epoch) const;

  /// Highest write ticket covered by a published epoch — the shard's
  /// applied-seq watermark.  The router reads this *before* grabbing
  /// snapshot() so the (watermark, snapshot) pair it composes into a global
  /// epoch is conservative: the snapshot covers at least the watermark.
  std::uint64_t applied_seq() const;

  /// Highest write ticket ever issued; seqs above it were never accepted,
  /// so a session mark beyond this is an invalid ticket.
  std::uint64_t accepted_seq() const;

  /// Force the pending batch to close now and wait until every accepted
  /// write is covered by a published epoch.
  void flush();

  /// Stop accepting writes, drain the queue, and join the engine thread.
  /// Idempotent; the destructor calls it.
  void stop();
  bool stopped() const;

  ServeStats stats() const;
  const RequestLog& request_log() const { return log_; }

  /// Post-stop access for verification and metrics export: the engine's
  /// per-epoch records, and (with record_applied) the raw edge batch each
  /// epoch applied (applied_batches()[e - 1] is epoch e's batch).
  const std::vector<stream::EpochStats>& engine_history() const;
  const std::vector<graph::EdgeList>& applied_batches() const;
  double engine_modeled_seconds() const;

  /// Durability pass-throughs (set at construction, safe from any thread).
  bool durable() const { return engine_.durable(); }
  bool recovered() const { return engine_.recovered(); }
  std::uint64_t recovered_epoch() const { return engine_.recovered_epoch(); }
  /// Durable I/O counters + recovery info; only safe after stop() (the
  /// engine thread mutates the counters while running).
  stream::durable::DurabilityStats durability_stats() const;

 private:
  struct PendingWrite {
    VertexId u, v;
    std::uint64_t seq;
    std::chrono::steady_clock::time_point enqueued;
  };

  void engine_main();
  void apply_batch(std::vector<PendingWrite> batch);
  /// Freeze the engine's current epoch into a snapshot-attachable view
  /// (null unless kernel queries are enabled).  Engine-thread / pre-start
  /// only, like every engine collective.
  std::shared_ptr<const kernel::GraphView> maybe_freeze_view();
  /// Resolve the snapshot a kernel query runs against: the latest
  /// (pinned=false) or the ring entry at `epoch`.  Returns kOk with a
  /// non-null snap, or the lookup failure status.  Throws Error when
  /// kernel queries are disabled.
  ServeStatus kernel_snapshot(bool pinned, std::uint64_t epoch,
                              std::shared_ptr<const Snapshot>& snap) const;
  void record_kernel(const kernel::KernelStats& stats, bool ok) const;
  BfsQueryResult bfs_impl(bool pinned, std::uint64_t epoch,
                          VertexId source) const;
  PageRankQueryResult pagerank_impl(bool pinned, std::uint64_t epoch,
                                    std::size_t k) const;
  TriangleQueryResult triangles_impl(bool pinned, std::uint64_t epoch) const;
  ServeStatus wait_for_ticket(std::uint64_t ticket) const;
  ReadResult read_latest(const char* what, VertexId u, VertexId v, bool pair,
                         std::uint64_t ticket) const;
  ReadResult read_pinned(const char* what, std::uint64_t epoch, VertexId u,
                         VertexId v, bool pair) const;

  const VertexId n_;
  const int nranks_;
  const ServeOptions options_;

  SnapshotStore store_;
  mutable RequestLog log_;

  /// Bounded write queue + ticket watermark (serve/ingest_queue.hpp).
  mutable IngestQueue<PendingWrite> ingest_;
  std::once_flag stop_once_;
  std::atomic<bool> stopped_{false};  ///< set after the engine thread joins

  // Engine-thread-only state (plus post-join readers).
  stream::StreamEngine engine_;
  std::vector<graph::EdgeList> applied_batches_;

  // Monitoring (atomics: updated lock-free from any thread).
  mutable std::atomic<std::uint64_t> reads_{0};
  mutable std::atomic<std::uint64_t> read_errors_{0};
  std::atomic<std::uint64_t> writes_accepted_{0};
  std::atomic<std::uint64_t> writes_shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_edges_{0};
  mutable std::atomic<std::uint64_t> kernel_queries_{0};
  mutable std::atomic<std::uint64_t> kernel_query_errors_{0};
  /// Summed kernel modeled seconds in microsecond ticks (atomic double via
  /// integer, same idiom as the router's reconcile clock).
  mutable std::atomic<std::uint64_t> kernel_modeled_us_{0};
  mutable obs::LatencyHistogram read_latency_;
  obs::LatencyHistogram commit_latency_;
  const std::chrono::steady_clock::time_point started_;

  std::thread engine_thread_;  ///< last member: joined in stop()
};

}  // namespace lacc::serve
