#include "serve/snapshot.hpp"

#include "core/options.hpp"
#include "support/error.hpp"

namespace lacc::serve {

Snapshot::Snapshot(std::uint64_t epoch, std::vector<VertexId> labels,
                   std::size_t top_k, std::uint32_t cache_bits)
    : epoch_(epoch),
      labels_(std::move(labels)),
      cache_(cache_bits, static_cast<VertexId>(labels_.size())) {
  const auto n = static_cast<VertexId>(labels_.size());
  for (VertexId v = 0; v < n; ++v) {
    LACC_CHECK_MSG(labels_[v] <= v && labels_[labels_[v]] == labels_[v],
                   "snapshot labels are not canonical at vertex " << v);
    if (labels_[v] == v) ++num_components_;
  }
  if (top_k != 0 && n != 0)
    top_components_ = core::top_k_components(labels_, top_k);
}

bool Snapshot::same_component(VertexId u, VertexId v) const {
  if (u == v) return true;
  const VertexId lo = std::min(u, v), hi = std::max(u, v);
  if (const auto cached = cache_.lookup(lo, hi)) return *cached;
  const bool same = labels_[lo] == labels_[hi];
  cache_.insert(lo, hi, same);
  return same;
}

SnapshotStore::SnapshotStore(std::size_t retain)
    : retain_(retain < 1 ? 1 : retain) {}

void SnapshotStore::publish(std::shared_ptr<const Snapshot> snap) {
  LACC_CHECK(snap != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  // Consecutive epochs let at() index the ring directly.
  LACC_CHECK_MSG(ring_.empty() || snap->epoch() == ring_.back()->epoch() + 1,
                 "snapshot epochs must advance by exactly one");
  ring_.push_back(std::move(snap));
  while (ring_.size() > retain_) ring_.pop_front();
}

SnapshotStore::Lookup SnapshotStore::at(
    std::uint64_t epoch, std::shared_ptr<const Snapshot>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty() || epoch > ring_.back()->epoch()) return Lookup::kFuture;
  if (epoch < ring_.front()->epoch()) return Lookup::kRetired;
  // Published epochs are consecutive within the ring, so index directly.
  const std::size_t idx =
      static_cast<std::size_t>(epoch - ring_.front()->epoch());
  out = ring_[idx];
  return Lookup::kOk;
}

std::uint64_t SnapshotStore::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? 0 : ring_.back()->epoch();
}

std::uint64_t SnapshotStore::oldest_retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? 0 : ring_.front()->epoch();
}

}  // namespace lacc::serve
