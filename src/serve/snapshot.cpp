#include "serve/snapshot.hpp"

#include "core/options.hpp"
#include "support/error.hpp"

namespace lacc::serve {

Snapshot::Snapshot(std::uint64_t epoch, std::vector<VertexId> labels,
                   std::size_t top_k, std::uint32_t cache_bits,
                   std::shared_ptr<const kernel::GraphView> view)
    : epoch_(epoch),
      labels_(std::move(labels)),
      cache_(cache_bits, static_cast<VertexId>(labels_.size())),
      view_(std::move(view)) {
  const auto n = static_cast<VertexId>(labels_.size());
  for (VertexId v = 0; v < n; ++v) {
    LACC_CHECK_MSG(labels_[v] <= v && labels_[labels_[v]] == labels_[v],
                   "snapshot labels are not canonical at vertex " << v);
    if (labels_[v] == v) ++num_components_;
  }
  if (top_k != 0 && n != 0)
    top_components_ = core::top_k_components(labels_, top_k);
}

bool Snapshot::same_component(VertexId u, VertexId v) const {
  if (u == v) return true;
  const VertexId lo = std::min(u, v), hi = std::max(u, v);
  if (const auto cached = cache_.lookup(lo, hi)) return *cached;
  const bool same = labels_[lo] == labels_[hi];
  cache_.insert(lo, hi, same);
  return same;
}

}  // namespace lacc::serve
