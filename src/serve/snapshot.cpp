#include "serve/snapshot.hpp"

#include "core/options.hpp"
#include "support/error.hpp"

namespace lacc::serve {

namespace {

/// splitmix64 finalizer: cheap, well-mixed slot hash for packed pairs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kValidBit = std::uint64_t{1} << 63;
constexpr std::uint64_t kSameBit = std::uint64_t{1} << 62;

}  // namespace

PairCache::PairCache(std::uint32_t bits, VertexId n) {
  // Vertex ids must fit 31 bits each so (valid, same, u, v) packs into one
  // atomic word; otherwise stay disabled and let every lookup miss.
  if (bits == 0 || bits > 28 || n >= (VertexId{1} << 31)) return;
  slots_ = std::vector<std::atomic<std::uint64_t>>(std::size_t{1} << bits);
}

std::uint64_t PairCache::pack(VertexId u, VertexId v, bool same) {
  return kValidBit | (same ? kSameBit : 0) | (std::uint64_t{u} << 31) |
         std::uint64_t{v};
}

std::size_t PairCache::slot_of(VertexId u, VertexId v) const {
  return static_cast<std::size_t>(mix64((std::uint64_t{u} << 32) | v)) &
         (slots_.size() - 1);
}

std::optional<bool> PairCache::lookup(VertexId u, VertexId v) const {
  if (!enabled()) return std::nullopt;
  const std::uint64_t entry =
      slots_[slot_of(u, v)].load(std::memory_order_relaxed);
  if ((entry | kSameBit) == (pack(u, v, true))) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return (entry & kSameBit) != 0;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void PairCache::insert(VertexId u, VertexId v, bool same) const {
  if (!enabled()) return;
  slots_[slot_of(u, v)].store(pack(u, v, same), std::memory_order_relaxed);
}

Snapshot::Snapshot(std::uint64_t epoch, std::vector<VertexId> labels,
                   std::size_t top_k, std::uint32_t cache_bits)
    : epoch_(epoch),
      labels_(std::move(labels)),
      cache_(cache_bits, static_cast<VertexId>(labels_.size())) {
  const auto n = static_cast<VertexId>(labels_.size());
  for (VertexId v = 0; v < n; ++v) {
    LACC_CHECK_MSG(labels_[v] <= v && labels_[labels_[v]] == labels_[v],
                   "snapshot labels are not canonical at vertex " << v);
    if (labels_[v] == v) ++num_components_;
  }
  if (top_k != 0 && n != 0)
    top_components_ = core::top_k_components(labels_, top_k);
}

bool Snapshot::same_component(VertexId u, VertexId v) const {
  if (u == v) return true;
  const VertexId lo = std::min(u, v), hi = std::max(u, v);
  if (const auto cached = cache_.lookup(lo, hi)) return *cached;
  const bool same = labels_[lo] == labels_[hi];
  cache_.insert(lo, hi, same);
  return same;
}

SnapshotStore::SnapshotStore(std::size_t retain)
    : retain_(retain < 1 ? 1 : retain) {}

void SnapshotStore::publish(std::shared_ptr<const Snapshot> snap) {
  LACC_CHECK(snap != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  // Consecutive epochs let at() index the ring directly.
  LACC_CHECK_MSG(ring_.empty() || snap->epoch() == ring_.back()->epoch() + 1,
                 "snapshot epochs must advance by exactly one");
  ring_.push_back(std::move(snap));
  while (ring_.size() > retain_) ring_.pop_front();
}

SnapshotStore::Lookup SnapshotStore::at(
    std::uint64_t epoch, std::shared_ptr<const Snapshot>& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty() || epoch > ring_.back()->epoch()) return Lookup::kFuture;
  if (epoch < ring_.front()->epoch()) return Lookup::kRetired;
  // Published epochs are consecutive within the ring, so index directly.
  const std::size_t idx =
      static_cast<std::size_t>(epoch - ring_.front()->epoch());
  out = ring_[idx];
  return Lookup::kOk;
}

std::uint64_t SnapshotStore::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? 0 : ring_.back()->epoch();
}

std::uint64_t SnapshotStore::oldest_retained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? 0 : ring_.front()->epoch();
}

}  // namespace lacc::serve
