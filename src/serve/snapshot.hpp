// lacc::serve snapshot layer: immutable, epoch-versioned views of the
// streaming engine's labels that concurrent readers share without ever
// blocking the SPMD runtime.
//
// The engine thread builds one Snapshot per advance_epoch (canonical label
// vector plus derived read structures: component count, top-k components,
// a per-epoch pair-query cache) and publishes it into the SnapshotStore
// with one pointer-sized critical section.  Readers grab the current (or a
// pinned) snapshot and answer queries against plain immutable arrays; the only
// mutable state a reader touches is the lock-free pair cache, whose entries
// embed their full key so a racy overwrite can stale a cached answer's
// slot but never corrupt one.  See docs/SERVING.md for the consistency
// model.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "kernel/view.hpp"
#include "support/error.hpp"
#include "support/sync.hpp"
#include "support/types.hpp"

namespace lacc::serve {

namespace detail {

/// splitmix64 finalizer: cheap, well-mixed slot hash for packed pairs.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline constexpr std::uint64_t kPairValidBit = std::uint64_t{1} << 63;
inline constexpr std::uint64_t kPairSameBit = std::uint64_t{1} << 62;

}  // namespace detail

/// Lock-free fixed-size cache of same_component(u, v) answers for one
/// epoch.  Each slot is a single atomic word packing (valid, answer, u, v),
/// so lookups validate the *entire* key — a collision or torn publication
/// can only miss, never return a wrong answer.  Requires vertex ids below
/// 2^31; for larger graphs the cache disables itself and every lookup
/// misses (callers fall through to the O(1) label comparison).
///
/// All slot accesses are deliberately relaxed: a slot's full key rides in
/// the same word as the answer, so there is no cross-word publication to
/// order.  The model checker explores every schedule of concurrent
/// lookup/insert races and checks "never a wrong answer, only misses"
/// directly (tests/sched/sched_paircache_test.cpp); contrast with the
/// two-word SplitPairCache in the mutation suite, which *does* need a
/// release and fails when it is dropped.
///
/// Templated over a sync policy (support/sync.hpp); PairCache below is the
/// production alias over std::atomic.
template <typename SyncPolicy>
class BasicPairCache {
 public:
  /// `bits` = log2 of the slot count (0 disables); `n` = vertex count.
  BasicPairCache(std::uint32_t bits, VertexId n) {
    // Vertex ids must fit 31 bits each so (valid, same, u, v) packs into
    // one atomic word; otherwise stay disabled and let every lookup miss.
    if (bits == 0 || bits > 28 || n >= (VertexId{1} << 31)) return;
    slots_ = std::vector<Atomic<std::uint64_t>>(std::size_t{1} << bits);
  }

  bool enabled() const { return !slots_.empty(); }
  std::size_t capacity() const { return slots_.size(); }

  /// Cached answer for the *ordered* pair (u < v), if present.
  std::optional<bool> lookup(VertexId u, VertexId v) const {
    if (!enabled()) return std::nullopt;
    const std::uint64_t entry =
        slots_[slot_of(u, v)].load(std::memory_order_relaxed);
    if ((entry | detail::kPairSameBit) == pack(u, v, true)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return (entry & detail::kPairSameBit) != 0;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Publish an answer for the ordered pair (u < v).  Callable on a const
  /// snapshot: the cache is the snapshot's one mutable (atomic) member.
  void insert(VertexId u, VertexId v, bool same) const {
    if (!enabled()) return;
    slots_[slot_of(u, v)].store(pack(u, v, same), std::memory_order_relaxed);
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  template <typename T>
  using Atomic = typename SyncPolicy::template atomic<T>;

  static std::uint64_t pack(VertexId u, VertexId v, bool same) {
    return detail::kPairValidBit | (same ? detail::kPairSameBit : 0) |
           (std::uint64_t{u} << 31) | std::uint64_t{v};
  }
  std::size_t slot_of(VertexId u, VertexId v) const {
    return static_cast<std::size_t>(
               detail::mix64((std::uint64_t{u} << 32) | v)) &
           (slots_.size() - 1);
  }

  mutable std::vector<Atomic<std::uint64_t>> slots_;
  mutable Atomic<std::uint64_t> hits_{0};
  mutable Atomic<std::uint64_t> misses_{0};
};

using PairCache = BasicPairCache<support::StdSyncPolicy>;

/// One immutable epoch view.  Everything except the pair cache is set at
/// construction and never mutated, so any number of threads may read it.
class Snapshot {
 public:
  /// Derive the read structures from a canonical label vector (label[v] =
  /// minimum vertex id of v's component, normalize_labels form).  `view`
  /// optionally attaches the epoch's frozen graph (StreamEngine::
  /// freeze_view) so analytics kernels can run against this exact epoch
  /// while ingest continues; null when kernel queries are disabled.
  Snapshot(std::uint64_t epoch, std::vector<VertexId> labels,
           std::size_t top_k, std::uint32_t cache_bits,
           std::shared_ptr<const kernel::GraphView> view = nullptr);

  std::uint64_t epoch() const { return epoch_; }
  VertexId num_vertices() const {
    return static_cast<VertexId>(labels_.size());
  }
  std::uint64_t num_components() const { return num_components_; }
  const std::vector<VertexId>& labels() const { return labels_; }

  /// The k largest components as (canonical label, size), largest first.
  const std::vector<std::pair<VertexId, std::uint64_t>>& top_components()
      const {
    return top_components_;
  }

  /// Canonical label of `v`; caller has already range-checked v.
  VertexId label_of(VertexId v) const { return labels_[v]; }

  /// Are u and v in the same component at this epoch?  Consults the pair
  /// cache first; a miss costs two array loads and refills the cache.
  bool same_component(VertexId u, VertexId v) const;

  const PairCache& cache() const { return cache_; }

  /// The epoch's frozen graph view (null unless the server was constructed
  /// with kernel queries enabled).  Holding the snapshot pins the view:
  /// compaction copies-on-write around live views, so kernels read this
  /// epoch's structure no matter how far ingest has advanced.
  const std::shared_ptr<const kernel::GraphView>& view() const {
    return view_;
  }

 private:
  std::uint64_t epoch_;
  std::vector<VertexId> labels_;
  std::uint64_t num_components_ = 0;
  std::vector<std::pair<VertexId, std::uint64_t>> top_components_;
  PairCache cache_;
  std::shared_ptr<const kernel::GraphView> view_;
};

/// Epoch-indexed snapshot publication point: one writer publishes strictly
/// increasing epochs, any number of readers fetch the current or a pinned
/// epoch.  All paths copy a shared_ptr under a briefly-held mutex whose
/// critical sections are pointer-sized — a reader can be delayed by another
/// pointer copy, never by epoch computation.  (GCC 12's
/// std::atomic<std::shared_ptr> would make current() lock-free, but its
/// embedded lock-bit protocol unlocks with a relaxed store on the reader
/// side, which TSan — lacking the happens-before edge — reports as a race;
/// the mutex keeps the hammer suites sanitizer-clean.)
///
/// **Pinning.**  The ring retains the most recent `retain` epochs; beyond
/// that, readers can pin() an epoch to keep it readable while the writer
/// advances arbitrarily far.  This closes the retention-ring gap the router
/// hop exposed: a replica session that pinned epoch e used to lose it to
/// eviction after `retain` more reconciles and start seeing kRetired
/// mid-session; now eviction moves a pinned epoch aside instead of dropping
/// it, and at() keeps answering kOk until the last unpin().  Pins are
/// counted, so independent sessions can pin the same epoch.
///
/// Templated over the snapshot type (anything with an epoch() method):
/// SnapshotStore below is the serve-layer alias, and the shard layer's
/// replica stores instantiate it over GlobalSnapshot.
template <typename SnapT>
class BasicSnapshotRing {
 public:
  /// Outcome of a pinned-epoch lookup.
  enum class Lookup { kOk, kRetired, kFuture };

  /// Keep the most recent `retain` epochs pinnable (>= 1; older snapshots
  /// are dropped — unless pinned — and report kRetired).
  explicit BasicSnapshotRing(std::size_t retain)
      : retain_(retain < 1 ? 1 : retain) {}

  /// Publish the next epoch.  Single-writer; epochs must be strictly
  /// increasing.
  void publish(std::shared_ptr<const SnapT> snap) {
    LACC_CHECK(snap != nullptr);
    std::lock_guard<std::mutex> lock(mu_);
    // Consecutive epochs let at() index the ring directly.
    LACC_CHECK_MSG(ring_.empty() || snap->epoch() == ring_.back()->epoch() + 1,
                   "snapshot epochs must advance by exactly one");
    ring_.push_back(std::move(snap));
    while (ring_.size() > retain_) {
      // Eviction respects pins: a pinned epoch moves to the side table and
      // stays readable until its last unpin.
      const auto& victim = ring_.front();
      if (pin_counts_.count(victim->epoch()) != 0)
        pinned_.emplace(victim->epoch(), victim);
      ring_.pop_front();
    }
  }

  /// The latest published snapshot (never null once one is published).
  std::shared_ptr<const SnapT> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.empty() ? nullptr : ring_.back();
  }

  /// Fetch the snapshot pinned at `epoch` into `out` (untouched on
  /// failure).
  Lookup at(std::uint64_t epoch, std::shared_ptr<const SnapT>& out) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty() || epoch > ring_.back()->epoch()) return Lookup::kFuture;
    if (epoch < ring_.front()->epoch()) {
      const auto it = pinned_.find(epoch);
      if (it == pinned_.end()) return Lookup::kRetired;
      out = it->second;
      return Lookup::kOk;
    }
    // Published epochs are consecutive within the ring, so index directly.
    const std::size_t idx =
        static_cast<std::size_t>(epoch - ring_.front()->epoch());
    out = ring_[idx];
    return Lookup::kOk;
  }

  /// Pin `epoch` so it survives retention eviction until unpin().  Succeeds
  /// exactly when the epoch is currently readable (in the ring or already
  /// pinned); pins are counted per epoch.
  Lookup pin(std::uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty() || epoch > ring_.back()->epoch()) return Lookup::kFuture;
    if (epoch < ring_.front()->epoch() && pinned_.count(epoch) == 0)
      return Lookup::kRetired;
    ++pin_counts_[epoch];
    return Lookup::kOk;
  }

  /// Drop one pin on `epoch`.  When the last pin goes and the epoch has
  /// left the ring, the snapshot is released.
  void unpin(std::uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = pin_counts_.find(epoch);
    LACC_CHECK_MSG(it != pin_counts_.end(),
                   "unpin of epoch " << epoch << " which is not pinned");
    if (--it->second == 0) {
      pin_counts_.erase(it);
      pinned_.erase(epoch);
    }
  }

  std::uint64_t current_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.empty() ? 0 : ring_.back()->epoch();
  }

  /// Oldest epoch of the contiguous retention window (pinned epochs older
  /// than this stay readable via at() but are not part of the window).
  std::uint64_t oldest_retained() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.empty() ? 0 : ring_.front()->epoch();
  }

 private:
  const std::size_t retain_;
  mutable std::mutex mu_;  // guards ring_, pinned_, pin_counts_
  std::deque<std::shared_ptr<const SnapT>> ring_;  // ascending epochs
  /// Epochs evicted from the ring but still pinned, and the live pin counts
  /// (an epoch may be pinned while still inside the ring).
  std::map<std::uint64_t, std::shared_ptr<const SnapT>> pinned_;
  std::map<std::uint64_t, std::size_t> pin_counts_;
};

using SnapshotStore = BasicSnapshotRing<Snapshot>;

}  // namespace lacc::serve
