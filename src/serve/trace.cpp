#include "serve/trace.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"

namespace lacc::serve {

void RequestLog::record(std::string name, double start_us, double end_us,
                        bool ok, int shard) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= cap_) {
    ++dropped_;
    return;
  }
  spans_.push_back({std::move(name), std::this_thread::get_id(), start_us,
                    std::max(0.0, end_us - start_us), ok, shard});
}

std::vector<RequestSpan> RequestLog::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::uint64_t RequestLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void write_request_trace(std::ostream& out,
                         const std::vector<RequestSpan>& spans,
                         const std::string& process_name) {
  // Densify thread ids in first-appearance order so the trace schema's
  // "tids cover [0, ranks)" invariant holds whatever threads recorded.
  std::map<std::thread::id, int> tid_of;
  for (const RequestSpan& span : spans)
    tid_of.emplace(span.thread, static_cast<int>(tid_of.size()));

  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("schema", "lacc-trace-v1");
  w.kv("clock", "wall microseconds");
  w.kv("ranks", static_cast<std::int64_t>(tid_of.size()));
  w.end_object();
  w.key("traceEvents");
  w.begin_array();

  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", process_name);
  w.end_object();
  w.end_object();

  for (const auto& [thread, tid] : tid_of) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::int64_t>(tid));
    w.key("args");
    w.begin_object();
    w.kv("name", "serve thread " + std::to_string(tid));
    w.end_object();
    w.end_object();
  }

  for (const RequestSpan& span : spans) {
    w.begin_object();
    w.kv("name", span.name);
    w.kv("cat", "serve");
    w.kv("ph", "X");
    w.kv("pid", 0);
    w.kv("tid", static_cast<std::int64_t>(tid_of.at(span.thread)));
    w.kv("ts", span.start_us);
    w.kv("dur", span.dur_us);
    w.key("args");
    w.begin_object();
    w.kv("ok", span.ok);
    if (span.shard >= 0) w.kv("shard", static_cast<std::int64_t>(span.shard));
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace lacc::serve
