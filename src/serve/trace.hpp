// Per-request span log for the serving layer, exportable as a Chrome
// trace-event timeline (schema lacc-trace-v1, same as the SPMD traces —
// but on the *wall* clock, since serve requests are real concurrent
// threads, not modeled ranks).  Each thread that ever records becomes one
// timeline row; rows are densely renumbered at export so the validator's
// "events cover [0, ranks)" invariant holds.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace lacc::serve {

/// One completed request (or engine-thread phase) span.
struct RequestSpan {
  std::string name;            ///< e.g. "read.same_component", "serve-advance"
  std::thread::id thread;      ///< recording thread (densified at export)
  double start_us = 0;         ///< wall microseconds since log creation
  double dur_us = 0;
  bool ok = true;              ///< false when the request errored/shed
  /// Shard that handled the request (router deployments), or the replica id
  /// for router-level reads; -1 on unsharded servers (omitted at export).
  int shard = -1;
};

/// Thread-safe bounded append log.  Recording is one mutex-guarded
/// push_back; when the cap is reached further spans are counted but
/// dropped, so a long soak can't grow without bound.
class RequestLog {
 public:
  explicit RequestLog(bool enabled, std::size_t cap = std::size_t{1} << 17)
      : enabled_(enabled), cap_(cap), origin_(Clock::now()) {}

  bool enabled() const { return enabled_; }

  /// Wall microseconds since the log was created.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - origin_)
        .count();
  }

  void record(std::string name, double start_us, double end_us, bool ok,
              int shard = -1);

  /// Snapshot of the spans recorded so far plus the drop count.
  std::vector<RequestSpan> spans() const;
  std::uint64_t dropped() const;

 private:
  using Clock = std::chrono::steady_clock;
  const bool enabled_;
  const std::size_t cap_;
  const Clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<RequestSpan> spans_;
  std::uint64_t dropped_ = 0;
};

/// Scoped helper: records one span on destruction (no-op when disabled).
class RequestTimer {
 public:
  RequestTimer(RequestLog& log, const char* name, int shard = -1)
      : log_(log),
        name_(name),
        start_us_(log.enabled() ? log.now_us() : 0),
        shard_(shard) {}
  ~RequestTimer() {
    if (log_.enabled())
      log_.record(name_, start_us_, log_.now_us(), ok_, shard_);
  }
  RequestTimer(const RequestTimer&) = delete;
  RequestTimer& operator=(const RequestTimer&) = delete;
  void set_ok(bool ok) { ok_ = ok; }
  void set_shard(int shard) { shard_ = shard; }

 private:
  RequestLog& log_;
  const char* name_;
  double start_us_;
  bool ok_ = true;
  int shard_;
};

/// Write the recorded spans as a Chrome trace-event JSON document
/// (lacc-trace-v1; otherData.clock = "wall").
void write_request_trace(std::ostream& out,
                         const std::vector<RequestSpan>& spans,
                         const std::string& process_name);

}  // namespace lacc::serve
