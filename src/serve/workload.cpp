#include "serve/workload.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace lacc::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// splitmix64: per-thread deterministic request stream.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

void merge_into(WorkloadReport& total, const WorkloadReport& part) {
  total.writes_attempted += part.writes_attempted;
  total.writes_accepted += part.writes_accepted;
  total.writes_shed += part.writes_shed;
  total.reads += part.reads;
  total.read_errors += part.read_errors;
  total.session_reads += part.session_reads;
  total.session_violations += part.session_violations;
  total.pinned_reads += part.pinned_reads;
  total.pinned_misses += part.pinned_misses;
}

}  // namespace

WorkloadReport run_mixed_workload(Server& server,
                                  const graph::EdgeList& stream,
                                  const WorkloadOptions& options) {
  const int writers = options.writers < 0 ? 0 : options.writers;
  const int readers = options.readers < 0 ? 0 : options.readers;
  const auto start = Clock::now();
  const auto deadline =
      options.duration_s > 0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(options.duration_s))
          : Clock::time_point::max();

  std::atomic<bool> done{false};
  std::mutex report_mu;
  WorkloadReport total;

  auto writer_main = [&](int id) {
    WorkloadReport r;
    // Round-robin partition: writer id replays edges id, id+W, id+2W, ...
    for (std::size_t i = static_cast<std::size_t>(id);
         i < stream.edges.size(); i += static_cast<std::size_t>(writers)) {
      if (Clock::now() >= deadline) break;
      const graph::Edge e = stream.edges[i];
      ++r.writes_attempted;
      const WriteResult w = server.insert_edge(e.u, e.v);
      if (w.status == ServeStatus::kShed) {
        ++r.writes_shed;
        continue;
      }
      if (w.status != ServeStatus::kOk) {
        ++r.read_errors;
        continue;
      }
      ++r.writes_accepted;
      if (options.session_every != 0 &&
          r.writes_accepted % options.session_every == 0) {
        // Read-your-writes: with the ticket, this session must observe its
        // own edge, i.e. the endpoints are now connected.
        ++r.session_reads;
        const ReadResult q = server.same_component(e.u, e.v, w.ticket);
        if (q.status != ServeStatus::kOk || !q.same) ++r.session_violations;
      }
    }
    std::lock_guard<std::mutex> lock(report_mu);
    merge_into(total, r);
  };

  auto reader_main = [&](int id) {
    WorkloadReport r;
    Rng rng{options.seed * 0x2545f4914f6cdd1dull + 0x1234ull + id};
    const VertexId n = server.num_vertices();
    while (!done.load(std::memory_order_acquire)) {
      ++r.reads;
      const auto u = static_cast<VertexId>(rng.below(n));
      const auto v = static_cast<VertexId>(rng.below(n));
      if (options.pinned_every != 0 && r.reads % options.pinned_every == 0) {
        // Pin an epoch near the current one; deliberately overshoot
        // sometimes to exercise the retired/future error paths.
        const std::uint64_t cur = server.snapshot()->epoch();
        const std::uint64_t pin = rng.below(cur + 3);
        ++r.pinned_reads;
        const ReadResult q = server.same_component_at(pin, u, v);
        if (q.status == ServeStatus::kRetiredEpoch ||
            q.status == ServeStatus::kFutureEpoch)
          ++r.pinned_misses;
        else if (q.status != ServeStatus::kOk)
          ++r.read_errors;
      } else if (rng.below(4) == 0) {
        if (server.component_of(u).status != ServeStatus::kOk)
          ++r.read_errors;
      } else {
        if (server.same_component(u, v).status != ServeStatus::kOk)
          ++r.read_errors;
      }
    }
    std::lock_guard<std::mutex> lock(report_mu);
    merge_into(total, r);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(writers + readers));
  for (int i = 0; i < readers; ++i) threads.emplace_back(reader_main, i);
  for (int i = 0; i < writers; ++i) threads.emplace_back(writer_main, i);

  // Writers are the tail of `threads`; join them first, then flush so the
  // readers' last observations cover every accepted write, then release
  // the readers.
  for (int i = 0; i < writers; ++i) {
    threads[static_cast<std::size_t>(readers + i)].join();
  }
  if (writers == 0 && options.duration_s > 0)
    std::this_thread::sleep_until(deadline);
  server.flush();
  done.store(true, std::memory_order_release);
  for (int i = 0; i < readers; ++i) threads[static_cast<std::size_t>(i)].join();

  total.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return total;
}

}  // namespace lacc::serve
