// Mixed read/write workload replay against a lacc::serve::Server —
// the shared driver behind examples/lacc_serve_cli and bench/bench_serve.
//
// M writer threads replay a fixed edge stream (round-robin partitioned so
// the interleaving stresses batching) while N reader threads issue random
// point and pair queries against the snapshot store.  A fraction of writes
// are *session* writes: the writer immediately re-reads its own edge with
// the returned ticket and checks that both endpoints are connected — the
// read-your-writes guarantee, verified online.  Everything is seeded, so a
// run's request sequence (though not its thread interleaving) is
// reproducible.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "serve/server.hpp"

namespace lacc::serve {

struct WorkloadOptions {
  int readers = 4;
  int writers = 2;
  /// Wall-clock cap; 0 replays the whole edge stream.  Readers always run
  /// until the writers are done and the queue is flushed.
  double duration_s = 0;
  std::uint64_t seed = 1;
  /// Every k-th accepted write performs a ticketed read-your-writes check
  /// (0 disables).
  std::uint32_t session_every = 16;
  /// Every k-th read pins a (possibly retired or future) epoch instead of
  /// reading latest (0 disables).
  std::uint32_t pinned_every = 32;
};

struct WorkloadReport {
  std::uint64_t writes_attempted = 0;
  std::uint64_t writes_accepted = 0;
  std::uint64_t writes_shed = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_errors = 0;  ///< unexpected statuses (not pinned misses)
  std::uint64_t session_reads = 0;
  /// Ticketed reads that did NOT observe the session's own write — must be
  /// zero; anything else is a consistency bug.
  std::uint64_t session_violations = 0;
  std::uint64_t pinned_reads = 0;
  std::uint64_t pinned_misses = 0;  ///< kRetiredEpoch / kFutureEpoch answers
  double wall_seconds = 0;
};

/// Run the workload to completion (all threads joined before returning).
WorkloadReport run_mixed_workload(Server& server,
                                  const graph::EdgeList& stream,
                                  const WorkloadOptions& options);

}  // namespace lacc::serve
