#include "shard/boundary.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/sort.hpp"

namespace lacc::shard {

BoundaryStore::BoundaryStore(ShardPartition partition, bool record_raw)
    : partition_(partition),
      record_raw_(record_raw),
      per_shard_raw_(static_cast<std::size_t>(partition.shards), 0) {}

void BoundaryStore::add(std::vector<graph::Edge> edges) {
  if (edges.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const graph::Edge& e : edges) {
    const int su = partition_.owner(e.u), sv = partition_.owner(e.v);
    LACC_CHECK_MSG(su != sv, "boundary edge (" << e.u << ", " << e.v
                                               << ") is not cross-shard");
    ++per_shard_raw_[static_cast<std::size_t>(su)];
    ++per_shard_raw_[static_cast<std::size_t>(sv)];
  }
  next_seq_ += edges.size();
  if (record_raw_) raw_log_.insert(raw_log_.end(), edges.begin(), edges.end());
  pending_.insert(pending_.end(),
                  std::make_move_iterator(edges.begin()),
                  std::make_move_iterator(edges.end()));
}

BoundaryStore::Drain BoundaryStore::drain_and_compact(
    const std::function<VertexId(VertexId)>& label_of) {
  Drain d;
  std::vector<graph::Edge> raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw.swap(pending_);
    drained_seq_ += raw.size();
    d.covered_seq = drained_seq_;
  }
  d.raw_drained = raw.size();

  // Remap everything — new raw edges and the previous compacted pairs —
  // through the *current* shard-local labels, then dedupe.  The sort keeps
  // the quotient edge list deterministic for a given drained prefix.
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(compacted_.size() + raw.size());
  VertexId max_label = 0;
  const auto push_pair = [&](VertexId a, VertexId b) {
    const VertexId la = label_of(a), lb = label_of(b);
    LACC_DCHECK(la != lb);  // representatives live on distinct shards
    pairs.emplace_back(std::min(la, lb), std::max(la, lb));
    max_label = std::max({max_label, la, lb});
  };
  for (const auto& [a, b] : compacted_) push_pair(a, b);
  for (const graph::Edge& e : raw) push_pair(e.u, e.v);
  // Stable secondary-then-primary radix passes compose into a (first,
  // second) order (support/sort.hpp).
  std::vector<std::pair<VertexId, VertexId>> scratch;
  radix_sort_by(pairs, scratch, [](const auto& p) { return p.second; },
                max_label);
  radix_sort_by(pairs, scratch, [](const auto& p) { return p.first; },
                max_label);
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  d.words_moved = 2 * pairs.size();
  compacted_ = pairs;
  d.pairs = std::move(pairs);
  {
    std::lock_guard<std::mutex> lock(mu_);
    words_moved_ += d.words_moved;
  }
  return d;
}

std::uint64_t BoundaryStore::pending_raw() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::vector<std::uint64_t> BoundaryStore::per_shard_raw() const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_shard_raw_;
}

std::uint64_t BoundaryStore::total_raw() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t BoundaryStore::total_words_moved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return words_moved_;
}

}  // namespace lacc::shard
