// Cross-shard boundary store: the edges the shard filter extracts at epoch
// commit, staged for the quotient-graph reconcile.
//
// A cross-shard edge (u, v) never enters any shard's graph; it is a
// *boundary entry on both sides* — the store indexes it under both endpoint
// shards (per-shard counters, per-shard-pair dedup) and the reconcile folds
// it into the quotient graph as a (local_label(u), local_label(v)) pair.
//
// The words-moved discipline (On Optimizing Resource Utilization in
// Distributed CC, PAPERS.md): what ships per reconcile round is the
// *deduplicated label-pair set*, not raw edges.  The store therefore
// compacts itself every round — raw entries and previously compacted pairs
// are remapped through the current shard-local labels (components only ever
// merge, so label(r) at a later epoch equals the later label of r's current
// representative — the rewrite is always safe) and deduplicated; the
// deduped set is both the quotient edge list and the new stored state.
//
// Thread model: add() is called from N shard engine threads (the servers'
// boundary sinks) under one mutex; drain_and_compact() is reconcile-thread
// only and holds the mutex just long enough to move the pending raw vector
// out.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "graph/edge_list.hpp"
#include "support/partition.hpp"
#include "support/types.hpp"

namespace lacc::shard {

class BoundaryStore {
 public:
  /// `record_raw` keeps every raw boundary edge in arrival (= seq) order
  /// for post-hoc verification; costs memory proportional to the boundary
  /// stream.
  BoundaryStore(ShardPartition partition, bool record_raw);

  /// Register extracted cross-shard edges (thread-safe; engine threads).
  /// Entries get consecutive sequence numbers in arrival order.
  void add(std::vector<graph::Edge> edges);

  /// What one reconcile round drained and shipped.
  struct Drain {
    /// Deduplicated (label, label) pairs, each ordered (min, max) and the
    /// whole set sorted — the quotient edge list, and the words actually
    /// moved to the reconcile.
    std::vector<std::pair<VertexId, VertexId>> pairs;
    std::uint64_t covered_seq = 0;   ///< highest raw seq folded in, cumulative
    std::uint64_t raw_drained = 0;   ///< raw entries folded this round
    std::uint64_t words_moved = 0;   ///< 2 * pairs.size() (shipped this round)
  };

  /// Reconcile thread only: fold pending raw edges and the previous
  /// compacted set through `label_of` (current shard-local label of a
  /// vertex), dedupe, and keep the result as the new compacted state.
  Drain drain_and_compact(const std::function<VertexId(VertexId)>& label_of);

  /// Raw entries accepted but not yet drained (cheap peek for the
  /// reconcile's skip-idle-tick check).
  std::uint64_t pending_raw() const;

  /// Raw boundary edges in seq order (record_raw only; reconcile-quiesced
  /// callers).  raw_log()[s - 1] is the edge with seq s.
  const std::vector<graph::Edge>& raw_log() const { return raw_log_; }

  /// Raw boundary entries seen per shard — a cross-shard edge counts on
  /// both sides.
  std::vector<std::uint64_t> per_shard_raw() const;

  /// Cumulative counters for metrics.
  std::uint64_t total_raw() const;
  std::uint64_t total_words_moved() const;

 private:
  const ShardPartition partition_;
  const bool record_raw_;

  mutable std::mutex mu_;  // guards pending_, raw_log_, counters
  std::vector<graph::Edge> pending_;
  std::vector<graph::Edge> raw_log_;
  std::vector<std::uint64_t> per_shard_raw_;
  std::uint64_t next_seq_ = 0;        ///< seqs assigned so far
  std::uint64_t drained_seq_ = 0;     ///< seqs folded by drains so far
  std::uint64_t words_moved_ = 0;     ///< cumulative shipped words

  /// Reconcile-thread-only compacted state (no lock needed).
  std::vector<std::pair<VertexId, VertexId>> compacted_;
};

}  // namespace lacc::shard
