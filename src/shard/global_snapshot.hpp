// One immutable *global* epoch: shard-local labels composed with the
// boundary LACC's quotient map, plus the provenance needed to reason about
// coverage.
//
// The embedded serve::Snapshot answers reads exactly like a single-server
// snapshot (canonical labels, top-k view, pair cache), so the replica read
// path and the serve read path share every query structure.  The extra
// fields record *what the epoch covers*: the per-shard applied-seq
// watermarks, the per-shard local epochs it composed, and the boundary
// sequence it folded in — the data the ticket-coverage argument and the
// verification replay both key off.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "serve/snapshot.hpp"
#include "shard/quotient.hpp"
#include "support/types.hpp"

namespace lacc::shard {

class GlobalSnapshot {
 public:
  /// `labels` must be the composed canonical global labeling (label[v] =
  /// minimum vertex id of v's global component); the serve::Snapshot
  /// constructor validates canonicality.
  GlobalSnapshot(std::uint64_t epoch, std::vector<VertexId> labels,
                 std::size_t top_k, std::uint32_t cache_bits,
                 std::vector<std::uint64_t> covered,
                 std::vector<std::uint64_t> local_epochs,
                 std::uint64_t boundary_covered, ReconcileStats stats)
      : view_(epoch, std::move(labels), top_k, cache_bits),
        covered_(std::move(covered)),
        local_epochs_(std::move(local_epochs)),
        boundary_covered_(boundary_covered),
        stats_(stats) {}

  std::uint64_t epoch() const { return view_.epoch(); }

  /// The serve-layer view: labels, component count, top-k, pair cache.
  const serve::Snapshot& view() const { return view_; }

  /// Per-shard applied-seq watermark this epoch covers.
  const std::vector<std::uint64_t>& covered() const { return covered_; }
  /// Per-shard local epoch whose snapshot this epoch composed.
  const std::vector<std::uint64_t>& local_epochs() const {
    return local_epochs_;
  }
  /// Highest boundary-edge seq folded into the quotient.
  std::uint64_t boundary_covered() const { return boundary_covered_; }

  /// Boundary LACC instrumentation of the reconcile that built this epoch.
  const ReconcileStats& reconcile_stats() const { return stats_; }

 private:
  serve::Snapshot view_;
  std::vector<std::uint64_t> covered_;
  std::vector<std::uint64_t> local_epochs_;
  std::uint64_t boundary_covered_ = 0;
  ReconcileStats stats_;
};

}  // namespace lacc::shard
