#include "shard/quotient.hpp"

#include <algorithm>

#include "core/lacc_dist.hpp"
#include "graph/edge_list.hpp"
#include "support/error.hpp"
#include "support/sort.hpp"

namespace lacc::shard {

namespace {

int largest_square_at_most(int x) {
  if (x < 1) return 1;
  int r = 1;
  while ((r + 1) * (r + 1) <= x) ++r;
  return r * r;
}

}  // namespace

ReconcileResult reconcile_quotient(
    const std::vector<std::pair<VertexId, VertexId>>& pairs, int max_ranks,
    const sim::MachineModel& machine, const core::LaccOptions& options) {
  ReconcileResult out;
  out.stats.quotient_edges = pairs.size();
  out.stats.words_moved = 2 * pairs.size();
  if (pairs.empty()) return out;

  // Distinct labels, ascending — compact id order mirrors label order.
  std::vector<std::uint64_t> reps;
  reps.reserve(2 * pairs.size());
  VertexId max_label = 0;
  for (const auto& [a, b] : pairs) {
    LACC_DCHECK(a < b);
    reps.push_back(a);
    reps.push_back(b);
    max_label = std::max(max_label, b);
  }
  std::vector<std::uint64_t> scratch;
  radix_sort_by(reps, scratch, [](std::uint64_t x) { return x; }, max_label);
  reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
  out.stats.quotient_vertices = reps.size();

  const auto compact = [&](VertexId label) {
    const auto it = std::lower_bound(reps.begin(), reps.end(), label);
    LACC_DCHECK(it != reps.end() && *it == label);
    return static_cast<VertexId>(it - reps.begin());
  };

  graph::EdgeList quotient(static_cast<VertexId>(reps.size()));
  quotient.edges.reserve(pairs.size());
  for (const auto& [a, b] : pairs) quotient.add(compact(a), compact(b));

  const int ranks = largest_square_at_most(
      std::min<int>(max_ranks, static_cast<int>(reps.size())));
  const core::DistRunResult run =
      core::lacc_dist(quotient, ranks, machine, options);
  out.stats.ranks_used = ranks;
  out.stats.iterations = run.cc.iterations;
  out.stats.modeled_seconds = run.modeled_seconds;

  // ql[i] = min compact id of i's quotient component = compact id of the
  // min *original* label (compaction is order-preserving), so mapping back
  // through reps yields the canonical global label of every rep.
  const std::vector<VertexId> ql = core::normalize_labels(run.cc.parent);
  out.qmap.reserve(reps.size());
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const VertexId global = static_cast<VertexId>(reps[ql[i]]);
    if (global != static_cast<VertexId>(reps[i]))
      out.qmap.emplace(static_cast<VertexId>(reps[i]), global);
  }
  return out;
}

}  // namespace lacc::shard
