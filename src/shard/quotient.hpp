// The boundary LACC: connected components of the shard-label quotient
// graph.
//
// The reconcile never ships vertices — its graph's "vertices" are the
// distinct shard-local component labels appearing in the deduplicated
// boundary pairs, and its edges are those pairs.  That graph is tiny
// compared to the vertex space (it can't exceed twice the boundary pair
// count), so one small core::lacc_dist run per reconcile round resolves
// every cross-shard merge.
//
// Label discipline: the distinct labels are compacted to [0, q) in
// ascending order, so compact id order mirrors original label order and
// normalize_labels on the compact graph (minimum compact id per component)
// maps back to the minimum *original* label per quotient component.  The
// resulting qmap therefore composes with canonical shard-local labels into
// a canonical global labeling (g[v] = min vertex id of v's global
// component) — exactly the serve::Snapshot contract.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "sim/machine.hpp"
#include "support/types.hpp"

namespace lacc::shard {

/// Instrumentation of one reconcile round's boundary LACC.
struct ReconcileStats {
  std::uint64_t quotient_vertices = 0;  ///< distinct labels in the pairs
  std::uint64_t quotient_edges = 0;     ///< deduped label pairs
  int ranks_used = 0;                   ///< SPMD ranks of the boundary run
  int iterations = 0;                   ///< LACC iterations to converge
  double modeled_seconds = 0;           ///< boundary run's modeled time
  std::uint64_t words_moved = 0;        ///< 2 * pairs shipped this round
  std::uint64_t raw_drained = 0;        ///< raw boundary edges folded in
};

/// Result of one reconcile: the global label map.  `qmap` holds only the
/// non-identity entries — a shard-local label absent from it is already
/// global (its component never crosses a shard, or it is the minimum).
struct ReconcileResult {
  std::unordered_map<VertexId, VertexId> qmap;
  ReconcileStats stats;
};

/// Run the boundary LACC over deduplicated cross-shard label pairs (each
/// ordered (min, max); the list sorted — BoundaryStore::Drain form).
/// `max_ranks` bounds the SPMD width; the run uses the largest perfect
/// square <= min(max_ranks, quotient vertices), at least 1.
ReconcileResult reconcile_quotient(
    const std::vector<std::pair<VertexId, VertexId>>& pairs, int max_ranks,
    const sim::MachineModel& machine, const core::LaccOptions& options);

}  // namespace lacc::shard
