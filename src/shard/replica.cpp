#include "shard/replica.hpp"

#include <chrono>

namespace lacc::shard {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

serve::ReadResult ReplicaStore::read_latest(VertexId u, VertexId v,
                                            bool pair) const {
  const auto t0 = Clock::now();
  reads_.fetch_add(1, std::memory_order_relaxed);

  serve::ReadResult r;
  if (u >= n_ || (pair && v >= n_)) {
    r.status = serve::ServeStatus::kUnknownVertex;
  } else {
    const auto snap = ring_.current();
    r.epoch = snap->epoch();
    if (pair)
      r.same = snap->view().same_component(u, v);
    else
      r.label = snap->view().label_of(u);
  }
  if (r.status != serve::ServeStatus::kOk)
    read_errors_.fetch_add(1, std::memory_order_relaxed);
  read_latency_.record_seconds(seconds_between(t0, Clock::now()));
  return r;
}

serve::ReadResult ReplicaStore::read_pinned(std::uint64_t epoch, VertexId u,
                                            VertexId v, bool pair) const {
  const auto t0 = Clock::now();
  reads_.fetch_add(1, std::memory_order_relaxed);

  serve::ReadResult r;
  r.epoch = epoch;
  std::shared_ptr<const GlobalSnapshot> snap;
  switch (ring_.at(epoch, snap)) {
    case GlobalSnapshotRing::Lookup::kRetired:
      r.status = serve::ServeStatus::kRetiredEpoch;
      break;
    case GlobalSnapshotRing::Lookup::kFuture:
      r.status = serve::ServeStatus::kFutureEpoch;
      break;
    case GlobalSnapshotRing::Lookup::kOk:
      if (u >= n_ || (pair && v >= n_)) {
        r.status = serve::ServeStatus::kUnknownVertex;
      } else if (pair) {
        r.same = snap->view().same_component(u, v);
      } else {
        r.label = snap->view().label_of(u);
      }
      break;
  }
  if (r.status != serve::ServeStatus::kOk)
    read_errors_.fetch_add(1, std::memory_order_relaxed);
  read_latency_.record_seconds(seconds_between(t0, Clock::now()));
  return r;
}

ReplicaStats ReplicaStore::stats() const {
  ReplicaStats s;
  s.replica = id_;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.current_epoch = ring_.current_epoch();
  s.read_p50 = read_latency_.quantile(0.50);
  s.read_p95 = read_latency_.quantile(0.95);
  s.read_p99 = read_latency_.quantile(0.99);
  return s;
}

}  // namespace lacc::shard
