// Read-only replica stores: the fan-out targets of the reconcile thread's
// global-snapshot publication.
//
// Each replica owns an independent BasicSnapshotRing<GlobalSnapshot> (with
// pinning, so a replica session holding an epoch keeps it readable while
// the router advances) plus its own read counters and latency histogram.
// With replicate-by-copy the reconcile hands every replica its *own*
// GlobalSnapshot object, so concurrent readers on different replicas never
// share a snapshot refcount or a pair-cache line — read throughput scales
// with the replica count instead of serializing on one hot cacheline.
#pragma once

#include <cstdint>
#include <memory>

#include "obs/latency.hpp"
#include "serve/server.hpp"
#include "shard/global_snapshot.hpp"
#include "support/types.hpp"

namespace lacc::shard {

/// Epoch ring over global snapshots (same publication/pinning semantics as
/// the serve layer's SnapshotStore).
using GlobalSnapshotRing = serve::BasicSnapshotRing<GlobalSnapshot>;

/// Point-in-time counters of one replica.
struct ReplicaStats {
  int replica = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t current_epoch = 0;
  double read_p50 = 0, read_p95 = 0, read_p99 = 0;  ///< seconds
};

class ReplicaStore {
 public:
  ReplicaStore(int id, std::size_t retain, VertexId n)
      : id_(id), n_(n), ring_(retain) {}
  ReplicaStore(const ReplicaStore&) = delete;
  ReplicaStore& operator=(const ReplicaStore&) = delete;

  int id() const { return id_; }

  /// Reconcile thread only: publish the next global epoch to this replica.
  void publish(std::shared_ptr<const GlobalSnapshot> snap) {
    ring_.publish(std::move(snap));
  }

  std::shared_ptr<const GlobalSnapshot> current() const {
    return ring_.current();
  }

  /// Answer from the latest global snapshot (any thread).
  serve::ReadResult read_latest(VertexId u, VertexId v, bool pair) const;

  /// Answer exactly at global epoch `epoch`, or kRetiredEpoch/kFutureEpoch.
  serve::ReadResult read_pinned(std::uint64_t epoch, VertexId u, VertexId v,
                                bool pair) const;

  /// Keep `epoch` readable on this replica past retention eviction.
  GlobalSnapshotRing::Lookup pin(std::uint64_t epoch) {
    return ring_.pin(epoch);
  }
  void unpin(std::uint64_t epoch) { ring_.unpin(epoch); }

  ReplicaStats stats() const;

 private:
  const int id_;
  const VertexId n_;
  GlobalSnapshotRing ring_;

  mutable std::atomic<std::uint64_t> reads_{0};
  mutable std::atomic<std::uint64_t> read_errors_{0};
  mutable obs::LatencyHistogram read_latency_;
};

}  // namespace lacc::shard
