#include "shard/router.hpp"

#include <algorithm>
#include <chrono>

#include "core/lacc_dist.hpp"
#include "dist/dist_mat.hpp"
#include "dist/grid.hpp"
#include "kernel/kernels.hpp"
#include "sim/comm.hpp"
#include "sim/runtime.hpp"
#include "stream/delta_store.hpp"
#include "support/error.hpp"

namespace lacc::shard {

Router::Router(VertexId n, int nranks, const sim::MachineModel& machine,
               RouterOptions options)
    : n_(n),
      options_(options),
      partition_(options.shards),
      machine_(machine),
      boundary_(partition_, options.record_applied),
      watermarks_(options.shards) {
  LACC_CHECK_MSG(options_.shards >= 1, "router needs at least one shard");
  LACC_CHECK_MSG(options_.replicas >= 1, "router needs at least one replica");

  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    serve::ServeOptions so = options_.serve;
    so.stream.shards = partition_;
    so.stream.shard = s;
    so.record_applied = options_.record_applied;
    so.shard_tag = s;
    if (options_.shards > 1) {
      // The engine thread pushes each epoch's extracted cross-shard edges
      // here before publishing the epoch's snapshot (see ServeOptions).
      // Kernel queries keep their own copy: a cross-shard edge never enters
      // any shard's matrix, so view composition has to re-add it.
      so.boundary_sink = [this](std::vector<graph::Edge> edges,
                                std::uint64_t /*epoch*/) {
        if (options_.serve.enable_kernel_queries) {
          std::lock_guard<std::mutex> lock(kernel_mu_);
          kernel_boundary_.insert(kernel_boundary_.end(), edges.begin(),
                                  edges.end());
        }
        boundary_.add(std::move(edges));
      };
    }
    shards_.push_back(
        std::make_unique<serve::Server>(n, nranks, machine, std::move(so)));
  }

  replicas_.reserve(static_cast<std::size_t>(options_.replicas));
  for (int r = 0; r < options_.replicas; ++r)
    replicas_.push_back(std::make_unique<ReplicaStore>(
        r, options_.retain_epochs, n));

  // Global epoch 0: the empty graph, published to every replica before the
  // reconcile thread exists, so reads are valid immediately.  The watermark
  // vector stays at epoch 0 / all-zero coverage, which is vacuously
  // correct: no ticket exists yet.
  last_w_.assign(static_cast<std::size_t>(options_.shards), 0);
  last_e_.assign(static_cast<std::size_t>(options_.shards), 0);
  std::vector<VertexId> identity(n);
  for (VertexId v = 0; v < n; ++v) identity[v] = v;
  for (auto& rep : replicas_)
    rep->publish(std::make_shared<const GlobalSnapshot>(
        0, identity, options_.top_k, options_.pair_cache_bits, last_w_,
        last_e_, 0, ReconcileStats{}));
  if (options_.record_applied)
    history_.push_back(
        {0, last_w_, last_e_, 0, ReconcileStats{}, std::move(identity)});

  reconcile_thread_ = std::thread([this] { reconcile_main(); });
}

Router::~Router() { stop(); }

ShardWriteResult Router::insert_edge(VertexId u, VertexId v) {
  ShardWriteResult r;
  if (u >= n_ || v >= n_) {
    r.status = serve::ServeStatus::kUnknownVertex;
    return r;
  }
  // A cross-shard edge still routes to exactly one shard — owner(min(u, v))
  // — whose queue provides admission control and the ticket; the shard's
  // engine parks it for boundary extraction rather than ingesting it.
  const int s = partition_.owner(std::min(u, v));
  const serve::WriteResult wr =
      shards_[static_cast<std::size_t>(s)]->insert_edge(u, v);
  r.status = wr.status;
  if (wr.status == serve::ServeStatus::kOk) {
    r.ticket.marks.emplace_back(s, wr.ticket);
    r.ticket.epoch = watermarks_.epoch();
  }
  return r;
}

int Router::pick_replica(int replica) const {
  if (replica >= 0 && replica < options_.replicas) return replica;
  return static_cast<int>(next_replica_.fetch_add(
                              1, std::memory_order_relaxed) %
                          static_cast<std::uint64_t>(options_.replicas));
}

serve::ServeStatus Router::wait_for_ticket(const ShardTicket& ticket) const {
  if (ticket.empty()) return serve::ServeStatus::kOk;
  for (const auto& [s, seq] : ticket.marks) {
    if (s < 0 || s >= options_.shards ||
        seq > shards_[static_cast<std::size_t>(s)]->accepted_seq()) {
      invalid_tickets_.fetch_add(1, std::memory_order_relaxed);
      return serve::ServeStatus::kInvalidTicket;
    }
  }
  if (watermarks_.covers(ticket)) return serve::ServeStatus::kOk;
  ticket_waits_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(ticket_mu_);
  // Terminates: shards drain every accepted write before the final
  // reconcile, which publishes coverage of all of them and sets
  // reconcile_done_.
  ticket_cv_.wait(lock,
                  [&] { return watermarks_.covers(ticket) || reconcile_done_; });
  return watermarks_.covers(ticket) ? serve::ServeStatus::kOk
                                    : serve::ServeStatus::kInvalidTicket;
}

serve::ReadResult Router::component_of(VertexId v, const ShardTicket& ticket,
                                       int replica) const {
  serve::ReadResult r;
  r.status = wait_for_ticket(ticket);
  if (r.status != serve::ServeStatus::kOk) return r;
  return replicas_[static_cast<std::size_t>(pick_replica(replica))]
      ->read_latest(v, v, /*pair=*/false);
}

serve::ReadResult Router::same_component(VertexId u, VertexId v,
                                         const ShardTicket& ticket,
                                         int replica) const {
  serve::ReadResult r;
  r.status = wait_for_ticket(ticket);
  if (r.status != serve::ServeStatus::kOk) return r;
  return replicas_[static_cast<std::size_t>(pick_replica(replica))]
      ->read_latest(u, v, /*pair=*/true);
}

serve::ReadResult Router::component_at(std::uint64_t epoch, VertexId v,
                                       int replica) const {
  return replicas_[static_cast<std::size_t>(pick_replica(replica))]
      ->read_pinned(epoch, v, v, /*pair=*/false);
}

serve::ReadResult Router::same_component_at(std::uint64_t epoch, VertexId u,
                                            VertexId v, int replica) const {
  return replicas_[static_cast<std::size_t>(pick_replica(replica))]
      ->read_pinned(epoch, u, v, /*pair=*/true);
}

GlobalSnapshotRing::Lookup Router::pin(std::uint64_t epoch, int replica) {
  return replicas_[static_cast<std::size_t>(pick_replica(replica))]->pin(epoch);
}

void Router::unpin(std::uint64_t epoch, int replica) {
  replicas_[static_cast<std::size_t>(pick_replica(replica))]->unpin(epoch);
}

std::shared_ptr<const GlobalSnapshot> Router::snapshot(int replica) const {
  return replicas_[static_cast<std::size_t>(pick_replica(replica))]->current();
}

bool Router::reconcile_once() {
  const auto sz = static_cast<std::size_t>(options_.shards);
  // Ordering spine: watermarks first, snapshots second, drain last (see the
  // header comment).  Each snapshot then covers at least its watermark, and
  // the drain sees every boundary edge of every covered epoch.
  std::vector<std::uint64_t> w(sz), e(sz);
  for (std::size_t s = 0; s < sz; ++s) w[s] = shards_[s]->applied_seq();
  std::vector<std::shared_ptr<const serve::Snapshot>> snaps(sz);
  for (std::size_t s = 0; s < sz; ++s) {
    snaps[s] = shards_[s]->snapshot();
    e[s] = snaps[s]->epoch();
  }
  if (w == last_w_ && e == last_e_ && boundary_.pending_raw() == 0) {
    reconcile_skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  BoundaryStore::Drain drain = boundary_.drain_and_compact([&](VertexId v) {
    return snaps[static_cast<std::size_t>(partition_.owner(v))]->label_of(v);
  });
  ReconcileResult rq = reconcile_quotient(
      drain.pairs, options_.reconcile_ranks, machine_, options_.serve.stream.lacc);
  rq.stats.raw_drained = drain.raw_drained;

  // Compose: shard-local label through the owner's snapshot, then the
  // quotient map.  The result is canonical (label = min vertex id of the
  // global component), which the GlobalSnapshot constructor validates.
  std::vector<VertexId> g(n_);
  if (options_.shards == 1) {
    g = snaps[0]->labels();
  } else {
    for (VertexId v = 0; v < n_; ++v) {
      const VertexId l =
          snaps[static_cast<std::size_t>(partition_.owner(v))]->label_of(v);
      const auto it = rq.qmap.find(l);
      g[v] = it != rq.qmap.end() ? it->second : l;
    }
  }

  reconcile_rounds_.fetch_add(1, std::memory_order_relaxed);
  reconcile_modeled_us_.fetch_add(
      static_cast<std::uint64_t>(rq.stats.modeled_seconds * 1e6),
      std::memory_order_relaxed);
  publish_global(std::move(g), w, e, drain.covered_seq, rq.stats);
  last_w_ = std::move(w);
  last_e_ = std::move(e);
  return true;
}

void Router::publish_global(std::vector<VertexId> labels,
                            std::vector<std::uint64_t> covered,
                            std::vector<std::uint64_t> local_epochs,
                            std::uint64_t boundary_covered,
                            const ReconcileStats& stats) {
  const std::uint64_t epoch = ++global_epoch_counter_;
  if (options_.record_applied)
    history_.push_back(
        {epoch, covered, local_epochs, boundary_covered, stats, labels});

  // Replicas first, watermark vector last: a reader that observes ticket
  // coverage finds a covering snapshot on every replica.
  std::shared_ptr<const GlobalSnapshot> shared_snap;
  const std::size_t nr = replicas_.size();
  for (std::size_t r = 0; r < nr; ++r) {
    if (options_.replicate_by_copy && r + 1 < nr) {
      replicas_[r]->publish(std::make_shared<const GlobalSnapshot>(
          epoch, labels, options_.top_k, options_.pair_cache_bits, covered,
          local_epochs, boundary_covered, stats));
    } else if (options_.replicate_by_copy) {
      replicas_[r]->publish(std::make_shared<const GlobalSnapshot>(
          epoch, std::move(labels), options_.top_k, options_.pair_cache_bits,
          std::move(covered), std::move(local_epochs), boundary_covered,
          stats));
    } else {
      if (r == 0) {
        shared_snap = std::make_shared<const GlobalSnapshot>(
            epoch, std::move(labels), options_.top_k,
            options_.pair_cache_bits, std::move(covered),
            std::move(local_epochs), boundary_covered, stats);
      }
      replicas_[r]->publish(shared_snap);
    }
  }

  const GlobalSnapshot& head = *replicas_[0]->current();
  published_epoch_.store(epoch, std::memory_order_relaxed);
  {
    // Under ticket_mu_ so a waiter between its covers() check and its
    // wait() can't miss the notify.
    std::lock_guard<std::mutex> lock(ticket_mu_);
    watermarks_.publish(epoch, head.covered(), head.boundary_covered());
  }
  ticket_cv_.notify_all();
}

void Router::reconcile_main() {
  std::unique_lock<std::mutex> lock(reconcile_mu_);
  while (!stop_requested_) {
    reconcile_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            options_.reconcile_interval_ms),
        [&] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    reconcile_once();
    lock.lock();
  }
}

void Router::flush() {
  ShardTicket all;
  for (int s = 0; s < options_.shards; ++s) {
    shards_[static_cast<std::size_t>(s)]->flush();
    all.marks.emplace_back(
        s, shards_[static_cast<std::size_t>(s)]->applied_seq());
  }
  // flush() covered every accepted write with a *local* epoch; now wait for
  // a global one (the reconcile's watermark read happens after those local
  // publications, so coverage implies the boundary edges are folded too).
  const serve::ServeStatus st = wait_for_ticket(all);
  LACC_CHECK(st == serve::ServeStatus::kOk);
}

void Router::stop() {
  std::call_once(stop_once_, [this] {
    // Shards stop first: their engine threads drain every accepted write,
    // pushing any remaining boundary edges, before the final reconcile.
    for (auto& s : shards_) s->stop();
    {
      std::lock_guard<std::mutex> lock(reconcile_mu_);
      stop_requested_ = true;
    }
    reconcile_cv_.notify_all();
    if (reconcile_thread_.joinable()) reconcile_thread_.join();
    // Final reconcile (this thread is now the sole reconcile executor):
    // covers everything ever accepted, so pending ticket waits complete.
    reconcile_once();
    {
      std::lock_guard<std::mutex> lock(ticket_mu_);
      reconcile_done_ = true;
    }
    ticket_cv_.notify_all();
    stopped_.store(true, std::memory_order_release);
  });
}

bool Router::stopped() const {
  return stopped_.load(std::memory_order_acquire);
}

std::shared_ptr<const kernel::GraphView> Router::compose_view() const {
  if (!options_.serve.enable_kernel_queries)
    throw Error(
        "kernel queries are disabled; construct the router with "
        "ServeOptions::enable_kernel_queries on the serve template");

  // Grab every shard's latest snapshot first (each pins its frozen view),
  // then the boundary log; the composed graph is their union.  The cache
  // key is (per-shard epochs, boundary count): either changing means the
  // union changed, neither changing means it did not — shard snapshots are
  // immutable and the boundary log is append-only.
  std::vector<std::shared_ptr<const serve::Snapshot>> snaps;
  snaps.reserve(shards_.size());
  std::vector<std::uint64_t> key;
  key.reserve(shards_.size() + 1);
  for (const auto& sh : shards_) {
    snaps.push_back(sh->snapshot());
    key.push_back(snaps.back()->epoch());
  }
  std::vector<graph::Edge> boundary;
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    key.push_back(kernel_boundary_.size());
    if (kernel_view_cache_ && kernel_view_key_ == key)
      return kernel_view_cache_;
    boundary = kernel_boundary_;
  }

  const int nranks = snaps.front()->view()->nranks();
  std::vector<std::shared_ptr<const dist::DistCsc>> blocks(
      static_cast<std::size_t>(nranks));
  const auto spmd = sim::run_spmd(nranks, machine_, [&](sim::Comm& world) {
    dist::ProcGrid grid(world);
    sim::Region region(world, "kernel-compose",
                       static_cast<std::int64_t>(watermarks_.epoch()));
    // Every shard engine spans the full vertex space at the same SPMD
    // width, so shard s's rank-r block covers exactly this rank's row and
    // column ranges; their entries concatenate coordinate-for-coordinate.
    std::vector<dist::CscCoord> coords;
    for (const auto& snap : snaps) {
      const dist::DistCsc& blk = snap->view()->block(world.rank());
      const auto& cols = blk.col_ids();
      for (std::size_t ci = 0; ci < cols.size(); ++ci)
        for (const VertexId row : blk.col_rows(ci))
          coords.push_back({row, cols[ci]});
    }
    graph::EdgeList empty(n_);
    auto merged = std::make_shared<dist::DistCsc>(grid, empty);
    // Cross-shard edges symmetrize like ingestion would; keep the
    // coordinates landing in this rank's block.
    const VertexId rb = merged->row_begin(), re = merged->row_end();
    const VertexId cb = merged->col_begin(), ce = merged->col_end();
    for (const auto& e : boundary) {
      if (e.u == e.v) continue;
      if (e.u >= rb && e.u < re && e.v >= cb && e.v < ce)
        coords.push_back({e.u, e.v});
      if (e.v >= rb && e.v < re && e.u >= cb && e.u < ce)
        coords.push_back({e.v, e.u});
    }
    stream::sort_unique_column_major(coords, n_);
    merged->merge_delta(grid, coords);
    blocks[static_cast<std::size_t>(world.rank())] = std::move(merged);
  });

  auto view = std::make_shared<const kernel::GraphView>(
      n_, nranks, machine_, watermarks_.epoch(), std::move(blocks),
      spmd.sim_seconds);
  kernel_modeled_us_.fetch_add(
      static_cast<std::uint64_t>(spmd.sim_seconds * 1e6),
      std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(kernel_mu_);
  kernel_view_key_ = std::move(key);
  kernel_view_cache_ = view;
  return view;
}

serve::BfsQueryResult Router::bfs_dist(VertexId source) const {
  serve::BfsQueryResult r;
  kernel_queries_.fetch_add(1, std::memory_order_relaxed);
  if (source >= n_) {
    r.status = serve::ServeStatus::kUnknownVertex;
    return r;
  }
  const auto view = compose_view();
  r.epoch = view->epoch();
  r.result = kernel::bfs(*view, source, options_.serve.kernel_options);
  kernel_modeled_us_.fetch_add(
      static_cast<std::uint64_t>(r.result.stats.modeled_seconds * 1e6),
      std::memory_order_relaxed);
  return r;
}

serve::PageRankQueryResult Router::pagerank_topk(std::size_t k) const {
  serve::PageRankQueryResult r;
  kernel_queries_.fetch_add(1, std::memory_order_relaxed);
  const auto view = compose_view();
  r.epoch = view->epoch();
  const auto pr = kernel::pagerank(*view, options_.serve.kernel_options);
  r.top = kernel::top_k_ranks(pr.rank, k);
  r.l1_residual = pr.l1_residual;
  r.converged = pr.converged;
  r.stats = pr.stats;
  kernel_modeled_us_.fetch_add(
      static_cast<std::uint64_t>(r.stats.modeled_seconds * 1e6),
      std::memory_order_relaxed);
  return r;
}

serve::TriangleQueryResult Router::triangle_count() const {
  serve::TriangleQueryResult r;
  kernel_queries_.fetch_add(1, std::memory_order_relaxed);
  const auto view = compose_view();
  r.epoch = view->epoch();
  const auto tc = kernel::triangle_count(*view, options_.serve.kernel_options);
  r.triangles = tc.triangles;
  r.stats = tc.stats;
  kernel_modeled_us_.fetch_add(
      static_cast<std::uint64_t>(r.stats.modeled_seconds * 1e6),
      std::memory_order_relaxed);
  return r;
}

RouterStats Router::stats() const {
  RouterStats s;
  for (const auto& sh : shards_) {
    s.shard_stats.push_back(sh->stats());
    s.writes_accepted += s.shard_stats.back().writes_accepted;
    s.writes_shed += s.shard_stats.back().writes_shed;
  }
  for (const auto& rep : replicas_) {
    s.replica_stats.push_back(rep->stats());
    s.replica_reads += s.replica_stats.back().reads;
    s.replica_read_errors += s.replica_stats.back().read_errors;
  }
  s.ticket_waits = ticket_waits_.load(std::memory_order_relaxed);
  s.invalid_tickets = invalid_tickets_.load(std::memory_order_relaxed);
  s.global_epoch = published_epoch_.load(std::memory_order_relaxed);
  s.reconcile_rounds = reconcile_rounds_.load(std::memory_order_relaxed);
  s.reconcile_skipped = reconcile_skipped_.load(std::memory_order_relaxed);
  s.boundary_raw_total = boundary_.total_raw();
  s.boundary_words_moved = boundary_.total_words_moved();
  s.boundary_per_shard = boundary_.per_shard_raw();
  s.reconcile_modeled_seconds =
      static_cast<double>(
          reconcile_modeled_us_.load(std::memory_order_relaxed)) /
      1e6;
  s.kernel_queries = kernel_queries_.load(std::memory_order_relaxed);
  s.kernel_modeled_seconds =
      static_cast<double>(kernel_modeled_us_.load(std::memory_order_relaxed)) /
      1e6;
  return s;
}

const std::vector<EpochRecord>& Router::history() const {
  LACC_CHECK_MSG(stopped(),
                 "history() is only safe after stop() has joined the "
                 "reconcile thread");
  return history_;
}

std::uint64_t Router::verify_epochs(int verify_ranks) const {
  LACC_CHECK_MSG(stopped() && options_.record_applied,
                 "verify_epochs() needs a stopped router built with "
                 "record_applied");
  const std::vector<graph::Edge>& raw = boundary_.raw_log();
  std::uint64_t verified = 0;
  for (const EpochRecord& rec : history_) {
    // The epoch's prefix: each shard's applied batches through its composed
    // local epoch, plus the boundary edges through the drained seq.  (The
    // drain can run ahead of a composed snapshot — both sides of the
    // equality then include the same extra boundary edges.)
    graph::EdgeList prefix(n_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto& batches = shards_[s]->applied_batches();
      LACC_CHECK(rec.local_epochs[s] <= batches.size());
      for (std::uint64_t b = 0; b < rec.local_epochs[s]; ++b)
        for (const graph::Edge& ed : batches[b].edges) prefix.add(ed.u, ed.v);
    }
    LACC_CHECK(rec.boundary_covered <= raw.size());
    for (std::uint64_t i = 0; i < rec.boundary_covered; ++i)
      prefix.add(raw[i].u, raw[i].v);

    const core::DistRunResult run = core::lacc_dist(
        prefix, verify_ranks, machine_, options_.serve.stream.lacc);
    const std::vector<VertexId> expect = core::normalize_labels(run.cc.parent);
    LACC_CHECK_MSG(expect == rec.labels,
                   "global epoch " << rec.epoch
                                   << " diverges from the lacc_dist replay");
    ++verified;
  }
  return verified;
}

}  // namespace lacc::shard
