// lacc::shard::Router — scale-out serving: N independent serve::Server
// shards behind one write router, a boundary LACC reconciling cross-shard
// merges, and M read-only replicas fanning out global snapshots.
//
//   writers ──insert_edge──▶ owner(min(u,v)) shard ──▶ shard engine thread
//                            (admission + ticket      owned-owned edges
//                             through that shard's    enter the graph;
//                             ingest queue)           cross-shard edges are
//                                                     extracted at commit
//                                                     ─▶ BoundaryStore
//   reconcile thread: watermarks ▷ snapshots ▷ drain ▷ boundary LACC over
//                     the label-pair quotient ▷ compose global labels
//                     ─▶ replicas (publish first) ─▶ watermark vector
//   readers ◀── replica GlobalSnapshot rings (round-robin or pinned)
//
// Partitioning: a hash ShardPartition over vertex ids.  Every shard's
// engine spans the full vertex space but ingests only its owned-owned
// edges, so its canonical-label contract holds over that sub-stream and
// unowned vertices stay singletons.  A cross-shard edge routes to
// owner(min(u, v)) — one shard's queue gives it admission control, a
// ticket, and (when durable) a WAL slot — and becomes a boundary entry on
// both sides in the BoundaryStore.
//
// Reconcile ordering (the correctness spine):
//   1. read every shard's applied-seq watermark w[s],
//   2. then grab every shard's current snapshot (local epoch e[s] covers at
//      least w[s]),
//   3. then drain the boundary store.
// A shard publishes an epoch's boundary edges *before* its snapshot and
// before marking the epoch's tickets applied (ServeOptions::boundary_sink),
// so step 3 necessarily sees every boundary edge of every epoch covered by
// step 1's watermarks: "the global snapshot covers ticket t" implies "t's
// cross-shard edges are folded in".  Publication order completes the
// argument: replicas first, watermark vector last — a reader that observes
// coverage finds a covering snapshot on *every* replica.
//
// Consistency model (docs/SERVING.md): every published global epoch is a
// serializable prefix — its composed labels are bit-identical to
// normalize_labels(lacc_dist(prefix)) where the prefix is the union of each
// shard's applied batches through its composed local epoch plus the drained
// boundary edges.  Read-your-writes survives the router hop via
// ShardTicket (per-shard watermark vector); replica reads are read
// committed at global-epoch granularity.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "shard/boundary.hpp"
#include "shard/global_snapshot.hpp"
#include "shard/quotient.hpp"
#include "shard/replica.hpp"
#include "shard/watermarks.hpp"
#include "sim/machine.hpp"
#include "support/partition.hpp"

namespace lacc::shard {

struct RouterOptions {
  /// Template for every shard's serve::Server.  The router overwrites the
  /// sharding fields (stream.shards, stream.shard, boundary_sink,
  /// shard_tag) and forwards record_applied; everything else — batching,
  /// admission, retention, durability — applies per shard as-is.
  serve::ServeOptions serve;

  int shards = 1;    ///< number of serve::Server shards (>= 1)
  int replicas = 1;  ///< number of read-only replica stores (>= 1)

  /// Global epochs kept pinnable on each replica; older ones retire
  /// (pinned epochs survive — see BasicSnapshotRing).
  std::size_t retain_epochs = 8;

  /// Reconcile cadence: the thread wakes this often, skips the round when
  /// no shard advanced and no boundary edge is pending.
  double reconcile_interval_ms = 2.0;
  /// Max SPMD width of the boundary LACC (actual = largest perfect square
  /// <= min(this, quotient vertices)).
  int reconcile_ranks = 4;

  /// Global snapshots' pair-query cache (log2 slots; 0 disables) and top-k
  /// view size.
  std::uint32_t pair_cache_bits = 12;
  std::size_t top_k = 8;

  /// Keep per-shard applied batches, the raw boundary log, and per-epoch
  /// global labels for post-hoc verification (verify_epochs); costs memory
  /// proportional to the total stream.
  bool record_applied = false;

  /// Publish an independent GlobalSnapshot object to each replica (copies
  /// the label vector) instead of sharing one — readers on different
  /// replicas then never contend on a refcount or pair-cache line.
  bool replicate_by_copy = true;
};

/// A routed write acknowledgement: the ticket survives the router hop.
struct ShardWriteResult {
  serve::ServeStatus status = serve::ServeStatus::kOk;
  ShardTicket ticket;
};

/// Aggregated router statistics (safe from any thread).
struct RouterStats {
  std::uint64_t writes_accepted = 0;  ///< summed over shards
  std::uint64_t writes_shed = 0;
  std::uint64_t replica_reads = 0;  ///< summed over replicas
  std::uint64_t replica_read_errors = 0;
  std::uint64_t ticket_waits = 0;     ///< session reads that blocked
  std::uint64_t invalid_tickets = 0;  ///< session reads with bad marks
  std::uint64_t global_epoch = 0;     ///< latest published global epoch
  std::uint64_t reconcile_rounds = 0;    ///< rounds that published
  std::uint64_t reconcile_skipped = 0;   ///< idle ticks skipped
  std::uint64_t boundary_raw_total = 0;  ///< raw cross-shard edges routed
  std::uint64_t boundary_words_moved = 0;  ///< cumulative quotient words
  double reconcile_modeled_seconds = 0;    ///< summed boundary LACC time
  std::uint64_t kernel_queries = 0;        ///< router-level kernel queries
  double kernel_modeled_seconds = 0;       ///< summed kernel SPMD time
  std::vector<serve::ServeStats> shard_stats;
  std::vector<ReplicaStats> replica_stats;
  std::vector<std::uint64_t> boundary_per_shard;
};

/// Provenance of one published global epoch (post-stop reads; labels only
/// with record_applied).
struct EpochRecord {
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> covered;       ///< per-shard applied seq
  std::vector<std::uint64_t> local_epochs;  ///< per-shard composed epoch
  std::uint64_t boundary_covered = 0;
  ReconcileStats stats;
  std::vector<VertexId> labels;  ///< composed global labels (verify mode)
};

/// Sharded connected-components serving.  Construction starts every shard's
/// engine thread, publishes global epoch 0 (every vertex its own component)
/// to all replicas, and starts the reconcile thread; reads are valid from
/// any thread immediately.
class Router {
 public:
  /// `nranks` is each shard engine's SPMD width (positive perfect square),
  /// exactly as for serve::Server.
  Router(VertexId n, int nranks, const sim::MachineModel& machine,
         RouterOptions options = {});
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  VertexId num_vertices() const { return n_; }
  const RouterOptions& options() const { return options_; }
  const ShardPartition& partition() const { return partition_; }
  int shards() const { return options_.shards; }
  int replicas() const { return options_.replicas; }

  /// Route one edge insert to owner(min(u, v)) (or the common owner).
  /// On acceptance the ticket's mark is that shard's write ticket; merge()
  /// successive tickets to build a session ticket.
  ShardWriteResult insert_edge(VertexId u, VertexId v);

  /// Replica reads at the latest global epoch.  A non-empty ticket blocks
  /// until a published global snapshot covers every mark (read-your-writes
  /// across the router hop).  `replica` picks a store explicitly; -1
  /// round-robins.
  serve::ReadResult component_of(VertexId v, const ShardTicket& ticket = {},
                                 int replica = -1) const;
  serve::ReadResult same_component(VertexId u, VertexId v,
                                   const ShardTicket& ticket = {},
                                   int replica = -1) const;

  /// Pinned reads at an exact global epoch.
  serve::ReadResult component_at(std::uint64_t epoch, VertexId v,
                                 int replica = -1) const;
  serve::ReadResult same_component_at(std::uint64_t epoch, VertexId u,
                                      VertexId v, int replica = -1) const;

  /// Pin a global epoch on one replica (it stays readable there past
  /// retention while the router advances); unpin releases it.
  GlobalSnapshotRing::Lookup pin(std::uint64_t epoch, int replica);
  void unpin(std::uint64_t epoch, int replica);

  /// Latest global snapshot of one replica (never null).
  std::shared_ptr<const GlobalSnapshot> snapshot(int replica = 0) const;

  /// Analytics over the composed global graph: the union of every shard's
  /// latest published snapshot plus all cross-shard edges routed so far.
  /// After flush() this is exactly the full ingested graph.  Requires
  /// ServeOptions::enable_kernel_queries on the serve template; runs on the
  /// caller's thread against a cached composed view (rebuilt only when a
  /// shard epoch advanced or a boundary edge arrived), never blocking
  /// ingest or reconcile.  Results carry the global epoch of composition.
  serve::BfsQueryResult bfs_dist(VertexId source) const;
  serve::PageRankQueryResult pagerank_topk(std::size_t k) const;
  serve::TriangleQueryResult triangle_count() const;

  /// The composed global view the kernel endpoints run against (tests,
  /// drivers).  Throws when kernel queries are disabled.
  std::shared_ptr<const kernel::GraphView> compose_view() const;

  /// Latest global epoch whose coverage is published (replicas may briefly
  /// be ahead — they publish first).
  std::uint64_t global_epoch() const { return watermarks_.epoch(); }

  /// Flush every shard, then block until a published global snapshot
  /// covers everything accepted so far (boundary edges included).
  void flush();

  /// Stop shards (draining all accepted writes), run the final reconcile,
  /// and join the reconcile thread.  Idempotent; the destructor calls it.
  /// Reads keep working after stop.
  void stop();
  bool stopped() const;

  RouterStats stats() const;

  /// Direct shard/replica access (tests, metrics export).
  serve::Server& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const serve::Server& shard(int s) const {
    return *shards_[static_cast<std::size_t>(s)];
  }
  const ReplicaStore& replica(int r) const {
    return *replicas_[static_cast<std::size_t>(r)];
  }
  const BoundaryStore& boundary() const { return boundary_; }

  /// Per-epoch provenance, oldest first (history()[e] is global epoch e);
  /// only safe after stop().
  const std::vector<EpochRecord>& history() const;

  /// Post-stop, record_applied only: replay every recorded global epoch's
  /// prefix through lacc_dist and LACC_CHECK the published labels are
  /// bit-identical to normalize_labels of the replay.  Returns the number
  /// of epochs verified.
  std::uint64_t verify_epochs(int verify_ranks = 4) const;

 private:
  int pick_replica(int replica) const;
  serve::ServeStatus wait_for_ticket(const ShardTicket& ticket) const;
  /// One reconcile round; returns true when it published a global epoch.
  /// Reconcile-thread-only (the stop path runs it after the join).
  bool reconcile_once();
  void publish_global(std::vector<VertexId> labels,
                      std::vector<std::uint64_t> covered,
                      std::vector<std::uint64_t> local_epochs,
                      std::uint64_t boundary_covered,
                      const ReconcileStats& stats);
  void reconcile_main();

  const VertexId n_;
  const RouterOptions options_;
  const ShardPartition partition_;
  const sim::MachineModel machine_;

  std::vector<std::unique_ptr<serve::Server>> shards_;
  BoundaryStore boundary_;
  std::vector<std::unique_ptr<ReplicaStore>> replicas_;
  WatermarkVector watermarks_;

  /// Ticket waits: the watermark publish happens under ticket_mu_ so a
  /// waiter can't miss its notify.
  mutable std::mutex ticket_mu_;
  mutable std::condition_variable ticket_cv_;
  bool reconcile_done_ = false;  ///< final reconcile published (under mu)

  /// Reconcile thread lifecycle.
  std::mutex reconcile_mu_;
  std::condition_variable reconcile_cv_;
  bool stop_requested_ = false;
  std::once_flag stop_once_;
  std::atomic<bool> stopped_{false};

  // Reconcile-thread-only state (plus post-join readers).
  std::uint64_t global_epoch_counter_ = 0;
  std::vector<std::uint64_t> last_w_, last_e_;
  std::vector<EpochRecord> history_;

  /// Kernel-query state: cross-shard edges retained for view composition
  /// (appended by shard engine threads through boundary_sink, only when
  /// kernel queries are enabled) plus a one-entry compose cache keyed by
  /// (per-shard epochs, boundary count) so repeated queries against an
  /// unchanged router share one composed view.
  mutable std::mutex kernel_mu_;
  std::vector<graph::Edge> kernel_boundary_;
  mutable std::vector<std::uint64_t> kernel_view_key_;
  mutable std::shared_ptr<const kernel::GraphView> kernel_view_cache_;

  // Monitoring.
  mutable std::atomic<std::uint64_t> next_replica_{0};
  mutable std::atomic<std::uint64_t> ticket_waits_{0};
  mutable std::atomic<std::uint64_t> invalid_tickets_{0};
  std::atomic<std::uint64_t> reconcile_rounds_{0};
  std::atomic<std::uint64_t> reconcile_skipped_{0};
  std::atomic<std::uint64_t> published_epoch_{0};
  /// Modeled seconds in microsecond ticks (atomic double via integer).
  std::atomic<std::uint64_t> reconcile_modeled_us_{0};
  mutable std::atomic<std::uint64_t> kernel_queries_{0};
  mutable std::atomic<std::uint64_t> kernel_modeled_us_{0};

  std::thread reconcile_thread_;  ///< last member: joined in stop()
};

}  // namespace lacc::shard
