// lacc::shard tickets and the lock-free global watermark vector.
//
// A single-shard serve ticket is one applied-seq watermark.  Across the
// router hop a write lands on exactly one shard, but a *session* can span
// shards, so the ticket generalizes to a vector of per-shard applied-seq
// watermarks plus the reconciliation epoch current when it was issued.  A
// global snapshot covers a ticket when its per-shard covered watermarks
// dominate every mark — which, by the router's publication order (replica
// fan-out first, watermark publish last), implies every replica's current
// snapshot also covers it.
//
// BasicWatermarkVector is the read fast path: one writer (the reconcile
// thread) publishes the covered vector with a release store on the epoch
// word; any number of ticketed readers check coverage with an acquire load
// and no lock.  The structure is templated over a sync policy so the
// deterministic model checker explores it directly
// (tests/sched/sched_shard_test.cpp), including the mutation proving the
// release edge on publish is load-bearing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/sync.hpp"

namespace lacc::shard {

/// Read-your-writes token that survives the router hop.
struct ShardTicket {
  /// (shard, applied-seq watermark) entries, one per shard the session
  /// wrote through; empty = unticketed.
  std::vector<std::pair<int, std::uint64_t>> marks;
  /// Reconciliation epoch current when the ticket was issued (diagnostic;
  /// coverage is decided by the marks alone).
  std::uint64_t epoch = 0;

  bool empty() const { return marks.empty(); }

  /// Fold another ticket into this session ticket (max per shard).
  void merge(const ShardTicket& other) {
    for (const auto& [shard, seq] : other.marks) {
      bool found = false;
      for (auto& [s, have] : marks) {
        if (s == shard) {
          if (seq > have) have = seq;
          found = true;
          break;
        }
      }
      if (!found) marks.emplace_back(shard, seq);
    }
    if (other.epoch > epoch) epoch = other.epoch;
  }
};

/// Per-shard applied-seq watermarks of the latest published global
/// snapshot, plus the boundary-edge watermark.  Single writer, lock-free
/// readers.
///
/// Publication idiom: the covered entries are plain (relaxed) stores,
/// ordered before a release store of the epoch word; covers() acquires the
/// epoch first, so any coverage it reports was really published with (or
/// before) a global snapshot the caller can observe.  Entries are monotone
/// non-decreasing, which is what makes the relaxed entry loads safe: a
/// stale read can only under-report coverage (the caller then falls back to
/// the condition-variable wait), never over-report it.
template <typename SyncPolicy>
class BasicWatermarkVector {
 public:
  explicit BasicWatermarkVector(int shards)
      : covered_(static_cast<std::size_t>(shards)) {
    LACC_CHECK(shards >= 1);
  }

  int shards() const { return static_cast<int>(covered_.size()); }

  /// Reconcile thread only: publish the watermarks of global `epoch`.
  /// Epochs must be strictly increasing; entries must not regress.
  void publish(std::uint64_t epoch, const std::vector<std::uint64_t>& covered,
               std::uint64_t boundary_covered) {
    LACC_CHECK(covered.size() == covered_.size());
    for (std::size_t s = 0; s < covered_.size(); ++s) {
      LACC_DCHECK(covered[s] >=
                  covered_[s].load(std::memory_order_relaxed));
      covered_[s].store(covered[s], std::memory_order_relaxed);
    }
    boundary_covered_.store(boundary_covered, std::memory_order_relaxed);
    LACC_DCHECK(epoch > epoch_.load(std::memory_order_relaxed));
    epoch_.store(epoch, std::memory_order_release);
  }

  /// Latest published global epoch (acquire: a caller that sees epoch e
  /// also sees e's covered entries through the relaxed getters below).
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Covered watermark of one shard (call after epoch()).
  std::uint64_t covered(int shard) const {
    return covered_[static_cast<std::size_t>(shard)].load(
        std::memory_order_relaxed);
  }

  std::uint64_t boundary_covered() const {
    return boundary_covered_.load(std::memory_order_relaxed);
  }

  /// Does some published global snapshot cover every mark of `ticket`?
  ///
  /// The covered loads are relaxed, so a positive answer can race slightly
  /// ahead of the epoch word's release store becoming visible.  That is
  /// safe for the read path: the router publishes to every replica ring
  /// *before* storing these watermarks, and a replica lookup acquires the
  /// ring mutex — an RMW that reads the latest unlock — so any reader that
  /// observed coverage finds a covering snapshot there.  The release edge
  /// on epoch_ is what makes the epoch()-then-covered() read sequence
  /// coherent (see the monotone suite in tests/sched/sched_shard_test.cpp).
  bool covers(const ShardTicket& ticket) const {
    for (const auto& [shard, seq] : ticket.marks) {
      LACC_DCHECK(shard >= 0 &&
                  static_cast<std::size_t>(shard) < covered_.size());
      if (covered_[static_cast<std::size_t>(shard)].load(
              std::memory_order_relaxed) < seq)
        return false;
    }
    return true;
  }

 private:
  template <typename T>
  using Atomic = typename SyncPolicy::template atomic<T>;

  std::vector<Atomic<std::uint64_t>> covered_;
  Atomic<std::uint64_t> boundary_covered_{0};
  Atomic<std::uint64_t> epoch_{0};
};

using WatermarkVector = BasicWatermarkVector<support::StdSyncPolicy>;

}  // namespace lacc::shard
