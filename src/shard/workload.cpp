#include "shard/workload.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace lacc::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// splitmix64: per-thread deterministic request stream.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

void merge_into(ShardWorkloadReport& total, const ShardWorkloadReport& part) {
  total.writes_attempted += part.writes_attempted;
  total.writes_accepted += part.writes_accepted;
  total.writes_shed += part.writes_shed;
  total.reads += part.reads;
  total.read_errors += part.read_errors;
  total.session_reads += part.session_reads;
  total.session_violations += part.session_violations;
  total.pinned_reads += part.pinned_reads;
  total.pinned_misses += part.pinned_misses;
  total.held_pins += part.held_pins;
  total.held_pin_losses += part.held_pin_losses;
}

}  // namespace

ShardWorkloadReport run_shard_workload(Router& router,
                                       const graph::EdgeList& stream,
                                       const ShardWorkloadOptions& options) {
  const int writers = options.writers < 0 ? 0 : options.writers;
  const int readers = options.readers < 0 ? 0 : options.readers;
  const auto start = Clock::now();
  const auto deadline =
      options.duration_s > 0
          ? start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(options.duration_s))
          : Clock::time_point::max();

  std::atomic<bool> done{false};
  std::mutex report_mu;
  ShardWorkloadReport total;

  auto writer_main = [&](int id) {
    ShardWorkloadReport r;
    // Round-robin partition: writer id replays edges id, id+W, id+2W, ...
    // The session ticket accumulates across this writer's accepted writes,
    // so the check demands coverage of the whole session, not just the
    // latest write — the stronger cross-shard guarantee.
    ShardTicket session;
    for (std::size_t i = static_cast<std::size_t>(id);
         i < stream.edges.size(); i += static_cast<std::size_t>(writers)) {
      if (Clock::now() >= deadline) break;
      const graph::Edge e = stream.edges[i];
      ++r.writes_attempted;
      const ShardWriteResult w = router.insert_edge(e.u, e.v);
      if (w.status == serve::ServeStatus::kShed) {
        ++r.writes_shed;
        continue;
      }
      if (w.status != serve::ServeStatus::kOk) {
        ++r.read_errors;
        continue;
      }
      ++r.writes_accepted;
      session.merge(w.ticket);
      if (options.session_every != 0 &&
          r.writes_accepted % options.session_every == 0) {
        // Read-your-writes across the hop: with the ticket, a replica read
        // must observe this session's own edge.
        ++r.session_reads;
        const serve::ReadResult q = router.same_component(e.u, e.v, session);
        if (q.status != serve::ServeStatus::kOk || !q.same)
          ++r.session_violations;
      }
    }
    std::lock_guard<std::mutex> lock(report_mu);
    merge_into(total, r);
  };

  auto reader_main = [&](int id) {
    ShardWorkloadReport r;
    Rng rng{options.seed * 0x2545f4914f6cdd1dull + 0x5678ull + id};
    const VertexId n = router.num_vertices();
    // Each reader sticks to one replica, so per-replica counters reflect a
    // stable reader assignment (and the round-robin path is covered by the
    // writers' session reads).
    const int replica = id % router.replicas();
    while (!done.load(std::memory_order_acquire)) {
      ++r.reads;
      const auto u = static_cast<VertexId>(rng.below(n));
      const auto v = static_cast<VertexId>(rng.below(n));
      if (options.pinned_every != 0 && r.reads % options.pinned_every == 0) {
        const std::uint64_t cur = router.snapshot(replica)->epoch();
        const std::uint64_t pin = rng.below(cur + 3);
        ++r.pinned_reads;
        if (options.hold_every != 0 &&
            r.pinned_reads % options.hold_every == 0 &&
            router.pin(pin, replica) == GlobalSnapshotRing::Lookup::kOk) {
          // Hold the pin across a few latest-reads (time in which the
          // reconcile may evict the epoch from the ring), then demand the
          // epoch is *still* readable.
          for (int k = 0; k < 8; ++k)
            if (router.component_of(u, {}, replica).status !=
                serve::ServeStatus::kOk)
              ++r.read_errors;
          const serve::ReadResult held =
              router.same_component_at(pin, u, v, replica);
          if (held.status != serve::ServeStatus::kOk) ++r.held_pin_losses;
          router.unpin(pin, replica);
          ++r.held_pins;
        } else {
          const serve::ReadResult q =
              router.same_component_at(pin, u, v, replica);
          if (q.status == serve::ServeStatus::kRetiredEpoch ||
              q.status == serve::ServeStatus::kFutureEpoch)
            ++r.pinned_misses;
          else if (q.status != serve::ServeStatus::kOk)
            ++r.read_errors;
        }
      } else if (rng.below(4) == 0) {
        if (router.component_of(u, {}, replica).status !=
            serve::ServeStatus::kOk)
          ++r.read_errors;
      } else {
        if (router.same_component(u, v, {}, replica).status !=
            serve::ServeStatus::kOk)
          ++r.read_errors;
      }
    }
    std::lock_guard<std::mutex> lock(report_mu);
    merge_into(total, r);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(writers + readers));
  for (int i = 0; i < readers; ++i) threads.emplace_back(reader_main, i);
  for (int i = 0; i < writers; ++i) threads.emplace_back(writer_main, i);

  // Writers are the tail of `threads`; join them first, then flush so the
  // readers' last observations cover every accepted write, then release
  // the readers.
  for (int i = 0; i < writers; ++i)
    threads[static_cast<std::size_t>(readers + i)].join();
  if (writers == 0 && options.duration_s > 0)
    std::this_thread::sleep_until(deadline);
  router.flush();
  done.store(true, std::memory_order_release);
  for (int i = 0; i < readers; ++i) threads[static_cast<std::size_t>(i)].join();

  total.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return total;
}

}  // namespace lacc::shard
