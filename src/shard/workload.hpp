// Mixed read/write workload replay against a lacc::shard::Router — the
// shared driver behind examples/lacc_shard_cli and bench/bench_shard.
//
// The shard analogue of serve::run_mixed_workload: writer threads replay a
// round-robin-partitioned edge stream through the router (so writes fan out
// across shards by hash), reader threads hammer the replicas with random
// point/pair/pinned queries.  Session writes re-read their own edge through
// a *replica* with the ShardTicket — the read-your-writes-across-the-hop
// guarantee, verified online.  A fraction of pinned reads additionally
// pin() the epoch on a replica, read it again after more epochs have been
// published, and unpin() — exercising retention-ring pinning under the
// advancing router.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "shard/router.hpp"

namespace lacc::shard {

struct ShardWorkloadOptions {
  int readers = 4;
  int writers = 2;
  /// Wall-clock cap; 0 replays the whole edge stream.  Readers always run
  /// until the writers are done and the router is flushed.
  double duration_s = 0;
  std::uint64_t seed = 1;
  /// Every k-th accepted write does a ticketed read-your-writes check
  /// through a replica (0 disables).
  std::uint32_t session_every = 16;
  /// Every k-th read targets a pinned global epoch instead of latest
  /// (0 disables).
  std::uint32_t pinned_every = 32;
  /// Every k-th pinned read pin()s its epoch, re-reads it after the router
  /// has advanced, then unpin()s — the retention-pinning exercise
  /// (0 disables).
  std::uint32_t hold_every = 4;
};

struct ShardWorkloadReport {
  std::uint64_t writes_attempted = 0;
  std::uint64_t writes_accepted = 0;
  std::uint64_t writes_shed = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_errors = 0;  ///< unexpected statuses (not pinned misses)
  std::uint64_t session_reads = 0;
  /// Ticketed replica reads that did NOT observe the session's own write —
  /// must be zero; anything else is a consistency bug.
  std::uint64_t session_violations = 0;
  std::uint64_t pinned_reads = 0;
  std::uint64_t pinned_misses = 0;  ///< kRetiredEpoch / kFutureEpoch answers
  std::uint64_t held_pins = 0;      ///< pin/re-read/unpin cycles completed
  /// Pinned epochs that went unreadable while held — must be zero (the
  /// retention-ring pinning guarantee).
  std::uint64_t held_pin_losses = 0;
  double wall_seconds = 0;
};

/// Run the workload to completion (all threads joined before returning).
ShardWorkloadReport run_shard_workload(Router& router,
                                       const graph::EdgeList& stream,
                                       const ShardWorkloadOptions& options);

}  // namespace lacc::shard
