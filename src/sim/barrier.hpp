// Reusable generation barrier for the SPMD runtime (extracted from
// sim/comm.hpp so the model checker can instantiate it standalone).
//
// Templated over a sync policy (support/sync.hpp): Barrier below is the
// production alias over the std primitives; the deterministic model checker
// (src/sched/, docs/CHECKING.md) instantiates BasicBarrier with
// sched::SchedSyncPolicy and explores every arrival/release/poison
// schedule, including the acquire/release publication chain that the
// collectives rely on to see each other's posted slots
// (tests/sched/sched_barrier_test.cpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "sim/check.hpp"
#include "support/sync.hpp"

namespace lacc::sim {

/// Thrown inside surviving ranks when a sibling rank failed; run_spmd
/// rethrows the original error to the caller.
struct Poisoned : std::exception {
  const char* what() const noexcept override { return "sibling rank failed"; }
};

/// Reusable generation barrier with a shared poison flag so that a failing
/// rank releases (rather than deadlocks) its siblings.
///
/// Two-phase wait: arrivals spin on the generation counter with
/// sched_yield for a bounded number of rounds before falling back to a
/// condition-variable sleep.  Every collective crosses this barrier twice,
/// and with P virtual ranks oversubscribing few cores the futex
/// sleep/wake chain of a pure mutex+cv barrier costs milliseconds per
/// superstep — yielding hands the core straight to the next runnable rank
/// instead.  The bounded spin keeps a long-running sibling from being
/// starved by a yield storm.  (The spin bound comes from the sync policy:
/// 256 in production, 1 under the model checker, where spinning is pure
/// schedule-tree width.)
template <typename SyncPolicy>
class BasicBarrier {
 public:
  template <typename T>
  using Atomic = typename SyncPolicy::template atomic<T>;

  BasicBarrier(int n, std::shared_ptr<Atomic<bool>> poison)
      : n_(n), poison_(std::move(poison)) {}

  void arrive_and_wait() {
    if (poison_->load(std::memory_order_relaxed)) throw Poisoned{};
    throw_if_retired();
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    // The RMW chain on waiting_ orders every arrival's slot writes before
    // the releaser's generation bump, so readers of the posted slots
    // synchronize through the acquire load below.
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      waiting_.store(0, std::memory_order_relaxed);
      {
        // The lock orders the bump against the sleep path's re-check:
        // without it a sibling could test the generation, then block after
        // the notify and sleep forever (previously masked by a 50 ms poll).
        std::lock_guard<typename SyncPolicy::mutex> lock(mutex_);
        generation_.store(gen + 1, std::memory_order_release);
      }
      cv_.notify_all();
      return;
    }
    for (int spin = 0; spin < SyncPolicy::spin_bound; ++spin) {
      if (generation_.load(std::memory_order_acquire) != gen) return;
      if (poison_->load(std::memory_order_relaxed)) throw Poisoned{};
      throw_if_retired();
      SyncPolicy::yield();
    }
    std::unique_lock<typename SyncPolicy::mutex> lock(mutex_);
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (poison_->load(std::memory_order_relaxed)) throw Poisoned{};
      throw_if_retired();
      cv_.wait(lock);
    }
  }

  void poison() {
    {
      // Same lock-ordered store as the release path, for the same reason.
      std::lock_guard<typename SyncPolicy::mutex> lock(mutex_);
      poison_->store(true, std::memory_order_relaxed);
    }
    cv_.notify_all();
  }

  /// A member rank finished its SPMD body without failing.  Any sibling
  /// that arrives (or is waiting) at this barrier afterwards can never be
  /// released — the conformance checker turns that guaranteed deadlock into
  /// an error.  Only called when checking is enabled.
  void note_retired() {
    {
      std::lock_guard<typename SyncPolicy::mutex> lock(mutex_);
      retired_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
  }

 private:
  void throw_if_retired() const {
    const int gone = retired_.load(std::memory_order_relaxed);
    if (gone > 0)
      throw check::ConformanceError(
          "SPMD conformance violation: collective can never complete — " +
          std::to_string(gone) +
          " member rank(s) already finished their SPMD body (a rank skipped "
          "a collective or returned early)");
  }

  mutable typename SyncPolicy::mutex mutex_;
  typename SyncPolicy::condition_variable cv_;
  const int n_;
  Atomic<int> waiting_{0};
  Atomic<std::uint64_t> generation_{0};
  Atomic<int> retired_{0};
  std::shared_ptr<Atomic<bool>> poison_;
};

using Barrier = BasicBarrier<support::StdSyncPolicy>;

}  // namespace lacc::sim
