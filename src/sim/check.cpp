#include "sim/check.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

namespace lacc::check {

const char* op_name(CollOp op) {
  switch (op) {
    case CollOp::kBarrier: return "barrier";
    case CollOp::kBcast: return "bcast";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kAllgatherv: return "allgatherv";
    case CollOp::kAlltoallv: return "alltoallv";
    case CollOp::kReduceScatter: return "reduce_scatter";
    case CollOp::kSendrecv: return "sendrecv";
    case CollOp::kSplit: return "split";
  }
  return "?";
}

namespace {

/// Fields that must agree across every rank of a collective.  Root only
/// binds for bcast (sendrecv dest and split color are per-rank by design);
/// count only binds for ops whose buffers must be congruent.
struct UniformKey {
  CollOp op;
  std::uint64_t seq;
  std::size_t elem_size;
  std::int64_t root;
  std::size_t count;

  friend bool operator<(const UniformKey& a, const UniformKey& b) {
    return std::tie(a.op, a.seq, a.elem_size, a.root, a.count) <
           std::tie(b.op, b.seq, b.elem_size, b.root, b.count);
  }
  friend bool operator==(const UniformKey& a, const UniformKey& b) {
    return std::tie(a.op, a.seq, a.elem_size, a.root, a.count) ==
           std::tie(b.op, b.seq, b.elem_size, b.root, b.count);
  }
};

UniformKey key_of(const CollRecord& r) {
  const bool root_bound = r.op == CollOp::kBcast;
  const bool count_bound =
      r.op == CollOp::kAllreduce || r.op == CollOp::kReduceScatter;
  return {r.op, r.seq, r.elem_size, root_bound ? r.root : -1,
          count_bound ? r.count : 0};
}

void describe(std::ostream& os, const CollRecord& r) {
  os << op_name(r.op) << " #" << r.seq;
  if (r.op == CollOp::kBcast) os << " root=" << r.root;
  if (r.op == CollOp::kSendrecv) os << " dest=" << r.root << " src=" << r.peer;
  if (r.op == CollOp::kSplit) os << " color=" << r.root << " key=" << r.peer;
  if (r.elem_size != 0)
    os << " " << r.count << "x" << r.elem_size << "B";
  os << "  at " << r.file << ":" << r.line;
}

}  // namespace

void CommLedger::fail(const std::string& headline) const {
  // The report is built purely from the ledger, so every rank that detects
  // the mismatch produces the same text and the surfaced error message is
  // deterministic regardless of which rank's exception wins.
  const std::size_t p = records_.size();
  std::map<UniformKey, std::size_t> votes;
  for (const auto& r : records_) ++votes[key_of(r)];
  const auto majority = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });

  std::ostringstream os;
  os << "SPMD conformance violation on comm \"" << name_ << "\": " << headline
     << "\n  per-rank collective signatures:";
  for (std::size_t r = 0; r < p; ++r) {
    os << "\n    rank " << r << ": ";
    describe(os, records_[r]);
    if (votes.size() > 1 && !(key_of(records_[r]) == majority->first))
      os << "   <-- diverges";
  }
  throw ConformanceError(os.str());
}

void CommLedger::verify() const {
  const std::size_t p = records_.size();
  if (p <= 1) return;
  const CollRecord& first = records_[0];
  const UniformKey k0 = key_of(first);
  for (std::size_t r = 1; r < p; ++r) {
    const CollRecord& rec = records_[r];
    if (rec.op != first.op)
      fail("ranks issued different collectives at the same sync point "
           "(skipped or reordered collective)");
    if (rec.seq != first.seq)
      fail("collective sequence numbers diverged (a rank skipped or "
           "double-issued a collective)");
    if (rec.elem_size != first.elem_size)
      fail("element sizes differ (ranks passed different element types)");
    if (!(key_of(rec) == k0)) {
      if (first.op == CollOp::kBcast)
        fail("broadcast roots differ across ranks");
      fail("buffer lengths differ where the op requires congruent buffers");
    }
  }

  if (level() == Level::kFull && first.op == CollOp::kSendrecv) {
    // dest must be a permutation of the group and src its inverse: rank r
    // reads from src[r], which is only safe if dest[src[r]] == r.
    std::vector<std::size_t> senders_to(p, 0);
    for (const auto& rec : records_) {
      if (rec.root < 0 || rec.root >= static_cast<std::int64_t>(p) ||
          rec.peer < 0 || rec.peer >= static_cast<std::int64_t>(p))
        fail("sendrecv dest/src out of communicator range");
      ++senders_to[static_cast<std::size_t>(rec.root)];
    }
    for (std::size_t r = 0; r < p; ++r)
      if (senders_to[r] != 1)
        fail("sendrecv dests do not form a permutation (rank " +
             std::to_string(r) + " has " + std::to_string(senders_to[r]) +
             " senders)");
    for (std::size_t r = 0; r < p; ++r) {
      const auto src = static_cast<std::size_t>(records_[r].peer);
      if (records_[src].root != static_cast<std::int64_t>(r))
        fail("sendrecv src is not conjugate to dest (rank " +
             std::to_string(r) + " expects rank " + std::to_string(src) +
             ", which sends to rank " + std::to_string(records_[src].root) +
             ")");
    }
  }
}

}  // namespace lacc::check
