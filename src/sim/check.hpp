// Collective-matching ledger for the SPMD conformance checker.
//
// Every communicator (CommContext) owns one CommLedger.  Each collective
// call writes a per-rank signature — op kind, per-communicator sequence
// number, root, element size, posted count, call site — into its slot
// *before* arriving at the collective's entry barrier, and every rank
// verifies the whole ledger immediately *after* that barrier, before any
// peer data is read.  Slot writes and ledger reads synchronize through the
// barrier exactly like the data slots themselves, so the ledger needs no
// locking of its own.
//
// A mismatch (different op, diverging root, inconsistent element size,
// a rank that skipped or reordered a collective) is reported as a
// ConformanceError carrying a cross-rank diff table instead of the
// deadlock or buffer corruption the raw runtime would produce.  The
// checker charges no modeled time: verdicts cannot perturb the cost model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/checking.hpp"

namespace lacc::check {

enum class CollOp : std::uint8_t {
  kBarrier,
  kBcast,
  kAllreduce,
  kAllgatherv,
  kAlltoallv,
  kReduceScatter,
  kSendrecv,
  kSplit,
};

const char* op_name(CollOp op);

/// One rank's signature of one collective call.
struct CollRecord {
  CollOp op = CollOp::kBarrier;
  std::uint64_t seq = 0;       ///< per-communicator call number (ledger-filled)
  std::int64_t root = -1;      ///< bcast root / sendrecv dest / split color
  std::int64_t peer = -1;      ///< sendrecv src / split key
  std::size_t elem_size = 0;   ///< sizeof(element), 0 for barrier/split
  std::size_t count = 0;       ///< elements posted by this rank
  const std::size_t* peer_counts = nullptr;  ///< alltoallv per-dest counts
  const char* file = "";       ///< caller source file
  std::uint32_t line = 0;      ///< caller source line
};

/// Per-communicator collective ledger; one slot per member rank.
class CommLedger {
 public:
  CommLedger(int size, std::string comm_name)
      : name_(std::move(comm_name)),
        records_(static_cast<std::size_t>(size)),
        seqs_(static_cast<std::size_t>(size), 0) {}

  const std::string& comm_name() const { return name_; }

  /// Record `rec` as rank `rank`'s signature for its next collective.
  /// Called before the entry barrier; returns the sequence number assigned.
  std::uint64_t record(int rank, CollRecord rec) {
    const auto r = static_cast<std::size_t>(rank);
    rec.seq = seqs_[r]++;
    records_[r] = rec;
    return rec.seq;
  }

  /// Verify all slots agree; called by every rank right after the entry
  /// barrier, before any peer data is read.  Throws ConformanceError with a
  /// cross-rank diff on mismatch.  At Level::kFull, sendrecv additionally
  /// verifies that the dest mapping is a permutation conjugate to src.
  void verify() const;

  /// Read-only view for report building / tests.
  const std::vector<CollRecord>& records() const { return records_; }

 private:
  [[noreturn]] void fail(const std::string& headline) const;

  std::string name_;
  std::vector<CollRecord> records_;
  std::vector<std::uint64_t> seqs_;
};

}  // namespace lacc::check
