#include "sim/comm.hpp"

#include <algorithm>
#include <tuple>

namespace lacc::sim {

void Comm::charge_alltoall(double t0, AllToAllAlgo algo,
                           std::uint64_t bytes_sent, std::uint64_t bytes_recv) {
  const double alpha = machine().alpha_s;
  const double beta = machine().beta_s_per_byte;
  const auto volume = static_cast<double>(std::max(bytes_sent, bytes_recv));
  double seconds = 0;
  std::uint64_t msgs = 0;

  switch (algo) {
    case AllToAllAlgo::kPairwise: {
      // Pairwise exchange: p-1 rounds, each a latency plus this rank's share.
      msgs = static_cast<std::uint64_t>(size() > 1 ? size() - 1 : 0);
      seconds = alpha * static_cast<double>(msgs) + beta * volume;
      break;
    }
    case AllToAllAlgo::kHypercube: {
      // Sundar et al.: log(p) rounds; data is forwarded, so total traffic per
      // rank inflates by ~log(p)/2 (never below the direct volume).
      const double steps = log2_ceil(size());
      msgs = static_cast<std::uint64_t>(steps);
      seconds = alpha * steps + beta * volume * std::max(1.0, steps / 2.0);
      break;
    }
    case AllToAllAlgo::kSparseHypercube: {
      // Only ranks that actually hold data participate in the exchange.
      int active = 0;
      for (int r = 0; r < size(); ++r)
        if (ctx_->slots[r].aux > 0) ++active;  // aux carries bytes_sent
      if (bytes_recv > 0 || bytes_sent > 0) active = std::max(active, 1);
      const double steps = active > 1 ? log2_ceil(active) : (active == 1 ? 1.0 : 0.0);
      msgs = static_cast<std::uint64_t>(steps);
      seconds = alpha * steps + beta * volume * std::max(1.0, steps / 2.0);
      break;
    }
  }
  state().sim_time = t0;  // charge_comm advances the clock from here
  state().charge_comm(msgs, bytes_sent, seconds);
}

Comm Comm::split(int color, int key, std::source_location loc) {
  LACC_CHECK(color >= 0);
  TraceSpan span(state(), "coll:split");
  SyncWindow window(ctx_.get());
  // Round 1: publish (color, key) via aux.
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(color)) << 32) |
      static_cast<std::uint32_t>(key);
  post(nullptr, 0, nullptr, nullptr, packed,
       make_record(check::CollOp::kSplit, loc, 0, color, key));

  struct Member {
    int key;
    int rank;
  };
  std::vector<Member> group;
  for (int r = 0; r < size(); ++r) {
    const std::uint64_t other = ctx_->slots[r].aux;
    const int other_color = static_cast<int>(other >> 32);
    if (other_color == color)
      group.push_back({static_cast<int>(static_cast<std::uint32_t>(other)), r});
  }
  std::sort(group.begin(), group.end(), [](const Member& a, const Member& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });

  int my_new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i)
    if (group[i].rank == rank_) my_new_rank = static_cast<int>(i);
  LACC_CHECK(my_new_rank >= 0);

  const bool leader = group.front().rank == rank_;
  if (leader) {
    std::vector<RankState*> members;
    members.reserve(group.size());
    for (const auto& m : group) members.push_back(ctx_->states[m.rank]);
    // Deterministic child name: parent name + this split's per-communicator
    // sequence number + color.  Every member computes the same string, and
    // no global counter is involved, so ledger reports stay reproducible
    // even when sibling groups split concurrently.
    const std::uint64_t seq = ctx_->ledger.records()[static_cast<std::size_t>(rank_)].seq;
    std::string name = ctx_->ledger.comm_name() + "/split" +
                       std::to_string(seq) + ".c" + std::to_string(color);
    auto child = std::make_shared<CommContext>(
        std::move(members), ctx_->poison_flag, std::move(name));
    std::lock_guard<std::mutex> lock(ctx_->publish_mutex);
    ctx_->published_children[color] = std::move(child);
  }
  ctx_->barrier.arrive_and_wait();

  std::shared_ptr<CommContext> child;
  {
    std::lock_guard<std::mutex> lock(ctx_->publish_mutex);
    child = ctx_->published_children.at(color);
  }
  ctx_->barrier.arrive_and_wait();

  if (leader) {
    std::lock_guard<std::mutex> lock(ctx_->publish_mutex);
    ctx_->published_children.erase(color);
  }
  finish();
  // Register this rank's membership (own-thread write to own RankState) so
  // run_spmd can flag the child's barrier if this rank retires early.
  state().memberships.push_back(child);
  return Comm(std::move(child), my_new_rank);
}

}  // namespace lacc::sim
