// SPMD communicator over virtual ranks (threads) with MPI-style collectives.
//
// This is the repository's stand-in for MPI on a Cray (see DESIGN.md):
// P virtual ranks execute the same SPMD code on P threads; collectives are
// the only cross-rank channel.  Every collective
//   (1) posts the caller's buffer into a per-rank slot,
//   (2) barriers,
//   (3) lets every rank read what it needs and charge modeled cost,
//   (4) barriers again so source buffers can be reused.
// Modeled time is advanced per rank and max-synchronized at every
// collective (valid because the algorithms built on top are bulk
// synchronous), so the simulated clock is deterministic regardless of
// thread scheduling.
//
// Conformance checking (docs/CHECKING.md): with LACC_CHECK >= 1 every
// collective also posts a call-site signature into the communicator's
// ledger and verifies, right after the entry barrier and before any peer
// data is read, that all ranks issued the same op in the same order with
// consistent roots and congruent buffers — failing fast with a cross-rank
// diff instead of deadlocking or corrupting buffers.  The checker charges
// no modeled time, so verdicts cannot perturb the cost model.
//
// Collective cost formulas follow the standard MPICH models cited in
// Section V-A of the paper; all-to-all supports both the pairwise-exchange
// algorithm (alpha*(p-1) latency) and the hypercube algorithm of Sundar et
// al. (alpha*log p), which the paper swaps in to fix scaling beyond 1024
// ranks.
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <source_location>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/config.hpp"
#include "sim/barrier.hpp"
#include "sim/check.hpp"
#include "sim/machine.hpp"
#include "sim/stats.hpp"
#include "support/checking.hpp"
#include "support/error.hpp"
#include "support/partition.hpp"
#include "support/timer.hpp"

namespace lacc::sim {

class CommContext;

/// Algorithm used by Comm::alltoallv (paper Section V-B).
enum class AllToAllAlgo {
  kPairwise,        ///< classic pairwise exchange: alpha*(p-1)
  kHypercube,       ///< Sundar et al. hypercube: alpha*log(p)
  kSparseHypercube  ///< hypercube restricted to ranks holding data
};

/// Per-rank mutable state: the modeled clock and the statistics sink.
///
/// Thread-ownership contract (audited for TSan, see docs/CHECKING.md):
/// every field is written exclusively by the owning rank's thread while the
/// run is live; run_spmd reads them only after joining all rank threads, so
/// no field needs atomics.  Cross-rank visibility of posted slot data flows
/// through the Barrier's acquire/release chain, never through RankState.
struct RankState {
  const MachineModel* machine = nullptr;
  /// Shared run-epoch stopwatch (owned by run_spmd) so span wall intervals
  /// from all ranks live on one axis; null outside a run.
  const Timer* run_clock = nullptr;
  double sim_time = 0;
  RankStats stats;
  /// Communicators this rank belongs to, registered by the owning thread
  /// only; used to flag ranks that retire while siblings still wait.
  std::vector<std::shared_ptr<CommContext>> memberships;

  double wall_now() const { return run_clock ? run_clock->seconds() : 0.0; }

  void charge_comm(std::uint64_t msgs, std::uint64_t bytes, double seconds) {
    sim_time += seconds;
    auto apply = [&](OpCounters& c) {
      c.messages += msgs;
      c.bytes += bytes;
      c.comm_seconds += seconds;
    };
    apply(stats.total);
    if (OpCounters* span = stats.spans.current()) apply(*span);
  }

  void charge_compute(double elements) {
    const double seconds = elements / machine->work_rate;
    sim_time += seconds;
    stats.total.compute_seconds += seconds;
    if (OpCounters* span = stats.spans.current())
      span->compute_seconds += seconds;
  }

  void add_counter(const std::string& name, std::uint64_t delta) {
    stats.counters[name] += delta;
  }
};

/// Fine-grained span for collectives and kernels, recorded only when
/// tracing is on (LACC_TRACE / obs::set_trace_enabled).  Charges no modeled
/// time of its own and merely subdivides the enclosing Region's total, so
/// the cost model and per-phase aggregates are identical either way.
class TraceSpan {
 public:
  TraceSpan(RankState& state, const char* name, std::int64_t tag = -1)
      : state_(state), on_(obs::trace_enabled()) {
    if (on_)
      id_ = state_.stats.spans.open(name, state_.sim_time, state_.wall_now(),
                                    tag);
  }
  ~TraceSpan() {
    if (on_) state_.stats.spans.close(id_, state_.sim_time, state_.wall_now());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  RankState& state_;
  bool on_;
  std::uint32_t id_ = 0;
};

/// Shared state of one communicator group.  Members index it by their group
/// rank; RankState pointers alias the states owned by the world runtime.
class CommContext {
 public:
  CommContext(std::vector<RankState*> members,
              std::shared_ptr<std::atomic<bool>> poison, std::string name)
      : size(static_cast<int>(members.size())),
        states(std::move(members)),
        slots(states.size()),
        barrier(size, poison),
        poison_flag(std::move(poison)),
        ledger(size, std::move(name)) {}

  struct Slot {
    const void* data = nullptr;
    std::size_t count = 0;                ///< elements posted
    const std::size_t* counts = nullptr;  ///< per-destination counts
    const std::size_t* offsets = nullptr; ///< per-destination element offsets
    std::uint64_t aux = 0;
    double posted_time = 0;               ///< poster's sim clock at post
  };

  const int size;
  std::vector<RankState*> states;
  std::vector<Slot> slots;
  Barrier barrier;
  std::shared_ptr<std::atomic<bool>> poison_flag;
  check::CommLedger ledger;
  /// Ranks currently inside this communicator's exchange window (between a
  /// collective's entry barrier and its exit): while nonzero, posted slot
  /// buffers may be read by any member, so a failing rank must not unwind
  /// (and free its buffers) until the window drains.  See SyncWindow.
  std::atomic<int> window{0};

  std::mutex publish_mutex;
  std::map<int, std::shared_ptr<CommContext>> published_children;
};

/// RAII occupancy of a communicator's exchange window, held by each rank
/// for the full duration of a collective call.
///
/// On the normal path this is bookkeeping only.  When an exception unwinds
/// a collective (a conformance verdict, an invariant check between the two
/// barriers, or an injected failure), the destructor first poisons the
/// barrier so every sibling is released, then blocks until all siblings
/// have left the window — i.e. until nobody can still be copying out of
/// this rank's posted buffers — before letting the unwind continue and
/// destroy them.  This is what makes Barrier poisoning exception-safe:
/// peers never observe dangling CommContext::Slot pointers.
class SyncWindow {
 public:
  explicit SyncWindow(CommContext* ctx)
      : ctx_(ctx), uncaught_(std::uncaught_exceptions()) {
    ctx_->window.fetch_add(1, std::memory_order_acq_rel);
  }

  ~SyncWindow() {
    const bool dying = std::uncaught_exceptions() > uncaught_;
    if (dying) ctx_->barrier.poison();
    ctx_->window.fetch_sub(1, std::memory_order_acq_rel);
    if (dying) {
      // Siblings mid-copy finish their reads, hit the next barrier, observe
      // the poison, and leave the window while unwinding; siblings parked
      // at a barrier are woken by the poison directly.  Each departure is
      // finite, so this drain terminates.
      while (ctx_->window.load(std::memory_order_acquire) != 0)
        std::this_thread::yield();
    }
  }

  SyncWindow(const SyncWindow&) = delete;
  SyncWindow& operator=(const SyncWindow&) = delete;

 private:
  CommContext* ctx_;
  int uncaught_;
};

/// A rank's handle on a communicator.  Cheap to copy.
class Comm {
 public:
  Comm(std::shared_ptr<CommContext> ctx, int rank)
      : ctx_(std::move(ctx)), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return ctx_->size; }
  RankState& state() { return *ctx_->states[rank_]; }
  const MachineModel& machine() const { return *ctx_->states[rank_]->machine; }

  /// Charge `elements` of modeled local work to this rank.
  void charge_compute(double elements) { state().charge_compute(elements); }

  /// Record a custom instrumentation counter (e.g. extract request skew).
  void add_counter(const std::string& name, std::uint64_t delta) {
    state().add_counter(name, delta);
  }

  /// Barrier; synchronizes the modeled clock across the group.
  void barrier(std::source_location loc = std::source_location::current()) {
    TraceSpan span(state(), "coll:barrier");
    SyncWindow window(ctx_.get());
    post(nullptr, 0, nullptr, nullptr, 0,
         make_record(check::CollOp::kBarrier, loc, 0));
    const double t0 = group_start_time();
    state().sim_time = t0;
    state().charge_comm(log2_ceil(size()), 0, machine().alpha_s * log2_ceil(size()));
    finish();
  }

  /// Broadcast `data` from `root` to every rank (binomial-tree model).
  template <typename T>
  void bcast(std::vector<T>& data, int root,
             std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    LACC_CHECK(root >= 0 && root < size());
    TraceSpan span(state(), "coll:bcast");
    SyncWindow window(ctx_.get());
    std::size_t n = data.size();
    if (rank_ == root)
      post(data.data(), n, nullptr, nullptr, n,
           make_record(check::CollOp::kBcast, loc, sizeof(T), root));
    else
      post(nullptr, 0, nullptr, nullptr, 0,
           make_record(check::CollOp::kBcast, loc, sizeof(T), root));
    const double t0 = group_start_time();
    const auto& src = ctx_->slots[root];
    if (rank_ != root) {
      data.resize(src.aux);
      // Zero-length broadcasts carry null buffers; memcpy's nonnull
      // contract forbids them even with size 0.
      if (src.aux != 0) std::memcpy(data.data(), src.data, src.aux * sizeof(T));
    }
    const std::uint64_t bytes = src.aux * sizeof(T);
    state().sim_time = t0;
    state().charge_comm(log2_ceil(size()), bytes,
                        machine().alpha_s * log2_ceil(size()) +
                            machine().beta_s_per_byte * static_cast<double>(bytes));
    finish();
  }

  /// All-reduce of one scalar with a binary op (recursive-doubling model).
  template <typename T, typename Op>
  T allreduce(T value, Op op,
              std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    TraceSpan span(state(), "coll:allreduce");
    SyncWindow window(ctx_.get());
    post(&value, 1, nullptr, nullptr, 0,
         make_record(check::CollOp::kAllreduce, loc, sizeof(T)));
    const double t0 = group_start_time();
    T result = *static_cast<const T*>(ctx_->slots[0].data);
    for (int r = 1; r < size(); ++r)
      result = op(result, *static_cast<const T*>(ctx_->slots[r].data));
    const double steps = log2_ceil(size());
    state().sim_time = t0;
    state().charge_comm(static_cast<std::uint64_t>(steps), sizeof(T),
                        (machine().alpha_s + machine().beta_s_per_byte * sizeof(T)) * steps);
    finish();
    return result;
  }

  /// Gather variable-size contributions from all ranks, in rank order.
  /// If `counts_out` is non-null it receives each rank's contribution size.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& mine,
                            std::vector<std::size_t>* counts_out = nullptr,
                            std::source_location loc = std::source_location::current()) {
    std::vector<T> out;
    allgatherv_into(mine, out, counts_out, loc);
    return out;
  }

  /// allgatherv receiving into a caller-owned buffer (resized to fit) so a
  /// recycled workspace can absorb the result without a fresh allocation.
  /// `out` must not alias `mine`.
  template <typename T>
  void allgatherv_into(const std::vector<T>& mine, std::vector<T>& out,
                       std::vector<std::size_t>* counts_out = nullptr,
                       std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    require_distinct(&mine, &out, "allgatherv_into", loc);
    TraceSpan span(state(), "coll:allgatherv");
    SyncWindow window(ctx_.get());
    post(mine.data(), mine.size(), nullptr, nullptr, 0,
         make_record(check::CollOp::kAllgatherv, loc, sizeof(T)));
    const double t0 = group_start_time();
    std::size_t total = 0;
    for (int r = 0; r < size(); ++r) total += ctx_->slots[r].count;
    out.resize(total);
    check_recv_overlap(out.data(), total * sizeof(T), sizeof(T),
                       "allgatherv_into", loc);
    if (counts_out) counts_out->assign(static_cast<std::size_t>(size()), 0);
    std::size_t at = 0;
    for (int r = 0; r < size(); ++r) {
      const auto& slot = ctx_->slots[r];
      if (slot.count > 0)
        std::memcpy(out.data() + at, slot.data, slot.count * sizeof(T));
      if (counts_out) (*counts_out)[static_cast<std::size_t>(r)] = slot.count;
      at += slot.count;
    }
    const std::uint64_t bytes = (total - mine.size()) * sizeof(T);
    state().sim_time = t0;
    state().charge_comm(log2_ceil(size()), bytes,
                        machine().alpha_s * log2_ceil(size()) +
                            machine().beta_s_per_byte * static_cast<double>(bytes));
    charge_compute(static_cast<double>(total));
    finish();
  }

  /// Personalized all-to-all: `sendcounts[d]` consecutive elements of `send`
  /// go to destination d.  Returns received elements grouped by source rank;
  /// `recvcounts_out` (optional) receives the per-source counts.
  template <typename T>
  std::vector<T> alltoallv(const std::vector<T>& send,
                           const std::vector<std::size_t>& sendcounts,
                           AllToAllAlgo algo = AllToAllAlgo::kPairwise,
                           std::vector<std::size_t>* recvcounts_out = nullptr,
                           std::source_location loc = std::source_location::current()) {
    std::vector<T> out;
    alltoallv_into(send, sendcounts, out, algo, recvcounts_out, loc);
    return out;
  }

  /// alltoallv receiving into a caller-owned buffer (resized to fit) so a
  /// recycled workspace can absorb the result without a fresh allocation.
  /// `out` must not alias `send`.
  template <typename T>
  void alltoallv_into(const std::vector<T>& send,
                      const std::vector<std::size_t>& sendcounts,
                      std::vector<T>& out,
                      AllToAllAlgo algo = AllToAllAlgo::kPairwise,
                      std::vector<std::size_t>* recvcounts_out = nullptr,
                      std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    require_distinct(&send, &out, "alltoallv_into", loc);
    LACC_CHECK(sendcounts.size() == static_cast<std::size_t>(size()));
    std::vector<std::size_t> offsets(sendcounts.size() + 1, 0);
    for (std::size_t d = 0; d < sendcounts.size(); ++d)
      offsets[d + 1] = offsets[d] + sendcounts[d];
    LACC_CHECK_MSG(offsets.back() == send.size(),
                   "alltoallv send counts (" << offsets.back()
                       << ") must cover the send buffer (" << send.size() << ")");
    std::uint64_t bytes_sent = 0;
    for (int d = 0; d < size(); ++d)
      if (d != rank_) bytes_sent += sendcounts[static_cast<std::size_t>(d)] * sizeof(T);
    TraceSpan span(state(), "coll:alltoallv");
    SyncWindow window(ctx_.get());
    post(send.data(), send.size(), sendcounts.data(), offsets.data(), bytes_sent,
         make_record(check::CollOp::kAlltoallv, loc, sizeof(T), -1, -1,
                     sendcounts.data()));
    check::maybe_fail("alltoallv_into.window", rank_);

    const double t0 = group_start_time();
    if (recvcounts_out) recvcounts_out->assign(static_cast<std::size_t>(size()), 0);
    std::size_t recv_total = 0;
    for (int s = 0; s < size(); ++s)
      recv_total += ctx_->slots[s].counts[static_cast<std::size_t>(rank_)];
    out.resize(recv_total);
    check_recv_overlap(out.data(), recv_total * sizeof(T), sizeof(T),
                       "alltoallv_into", loc);
    std::size_t at = 0;
    std::uint64_t bytes_recv = 0;
    for (int s = 0; s < size(); ++s) {
      const auto& slot = ctx_->slots[s];
      const std::size_t cnt = slot.counts[static_cast<std::size_t>(rank_)];
      if (cnt > 0) {
        std::memcpy(out.data() + at,
                    static_cast<const T*>(slot.data) +
                        slot.offsets[static_cast<std::size_t>(rank_)],
                    cnt * sizeof(T));
        at += cnt;
        if (s != rank_) bytes_recv += cnt * sizeof(T);
      }
      if (recvcounts_out) (*recvcounts_out)[static_cast<std::size_t>(s)] = cnt;
    }
    charge_alltoall(t0, algo, bytes_sent, bytes_recv);
    charge_compute(static_cast<double>(recv_total));
    finish();
  }

  /// Dense block reduce-scatter: every rank passes an array of identical
  /// length; rank r returns the block `part.begin(r)..part.end(r)` reduced
  /// elementwise with `op` across all ranks (recursive-halving model).
  template <typename T, typename Op>
  std::vector<T> reduce_scatter_block(const std::vector<T>& data, Op op,
                                      const BlockPartition& part,
                                      std::source_location loc =
                                          std::source_location::current()) {
    std::vector<T> out;
    reduce_scatter_block_into(data, op, part, out, loc);
    return out;
  }

  /// reduce_scatter_block receiving into a caller-owned buffer (resized to
  /// fit) so a recycled workspace can absorb the result without a fresh
  /// allocation.  `out` must not alias `data`.
  template <typename T, typename Op>
  void reduce_scatter_block_into(const std::vector<T>& data, Op op,
                                 const BlockPartition& part, std::vector<T>& out,
                                 std::source_location loc =
                                     std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    require_distinct(&data, &out, "reduce_scatter_block_into", loc);
    LACC_CHECK(part.parts == static_cast<std::uint64_t>(size()));
    LACC_CHECK(part.n == data.size());
    TraceSpan span(state(), "coll:reduce_scatter");
    SyncWindow window(ctx_.get());
    post(data.data(), data.size(), nullptr, nullptr, 0,
         make_record(check::CollOp::kReduceScatter, loc, sizeof(T)));
    const double t0 = group_start_time();
    const std::size_t b = part.begin(static_cast<std::uint64_t>(rank_));
    const std::size_t e = part.end(static_cast<std::uint64_t>(rank_));
    out.resize(e - b);
    check_recv_overlap(out.data(), (e - b) * sizeof(T), sizeof(T),
                       "reduce_scatter_block_into", loc);
    const T* first = static_cast<const T*>(ctx_->slots[0].data);
    for (std::size_t i = b; i < e; ++i) out[i - b] = first[i];
    for (int r = 1; r < size(); ++r) {
      const T* src = static_cast<const T*>(ctx_->slots[r].data);
      for (std::size_t i = b; i < e; ++i) out[i - b] = op(out[i - b], src[i]);
    }
    const double frac = static_cast<double>(size() - 1) / size();
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(frac * static_cast<double>(data.size() * sizeof(T)));
    state().sim_time = t0;
    state().charge_comm(log2_ceil(size()), bytes,
                        machine().alpha_s * log2_ceil(size()) +
                            machine().beta_s_per_byte * static_cast<double>(bytes));
    charge_compute(static_cast<double>(e - b) * (size() - 1));
    finish();
  }

  /// Pairwise exchange along a permutation: every rank sends to `dest` and
  /// receives from `src` (both may equal the caller's own rank).
  template <typename T>
  std::vector<T> sendrecv(const std::vector<T>& send, int dest, int src,
                          std::source_location loc = std::source_location::current()) {
    std::vector<T> out;
    sendrecv_into(send, dest, src, out, loc);
    return out;
  }

  /// sendrecv receiving into a caller-owned buffer (resized to fit) so a
  /// recycled workspace can absorb the result without a fresh allocation.
  /// `out` must not alias `send`.
  template <typename T>
  void sendrecv_into(const std::vector<T>& send, int dest, int src,
                     std::vector<T>& out,
                     std::source_location loc = std::source_location::current()) {
    static_assert(std::is_trivially_copyable_v<T>);
    require_distinct(&send, &out, "sendrecv_into", loc);
    LACC_CHECK(dest >= 0 && dest < size() && src >= 0 && src < size());
    TraceSpan span(state(), "coll:sendrecv");
    SyncWindow window(ctx_.get());
    post(send.data(), send.size(), nullptr, nullptr,
         static_cast<std::uint64_t>(dest),
         make_record(check::CollOp::kSendrecv, loc, sizeof(T), dest, src));
    const double t0 = group_start_time();
    const auto& slot = ctx_->slots[src];
    LACC_CHECK_MSG(static_cast<int>(slot.aux) == rank_,
                   "sendrecv permutation mismatch: rank " << src << " sent to "
                       << slot.aux << ", not " << rank_);
    out.resize(slot.count);
    check_recv_overlap(out.data(), slot.count * sizeof(T), sizeof(T),
                       "sendrecv_into", loc);
    if (slot.count > 0)
      std::memcpy(out.data(), slot.data, slot.count * sizeof(T));
    const std::uint64_t bytes =
        (src == rank_ ? 0 : out.size() * sizeof(T));
    state().sim_time = t0;
    state().charge_comm(src == rank_ ? 0 : 1, bytes,
                        (src == rank_ ? 0.0 : machine().alpha_s) +
                            machine().beta_s_per_byte * static_cast<double>(bytes));
    finish();
  }

  /// Collective split into sub-communicators: ranks sharing `color` form a
  /// group, ordered by (key, parent rank).  Every rank must participate.
  Comm split(int color, int key,
             std::source_location loc = std::source_location::current());

 private:
  static double log2_ceil(int p) {
    double steps = 0;
    int v = 1;
    while (v < p) {
      v <<= 1;
      ++steps;
    }
    return steps == 0 ? 1 : steps;
  }

  static check::CollRecord make_record(check::CollOp op,
                                       const std::source_location& loc,
                                       std::size_t elem_size,
                                       std::int64_t root = -1,
                                       std::int64_t peer = -1,
                                       const std::size_t* peer_counts = nullptr) {
    check::CollRecord rec;
    rec.op = op;
    rec.root = root;
    rec.peer = peer;
    rec.elem_size = elem_size;
    rec.peer_counts = peer_counts;
    rec.file = loc.file_name();
    rec.line = loc.line();
    return rec;
  }

  /// Rejects a send buffer doubling as the receive buffer of the same
  /// `_into` collective.  Cheap (one pointer compare), so always on.
  void require_distinct(const void* send, const void* recv, const char* op,
                        const std::source_location& loc) const {
    if (send != recv) return;
    std::ostringstream os;
    os << "SPMD buffer aliasing violation on comm \""
       << ctx_->ledger.comm_name() << "\": rank " << rank_
       << " passed the same vector as send and receive buffer to " << op
       << " at " << loc.file_name() << ":" << loc.line();
    throw check::ConformanceError(os.str());
  }

  /// Full-level check that the (resized) receive range does not overlap any
  /// rank's posted send buffer — writing into it would corrupt a source
  /// buffer mid-exchange.  Element sizes are uniform here (ledger-verified
  /// before any read), so slot extents are exact.
  void check_recv_overlap(const void* out_data, std::size_t out_bytes,
                          std::size_t elem_size, const char* op,
                          const std::source_location& loc) const {
    if (!check::full() || out_bytes == 0) return;
    const std::less<const char*> lt;
    const char* ob = static_cast<const char*>(out_data);
    const char* oe = ob + out_bytes;
    for (int r = 0; r < ctx_->size; ++r) {
      const auto& slot = ctx_->slots[r];
      if (slot.data == nullptr || slot.count == 0) continue;
      const char* sb = static_cast<const char*>(slot.data);
      const char* se = sb + slot.count * elem_size;
      if (lt(sb, oe) && lt(ob, se)) {
        std::ostringstream os;
        os << "SPMD buffer aliasing violation on comm \""
           << ctx_->ledger.comm_name() << "\": rank " << rank_
           << "'s receive buffer for " << op << " overlaps the send buffer "
           << "posted by rank " << r << " at " << loc.file_name() << ":"
           << loc.line();
        throw check::ConformanceError(os.str());
      }
    }
  }

  void post(const void* data, std::size_t count, const std::size_t* counts,
            const std::size_t* offsets, std::uint64_t aux,
            check::CollRecord rec) {
    auto& slot = ctx_->slots[rank_];
    slot = {data, count, counts, offsets, aux, state().sim_time};
    if (check::enabled()) {
      rec.count = count;
      ctx_->ledger.record(rank_, rec);
    }
    ctx_->barrier.arrive_and_wait();
    // All signatures are visible now (the barrier's acquire/release chain
    // publishes them with the slots); verify before any peer data is read.
    if (check::enabled()) ctx_->ledger.verify();
  }

  /// Max posted clock across the group = superstep start time.
  double group_start_time() const {
    double t = 0;
    for (int r = 0; r < ctx_->size; ++r)
      t = std::max(t, ctx_->slots[r].posted_time);
    return t;
  }

  void finish() { ctx_->barrier.arrive_and_wait(); }

  void charge_alltoall(double t0, AllToAllAlgo algo, std::uint64_t bytes_sent,
                       std::uint64_t bytes_recv);

  std::shared_ptr<CommContext> ctx_;
  int rank_;
};

/// RAII named region span: modeled charges issued while the region is
/// innermost are attributed to it, and on close its inclusive total (self +
/// nested spans) rolls up into the enclosing span.  Regions follow the
/// phases of the algorithm (e.g. "cond-hook"), nest (iteration -> phase),
/// and must be opened/closed collectively so collective charges land in the
/// same region on all ranks.  `tag` marks instances (e.g. the iteration
/// number) in trace exports.
class Region {
 public:
  Region(Comm& comm, std::string name, std::int64_t tag = -1)
      : state_(comm.state()),
        id_(state_.stats.spans.open(std::move(name), state_.sim_time,
                                    state_.wall_now(), tag)) {}
  ~Region() {
    state_.stats.spans.close(id_, state_.sim_time, state_.wall_now());
  }
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

 private:
  RankState& state_;
  std::uint32_t id_;
};

}  // namespace lacc::sim
