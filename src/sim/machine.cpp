#include "sim/machine.hpp"

namespace lacc::sim {

// Rationale for the constants:
//  * alpha: Aries MPI pt2pt latency is ~1.1-1.5 us from Ivy Bridge hosts;
//    KNL cores drive the NIC noticeably slower (~2x).
//  * beta: ~8 GB/s injection per node shared by 4 ranks -> ~2 GB/s/rank on
//    Edison; KNL sustains less per rank in practice.
//  * work_rate: STREAM per node / ranks per node / ~16 bytes per touched
//    element, derated ~25% for irregular access.  Edison: 89 GB/s / 4 /
//    16 B * 0.25 ~ 3.5e8; Cori KNL's slower cores and MCDRAM irregular
//    penalty give ~2.4e8 despite higher peak STREAM.  This reproduces the
//    paper's observation that Edison beats Cori per node on these workloads.

const MachineModel& MachineModel::edison() {
  static const MachineModel m{
      .name = "Edison (Cray XC30, Ivy Bridge)",
      .alpha_s = 1.2e-6,
      .beta_s_per_byte = 1.0 / 2.0e9,
      .work_rate = 3.5e8,
      .procs_per_node = 4,
      .threads_per_proc = 6,
      .cores_per_node = 24,
  };
  return m;
}

const MachineModel& MachineModel::cori_knl() {
  static const MachineModel m{
      .name = "Cori (Cray XC40, KNL)",
      .alpha_s = 2.4e-6,
      .beta_s_per_byte = 1.0 / 1.4e9,
      .work_rate = 2.4e8,
      .procs_per_node = 4,
      .threads_per_proc = 16,
      .cores_per_node = 68,
  };
  return m;
}

const MachineModel& MachineModel::local() {
  static const MachineModel m{
      .name = "local",
      .alpha_s = 1.0e-7,
      .beta_s_per_byte = 1.0 / 1.0e10,
      .work_rate = 1.0e9,
      .procs_per_node = 1,
      .threads_per_proc = 1,
      .cores_per_node = 1,
  };
  return m;
}

}  // namespace lacc::sim
