// Machine models for the simulated-time cost accounting.
//
// The paper evaluates on NERSC Edison (Cray XC30, Ivy Bridge) and Cori
// (Cray XC40, KNL); Table II gives the node specs.  We encode each platform
// as an alpha-beta-work model:
//
//   T = F / work_rate  +  alpha * S  +  beta * W
//
// where F is local work in "graph elements" touched (memory-bound irregular
// ops), S is messages sent and W is bytes moved, matching the cost model in
// Section V-A of the paper.  Absolute constants are approximations of the
// real hardware; the reproduction targets the *shape* of the scaling curves,
// which depends on the relative magnitude of the three terms, not their
// absolute values.
#pragma once

#include <string>

namespace lacc::sim {

/// Per-rank machine parameters used by the cost model.
struct MachineModel {
  std::string name;

  /// Point-to-point message latency in seconds (per message).
  double alpha_s = 1.0e-6;

  /// Inverse bandwidth in seconds per byte (per-rank injection).
  double beta_s_per_byte = 5.0e-10;

  /// Irregular graph-element processing rate per rank (elements/second).
  /// Derived from STREAM bandwidth per rank with an irregular-access
  /// efficiency factor; one "element" is one index+value touched.
  double work_rate = 4.0e8;

  /// MPI processes per node (the paper runs LACC with 4 per node).
  int procs_per_node = 4;

  /// OpenMP threads per process.
  int threads_per_proc = 6;

  /// Physical cores per node (Table II).
  int cores_per_node = 24;

  /// Number of nodes corresponding to `ranks` simulated processes.
  double nodes_for_ranks(int ranks) const {
    return static_cast<double>(ranks) / procs_per_node;
  }
  /// Number of physical cores corresponding to `ranks` simulated processes.
  double cores_for_ranks(int ranks) const {
    return nodes_for_ranks(ranks) * cores_per_node;
  }

  /// Flat-MPI variant of this machine: one single-threaded rank per core
  /// (the paper runs ParConnect this way — 24 ranks/node on Edison, 64+ on
  /// Cori).  Same node-level compute and bandwidth, but each rank gets one
  /// core's work rate and a per-core slice of the injection bandwidth, and
  /// collectives span many more ranks — the alpha*(p-1) blowup the paper
  /// blames for ParConnect's scaling wall.
  MachineModel flat_mpi_variant() const {
    MachineModel flat = *this;
    const double ranks_scale =
        static_cast<double>(cores_per_node) / procs_per_node;
    flat.name = name + " (flat MPI)";
    flat.beta_s_per_byte = beta_s_per_byte * ranks_scale;
    flat.work_rate = work_rate / ranks_scale;
    flat.procs_per_node = cores_per_node;
    flat.threads_per_proc = 1;
    return flat;
  }

  /// NERSC Edison: Cray XC30, 2x12-core Ivy Bridge @ 2.4 GHz, 89 GB/s
  /// STREAM, Aries interconnect.  Paper config: 4 MPI ranks x 6 threads.
  static const MachineModel& edison();

  /// NERSC Cori: Cray XC40, 68-core KNL @ 1.4 GHz, 102 GB/s STREAM
  /// (MCDRAM), Aries.  Paper config: 4 MPI ranks x 16 threads.
  static const MachineModel& cori_knl();

  /// This machine (no modeling of a supercomputer): tiny latency, high
  /// bandwidth.  Used by unit tests where modeled time is irrelevant.
  static const MachineModel& local();
};

}  // namespace lacc::sim
