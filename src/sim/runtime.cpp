#include "sim/runtime.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "support/checking.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace lacc::sim {

SpmdResult run_spmd(int nranks, const MachineModel& machine,
                    const std::function<void(Comm&)>& body) {
  LACC_CHECK_MSG(nranks >= 1 && nranks <= 4096,
                 "rank count " << nranks << " out of supported range");

  // One run-epoch stopwatch shared by all ranks: span wall intervals from
  // every rank live on this common axis (obs/trace.hpp).
  Timer timer;
  std::vector<std::unique_ptr<RankState>> states;
  states.reserve(static_cast<std::size_t>(nranks));
  std::vector<RankState*> members;
  members.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    states.push_back(std::make_unique<RankState>());
    states.back()->machine = &machine;
    states.back()->run_clock = &timer;
    members.push_back(states.back().get());
  }
  auto poison = std::make_shared<std::atomic<bool>>(false);
  auto world = std::make_shared<CommContext>(members, poison, "world");

  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      check::ScopedRank scoped_rank(r);
      Comm comm(world, r);
      comm.state().memberships.push_back(world);
      try {
        body(comm);
        // This rank retired cleanly.  Any communicator it belonged to can
        // never complete another collective; with checking on, flag each
        // barrier so stragglers report a missing collective instead of
        // deadlocking.  Membership-scoped: barriers of communicators this
        // rank never joined are unaffected.
        if (check::enabled())
          for (const auto& ctx : comm.state().memberships)
            ctx->barrier.note_retired();
      } catch (const Poisoned&) {
        // A sibling failed first; its error is already recorded.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        world->barrier.poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  SpmdResult result;
  result.wall_seconds = timer.seconds();
  result.stats.reserve(states.size());
  result.rank_sim_seconds.reserve(states.size());
  for (const auto& s : states) {
    result.stats.push_back(s->stats);
    result.rank_sim_seconds.push_back(s->sim_time);
    result.sim_seconds = std::max(result.sim_seconds, s->sim_time);
  }
  return result;
}

}  // namespace lacc::sim
