// Entry point for running SPMD bodies on virtual ranks.
#pragma once

#include <functional>
#include <vector>

#include "sim/comm.hpp"
#include "sim/machine.hpp"
#include "sim/stats.hpp"

namespace lacc::sim {

/// Outcome of one SPMD run: per-rank statistics plus the modeled and
/// measured elapsed times.
struct SpmdResult {
  std::vector<RankStats> stats;          ///< indexed by rank
  std::vector<double> rank_sim_seconds;  ///< final modeled clock per rank
  double sim_seconds = 0;                ///< max over ranks (critical path)
  double wall_seconds = 0;               ///< measured wall time of the run
};

/// Run `body` on `nranks` virtual ranks (one thread each) against the given
/// machine model.  The first exception thrown by any rank is rethrown here
/// after all threads have been released and joined.
SpmdResult run_spmd(int nranks, const MachineModel& machine,
                    const std::function<void(Comm&)>& body);

}  // namespace lacc::sim
