// Per-rank statistics for the SPMD runtime.
//
// Every collective charges modeled communication cost and every kernel
// charges modeled compute cost; charges accumulate both into a grand total
// and into the currently-open named region.  The benchmark harnesses use
// the region breakdown to regenerate the paper's Figure 8 (per-phase
// scaling) and the custom counters to regenerate Figure 3 (per-rank
// request skew in GrB_extract).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lacc::sim {

/// Accumulated cost attributed to one region (or the total).
struct OpCounters {
  std::uint64_t messages = 0;   ///< modeled messages sent
  std::uint64_t bytes = 0;      ///< modeled bytes moved
  double comm_seconds = 0;      ///< modeled communication time
  double compute_seconds = 0;   ///< modeled local-work time
  double wall_seconds = 0;      ///< measured wall time (regions only)

  void add(const OpCounters& other) {
    messages += other.messages;
    bytes += other.bytes;
    comm_seconds += other.comm_seconds;
    compute_seconds += other.compute_seconds;
    wall_seconds += other.wall_seconds;
  }
  double modeled_seconds() const { return comm_seconds + compute_seconds; }
};

/// All statistics recorded by one rank during an SPMD run.
struct RankStats {
  OpCounters total;
  std::map<std::string, OpCounters> regions;
  std::map<std::string, std::uint64_t> counters;  ///< custom instrumentation
};

/// Reduce a per-rank stats vector into "max over ranks" per region/total —
/// the bulk-synchronous critical path.
RankStats max_over_ranks(const std::vector<RankStats>& per_rank);

/// Reduce a per-rank stats vector by summing (aggregate volume).
RankStats sum_over_ranks(const std::vector<RankStats>& per_rank);

}  // namespace lacc::sim
