// Per-rank statistics for the SPMD runtime.
//
// The statistics model lives in lacc::obs (src/obs/stats.hpp): hierarchical
// region spans with modeled + wall intervals, plus the flat cross-rank
// reductions the benches consume.  This header keeps the historical
// lacc::sim spellings working for the runtime and its callers.
#pragma once

#include "obs/stats.hpp"

namespace lacc::sim {

using obs::OpCounters;
using obs::RankStats;
using obs::Span;
using obs::SpanLog;
using obs::StatsSummary;
using obs::max_over_ranks;
using obs::sum_over_ranks;

}  // namespace lacc::sim
