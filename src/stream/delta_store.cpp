#include "stream/delta_store.hpp"

#include <algorithm>
#include <utility>

#include "stream/durable/version_set.hpp"
#include "support/error.hpp"
#include "support/sort.hpp"

namespace lacc::stream {

using dist::CscCoord;

void sort_unique_column_major(std::vector<CscCoord>& entries, VertexId n) {
  std::vector<CscCoord> scratch;
  radix_sort_by(entries, scratch, [](const CscCoord& e) { return e.row; }, n);
  radix_sort_by(entries, scratch, [](const CscCoord& e) { return e.col; }, n);
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
}

EdgeId DeltaStore::ingest(dist::ProcGrid& grid, const graph::EdgeList& batch) {
  fence();
  // Empty batch: nothing to route, nothing to log.  `batch` is the same
  // object on every rank, so the early return is uniform (no rank skips a
  // collective the others enter) and appends no empty run.
  if (batch.edges.empty()) return 0;
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:delta_ingest");

  // Route my slice's directed entries to block owners, exactly like DistCsc
  // construction.
  const BlockPartition edge_slice(batch.edges.size(),
                                  static_cast<std::uint64_t>(world.size()));
  const auto lo = edge_slice.begin(static_cast<std::uint64_t>(world.rank()));
  const auto hi = edge_slice.end(static_cast<std::uint64_t>(world.rank()));
  const auto q64 = static_cast<std::uint64_t>(q_);
  std::vector<std::vector<CscCoord>> bucket(
      static_cast<std::size_t>(world.size()));
  const auto route = [&](VertexId r, VertexId c) {
    LACC_CHECK_MSG(r < n_ && c < n_, "delta edge endpoint out of range");
    const int grid_row = static_cast<int>(part_.owner(r) / q64);
    const int grid_col = static_cast<int>(part_.owner(c) / q64);
    bucket[static_cast<std::size_t>(grid.rank_of(grid_row, grid_col))]
        .push_back({r, c});
  };
  for (auto e = lo; e < hi; ++e) {
    const auto& edge = batch.edges[e];
    if (edge.u == edge.v) continue;
    route(edge.u, edge.v);
    route(edge.v, edge.u);
  }
  world.charge_compute(static_cast<double>(2 * (hi - lo)));

  std::vector<CscCoord> send;
  std::vector<std::size_t> counts(static_cast<std::size_t>(world.size()));
  for (std::size_t d = 0; d < bucket.size(); ++d) {
    counts[d] = bucket[d].size();
    send.insert(send.end(), bucket[d].begin(), bucket[d].end());
  }
  std::vector<CscCoord> run =
      world.alltoallv(send, counts, sim::AllToAllAlgo::kPairwise);

  sort_unique_column_major(run, n_);
  world.charge_compute(static_cast<double>(run.size()) * 4);  // sort passes

  local_nnz_ += run.size();
  const EdgeId appended = world.allreduce(
      static_cast<EdgeId>(run.size()), [](EdgeId a, EdgeId b) { return a + b; });
  runs_.push_back(std::move(run));
  ++ingest_seq_;
  // Write-ahead: the routed (post-all-to-all) run is what this rank must be
  // able to re-materialize without collectives, so that is what gets
  // logged.  Disk I/O charges no modeled time — the cost model covers the
  // simulated cluster, not the host's disk.
  if (storage_ != nullptr) storage_->wal().append(ingest_seq_, runs_.back());
  return appended;
}

void DeltaStore::restore_run(std::vector<CscCoord> run) {
  fence();
  local_nnz_ += run.size();
  runs_.push_back(std::move(run));
}

EdgeId DeltaStore::global_nnz(dist::ProcGrid& grid) const {
  fence();
  return grid.world().allreduce(local_nnz_,
                                [](EdgeId a, EdgeId b) { return a + b; });
}

std::vector<CscCoord> DeltaStore::drain_merged(dist::ProcGrid& grid) {
  fence();
  // Draining flattens the runs; any run still pending would have its edges
  // merged into the base without ever passing through the label update —
  // the caller must fold pending runs into the labels (and call
  // mark_pending_processed) before compacting.
  LACC_CHECK_MSG(pending_from_ == runs_.size(),
                 "DeltaStore::drain_merged would drop "
                     << runs_.size() - pending_from_
                     << " pending run(s); fold them into the labels and call "
                        "mark_pending_processed() before draining");
  std::vector<CscCoord> merged;
  merged.reserve(static_cast<std::size_t>(local_nnz_));
  for (const auto& run : runs_)
    merged.insert(merged.end(), run.begin(), run.end());
  sort_unique_column_major(merged, n_);
  grid.world().charge_compute(static_cast<double>(merged.size()) * 4);
  runs_.clear();
  pending_from_ = 0;
  local_nnz_ = 0;
  return merged;
}

}  // namespace lacc::stream
