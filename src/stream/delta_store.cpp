#include "stream/delta_store.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"
#include "support/sort.hpp"

namespace lacc::stream {

using dist::CscCoord;

namespace {

/// Column-major (col, row) sort via two stable radix passes; lint-clean and
/// allocation-predictable, unlike a comparator sort.
void sort_column_major(std::vector<CscCoord>& entries,
                       std::vector<CscCoord>& scratch, VertexId n) {
  radix_sort_by(entries, scratch, [](const CscCoord& e) { return e.row; }, n);
  radix_sort_by(entries, scratch, [](const CscCoord& e) { return e.col; }, n);
}

}  // namespace

EdgeId DeltaStore::ingest(dist::ProcGrid& grid, const graph::EdgeList& batch) {
  fence();
  auto& world = grid.world();
  sim::TraceSpan trace(world.state(), "op:delta_ingest");

  // Route my slice's directed entries to block owners, exactly like DistCsc
  // construction.
  const BlockPartition edge_slice(batch.edges.size(),
                                  static_cast<std::uint64_t>(world.size()));
  const auto lo = edge_slice.begin(static_cast<std::uint64_t>(world.rank()));
  const auto hi = edge_slice.end(static_cast<std::uint64_t>(world.rank()));
  const auto q64 = static_cast<std::uint64_t>(q_);
  std::vector<std::vector<CscCoord>> bucket(
      static_cast<std::size_t>(world.size()));
  const auto route = [&](VertexId r, VertexId c) {
    LACC_CHECK_MSG(r < n_ && c < n_, "delta edge endpoint out of range");
    const int grid_row = static_cast<int>(part_.owner(r) / q64);
    const int grid_col = static_cast<int>(part_.owner(c) / q64);
    bucket[static_cast<std::size_t>(grid.rank_of(grid_row, grid_col))]
        .push_back({r, c});
  };
  for (auto e = lo; e < hi; ++e) {
    const auto& edge = batch.edges[e];
    if (edge.u == edge.v) continue;
    route(edge.u, edge.v);
    route(edge.v, edge.u);
  }
  world.charge_compute(static_cast<double>(2 * (hi - lo)));

  std::vector<CscCoord> send;
  std::vector<std::size_t> counts(static_cast<std::size_t>(world.size()));
  for (std::size_t d = 0; d < bucket.size(); ++d) {
    counts[d] = bucket[d].size();
    send.insert(send.end(), bucket[d].begin(), bucket[d].end());
  }
  std::vector<CscCoord> run =
      world.alltoallv(send, counts, sim::AllToAllAlgo::kPairwise);

  std::vector<CscCoord> scratch;
  sort_column_major(run, scratch, n_);
  run.erase(std::unique(run.begin(), run.end()), run.end());
  world.charge_compute(static_cast<double>(run.size()) * 4);  // sort passes

  local_nnz_ += run.size();
  const EdgeId appended = world.allreduce(
      static_cast<EdgeId>(run.size()), [](EdgeId a, EdgeId b) { return a + b; });
  runs_.push_back(std::move(run));
  return appended;
}

EdgeId DeltaStore::global_nnz(dist::ProcGrid& grid) const {
  fence();
  return grid.world().allreduce(local_nnz_,
                                [](EdgeId a, EdgeId b) { return a + b; });
}

std::vector<CscCoord> DeltaStore::drain_merged(dist::ProcGrid& grid) {
  fence();
  std::vector<CscCoord> merged;
  merged.reserve(static_cast<std::size_t>(local_nnz_));
  for (const auto& run : runs_)
    merged.insert(merged.end(), run.begin(), run.end());
  std::vector<CscCoord> scratch;
  sort_column_major(merged, scratch, n_);
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  grid.world().charge_compute(static_cast<double>(merged.size()) * 4);
  runs_.clear();
  pending_from_ = 0;
  local_nnz_ = 0;
  return merged;
}

}  // namespace lacc::stream
