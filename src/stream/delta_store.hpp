// LSM-style per-rank delta storage for a distributed pattern matrix.
//
// Streaming ingestion cannot afford to rebuild the DCSC blocks per batch:
// construction sorts every nonzero.  Instead each batch is routed to block
// owners exactly like DistCsc construction and appended as one *sorted run*
// of CscCoord — the memtable-flush shape of LSM-tree storage engines
// (LSMGraph / LiveGraph keep per-partition edge deltas the same way).  Runs
// accumulate until the engine's compaction policy fires, at which point
// drain_merged() produces one sorted unique sequence that
// DistCsc::merge_delta() folds into the base arrays with a linear merge.
//
// A watermark separates runs the incremental algorithm has already folded
// into its labels ("processed") from runs a future advance_epoch() still
// needs to look at ("pending").  Processed runs stay resident — their edges
// are reflected in the labels but not yet in the DCSC base — until the next
// compaction.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/dist_mat.hpp"
#include "dist/grid.hpp"
#include "graph/edge_list.hpp"
#include "support/checking.hpp"
#include "support/partition.hpp"
#include "support/types.hpp"

namespace lacc::stream {

namespace durable {
class RankStorage;
}

/// Column-major sort + dedup of a raw coordinate set (two stable radix
/// passes; lint-clean and allocation-predictable, unlike a comparator
/// sort).  Shared by ingestion, drain, the durable level merges, and
/// recovery so every path produces the same canonical run order.
void sort_unique_column_major(std::vector<dist::CscCoord>& entries,
                              VertexId n);

/// One rank's share of the delta edges not yet compacted into the base
/// matrix.  Plain data (no communicator references), so a slot survives
/// across run_spmd sessions like DistVec does.
class DeltaStore {
 public:
  /// Collective only in the sense that every rank builds its share against
  /// the same grid shape; no communication happens here.
  DeltaStore(const dist::ProcGrid& grid, VertexId n)
      : n_(n),
        q_(grid.q()),
        owner_rank_(grid.rank()),
        part_(n, static_cast<std::uint64_t>(grid.size())) {}

  /// Collective: every rank reads its slice of `batch` (canonical
  /// undirected edges; see graph::canonicalize), symmetrizes it, and routes
  /// the directed entries to block owners with an all-to-all — the same
  /// ingestion pattern as DistCsc construction.  The received entries
  /// become one new sorted, deduplicated run.  Returns the global number of
  /// directed entries appended across all ranks.
  ///
  /// An empty batch short-circuits before any collective or run append:
  /// `batch` is shared by every rank, so the skip is uniform and
  /// ledger-safe, and run_count()/modeled time stay untouched (empty runs
  /// used to inflate run_count and trigger spurious compactions).
  ///
  /// With durable storage attached, the routed run is appended to this
  /// rank's WAL under the next global ingest seq before the call returns.
  EdgeId ingest(dist::ProcGrid& grid, const graph::EdgeList& batch);

  /// Attach (or detach, with nullptr) this rank's durable storage; every
  /// subsequent ingest write-ahead-logs its routed run.
  void attach_storage(durable::RankStorage* storage) { storage_ = storage; }

  /// Recovery: re-materialize one WAL record as a pending run, bypassing
  /// routing (the record already holds this rank's post-all-to-all share).
  /// Not collective — recovery replays each rank's own log.
  void restore_run(std::vector<dist::CscCoord> run);

  /// Global ingest sequence number of the last appended run (0 = none yet).
  /// Seqs advance in lockstep across ranks — ingest is collective — so the
  /// manifest can record one watermark for all of them.
  std::uint64_t last_seq() const {
    fence();
    return ingest_seq_;
  }
  /// Recovery: resume the sequence from the replayed WAL position.
  void set_next_seq(std::uint64_t seq) {
    fence();
    ingest_seq_ = seq;
  }

  /// Directed entries resident in this rank's runs (duplicates across runs
  /// counted per run; drain_merged() removes them).
  EdgeId local_nnz() const {
    fence();
    return local_nnz_;
  }
  std::size_t run_count() const {
    fence();
    return runs_.size();
  }

  /// Collective: sum of local_nnz over ranks.
  EdgeId global_nnz(dist::ProcGrid& grid) const;

  /// Visit every pending (not yet label-processed) coordinate, run by run.
  template <typename Fn>
  void for_each_pending(Fn&& fn) const {
    fence();
    for (std::size_t r = pending_from_; r < runs_.size(); ++r)
      for (const dist::CscCoord& e : runs_[r]) fn(e);
  }

  /// Directed entries in pending runs.
  EdgeId pending_nnz() const {
    fence();
    EdgeId total = 0;
    for (std::size_t r = pending_from_; r < runs_.size(); ++r)
      total += runs_[r].size();
    return total;
  }

  /// Advance the watermark: everything ingested so far has been folded into
  /// the labels.
  void mark_pending_processed() {
    fence();
    pending_from_ = runs_.size();
  }

  /// Frozen-view support (StreamEngine::freeze_view): the *processed* runs'
  /// coordinates — edges already reflected in the labels but not yet
  /// compacted into the DCSC base — merged into one column-major sorted,
  /// unique sequence without draining the store.  Pending runs are excluded:
  /// they are not part of the published epoch any more than they are part of
  /// the labels.
  std::vector<dist::CscCoord> processed_coords() const {
    fence();
    std::vector<dist::CscCoord> out;
    out.reserve(static_cast<std::size_t>(processed_nnz()));
    for (std::size_t r = 0; r < pending_from_; ++r)
      out.insert(out.end(), runs_[r].begin(), runs_[r].end());
    sort_unique_column_major(out, n_);
    return out;
  }

  /// Directed entries in processed (label-folded, uncompacted) runs.
  EdgeId processed_nnz() const {
    fence();
    EdgeId total = 0;
    for (std::size_t r = 0; r < pending_from_; ++r) total += runs_[r].size();
    return total;
  }

  /// Compaction: merge all runs into one column-major sorted, unique
  /// sequence (ready for DistCsc::merge_delta) and clear the store.
  /// Draining destroys the run structure, so it is an LACC_CHECK failure to
  /// call this while runs are still pending (not yet folded into labels via
  /// mark_pending_processed()) — silently merging labels-unseen edges into
  /// the base is how components quietly go missing.
  std::vector<dist::CscCoord> drain_merged(dist::ProcGrid& grid);

 private:
  /// Block fence (LACC_CHECK=2): only the owning virtual rank may touch
  /// this share outside a collective.  No-op outside run_spmd.
  void fence() const { check::fence_block_access(owner_rank_, "DeltaStore"); }

  VertexId n_;
  int q_;
  int owner_rank_;
  BlockPartition part_;
  std::vector<std::vector<dist::CscCoord>> runs_;
  std::size_t pending_from_ = 0;  ///< first run not yet label-processed
  EdgeId local_nnz_ = 0;
  /// Monotone global ingest counter (never reset by drains); doubles as the
  /// WAL record seq when durable storage is attached.
  std::uint64_t ingest_seq_ = 0;
  durable::RankStorage* storage_ = nullptr;  ///< optional WAL sink
};

}  // namespace lacc::stream
