#include "stream/durable/failpoint.hpp"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace lacc::stream::durable {

namespace {

struct Armed {
  FailMode mode;
  int skip;  ///< un-failed passes remaining before the site fires
};

std::mutex g_mutex;
std::unordered_map<std::string, Armed>& table() {
  static std::unordered_map<std::string, Armed> t;
  return t;
}
// Disarmed fast path: one load, no lock.  The flag is only a hint — the
// authoritative state lives under the mutex — so relaxed is enough.
std::atomic<bool> g_any{false};

}  // namespace

void FailPoints::arm(const std::string& site, FailMode mode, int skip) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  table()[site] = Armed{mode, skip};
  g_any.store(true, std::memory_order_relaxed);
}

void FailPoints::clear() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  table().clear();
  g_any.store(false, std::memory_order_relaxed);
}

bool FailPoints::armed() { return g_any.load(std::memory_order_relaxed); }

FailAction FailPoints::hit(const char* site) {
  if (!armed()) return FailAction::kNone;
  const std::lock_guard<std::mutex> lock(g_mutex);
  auto it = table().find(site);
  if (it == table().end()) return FailAction::kNone;
  if (it->second.skip > 0) {
    --it->second.skip;
    return FailAction::kNone;
  }
  return it->second.mode == FailMode::kCrash ? FailAction::kCrash
                                             : FailAction::kError;
}

const std::vector<std::string>& fail_sites() {
  static const std::vector<std::string> sites = {
      "wal.append.write",   // WAL record header+payload write
      "wal.append.fsync",   // per-batch WAL fsync
      "wal.epoch.fsync",    // per-epoch WAL fsync (policy kPerEpoch)
      "wal.rotate.create",  // new WAL generation file creation
      "run.write.block",    // run-file header/entry-block writes
      "run.write.index",    // run-file block index + footer writes
      "run.write.fsync",    // run-file fsync before publish
      "run.write.rename",   // tmp -> final rename publishing a run file
      "manifest.write",     // manifest body write
      "manifest.fsync",     // manifest fsync before publish
      "manifest.rename",    // tmp -> MANIFEST rename (the commit point)
  };
  return sites;
}

}  // namespace lacc::stream::durable
