// Fail-point hook for the durable layer's kill-and-recover test matrix.
//
// Every write site in the WAL / run-file / manifest paths asks the registry
// whether it should fail before touching the file descriptor.  Two failure
// modes cover the two things that go wrong with real disks:
//
//   * kCrash — the process "dies" mid-write: the site writes a torn prefix
//     of its payload (when it has one) and throws CrashError.  Tests catch
//     it, drop the engine, and prove recovery republishes the last durable
//     epoch bit-identically.
//   * kError — the syscall fails cleanly (ENOSPC, EIO): the site surfaces
//     the same lacc::Error a real failed write would, leaving the engine in
//     a throw-safe state.
//
// The registry is process-global and thread-safe (sites are hit from rank
// threads inside run_spmd); the disarmed fast path is one relaxed atomic
// load.
#pragma once

#include <string>
#include <vector>

#include "support/error.hpp"

namespace lacc::stream::durable {

/// Thrown by an armed kCrash fail point: simulates the process dying at a
/// durable write site (possibly after a torn partial write).  Derives from
/// lacc::Error so non-test code that only knows lacc::Error still unwinds
/// cleanly; tests catch CrashError specifically.
class CrashError : public Error {
 public:
  explicit CrashError(const std::string& what) : Error(what) {}
};

enum class FailMode {
  kCrash,  ///< torn write + CrashError (process death)
  kError,  ///< clean syscall failure -> lacc::Error (ENOSPC/EIO)
};

/// What the I/O layer should do at a site right now.
enum class FailAction { kNone, kCrash, kError };

/// Process-global fail-point registry.  Tests arm one site at a time;
/// production code never arms anything, so the only steady-state cost is
/// the `armed()` load.
struct FailPoints {
  /// Arm `site`: after `skip` un-failed passes through it, the next hit
  /// fires (and stays armed until clear(), so retries fail too).
  static void arm(const std::string& site, FailMode mode, int skip = 0);
  static void clear();
  static bool armed();

  /// Called by the checked I/O wrappers at each named write site.
  static FailAction hit(const char* site);
};

/// Every named write site in the durable layer, i.e. the axis of the
/// kill-and-recover matrix.  Kept in one place so the test suite cannot
/// drift out of sync with the I/O code.
const std::vector<std::string>& fail_sites();

}  // namespace lacc::stream::durable
