#include "stream/durable/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "stream/durable/failpoint.hpp"
#include "support/error.hpp"

namespace lacc::stream::durable {

namespace {

[[noreturn]] void io_fail(const char* op, const std::string& path,
                          const char* site, int err) {
  std::ostringstream os;
  os << "durable I/O error: " << op << " '" << path << "' failed at " << site
     << ": " << std::strerror(err);
  throw Error(os.str());
}

/// Dispatch an armed fail point.  kError simulates the syscall failing with
/// ENOSPC (the error path real code must survive); kCrash optionally leaves
/// a torn prefix behind (the recovery path must tolerate it) and throws
/// CrashError.  `torn` is the fd to tear into, or -1 for sites with no
/// payload (fsync/rename/create).
void maybe_fail(const char* op, const std::string& path, const char* site,
                int torn_fd, const void* data, std::size_t len) {
  switch (FailPoints::hit(site)) {
    case FailAction::kNone:
      return;
    case FailAction::kError:
      io_fail(op, path, site, ENOSPC);
    case FailAction::kCrash: {
      if (torn_fd >= 0 && data != nullptr && len > 1) {
        // Half the payload reaches the file before the "power cut".
        const auto* p = static_cast<const unsigned char*>(data);
        std::size_t remaining = len / 2;
        while (remaining > 0) {
          const ssize_t n = ::write(torn_fd, p, remaining);
          if (n < 0) {
            if (errno == EINTR) continue;
            break;  // torn tear failing is still a crash
          }
          p += n;
          remaining -= static_cast<std::size_t>(n);
        }
      }
      throw CrashError(std::string("simulated crash at ") + site + " ('" +
                       path + "')");
    }
  }
}

}  // namespace

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) (void)::close(fd_);  // lint-spmd: allow(unchecked-io-call)
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

File::~File() {
  if (fd_ >= 0) (void)::close(fd_);  // lint-spmd: allow(unchecked-io-call)
}

File File::create(const std::string& path, const char* site) {
  maybe_fail("create", path, site, -1, nullptr, 0);
  File f;
  f.path_ = path;
  do {
    f.fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  } while (f.fd_ < 0 && errno == EINTR);
  if (f.fd_ < 0) io_fail("create", path, site, errno);
  return f;
}

File File::open_append(const std::string& path, const char* site) {
  File f;
  f.path_ = path;
  do {
    f.fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  } while (f.fd_ < 0 && errno == EINTR);
  if (f.fd_ < 0) io_fail("open-append", path, site, errno);
  return f;
}

File File::open_read(const std::string& path, const char* site) {
  File f;
  f.path_ = path;
  do {
    f.fd_ = ::open(path.c_str(), O_RDONLY);
  } while (f.fd_ < 0 && errno == EINTR);
  if (f.fd_ < 0) io_fail("open-read", path, site, errno);
  return f;
}

void File::write(const void* data, std::size_t len, const char* site) {
  maybe_fail("write", path_, site, fd_, data, len);
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t remaining = len;
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("write", path_, site, errno);
    }
    if (n == 0) io_fail("write", path_, site, ENOSPC);  // stuck short write
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
}

void File::pread_exact(void* out, std::size_t len, std::uint64_t offset,
                       const char* site) const {
  const std::size_t got = pread_upto(out, len, offset, site);
  if (got != len) io_fail("read", path_, site, EIO);  // truncated file
}

std::size_t File::pread_upto(void* out, std::size_t len, std::uint64_t offset,
                             const char* site) const {
  auto* p = static_cast<unsigned char*>(out);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, p + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("read", path_, site, errno);
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return done;
}

std::uint64_t File::size(const char* site) const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) io_fail("stat", path_, site, errno);
  return static_cast<std::uint64_t>(st.st_size);
}

void File::sync(const char* site) {
  maybe_fail("fsync", path_, site, -1, nullptr, 0);
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) io_fail("fsync", path_, site, errno);
}

void File::close(const char* site) {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) io_fail("close", path_, site, errno);
}

namespace {

/// fsync the directory so a just-renamed entry survives a power cut.
void sync_parent_dir(const std::string& path, const char* site) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) io_fail("open-dir", dir, site, errno);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved = errno;
  (void)::close(fd);  // lint-spmd: allow(unchecked-io-call)
  if (rc != 0) io_fail("fsync-dir", dir, site, saved);
}

}  // namespace

void rename_file(const std::string& from, const std::string& to,
                 const char* site) {
  maybe_fail("rename", to, site, -1, nullptr, 0);
  if (::rename(from.c_str(), to.c_str()) != 0) io_fail("rename", to, site, errno);
  sync_parent_dir(to, site);
}

void remove_file_if_exists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    io_fail("unlink", path, "gc.unlink", errno);
}

void make_dirs(const std::string& path) {
  std::string sofar;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    sofar = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (sofar.empty()) continue;
    if (::mkdir(sofar.c_str(), 0755) != 0 && errno != EEXIST)
      io_fail("mkdir", sofar, "gc.mkdir", errno);
  }
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace lacc::stream::durable
