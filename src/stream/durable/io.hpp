// Checked POSIX I/O for the durable layer.
//
// Every syscall result is inspected: short writes loop, EINTR retries, and
// any real failure surfaces as lacc::Error carrying the operation, path,
// fail-site name, and errno text — callers never see a silently dropped
// write (tools/lint_spmd.py's unchecked-io-call rule enforces the same
// discipline tree-wide).  Each mutating operation names a fail-point site
// so the kill-and-recover matrix can crash or error it on demand
// (see failpoint.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lacc::stream::durable {

/// RAII file descriptor with checked operations.  Move-only; the destructor
/// closes quietly (explicit close(site) is the checked path for writers).
class File {
 public:
  File() = default;
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  /// O_CREAT|O_TRUNC|O_WRONLY.
  static File create(const std::string& path, const char* site);
  /// O_WRONLY|O_APPEND (file must exist).
  static File open_append(const std::string& path, const char* site);
  /// O_RDONLY.
  static File open_read(const std::string& path, const char* site);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Append `len` bytes, looping over short writes.
  void write(const void* data, std::size_t len, const char* site);
  /// Read exactly `len` bytes at `offset` (pread loop); throws on EOF short.
  void pread_exact(void* out, std::size_t len, std::uint64_t offset,
                   const char* site) const;
  /// Read up to `len` bytes at `offset`; returns bytes read (EOF-tolerant,
  /// for the torn-tail WAL scan).
  std::size_t pread_upto(void* out, std::size_t len, std::uint64_t offset,
                         const char* site) const;
  std::uint64_t size(const char* site) const;
  void sync(const char* site);
  void close(const char* site);

 private:
  int fd_ = -1;
  std::string path_;
};

/// rename(2) + fsync of the containing directory — the atomic-publish step
/// for run files and the manifest.
void rename_file(const std::string& from, const std::string& to,
                 const char* site);

/// unlink(2); a missing file is not an error (GC races with itself across
/// recoveries), any other failure throws.
void remove_file_if_exists(const std::string& path);

/// mkdir -p (each component; EEXIST ok).
void make_dirs(const std::string& path);

bool path_exists(const std::string& path);

}  // namespace lacc::stream::durable
