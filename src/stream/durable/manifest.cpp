#include "stream/durable/manifest.hpp"

#include <cstdio>
#include <sstream>

#include "stream/durable/io.hpp"
#include "support/crc32.hpp"
#include "support/error.hpp"

namespace lacc::stream::durable {

namespace {

constexpr const char* kVersionLine = "lacc-manifest-v1";

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw Error("durable manifest '" + path + "' is corrupt: " + what);
}

}  // namespace

void save_manifest(const std::string& dir, const Manifest& m) {
  std::ostringstream os;
  os << kVersionLine << "\n";
  os << "n " << m.n << "\n";
  os << "ranks " << m.nranks << "\n";
  os << "epoch " << m.epoch << "\n";
  os << "wal_gen " << m.wal_gen << "\n";
  os << "wal_processed_seq " << m.wal_processed_seq << "\n";
  os << "wal_base_seq " << m.wal_base_seq << "\n";
  os << "next_file_seq " << m.next_file_seq << "\n";
  for (std::size_t l = 0; l < m.levels.size(); ++l) {
    os << "level " << l;
    for (const std::uint64_t seq : m.levels[l]) os << ' ' << seq;
    os << "\n";
  }
  const std::string body = os.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n",
                crc32(body.data(), body.size()));

  const std::string path = dir + "/MANIFEST";
  const std::string tmp = path + ".tmp";
  File f = File::create(tmp, "manifest.write");
  f.write(body.data(), body.size(), "manifest.write");
  f.write(crc_line, std::string(crc_line).size(), "manifest.write");
  f.sync("manifest.fsync");
  f.close("manifest.fsync");
  rename_file(tmp, path, "manifest.rename");
}

bool load_manifest(const std::string& dir, Manifest& m) {
  const std::string path = dir + "/MANIFEST";
  if (!path_exists(path)) return false;
  const File f = File::open_read(path, "manifest.read.open");
  const std::uint64_t size = f.size("manifest.read.stat");
  std::string text(size, '\0');
  if (size > 0) f.pread_exact(text.data(), size, 0, "manifest.read.body");

  // Split off the trailing crc line and verify it covers everything above.
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      text[crc_pos - 1] != '\n')
    corrupt(path, "missing crc line");
  const std::string body = text.substr(0, crc_pos);
  std::uint32_t stored = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %x", &stored) != 1)
    corrupt(path, "unparseable crc line");
  if (stored != crc32(body.data(), body.size())) corrupt(path, "crc mismatch");

  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) || line != kVersionLine)
    corrupt(path, "unknown version '" + line + "'");
  m = Manifest{};
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "n") {
      ls >> m.n;
    } else if (key == "ranks") {
      ls >> m.nranks;
    } else if (key == "epoch") {
      ls >> m.epoch;
    } else if (key == "wal_gen") {
      ls >> m.wal_gen;
    } else if (key == "wal_processed_seq") {
      ls >> m.wal_processed_seq;
    } else if (key == "wal_base_seq") {
      ls >> m.wal_base_seq;
    } else if (key == "next_file_seq") {
      ls >> m.next_file_seq;
    } else if (key == "level") {
      std::size_t l = 0;
      ls >> l;
      if (m.levels.size() <= l) m.levels.resize(l + 1);
      std::uint64_t seq;
      while (ls >> seq) m.levels[l].push_back(seq);
    } else {
      corrupt(path, "unknown key '" + key + "'");
    }
    if (ls.fail() && !ls.eof()) corrupt(path, "unparseable line '" + line + "'");
  }
  return true;
}

}  // namespace lacc::stream::durable
