// Version-set manifest: the single commit point of the durable layer.
//
// The manifest atomically records {published epoch, live run files per
// level, WAL generation + watermark}.  It is rewritten in full (it is tiny)
// to `MANIFEST.tmp`, fsynced, and renamed over `MANIFEST` — the rename is
// the commit: every run file and WAL record it references was written and
// fsynced *before* the rename, so a crash at any point leaves either the
// old manifest (new files are unreferenced orphans, GC'd at next open) or
// the new one (all referenced state is durable).
//
// Format: line-oriented text ("key value...") with a trailing crc line over
// every preceding byte — human-inspectable and versioned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace lacc::stream::durable {

struct Manifest {
  VertexId n = 0;  ///< vertex count (recovery refuses a mismatched engine)
  int nranks = 0;  ///< rank count (ditto — file layout is per-rank)
  std::uint64_t epoch = 0;  ///< last published epoch
  std::uint64_t wal_gen = 0;
  /// Last ingest seq already folded into `epoch`'s labels; WAL records with
  /// seq > this are pending and re-ingested at recovery.
  std::uint64_t wal_processed_seq = 0;
  /// Last ingest seq compacted into run files when the current WAL
  /// generation started; the generation's records all have seq > this.
  std::uint64_t wal_base_seq = 0;
  std::uint64_t next_file_seq = 1;
  /// levels[l] = run-file seqs at level l, oldest first.  File names are
  /// derived as runs/L<l>-<seq>-r<rank>.run (one file per rank per seq).
  std::vector<std::vector<std::uint64_t>> levels;
};

/// Atomic write via MANIFEST.tmp + fsync + rename (sites manifest.write /
/// manifest.fsync / manifest.rename).
void save_manifest(const std::string& dir, const Manifest& m);

/// Load `dir`/MANIFEST.  Returns false if absent; throws lacc::Error on a
/// corrupt or version-mismatched file.
bool load_manifest(const std::string& dir, Manifest& m);

}  // namespace lacc::stream::durable
