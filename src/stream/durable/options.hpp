// Durability knobs and counters, separated from the storage classes so
// stream/engine.hpp can expose them without pulling the I/O layer into
// every includer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lacc::stream::durable {

enum class FsyncPolicy {
  kPerBatch,  ///< fsync the WAL on every DeltaStore::ingest (no accepted
              ///< batch is ever lost)
  kPerEpoch,  ///< fsync once per advance_epoch, before the manifest commit
              ///< (batches since the last epoch may be lost on crash)
};

struct Options {
  /// Data directory; empty disables durability entirely (memory-only
  /// behavior stays bit-identical).
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kPerBatch;
  /// Entries per run-file block (the CRC + cache granularity).  Small
  /// values force multi-block files in tests.
  std::size_t block_entries = 4096;
  /// Per-rank block-cache capacity in blocks.
  std::size_t cache_blocks = 64;
  /// A level holding this many run files is merged into the next level.
  std::size_t level_fanout = 4;

  bool enabled() const { return !dir.empty(); }
};

/// Plain I/O counters; per-rank instances are thread-confined (each rank
/// thread owns its RankStorage), host instances are host-confined, and the
/// engine sums them after the SPMD session joins — no atomics needed.
struct Counters {
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t run_files_written = 0;
  std::uint64_t run_file_bytes = 0;
  std::uint64_t level_compactions = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  void merge(const Counters& o) {
    wal_records += o.wal_records;
    wal_bytes += o.wal_bytes;
    fsyncs += o.fsyncs;
    run_files_written += o.run_files_written;
    run_file_bytes += o.run_file_bytes;
    level_compactions += o.level_compactions;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
  }
};

/// What StreamEngine::durability_stats() reports (summed over ranks + host).
struct DurabilityStats {
  Counters io;
  std::uint64_t run_files_live = 0;  ///< files referenced by the manifest
  bool recovered = false;            ///< this engine started from a manifest
  std::uint64_t recovered_epoch = 0;
  std::uint64_t replayed_wal_records = 0;  ///< pending records re-ingested
  double recovery_seconds = 0;             ///< wall time of recovery
};

/// Metrics-block form of the stats (shape-compatible with obs::Scalars).
inline std::vector<std::pair<std::string, double>> durability_scalars(
    const DurabilityStats& s) {
  return {
      {"wal_records", static_cast<double>(s.io.wal_records)},
      {"wal_bytes", static_cast<double>(s.io.wal_bytes)},
      {"fsyncs", static_cast<double>(s.io.fsyncs)},
      {"run_files_written", static_cast<double>(s.io.run_files_written)},
      {"run_file_bytes", static_cast<double>(s.io.run_file_bytes)},
      {"level_compactions", static_cast<double>(s.io.level_compactions)},
      {"cache_hits", static_cast<double>(s.io.cache_hits)},
      {"cache_misses", static_cast<double>(s.io.cache_misses)},
      {"run_files_live", static_cast<double>(s.run_files_live)},
      {"recovered", s.recovered ? 1.0 : 0.0},
      {"recovered_epoch", static_cast<double>(s.recovered_epoch)},
      {"replayed_wal_records", static_cast<double>(s.replayed_wal_records)},
      {"recovery_seconds", s.recovery_seconds},
  };
}

}  // namespace lacc::stream::durable
