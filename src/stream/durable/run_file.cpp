#include "stream/durable/run_file.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "support/crc32.hpp"
#include "support/error.hpp"

namespace lacc::stream::durable {

namespace {

constexpr std::uint64_t kRunMagic = 0x314E55524343414Cull;   // "LACCRUN1"
constexpr std::uint64_t kRunEndMagic = 0x31444E4543434C41ull;  // "ALCCEND1"
constexpr std::size_t kCoordBytes = sizeof(dist::CscCoord);
constexpr std::size_t kHeaderBytes = 8 + 8 + 4 + 4;
constexpr std::size_t kIndexEntryBytes = 8 + 4 + 4;
constexpr std::size_t kFooterBytes = 8 + 4 + 4 + 8 + 8;

void put_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

[[noreturn]] void corrupt(const std::string& path, const char* what) {
  throw Error("durable run file '" + path + "' is corrupt: " + what);
}

}  // namespace

void write_run_file(const std::string& path,
                    const std::vector<dist::CscCoord>& coords,
                    std::size_t block_entries, Counters* counters) {
  const std::string tmp = path + ".tmp";
  File f = File::create(tmp, "run.write.block");
  if (block_entries == 0) block_entries = 1;

  unsigned char header[kHeaderBytes];
  put_u64(header, kRunMagic);
  put_u64(header + 8, coords.size());
  put_u32(header + 16, static_cast<std::uint32_t>(block_entries));
  put_u32(header + 20, crc32(header, 20));
  f.write(header, kHeaderBytes, "run.write.block");

  std::vector<unsigned char> index;
  std::uint64_t offset = kHeaderBytes;
  for (std::size_t begin = 0; begin < coords.size(); begin += block_entries) {
    const std::size_t count =
        std::min(block_entries, coords.size() - begin);
    const std::size_t bytes = count * kCoordBytes;
    f.write(coords.data() + begin, bytes, "run.write.block");
    index.resize(index.size() + kIndexEntryBytes);
    unsigned char* e = index.data() + index.size() - kIndexEntryBytes;
    put_u64(e, offset);
    put_u32(e + 8, static_cast<std::uint32_t>(count));
    put_u32(e + 12, crc32(coords.data() + begin, bytes));
    offset += bytes;
  }

  const std::uint64_t index_offset = offset;
  const std::uint32_t block_count =
      static_cast<std::uint32_t>(index.size() / kIndexEntryBytes);
  if (!index.empty()) f.write(index.data(), index.size(), "run.write.index");
  unsigned char footer[kFooterBytes];
  put_u64(footer, index_offset);
  put_u32(footer + 8, block_count);
  put_u32(footer + 12, crc32(index.data(), index.size()));
  put_u64(footer + 16, coords.size());
  put_u64(footer + 24, kRunEndMagic);
  f.write(footer, kFooterBytes, "run.write.index");

  f.sync("run.write.fsync");
  f.close("run.write.fsync");
  rename_file(tmp, path, "run.write.rename");
  counters->run_files_written += 1;
  counters->run_file_bytes += index_offset + index.size() + kFooterBytes;
  counters->fsyncs += 2;  // file + directory
}

const std::vector<dist::CscCoord>* BlockCache::find(std::uint64_t file_seq,
                                                    std::uint32_t block) {
  const auto it = map_.find({file_seq, block});
  if (it == map_.end()) {
    counters_->cache_misses += 1;
    return nullptr;
  }
  counters_->cache_hits += 1;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return &it->second->coords;
}

void BlockCache::insert(std::uint64_t file_seq, std::uint32_t block,
                        std::vector<dist::CscCoord> coords) {
  const Key key{file_seq, block};
  if (map_.find(key) != map_.end()) return;
  while (lru_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, std::move(coords)});
  map_.emplace(key, lru_.begin());
}

void BlockCache::evict_file(std::uint64_t file_seq) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.first == file_seq) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

RunFileReader::RunFileReader(const std::string& path, std::uint64_t file_seq,
                             BlockCache* cache)
    : file_(File::open_read(path, "run.read.open")),
      file_seq_(file_seq),
      cache_(cache) {
  const std::uint64_t file_size = file_.size("run.read.stat");
  if (file_size < kHeaderBytes + kFooterBytes) corrupt(path, "truncated");

  unsigned char header[kHeaderBytes];
  file_.pread_exact(header, kHeaderBytes, 0, "run.read.header");
  if (get_u64(header) != kRunMagic) corrupt(path, "bad magic");
  if (get_u32(header + 20) != crc32(header, 20)) corrupt(path, "header crc");
  entry_count_ = get_u64(header + 8);

  unsigned char footer[kFooterBytes];
  file_.pread_exact(footer, kFooterBytes, file_size - kFooterBytes,
                    "run.read.footer");
  if (get_u64(footer + 24) != kRunEndMagic) corrupt(path, "bad footer magic");
  if (get_u64(footer + 16) != entry_count_)
    corrupt(path, "footer/header entry-count mismatch");
  const std::uint64_t index_offset = get_u64(footer);
  const std::uint32_t block_count = get_u32(footer + 8);
  const std::uint32_t index_crc = get_u32(footer + 12);
  const std::uint64_t index_bytes =
      static_cast<std::uint64_t>(block_count) * kIndexEntryBytes;
  if (index_offset + index_bytes + kFooterBytes != file_size)
    corrupt(path, "index bounds");

  std::vector<unsigned char> raw(index_bytes);
  if (index_bytes > 0)
    file_.pread_exact(raw.data(), index_bytes, index_offset, "run.read.index");
  if (crc32(raw.data(), raw.size()) != index_crc) corrupt(path, "index crc");
  index_.resize(block_count);
  std::uint64_t total = 0;
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const unsigned char* e = raw.data() + b * kIndexEntryBytes;
    index_[b] = {get_u64(e), get_u32(e + 8), get_u32(e + 12)};
    total += index_[b].count;
  }
  if (total != entry_count_) corrupt(path, "index entry-count mismatch");
}

void RunFileReader::read_block(std::uint32_t b,
                               std::vector<dist::CscCoord>& out) {
  LACC_CHECK_MSG(b < index_.size(), "run-file block index out of range");
  if (const auto* cached = cache_->find(file_seq_, b)) {
    out.insert(out.end(), cached->begin(), cached->end());
    return;
  }
  const BlockMeta& meta = index_[b];
  std::vector<dist::CscCoord> coords(meta.count);
  const std::size_t bytes = static_cast<std::size_t>(meta.count) * kCoordBytes;
  if (bytes > 0)
    file_.pread_exact(coords.data(), bytes, meta.offset, "run.read.block");
  if (crc32(coords.data(), bytes) != meta.crc)
    corrupt(file_.path(), "block crc");
  out.insert(out.end(), coords.begin(), coords.end());
  cache_->insert(file_seq_, b, std::move(coords));
}

void RunFileReader::read_all(std::vector<dist::CscCoord>& out) {
  for (std::uint32_t b = 0; b < block_count(); ++b) read_block(b, out);
}

}  // namespace lacc::stream::durable
