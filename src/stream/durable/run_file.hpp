// Immutable sorted run files — the disk tier of DeltaStore's LSM shape.
//
// A run file holds one rank's share of one compacted delta (column-major
// sorted, unique CscCoords), SSTable-style:
//
//   header:  u64 magic | u64 entry_count | u32 block_entries | u32 crc(header)
//   blocks:  entry blocks of <= block_entries coords each (raw, 16B/coord)
//   index:   per block { u64 offset | u32 count | u32 crc32(block bytes) }
//   footer:  u64 index_offset | u32 block_count | u32 crc32(index)
//            | u64 entry_count | u64 magic
//
// Files are written to `<path>.tmp`, fsynced, then renamed into place —
// a run file either exists completely or not at all, and the manifest is
// what makes it live.  Readers validate the footer and index up front and
// each block's CRC on first touch; decoded blocks go through a per-rank
// LRU BlockCache so level merges and recovery scans of overlapping inputs
// do not re-read and re-verify the same bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/dist_mat.hpp"
#include "stream/durable/io.hpp"
#include "stream/durable/options.hpp"

namespace lacc::stream::durable {

/// Write `coords` as a run file at `path` (atomically, via `<path>.tmp`).
void write_run_file(const std::string& path,
                    const std::vector<dist::CscCoord>& coords,
                    std::size_t block_entries, Counters* counters);

/// Per-rank LRU cache of decoded blocks, keyed by (file seq, block index).
/// Thread-confined to the owning rank; counters track hit rate.
class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity, Counters* counters)
      : capacity_(capacity == 0 ? 1 : capacity), counters_(counters) {}

  const std::vector<dist::CscCoord>* find(std::uint64_t file_seq,
                                          std::uint32_t block);
  void insert(std::uint64_t file_seq, std::uint32_t block,
              std::vector<dist::CscCoord> coords);

  /// Drop every block of a file about to be deleted by compaction GC.
  void evict_file(std::uint64_t file_seq);

 private:
  using Key = std::pair<std::uint64_t, std::uint32_t>;
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()(k.first * 0x9E3779B97F4A7C15ull +
                                        k.second);
    }
  };
  struct Entry {
    Key key;
    std::vector<dist::CscCoord> coords;
  };
  std::size_t capacity_;
  Counters* counters_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
};

/// Read side.  Validates header/footer/index at open; blocks decode on
/// demand through the cache.  `file_seq` is the manifest's file id (the
/// cache key), unique per file forever.
class RunFileReader {
 public:
  RunFileReader(const std::string& path, std::uint64_t file_seq,
                BlockCache* cache);

  std::uint64_t entries() const { return entry_count_; }
  std::uint32_t block_count() const {
    return static_cast<std::uint32_t>(index_.size());
  }

  /// Append block `b`'s coords to `out`, CRC-verified.
  void read_block(std::uint32_t b, std::vector<dist::CscCoord>& out);
  void read_all(std::vector<dist::CscCoord>& out);

 private:
  struct BlockMeta {
    std::uint64_t offset;
    std::uint32_t count;
    std::uint32_t crc;
  };
  File file_;
  std::uint64_t file_seq_;
  BlockCache* cache_;
  std::uint64_t entry_count_ = 0;
  std::vector<BlockMeta> index_;
};

}  // namespace lacc::stream::durable
