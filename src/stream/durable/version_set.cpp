#include "stream/durable/version_set.hpp"

#include <filesystem>
#include <set>
#include <sstream>

#include "stream/delta_store.hpp"
#include "stream/durable/io.hpp"
#include "support/error.hpp"

namespace lacc::stream::durable {

namespace fs = std::filesystem;

VersionSet::VersionSet(const Options& options, VertexId n, int nranks)
    : options_(options) {
  make_dirs(options_.dir + "/wal");
  make_dirs(options_.dir + "/runs");
  recovering_ = load_manifest(options_.dir, manifest_);
  if (recovering_) {
    if (manifest_.n != n || manifest_.nranks != nranks) {
      std::ostringstream os;
      os << "durable data dir '" << options_.dir << "' was written by an engine"
         << " with n=" << manifest_.n << " ranks=" << manifest_.nranks
         << "; cannot open it with n=" << n << " ranks=" << nranks;
      throw Error(os.str());
    }
  } else {
    manifest_.n = n;
    manifest_.nranks = nranks;
    save_manifest(options_.dir, manifest_);
    counters_.fsyncs += 2;  // manifest file + directory
  }
  gc();
}

std::string VersionSet::wal_path(std::uint64_t gen, int rank) const {
  return options_.dir + "/wal/gen" + std::to_string(gen) + "-r" +
         std::to_string(rank) + ".wal";
}

std::string VersionSet::run_path(int level, std::uint64_t seq,
                                 int rank) const {
  return options_.dir + "/runs/L" + std::to_string(level) + "-" +
         std::to_string(seq) + "-r" + std::to_string(rank) + ".run";
}

namespace {

/// Push `flush_seq` onto L0, then cascade: any level at fanout merges
/// wholesale into the next.
void cascade(CompactionPlan& p, std::size_t fanout, std::uint64_t& next) {
  if (fanout == 0) fanout = 1;
  for (std::size_t l = 0; l < p.levels_after.size(); ++l) {
    if (p.levels_after[l].size() < fanout) continue;
    CompactionPlan::Merge mg;
    mg.input_level = static_cast<int>(l);
    mg.inputs = p.levels_after[l];
    mg.output_level = static_cast<int>(l) + 1;
    mg.output_seq = next++;
    p.levels_after[l].clear();
    if (p.levels_after.size() <= l + 1) p.levels_after.resize(l + 2);
    p.levels_after[l + 1].push_back(mg.output_seq);
    p.merges.push_back(std::move(mg));
  }
}

}  // namespace

CompactionPlan VersionSet::plan_compaction() const {
  CompactionPlan p;
  p.levels_after = manifest_.levels;
  std::uint64_t next = manifest_.next_file_seq;
  p.flush = true;
  p.flush_seq = next++;
  if (p.levels_after.empty()) p.levels_after.resize(1);
  p.levels_after[0].push_back(p.flush_seq);
  cascade(p, options_.level_fanout, next);
  p.wal_gen = manifest_.wal_gen + 1;
  p.next_file_seq_after = next;
  return p;
}

CompactionPlan VersionSet::plan_recovery() const {
  CompactionPlan p;
  p.levels_after = manifest_.levels;
  std::uint64_t next = manifest_.next_file_seq;
  // The generation holds processed records iff the watermark moved past the
  // generation's base — decidable from the manifest alone, so every rank
  // (and a re-crashed recovery) plans identically.
  if (manifest_.wal_processed_seq > manifest_.wal_base_seq) {
    p.flush = true;
    p.flush_seq = next++;
    if (p.levels_after.empty()) p.levels_after.resize(1);
    p.levels_after[0].push_back(p.flush_seq);
    cascade(p, options_.level_fanout, next);
  }
  p.wal_gen = manifest_.wal_gen + 1;
  p.next_file_seq_after = next;
  return p;
}

WalRecovery VersionSet::read_wals_for_recovery() const {
  WalRecovery out;
  out.per_rank.resize(static_cast<std::size_t>(manifest_.nranks));
  out.replay_limit = ~std::uint64_t{0};
  for (int r = 0; r < manifest_.nranks; ++r) {
    bool torn = false;
    auto records = read_wal(wal_path(manifest_.wal_gen, r), &torn);
    out.any_torn = out.any_torn || torn;
    // Appends were strictly ordered base+1, base+2, ... — any other shape
    // means the file lost fsynced bytes, not just a torn tail.
    std::uint64_t expect = manifest_.wal_base_seq + 1;
    for (const WalRecord& rec : records) {
      if (rec.seq != expect) {
        std::ostringstream os;
        os << "durable WAL '" << wal_path(manifest_.wal_gen, r)
           << "' is corrupt: expected record seq " << expect << ", found "
           << rec.seq;
        throw Error(os.str());
      }
      ++expect;
    }
    const std::uint64_t max_intact =
        manifest_.wal_base_seq + records.size();
    if (max_intact < manifest_.wal_processed_seq) {
      std::ostringstream os;
      os << "durable WAL '" << wal_path(manifest_.wal_gen, r)
         << "' is corrupt: intact records stop at seq " << max_intact
         << " but the manifest watermark is " << manifest_.wal_processed_seq
         << " (fsynced records are missing)";
      throw Error(os.str());
    }
    out.replay_limit = std::min(out.replay_limit, max_intact);
    out.per_rank[static_cast<std::size_t>(r)] = std::move(records);
  }
  if (manifest_.nranks == 0) out.replay_limit = manifest_.wal_processed_seq;
  return out;
}

void VersionSet::commit_epoch(std::uint64_t epoch,
                              std::uint64_t processed_seq, bool applied,
                              const CompactionPlan& plan) {
  manifest_.epoch = epoch;
  manifest_.wal_processed_seq = processed_seq;
  if (applied) {
    manifest_.levels = plan.levels_after;
    manifest_.next_file_seq = plan.next_file_seq_after;
    manifest_.wal_gen = plan.wal_gen;
    // Compaction drains every run, so the new generation starts at the
    // watermark.
    manifest_.wal_base_seq = processed_seq;
  }
  save_manifest(options_.dir, manifest_);
  counters_.fsyncs += 2;
  gc();
}

void VersionSet::commit_recovery(const CompactionPlan& plan) {
  manifest_.levels = plan.levels_after;
  manifest_.next_file_seq = plan.next_file_seq_after;
  manifest_.wal_gen = plan.wal_gen;
  // Processed records were flushed to L0; the fresh generation holds only
  // the re-logged pending records (seq > watermark).
  manifest_.wal_base_seq = manifest_.wal_processed_seq;
  save_manifest(options_.dir, manifest_);
  counters_.fsyncs += 2;
  gc();
}

void VersionSet::set_recovery_info(std::uint64_t epoch,
                                   std::uint64_t replayed_records,
                                   double seconds) {
  recovered_flag_ = true;
  recovered_epoch_ = epoch;
  replayed_records_ = replayed_records;
  recovery_seconds_ = seconds;
}

std::uint64_t VersionSet::live_file_count() const {
  std::uint64_t count = 0;
  for (const auto& level : manifest_.levels)
    count += level.size() * static_cast<std::uint64_t>(manifest_.nranks);
  return count;
}

DurabilityStats VersionSet::base_stats() const {
  DurabilityStats s;
  s.io = counters_;
  s.run_files_live = live_file_count();
  s.recovered = recovered_flag_;
  s.recovered_epoch = recovered_epoch_;
  s.replayed_wal_records = replayed_records_;
  s.recovery_seconds = recovery_seconds_;
  return s;
}

void VersionSet::gc() const {
  // Everything the manifest doesn't reference is an orphan from a crash or
  // a superseded version — delete it.  Both subdirectory scans tolerate
  // foreign files being absent (recovery GC races only with itself).
  std::set<std::string> live;
  for (std::size_t l = 0; l < manifest_.levels.size(); ++l)
    for (const std::uint64_t seq : manifest_.levels[l])
      for (int r = 0; r < manifest_.nranks; ++r)
        live.insert(run_path(static_cast<int>(l), seq, r));
  for (int r = 0; r < manifest_.nranks; ++r)
    live.insert(wal_path(manifest_.wal_gen, r));

  for (const char* sub : {"/wal", "/runs"}) {
    const fs::path dir(options_.dir + sub);
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string p = entry.path().string();
      if (live.find(p) == live.end()) remove_file_if_exists(p);
    }
  }
  remove_file_if_exists(options_.dir + "/MANIFEST.tmp");
}

RankStorage::RankStorage(const VersionSet& vs, int rank, std::uint64_t wal_gen)
    : vs_(&vs),
      rank_(rank),
      cache_(vs.options().cache_blocks, &counters),
      wal_(std::make_unique<WalWriter>(vs.wal_path(wal_gen, rank),
                                       vs.options().fsync, &counters)) {}

void RankStorage::read_live_runs(std::vector<dist::CscCoord>& out) {
  const Manifest& m = vs_->manifest();
  for (std::size_t l = 0; l < m.levels.size(); ++l)
    for (const std::uint64_t seq : m.levels[l]) {
      RunFileReader reader(vs_->run_path(static_cast<int>(l), seq, rank_),
                           seq, &cache_);
      reader.read_all(out);
    }
}

void RankStorage::apply_plan(const CompactionPlan& plan,
                             const std::vector<dist::CscCoord>& flush_coords,
                             VertexId n) {
  if (plan.flush)
    write_run_file(vs_->run_path(0, plan.flush_seq, rank_), flush_coords,
                   vs_->options().block_entries, &counters);
  for (const auto& mg : plan.merges) {
    std::vector<dist::CscCoord> merged;
    for (const std::uint64_t seq : mg.inputs) {
      RunFileReader reader(vs_->run_path(mg.input_level, seq, rank_), seq,
                           &cache_);
      reader.read_all(merged);
    }
    sort_unique_column_major(merged, n);
    write_run_file(vs_->run_path(mg.output_level, mg.output_seq, rank_),
                   merged, vs_->options().block_entries, &counters);
    for (const std::uint64_t seq : mg.inputs) cache_.evict_file(seq);
    counters.level_compactions += 1;
  }
  rotate_wal(plan.wal_gen);
}

void RankStorage::rotate_wal(std::uint64_t gen) {
  wal_ = std::make_unique<WalWriter>(vs_->wal_path(gen, rank_),
                                     vs_->options().fsync, &counters);
}

}  // namespace lacc::stream::durable
