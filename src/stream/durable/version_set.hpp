// VersionSet — the host-side owner of a durable data directory — and
// RankStorage, one rank's thread-confined handle on it.
//
// Layout under Options::dir:
//
//   MANIFEST                     atomic commit point (manifest.hpp)
//   wal/gen<g>-r<rank>.wal       per-rank WAL, one file per generation
//   runs/L<l>-<seq>-r<rank>.run  immutable sorted runs (run_file.hpp)
//
// File *seqs* are global (one per compaction product, covering one file per
// rank); which seqs are live at which level is decided host-side and
// recorded in the manifest, so the per-rank structure is symmetric by
// construction — a CompactionPlan computed once on the host is executed
// identically by every rank thread, the same uniform-decision discipline
// the SPMD collectives already follow.
//
// Crash safety: run files and new WAL generations are orphans until the
// manifest rename publishes them; obsolete files are deleted only after the
// rename, and gc() at open (or after any commit) removes whatever a crash
// stranded in between.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/dist_mat.hpp"
#include "stream/durable/manifest.hpp"
#include "stream/durable/options.hpp"
#include "stream/durable/run_file.hpp"
#include "stream/durable/wal.hpp"

namespace lacc::stream::durable {

/// File-level effects of one compaction (or recovery), decided on the host
/// before the SPMD session so every rank executes the same plan.
struct CompactionPlan {
  bool flush = false;        ///< write a new L0 run from the drained delta
  std::uint64_t flush_seq = 0;
  std::uint64_t wal_gen = 0;  ///< generation to rotate the WAL to
  struct Merge {
    int input_level = 0;
    std::vector<std::uint64_t> inputs;
    int output_level = 0;
    std::uint64_t output_seq = 0;
  };
  std::vector<Merge> merges;  ///< cascading level merges, in execution order
  std::vector<std::vector<std::uint64_t>> levels_after;
  std::uint64_t next_file_seq_after = 0;
};

/// Host-side view of the WAL at recovery time.
struct WalRecovery {
  /// Every intact record per rank, in append order.
  std::vector<std::vector<WalRecord>> per_rank;
  /// Highest seq intact on *every* rank; records past it are dropped (they
  /// were mid-flight when the process died).  >= the manifest watermark.
  std::uint64_t replay_limit = 0;
  bool any_torn = false;
};

class VersionSet {
 public:
  /// Opens (or initializes) the data directory.  Fresh directories get an
  /// epoch-0 manifest; existing manifests flip recovering() and must match
  /// `n`/`nranks`.  Orphaned tmp/unreferenced files are GC'd either way.
  VersionSet(const Options& options, VertexId n, int nranks);

  bool recovering() const { return recovering_; }
  const Manifest& manifest() const { return manifest_; }
  const Options& options() const { return options_; }

  std::string wal_path(std::uint64_t gen, int rank) const;
  std::string run_path(int level, std::uint64_t seq, int rank) const;

  /// Plan this epoch's compaction (applied only if the engine's policy
  /// fires): flush the drained delta to a new L0 run, cascade any level at
  /// fanout, rotate the WAL.
  CompactionPlan plan_compaction() const;

  /// Plan recovery's storage rotation: flush processed WAL records (if the
  /// generation has any) and always rotate to a fresh generation.
  CompactionPlan plan_recovery() const;

  /// Read + validate every rank's WAL for recovery.  Torn tails are
  /// tolerated; a missing record at or below the manifest watermark (it was
  /// fsynced before the manifest committed) is fatal corruption.
  WalRecovery read_wals_for_recovery() const;

  /// Commit one advanced epoch: bump {epoch, watermark}, apply `plan`'s
  /// file rotation if `applied`, rename the manifest, GC obsolete files.
  void commit_epoch(std::uint64_t epoch, std::uint64_t processed_seq,
                    bool applied, const CompactionPlan& plan);

  /// Commit recovery: same epoch, fresh WAL generation (pending records
  /// were re-logged there), flushed/merged levels per `plan`.
  void commit_recovery(const CompactionPlan& plan);

  void set_recovery_info(std::uint64_t epoch, std::uint64_t replayed_records,
                         double seconds);

  std::uint64_t live_file_count() const;

  /// Host-side stats (manifest I/O + recovery info); the engine merges
  /// per-rank RankStorage counters on top.
  DurabilityStats base_stats() const;

 private:
  void gc() const;

  Options options_;
  Manifest manifest_;
  bool recovering_ = false;
  Counters counters_;  ///< host-confined (manifest writes, GC)
  bool recovered_flag_ = false;
  std::uint64_t recovered_epoch_ = 0;
  std::uint64_t replayed_records_ = 0;
  double recovery_seconds_ = 0;
};

/// One rank's durable storage: WAL writer + block cache + plan execution.
/// Created host-side but used only by the owning rank thread between
/// run_spmd joins (plain data, same confinement story as DeltaStore).
class RankStorage {
 public:
  RankStorage(const VersionSet& vs, int rank, std::uint64_t wal_gen);

  WalWriter& wal() { return *wal_; }

  /// Read every manifest-live run file of this rank into `out` (unsorted
  /// concatenation; callers sort+unique).
  void read_live_runs(std::vector<dist::CscCoord>& out);

  /// Execute `plan` for this rank: write the L0 flush from `flush_coords`,
  /// run the level merges, rotate the WAL.
  void apply_plan(const CompactionPlan& plan,
                  const std::vector<dist::CscCoord>& flush_coords, VertexId n);

  Counters counters;

 private:
  void rotate_wal(std::uint64_t gen);

  const VersionSet* vs_;
  int rank_;
  BlockCache cache_;
  std::unique_ptr<WalWriter> wal_;
};

}  // namespace lacc::stream::durable
