#include "stream/durable/wal.hpp"

#include <cstring>

#include "support/crc32.hpp"

namespace lacc::stream::durable {

namespace {

constexpr std::uint32_t kWalMagic = 0x4C57414Cu;  // 'LAWL'
constexpr std::size_t kHeaderBytes = 4 + 8 + 4 + 4;
constexpr std::size_t kCoordBytes = sizeof(dist::CscCoord);
static_assert(kCoordBytes == 16, "CscCoord must be two packed u64s");

void put_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

WalWriter::WalWriter(std::string path, FsyncPolicy policy, Counters* counters)
    : file_(File::create(path, "wal.rotate.create")),
      policy_(policy),
      counters_(counters) {}

void WalWriter::append(std::uint64_t seq,
                       const std::vector<dist::CscCoord>& coords) {
  const std::size_t payload_len = coords.size() * kCoordBytes;
  std::vector<unsigned char> buf(kHeaderBytes + payload_len);
  put_u32(buf.data(), kWalMagic);
  put_u64(buf.data() + 4, seq);
  put_u32(buf.data() + 12, static_cast<std::uint32_t>(coords.size()));
  if (payload_len > 0)
    std::memcpy(buf.data() + kHeaderBytes, coords.data(), payload_len);
  put_u32(buf.data() + 16,
          crc32(buf.data() + kHeaderBytes, payload_len));
  file_.write(buf.data(), buf.size(), "wal.append.write");
  dirty_ = true;
  counters_->wal_records += 1;
  counters_->wal_bytes += buf.size();
  if (policy_ == FsyncPolicy::kPerBatch) {
    file_.sync("wal.append.fsync");
    counters_->fsyncs += 1;
    dirty_ = false;
  }
}

void WalWriter::sync_epoch() {
  if (!dirty_) return;
  file_.sync("wal.epoch.fsync");
  counters_->fsyncs += 1;
  dirty_ = false;
}

void WalWriter::sync_now(const char* site) {
  file_.sync(site);
  counters_->fsyncs += 1;
  dirty_ = false;
}

std::vector<WalRecord> read_wal(const std::string& path, bool* torn) {
  if (torn != nullptr) *torn = false;
  std::vector<WalRecord> records;
  if (!path_exists(path)) return records;
  const File f = File::open_read(path, "wal.read.open");
  const std::uint64_t file_size = f.size("wal.read.stat");

  std::uint64_t off = 0;
  unsigned char header[kHeaderBytes];
  while (off + kHeaderBytes <= file_size) {
    f.pread_exact(header, kHeaderBytes, off, "wal.read.header");
    if (get_u32(header) != kWalMagic) break;  // torn/garbage tail
    const std::uint64_t seq = get_u64(header + 4);
    const std::uint32_t count = get_u32(header + 12);
    const std::uint32_t crc = get_u32(header + 16);
    const std::uint64_t payload_len =
        static_cast<std::uint64_t>(count) * kCoordBytes;
    if (off + kHeaderBytes + payload_len > file_size) break;  // torn payload
    WalRecord rec;
    rec.seq = seq;
    rec.coords.resize(count);
    if (payload_len > 0)
      f.pread_exact(rec.coords.data(), payload_len, off + kHeaderBytes,
                    "wal.read.payload");
    if (crc32(rec.coords.data(), payload_len) != crc) break;  // torn record
    records.push_back(std::move(rec));
    off += kHeaderBytes + payload_len;
  }
  if (torn != nullptr) *torn = off != file_size;
  return records;
}

}  // namespace lacc::stream::durable
