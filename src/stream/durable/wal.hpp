// Per-rank write-ahead log of routed delta runs.
//
// Each DeltaStore::ingest appends one record holding the rank's
// *post-all-to-all* run (the coordinates this rank actually stores), so
// replay needs no collectives: a recovered rank re-materializes its runs
// from its own log alone, in the original global ingest order (the `seq`
// field advances in lockstep across ranks).
//
// Record layout (little-endian, length-prefixed, checksummed):
//
//   u32 magic 'LAWL' | u64 seq | u32 count | u32 crc32(payload)
//   payload: count × CscCoord{u64 row, u64 col}
//
// A torn tail — partial header, partial payload, or CRC mismatch in the
// final record — marks the end of the readable log; it is ignored, never
// fatal (the record was still in flight when the process died, so the
// manifest cannot reference it).  Corruption *before* the manifest's
// watermark is fatal: those records were fsynced before the manifest
// committed, so losing them means the disk lied.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/dist_mat.hpp"
#include "stream/durable/io.hpp"
#include "stream/durable/options.hpp"

namespace lacc::stream::durable {

struct WalRecord {
  std::uint64_t seq = 0;
  std::vector<dist::CscCoord> coords;
};

/// Append side.  One writer per rank per WAL generation; thread-confined to
/// the owning rank thread.
class WalWriter {
 public:
  /// Creates (truncates) the generation file.
  WalWriter(std::string path, FsyncPolicy policy, Counters* counters);

  void append(std::uint64_t seq, const std::vector<dist::CscCoord>& coords);

  /// Per-epoch policy: fsync if anything was appended since the last sync.
  void sync_epoch();

  /// Unconditional fsync (recovery re-log barrier).
  void sync_now(const char* site);

  const std::string& path() const { return file_.path(); }

 private:
  File file_;
  FsyncPolicy policy_;
  Counters* counters_;
  bool dirty_ = false;
};

/// Scan a WAL file.  Returns every intact record in order; `torn` (optional)
/// reports whether a trailing partial/corrupt record was discarded.  A
/// missing file reads as empty (a rank that never ingested after rotation).
std::vector<WalRecord> read_wal(const std::string& path, bool* torn);

}  // namespace lacc::stream::durable
