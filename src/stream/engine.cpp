#include "stream/engine.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/lacc_dist.hpp"
#include "dist/dist_mat.hpp"
#include "dist/dist_vec.hpp"
#include "dist/grid.hpp"
#include "dist/ops.hpp"
#include "stream/delta_store.hpp"
#include "stream/durable/version_set.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace lacc::stream {

using dist::CommTuning;
using dist::CscCoord;
using dist::DistCsc;
using dist::DistVec;
using dist::ProcGrid;
using dist::Tuple;

namespace {

/// Same option -> tuning mapping as lacc_dist, so the incremental kernels
/// share the static path's communication behavior (hotspot broadcast,
/// hypercube all-to-all).
CommTuning tuning_from(const core::LaccOptions& options) {
  CommTuning tuning;
  tuning.alltoall = options.hypercube_alltoall
                        ? sim::AllToAllAlgo::kSparseHypercube
                        : sim::AllToAllAlgo::kPairwise;
  tuning.hotspot_broadcast = options.hotspot_broadcast;
  tuning.hotspot_threshold = options.hotspot_threshold;
  tuning.force_dense = !options.use_sparse_vectors;
  return tuning;
}

constexpr auto kSum = [](std::uint64_t a, std::uint64_t b) { return a + b; };

/// Recompute labels + comp_size from the base via the static algorithm and
/// re-canonicalize.  Shared by the full-rebuild path and recovery — the
/// canonical-label contract makes the result independent of how the base
/// was accumulated, which is exactly why recovery-by-recompute republishes
/// bit-identical labels.
int rebuild_labels(ProcGrid& grid, sim::Comm& world,
                   const core::LaccOptions& options, VertexId n, DistCsc& base,
                   DistVec<VertexId>& labels,
                   DistVec<std::uint64_t>& comp_size) {
  core::CcResult cc;
  core::lacc_dist_body(grid, base, options, cc);
  const auto canon = core::normalize_labels(cc.parent);
  for (const VertexId g : labels.owned()) labels.set(g, canon[g]);
  comp_size.clear();
  for (VertexId v = 0; v < n; ++v) {
    const VertexId r = canon[v];
    if (comp_size.owns(r)) comp_size.set(r, comp_size.get_or(r, 0) + 1);
  }
  world.charge_compute(static_cast<double>(n) +
                       static_cast<double>(labels.local_size()));
  return cc.iterations;
}

}  // namespace

/// Persistent distributed state of one virtual rank, reused across SPMD
/// sessions (all members are plain data; the conformance layer's block
/// fences verify only the owning rank ever touches them).
struct StreamEngine::RankSlot {
  /// Compacted DCSC adjacency.  Held by shared_ptr so freeze_view() can
  /// hand out zero-copy immutable views: a frozen block is never mutated —
  /// compaction copies-on-write when a view still references the base
  /// (use_count > 1) and swings the pointer to the fresh copy instead.
  std::shared_ptr<DistCsc> base;
  std::optional<DeltaStore> delta;      ///< uncompacted edge runs
  std::optional<DistVec<VertexId>> labels;  ///< canonical min-id labels, dense
  /// Component size stored exactly at current roots (drives the dirty
  /// fraction without a global scan).
  std::optional<DistVec<std::uint64_t>> comp_size;
  /// Durable WAL + run files + block cache (null when memory-only).
  std::unique_ptr<durable::RankStorage> store;
};

StreamEngine::StreamEngine(VertexId n, int nranks,
                           const sim::MachineModel& machine,
                           StreamOptions options)
    : n_(n), nranks_(nranks), machine_(machine), options_(std::move(options)) {
  int q = 0;
  while (q * q < nranks_) ++q;
  LACC_CHECK_MSG(nranks_ >= 1 && q * q == nranks_,
                 "stream engine rank count " << nranks_
                                             << " is not a perfect square");
  slots_.resize(static_cast<std::size_t>(nranks_));
  for (auto& slot : slots_) slot = std::make_unique<RankSlot>();

  // Durable setup happens host-side before the SPMD session: open/init the
  // data directory, and if a manifest exists, pre-read every rank's WAL and
  // plan the recovery storage rotation (uniform inputs for the rank
  // threads, like every other collective decision).
  if (options_.durable.enabled())
    vs_ = std::make_unique<durable::VersionSet>(options_.durable, n_, nranks_);
  const bool recover = vs_ != nullptr && vs_->recovering();
  durable::CompactionPlan rplan;
  durable::WalRecovery wals;
  if (recover) {
    wals = vs_->read_wals_for_recovery();
    rplan = vs_->plan_recovery();
  }
  const std::uint64_t wal_gen =
      vs_ == nullptr ? 0 : (recover ? rplan.wal_gen : vs_->manifest().wal_gen);

  Timer recovery_timer;
  std::vector<VertexId> flat_labels;
  std::uint64_t sh_replayed = 0, sh_pending_undirected = 0;

  const graph::EdgeList empty(n_);
  sim::run_spmd(nranks_, machine_, [&](sim::Comm& world) {
    ProcGrid grid(world);
    const int rank = world.rank();
    RankSlot& slot = *slots_[static_cast<std::size_t>(rank)];
    slot.base = std::make_shared<DistCsc>(grid, empty);
    slot.delta.emplace(grid, n_);
    slot.labels.emplace(grid, n_);
    slot.comp_size.emplace(grid, n_);
    for (const VertexId g : slot.labels->owned()) {
      slot.labels->set(g, g);
      slot.comp_size->set(g, 1);
    }
    if (vs_ != nullptr) {
      slot.store =
          std::make_unique<durable::RankStorage>(*vs_, rank, wal_gen);
      slot.delta->attach_storage(slot.store.get());
    }
    if (!recover) return;

    // --- Recovery.  The modeled time of this session is deliberately not
    // added to total_modeled_seconds(): the work was already paid for (and
    // recorded) by the run that originally published the epoch.
    sim::Region region(world, "durable-recover");
    const durable::Manifest& mf = vs_->manifest();

    // 1. Rebuild this rank's base block: live run files plus the WAL
    //    records the manifest watermark already folded into the labels.
    std::vector<CscCoord> coords;
    slot.store->read_live_runs(coords);
    std::vector<CscCoord> flush_coords;
    for (const auto& rec : wals.per_rank[static_cast<std::size_t>(rank)]) {
      if (rec.seq <= mf.wal_processed_seq)
        flush_coords.insert(flush_coords.end(), rec.coords.begin(),
                            rec.coords.end());
    }
    sort_unique_column_major(flush_coords, n_);
    // Always applied: even with nothing to flush, recovery rotates to a
    // fresh WAL generation (the old one may have a torn tail).
    slot.store->apply_plan(rplan, flush_coords, n_);
    coords.insert(coords.end(), flush_coords.begin(), flush_coords.end());
    sort_unique_column_major(coords, n_);
    slot.base->merge_delta(grid, coords);

    // 2. Labels from scratch over the recovered base; bit-identical to the
    //    pre-crash publication by the canonical-label contract.
    if (slot.base->global_nnz() != 0)
      rebuild_labels(grid, world, options_.lacc, n_, *slot.base, *slot.labels,
                     *slot.comp_size);

    // 3. Re-ingest pending WAL records — seqs past the watermark that every
    //    rank has intact — as pending runs, re-logged into the fresh
    //    generation so a second crash recovers them too.  Records past the
    //    replay limit were mid-flight at the crash and are dropped (their
    //    batch was never visible to any published epoch).
    std::uint64_t replayed = 0, pending_undirected = 0;
    for (auto& rec : wals.per_rank[static_cast<std::size_t>(rank)]) {
      if (rec.seq <= mf.wal_processed_seq || rec.seq > wals.replay_limit)
        continue;
      for (const CscCoord& c : rec.coords)
        if (c.row < c.col) ++pending_undirected;
      slot.store->wal().append(rec.seq, rec.coords);
      slot.delta->restore_run(std::move(rec.coords));
      ++replayed;
    }
    if (replayed > 0) slot.store->wal().sync_now("wal.append.fsync");
    slot.delta->set_next_seq(wals.replay_limit);

    const std::uint64_t replayed_total = world.allreduce(replayed, kSum);
    pending_undirected = world.allreduce(pending_undirected, kSum);
    auto flat = dist::to_global(grid, *slot.labels, kNoVertex);
    if (rank == 0) {
      flat_labels = std::move(flat);
      sh_replayed = replayed_total;
      sh_pending_undirected = pending_undirected;
    }
  });

  if (recover) {
    // Commit the rotation: fresh WAL generation (pending records re-logged
    // and fsynced above), processed records flushed into the levels.
    vs_->commit_recovery(rplan);
    epoch_ = vs_->manifest().epoch;
    recovered_ = true;
    recovered_epoch_ = epoch_;
    current_labels_ = std::move(flat_labels);
    components_ = 0;
    for (VertexId v = 0; v < n_; ++v) {
      if (current_labels_[v] == v) ++components_;
      // Seed the version chains at the recovered epoch so query_at() works
      // from recovered_epoch_ onward (earlier history is gone; query_at
      // refuses epochs before it).
      if (current_labels_[v] != v)
        versions_[v].emplace_back(epoch_, current_labels_[v]);
    }
    pending_batch_edges_ = sh_pending_undirected;
    vs_->set_recovery_info(epoch_, sh_replayed, recovery_timer.seconds());
  } else {
    components_ = n_;
    current_labels_.resize(n_);
    for (VertexId v = 0; v < n_; ++v) current_labels_[v] = v;
  }
}

StreamEngine::~StreamEngine() = default;

graph::CanonicalizeStats StreamEngine::ingest(graph::EdgeList batch) {
  LACC_CHECK_MSG(batch.n == n_, "batch vertex count " << batch.n
                                                      << " != engine's " << n_);
  const graph::CanonicalizeStats stats = graph::canonicalize_counted(batch);
  // Sharded engines park cross-shard edges instead of folding them in: the
  // graph (and therefore the canonical-label contract) covers owned-owned
  // edges only, and the parked edges surface at the next epoch commit via
  // take_extracted_boundary() for the router's cross-shard reconcile.
  if (options_.shard_filter_enabled()) {
    std::size_t keep = 0;
    for (const graph::Edge& e : batch.edges) {
      if (options_.shards.owner(e.u) == options_.shard &&
          options_.shards.owner(e.v) == options_.shard)
        batch.edges[keep++] = e;
      else
        pending_boundary_.push_back(e);
    }
    batch.edges.resize(keep);
  }
  pending_batch_edges_ += batch.edges.size();
  // Nothing survived canonicalization (empty batch, or all self-loops and
  // duplicates) or the shard filter: skip the SPMD session entirely — no
  // modeled time, no delta run, no WAL record.  Uniform by construction
  // (one host-side decision).
  if (batch.edges.empty()) return stats;

  const auto spmd = sim::run_spmd(nranks_, machine_, [&](sim::Comm& world) {
    ProcGrid grid(world);
    sim::Region region(world, "stream-ingest",
                       static_cast<std::int64_t>(epoch_ + 1));
    RankSlot& slot = *slots_[static_cast<std::size_t>(world.rank())];
    slot.delta->ingest(grid, batch);
  });
  pending_ingest_modeled_ += spmd.sim_seconds;
  return stats;
}

EpochStats StreamEngine::advance_epoch() {
  EpochStats st;
  st.epoch = ++epoch_;
  st.batch_edges = pending_batch_edges_;
  st.ingest_modeled_seconds = pending_ingest_modeled_;
  pending_batch_edges_ = 0;
  pending_ingest_modeled_ = 0;
  // Boundary-edge extraction at epoch commit: parked cross-shard edges
  // become visible to take_extracted_boundary() exactly when the epoch that
  // ingested them commits, so the router never reconciles an edge whose
  // ticket has not yet reached the shard's applied watermark.
  if (!pending_boundary_.empty()) {
    st.boundary_extracted = pending_boundary_.size();
    extracted_boundary_.insert(extracted_boundary_.end(),
                               pending_boundary_.begin(),
                               pending_boundary_.end());
    pending_boundary_.clear();
  }

  const CommTuning tuning = tuning_from(options_.lacc);
  const VertexId n = n_;

  // Durable epochs precompute the compaction's file-level plan host-side;
  // whether it applies is decided (uniformly) inside the session.
  durable::CompactionPlan plan;
  if (vs_ != nullptr) plan = vs_->plan_compaction();

  // Written by the matching rank / by rank 0 only; read after the join.
  std::vector<double> modeled(static_cast<std::size_t>(nranks_), 0.0);
  std::vector<VertexId> flat_labels;
  std::uint64_t sh_cross = 0, sh_dirty = 0, sh_last_seq = 0;
  EdgeId sh_delta_nnz = 0;
  bool sh_full = false, sh_compact = false, sh_applied = false;
  int sh_iterations = 0;

  auto spmd = sim::run_spmd(nranks_, machine_, [&](sim::Comm& world) {
    ProcGrid grid(world);
    RankSlot& slot = *slots_[static_cast<std::size_t>(world.rank())];
    DeltaStore& delta = *slot.delta;
    DistVec<VertexId>& labels = *slot.labels;
    DistVec<std::uint64_t>& comp_size = *slot.comp_size;
    sim::Region epoch_region(world, "epoch",
                             static_cast<std::int64_t>(st.epoch));

    // --- Filter pending edges down to cross-component edges: one batched
    // label lookup over both endpoints of every pending undirected edge.
    // `cross` holds (lo, hi) pairs of the endpoints' current labels.
    std::vector<std::pair<VertexId, VertexId>> cross;
    std::uint64_t cross_total = 0;
    {
      sim::Region region(world, "stream-filter");
      std::vector<VertexId> req;
      delta.for_each_pending([&](const CscCoord& e) {
        if (e.row < e.col) {  // each undirected edge exactly once globally
          req.push_back(e.row);
          req.push_back(e.col);
        }
      });
      const auto got =
          dist::gather_values(grid, labels, req, tuning, "stream_filter");
      for (std::size_t k = 0; k + 1 < got.size(); k += 2) {
        LACC_CHECK(got[k].second && got[k + 1].second);
        const VertexId lu = got[k].first, lv = got[k + 1].first;
        if (lu != lv)
          cross.emplace_back(std::min(lu, lv), std::max(lu, lv));
      }
      world.charge_compute(static_cast<double>(got.size()));
      cross_total = world.allreduce(
          static_cast<std::uint64_t>(cross.size()), kSum);
    }
    delta.mark_pending_processed();

    // --- Dirty fraction: mark the touched roots, sum their component
    // sizes.  This is what decides incremental vs full recompute.
    std::uint64_t dirty = 0;
    if (cross_total != 0) {
      sim::Region region(world, "stream-dirty");
      DistVec<std::uint8_t> touched(grid, n);
      std::vector<VertexId> roots;
      roots.reserve(cross.size() * 2);
      for (const auto& [lo, hi] : cross) {
        roots.push_back(lo);
        roots.push_back(hi);
      }
      dist::scatter_set(grid, touched, std::move(roots), 1, tuning);
      std::uint64_t local = 0;
      touched.for_each_stored([&](VertexId g, std::uint8_t) {
        LACC_DCHECK(comp_size.has(g));
        local += comp_size.get_or(g, 0);
      });
      world.charge_compute(static_cast<double>(touched.local_nvals()));
      dirty = world.allreduce(local, kSum);
    }

    // --- Policy (uniform across ranks: all inputs are global reductions).
    const double dirty_frac =
        n == 0 ? 0.0 : static_cast<double>(dirty) / static_cast<double>(n);
    const bool full =
        cross_total != 0 && dirty_frac > options_.rebuild_threshold;
    const EdgeId delta_nnz = delta.global_nnz(grid);
    const bool compact =
        full || static_cast<double>(delta_nnz) >
                    options_.compaction_factor *
                        static_cast<double>(std::max<EdgeId>(
                            slot.base->global_nnz(), 1));
    if (compact && delta_nnz != 0) {
      sim::Region region(world, "stream-compact");
      const std::vector<CscCoord> drained = delta.drain_merged(grid);
      // Durable: persist the drained delta as a new L0 run (plus any level
      // merges the plan cascades) before it disappears into the base, and
      // rotate the WAL — its records are all represented in run files now.
      // Disk I/O is host work, outside the modeled cost.
      if (slot.store != nullptr) slot.store->apply_plan(plan, drained, n);
      // Copy-on-write: a frozen GraphView may still hold this block, and
      // frozen blocks are immutable.  The check is per-rank and local (no
      // collective inside the branch), so it tolerates a view being
      // destroyed concurrently on another thread: any *live* view keeps
      // every rank's count above 1 for the whole epoch, and a dying view's
      // blocks are no longer read by anyone either way.
      if (slot.base.use_count() > 1)
        slot.base = std::make_shared<DistCsc>(*slot.base);
      slot.base->merge_delta(grid, drained);
    }

    int iterations = 0;
    if (full) {
      // --- Fallback: the whole graph is in the base now; run the static
      // algorithm and re-canonicalize.  Every rank computes the same
      // normalized vector from the gathered parents.
      sim::Region region(world, "stream-rebuild");
      iterations = rebuild_labels(grid, world, options_.lacc, n, *slot.base,
                                  labels, comp_size);
    } else if (cross_total != 0) {
      // --- Incremental path: Shiloach–Vishkin on the contracted multigraph
      // whose vertices are current roots and whose edges are the cross
      // pairs.  Each round hooks larger roots onto smaller ones (the
      // hook-to-root guard keeps the forest flat-ish) and pointer-jumps
      // every remaining pair one level; a pair retires when its endpoints'
      // labels agree.
      sim::Region region(world, "stream-inc");
      while (true) {
        ++iterations;
        LACC_CHECK_MSG(iterations <= options_.lacc.max_iterations,
                       "incremental hooking failed to converge");
        std::vector<Tuple<VertexId>> hooks;
        hooks.reserve(cross.size());
        for (const auto& [lo, hi] : cross) hooks.push_back({hi, lo});
        dist::scatter_assign_min(grid, labels, std::move(hooks), tuning,
                                 /*only_if_root=*/true);

        std::vector<VertexId> req;
        req.reserve(cross.size() * 2);
        for (const auto& [lo, hi] : cross) {
          req.push_back(lo);
          req.push_back(hi);
        }
        const auto got =
            dist::gather_values(grid, labels, req, tuning, "stream_inc");
        std::size_t keep = 0;
        for (std::size_t k = 0; k < cross.size(); ++k) {
          const VertexId lu = got[2 * k].first, lv = got[2 * k + 1].first;
          if (lu != lv) cross[keep++] = {std::min(lu, lv), std::max(lu, lv)};
        }
        cross.resize(keep);
        world.charge_compute(static_cast<double>(got.size()));
        if (!dist::global_any(grid, !cross.empty())) break;
      }

      // Shortcut: flatten the hook chains left on old roots, halving path
      // lengths per round until every old root points at its final root.
      {
        sim::Region shortcut(world, "stream-shortcut");
        while (true) {
          std::vector<VertexId> targets;
          std::vector<VertexId> req;
          comp_size.for_each_stored([&](VertexId g, std::uint64_t) {
            const VertexId l = labels.at(g);
            if (l != g) {
              targets.push_back(g);
              req.push_back(l);
            }
          });
          const auto got = dist::gather_values(grid, labels, req, tuning,
                                               "stream_shortcut");
          bool changed = false;
          for (std::size_t k = 0; k < targets.size(); ++k) {
            LACC_CHECK(got[k].second);
            if (got[k].first != labels.at(targets[k])) {
              labels.set(targets[k], got[k].first);
              changed = true;
            }
          }
          world.charge_compute(static_cast<double>(targets.size()) * 2);
          if (!dist::global_any(grid, changed)) break;
        }
      }

      // Relabel: broadcast the (old root -> final root, size) moves, then
      // each rank rewrites its owned labels with one local hash lookup per
      // element and transfers component sizes to the surviving roots.
      {
        sim::Region relabel(world, "stream-relabel");
        struct Moved {
          VertexId old_root;
          VertexId new_root;
          std::uint64_t size;
        };
        std::vector<Moved> moved;
        comp_size.for_each_stored([&](VertexId g, std::uint64_t s) {
          const VertexId l = labels.at(g);
          if (l != g) moved.push_back({g, l, s});
        });
        const std::vector<Moved> all_moved = world.allgatherv(moved);
        std::unordered_map<VertexId, VertexId> remap;
        remap.reserve(all_moved.size());
        for (const Moved& m : all_moved) remap.emplace(m.old_root, m.new_root);
        for (const VertexId g : labels.owned()) {
          const auto it = remap.find(labels.at(g));
          if (it != remap.end()) labels.set(g, it->second);
        }
        for (const Moved& m : all_moved) {
          if (comp_size.owns(m.new_root))
            comp_size.set(m.new_root,
                          comp_size.get_or(m.new_root, 0) + m.size);
          if (comp_size.owns(m.old_root)) comp_size.remove(m.old_root);
        }
        world.charge_compute(static_cast<double>(labels.local_size()) +
                             static_cast<double>(all_moved.size()) * 2);
      }
    }

    // Per-epoch fsync policy: make this epoch's WAL records durable before
    // the host commits the manifest below (no-op under per-batch policy or
    // when the WAL just rotated).  Host-side disk work, not modeled time.
    if (slot.store != nullptr) slot.store->wal().sync_epoch();

    // Modeled epoch time stops here; the label gather below is result
    // extraction (same convention as lacc_dist_body).
    modeled[static_cast<std::size_t>(world.rank())] = world.state().sim_time;
    auto flat = dist::to_global(grid, labels, kNoVertex);
    if (world.rank() == 0) {
      flat_labels = std::move(flat);
      sh_cross = cross_total;
      sh_dirty = dirty;
      sh_delta_nnz = compact ? 0 : delta_nnz;
      sh_full = full;
      sh_compact = compact;
      sh_applied = compact && delta_nnz != 0;
      sh_last_seq = delta.last_seq();
      sh_iterations = iterations;
    }
  });

  // Manifest commit: the epoch becomes the durable truth *before* any
  // caller (serve::Server publishes its snapshot after this returns) can
  // observe it, so every visible epoch survives a crash.  A crash before
  // this line recovers to the previous manifest; after it, to this epoch.
  if (vs_ != nullptr) vs_->commit_epoch(st.epoch, sh_last_seq, sh_applied, plan);

  st.cross_edges = sh_cross;
  st.dirty_vertices = sh_dirty;
  st.delta_nnz = sh_delta_nnz;
  st.full_rebuild = sh_full;
  st.compacted = sh_compact;
  st.iterations = sh_iterations;
  st.advance_modeled_seconds = *std::max_element(modeled.begin(), modeled.end());
  total_modeled_ += st.modeled_seconds();

  // Host-side epoch bookkeeping: diff against the previous snapshot to
  // extend the version chains, then count surviving roots.
  LACC_CHECK(flat_labels.size() == current_labels_.size());
  std::uint64_t components = 0;
  for (VertexId v = 0; v < n_; ++v) {
    if (flat_labels[v] == v) ++components;
    if (flat_labels[v] != current_labels_[v]) {
      versions_[v].emplace_back(st.epoch, flat_labels[v]);
      ++st.relabeled_vertices;
    }
  }
  st.merges = components_ - components;
  st.components = components;
  components_ = components;
  current_labels_ = std::move(flat_labels);
  last_spmd_ = std::move(spmd);
  history_.push_back(st);
  return st;
}

kernel::GraphView StreamEngine::freeze_view() {
  // Host-side peek at the processed-run watermark (fences are no-ops
  // outside run_spmd).  All-or-nothing across ranks: compaction and
  // mark_pending_processed are collective, so either every rank has
  // processed runs resident or none does.
  bool resident = false;
  for (const auto& slot : slots_)
    if (slot->delta->processed_nnz() != 0) resident = true;

  std::vector<std::shared_ptr<const dist::DistCsc>> blocks(slots_.size());
  double freeze_modeled = 0;
  if (!resident) {
    // Zero-copy: share the base blocks; the next compaction copies-on-write
    // while this view is alive.
    for (std::size_t r = 0; r < slots_.size(); ++r)
      blocks[r] = slots_[r]->base;
  } else {
    // Processed runs are reflected in the labels but not the DCSC arrays;
    // a faithful view of the published epoch folds them into a merged copy.
    const auto spmd = sim::run_spmd(nranks_, machine_, [&](sim::Comm& world) {
      ProcGrid grid(world);
      sim::Region region(world, "kernel-freeze",
                         static_cast<std::int64_t>(epoch_));
      RankSlot& slot = *slots_[static_cast<std::size_t>(world.rank())];
      auto merged = std::make_shared<DistCsc>(*slot.base);
      merged->merge_delta(grid, slot.delta->processed_coords());
      blocks[static_cast<std::size_t>(world.rank())] = std::move(merged);
    });
    freeze_modeled = spmd.sim_seconds;
  }
  return kernel::GraphView(n_, nranks_, machine_, epoch_, std::move(blocks),
                           freeze_modeled);
}

std::vector<graph::Edge> StreamEngine::take_extracted_boundary() {
  std::vector<graph::Edge> out;
  out.swap(extracted_boundary_);
  return out;
}

durable::DurabilityStats StreamEngine::durability_stats() const {
  durable::DurabilityStats s;
  if (vs_ == nullptr) return s;
  s = vs_->base_stats();
  // Rank counters are plain data read after the last session joined — the
  // same confinement rule as every other RankSlot member.
  for (const auto& slot : slots_)
    if (slot->store != nullptr) s.io.merge(slot->store->counters);
  return s;
}

VertexId StreamEngine::component_of(VertexId v) const {
  // Query errors are user input errors, not internal invariants: throw a
  // clean message (no LACC_CHECK preamble) the CLI can print verbatim.
  if (v >= n_)
    throw Error("stream query: vertex " + std::to_string(v) +
                " out of range [0, " + std::to_string(n_) + ")");
  return current_labels_[v];
}

std::vector<VertexId> StreamEngine::query(
    std::span<const VertexId> vertices) const {
  std::vector<VertexId> out;
  out.reserve(vertices.size());
  for (const VertexId v : vertices) out.push_back(component_of(v));
  return out;
}

std::vector<VertexId> StreamEngine::query_at(
    std::uint64_t at, std::span<const VertexId> vertices) const {
  if (at > epoch_)
    throw Error("stream query: epoch " + std::to_string(at) +
                " has not happened yet (current epoch " +
                std::to_string(epoch_) + ")");
  // Version chains before the recovered epoch died with the old process
  // (the manifest persists labels' *inputs*, not their history).
  if (recovered_ && at < recovered_epoch_)
    throw Error("stream query: epoch " + std::to_string(at) +
                " predates recovery (earliest recovered epoch " +
                std::to_string(recovered_epoch_) + ")");
  std::vector<VertexId> out;
  out.reserve(vertices.size());
  for (const VertexId v : vertices) {
    if (v >= n_)
      throw Error("stream query: vertex " + std::to_string(v) +
                  " out of range [0, " + std::to_string(n_) + ")");
    VertexId label = v;  // initial state: every vertex its own component
    const auto chain = versions_.find(v);
    if (chain != versions_.end()) {
      for (const auto& [e, l] : chain->second) {
        if (e > at) break;
        label = l;
      }
    }
    out.push_back(label);
  }
  return out;
}

}  // namespace lacc::stream
