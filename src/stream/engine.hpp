// lacc::stream — incremental connected components over batched edge
// updates, with an epoch-versioned query API.
//
// The paper computes CC once over a static graph; its sparsity optimization
// (Section IV-B: process only non-converged vertices) is really an
// incremental-computation argument.  StreamEngine takes it to its logical
// end: between epochs the graph only grows by edge batches, so instead of
// recomputing from scratch it
//
//   1. filters each batch down to *cross-component* edges with one batched
//      distributed label lookup (almost all edges of a mature graph land
//      inside an existing component and cost nothing further);
//   2. runs hook/shortcut iterations — the same Shiloach–Vishkin machinery
//      as LACC, warm-started from the previous epoch's labels — on just the
//      induced active set of component roots;
//   3. falls back to a full lacc_dist recompute when the touched component
//      mass ("dirty fraction") exceeds a threshold, where the incremental
//      pass would degenerate into the full algorithm anyway.
//
// New edges live in the dist layer's LSM-style DeltaStore until a
// compaction threshold folds them into the DCSC base (DistCsc::merge_delta)
// — the full-rebuild path always compacts first so lacc_dist_body sees the
// whole accumulated graph.
//
// Labels are *canonical*: label[v] is the minimum vertex id of v's
// component (normalize_labels form), at every epoch.  This is the
// determinism contract — an engine label vector is bit-identical to
// normalize_labels(lacc_dist(accumulated graph).parent) regardless of rank
// count, option flags, or the batch schedule that produced the epoch (see
// docs/STREAMING.md for the invariant argument).
//
// Modeled-time accounting follows lacc_dist's convention: per-epoch modeled
// seconds cover ingestion routing and the epoch's collectives, but not the
// final host-side label gather (result extraction).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/options.hpp"
#include "graph/edge_list.hpp"
#include "kernel/view.hpp"
#include "sim/machine.hpp"
#include "sim/runtime.hpp"
#include "stream/durable/options.hpp"
#include "support/partition.hpp"
#include "support/types.hpp"

namespace lacc::stream {

namespace durable {
class VersionSet;
}

/// Streaming policy knobs on top of the static algorithm's LaccOptions.
struct StreamOptions {
  /// Options for the full-recompute path and the comm tuning (hotspot
  /// broadcast, hypercube all-to-all, ...) shared by the incremental
  /// kernels.
  core::LaccOptions lacc;

  /// Fall back to a full lacc_dist recompute when the vertex mass of
  /// components touched by cross-component edges exceeds this fraction of
  /// n.  0 forces a rebuild on every epoch with cross edges (the
  /// from-scratch baseline bench_stream compares against); 1 disables the
  /// fallback.
  double rebuild_threshold = 0.15;

  /// Compact delta runs into the DCSC base once their global entry count
  /// exceeds this fraction of the base's nnz — the LSM write-amplification
  /// trade-off.  Rebuild epochs always compact first.
  double compaction_factor = 0.25;

  /// Durability (disabled unless durable.dir is set): per-rank WAL on
  /// ingest, run files at compaction, manifest recovery at construction.
  /// Memory-only behavior — labels, per-epoch stats, modeled seconds — is
  /// bit-identical whether or not this is enabled; durability only adds
  /// host-side disk I/O outside the cost model.
  durable::Options durable;

  /// Sharded serving (lacc::shard): when `shards.shards > 1` this engine is
  /// one shard of a partitioned vertex space.  Ingested edges whose
  /// endpoints are not both owned by `shard` never enter the graph; they
  /// are parked and extracted at the next epoch commit (see
  /// take_extracted_boundary) so the router can feed them to the cross-shard
  /// reconcile.  The engine's canonical-label contract then holds over the
  /// *owned-owned* edge prefix.
  ShardPartition shards;
  int shard = 0;  ///< this engine's shard id in [0, shards.shards)

  bool shard_filter_enabled() const { return shards.shards > 1; }
};

/// What one advance_epoch() did (the streaming analogue of
/// core::IterationRecord; drives the CLI table and the per-epoch metrics).
struct EpochStats {
  std::uint64_t epoch = 0;        ///< 1-based; epoch 0 is the empty graph
  EdgeId batch_edges = 0;         ///< canonical edges ingested since last epoch
  EdgeId delta_nnz = 0;           ///< global delta entries resident after epoch
  std::uint64_t cross_edges = 0;  ///< batch edges joining distinct components
  std::uint64_t dirty_vertices = 0;  ///< vertex mass of touched components
  std::uint64_t merges = 0;          ///< components merged away this epoch
  std::uint64_t components = 0;      ///< components after the epoch
  std::uint64_t relabeled_vertices = 0;  ///< labels that changed
  std::uint64_t boundary_extracted = 0;  ///< cross-shard edges parked this epoch
  bool full_rebuild = false;  ///< took the lacc_dist fallback path
  bool compacted = false;     ///< delta runs merged into the DCSC base
  int iterations = 0;  ///< hook/shortcut rounds (or lacc_dist iterations)
  double ingest_modeled_seconds = 0;   ///< routing cost of this epoch's batches
  double advance_modeled_seconds = 0;  ///< epoch collectives (critical path)

  double modeled_seconds() const {
    return ingest_modeled_seconds + advance_modeled_seconds;
  }
};

/// Incremental distributed connected components.  One instance owns the
/// persistent per-rank state (DCSC base + delta runs + label and
/// component-size vectors); each public operation spawns one SPMD session
/// over the same virtual ranks, so the modeled costs compose exactly like
/// repeated lacc_dist runs on one allocation.
///
/// Not thread-safe; collective state is owned by the engine, queries are
/// host-side reads of the epoch snapshot.
class StreamEngine {
 public:
  /// `nranks` must be a positive perfect square (the grid constraint).
  StreamEngine(VertexId n, int nranks, const sim::MachineModel& machine,
               StreamOptions options = {});
  ~StreamEngine();
  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  VertexId num_vertices() const { return n_; }
  int ranks() const { return nranks_; }
  const StreamOptions& options() const { return options_; }

  /// Epochs advanced so far; epoch 0 is the initial empty graph.
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t num_components() const { return components_; }

  /// Queue a batch of edges (collective ingestion into the delta store).
  /// The batch is canonicalized first; labels do not change until the next
  /// advance_epoch().  Returns what canonicalization dropped.
  graph::CanonicalizeStats ingest(graph::EdgeList batch);

  /// Close the current batch window: fold every pending edge into the
  /// labels (incrementally or via full recompute per StreamOptions) and
  /// start a new epoch.  Valid with no pending edges (an empty epoch).
  EpochStats advance_epoch();

  /// Boundary-edge extraction at epoch commit (sharded engines only):
  /// cross-shard edges ingested since the previous epoch, moved out.  The
  /// epoch that committed them is the engine's current epoch(); a caller
  /// that drains after every advance_epoch sees each boundary edge exactly
  /// once.  Always empty when the shard filter is off.
  std::vector<graph::Edge> take_extracted_boundary();

  /// Component label of v at the current epoch (canonical min-vertex-id).
  VertexId component_of(VertexId v) const;

  /// Batched lookup at the current epoch.
  std::vector<VertexId> query(std::span<const VertexId> vertices) const;

  /// Time-travel lookup: labels as of the end of epoch `at` (0 = initial
  /// empty graph, where every vertex is its own component).
  std::vector<VertexId> query_at(std::uint64_t at,
                                 std::span<const VertexId> vertices) const;

  /// Full canonical label vector at the current epoch.
  const std::vector<VertexId>& labels() const { return current_labels_; }

  /// Freeze an immutable kernel::GraphView of the graph at the current
  /// epoch: the DCSC base plus every *processed* delta run (edges already
  /// folded into the labels but not yet compacted; pending runs belong to
  /// the next epoch and are excluded).  When no processed runs are resident
  /// the view shares the base blocks without copying — the next compaction
  /// copies-on-write if the view is still alive — otherwise one SPMD merge
  /// session pays for a merged copy per rank and its modeled cost is
  /// recorded on the view.  Like every collective operation here, not
  /// thread-safe against concurrent ingest/advance; serve::Server calls it
  /// from its engine thread before publishing the epoch's snapshot.
  kernel::GraphView freeze_view();

  /// Per-epoch records, oldest first (history()[e - 1] is epoch e).
  const std::vector<EpochStats>& history() const { return history_; }

  /// Sum of per-epoch modeled seconds (ingest + advance) so far.
  double total_modeled_seconds() const { return total_modeled_; }

  /// SPMD stats of the most recent advance_epoch (for metrics/trace
  /// export); empty before the first advance.
  const sim::SpmdResult& last_epoch_spmd() const { return last_spmd_; }

  /// Whether this engine persists to a data directory.
  bool durable() const { return vs_ != nullptr; }
  /// Whether construction recovered published state from a manifest (false
  /// for fresh directories).
  bool recovered() const { return recovered_; }
  /// The epoch recovery restored (only meaningful when recovered()); epochs
  /// before it have no version history, so query_at() on them throws.
  std::uint64_t recovered_epoch() const { return recovered_epoch_; }
  /// Durable I/O counters summed over ranks + host, plus recovery info.
  /// All zeros when not durable().
  durable::DurabilityStats durability_stats() const;

 private:
  struct RankSlot;  // per-rank persistent distributed state

  VertexId n_;
  int nranks_;
  sim::MachineModel machine_;
  StreamOptions options_;

  std::vector<std::unique_ptr<RankSlot>> slots_;

  std::uint64_t epoch_ = 0;
  std::uint64_t components_ = 0;
  std::vector<VertexId> current_labels_;
  /// Sparse version chains for query_at: label changes as (epoch, label),
  /// ascending; a vertex with no chain has kept its initial label v.
  std::unordered_map<VertexId, std::vector<std::pair<std::uint64_t, VertexId>>>
      versions_;
  std::vector<EpochStats> history_;

  EdgeId pending_batch_edges_ = 0;
  /// Cross-shard edges parked by the shard filter: accumulated during
  /// ingest, moved to extracted_boundary_ when their epoch commits.
  std::vector<graph::Edge> pending_boundary_;
  std::vector<graph::Edge> extracted_boundary_;
  double pending_ingest_modeled_ = 0;
  double total_modeled_ = 0;
  sim::SpmdResult last_spmd_;

  std::unique_ptr<durable::VersionSet> vs_;  ///< null when memory-only
  bool recovered_ = false;
  std::uint64_t recovered_epoch_ = 0;
};

}  // namespace lacc::stream
