// Per-rank workspace arena for the communication hot paths.
//
// Every distributed kernel (mxv, scatter_*, to_layout) needs the same
// scratch shapes on every call: an accumulator over the local row range,
// per-destination bucket counts, a flat send buffer, a receive buffer.
// Allocating them per call dominates the late, sparse LACC iterations where
// the useful work is tiny; the arena keeps one buffer per (kernel, role)
// key alive for the lifetime of the rank and hands it back with its
// capacity intact, so steady-state kernel calls perform no heap allocation
// at all.
//
// Ownership rules (see docs/ARCHITECTURE.md, "Hot-path design"):
//   * A buffer is valid from `buffer<T>(key)` until the next call with the
//     same key; kernels must use distinct keys for scratch that overlaps in
//     time, and nested kernels must not share keys with their callers.
//   * The arena is per rank and single-threaded by construction (each
//     virtual rank owns its ProcGrid); no locking.
//   * `buffer` clears the vector (size 0, capacity kept); `persistent`
//     returns it untouched, for accumulators that maintain their own
//     "clean between calls" invariant (e.g. mxv's acc stays all-kAbsent,
//     restored sparsely via its touched list).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "support/checking.hpp"

namespace lacc::support {

class WorkspaceArena {
 public:
  /// The reusable buffer registered under `key`, cleared (capacity kept).
  /// Creates it on first use, or when the element type changed — which in
  /// practice means a key collision: keep keys per kernel and per role.
  template <typename T>
  std::vector<T>& buffer(const char* key) {
    auto& v = persistent<T>(key);
    v.clear();
    return v;
  }

  /// Like `buffer`, but the contents survive between acquisitions (see the
  /// ownership rules in the file comment).
  template <typename T>
  std::vector<T>& persistent(const char* key) {
    fence_owner_thread();
    ++acquisitions_;
    Entry& e = entries_[key];
    if (!e.ptr || e.type != std::type_index(typeid(T))) {
      e.ptr = std::shared_ptr<void>(new std::vector<T>(), [](void* p) {
        delete static_cast<std::vector<T>*>(p);
      });
      e.type = std::type_index(typeid(T));
      ++creations_;
    }
    return *static_cast<std::vector<T>*>(e.ptr.get());
  }

  /// Allocation-counting hooks for tests: steady-state kernel calls must
  /// not grow `creations()` (every acquisition hits an existing buffer).
  std::uint64_t acquisitions() const { return acquisitions_; }
  std::uint64_t creations() const { return creations_; }

 private:
  /// Thread-ownership fence (LACC_CHECK=2): the arena is single-threaded by
  /// construction, so the first acquiring thread claims it and any foreign
  /// acquisition is a cross-rank sharing bug the simulator would otherwise
  /// surface only as a TSan report or silent corruption.
  void fence_owner_thread() {
    if (!check::full()) return;
    const auto self = std::this_thread::get_id();
    if (owner_ == std::thread::id{}) {
      owner_ = self;
    } else if (owner_ != self) {
      throw check::ConformanceError(
          "SPMD workspace violation: per-rank arena acquired from a foreign "
          "thread (arena or grid shared across virtual ranks?)");
    }
  }

  struct Entry {
    std::type_index type = std::type_index(typeid(void));
    std::shared_ptr<void> ptr;
  };
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t creations_ = 0;
  std::thread::id owner_;
};

}  // namespace lacc::support
