// Compact bit vector used for vertex flags (star membership, visited sets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace lacc {

/// Fixed-size bit vector with word-level population count.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n, bool value = false)
      : size_(n),
        words_((n + 63) / 64, value ? ~std::uint64_t{0} : std::uint64_t{0}) {
    trim();
  }

  std::size_t size() const { return size_; }

  bool get(std::size_t i) const {
    LACC_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i, bool value = true) {
    LACC_DCHECK(i < size_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void fill(bool value) {
    for (auto& w : words_) w = value ? ~std::uint64_t{0} : std::uint64_t{0};
    trim();
  }

  /// Word-level view for callers that iterate set bits without testing
  /// every position (64-way skip over empty regions).
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  void trim() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lacc
