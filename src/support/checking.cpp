#include "support/checking.hpp"

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace lacc::check {

namespace detail {

int init_level_from_env() {
#ifdef NDEBUG
  int v = static_cast<int>(Level::kOff);
#else
  int v = static_cast<int>(Level::kFull);
#endif
  if (const char* env = std::getenv("LACC_CHECK"); env != nullptr && *env) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 0 && parsed <= 2) v = static_cast<int>(parsed);
  }
  // Racing first calls compute the same value; the store is idempotent.
  g_level.store(v, std::memory_order_relaxed);
  return v;
}

}  // namespace detail

void block_fence_failed(int owner, int toucher, const char* what) {
  std::ostringstream os;
  os << "SPMD block fence violation: rank " << toucher << " touched the "
     << what << " block owned by rank " << owner
     << " outside a collective (shared object captured across ranks?)";
  throw ConformanceError(os.str());
}

namespace {

struct FailPoint {
  std::string point;
  int rank;
};

std::mutex g_fail_mutex;
std::vector<FailPoint>& fail_points() {
  static std::vector<FailPoint> points;
  return points;
}

}  // namespace

void arm_fail_point(const char* point, int rank) {
  std::lock_guard<std::mutex> lock(g_fail_mutex);
  fail_points().push_back({point, rank});
  detail::g_any_fail_point.store(true, std::memory_order_relaxed);
}

void disarm_fail_points() {
  std::lock_guard<std::mutex> lock(g_fail_mutex);
  fail_points().clear();
  detail::g_any_fail_point.store(false, std::memory_order_relaxed);
}

void maybe_fail_slow(const char* point, int rank) {
  std::lock_guard<std::mutex> lock(g_fail_mutex);
  for (const auto& fp : fail_points())
    if (fp.rank == rank && fp.point == point)
      throw Error(std::string("injected failure at ") + point + " on rank " +
                  std::to_string(rank));
}

}  // namespace lacc::check
