// Configuration and primitives for the SPMD conformance checker.
//
// The checker (see docs/CHECKING.md) verifies that the SPMD programs built
// on lacc::sim are well-formed: every rank issues the same collectives in
// the same order with consistent signatures, no rank touches another rank's
// distributed-vector block outside a collective, and recycled workspaces
// stay on the thread that owns them.  This header holds the pieces that the
// support layer itself consumes (WorkspaceArena, DistVec fencing); the
// collective ledger lives in sim/check.hpp on top of it.
//
// Levels (env LACC_CHECK=0|1|2, default: full in debug builds, off when
// NDEBUG is defined):
//   0 (off)   — no recording, no verification; release behavior.
//   1 (cheap) — collective signature matching (op, order, root, element
//               size, required count uniformity) at every sync point.
//   2 (full)  — level 1 plus buffer-aliasing range checks, sendrecv
//               permutation conjugacy, DistVec/DCSC block fencing, and
//               workspace-arena thread-ownership checks.
//
// Checker verdicts never touch the modeled clock or statistics: enabling
// any level leaves modeled_seconds, traces, and labelings bit-identical.
#pragma once

#include <atomic>

#include "support/error.hpp"

namespace lacc::check {

enum class Level : int {
  kOff = 0,
  kCheap = 1,
  kFull = 2,
};

/// Thrown when the checker proves the SPMD program malformed (as opposed to
/// lacc::Error, which flags bad arguments on a single rank).  The message
/// carries a cross-rank diff of the offending collective where applicable.
class ConformanceError : public Error {
 public:
  explicit ConformanceError(const std::string& what) : Error(what) {}
};

namespace detail {
// -1 = not yet initialized from the environment.
inline std::atomic<int> g_level{-1};
// Thread's world rank inside run_spmd, -1 outside any SPMD body.
inline thread_local int t_current_rank = -1;
int init_level_from_env();  // reads LACC_CHECK once; defined in checking.cpp
}  // namespace detail

/// Active checking level (cached; first call reads LACC_CHECK).
inline Level level() {
  int v = detail::g_level.load(std::memory_order_relaxed);
  if (v < 0) v = detail::init_level_from_env();
  return static_cast<Level>(v);
}

inline bool enabled() { return level() != Level::kOff; }
inline bool full() { return level() == Level::kFull; }

/// Override the level at runtime (tests sweep 0/1/2 in one process).
inline void set_level(Level l) {
  detail::g_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

/// World rank of the calling thread inside run_spmd, -1 outside.
inline int current_rank() { return detail::t_current_rank; }

/// RAII binding of the calling thread to a virtual world rank; installed by
/// run_spmd around each rank body.  Block fencing compares against it.
class ScopedRank {
 public:
  explicit ScopedRank(int rank) : prev_(detail::t_current_rank) {
    detail::t_current_rank = rank;
  }
  ~ScopedRank() { detail::t_current_rank = prev_; }
  ScopedRank(const ScopedRank&) = delete;
  ScopedRank& operator=(const ScopedRank&) = delete;

 private:
  int prev_;
};

[[noreturn]] void block_fence_failed(int owner, int toucher, const char* what);

/// Block fencing (level 2): asserts the calling thread is the virtual rank
/// that owns the touched block.  Outside run_spmd (current_rank() == -1)
/// everything is permitted — single-threaded tests poke freely.
inline void fence_block_access(int owner_rank, const char* what) {
  if (level() < Level::kFull) return;
  const int cur = current_rank();
  if (cur >= 0 && cur != owner_rank) block_fence_failed(owner_rank, cur, what);
}

// --- Test-only failure injection -----------------------------------------
// Conformance tests kill one rank at a named point inside a collective to
// prove that a mid-collective death neither deadlocks nor lets peers read
// freed buffers.  Zero overhead when nothing is armed (one relaxed load).

namespace detail {
inline std::atomic<bool> g_any_fail_point{false};
}

/// Arm `point` so that `maybe_fail(point, rank)` throws on `rank`.
void arm_fail_point(const char* point, int rank);
/// Disarm all fail points (call from test teardown).
void disarm_fail_points();
void maybe_fail_slow(const char* point, int rank);

inline void maybe_fail(const char* point, int rank) {
  if (detail::g_any_fail_point.load(std::memory_order_relaxed))
    maybe_fail_slow(point, rank);
}

}  // namespace lacc::check
