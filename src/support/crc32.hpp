// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over raw bytes.
//
// The durable stream layer checksums every WAL record, run-file block, and
// manifest with this; a table-driven byte-at-a-time loop is plenty for the
// record sizes involved and keeps the implementation header-only and
// dependency-free.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace lacc {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC of `len` bytes at `data`.  Chain partial buffers by passing the
/// previous return value as `seed` (the pre/post inversion composes).
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace lacc
