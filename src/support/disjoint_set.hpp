// Header-only disjoint-set union (union by rank + path halving), shared by
// the union-find ground-truth baseline, the Afforest-style sampling pre-pass
// in lacc_dist, and the stream tests.  Inverse-Ackermann amortized per
// operation; purely sequential (the lock-free variant used by lacc_omp lives
// with its OpenMP caller).
#pragma once

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/types.hpp"

namespace lacc::support {

class DisjointSet {
 public:
  explicit DisjointSet(VertexId n) : parent_(n), rank_(n, 0), sets_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  VertexId find(VertexId v) {
    LACC_DCHECK(v < parent_.size());
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];  // path halving
      v = parent_[v];
    }
    return v;
  }

  /// Returns true if the union merged two distinct sets.
  bool unite(VertexId a, VertexId b) {
    VertexId ra = find(a), rb = find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --sets_;
    return true;
  }

  VertexId num_sets() const { return sets_; }
  VertexId size() const { return static_cast<VertexId>(parent_.size()); }

 private:
  std::vector<VertexId> parent_;
  std::vector<std::uint8_t> rank_;
  VertexId sets_;
};

}  // namespace lacc::support
