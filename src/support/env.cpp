#include "support/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

namespace lacc {

namespace {

/// True iff everything from `end` to the terminator is whitespace — i.e.
/// the numeric parse consumed the whole setting.
bool only_trailing_whitespace(const char* end) {
  for (; *end != '\0'; ++end)
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
  return true;
}

/// One-line warning, once per (variable, value) pair so repeated reads of
/// the same bad setting don't spam stderr.
void warn_rejected(const char* name, const char* value, const char* why) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (!warned.insert(std::string(name) + "=" + value).second) return;
  std::cerr << "warning: ignoring " << name << "=\"" << value << "\" (" << why
            << "); using the default\n";
}

}  // namespace

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || !only_trailing_whitespace(end)) {
    warn_rejected(name, value, "not a number");
    return fallback;
  }
  if (errno == ERANGE) {
    warn_rejected(name, value, "out of range");
    return fallback;
  }
  return parsed;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || !only_trailing_whitespace(end)) {
    warn_rejected(name, value, "not an integer");
    return fallback;
  }
  if (errno == ERANGE) {
    warn_rejected(name, value, "out of range");
    return fallback;
  }
  return static_cast<std::int64_t>(parsed);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? fallback : std::string(value);
}

double bench_scale() { return env_double("LACC_SCALE", 1.0); }

}  // namespace lacc
