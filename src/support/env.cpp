#include "support/env.hpp"

#include <cstdlib>

namespace lacc {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end == value ? fallback : parsed;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return end == value ? fallback : static_cast<std::int64_t>(parsed);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? fallback : std::string(value);
}

double bench_scale() { return env_double("LACC_SCALE", 1.0); }

}  // namespace lacc
