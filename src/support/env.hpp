// Environment-variable configuration shared by benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace lacc {

/// Read an environment variable as a double, with a default.
double env_double(const char* name, double fallback);

/// Read an environment variable as a 64-bit integer, with a default.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read an environment variable as a string, with a default.
std::string env_string(const char* name, const std::string& fallback);

/// Global size multiplier for benchmark workloads (LACC_SCALE, default 1.0).
/// Benches multiply their vertex/edge counts by this so larger machines can
/// run paper-scale experiments without editing code.
double bench_scale();

}  // namespace lacc
