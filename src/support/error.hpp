// Lightweight invariant checking used across the library.
//
// LACC_CHECK is always on (graph algorithms are cheap to guard relative to
// the kernels they protect); LACC_DCHECK compiles out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lacc {

/// Thrown when a runtime invariant is violated.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "LACC_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace lacc

#define LACC_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::lacc::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define LACC_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream lacc_os_;                                    \
      lacc_os_ << msg;                                                \
      ::lacc::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   lacc_os_.str());                   \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define LACC_DCHECK(expr) ((void)0)
#else
#define LACC_DCHECK(expr) LACC_CHECK(expr)
#endif
