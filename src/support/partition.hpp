// Block partitioning of index ranges over P owners.
//
// CombBLAS and our distributed layer both split [0, n) into P contiguous
// blocks as evenly as possible: the first (n mod P) blocks get one extra
// element.  These helpers are the single source of truth for that mapping so
// that matrix, vector, and request routing never disagree about ownership.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/error.hpp"

namespace lacc {

/// Hash partition of the vertex id space over `shards` owners.
///
/// The serving router and the stream engine's boundary filter must agree on
/// which shard owns a vertex, so the mapping lives here in the support layer
/// (below both).  A hash — not a block split — spreads the dense low-id
/// community structure of generated graphs evenly across shards; the
/// splitmix64 finalizer is the same mixer the serve pair cache uses.
struct ShardPartition {
  int shards = 1;

  ShardPartition() = default;
  explicit ShardPartition(int shards_) : shards(shards_) {
    LACC_CHECK(shards >= 1);
  }

  /// Shard that owns vertex id `v`.  Identity-free: depends only on (v,
  /// shards), so every layer computes the same owner with no shared state.
  int owner(std::uint64_t v) const {
    if (shards == 1) return 0;
    std::uint64_t x = v + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<int>(x % static_cast<std::uint64_t>(shards));
  }
};

/// Even block partition of [0, n) into `parts` contiguous blocks.
struct BlockPartition {
  std::uint64_t n = 0;
  std::uint64_t parts = 1;

  BlockPartition() = default;
  BlockPartition(std::uint64_t n_, std::uint64_t parts_) : n(n_), parts(parts_) {
    LACC_CHECK(parts >= 1);
  }

  /// First global index of block `b`.
  std::uint64_t begin(std::uint64_t b) const {
    LACC_DCHECK(b <= parts);
    const std::uint64_t base = n / parts, extra = n % parts;
    return b * base + (b < extra ? b : extra);
  }

  /// One past the last global index of block `b`.
  std::uint64_t end(std::uint64_t b) const { return begin(b + 1); }

  /// Number of elements in block `b`.
  std::uint64_t size(std::uint64_t b) const { return end(b) - begin(b); }

  /// Block that owns global index `i`.
  std::uint64_t owner(std::uint64_t i) const {
    LACC_DCHECK(i < n);
    const std::uint64_t base = n / parts, extra = n % parts;
    const std::uint64_t boundary = extra * (base + 1);
    if (i < boundary) return base == 0 ? i : i / (base + 1);
    return extra + (i - boundary) / base;
  }
};

}  // namespace lacc
