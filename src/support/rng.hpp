// Deterministic pseudo-random number generation.
//
// All randomness in the repository flows through these generators so that
// graph generation, permutation, and workloads are reproducible bit-for-bit
// across runs and across virtual-rank counts.  SplitMix64 seeds
// Xoshiro256**, the recommended pairing from Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace lacc {

/// SplitMix64: tiny, passes BigCrush, ideal for seeding and for
/// counter-based ("hash the index") random streams.
struct SplitMix64 {
  std::uint64_t state = 0;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

/// Stateless mix of a (seed, counter) pair; used where independent streams
/// must be derivable in parallel without shared state (e.g. every rank
/// generating its slice of an edge list).
constexpr std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t counter) {
  SplitMix64 sm(seed ^ (counter * 0xD1B54A32D192ED03ull + 0x8CB92BA72F3D8DD7ull));
  return sm.next();
}

/// Xoshiro256**: general-purpose engine for sequential generation.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (~bound + 1) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lacc
