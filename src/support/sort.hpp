// Sorting primitives tuned for (64-bit key, payload) pairs.
//
// The distributed vector kernels sort index/value tuples constantly (merge
// after all-to-all, deduplicate assign targets); an LSD radix sort on the
// key bytes beats std::sort by a wide margin at the sizes we care about and
// is stable, which the merge logic relies on.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

namespace lacc {

/// Stable LSD radix sort of `keys` (and `values` reordered alongside) by the
/// full 64-bit key.  Only the bytes needed to cover `max_key` are processed.
template <typename V>
void radix_sort_pairs(std::vector<std::uint64_t>& keys, std::vector<V>& values,
                      std::uint64_t max_key = ~std::uint64_t{0}) {
  const std::size_t n = keys.size();
  if (n < 64) {  // small inputs: indirection costs more than std::sort
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
    std::vector<std::uint64_t> ks(n);
    std::vector<V> vs(n);
    for (std::size_t i = 0; i < n; ++i) {
      ks[i] = keys[order[i]];
      vs[i] = values[order[i]];
    }
    keys.swap(ks);
    values.swap(vs);
    return;
  }

  int passes = 0;
  while (passes < 8 && (max_key >> (8 * passes)) != 0) ++passes;
  if (passes == 0) passes = 1;

  std::vector<std::uint64_t> key_buf(n);
  std::vector<V> val_buf(n);
  std::uint64_t* kin = keys.data();
  std::uint64_t* kout = key_buf.data();
  V* vin = values.data();
  V* vout = val_buf.data();

  for (int pass = 0; pass < passes; ++pass) {
    std::array<std::size_t, 256> count{};
    const int shift = 8 * pass;
    for (std::size_t i = 0; i < n; ++i) ++count[(kin[i] >> shift) & 0xFF];
    std::size_t sum = 0;
    for (auto& c : count) {
      const std::size_t next = sum + c;
      c = sum;
      sum = next;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = count[(kin[i] >> shift) & 0xFF]++;
      kout[pos] = kin[i];
      vout[pos] = vin[i];
    }
    std::swap(kin, kout);
    std::swap(vin, vout);
  }

  if (kin != keys.data()) {
    std::memcpy(keys.data(), kin, n * sizeof(std::uint64_t));
    std::copy(vin, vin + n, values.data());
  }
}

/// Stable LSD radix sort of `items` by `key(item)` (a 64-bit extractor),
/// using caller-provided `scratch` for the ping-pong buffer so arena-managed
/// hot paths sort without allocating.  Only the key bytes needed to cover
/// `max_key` are processed.  Stability makes multi-key orders composable:
/// sorting by a secondary key and then by the primary key yields the same
/// order as one comparator sort on (primary, secondary).
template <typename T, typename KeyFn>
void radix_sort_by(std::vector<T>& items, std::vector<T>& scratch, KeyFn&& key,
                   std::uint64_t max_key = ~std::uint64_t{0}) {
  const std::size_t n = items.size();
  if (n < 64) {  // small inputs: counting passes cost more than std::sort
    std::stable_sort(items.begin(), items.end(),
                     [&](const T& a, const T& b) { return key(a) < key(b); });
    return;
  }

  int passes = 0;
  while (passes < 8 && (max_key >> (8 * passes)) != 0) ++passes;
  if (passes == 0) passes = 1;

  scratch.resize(n);
  T* in = items.data();
  T* out = scratch.data();
  for (int pass = 0; pass < passes; ++pass) {
    std::array<std::size_t, 256> count{};
    const int shift = 8 * pass;
    for (std::size_t i = 0; i < n; ++i) ++count[(key(in[i]) >> shift) & 0xFF];
    std::size_t sum = 0;
    for (auto& c : count) {
      const std::size_t next = sum + c;
      c = sum;
      sum = next;
    }
    for (std::size_t i = 0; i < n; ++i)
      out[count[(key(in[i]) >> shift) & 0xFF]++] = in[i];
    std::swap(in, out);
  }
  if (in != items.data()) std::copy(in, in + n, items.data());
}

/// Exclusive prefix sum; returns the total.
template <typename T>
T exclusive_prefix_sum(std::vector<T>& v) {
  T sum{};
  for (auto& x : v) {
    const T next = sum + x;
    x = sum;
    sum = next;
  }
  return sum;
}

}  // namespace lacc
