// Synchronization policy for the concurrent structures in this tree.
//
// Every lock-free / blocking structure (obs::LatencyHistogram,
// serve::PairCache, serve::IngestQueue, sim::Barrier, the Afforest
// union-find ops in core/afforest.hpp) is a template over a *sync policy*
// that names the atomic, mutex, condition-variable, and yield primitives it
// uses.  Production code instantiates them with StdSyncPolicy below — pure
// aliases for the std:: primitives, so the generated code is bit-identical
// to writing std::atomic directly.  The deterministic model checker
// (src/sched/, docs/CHECKING.md) instantiates the same templates with
// sched::SchedSyncPolicy, which routes every shared-memory access through a
// schedule-exploring cooperative scheduler.  Two instantiations, one source
// of truth for the algorithm.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace lacc::support {

struct StdSyncPolicy {
  template <typename T>
  using atomic = std::atomic<T>;
  using mutex = std::mutex;
  using condition_variable = std::condition_variable;

  static void yield() { std::this_thread::yield(); }

  /// Rounds a spin-then-sleep wait loop spins before parking.  The model
  /// checker's policy sets this to 1: spinning is a latency optimization
  /// with no semantic content, and a short bound keeps the schedule tree
  /// small while still exercising both the spin and the sleep path.
  static constexpr int spin_bound = 256;
};

}  // namespace lacc::support
