#include "support/table.hpp"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace lacc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LACC_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  LACC_CHECK_MSG(cells.size() == header_.size(),
                 "row arity " << cells.size() << " != header arity "
                              << header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = static_cast<std::size_t>(header_.size() - 1) * 2;
  for (auto w : width) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_double(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_seconds(double seconds) {
  std::ostringstream os;
  os << std::fixed;
  if (seconds >= 1.0)
    os << std::setprecision(3) << seconds << " s";
  else if (seconds >= 1e-3)
    os << std::setprecision(3) << seconds * 1e3 << " ms";
  else
    os << std::setprecision(1) << seconds * 1e6 << " us";
  return os.str();
}

std::string fmt_ratio(double r) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << r << "x";
  return os.str();
}

}  // namespace lacc
