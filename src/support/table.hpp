// Plain-text table printer used by the benchmark harnesses to emit
// paper-style rows (one table/figure per binary).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lacc {

/// Collects rows of string cells and prints them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
std::string fmt_count(std::uint64_t v);        // 12,345,678
std::string fmt_double(double v, int digits);  // fixed-precision
std::string fmt_seconds(double seconds);       // adaptive s/ms/us
std::string fmt_ratio(double r);               // "5.1x"

}  // namespace lacc
