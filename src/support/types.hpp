// Fundamental scalar types shared across the LACC libraries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lacc {

/// Global vertex identifier. The paper's largest graph has 68.48M vertices
/// and 67B edges; 64 bits keep index arithmetic safe everywhere.
using VertexId = std::uint64_t;

/// Global edge count / nonzero count.
using EdgeId = std::uint64_t;

/// Sentinel for "no vertex / no parent".
inline constexpr VertexId kNoVertex = ~VertexId{0};

}  // namespace lacc
