#include "apps/mcl.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "baselines/union_find.hpp"
#include "graph/generators.hpp"

namespace lacc::apps {
namespace {

TEST(StochasticMatrix, InitialMatrixIsColumnStochasticWithSelfLoops) {
  const graph::Csr g(graph::erdos_renyi(100, 300, 3));
  const StochasticMatrix m(g);
  EXPECT_TRUE(m.is_column_stochastic());
  for (VertexId j = 0; j < 100; ++j) {
    bool self = false;
    for (const auto& [i, w] : m.column(j))
      if (i == j) self = true;
    EXPECT_TRUE(self) << j;
  }
}

TEST(StochasticMatrix, ExpansionPreservesStochasticity) {
  const graph::Csr g(graph::clustered_components(200, 10, 4.0, 5));
  const StochasticMatrix m(g);
  const auto squared = m.expand();
  EXPECT_TRUE(squared.is_column_stochastic(1e-6));
  EXPECT_EQ(squared.n(), m.n());
}

TEST(StochasticMatrix, InflationPrunesAndRenormalizes) {
  const graph::Csr g(graph::erdos_renyi(150, 600, 7));
  StochasticMatrix m(g);
  const auto before = m.nnz();
  m.inflate(2.0, 0.05);
  EXPECT_TRUE(m.is_column_stochastic(1e-9));
  EXPECT_LE(m.nnz(), before);
}

TEST(StochasticMatrix, MaxColumnChangeIsZeroAgainstItself) {
  const graph::Csr g(graph::cycle(40));
  const StochasticMatrix m(g);
  EXPECT_DOUBLE_EQ(m.max_column_change(m), 0.0);
}

TEST(MarkovCluster, RecoversPlantedCommunities) {
  const VertexId planted = 25;
  const auto el = graph::clustered_components(800, planted, 10.0, 9);
  const graph::Csr g(el);
  const auto result = markov_cluster(g, MclOptions{}, 4);
  // MCL may split weak communities but must never merge disconnected ones,
  // and every cluster must be confined to one planted community.
  EXPECT_GE(result.num_clusters, planted);
  const auto planted_labels =
      core::normalize_labels(baselines::union_find_cc(el).parent);
  std::unordered_map<VertexId, VertexId> home;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto [it, fresh] =
        home.try_emplace(result.cluster[v], planted_labels[v]);
    EXPECT_EQ(it->second, planted_labels[v]) << "cluster spans communities";
  }
}

TEST(MarkovCluster, DeterministicAndConverges) {
  const graph::Csr g(graph::clustered_components(300, 12, 8.0, 11));
  const auto a = markov_cluster(g, MclOptions{}, 4);
  const auto b = markov_cluster(g, MclOptions{}, 4);
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_GT(a.sweeps, 0);
  EXPECT_LT(a.sweeps, 50);
}

TEST(MarkovCluster, HigherInflationGivesFinerClusters) {
  const graph::Csr g(graph::clustered_components(400, 8, 8.0, 13));
  MclOptions coarse, fine;
  coarse.inflation = 1.5;
  fine.inflation = 3.0;
  const auto a = markov_cluster(g, coarse, 4);
  const auto b = markov_cluster(g, fine, 4);
  EXPECT_LE(a.num_clusters, b.num_clusters);
}

}  // namespace
}  // namespace lacc::apps
