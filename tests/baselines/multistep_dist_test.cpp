#include "baselines/multistep_dist.hpp"

#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "graph/generators.hpp"

namespace lacc::baselines {
namespace {

void expect_correct(const graph::EdgeList& el, int ranks) {
  const auto result = multistep_dist(el, ranks, sim::MachineModel::local());
  const auto truth = union_find_cc(el);
  EXPECT_TRUE(core::same_partition(result.cc.parent, truth.parent))
      << "ranks=" << ranks;
}

TEST(MultistepDist, SimpleShapes) {
  for (const int ranks : {1, 4, 9}) {
    expect_correct(graph::star(60), ranks);
    expect_correct(graph::cycle(40), ranks);
    expect_correct(graph::empty_graph(15), ranks);
  }
}

TEST(MultistepDist, GiantPlusDust) {
  auto el = graph::preferential_attachment(1200, 4, 3, 0.1);
  expect_correct(el, 4);
  expect_correct(el, 16);
}

TEST(MultistepDist, ManyComponents) {
  expect_correct(graph::clustered_components(900, 30, 5.0, 5), 9);
  expect_correct(graph::path_forest(1200, 10, 7), 4);
}

TEST(MultistepDist, RandomAndRegression) {
  expect_correct(graph::erdos_renyi(600, 1200, 9), 4);
  expect_correct(graph::erdos_renyi(1000, 500, 501), 4);
}

TEST(MultistepDist, BfsPeelRegionRecorded) {
  const auto el = graph::random_tree(500, 11);
  const auto result = multistep_dist(el, 4, sim::MachineModel::edison());
  ASSERT_TRUE(result.spmd.stats[0].region_totals().count("bfs-peel"));
  // Vertex 0's component is the whole tree: label propagation ends fast.
  EXPECT_LE(result.cc.iterations, 3);
}

}  // namespace
}  // namespace lacc::baselines
