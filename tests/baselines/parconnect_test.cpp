#include "baselines/parconnect.hpp"

#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "core/lacc_dist.hpp"
#include "graph/generators.hpp"

namespace lacc::baselines {
namespace {

void expect_correct(const graph::EdgeList& el, int ranks) {
  const auto result = parconnect_dist(el, ranks, sim::MachineModel::local());
  const auto truth = union_find_cc(el);
  EXPECT_TRUE(core::same_partition(result.cc.parent, truth.parent))
      << "ranks=" << ranks;
}

TEST(ParConnect, SimpleShapes) {
  for (const int ranks : {1, 4, 9}) {
    expect_correct(graph::path(30), ranks);
    expect_correct(graph::cycle(25), ranks);
    expect_correct(graph::empty_graph(10), ranks);
  }
}

TEST(ParConnect, RandomGraphs) {
  expect_correct(graph::erdos_renyi(500, 900, 41), 4);
  expect_correct(graph::erdos_renyi(500, 150, 42), 9);
  expect_correct(graph::erdos_renyi(1000, 500, 501), 4);
}

TEST(ParConnect, ManyComponentsAndPowerLaw) {
  expect_correct(graph::clustered_components(900, 30, 5.0, 43), 4);
  expect_correct(graph::path_forest(1500, 10, 44), 9);
  expect_correct(graph::rmat(9, 2048, 45), 4);
}

TEST(ParConnect, BfsPeelsSeedComponent) {
  // A giant star at vertex 0 plus dust: BFS should do nearly all the work.
  auto el = graph::star(200);
  el = graph::disjoint_union(el, graph::path(5));
  const auto result = parconnect_dist(el, 4, sim::MachineModel::local());
  EXPECT_EQ(core::count_components(result.cc.parent), 2u);
  ASSERT_TRUE(result.spmd.stats[0].region_totals().count("bfs-peel"));
}

TEST(ParConnect, SlowerThanLaccOnManyComponentGraphs) {
  // The paper's headline comparison: many components -> LACC's sparse
  // vectors win by a wide margin in modeled time.
  const auto el = graph::clustered_components(4000, 130, 6.0, 47);
  const auto lacc = core::lacc_dist(el, 16, sim::MachineModel::edison());
  const auto pc = parconnect_dist(el, 16, sim::MachineModel::edison());
  EXPECT_TRUE(core::same_partition(lacc.cc.parent, pc.cc.parent));
  EXPECT_LT(lacc.modeled_seconds, pc.modeled_seconds);
}

}  // namespace
}  // namespace lacc::baselines
