#include "baselines/serial_cc.hpp"

#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "graph/generators.hpp"

namespace lacc::baselines {
namespace {

using graph::Csr;

void expect_all_baselines_agree(const graph::EdgeList& el) {
  const Csr g(el);
  const auto truth = union_find_cc(g);
  EXPECT_TRUE(core::same_partition(bfs_cc(g).parent, truth.parent));
  EXPECT_TRUE(core::same_partition(shiloach_vishkin(g).parent, truth.parent));
  EXPECT_TRUE(core::same_partition(label_propagation(g).parent, truth.parent));
  EXPECT_TRUE(core::same_partition(multistep(g).parent, truth.parent));
}

TEST(SerialBaselines, SimpleShapes) {
  expect_all_baselines_agree(graph::path(40));
  expect_all_baselines_agree(graph::cycle(25));
  expect_all_baselines_agree(graph::star(30));
  expect_all_baselines_agree(graph::empty_graph(9));
}

TEST(SerialBaselines, RandomGraphs) {
  expect_all_baselines_agree(graph::erdos_renyi(800, 1500, 31));
  expect_all_baselines_agree(graph::erdos_renyi(800, 200, 32));
}

TEST(SerialBaselines, ManyComponents) {
  expect_all_baselines_agree(graph::clustered_components(2000, 60, 5.0, 33));
  expect_all_baselines_agree(graph::path_forest(3000, 10, 34));
}

TEST(SerialBaselines, PowerLaw) {
  expect_all_baselines_agree(graph::rmat(10, 4096, 35));
  expect_all_baselines_agree(graph::preferential_attachment(1500, 3, 36, 0.2));
}

TEST(ShiloachVishkin, ConvergesLogarithmically) {
  EXPECT_LE(shiloach_vishkin(Csr(graph::path(4096))).iterations, 40);
}

TEST(LabelPropagation, NeedsDiameterSweepsOnAPath) {
  // Label propagation's weakness vs LACC: a path of length L needs ~L
  // sweeps, not log L.
  const auto result = label_propagation(Csr(graph::path(128)));
  EXPECT_GE(result.iterations, 100);
}

TEST(Multistep, PeelsGiantComponentFirst) {
  // A giant clique plus dust: the BFS step should label the giant part.
  auto el = graph::complete(50);
  el = graph::disjoint_union(el, graph::empty_graph(20));
  const auto result = multistep(Csr(el));
  EXPECT_EQ(core::count_components(result.parent), 21u);
}

}  // namespace
}  // namespace lacc::baselines
