#include "baselines/union_find.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace lacc::baselines {
namespace {

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already joined
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
}

TEST(UnionFind, SelfUnionIsNoop) {
  UnionFind uf(3);
  EXPECT_FALSE(uf.unite(1, 1));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFindCc, EdgeListAndCsrAgree) {
  const auto el = graph::erdos_renyi(500, 800, 21);
  const auto a = union_find_cc(el);
  const auto b = union_find_cc(graph::Csr(el));
  EXPECT_TRUE(core::same_partition(a.parent, b.parent));
}

TEST(UnionFindCc, KnownComponentCounts) {
  EXPECT_EQ(core::count_components(union_find_cc(graph::path(10)).parent), 1u);
  EXPECT_EQ(core::count_components(union_find_cc(graph::empty_graph(7)).parent),
            7u);
  const auto g = graph::disjoint_union(graph::cycle(5), graph::cycle(5));
  EXPECT_EQ(core::count_components(union_find_cc(g).parent), 2u);
}

TEST(UnionFindCc, DeepChainStaysNearFlat) {
  // Path compression must keep find() cheap on a long chain.
  const auto result = union_find_cc(graph::path(100000));
  EXPECT_EQ(core::count_components(result.parent), 1u);
}

}  // namespace
}  // namespace lacc::baselines
