#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "core/lacc_omp.hpp"
#include "core/lacc_serial.hpp"
#include "graph/generators.hpp"

namespace lacc::core {
namespace {

using graph::Csr;

void expect_matches_union_find(const graph::EdgeList& el,
                               const LaccOptions& options = {}) {
  const Csr g(el);
  const auto as = awerbuch_shiloach(g, options);
  const auto truth = baselines::union_find_cc(g);
  EXPECT_TRUE(same_partition(as.parent, truth.parent));
  // At convergence every tree is a star: parents are roots.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(as.parent[as.parent[v]], as.parent[v]);
}

TEST(AwerbuchShiloach, SimpleShapes) {
  expect_matches_union_find(graph::path(50));
  expect_matches_union_find(graph::cycle(33));
  expect_matches_union_find(graph::star(40));
  expect_matches_union_find(graph::complete(16));
}

TEST(AwerbuchShiloach, EmptyAndSingletonGraphs) {
  expect_matches_union_find(graph::empty_graph(10));
  expect_matches_union_find(graph::empty_graph(1));
  const Csr empty{graph::EdgeList(0)};
  const auto result = awerbuch_shiloach(empty);
  EXPECT_TRUE(result.parent.empty());
}

TEST(AwerbuchShiloach, DisjointMix) {
  auto g = graph::disjoint_union(graph::cycle(10), graph::path(7));
  g = graph::disjoint_union(g, graph::empty_graph(5));
  g = graph::disjoint_union(g, graph::complete(6));
  expect_matches_union_find(g);
}

TEST(AwerbuchShiloach, RandomGraphsAcrossDensities) {
  for (const EdgeId m : {100u, 500u, 2000u, 8000u})
    expect_matches_union_find(graph::erdos_renyi(1000, m, m));
}

TEST(AwerbuchShiloach, ManyComponentGraphs) {
  expect_matches_union_find(graph::clustered_components(3000, 80, 6.0, 7));
  expect_matches_union_find(graph::path_forest(5000, 12, 9));
}

TEST(AwerbuchShiloach, LogarithmicIterationCount) {
  // A path is the worst case for hooking; iterations must stay O(log n).
  const Csr g(graph::path(4096));
  const auto result = awerbuch_shiloach(g);
  EXPECT_LE(result.iterations, 30);
}

TEST(AwerbuchShiloach, WithoutConvergedTrackingSameAnswer) {
  LaccOptions options;
  options.track_converged = false;
  expect_matches_union_find(graph::clustered_components(2000, 50, 5.0, 3),
                            options);
  expect_matches_union_find(graph::path_forest(3000, 9, 4), options);
}

TEST(AwerbuchShiloach, ConvergedTrackingShrinksActiveSet) {
  const Csr g(graph::clustered_components(4000, 100, 6.0, 11));
  const auto result = awerbuch_shiloach(g);
  ASSERT_GE(result.trace.size(), 2u);
  // Monotone convergence, and eventually a large converged fraction.
  std::uint64_t prev = 0;
  for (const auto& rec : result.trace) {
    EXPECT_GE(rec.converged_vertices, prev);
    prev = rec.converged_vertices;
  }
  EXPECT_EQ(result.trace.back().converged_vertices, 4000u);
}

TEST(AwerbuchShiloach, TraceRecordsHooks) {
  const Csr g(graph::path(100));
  const auto result = awerbuch_shiloach(g);
  EXPECT_GT(result.trace.front().cond_hooks, 0u);
}

TEST(AwerbuchShiloachOmp, MatchesSerialAcrossGraphFamilies) {
  for (const auto& el :
       {graph::path(300), graph::cycle(128), graph::erdos_renyi(1500, 3000, 5),
        graph::erdos_renyi(1000, 500, 501),  // the Lemma-1 regression graph
        graph::clustered_components(2000, 50, 5.0, 7),
        graph::path_forest(2500, 11, 9), graph::rmat(10, 4096, 11),
        graph::empty_graph(64)}) {
    const Csr g(el);
    const auto omp = awerbuch_shiloach_omp(g);
    const auto truth = baselines::union_find_cc(g);
    EXPECT_TRUE(same_partition(omp.parent, truth.parent));
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      EXPECT_EQ(omp.parent[omp.parent[v]], omp.parent[v]);
  }
}

TEST(AwerbuchShiloachOmp, LogarithmicIterations) {
  EXPECT_LE(awerbuch_shiloach_omp(Csr(graph::path(4096))).iterations, 40);
}

TEST(AwerbuchShiloachOmp, DeterministicAcrossRuns) {
  const Csr g(graph::erdos_renyi(2000, 5000, 13));
  const auto a = awerbuch_shiloach_omp(g);
  const auto b = awerbuch_shiloach_omp(g);
  EXPECT_EQ(a.parent, b.parent);  // min-reduction makes races benign
}

}  // namespace
}  // namespace lacc::core
