#include <gtest/gtest.h>

#include "core/options.hpp"
#include "support/error.hpp"

namespace lacc::core {
namespace {

TEST(CountComponents, FlatParentVector) {
  EXPECT_EQ(count_components({0, 0, 2, 2, 2}), 2u);
  EXPECT_EQ(count_components({0, 1, 2}), 3u);
  EXPECT_EQ(count_components({}), 0u);
}

TEST(CountComponents, FollowsNonFlatForests) {
  // 0 <- 1 <- 2 (a chain) plus 3 alone: 2 components.
  EXPECT_EQ(count_components({0, 0, 1, 3}), 2u);
}

TEST(CountComponents, DetectsCycles) {
  EXPECT_THROW(count_components({1, 0}), Error);
}

TEST(NormalizeLabels, PicksMinimumVertexAsLabel) {
  // Components {0,1} rooted at 1 and {2,3} rooted at 3.
  const auto norm = normalize_labels({1, 1, 3, 3});
  EXPECT_EQ(norm, (std::vector<VertexId>{0, 0, 2, 2}));
}

TEST(NormalizeLabels, AgreesAcrossDifferentRootChoices) {
  EXPECT_EQ(normalize_labels({1, 1, 3, 3}), normalize_labels({0, 0, 2, 2}));
}

TEST(SamePartition, ComparesStructureNotLabels) {
  EXPECT_TRUE(same_partition({5, 5, 2, 2, 2, 5}, {0, 0, 2, 2, 2, 0}));
  EXPECT_FALSE(same_partition({0, 0, 2, 2}, {0, 1, 2, 2}));
  EXPECT_FALSE(same_partition({0, 0}, {0, 0, 2}));
}

TEST(SamePartition, NonFlatInputs) {
  // chain 0<-1<-2 vs flat labeling of the same component.
  EXPECT_TRUE(same_partition({0, 0, 1}, {0, 0, 0}));
}

TEST(ComponentSizes, SortedDescending) {
  // Components: {0,1,2}, {3}, {4,5}.
  const auto sizes = component_sizes({0, 0, 0, 3, 4, 4});
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{3, 2, 1}));
}

TEST(ComponentSizes, FollowsChains) {
  const auto sizes = component_sizes({0, 0, 1, 2});  // one chain of 4
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{4}));
}

TEST(ComponentSizeHistogram, PowerOfTwoBuckets) {
  // Sizes 3, 2, 1 -> buckets 2:[2,3], 1:[1].
  const auto hist = component_size_histogram({0, 0, 0, 3, 4, 4});
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(hist[1], (std::pair<std::uint64_t, std::uint64_t>{2, 2}));
}

}  // namespace
}  // namespace lacc::core
