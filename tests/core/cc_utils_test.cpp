#include <gtest/gtest.h>

#include "core/options.hpp"
#include "support/error.hpp"

namespace lacc::core {
namespace {

TEST(CountComponents, FlatParentVector) {
  EXPECT_EQ(count_components({0, 0, 2, 2, 2}), 2u);
  EXPECT_EQ(count_components({0, 1, 2}), 3u);
  EXPECT_EQ(count_components({}), 0u);
}

TEST(CountComponents, FollowsNonFlatForests) {
  // 0 <- 1 <- 2 (a chain) plus 3 alone: 2 components.
  EXPECT_EQ(count_components({0, 0, 1, 3}), 2u);
}

TEST(CountComponents, DetectsCycles) {
  EXPECT_THROW(count_components({1, 0}), Error);
}

TEST(NormalizeLabels, PicksMinimumVertexAsLabel) {
  // Components {0,1} rooted at 1 and {2,3} rooted at 3.
  const auto norm = normalize_labels({1, 1, 3, 3});
  EXPECT_EQ(norm, (std::vector<VertexId>{0, 0, 2, 2}));
}

TEST(NormalizeLabels, AgreesAcrossDifferentRootChoices) {
  EXPECT_EQ(normalize_labels({1, 1, 3, 3}), normalize_labels({0, 0, 2, 2}));
}

TEST(SamePartition, ComparesStructureNotLabels) {
  EXPECT_TRUE(same_partition({5, 5, 2, 2, 2, 5}, {0, 0, 2, 2, 2, 0}));
  EXPECT_FALSE(same_partition({0, 0, 2, 2}, {0, 1, 2, 2}));
  EXPECT_FALSE(same_partition({0, 0}, {0, 0, 2}));
}

TEST(SamePartition, NonFlatInputs) {
  // chain 0<-1<-2 vs flat labeling of the same component.
  EXPECT_TRUE(same_partition({0, 0, 1}, {0, 0, 0}));
}

TEST(ComponentSizes, SortedDescending) {
  // Components: {0,1,2}, {3}, {4,5}.
  const auto sizes = component_sizes({0, 0, 0, 3, 4, 4});
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{3, 2, 1}));
}

TEST(ComponentSizes, FollowsChains) {
  const auto sizes = component_sizes({0, 0, 1, 2});  // one chain of 4
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{4}));
}

TEST(ComponentSizesByLabel, PairsLabelsWithSizesLargestFirst) {
  // Components: {0,1,2}, {3}, {4,5} — labels are the minimum vertex ids.
  using P = std::pair<VertexId, std::uint64_t>;
  const auto sized = component_sizes_by_label({0, 0, 0, 3, 4, 4});
  EXPECT_EQ(sized, (std::vector<P>{{0, 3}, {4, 2}, {3, 1}}));
}

TEST(ComponentSizesByLabel, CanonicalizesNonFlatForests) {
  using P = std::pair<VertexId, std::uint64_t>;
  // Chain 0<-1<-2 rooted arbitrarily plus singleton: labels collapse to
  // the component minimum regardless of root choice.
  const auto sized = component_sizes_by_label({2, 2, 2, 3});
  EXPECT_EQ(sized, (std::vector<P>{{0, 3}, {3, 1}}));
}

TEST(ComponentSizesByLabel, TiesBreakOnSmallerLabel) {
  using P = std::pair<VertexId, std::uint64_t>;
  const auto sized = component_sizes_by_label({0, 0, 2, 2});
  EXPECT_EQ(sized, (std::vector<P>{{0, 2}, {2, 2}}));
}

TEST(TopKComponents, ReturnsLargestKAndClampsK) {
  using P = std::pair<VertexId, std::uint64_t>;
  const std::vector<VertexId> parent = {0, 0, 0, 3, 4, 4};
  EXPECT_EQ(top_k_components(parent, 2), (std::vector<P>{{0, 3}, {4, 2}}));
  EXPECT_EQ(top_k_components(parent, 0), (std::vector<P>{}));
  // k beyond the component count returns everything.
  EXPECT_EQ(top_k_components(parent, 99), component_sizes_by_label(parent));
}

TEST(TopKComponents, EmptyGraph) {
  EXPECT_TRUE(top_k_components({}, 5).empty());
}

TEST(ComponentSizeHistogram, PowerOfTwoBuckets) {
  // Sizes 3, 2, 1 -> buckets 2:[2,3], 1:[1].
  const auto hist = component_size_histogram({0, 0, 0, 3, 4, 4});
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0], (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(hist[1], (std::pair<std::uint64_t, std::uint64_t>{2, 2}));
}

}  // namespace
}  // namespace lacc::core
