#include "core/fastsv.hpp"

#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "core/lacc_serial.hpp"
#include "graph/generators.hpp"

namespace lacc::core {
namespace {

using graph::Csr;

void expect_correct_serial(const graph::EdgeList& el) {
  const Csr g(el);
  const auto result = fastsv(g);
  const auto truth = baselines::union_find_cc(g);
  EXPECT_TRUE(same_partition(result.parent, truth.parent));
  // FastSV converges to the minimum vertex id of each component.
  const auto norm = normalize_labels(truth.parent);
  EXPECT_EQ(result.parent, norm);
}

void expect_correct_dist(const graph::EdgeList& el, int ranks) {
  const auto result = fastsv_dist(el, ranks, sim::MachineModel::local());
  const auto truth = baselines::union_find_cc(el);
  EXPECT_TRUE(same_partition(result.cc.parent, truth.parent)) << ranks;
  EXPECT_EQ(result.cc.parent, normalize_labels(truth.parent));
}

TEST(FastSv, SerialSimpleShapes) {
  expect_correct_serial(graph::path(50));
  expect_correct_serial(graph::cycle(33));
  expect_correct_serial(graph::star(40));
  expect_correct_serial(graph::complete(16));
  expect_correct_serial(graph::empty_graph(12));
}

TEST(FastSv, SerialRandomGraphs) {
  for (const EdgeId m : {100u, 500u, 2000u})
    expect_correct_serial(graph::erdos_renyi(800, m, m + 1));
  expect_correct_serial(graph::erdos_renyi(1000, 500, 501));  // regression
}

TEST(FastSv, SerialManyComponentsAndPowerLaw) {
  expect_correct_serial(graph::clustered_components(2000, 60, 5.0, 7));
  expect_correct_serial(graph::path_forest(3000, 10, 9));
  expect_correct_serial(graph::rmat(10, 4096, 11));
}

TEST(FastSv, SerialLogarithmicIterations) {
  EXPECT_LE(fastsv(Csr(graph::path(4096))).iterations, 30);
}

TEST(FastSv, DistributedMatchesAcrossGrids) {
  const auto el = graph::erdos_renyi(600, 1200, 13);
  for (const int ranks : {1, 4, 9, 16}) expect_correct_dist(el, ranks);
}

TEST(FastSv, DistributedVariedGraphs) {
  expect_correct_dist(graph::clustered_components(900, 30, 5.0, 17), 9);
  expect_correct_dist(graph::path_forest(1200, 12, 19), 4);
  expect_correct_dist(graph::mesh3d(6, 5, 4), 4);
  expect_correct_dist(graph::empty_graph(40), 4);
}

TEST(FastSv, AgreesWithLacc) {
  const auto el = graph::preferential_attachment(1500, 4, 21, 0.1);
  const auto fsv = fastsv_dist(el, 4, sim::MachineModel::local());
  const auto lacc = lacc_dist(el, 4, sim::MachineModel::local());
  EXPECT_TRUE(same_partition(fsv.cc.parent, lacc.cc.parent));
}

TEST(FastSv, DeterministicModeledTime) {
  const auto el = graph::erdos_renyi(400, 900, 23);
  const auto a = fastsv_dist(el, 4, sim::MachineModel::edison());
  const auto b = fastsv_dist(el, 4, sim::MachineModel::edison());
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
}

}  // namespace
}  // namespace lacc::core
