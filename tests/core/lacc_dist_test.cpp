#include "core/lacc_dist.hpp"

#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "core/lacc_serial.hpp"
#include "graph/generators.hpp"

namespace lacc::core {
namespace {

void expect_correct(const graph::EdgeList& el, int ranks,
                    const LaccOptions& options = {}) {
  const auto result =
      lacc_dist(el, ranks, sim::MachineModel::local(), options);
  const auto truth = baselines::union_find_cc(el);
  EXPECT_TRUE(same_partition(result.cc.parent, truth.parent))
      << "ranks=" << ranks;
  for (VertexId v = 0; v < el.n; ++v)
    EXPECT_EQ(result.cc.parent[result.cc.parent[v]], result.cc.parent[v]);
}

TEST(LaccDist, SimpleShapesAcrossGrids) {
  for (const int ranks : {1, 4, 9}) {
    expect_correct(graph::path(40), ranks);
    expect_correct(graph::cycle(33), ranks);
    expect_correct(graph::star(30), ranks);
    expect_correct(graph::empty_graph(12), ranks);
  }
}

TEST(LaccDist, RandomGraphsAcrossDensities) {
  for (const EdgeId m : {150u, 600u, 2500u})
    expect_correct(graph::erdos_renyi(500, m, m + 3), 4);
}

TEST(LaccDist, TheDebuggedRegressionGraph) {
  // The exact graph that exposed the Lemma-1 marking bug in the serial
  // implementation (a hooked root not recognized as hooked).
  expect_correct(graph::erdos_renyi(1000, 500, 501), 4);
  expect_correct(graph::erdos_renyi(1000, 500, 501), 9);
}

TEST(LaccDist, ManyComponentGraphs) {
  expect_correct(graph::clustered_components(1200, 40, 5.0, 7), 9);
  expect_correct(graph::path_forest(2000, 12, 9), 16);
}

TEST(LaccDist, PowerLawAndMesh) {
  expect_correct(graph::rmat(9, 2048, 3), 4);
  expect_correct(graph::mesh3d(6, 6, 4), 9);
  expect_correct(graph::preferential_attachment(800, 4, 5, 0.1), 4);
}

TEST(LaccDist, LargeGridSmallGraph) {
  // More ranks than is sensible for the size: empty local chunks must work.
  expect_correct(graph::path(20), 25);
  expect_correct(graph::erdos_renyi(30, 60, 1), 36);
}

TEST(LaccDist, AgreesWithSerialLacc) {
  const auto el = graph::clustered_components(900, 30, 6.0, 17);
  const auto serial = lacc_grb(graph::Csr(el));
  const auto distributed = lacc_dist(el, 9, sim::MachineModel::local());
  EXPECT_TRUE(same_partition(serial.parent, distributed.cc.parent));
}

TEST(LaccDist, AblationsAllCorrect) {
  const auto el = graph::erdos_renyi(600, 900, 23);
  for (const bool track : {true, false})
    for (const bool sparse_vec : {true, false})
      for (const bool hypercube : {true, false})
        for (const bool hotspot : {true, false}) {
          LaccOptions options;
          options.track_converged = track;
          options.use_sparse_vectors = sparse_vec;
          options.hypercube_alltoall = hypercube;
          options.hotspot_broadcast = hotspot;
          options.sparse_uncond_hooking = sparse_vec;
          expect_correct(el, 4, options);
        }
}

TEST(LaccDist, TraceMatchesConvergenceBehaviour) {
  const auto el = graph::clustered_components(2000, 60, 5.0, 11);
  const auto result = lacc_dist(el, 4, sim::MachineModel::local());
  ASSERT_FALSE(result.cc.trace.empty());
  // Two clean iterations are needed before the first retirement.
  EXPECT_EQ(result.cc.trace.front().converged_vertices, 0u);
  std::uint64_t prev = 0;
  for (const auto& rec : result.cc.trace) {
    EXPECT_GE(rec.converged_vertices, prev);
    prev = rec.converged_vertices;
  }
  // Termination can precede the formal retirement of the last stars, but
  // most of the graph must have been retired along the way.
  EXPECT_GT(prev, 1000u);
}

TEST(LaccDist, PhaseRegionsAreRecorded) {
  const auto el = graph::erdos_renyi(400, 900, 29);
  const auto result = lacc_dist(el, 4, sim::MachineModel::edison());
  const auto regions = result.spmd.stats[0].region_totals();
  for (const char* phase :
       {"cond-hook", "uncond-hook", "shortcut", "starcheck"}) {
    ASSERT_TRUE(regions.count(phase)) << phase;
    EXPECT_GT(regions.at(phase).modeled_seconds(), 0.0) << phase;
  }
  // Every iteration is wrapped in an "iter" span covering the phases.
  ASSERT_TRUE(regions.count("iter"));
  EXPECT_GE(regions.at("iter").modeled_seconds(),
            regions.at("cond-hook").modeled_seconds());
  EXPECT_GT(result.modeled_seconds, 0.0);
}

TEST(LaccDist, ModeledTimeIsDeterministic) {
  const auto el = graph::erdos_renyi(300, 700, 31);
  const auto a = lacc_dist(el, 4, sim::MachineModel::edison());
  const auto b = lacc_dist(el, 4, sim::MachineModel::edison());
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
  EXPECT_TRUE(same_partition(a.cc.parent, b.cc.parent));
}

TEST(LaccDist, ExtractRequestCountersExist) {
  const auto el = graph::erdos_renyi(400, 1200, 37);
  const auto result = lacc_dist(el, 4, sim::MachineModel::local());
  bool found = false;
  for (const auto& [name, value] : result.spmd.stats[0].counters)
    if (name.rfind("extract_req_it", 0) == 0) found = true;
  EXPECT_TRUE(found);
}

TEST(LaccDist, PerIterationModeledTimesSumToTotal) {
  const auto el = graph::clustered_components(1500, 50, 5.0, 43);
  const auto result = lacc_dist(el, 4, sim::MachineModel::edison());
  double sum = 0;
  for (const auto& rec : result.cc.trace) {
    EXPECT_GT(rec.modeled_seconds, 0.0);
    sum += rec.modeled_seconds;
  }
  // The iterations account for (almost) all the modeled time; only the
  // final gather of the parent vector falls outside them.
  EXPECT_LE(sum, result.modeled_seconds);
  EXPECT_GT(sum, result.modeled_seconds * 0.8);
}

}  // namespace
}  // namespace lacc::core
