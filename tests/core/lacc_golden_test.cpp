// Golden-determinism regression test for the distributed LACC hot paths.
//
// The active-set iteration and zero-allocation communication refactor is a
// pure wall-clock optimization: it must not change the modeled cost, the
// per-iteration trace, or the computed labeling in any way.  This test pins
// `modeled_seconds`, every iteration's trace record, and the parent vector
// (as an order-sensitive FNV-1a digest) against values recorded from the
// pre-refactor implementation, across the option axes the refactor touches:
// sparse/dense vectors, pairwise/hypercube all-to-all, and cyclic vs
// block-aligned layouts, on three structurally distinct Table-III stand-ins.
//
// To regenerate the golden table after an *intentional* cost-model change,
// run with LACC_GOLDEN_PRINT=1:
//
//   LACC_GOLDEN_PRINT=1 ./core_dist_test --gtest_filter='LaccGolden.*'
//
// and paste the printed lines over kGolden below.  Never regenerate to make
// a perf-only refactor pass — that is the regression this test exists for.
#include "core/lacc_dist.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/testproblems.hpp"
#include "sim/machine.hpp"

namespace lacc::core {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int b = 0; b < 8; ++b) {
    h ^= (x >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

std::string hexdouble(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

/// One run of lacc_dist, serialized into a single comparable line: the
/// option axes, iteration count, total and per-iteration modeled seconds
/// (exact hexfloat), a digest of all integer trace fields, and a digest of
/// the parent labeling.
std::string golden_line(const graph::EdgeList& el, const std::string& name,
                        bool sparse, bool hypercube, bool cyclic, int ranks,
                        bool prepass = false) {
  LaccOptions options;
  options.use_sparse_vectors = sparse;
  options.sparse_uncond_hooking = sparse;
  options.hypercube_alltoall = hypercube;
  options.cyclic_vectors = cyclic;
  options.sampling_prepass = prepass;
  const auto result =
      lacc_dist(el, ranks, sim::MachineModel::edison(), options);

  std::uint64_t trace_hash = kFnvSeed;
  std::ostringstream iter_ms;
  for (const auto& rec : result.cc.trace) {
    trace_hash = fnv1a(trace_hash, static_cast<std::uint64_t>(rec.iteration));
    trace_hash = fnv1a(trace_hash, rec.active_vertices);
    trace_hash = fnv1a(trace_hash, rec.converged_vertices);
    trace_hash = fnv1a(trace_hash, rec.cond_hooks);
    trace_hash = fnv1a(trace_hash, rec.uncond_hooks);
    trace_hash = fnv1a(trace_hash, rec.star_vertices);
    iter_ms << ' ' << hexdouble(rec.modeled_seconds);
  }
  std::uint64_t parent_hash = kFnvSeed;
  for (const VertexId p : result.cc.parent)
    parent_hash = fnv1a(parent_hash, static_cast<std::uint64_t>(p));

  std::ostringstream os;
  os << name << " s=" << sparse << " h=" << hypercube << " c=" << cyclic;
  if (prepass) os << " p=1";  // absent on prepass-off lines: kGolden is frozen
  os << " it=" << result.cc.iterations
     << " ms=" << hexdouble(result.modeled_seconds) << std::hex
     << " trace=" << trace_hash << " parents=" << parent_hash
     << " iter_ms=[" << iter_ms.str() << " ]";
  return os.str();
}

// Recorded from the pre-refactor implementation (seed commit); see the file
// comment for the regeneration procedure.
const char* const kGolden[] = {
    "archaea s=1 h=1 c=1 it=4 ms=0x1.b5d87bf63f743p-12 trace=e89600a75b32c04 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.1111bb3aab92bp-13 0x1.197a1fa0b6947p-13 0x1.fb354c433d22p-14 0x1.0e29dbbdf8c1p-15 ]",
    "archaea s=1 h=1 c=0 it=4 ms=0x1.5ffd1aa8707bdp-12 trace=e89600a75b32c04 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.cfec20fea5c7ap-14 0x1.b56a8a6d7a5b2p-14 0x1.99cbcc2463eb4p-14 0x1.8347cc44f785p-16 ]",
    "archaea s=1 h=0 c=1 it=4 ms=0x1.1cfbad03ec10fp-11 trace=e89600a75b32c04 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.5f15544c5ff04p-13 0x1.64f979f3e941ap-13 0x1.4e227df1d49dcp-13 0x1.86f59f7649d1p-15 ]",
    "archaea s=1 h=0 c=0 it=4 ms=0x1.eba8b4f58e3afp-12 trace=e89600a75b32c04 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.35f9a99107415p-13 0x1.32c9d942784c5p-13 0x1.277eb8dc6ec48p-13 0x1.1c3cb8ecb88fp-15 ]",
    "archaea s=0 h=1 c=1 it=4 ms=0x1.bef47f81ec8c7p-12 trace=e89600a75b32c04 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.12cbce63ea79fp-13 0x1.197a1fa0b6947p-13 0x1.03bbd88ee56cep-13 0x1.379ce1c14a768p-15 ]",
    "archaea s=0 h=1 c=0 it=4 ms=0x1.662cb84d6c78p-12 trace=e89600a75b32c04 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.d2771f8af9874p-14 0x1.b56a8a6d7a5bp-14 0x1.a200a666b679p-14 0x1.bb42435a1e13p-16 ]",
    "archaea s=0 h=0 c=1 it=4 ms=0x1.2189aec9c29cep-11 trace=e89600a75b32c04 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.60cf67759ed77p-13 0x1.64f979f3e941bp-13 0x1.5443b05f1b798p-13 0x1.b068a5799b84p-15 ]",
    "archaea s=0 h=0 c=0 it=4 ms=0x1.f1d8529a8a36fp-12 trace=e89600a75b32c04 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.373f28d731212p-13 0x1.32c9d942784c4p-13 0x1.2b9925fd980b4p-13 0x1.3839f4774bd5p-15 ]",
    "queen_4147 s=1 h=1 c=1 it=4 ms=0x1.648eb73c344fcp-12 trace=d23bd022742c08ef parents=218035740d3f1b83 iter_ms=[ 0x1.b2d43206ff824p-14 0x1.bfd67b7d676acp-14 0x1.b08e88bd025e8p-14 0x1.bc069abd9fcep-16 ]",
    "queen_4147 s=1 h=1 c=0 it=4 ms=0x1.258db1d763017p-12 trace=d23bd022742c08ef parents=218035740d3f1b83 iter_ms=[ 0x1.6669145e1d409p-14 0x1.7191b167a8f9fp-14 0x1.705c4d4ca8bfp-14 0x1.377ed12c7431p-16 ]",
    "queen_4147 s=1 h=0 c=1 it=4 ms=0x1.eef8322a11377p-12 trace=d23bd022742c08ef parents=218035740d3f1b83 iter_ms=[ 0x1.276db215341e3p-13 0x1.3073158ee9c33p-13 0x1.305bd86a3c4eap-13 0x1.56cf111720fb8p-15 ]",
    "queen_4147 s=1 h=0 c=0 it=4 ms=0x1.a361f30cb776ap-12 trace=d23bd022742c08ef parents=218035740d3f1b83 iter_ms=[ 0x1.01382340c2fd9p-13 0x1.04483307072a1p-13 0x1.03ad80f9870bcp-13 0x1.ecb076c0edcfp-16 ]",
    "queen_4147 s=0 h=1 c=1 it=4 ms=0x1.64a31dea57fdfp-12 trace=d23bd022742c08ef parents=218035740d3f1b83 iter_ms=[ 0x1.b325ccbf8e3aep-14 0x1.bfd67b7d676acp-14 0x1.b08e88bd025eap-14 0x1.bc069abd9fcep-16 ]",
    "queen_4147 s=0 h=1 c=0 it=4 ms=0x1.259da5bddf258p-12 trace=d23bd022742c08ef parents=218035740d3f1b83 iter_ms=[ 0x1.66a8e3f80dd0dp-14 0x1.7191b167a8f9fp-14 0x1.705c4d4ca8bfp-14 0x1.377ed12c7431p-16 ]",
    "queen_4147 s=0 h=0 c=1 it=4 ms=0x1.ef0c98d834e59p-12 trace=d23bd022742c08ef parents=218035740d3f1b83 iter_ms=[ 0x1.27967f717b7a8p-13 0x1.3073158ee9c32p-13 0x1.305bd86a3c4eap-13 0x1.56cf111720fb8p-15 ]",
    "queen_4147 s=0 h=0 c=0 it=4 ms=0x1.a371e6f3339abp-12 trace=d23bd022742c08ef parents=218035740d3f1b83 iter_ms=[ 0x1.01580b0dbb45cp-13 0x1.04483307072ap-13 0x1.03ad80f9870bcp-13 0x1.ecb076c0edcfp-16 ]",
    "uk-2002 s=1 h=1 c=1 it=4 ms=0x1.1516829faf785p-11 trace=4e2610e22fb42e1 parents=f8420ade2d9e8c44 iter_ms=[ 0x1.4dee08320b289p-13 0x1.535aeac4a32c4p-13 0x1.4eae00703c1aep-13 0x1.918c5c5f4dc6p-15 ]",
    "uk-2002 s=1 h=1 c=0 it=4 ms=0x1.c7e27e92473b8p-12 trace=4e2610e22fb42e1 parents=f8420ade2d9e8c44 iter_ms=[ 0x1.2a06e0f238be3p-13 0x1.12e9692ab83c6p-13 0x1.0c0c143431f74p-13 0x1.1b227b4dae148p-15 ]",
    "uk-2002 s=1 h=0 c=1 it=4 ms=0x1.5684e1f8db63cp-11 trace=4e2610e22fb42e1 parents=f8420ade2d9e8c44 iter_ms=[ 0x1.996d62853dd5bp-13 0x1.9eda4517d5d94p-13 0x1.9f35d84072294p-13 0x1.052c100bcf6d8p-14 ]",
    "uk-2002 s=1 h=0 c=0 it=4 ms=0x1.223a50342d6c9p-11 trace=4e2610e22fb42e1 parents=f8420ade2d9e8c44 iter_ms=[ 0x1.75863b456b6b3p-13 0x1.5e68c37deae94p-13 0x1.578b6e8764a4cp-13 0x1.75bb4e17eae4p-15 ]",
    "uk-2002 s=0 h=1 c=1 it=4 ms=0x1.1670a86396f6ep-11 trace=e164769734801698 parents=faec9fb6507402bc iter_ms=[ 0x1.51874d708c4b2p-13 0x1.53ba3fffda43bp-13 0x1.4f93528174a16p-13 0x1.93b7067202adp-15 ]",
    "uk-2002 s=0 h=1 c=0 it=4 ms=0x1.ca4b5bedceeep-12 trace=e164769734801698 parents=faec9fb6507402bc iter_ms=[ 0x1.2d25d1be3a8c7p-13 0x1.13ecb82e70468p-13 0x1.0c63d1a7dcbd8p-13 0x1.1c81711c592ep-15 ]",
    "uk-2002 s=0 h=0 c=1 it=4 ms=0x1.59c236cba4266p-11 trace=e164769734801698 parents=faec9fb6507402bc iter_ms=[ 0x1.9d06a7c3bef85p-13 0x1.9f399a530cf0ep-13 0x1.a7a7e68d2fcp-13 0x1.0641651529e08p-14 ]",
    "uk-2002 s=0 h=0 c=0 it=4 ms=0x1.236ebee1f145fp-11 trace=e164769734801698 parents=faec9fb6507402bc iter_ms=[ 0x1.78a52c116d399p-13 0x1.5f6c1281a2f38p-13 0x1.57e32bfb0f6b6p-13 0x1.771a43e695fdp-15 ]",
};

TEST(LaccGolden, ModeledCostTraceAndLabelsArePinned) {
  const bool print_mode = std::getenv("LACC_GOLDEN_PRINT") != nullptr;
  const auto problems = graph::make_test_problems(0.02, 42);
  const std::vector<std::string> names = {"archaea", "queen_4147", "uk-2002"};

  std::vector<std::string> actual;
  for (const auto& name : names) {
    const auto& problem = graph::find_problem(problems, name);
    for (const bool sparse : {true, false})
      for (const bool hypercube : {true, false})
        for (const bool cyclic : {true, false})
          actual.push_back(golden_line(problem.graph, name, sparse, hypercube,
                                       cyclic, /*ranks=*/4));
  }

  if (print_mode) {
    for (const auto& line : actual) std::cout << "    \"" << line << "\",\n";
    GTEST_SKIP() << "golden print mode: comparison skipped";
  }

  ASSERT_EQ(actual.size(), std::size(kGolden));
  for (std::size_t k = 0; k < actual.size(); ++k)
    EXPECT_EQ(actual[k], kGolden[k]) << "config " << k;
}

// Same three graphs and option axes with the sampling pre-pass enabled
// ("p=1" lines).  Recorded when the pre-pass landed; regenerate with
//
//   LACC_GOLDEN_PRINT=1 ./core_dist_test --gtest_filter='LaccGoldenPrepass.*'
//
// only for an intentional pre-pass or cost-model change.
const char* const kGoldenPrepass[] = {
    "archaea s=1 h=1 c=1 p=1 it=1 ms=0x1.83e9eed556736p-14 trace=7c59cd1993e6cc45 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.77bfeda28b736p-15 ]",
    "archaea s=1 h=1 c=0 p=1 it=1 ms=0x1.326de3ee2a3d8p-14 trace=7c59cd1993e6cc45 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.c1f84000cd3ccp-16 ]",
    "archaea s=1 h=0 c=1 p=1 it=1 ms=0x1.d97a44228fe26p-14 trace=7c59cd1993e6cc45 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.f08bb15adc88ap-15 ]",
    "archaea s=1 h=0 c=0 p=1 it=1 ms=0x1.82f5bbbe604b6p-14 trace=7c59cd1993e6cc45 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.3b94f2caa36e4p-15 ]",
    "archaea s=0 h=1 c=1 p=1 it=1 ms=0x1.83e9eed556736p-14 trace=7c59cd1993e6cc45 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.77bfeda28b736p-15 ]",
    "archaea s=0 h=1 c=0 p=1 it=1 ms=0x1.326de3ee2a3d8p-14 trace=7c59cd1993e6cc45 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.c1f84000cd3ccp-16 ]",
    "archaea s=0 h=0 c=1 p=1 it=1 ms=0x1.d97a44228fe26p-14 trace=7c59cd1993e6cc45 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.f08bb15adc88ap-15 ]",
    "archaea s=0 h=0 c=0 p=1 it=1 ms=0x1.82f5bbbe604b6p-14 trace=7c59cd1993e6cc45 parents=5cc4ad6feb292e31 iter_ms=[ 0x1.3b94f2caa36e4p-15 ]",
    "queen_4147 s=1 h=1 c=1 p=1 it=1 ms=0x1.872c13b2e2d0ep-15 trace=9d60d9a9b162b542 parents=218035740d3f1b83 iter_ms=[ 0x1.bc069abd9fcd4p-16 ]",
    "queen_4147 s=1 h=1 c=0 p=1 it=1 ms=0x1.44c5d2d27cb54p-15 trace=9d60d9a9b162b542 parents=218035740d3f1b83 iter_ms=[ 0x1.377ed12c74314p-16 ]",
    "queen_4147 s=1 h=0 c=1 p=1 it=1 ms=0x1.141de1a9a7765p-14 trace=9d60d9a9b162b542 parents=218035740d3f1b83 iter_ms=[ 0x1.56cf111720fb8p-15 ]",
    "queen_4147 s=1 h=0 c=0 p=1 it=1 ms=0x1.c7a29184d48bbp-15 trace=9d60d9a9b162b542 parents=218035740d3f1b83 iter_ms=[ 0x1.ecb076c0edd06p-16 ]",
    "queen_4147 s=0 h=1 c=1 p=1 it=1 ms=0x1.872c13b2e2d0ep-15 trace=9d60d9a9b162b542 parents=218035740d3f1b83 iter_ms=[ 0x1.bc069abd9fcd4p-16 ]",
    "queen_4147 s=0 h=1 c=0 p=1 it=1 ms=0x1.44c5d2d27cb54p-15 trace=9d60d9a9b162b542 parents=218035740d3f1b83 iter_ms=[ 0x1.377ed12c74314p-16 ]",
    "queen_4147 s=0 h=0 c=1 p=1 it=1 ms=0x1.141de1a9a7765p-14 trace=9d60d9a9b162b542 parents=218035740d3f1b83 iter_ms=[ 0x1.56cf111720fb8p-15 ]",
    "queen_4147 s=0 h=0 c=0 p=1 it=1 ms=0x1.c7a29184d48bbp-15 trace=9d60d9a9b162b542 parents=218035740d3f1b83 iter_ms=[ 0x1.ecb076c0edd06p-16 ]",
    "uk-2002 s=1 h=1 c=1 p=1 it=1 ms=0x1.c46d4f30364b2p-14 trace=c5f68ac5d9e37517 parents=faec9fb6507402bc iter_ms=[ 0x1.d0b029d8cc82ep-15 ]",
    "uk-2002 s=1 h=1 c=0 p=1 it=1 ms=0x1.843cc3b3512e4p-14 trace=c5f68ac5d9e37517 parents=faec9fb6507402bc iter_ms=[ 0x1.59abaa5c03732p-15 ]",
    "uk-2002 s=1 h=0 c=1 p=1 it=1 ms=0x1.0f8310fd398d6p-13 trace=c5f68ac5d9e37517 parents=faec9fb6507402bc iter_ms=[ 0x1.24bdf6c88ecbep-14 ]",
    "uk-2002 s=1 h=0 c=0 p=1 it=1 ms=0x1.d4c49b83873c4p-14 trace=c5f68ac5d9e37517 parents=faec9fb6507402bc iter_ms=[ 0x1.b4447d264043p-15 ]",
    "uk-2002 s=0 h=1 c=1 p=1 it=1 ms=0x1.c46d4f30364b2p-14 trace=c5f68ac5d9e37517 parents=faec9fb6507402bc iter_ms=[ 0x1.d0b029d8cc82ep-15 ]",
    "uk-2002 s=0 h=1 c=0 p=1 it=1 ms=0x1.843cc3b3512e4p-14 trace=c5f68ac5d9e37517 parents=faec9fb6507402bc iter_ms=[ 0x1.59abaa5c03732p-15 ]",
    "uk-2002 s=0 h=0 c=1 p=1 it=1 ms=0x1.0f8310fd398d6p-13 trace=c5f68ac5d9e37517 parents=faec9fb6507402bc iter_ms=[ 0x1.24bdf6c88ecbep-14 ]",
    "uk-2002 s=0 h=0 c=0 p=1 it=1 ms=0x1.d4c49b83873c4p-14 trace=c5f68ac5d9e37517 parents=faec9fb6507402bc iter_ms=[ 0x1.b4447d264043p-15 ]",
};

TEST(LaccGoldenPrepass, PrepassOnCostTraceAndLabelsArePinned) {
  const bool print_mode = std::getenv("LACC_GOLDEN_PRINT") != nullptr;
  const auto problems = graph::make_test_problems(0.02, 42);
  const std::vector<std::string> names = {"archaea", "queen_4147", "uk-2002"};

  std::vector<std::string> actual;
  for (const auto& name : names) {
    const auto& problem = graph::find_problem(problems, name);
    for (const bool sparse : {true, false})
      for (const bool hypercube : {true, false})
        for (const bool cyclic : {true, false})
          actual.push_back(golden_line(problem.graph, name, sparse, hypercube,
                                       cyclic, /*ranks=*/4,
                                       /*prepass=*/true));
  }

  if (print_mode) {
    for (const auto& line : actual) std::cout << "    \"" << line << "\",\n";
    GTEST_SKIP() << "golden print mode: comparison skipped";
  }

  ASSERT_EQ(actual.size(), std::size(kGoldenPrepass));
  for (std::size_t k = 0; k < actual.size(); ++k)
    EXPECT_EQ(actual[k], kGoldenPrepass[k]) << "config " << k;
}

}  // namespace
}  // namespace lacc::core
