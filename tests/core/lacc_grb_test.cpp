#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "core/lacc_serial.hpp"
#include "graph/generators.hpp"

namespace lacc::core {
namespace {

using graph::Csr;

void expect_correct(const graph::EdgeList& el, const LaccOptions& options = {}) {
  const Csr g(el);
  const auto lacc = lacc_grb(g, options);
  const auto truth = baselines::union_find_cc(g);
  EXPECT_TRUE(same_partition(lacc.parent, truth.parent));
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(lacc.parent[lacc.parent[v]], lacc.parent[v]);
}

TEST(LaccGrb, SimpleShapes) {
  expect_correct(graph::path(50));
  expect_correct(graph::cycle(33));
  expect_correct(graph::star(40));
  expect_correct(graph::complete(16));
  expect_correct(graph::empty_graph(12));
}

TEST(LaccGrb, TwoVertexAndTinyCases) {
  graph::EdgeList pair(2);
  pair.add(0, 1);
  expect_correct(pair);
  expect_correct(graph::path(3));
  expect_correct(graph::empty_graph(1));
}

TEST(LaccGrb, RandomGraphsAcrossDensities) {
  for (const EdgeId m : {100u, 500u, 2000u, 8000u})
    expect_correct(graph::erdos_renyi(1000, m, m + 1));
}

TEST(LaccGrb, ManyComponentGraphs) {
  expect_correct(graph::clustered_components(3000, 80, 6.0, 7));
  expect_correct(graph::path_forest(5000, 12, 9));
}

TEST(LaccGrb, PowerLawGraphs) {
  expect_correct(graph::rmat(11, 8192, 3));
  expect_correct(graph::preferential_attachment(2000, 4, 5, 0.1));
}

TEST(LaccGrb, MeshGraph) { expect_correct(graph::mesh3d(8, 8, 4)); }

TEST(LaccGrb, AgreesWithDenseASIterationForIteration) {
  // Not required in general (hook winners may differ), but both must land
  // on the same partition.
  const Csr g(graph::erdos_renyi(500, 1200, 77));
  const auto a = awerbuch_shiloach(g);
  const auto b = lacc_grb(g);
  EXPECT_TRUE(same_partition(a.parent, b.parent));
}

TEST(LaccGrb, AblationsAllProduceCorrectPartitions) {
  const auto el = graph::clustered_components(2500, 60, 5.0, 13);
  for (const bool track : {true, false})
    for (const bool sparse_uncond : {true, false}) {
      LaccOptions options;
      options.track_converged = track;
      options.sparse_uncond_hooking = sparse_uncond;
      expect_correct(el, options);
    }
}

TEST(LaccGrb, ConvergedVerticesGrowMonotonically) {
  const Csr g(graph::clustered_components(4000, 100, 6.0, 11));
  const auto result = lacc_grb(g);
  std::uint64_t prev = 0;
  for (const auto& rec : result.trace) {
    EXPECT_GE(rec.converged_vertices, prev);
    prev = rec.converged_vertices;
  }
  // Termination can precede the formal retirement of the last few stars,
  // but on a many-component graph the bulk must have been retired (that is
  // the sparsity win of Section IV-B).
  EXPECT_GT(prev, 2000u);
}

TEST(LaccGrb, Lemma1DoesNotFireInIterationOne) {
  const Csr g(graph::clustered_components(1000, 30, 5.0, 3));
  const auto result = lacc_grb(g);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.front().converged_vertices, 0u);
}

TEST(LaccGrb, LogarithmicIterations) {
  const auto result = lacc_grb(Csr(graph::path(4096)));
  EXPECT_LE(result.iterations, 30);
}

TEST(LaccGrb, IsolatedVerticesConvergeByIterationTwo) {
  const auto result = lacc_grb(Csr(graph::empty_graph(100)));
  EXPECT_LE(result.iterations, 2);
}

}  // namespace
}  // namespace lacc::core
