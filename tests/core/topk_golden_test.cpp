// Golden test pinning top_k_components tie-breaking across rank counts.
//
// The serving tier's top-components view (serve::Snapshot, shard replicas)
// and the kernel CLI both surface top_k_components answers to users, so the
// exact ordering — size descending, ties broken by smaller canonical label,
// canonical label = minimum vertex id in the component — must never drift,
// and must be identical whatever rank count produced the labeling.  The
// first test pins hand-computable literals on a tie-heavy graph; the second
// pins an FNV-1a digest of the full top-k answer on a many-component
// path forest, regenerable with:
//
//   LACC_GOLDEN_PRINT=1 ./core_dist_test --gtest_filter='TopKGolden.*'
#include "core/options.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/lacc_dist.hpp"
#include "graph/generators.hpp"
#include "sim/machine.hpp"

namespace lacc::core {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t x) {
  for (int b = 0; b < 8; ++b) {
    h ^= (x >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

std::vector<std::pair<VertexId, std::uint64_t>> top_k_of(
    const graph::EdgeList& el, int ranks, std::size_t k) {
  const auto result =
      lacc_dist(el, ranks, sim::MachineModel::edison());
  return top_k_components(result.cc.parent, k);
}

TEST(TopKGolden, TieBreakLiteralsStableAcrossRanks) {
  // Components: {0..4} path, {5..9} cycle, {10..14} clique, {15..17} path,
  // {18..20} cycle — sizes [5, 5, 5, 3, 3], canonical labels = min ids.
  auto el = graph::disjoint_union(graph::path(5), graph::cycle(5));
  el = graph::disjoint_union(el, graph::complete(5));
  el = graph::disjoint_union(el, graph::path(3));
  el = graph::disjoint_union(el, graph::cycle(3));

  const std::vector<std::pair<VertexId, std::uint64_t>> expected = {
      {0, 5}, {5, 5}, {10, 5}, {15, 3}};
  for (const int ranks : {1, 4, 9}) {
    const auto top = top_k_of(el, ranks, 4);
    EXPECT_EQ(top, expected) << "ranks=" << ranks;
    // k past the component count clamps to all of them, same order.
    const auto all = top_k_of(el, ranks, 100);
    ASSERT_EQ(all.size(), 5u) << "ranks=" << ranks;
    EXPECT_EQ(all[4], (std::pair<VertexId, std::uint64_t>{18, 3}));
  }
}

TEST(TopKGolden, PathForestDigestStableAcrossRanks) {
  // Many small components with heavy size ties — the regime where an
  // unstable tie-break would scramble the answer.
  const auto el = graph::path_forest(600, 6, /*seed=*/29);
  constexpr std::uint64_t kGolden = 0x55b8ceeb173e8790ull;
  for (const int ranks : {1, 4, 9}) {
    const auto top = top_k_of(el, ranks, 16);
    std::uint64_t digest = kFnvSeed;
    for (const auto& [label, size] : top) {
      digest = fnv1a(digest, static_cast<std::uint64_t>(label));
      digest = fnv1a(digest, size);
    }
    if (std::getenv("LACC_GOLDEN_PRINT") != nullptr && ranks == 1) {
      std::cout << "TopKGolden digest: 0x" << std::hex << digest
                << std::dec << "\n";
      for (const auto& [label, size] : top)
        std::cout << "  label=" << label << " size=" << size << "\n";
    }
    EXPECT_EQ(digest, kGolden) << "ranks=" << ranks;
  }
}

}  // namespace
}  // namespace lacc::core
