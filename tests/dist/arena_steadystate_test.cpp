// Steady-state allocation check for the communication hot paths: after one
// warm-up round, repeated kernel calls must not create any new arena
// buffers — every scratch acquisition hits a recycled vector (the
// "zero-allocation hot path" property; support/arena.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dist/dist_mat.hpp"
#include "dist/ops.hpp"
#include "graph/generators.hpp"
#include "sim/runtime.hpp"

namespace lacc::dist {
namespace {

TEST(ArenaSteadyState, WarmKernelCallsCreateNoBuffers) {
  const auto el = graph::erdos_renyi(600, 1800, 33);
  const VertexId n = el.n;

  sim::run_spmd(4, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc A(grid, el);

    // Sparse and dense inputs so one round exercises both mxv branches.
    DistVec<VertexId> x_sparse(grid, n), x_dense(grid, n);
    DistVec<std::uint8_t> star(grid, n);
    for (const VertexId g : x_dense.owned()) {
      x_dense.set(g, g);
      if (g % 97 == 0) x_sparse.set(g, g);
      star.set(g, g % 2);
    }
    std::vector<Tuple<VertexId>> pairs;
    std::vector<VertexId> targets;
    for (const VertexId g : x_dense.owned()) {
      if (g % 7 == 0) pairs.push_back({(g + 3) % n, g});
      if (g % 5 == 0) targets.push_back((g + 1) % n);
    }
    const MaskSpec mask{&star, false};
    CommTuning sparse_tuning;   // votes sparse for x_sparse
    CommTuning dense_tuning;
    dense_tuning.force_dense = true;

    auto round = [&] {
      DistVec<VertexId> w(grid, n);
      for (const VertexId g : w.owned()) w.set(g, n + g);
      (void)mxv_select2nd_min(grid, A, x_sparse, mask, sparse_tuning);
      (void)mxv_select2nd_min(grid, A, x_dense, MaskSpec{}, dense_tuning);
      (void)mxv_select2nd_minmax(grid, A, x_sparse, MaskSpec{}, sparse_tuning);
      (void)mxv_select2nd_minmax(grid, A, x_dense, MaskSpec{}, dense_tuning);
      (void)scatter_assign_min(grid, w, pairs, sparse_tuning);
      (void)scatter_accumulate_min(grid, w, pairs, sparse_tuning);
      scatter_set(grid, star, targets, 1, sparse_tuning);
      (void)to_layout(grid, x_sparse, Layout::kCyclic, sparse_tuning);
    };

    round();  // warm-up: buffers are created here
    const std::uint64_t warm_creations = grid.arena().creations();
    const std::uint64_t warm_acquisitions = grid.arena().acquisitions();
    EXPECT_GT(warm_creations, 0u);

    for (int i = 0; i < 3; ++i) round();

    // Scratch was acquired again on every call, but nothing new was
    // allocated: the creation counter is flat after warm-up.
    EXPECT_GT(grid.arena().acquisitions(), warm_acquisitions);
    EXPECT_EQ(grid.arena().creations(), warm_creations)
        << "a kernel allocated a fresh arena buffer after warm-up";
  });
}

}  // namespace
}  // namespace lacc::dist
