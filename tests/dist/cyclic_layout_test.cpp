#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "core/lacc_dist.hpp"
#include "dist/ops.hpp"
#include "graph/generators.hpp"
#include "sim/runtime.hpp"

namespace lacc::dist {
namespace {

TEST(CyclicLayout, OwnershipAndSlots) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> v(grid, 23, Layout::kCyclic);
    std::uint64_t owned = 0;
    for (VertexId g = 0; g < 23; ++g) {
      const bool mine = g % 4 == static_cast<VertexId>(world.rank());
      EXPECT_EQ(v.owns(g), mine) << g;
      EXPECT_EQ(owner_rank(grid, v, g), static_cast<int>(g % 4));
      if (mine) ++owned;
    }
    EXPECT_EQ(v.local_size(), owned);
    for (VertexId k = 0; k < v.local_size(); ++k) {
      const VertexId g = v.global_at(k);
      EXPECT_TRUE(v.owns(g));
      EXPECT_EQ(v.local_slot(g), k);
    }
  });
}

TEST(CyclicLayout, StoredSemanticsAndOwnedIteration) {
  sim::run_spmd(9, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> v(grid, 50, Layout::kCyclic);
    for (const VertexId g : v.owned())
      if (g % 2 == 0) v.set(g, g * 3);
    for (const VertexId g : v.owned()) {
      EXPECT_EQ(v.has(g), g % 2 == 0);
      if (g % 2 == 0) {
        EXPECT_EQ(v.at(g), g * 3);
      }
    }
    const auto flat = to_global(grid, v, kNoVertex);
    if (world.rank() == 0) {
      for (VertexId g = 0; g < 50; ++g)
        EXPECT_EQ(flat[g], g % 2 == 0 ? g * 3 : kNoVertex);
    }
  });
}

TEST(CyclicLayout, ToLayoutRoundTrips) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> block(grid, 37);
    for (const VertexId g : block.owned())
      if (g % 3 != 0) block.set(g, g + 100);
    const auto cyclic =
        to_layout(grid, block, Layout::kCyclic, CommTuning{});
    EXPECT_EQ(cyclic.layout(), Layout::kCyclic);
    EXPECT_EQ(global_nvals(grid, cyclic), global_nvals(grid, block));
    const auto back =
        to_layout(grid, cyclic, Layout::kBlockAligned, CommTuning{});
    for (const VertexId g : back.owned()) {
      EXPECT_EQ(back.has(g), g % 3 != 0);
      if (back.has(g)) {
        EXPECT_EQ(back.at(g), g + 100);
      }
    }
  });
}

TEST(CyclicLayout, GatherAndScatterWork) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    const VertexId n = 40;
    DistVec<VertexId> u(grid, n, Layout::kCyclic);
    DistVec<VertexId> targets(grid, n, Layout::kCyclic);
    for (const VertexId g : u.owned()) {
      u.set(g, g * 10);
      targets.set(g, (g * 13) % n);
    }
    const auto out = gather_at(grid, u, targets, CommTuning{});
    EXPECT_EQ(out.layout(), Layout::kCyclic);
    for (const VertexId g : out.owned()) {
      ASSERT_TRUE(out.has(g));
      EXPECT_EQ(out.at(g), ((g * 13) % n) * 10);
    }

    DistVec<VertexId> w(grid, n, Layout::kCyclic);
    std::vector<Tuple<VertexId>> pairs;
    if (world.rank() == 0)
      for (VertexId g = 0; g < n; ++g) pairs.push_back({g, g + 7});
    scatter_assign_min(grid, w, pairs, CommTuning{});
    for (const VertexId g : w.owned()) EXPECT_EQ(w.at(g), g + 7);
  });
}

TEST(CyclicLayout, LaccCyclicMatchesGroundTruth) {
  for (const auto& el :
       {graph::erdos_renyi(500, 900, 71), graph::path_forest(800, 9, 73),
        graph::clustered_components(700, 25, 5.0, 79)}) {
    const auto truth = baselines::union_find_cc(el);
    core::LaccOptions options;
    options.cyclic_vectors = true;
    for (const int ranks : {4, 9}) {
      const auto result =
          core::lacc_dist(el, ranks, sim::MachineModel::local(), options);
      EXPECT_TRUE(core::same_partition(result.cc.parent, truth.parent))
          << ranks;
    }
  }
}

TEST(CyclicLayout, SpreadsHotspotLoad) {
  // Everyone requests low ids: the block layout funnels them to rank 0,
  // the cyclic layout spreads them round-robin.
  for (const auto layout : {Layout::kBlockAligned, Layout::kCyclic}) {
    const auto result = sim::run_spmd(
        16, sim::MachineModel::edison(), [&](sim::Comm& world) {
          ProcGrid grid(world);
          const VertexId n = 160;
          DistVec<VertexId> u(grid, n, layout);
          DistVec<VertexId> targets(grid, n, layout);
          for (const VertexId g : u.owned()) {
            u.set(g, g);
            targets.set(g, g % 10);  // requests hit ids 0..9 only
          }
          CommTuning tuning;
          tuning.hotspot_broadcast = false;
          (void)gather_at(grid, u, targets, tuning, "req");
        });
    std::uint64_t max_rank = 0, total = 0;
    for (const auto& stats : result.stats) {
      const auto found = stats.counters.find("req");
      const std::uint64_t v = found == stats.counters.end() ? 0 : found->second;
      max_rank = std::max(max_rank, v);
      total += v;
    }
    if (layout == Layout::kBlockAligned) {
      EXPECT_EQ(max_rank, total);  // ids 0..9 all live in chunk 0
    } else {
      // ten distinct targets over 16 ranks: no rank above ~1/10th.
      EXPECT_LE(max_rank * 10, total * 2);
    }
  }
}

}  // namespace
}  // namespace lacc::dist
