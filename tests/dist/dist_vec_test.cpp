#include "dist/dist_vec.hpp"

#include <gtest/gtest.h>

#include "dist/ops.hpp"
#include "sim/runtime.hpp"

namespace lacc::dist {
namespace {

TEST(DistVec, ChunksTileTheGlobalRange) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> v(grid, 103);
    EXPECT_LE(v.begin(), v.end());
    const std::uint64_t total = world.allreduce(
        static_cast<std::uint64_t>(v.local_size()),
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(total, 103u);
  });
}

TEST(DistVec, ColumnMajorAlignment) {
  // Chunk j*q + i must live on rank (i, j): the chunks needed by grid
  // column j are exactly those owned by column-j ranks.
  sim::run_spmd(9, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> v(grid, 90);
    const auto expected_chunk =
        static_cast<std::uint64_t>(grid.my_col()) * 3 +
        static_cast<std::uint64_t>(grid.my_row());
    EXPECT_EQ(v.chunk(), expected_chunk);
    EXPECT_EQ(chunk_owner_rank(grid, v.chunk()), world.rank());
  });
}

TEST(DistVec, StoredSemanticsMatchGrbVector) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> v(grid, 40);
    EXPECT_EQ(v.local_nvals(), 0u);
    if (v.local_size() > 0) {
      const VertexId g = v.begin();
      v.set(g, 7);
      EXPECT_TRUE(v.has(g));
      EXPECT_EQ(v.at(g), 7u);
      EXPECT_EQ(v.local_nvals(), 1u);
      v.remove(g);
      EXPECT_FALSE(v.has(g));
      EXPECT_EQ(v.get_or(g, 9), 9u);
    }
    v.fill(3);
    EXPECT_EQ(v.local_nvals(), v.local_size());
    EXPECT_EQ(global_nvals(grid, v), 40u);
    v.clear();
    EXPECT_EQ(global_nvals(grid, v), 0u);
  });
}

TEST(DistVec, TuplesAreGloballyOrderedByRankChunks) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> v(grid, 50);
    for (VertexId g = v.begin(); g < v.end(); ++g) v.set(g, g * 2);
    const auto t = v.tuples();
    for (std::size_t k = 1; k < t.size(); ++k)
      EXPECT_LT(t[k - 1].index, t[k].index);
  });
}

TEST(DistVec, ToGlobalReconstructsTheVector) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> v(grid, 30);
    for (VertexId g = v.begin(); g < v.end(); ++g)
      if (g % 3 == 0) v.set(g, g + 100);
    const auto flat = to_global(grid, v, kNoVertex);
    for (VertexId g = 0; g < 30; ++g) {
      if (g % 3 == 0)
        EXPECT_EQ(flat[g], g + 100);
      else
        EXPECT_EQ(flat[g], kNoVertex);
    }
  });
}

TEST(DistVec, OwnerRankAgreesWithOwnership) {
  sim::run_spmd(9, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> v(grid, 77);
    for (VertexId g = 0; g < 77; ++g) {
      const int owner = owner_rank(grid, v, g);
      const bool mine = owner == world.rank();
      EXPECT_EQ(mine, v.owns(g)) << "g=" << g;
    }
  });
}

}  // namespace
}  // namespace lacc::dist
