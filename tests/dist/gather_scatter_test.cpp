#include <gtest/gtest.h>

#include "dist/ops.hpp"
#include "sim/runtime.hpp"
#include "support/rng.hpp"

namespace lacc::dist {
namespace {

TEST(GatherAt, FetchesValuesAtIndirectIndices) {
  // u[g] = g * 10; targets[v] = (v * 7) % n; expect out[v] = targets*10.
  for (const int ranks : {1, 4, 9}) {
    sim::run_spmd(ranks, sim::MachineModel::local(), [](sim::Comm& world) {
      ProcGrid grid(world);
      const VertexId n = 57;
      DistVec<VertexId> u(grid, n), targets(grid, n);
      for (VertexId g = u.begin(); g < u.end(); ++g) {
        u.set(g, g * 10);
        targets.set(g, (g * 7) % n);
      }
      const auto out = gather_at(grid, u, targets, CommTuning{});
      for (VertexId g = out.begin(); g < out.end(); ++g) {
        ASSERT_TRUE(out.has(g));
        EXPECT_EQ(out.at(g), ((g * 7) % n) * 10);
      }
    });
  }
}

TEST(GatherAt, SparseTargetsAndAbsentSources) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    const VertexId n = 40;
    DistVec<VertexId> u(grid, n), targets(grid, n);
    // u stored only at even indices; request only from every 3rd position.
    for (VertexId g = u.begin(); g < u.end(); ++g) {
      if (g % 2 == 0) u.set(g, g + 1000);
      if (g % 3 == 0) targets.set(g, (g + 10) % n);
    }
    const auto out = gather_at(grid, u, targets, CommTuning{});
    for (VertexId g = out.begin(); g < out.end(); ++g) {
      if (g % 3 != 0) {
        EXPECT_FALSE(out.has(g));
        continue;
      }
      const VertexId t = (g + 10) % n;
      if (t % 2 == 0) {
        ASSERT_TRUE(out.has(g));
        EXPECT_EQ(out.at(g), t + 1000);
      } else {
        EXPECT_FALSE(out.has(g));
      }
    }
  });
}

TEST(GatherAt, HotspotBroadcastGivesSameAnswer) {
  // Every rank requests index 0 for all its positions: rank 0 is the
  // hotspot.  With and without mitigation the values must match; the
  // mitigated run must record the skew counter.
  for (const bool mitigate : {false, true}) {
    const auto result = sim::run_spmd(
        9, sim::MachineModel::edison(), [&](sim::Comm& world) {
          ProcGrid grid(world);
          const VertexId n = 90;
          DistVec<VertexId> u(grid, n), targets(grid, n);
          for (VertexId g = u.begin(); g < u.end(); ++g) {
            u.set(g, g + 5);
            targets.set(g, 0);  // everyone asks for element 0
          }
          CommTuning tuning;
          tuning.hotspot_broadcast = mitigate;
          const auto out = gather_at(grid, u, targets, tuning, "req");
          for (VertexId g = out.begin(); g < out.end(); ++g) {
            ASSERT_TRUE(out.has(g));
            EXPECT_EQ(out.at(g), 5u);
          }
        });
    // Rank 0 owns chunk 0 and sees all 90 requests in the counter.
    EXPECT_EQ(result.stats[0].counters.at("req"), 90u);
    std::uint64_t others = 0;
    for (std::size_t r = 1; r < result.stats.size(); ++r)
      others += result.stats[r].counters.at("req");
    EXPECT_EQ(others, 0u);
  }
}

TEST(GatherAt, MixedHotAndColdOwners) {
  sim::run_spmd(9, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    const VertexId n = 900;
    DistVec<VertexId> u(grid, n), targets(grid, n);
    Xoshiro256 rng(1234 + world.rank());
    for (VertexId g = u.begin(); g < u.end(); ++g) u.set(g, g * 3);
    std::vector<VertexId> expect_at(u.local_size());
    for (VertexId g = targets.begin(); g < targets.end(); ++g) {
      // 80% of requests hit the low indices (hooking skew), 20% uniform.
      const VertexId t = rng.below(5) == 0 ? rng.below(n) : rng.below(16);
      targets.set(g, t);
      expect_at[g - targets.begin()] = t * 3;
    }
    CommTuning tuning;
    tuning.hotspot_threshold = 1.5;
    const auto out = gather_at(grid, u, targets, tuning);
    for (VertexId g = out.begin(); g < out.end(); ++g) {
      ASSERT_TRUE(out.has(g));
      EXPECT_EQ(out.at(g), expect_at[g - out.begin()]);
    }
  });
}

TEST(ScatterAssignMin, RoutesAndOverwrites) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    const VertexId n = 40;
    DistVec<VertexId> w(grid, n);
    for (VertexId g = w.begin(); g < w.end(); ++g) w.set(g, 1000);
    // Every rank writes value 100+rank to target (rank*10)..(rank*10+3).
    std::vector<Tuple<VertexId>> pairs;
    for (VertexId k = 0; k < 4; ++k)
      pairs.push_back({static_cast<VertexId>(world.rank()) * 10 + k,
                       static_cast<VertexId>(100 + world.rank())});
    const auto changed = scatter_assign_min(grid, w, pairs, CommTuning{});
    EXPECT_EQ(changed, 16u);
    const auto flat = to_global(grid, w, kNoVertex);
    if (world.rank() == 0) {
      for (int r = 0; r < 4; ++r)
        for (VertexId k = 0; k < 4; ++k)
          EXPECT_EQ(flat[static_cast<VertexId>(r) * 10 + k],
                    static_cast<VertexId>(100 + r));
    }
  });
}

TEST(ScatterAssignMin, DuplicateTargetsReduceWithMin) {
  sim::run_spmd(9, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> w(grid, 10);
    // All ranks target index 3 with value 50+rank: min wins (50).
    std::vector<Tuple<VertexId>> pairs{
        {3, static_cast<VertexId>(50 + world.rank())}};
    const auto changed = scatter_assign_min(grid, w, pairs, CommTuning{});
    EXPECT_EQ(changed, 1u);
    const auto flat = to_global(grid, w, kNoVertex);
    EXPECT_EQ(flat[3], 50u);
  });
}

TEST(ScatterAssignMin, CountsOnlyRealChanges) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> w(grid, 8);
    for (VertexId g = w.begin(); g < w.end(); ++g) w.set(g, g);
    // Writing the existing value is not a change.
    std::vector<Tuple<VertexId>> pairs;
    if (world.rank() == 0) pairs = {{2, 2}, {3, 99}};
    const auto changed = scatter_assign_min(grid, w, pairs, CommTuning{});
    EXPECT_EQ(changed, 1u);
  });
}

TEST(ScatterSet, WritesFlagsAtTargets) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<std::uint8_t> star(grid, 20);
    for (VertexId g = star.begin(); g < star.end(); ++g) star.set(g, 1);
    std::vector<VertexId> targets;
    if (world.rank() % 2 == 0)
      targets = {static_cast<VertexId>(world.rank()),
                 static_cast<VertexId>(world.rank() + 10)};
    scatter_set(grid, star, targets, 0, CommTuning{});
    const auto flat = to_global(grid, star, std::uint8_t{255});
    if (world.rank() == 0) {
      for (VertexId g = 0; g < 20; ++g) {
        const bool cleared = (g == 0 || g == 10 || g == 2 || g == 12);
        EXPECT_EQ(flat[g], cleared ? 0 : 1) << g;
      }
    }
  });
}

}  // namespace
}  // namespace lacc::dist
