#include "dist/grid.hpp"

#include <gtest/gtest.h>

#include "sim/runtime.hpp"

namespace lacc::dist {
namespace {

TEST(ProcGrid, FourRanksFormTwoByTwo) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    EXPECT_EQ(grid.q(), 2);
    EXPECT_EQ(grid.my_row(), world.rank() / 2);
    EXPECT_EQ(grid.my_col(), world.rank() % 2);
    EXPECT_EQ(grid.row_comm().size(), 2);
    EXPECT_EQ(grid.col_comm().size(), 2);
    EXPECT_EQ(grid.row_comm().rank(), grid.my_col());
    EXPECT_EQ(grid.col_comm().rank(), grid.my_row());
    EXPECT_EQ(grid.rank_of(grid.my_row(), grid.my_col()), world.rank());
  });
}

TEST(ProcGrid, SingleRankGrid) {
  sim::run_spmd(1, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    EXPECT_EQ(grid.q(), 1);
    EXPECT_EQ(grid.transpose_rank(), 0);
  });
}

TEST(ProcGrid, RejectsNonSquareWorlds) {
  EXPECT_THROW(sim::run_spmd(6, sim::MachineModel::local(),
                             [](sim::Comm& world) { ProcGrid grid(world); }),
               Error);
}

TEST(ProcGrid, TransposeIsAnInvolution) {
  sim::run_spmd(9, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    const int t = grid.transpose_rank();
    const int ti = t / 3, tj = t % 3;
    EXPECT_EQ(ti, grid.my_col());
    EXPECT_EQ(tj, grid.my_row());
  });
}

}  // namespace
}  // namespace lacc::dist
