// The fused min+max mxv must agree with two independent single-op calls in
// every configuration (both code paths, masks, rank counts).
#include <gtest/gtest.h>

#include "dist/dist_mat.hpp"
#include "dist/ops.hpp"
#include "graph/generators.hpp"
#include "sim/runtime.hpp"
#include "support/rng.hpp"

namespace lacc::dist {
namespace {

void check_fused(int ranks, const graph::EdgeList& el, double density,
                 bool with_mask, bool force_dense, std::uint64_t seed) {
  sim::run_spmd(ranks, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc A(grid, el);
    DistVec<VertexId> x(grid, el.n);
    DistVec<std::uint8_t> star(grid, el.n);
    for (VertexId g = x.begin(); g < x.end(); ++g) {
      if (hash_mix(seed, g) % 1000 <
          static_cast<std::uint64_t>(density * 1000))
        x.set(g, hash_mix(seed + 1, g) % el.n);
      star.set(g, hash_mix(seed + 2, g) % 3 != 0 ? 1 : 0);
    }
    MaskSpec mask;
    if (with_mask) mask = {&star, false};
    CommTuning tuning;
    tuning.force_dense = force_dense;

    const auto fused = mxv_select2nd_minmax(grid, A, x, mask, tuning);
    const auto mn = mxv_select2nd(grid, A, x, mask, tuning, SemiringAdd::kMin);
    const auto mx = mxv_select2nd(grid, A, x, mask, tuning, SemiringAdd::kMax);
    for (VertexId g = mn.begin(); g < mn.end(); ++g) {
      ASSERT_EQ(fused.first.has(g), mn.has(g)) << g;
      ASSERT_EQ(fused.second.has(g), mx.has(g)) << g;
      if (mn.has(g)) {
        EXPECT_EQ(fused.first.at(g), mn.at(g)) << g;
        EXPECT_EQ(fused.second.at(g), mx.at(g)) << g;
        EXPECT_LE(fused.first.at(g), fused.second.at(g)) << g;
      }
    }
  });
}

TEST(DistMxvMinMax, DenseInputAllRankCounts) {
  const auto el = graph::erdos_renyi(180, 560, 51);
  for (const int ranks : {1, 4, 9}) check_fused(ranks, el, 1.0, false, false, 3);
}

TEST(DistMxvMinMax, SparseInput) {
  const auto el = graph::erdos_renyi(240, 720, 53);
  check_fused(4, el, 0.05, false, false, 5);
  check_fused(9, el, 0.05, false, false, 5);
}

TEST(DistMxvMinMax, MaskedAndForcedDense) {
  const auto el = graph::erdos_renyi(200, 650, 57);
  check_fused(4, el, 0.5, true, false, 7);
  check_fused(4, el, 0.5, true, true, 7);
  check_fused(9, el, 0.04, true, false, 9);
}

TEST(DistMxvMinMax, ClusteredAndMeshGraphs) {
  check_fused(9, graph::clustered_components(300, 15, 5.0, 59), 0.9, true,
              false, 11);
  check_fused(4, graph::mesh3d(5, 5, 3), 1.0, false, false, 13);
}

TEST(DistMxvMinMax, UnevenChunks) {
  const auto el = graph::erdos_renyi(101, 300, 61);
  check_fused(16, el, 1.0, false, false, 15);
}

}  // namespace
}  // namespace lacc::dist
