// Distributed mxv validated against the serial grb implementation on the
// same inputs, across rank counts, densities, and mask configurations.
#include <gtest/gtest.h>

#include "dist/dist_mat.hpp"
#include "dist/ops.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "grb/ops.hpp"
#include "sim/runtime.hpp"
#include "support/rng.hpp"

namespace lacc::dist {
namespace {

/// Reference: serial grb mxv over the same graph/input/mask.
grb::Vector<VertexId> reference_mxv(const graph::EdgeList& el,
                                    const grb::Vector<VertexId>& u,
                                    const grb::Vector<bool>* mask,
                                    bool complement) {
  const graph::Csr g(el);
  grb::Mask<bool> m;
  if (mask) m = {mask, complement};
  return grb::mxv_select2nd(g, u, grb::MinOp{}, m);
}

void check_mxv(int ranks, const graph::EdgeList& el, double input_density,
               bool with_mask, bool complement, bool force_dense,
               std::uint64_t seed) {
  // Build the input vector and mask deterministically from global indices.
  const VertexId n = el.n;
  grb::Vector<VertexId> u(n);
  grb::Vector<bool> m(n);
  for (VertexId g = 0; g < n; ++g) {
    if (lacc::hash_mix(seed, g) % 1000 <
        static_cast<std::uint64_t>(input_density * 1000))
      u.set(g, 2 * n - g);
    if (lacc::hash_mix(seed + 1, g) % 4 != 0) m.set(g, lacc::hash_mix(seed + 2, g) % 2 == 0);
  }
  const auto expected =
      reference_mxv(el, u, with_mask ? &m : nullptr, complement);

  sim::run_spmd(ranks, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc A(grid, el);
    EXPECT_EQ(A.global_nnz(), graph::Csr(el).num_edges());

    DistVec<VertexId> x(grid, n);
    DistVec<std::uint8_t> star(grid, n);
    for (VertexId g = x.begin(); g < x.end(); ++g) {
      if (u.has(g)) x.set(g, u.at(g));
      if (m.has(g)) star.set(g, m.at(g) ? 1 : 0);
    }
    MaskSpec mask;
    if (with_mask) mask = {&star, complement};
    CommTuning tuning;
    tuning.force_dense = force_dense;

    const auto y = mxv_select2nd_min(grid, A, x, mask, tuning);
    const auto flat = to_global(grid, y, kNoVertex);
    if (world.rank() == 0) {
      for (VertexId g = 0; g < n; ++g) {
        if (expected.has(g))
          EXPECT_EQ(flat[g], expected.at(g)) << "g=" << g;
        else
          EXPECT_EQ(flat[g], kNoVertex) << "g=" << g;
      }
    }
  });
}

TEST(DistMxv, DenseInputMatchesSerial) {
  const auto el = graph::erdos_renyi(200, 600, 11);
  for (const int ranks : {1, 4, 9, 16})
    check_mxv(ranks, el, 1.0, false, false, false, 5);
}

TEST(DistMxv, SparseInputMatchesSerial) {
  const auto el = graph::erdos_renyi(300, 900, 13);
  for (const int ranks : {1, 4, 16})
    check_mxv(ranks, el, 0.05, false, false, false, 7);
}

TEST(DistMxv, MediumDensityBothPathsAgree) {
  const auto el = graph::erdos_renyi(250, 800, 17);
  check_mxv(9, el, 0.3, false, false, false, 9);
  check_mxv(9, el, 0.3, false, false, true, 9);  // force dense path
}

TEST(DistMxv, MaskAndComplementMatchSerial) {
  const auto el = graph::erdos_renyi(220, 700, 19);
  check_mxv(4, el, 0.5, true, false, false, 11);
  check_mxv(4, el, 0.5, true, true, false, 11);
  check_mxv(9, el, 0.04, true, false, false, 13);
  check_mxv(9, el, 0.04, true, true, false, 13);
}

TEST(DistMxv, PowerLawAndMeshGraphs) {
  check_mxv(4, graph::rmat(8, 1024, 21), 0.6, false, false, false, 15);
  check_mxv(9, graph::mesh3d(5, 5, 4), 0.6, true, false, false, 17);
}

TEST(DistMxv, ManyComponentGraph) {
  check_mxv(16, graph::clustered_components(400, 20, 5.0, 23), 0.9, false,
            false, false, 19);
}

TEST(DistMxv, EmptyInputYieldsEmptyOutput) {
  const auto el = graph::erdos_renyi(100, 300, 29);
  check_mxv(4, el, 0.0, false, false, false, 21);
}

TEST(DistMxv, UnevenChunkSizes) {
  // n not divisible by p exercises the partition alignment (reduce-scatter
  // blocks vs canonical chunks).
  const auto el = graph::erdos_renyi(97, 290, 31);
  for (const int ranks : {4, 9, 16})
    check_mxv(ranks, el, 1.0, false, false, false, 23);
}

}  // namespace
}  // namespace lacc::dist
