// Edge cases of the distributed kernels that the algorithm-level tests
// reach only indirectly.
#include <gtest/gtest.h>

#include "dist/dist_mat.hpp"
#include "dist/ops.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "sim/runtime.hpp"

namespace lacc::dist {
namespace {

TEST(ScatterAccumulateMin, OnlyDecreasesStoredValues) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> w(grid, 12);
    for (const VertexId g : w.owned()) w.set(g, 50);
    // Two waves: the second tries to raise values and must be ignored.
    std::vector<Tuple<VertexId>> lower{{3, 10}, {7, 20}};
    std::vector<Tuple<VertexId>> raise{{3, 40}, {7, 60}, {9, 45}};
    const auto first = scatter_accumulate_min(
        grid, w, world.rank() == 0 ? lower : std::vector<Tuple<VertexId>>{},
        CommTuning{});
    EXPECT_EQ(first, 2u);
    const auto second = scatter_accumulate_min(
        grid, w, world.rank() == 1 ? raise : std::vector<Tuple<VertexId>>{},
        CommTuning{});
    EXPECT_EQ(second, 1u);  // only target 9 decreased (45 < 50)
    const auto flat = to_global(grid, w, kNoVertex);
    EXPECT_EQ(flat[3], 10u);
    EXPECT_EQ(flat[7], 20u);
    EXPECT_EQ(flat[9], 45u);
  });
}

TEST(ScatterAccumulateMin, ConcurrentWritersReduceGlobally) {
  sim::run_spmd(9, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> w(grid, 5);
    for (const VertexId g : w.owned()) w.set(g, 100);
    std::vector<Tuple<VertexId>> pairs{
        {2, static_cast<VertexId>(60 + world.rank())}};
    scatter_accumulate_min(grid, w, pairs, CommTuning{});
    const auto flat = to_global(grid, w, kNoVertex);
    EXPECT_EQ(flat[2], 60u);  // min over all ranks' values
  });
}

TEST(GatherValues, RawListWithoutDedupMatchesDedup) {
  sim::run_spmd(4, sim::MachineModel::edison(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> u(grid, 30);
    for (const VertexId g : u.owned()) u.set(g, g + 500);
    std::vector<VertexId> requests;
    for (int k = 0; k < 20; ++k)
      requests.push_back(static_cast<VertexId>((k * 3) % 30));
    CommTuning dedup, raw;
    raw.request_dedup = false;
    const auto a = gather_values(grid, u, requests, dedup);
    const auto b = gather_values(grid, u, requests, raw);
    ASSERT_EQ(a.size(), requests.size());
    for (std::size_t k = 0; k < requests.size(); ++k) {
      EXPECT_TRUE(a[k].second);
      EXPECT_EQ(a[k].first, b[k].first);
      EXPECT_EQ(a[k].first, requests[k] + 500);
    }
  });
}

TEST(GatherValues, DedupShipsFewerBytes) {
  auto run = [](bool dedup) {
    return sim::run_spmd(4, sim::MachineModel::edison(), [&](sim::Comm& world) {
      ProcGrid grid(world);
      DistVec<VertexId> u(grid, 40);
      for (const VertexId g : u.owned()) u.set(g, g);
      const std::vector<VertexId> requests(500, 1);  // same target 500 times
      CommTuning tuning;
      tuning.request_dedup = dedup;
      tuning.hotspot_broadcast = false;
      (void)gather_values(grid, u, requests, tuning);
    });
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LT(with.stats[1].total.bytes, without.stats[1].total.bytes);
}

TEST(GatherAt, AllAlltoallAlgorithmsAgree) {
  for (const auto algo : {sim::AllToAllAlgo::kPairwise,
                          sim::AllToAllAlgo::kHypercube,
                          sim::AllToAllAlgo::kSparseHypercube}) {
    sim::run_spmd(9, sim::MachineModel::local(), [algo](sim::Comm& world) {
      ProcGrid grid(world);
      DistVec<VertexId> u(grid, 45), targets(grid, 45);
      for (const VertexId g : u.owned()) {
        u.set(g, g * 2);
        targets.set(g, 44 - g);
      }
      CommTuning tuning;
      tuning.alltoall = algo;
      const auto out = gather_at(grid, u, targets, tuning);
      for (const VertexId g : out.owned()) {
        ASSERT_TRUE(out.has(g));
        EXPECT_EQ(out.at(g), (44 - g) * 2);
      }
    });
  }
}

TEST(DistCsc, StructureInvariants) {
  const auto el = graph::erdos_renyi(120, 400, 91);
  const graph::Csr reference(el);
  sim::run_spmd(9, sim::MachineModel::local(), [&](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc A(grid, el);
    // Columns strictly ascending and within this block's column range.
    const auto& cols = A.col_ids();
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      if (ci > 0) {
        EXPECT_LT(cols[ci - 1], cols[ci]);
      }
      EXPECT_GE(cols[ci], A.col_begin());
      EXPECT_LT(cols[ci], A.col_end());
      // Rows ascending, unique, within the row range.
      const auto rows = A.col_rows(ci);
      for (std::size_t k = 0; k < rows.size(); ++k) {
        if (k > 0) {
          EXPECT_LT(rows[k - 1], rows[k]);
        }
        EXPECT_GE(rows[k], A.row_begin());
        EXPECT_LT(rows[k], A.row_end());
      }
    }
    // Local nonzeros sum to the symmetrized edge count.
    const auto total = world.allreduce(
        A.local_nnz(), [](EdgeId a, EdgeId b) { return a + b; });
    EXPECT_EQ(total, reference.num_edges());
  });
}

TEST(DistCsc, EmptyGraphAndIsolatedVertices) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistCsc empty(grid, graph::EdgeList(10));
    EXPECT_EQ(empty.global_nnz(), 0u);
    DistVec<VertexId> x(grid, 10);
    x.fill(1);
    const auto y = mxv_select2nd_min(grid, empty, x, MaskSpec{}, CommTuning{});
    EXPECT_EQ(global_nvals(grid, y), 0u);
  });
}

TEST(ToLayout, EmptyAndFullVectors) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> empty(grid, 20);
    const auto cyclic_empty =
        to_layout(grid, empty, Layout::kCyclic, CommTuning{});
    EXPECT_EQ(global_nvals(grid, cyclic_empty), 0u);

    DistVec<VertexId> full(grid, 20);
    full.fill(9);
    const auto cyclic_full =
        to_layout(grid, full, Layout::kCyclic, CommTuning{});
    EXPECT_EQ(global_nvals(grid, cyclic_full), 20u);
    for (const VertexId g : cyclic_full.owned())
      EXPECT_EQ(cyclic_full.at(g), 9u);
  });
}

TEST(ScatterAssignMin, OnlyIfRootGuard) {
  sim::run_spmd(4, sim::MachineModel::local(), [](sim::Comm& world) {
    ProcGrid grid(world);
    DistVec<VertexId> w(grid, 10);
    // w[3] = 3 (a root); w[4] = 2 (not a root).
    for (const VertexId g : w.owned()) w.set(g, g == 4 ? 2 : g);
    std::vector<Tuple<VertexId>> pairs;
    if (world.rank() == 0) pairs = {{3, 1}, {4, 0}};
    scatter_assign_min(grid, w, pairs, CommTuning{}, /*only_if_root=*/true);
    const auto flat = to_global(grid, w, kNoVertex);
    EXPECT_EQ(flat[3], 1u);  // root: applied
    EXPECT_EQ(flat[4], 2u);  // non-root: skipped
  });
}

}  // namespace
}  // namespace lacc::dist
