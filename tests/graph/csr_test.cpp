#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace lacc::graph {
namespace {

TEST(Csr, TriangleAdjacency) {
  EdgeList el(3);
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  const Csr g(el);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);  // directed
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  const auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(Csr, SymmetrizesDirectedInput) {
  EdgeList el(3);
  el.add(2, 0);  // only one direction given
  const Csr g(el);
  const auto n0 = g.neighbors(0);
  const auto n2 = g.neighbors(2);
  ASSERT_EQ(n0.size(), 1u);
  ASSERT_EQ(n2.size(), 1u);
  EXPECT_EQ(n0[0], 2u);
  EXPECT_EQ(n2[0], 0u);
}

TEST(Csr, DropsSelfLoopsAndDuplicates) {
  EdgeList el(2);
  el.add(0, 0);
  el.add(0, 1);
  el.add(1, 0);
  el.add(0, 1);
  const Csr g(el);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Csr, IsolatedVerticesHaveEmptyNeighborhoods) {
  EdgeList el(5);
  el.add(1, 3);
  const Csr g(el);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.neighbors(4).empty());
}

TEST(Csr, AverageDegreeOfStencil) {
  const Csr g(mesh3d(4, 4, 4));
  // Interior vertices of a 27-point stencil have 26 neighbors; boundaries
  // fewer — the mean must land strictly between 7 and 26.
  EXPECT_GT(g.average_degree(), 7.0);
  EXPECT_LT(g.average_degree(), 26.0);
}

TEST(Csr, EmptyGraph) {
  const Csr g(EdgeList(0));
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace lacc::graph
