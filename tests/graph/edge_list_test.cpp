#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace lacc::graph {
namespace {

TEST(Canonicalize, DropsSelfLoopsOrdersAndDedupes) {
  EdgeList el(5);
  el.add(3, 1);
  el.add(1, 3);
  el.add(2, 2);  // self loop
  el.add(0, 4);
  el.add(3, 1);  // duplicate
  canonicalize(el);
  ASSERT_EQ(el.edges.size(), 2u);
  EXPECT_EQ(el.edges[0], (Edge{0, 4}));
  EXPECT_EQ(el.edges[1], (Edge{1, 3}));
}

TEST(Canonicalize, RejectsOutOfRangeEndpoints) {
  EdgeList el(3);
  el.add(0, 5);
  EXPECT_THROW(canonicalize(el), Error);
}

TEST(CanonicalizeCounted, AccountsForEveryInputEdge) {
  EdgeList el(5);
  el.add(3, 1);
  el.add(1, 3);  // duplicate after ordering
  el.add(2, 2);  // self loop
  el.add(0, 4);
  el.add(3, 1);  // duplicate
  const CanonicalizeStats stats = canonicalize_counted(el);
  EXPECT_EQ(stats.input_edges, 5u);
  EXPECT_EQ(stats.self_loops, 1u);
  EXPECT_EQ(stats.duplicates, 2u);
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.self_loops + stats.duplicates + stats.kept,
            stats.input_edges);
  EXPECT_EQ(el.edges.size(), stats.kept);
}

TEST(CanonicalizeCounted, EmptyAndCleanInputs) {
  EdgeList empty(4);
  const auto zero = canonicalize_counted(empty);
  EXPECT_EQ(zero.input_edges, 0u);
  EXPECT_EQ(zero.kept, 0u);

  EdgeList clean(4);
  clean.add(0, 1);
  clean.add(2, 3);
  const auto kept_all = canonicalize_counted(clean);
  EXPECT_EQ(kept_all.input_edges, 2u);
  EXPECT_EQ(kept_all.self_loops, 0u);
  EXPECT_EQ(kept_all.duplicates, 0u);
  EXPECT_EQ(kept_all.kept, 2u);
}

TEST(CanonicalizeCounted, MatchesPlainCanonicalize) {
  EdgeList a(6), b(6);
  for (const auto& [u, v] : {std::pair<VertexId, VertexId>{5, 0},
                             {0, 5},
                             {1, 1},
                             {4, 2},
                             {2, 4}}) {
    a.add(u, v);
    b.add(u, v);
  }
  canonicalize(a);
  canonicalize_counted(b);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Symmetrize, EmitsBothDirections) {
  EdgeList el(4);
  el.add(0, 1);
  el.add(2, 1);
  const EdgeList sym = symmetrize(el);
  ASSERT_EQ(sym.edges.size(), 4u);
  EXPECT_EQ(sym.edges[0], (Edge{0, 1}));
  EXPECT_EQ(sym.edges[1], (Edge{1, 0}));
  EXPECT_EQ(sym.edges[2], (Edge{1, 2}));
  EXPECT_EQ(sym.edges[3], (Edge{2, 1}));
}

TEST(PermuteVertices, IsABijectionPreservingStructure) {
  EdgeList el(10);
  for (VertexId v = 0; v + 1 < 10; ++v) el.add(v, v + 1);  // a path
  const EdgeList perm = permute_vertices(el, 99);
  EXPECT_EQ(perm.n, el.n);
  EXPECT_EQ(perm.edges.size(), el.edges.size());
  // Degree multiset of a path: two vertices of degree 1, rest degree 2.
  std::vector<int> degree(10, 0);
  for (const auto& e : perm.edges) {
    ASSERT_NE(e.u, e.v);
    ASSERT_LT(e.u, 10u);
    ASSERT_LT(e.v, 10u);
    ++degree[e.u];
    ++degree[e.v];
  }
  int ones = 0, twos = 0;
  for (const int d : degree) {
    if (d == 1) ++ones;
    if (d == 2) ++twos;
  }
  EXPECT_EQ(ones, 2);
  EXPECT_EQ(twos, 8);
}

TEST(PermuteVertices, DeterministicPerSeed) {
  EdgeList el(20);
  el.add(0, 1);
  el.add(5, 7);
  const auto a = permute_vertices(el, 1);
  const auto b = permute_vertices(el, 1);
  const auto c = permute_vertices(el, 2);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
}

}  // namespace
}  // namespace lacc::graph
