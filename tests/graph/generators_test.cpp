#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "core/options.hpp"
#include "graph/csr.hpp"

namespace lacc::graph {
namespace {

std::uint64_t components_of(const EdgeList& el) {
  return core::count_components(baselines::union_find_cc(el).parent);
}

TEST(Generators, PathHasOneComponent) {
  const auto el = path(100);
  EXPECT_EQ(el.edges.size(), 99u);
  EXPECT_EQ(components_of(el), 1u);
}

TEST(Generators, CycleAndStarAndComplete) {
  EXPECT_EQ(components_of(cycle(50)), 1u);
  EXPECT_EQ(components_of(star(50)), 1u);
  EXPECT_EQ(components_of(complete(20)), 1u);
  EXPECT_EQ(complete(20).edges.size(), 190u);
}

TEST(Generators, EmptyGraphAllIsolated) {
  EXPECT_EQ(components_of(empty_graph(42)), 42u);
}

TEST(Generators, DisjointUnionAddsComponents) {
  const auto g = disjoint_union(cycle(10), path(5));
  EXPECT_EQ(g.n, 15u);
  EXPECT_EQ(components_of(g), 2u);
}

TEST(Generators, ErdosRenyiDeterministicAndInRange) {
  const auto a = erdos_renyi(1000, 3000, 7);
  const auto b = erdos_renyi(1000, 3000, 7);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.edges.size(), 3000u);
  for (const auto& e : a.edges) {
    EXPECT_LT(e.u, 1000u);
    EXPECT_LT(e.v, 1000u);
    EXPECT_NE(e.u, e.v);
  }
}

TEST(Generators, RmatIsSkewed) {
  const auto el = rmat(10, 8192, 3);
  const Csr g(el);
  // Power-law: the max degree should far exceed the average.
  VertexId max_degree = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * g.average_degree());
}

TEST(Generators, Mesh3dSingleComponentAndDegreeBounds) {
  const auto el = mesh3d(5, 4, 3);
  EXPECT_EQ(el.n, 60u);
  EXPECT_EQ(components_of(el), 1u);
  const Csr g(el);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), 7u);   // corner of the 27-point stencil
    EXPECT_LE(g.degree(v), 26u);  // interior
  }
}

TEST(Generators, ClusteredComponentsMatchesClusterCount) {
  const auto el = clustered_components(2000, 37, 8.0, 11);
  EXPECT_EQ(el.n, 2000u);
  EXPECT_EQ(components_of(el), 37u);
}

TEST(Generators, ClusteredComponentsHitsDegreeTarget) {
  const auto el = clustered_components(5000, 50, 12.0, 13);
  const Csr g(el);
  EXPECT_GT(g.average_degree(), 6.0);
  EXPECT_LT(g.average_degree(), 16.0);
}

TEST(Generators, PathForestIsSparseWithManyComponents) {
  const auto el = path_forest(10000, 20, 17);
  const Csr g(el);
  EXPECT_LT(g.average_degree(), 2.5);  // M3 regime
  const auto comps = components_of(el);
  EXPECT_GT(comps, 300u);
  EXPECT_LT(comps, 1200u);  // ~ n / avg_component
}

TEST(Generators, PreferentialAttachmentConnectedCore) {
  const auto el = preferential_attachment(2000, 4, 23, 0.1);
  // 10% isolated vertices -> ~201 components (1 giant + ~200 singletons).
  const auto comps = components_of(el);
  EXPECT_GT(comps, 150u);
  EXPECT_LT(comps, 250u);
}

TEST(Generators, PreferentialAttachmentFullyAttachedIsOneComponent) {
  EXPECT_EQ(components_of(preferential_attachment(500, 3, 29)), 1u);
}

}  // namespace
}  // namespace lacc::graph
