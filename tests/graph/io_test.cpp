#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "support/error.hpp"

namespace lacc::graph {
namespace {

TEST(MatrixMarket, RoundTripPreservesCanonicalEdges) {
  EdgeList el = erdos_renyi(50, 120, 3);
  std::stringstream buffer;
  write_matrix_market(buffer, el);
  const EdgeList back = read_matrix_market(buffer);
  EXPECT_EQ(back.n, el.n);
  canonicalize(el);
  EdgeList canon_back = back;
  canonicalize(canon_back);
  EXPECT_EQ(canon_back.edges, el.edges);
}

TEST(MatrixMarket, ParsesRealFieldAndSymmetricHeader) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 2\n"
      "2 1 0.5\n"
      "3 2 1.5\n");
  const EdgeList el = read_matrix_market(in);
  EXPECT_EQ(el.n, 3u);
  ASSERT_EQ(el.edges.size(), 2u);
  EXPECT_EQ(el.edges[0], (Edge{1, 0}));
  EXPECT_EQ(el.edges[1], (Edge{2, 1}));
}

TEST(MatrixMarket, RejectsBadBannerAndShape) {
  std::stringstream bad1("not a banner\n");
  EXPECT_THROW(read_matrix_market(bad1), Error);
  std::stringstream bad2(
      "%%MatrixMarket matrix coordinate pattern general\n2 3 0\n");
  EXPECT_THROW(read_matrix_market(bad2), Error);
  std::stringstream bad3(
      "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n9 1\n");
  EXPECT_THROW(read_matrix_market(bad3), Error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, RejectsCommentsOnlyStream) {
  // Stream ends inside the comment block: must be an error, not a silently
  // empty graph.
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "% another comment\n");
  try {
    read_matrix_market(in);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("ends before the size line"),
              std::string::npos);
  }
}

TEST(MatrixMarket, RejectsMalformedSizeLine) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "three by three\n");
  try {
    read_matrix_market(in);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("malformed Matrix Market size line"),
              std::string::npos);
  }
}

TEST(MatrixMarket, RejectsMalformedEntryLine) {
  std::stringstream bad_index(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 2\n"
      "1 2\n"
      "oops nope\n");
  try {
    read_matrix_market(bad_index);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("malformed entry at line 2"),
              std::string::npos);
  }
  // A real-field entry whose value column is garbage is also malformed.
  std::stringstream bad_value(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1\n"
      "1 2 pi\n");
  EXPECT_THROW(read_matrix_market(bad_value), Error);
}

TEST(MatrixMarket, FileRoundTrip) {
  const EdgeList el = erdos_renyi(40, 100, 9);
  const std::string file = "/tmp/lacc_mm_test.mtx";
  write_matrix_market_file(file, el);
  const EdgeList back = read_matrix_market_file(file);
  EXPECT_EQ(back.n, el.n);
  EdgeList canon = el, canon_back = back;
  canonicalize(canon);
  canonicalize(canon_back);
  EXPECT_EQ(canon_back.edges, canon.edges);
  std::remove(file.c_str());
  EXPECT_THROW(read_matrix_market_file(file), Error);
}

TEST(EdgeListIo, RoundTrip) {
  EdgeList el(7);
  el.add(0, 6);
  el.add(3, 2);
  std::stringstream buffer;
  write_edge_list(buffer, el);
  const EdgeList back = read_edge_list(buffer);
  EXPECT_EQ(back.n, 7u);
  EXPECT_EQ(back.edges, el.edges);
}

TEST(EdgeListIo, RejectsOutOfRange) {
  std::stringstream in("3 1\n0 7\n");
  EXPECT_THROW(read_edge_list(in), Error);
}

TEST(BinaryIo, RoundTripPreservesEverything) {
  const EdgeList el = erdos_renyi(300, 900, 77);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, el);
  const EdgeList back = read_binary(buffer);
  EXPECT_EQ(back.n, el.n);
  EXPECT_EQ(back.edges, el.edges);  // exact, including order and duplicates
}

TEST(BinaryIo, RejectsBadMagicAndTruncation) {
  std::stringstream bad("definitely not a graph", std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary(bad), Error);

  const EdgeList el = path(10);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, el);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);  // chop the payload
  std::stringstream truncated(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary(truncated), Error);
}

TEST(BinaryIo, RejectsHugeEdgeCountHeader) {
  // A corrupt/hostile header claiming ~2^61 edges must fail on the header
  // check (stream length), never by attempting the allocation itself.
  const EdgeList el = path(4);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, el);
  std::string bytes = buffer.str();
  const std::uint64_t huge = std::uint64_t(1) << 61;
  // Header layout: magic[8], version u32, flags u32, n u64, m u64.
  std::memcpy(&bytes[8 + 4 + 4 + 8], &huge, sizeof(huge));
  std::stringstream corrupt(bytes, std::ios::in | std::ios::binary);
  try {
    read_binary(corrupt);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fit in the stream"),
              std::string::npos);
  }
}

TEST(BinaryIo, FileRoundTrip) {
  const EdgeList el = rmat(8, 600, 79);
  const std::string path = "/tmp/lacc_binary_test.bin";
  write_binary_file(path, el);
  const EdgeList back = read_binary_file(path);
  EXPECT_EQ(back.edges, el.edges);
  std::remove(path.c_str());
  EXPECT_THROW(read_binary_file(path), Error);
}

}  // namespace
}  // namespace lacc::graph
