#include <gtest/gtest.h>

#include <fstream>

#include "baselines/union_find.hpp"
#include "core/options.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/error.hpp"

namespace lacc::graph {
namespace {

TEST(RandomTree, ConnectedWithLogDiameterShape) {
  const auto el = random_tree(4000, 5);
  EXPECT_EQ(el.edges.size(), 3999u);
  EXPECT_EQ(core::count_components(baselines::union_find_cc(el).parent), 1u);
  // BFS depth from vertex 0 should be logarithmic-ish, far below n.
  const Csr g(el);
  std::vector<int> depth(4000, -1);
  depth[0] = 0;
  std::vector<VertexId> frontier{0};
  int max_depth = 0;
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (const VertexId u : frontier)
      for (const VertexId v : g.neighbors(u))
        if (depth[v] < 0) {
          depth[v] = depth[u] + 1;
          max_depth = std::max(max_depth, depth[v]);
          next.push_back(v);
        }
    frontier.swap(next);
  }
  EXPECT_LT(max_depth, 60);  // ~2 ln(n) expected; 60 is generous
}

TEST(RandomTree, Deterministic) {
  EXPECT_EQ(random_tree(100, 3).edges, random_tree(100, 3).edges);
  EXPECT_NE(random_tree(100, 3).edges, random_tree(100, 4).edges);
}

TEST(MatrixMarketFiles, RoundTripThroughDisk) {
  const auto el = clustered_components(200, 10, 4.0, 3);
  const std::string path = "/tmp/lacc_io_test.mtx";
  write_matrix_market_file(path, el);
  const auto back = read_matrix_market_file(path);
  EXPECT_EQ(back.n, el.n);
  EXPECT_TRUE(core::same_partition(baselines::union_find_cc(el).parent,
                                   baselines::union_find_cc(back).parent));
  std::remove(path.c_str());
}

TEST(MatrixMarketFiles, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/tmp/does-not-exist-lacc.mtx"), lacc::Error);
}

TEST(Csr, NeighborListsAreSortedAndUnique) {
  const Csr g(rmat(9, 2000, 17));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t k = 1; k < nbrs.size(); ++k)
      ASSERT_LT(nbrs[k - 1], nbrs[k]);
  }
}

TEST(Generators, ZipfClusterSizesAreSkewed) {
  // The first (largest) cluster should far exceed the average size.
  const auto el = clustered_components(10000, 100, 5.0, 21);
  const auto labels =
      core::normalize_labels(baselines::union_find_cc(el).parent);
  std::vector<std::uint64_t> size(10000, 0);
  for (const auto label : labels) ++size[label];
  std::uint64_t largest = 0;
  for (const auto s : size) largest = std::max(largest, s);
  EXPECT_GT(largest, 10000u / 100u * 3u);
}

TEST(Generators, DegreeTargetsAcrossFamilies) {
  EXPECT_NEAR(Csr(path_forest(20000, 30, 31)).average_degree(), 2.0, 0.5);
  EXPECT_NEAR(Csr(erdos_renyi(5000, 20000, 33)).average_degree(), 8.0, 0.5);
}

}  // namespace
}  // namespace lacc::graph
