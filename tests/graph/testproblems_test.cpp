#include "graph/testproblems.hpp"

#include <gtest/gtest.h>

#include "baselines/union_find.hpp"
#include "core/options.hpp"
#include "graph/csr.hpp"
#include "support/error.hpp"

namespace lacc::graph {
namespace {

class TestProblems : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    problems_ = new std::vector<TestProblem>(make_test_problems(0.25));
  }
  static void TearDownTestSuite() {
    delete problems_;
    problems_ = nullptr;
  }
  static std::vector<TestProblem>* problems_;
};

std::vector<TestProblem>* TestProblems::problems_ = nullptr;

TEST_F(TestProblems, AllTenTableIIIGraphsPresent) {
  ASSERT_EQ(problems_->size(), 10u);
  EXPECT_EQ((*problems_)[0].name, "archaea");
  EXPECT_EQ(problems_->back().name, "iso_m100");
}

TEST_F(TestProblems, FigureSelectionsResolve) {
  for (const auto& name : figure4_names()) find_problem(*problems_, name);
  for (const auto& name : figure5_names()) find_problem(*problems_, name);
  for (const auto& name : figure6_names()) find_problem(*problems_, name);
  for (const auto& name : figure7_names()) find_problem(*problems_, name);
  for (const auto& name : figure8_names()) find_problem(*problems_, name);
  EXPECT_EQ(figure4_names().size(), 8u);
  EXPECT_EQ(figure6_names().size(), 2u);
  EXPECT_THROW(find_problem(*problems_, "no-such-graph"), Error);
}

TEST_F(TestProblems, ComponentRegimesMatchThePaper) {
  // The structural property Section VI's analysis turns on: protein-like
  // graphs have many components, meshes and twitter-like graphs one.
  const auto comps = [&](const std::string& name) {
    return core::count_components(
        baselines::union_find_cc(find_problem(*problems_, name).graph).parent);
  };
  EXPECT_EQ(comps("queen_4147"), 1u);
  EXPECT_EQ(comps("twitter7"), 1u);
  EXPECT_EQ(comps("sk-2005"), 45u);
  EXPECT_GT(comps("archaea"), 100u);
  EXPECT_GT(comps("eukarya"), 200u);
  EXPECT_GT(comps("M3"), 100u);
}

TEST_F(TestProblems, M3IsTheSparsestGraph) {
  double m3_degree = 0, min_other = 1e18;
  for (const auto& p : *problems_) {
    const Csr g(p.graph);
    if (p.name == "M3")
      m3_degree = g.average_degree();
    else
      min_other = std::min(min_other, g.average_degree());
  }
  EXPECT_LT(m3_degree, 3.0);
  EXPECT_LT(m3_degree, min_other);
}

TEST_F(TestProblems, LargeFlagMarksFigure6Graphs) {
  for (const auto& p : *problems_)
    EXPECT_EQ(p.large, p.name == "Metaclust50" || p.name == "iso_m100")
        << p.name;
}

TEST_F(TestProblems, ScaleChangesSizes) {
  const auto small = make_test_problems(0.1);
  EXPECT_LT(small[0].graph.n, (*problems_)[0].graph.n);
}

}  // namespace
}  // namespace lacc::graph
