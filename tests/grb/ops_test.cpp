#include "grb/ops.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "support/error.hpp"

namespace lacc::grb {
namespace {

graph::Csr triangle_plus_isolated() {
  graph::EdgeList el(4);
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  return graph::Csr(el);  // vertex 3 isolated
}

TEST(Mxv, Select2ndMinTakesMinNeighborValue) {
  const auto g = triangle_plus_isolated();
  auto u = Vector<VertexId>::full(4, 0);
  for (Index i = 0; i < 4; ++i) u.set(i, i * 10);
  const auto w = mxv_select2nd(g, u, MinOp{}, no_mask());
  EXPECT_EQ(w.at(0), 10u);  // min(u[1], u[2])
  EXPECT_EQ(w.at(1), 0u);   // min(u[0], u[2])
  EXPECT_EQ(w.at(2), 0u);
  EXPECT_FALSE(w.has(3));  // no neighbors -> no stored result
}

TEST(Mxv, SparseInputTakesSpMSpVPath) {
  const auto g = triangle_plus_isolated();
  Vector<VertexId> u(4);
  u.set(2, 99);  // only one stored input element
  const auto w = mxv_select2nd(g, u, MinOp{}, no_mask());
  EXPECT_EQ(w.at(0), 99u);
  EXPECT_EQ(w.at(1), 99u);
  EXPECT_FALSE(w.has(2));  // vertex 2's neighbors hold no stored values
  EXPECT_FALSE(w.has(3));
}

TEST(Mxv, MaskFiltersOutput) {
  const auto g = triangle_plus_isolated();
  auto u = Vector<VertexId>::full(4, 5);
  Vector<bool> m(4);
  m.set(1, true);
  const auto w = mxv_select2nd(g, u, MinOp{}, mask_of(m));
  EXPECT_FALSE(w.has(0));
  EXPECT_TRUE(w.has(1));
  EXPECT_FALSE(w.has(2));
}

TEST(Mxv, DenseAndSparsePathsAgree) {
  const auto el = graph::erdos_renyi(200, 600, 5);
  const graph::Csr g(el);
  // Stored on ~half the positions: run both paths and compare.
  Vector<VertexId> u(200);
  for (Index i = 0; i < 200; i += 2) u.set(i, 1000 - i);
  const auto sparse = mxv_select2nd(g, u, MinOp{}, no_mask());
  // Force the dense path by filling the remaining positions with huge
  // values stored at odd indices of a copy... instead compare against a
  // straightforward reference computation.
  for (Index i = 0; i < 200; ++i) {
    VertexId best = kNoVertex;
    for (const VertexId j : g.neighbors(i))
      if (u.has(j)) best = std::min(best, u.at(j));
    if (best == kNoVertex)
      EXPECT_FALSE(sparse.has(i)) << i;
    else
      EXPECT_EQ(sparse.at(i), best) << i;
  }
}

TEST(EWiseMult, IntersectsStoredElements) {
  Vector<int> u(4), v(4);
  u.set(0, 3);
  u.set(1, 5);
  v.set(1, 2);
  v.set(2, 9);
  const auto w = eWiseMult(u, v, MinOp{}, no_mask());
  EXPECT_EQ(w.nvals(), 1u);
  EXPECT_EQ(w.at(1), 2);
}

TEST(EWiseMult, SecondOpCopiesRightOperand) {
  Vector<int> u(3), v(3);
  u.set(0, 1);
  v.set(0, 42);
  const auto w = eWiseMult(u, v, SecondOp{}, no_mask());
  EXPECT_EQ(w.at(0), 42);
}

TEST(Extract, GathersByIndexArray) {
  auto u = Vector<int>::full(5, 0);
  for (Index i = 0; i < 5; ++i) u.set(i, static_cast<int>(i) * 100);
  const std::vector<Index> indices = {4, 0, 4, 2};
  const auto w = extract(u, indices);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.at(0), 400);
  EXPECT_EQ(w.at(1), 0);
  EXPECT_EQ(w.at(2), 400);
  EXPECT_EQ(w.at(3), 200);
}

TEST(Extract, AbsentSourceLeavesOutputUnstored) {
  Vector<int> u(3);
  u.set(1, 7);
  const auto w = extract(u, {0, 1});
  EXPECT_FALSE(w.has(0));
  EXPECT_EQ(w.at(1), 7);
}

TEST(ExtractAll, MaskedCopy) {
  auto u = Vector<int>::full(4, 9);
  Vector<bool> m(4);
  m.set(2, true);
  const auto masked = extract_all(u, mask_of(m));
  EXPECT_EQ(masked.nvals(), 1u);
  EXPECT_EQ(masked.at(2), 9);
  const auto complemented = extract_all(u, scmp_of(m));
  EXPECT_EQ(complemented.nvals(), 3u);
  EXPECT_FALSE(complemented.has(2));
}

TEST(Assign, OverwritesTargets) {
  auto w = Vector<int>::full(5, 100);
  Vector<int> u(2);
  u.set(0, 1);
  u.set(1, 2);
  assign(w, {3, 0}, u);
  EXPECT_EQ(w.at(3), 1);
  EXPECT_EQ(w.at(0), 2);
  EXPECT_EQ(w.at(1), 100);
}

TEST(Assign, DuplicateTargetsReduceWithMin) {
  auto w = Vector<int>::full(3, 100);
  Vector<int> u(3);
  u.set(0, 7);
  u.set(1, 3);
  u.set(2, 9);
  assign(w, {1, 1, 1}, u);
  EXPECT_EQ(w.at(1), 3);
}

TEST(Assign, UnstoredInputElementsAreSkipped) {
  auto w = Vector<int>::full(3, 0);
  Vector<int> u(2);
  u.set(1, 5);  // u[0] unstored
  assign(w, {0, 2}, u);
  EXPECT_EQ(w.at(0), 0);
  EXPECT_EQ(w.at(2), 5);
}

TEST(AssignScalar, WritesEverywhereListed) {
  Vector<bool> w(4);
  assign_scalar(w, {0, 3}, true);
  EXPECT_TRUE(w.at(0));
  EXPECT_TRUE(w.at(3));
  EXPECT_FALSE(w.has(1));
}

TEST(AssignAll, MaskedFill) {
  Vector<int> w(4);
  Vector<bool> m(4);
  m.set(1, true);
  m.set(2, true);
  assign_all(w, 8, mask_of(m));
  EXPECT_EQ(w.nvals(), 2u);
  EXPECT_EQ(w.at(1), 8);
}

TEST(Extract, OutOfRangeIndexThrows) {
  const auto u = Vector<int>::full(3, 1);
  EXPECT_THROW(extract(u, {0, 5}), Error);
}

TEST(Assign, OutOfRangeTargetThrows) {
  auto w = Vector<int>::full(3, 1);
  Vector<int> u(1);
  u.set(0, 9);
  EXPECT_THROW(assign(w, {7}, u), Error);
  EXPECT_THROW(assign_scalar(w, {4}, 5), Error);
}

TEST(Assign, ArityMismatchThrows) {
  auto w = Vector<int>::full(3, 1);
  Vector<int> u(2);
  EXPECT_THROW(assign(w, {0}, u), Error);  // indices shorter than u
}

TEST(Mxv, SizeMismatchThrows) {
  graph::EdgeList el(3);
  el.add(0, 1);
  const graph::Csr g(el);
  const auto wrong = Vector<VertexId>::full(5, 0);
  EXPECT_THROW(mxv_select2nd(g, wrong, MinOp{}, no_mask()), Error);
}

}  // namespace
}  // namespace lacc::grb
