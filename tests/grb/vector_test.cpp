#include "grb/vector.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace lacc::grb {
namespace {

TEST(GrbVector, StartsEmpty) {
  Vector<int> v(10);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.nvals(), 0u);
  EXPECT_FALSE(v.has(3));
}

TEST(GrbVector, FullConstructorStoresEverything) {
  const auto v = Vector<int>::full(5, 7);
  EXPECT_EQ(v.nvals(), 5u);
  for (Index i = 0; i < 5; ++i) EXPECT_EQ(v.at(i), 7);
}

TEST(GrbVector, SetRemoveTracksNvals) {
  Vector<int> v(4);
  v.set(1, 10);
  v.set(1, 11);  // overwrite is not a new element
  v.set(3, 30);
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_EQ(v.at(1), 11);
  v.remove(1);
  v.remove(1);  // idempotent
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_FALSE(v.has(1));
}

TEST(GrbVector, ReadingUnstoredThrows) {
  Vector<int> v(3);
  EXPECT_THROW(v.at(0), Error);
  EXPECT_EQ(v.get_or(0, -1), -1);
}

TEST(GrbVector, ExtractTuplesInIndexOrder) {
  Vector<int> v(6);
  v.set(4, 40);
  v.set(0, 0);
  v.set(2, 20);
  std::vector<Index> idx;
  std::vector<int> val;
  v.extract_tuples(idx, val);
  EXPECT_EQ(idx, (std::vector<Index>{0, 2, 4}));
  EXPECT_EQ(val, (std::vector<int>{0, 20, 40}));
}

TEST(GrbVector, ClearRemovesAll) {
  auto v = Vector<int>::full(8, 1);
  v.clear();
  EXPECT_EQ(v.nvals(), 0u);
}

TEST(GrbMask, ValueSemanticsWithComplement) {
  Vector<bool> m(4);
  m.set(0, true);
  m.set(1, false);  // stored false
  // position 2, 3: unstored
  const auto plain = mask_of(m);
  EXPECT_TRUE(plain.allows(0));
  EXPECT_FALSE(plain.allows(1));  // stored false is not allowed
  EXPECT_FALSE(plain.allows(2));  // unstored is not allowed
  const auto comp = scmp_of(m);
  EXPECT_FALSE(comp.allows(0));
  EXPECT_TRUE(comp.allows(1));
  EXPECT_TRUE(comp.allows(2));
  EXPECT_TRUE(no_mask().allows(3));
}

TEST(GrbVector, EqualityChecksStoredPattern) {
  Vector<int> a(3), b(3);
  a.set(1, 5);
  EXPECT_FALSE(a == b);
  b.set(1, 5);
  EXPECT_TRUE(a == b);
  b.set(2, 0);
  EXPECT_FALSE(a == b);  // same values where stored, different pattern
}

}  // namespace
}  // namespace lacc::grb
