// Integration tests spanning module boundaries: file I/O feeding the
// distributed pipeline, rank-count invariance of results, determinism of
// the modeled clock, and agreement between every layer of the stack on the
// paper's own test-problem stand-ins.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "baselines/parconnect.hpp"
#include "baselines/union_find.hpp"
#include "core/lacc_dist.hpp"
#include "core/lacc_serial.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/testproblems.hpp"

namespace lacc {
namespace {

TEST(EndToEnd, MatrixMarketFileThroughDistributedLacc) {
  // Write a graph out, read it back, run the full distributed pipeline.
  const auto original = graph::clustered_components(800, 25, 6.0, 3);
  std::stringstream file;
  graph::write_matrix_market(file, original);
  const auto loaded = graph::read_matrix_market(file);

  const auto result = core::lacc_dist(loaded, 9, sim::MachineModel::edison());
  const auto truth = baselines::union_find_cc(original);
  EXPECT_TRUE(core::same_partition(result.cc.parent, truth.parent));
  EXPECT_EQ(core::count_components(result.cc.parent), 25u);
}

TEST(EndToEnd, PartitionInvariantAcrossRankCounts) {
  const auto el = graph::permute_vertices(
      graph::clustered_components(700, 30, 5.0, 7), 11);
  const auto reference = core::lacc_dist(el, 1, sim::MachineModel::local());
  for (const int ranks : {4, 16, 25}) {
    const auto run = core::lacc_dist(el, ranks, sim::MachineModel::local());
    EXPECT_TRUE(core::same_partition(run.cc.parent, reference.cc.parent))
        << ranks;
  }
}

TEST(EndToEnd, DeterministicAcrossRepeats) {
  const auto el = graph::rmat(9, 1500, 5);
  const auto a = core::lacc_dist(el, 4, sim::MachineModel::cori_knl());
  const auto b = core::lacc_dist(el, 4, sim::MachineModel::cori_knl());
  EXPECT_EQ(a.cc.parent, b.cc.parent);  // bitwise, not just same partition
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
  EXPECT_EQ(a.cc.iterations, b.cc.iterations);
}

TEST(EndToEnd, AllTestProblemsAllAlgorithms) {
  // Every Table III stand-in, solved by the whole stack, small scale.
  const auto problems = graph::make_test_problems(0.1);
  for (const auto& p : problems) {
    const auto truth = baselines::union_find_cc(p.graph);
    const graph::Csr g(p.graph);
    EXPECT_TRUE(core::same_partition(core::lacc_grb(g).parent, truth.parent))
        << p.name;
    const auto dist = core::lacc_dist(p.graph, 4, sim::MachineModel::local());
    EXPECT_TRUE(core::same_partition(dist.cc.parent, truth.parent)) << p.name;
    const auto pc =
        baselines::parconnect_dist(p.graph, 4, sim::MachineModel::local());
    EXPECT_TRUE(core::same_partition(pc.cc.parent, truth.parent)) << p.name;
  }
}

TEST(EndToEnd, VertexPermutationPreservesComponentStructure) {
  const auto el = graph::clustered_components(900, 40, 5.0, 13);
  const auto permuted = graph::permute_vertices(el, 17);
  EXPECT_EQ(
      core::count_components(baselines::union_find_cc(el).parent),
      core::count_components(core::lacc_dist(permuted, 4,
                                             sim::MachineModel::local())
                                 .cc.parent));
}

TEST(EndToEnd, ModeledTimeRespondsToMachineModel) {
  // Same algorithm, same graph: the slower machine must cost more modeled
  // time — the property every cross-platform figure relies on.
  const auto el = graph::erdos_renyi(2000, 6000, 19);
  const auto edison = core::lacc_dist(el, 16, sim::MachineModel::edison());
  const auto cori = core::lacc_dist(el, 16, sim::MachineModel::cori_knl());
  EXPECT_LT(edison.modeled_seconds, cori.modeled_seconds);
  EXPECT_TRUE(core::same_partition(edison.cc.parent, cori.cc.parent));
}

TEST(EndToEnd, EdgeListIngestionMatchesCsr) {
  // The distributed matrix build (alltoall routing, symmetrize, dedup) must
  // count exactly the nonzeros the serial CSR sees.
  const auto el = graph::rmat(8, 800, 23);
  const graph::Csr g(el);
  sim::run_spmd(9, sim::MachineModel::local(), [&](sim::Comm& world) {
    dist::ProcGrid grid(world);
    dist::DistCsc A(grid, el);
    EXPECT_EQ(A.global_nnz(), g.num_edges());
  });
}

TEST(FailureInjection, RankFailureMidAlgorithmPropagatesCleanly) {
  // A rank dying in the middle of a collective-heavy algorithm must
  // release its siblings (poisoned barriers) and surface the error.
  const auto el = graph::erdos_renyi(300, 900, 41);
  EXPECT_THROW(
      sim::run_spmd(9, sim::MachineModel::local(),
                    [&](sim::Comm& world) {
                      dist::ProcGrid grid(world);
                      dist::DistCsc A(grid, el);
                      if (world.rank() == 4) throw Error("injected failure");
                      core::CcResult cc;
                      core::lacc_dist_body(grid, A, {}, cc);
                    }),
      Error);
}

TEST(FailureInjection, FailureAfterWorkStillReportsFirstError) {
  EXPECT_THROW(sim::run_spmd(4, sim::MachineModel::local(),
                             [](sim::Comm& world) {
                               dist::ProcGrid grid(world);
                               grid.world().barrier();
                               if (world.rank() == 0)
                                 throw Error("rank 0 failed");
                               grid.world().barrier();
                               grid.row_comm().barrier();
                             }),
               Error);
}

TEST(DirtyInput, SelfLoopsAndDuplicatesAreHandledEverywhere) {
  // Raw generator output with self-loops and duplicate/parallel edges.
  graph::EdgeList el(50);
  for (VertexId v = 0; v < 50; ++v) {
    el.add(v, v);                    // self loop
    el.add(v, (v + 1) % 50);         // cycle edge
    el.add((v + 1) % 50, v);         // reverse duplicate
    el.add(v, (v + 1) % 50);         // exact duplicate
  }
  const auto truth = baselines::union_find_cc(el);
  EXPECT_EQ(core::count_components(truth.parent), 1u);
  const auto dist = core::lacc_dist(el, 4, sim::MachineModel::local());
  EXPECT_TRUE(core::same_partition(dist.cc.parent, truth.parent));
  const auto serial = core::lacc_grb(graph::Csr(el));
  EXPECT_TRUE(core::same_partition(serial.parent, truth.parent));
}

}  // namespace
}  // namespace lacc
